/**
 * @file
 * Unit tests for CoreSet, the fixed-capacity bitset behind every
 * core-region API. Exercises the full 1024-bit range, word boundaries,
 * iteration order, and the hashing/order guarantees the candidate
 * dedup and the hypervisor route cache rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace vnpu {
namespace {

TEST(CoreSetTest, EmptyAndSingleBit)
{
    CoreSet s;
    EXPECT_TRUE(s.none());
    EXPECT_FALSE(s.any());
    EXPECT_EQ(s.count(), 0);
    EXPECT_EQ(s.lowest(), CoreSet::kCapacity);

    s.set(0);
    s.set(63);
    s.set(64);
    s.set(CoreSet::kCapacity - 1);
    EXPECT_EQ(s.count(), 4);
    EXPECT_TRUE(s.test(0) && s.test(63) && s.test(64));
    EXPECT_TRUE(s.test(CoreSet::kCapacity - 1));
    EXPECT_FALSE(s.test(1));
    EXPECT_FALSE(s.test(65));

    s.reset(63);
    EXPECT_FALSE(s.test(63));
    EXPECT_EQ(s.count(), 3);
}

TEST(CoreSetTest, FirstNAcrossWordBoundaries)
{
    EXPECT_EQ(CoreSet::first_n(0).count(), 0);
    for (int n : {1, 63, 64, 65, 127, 128, 129, 1000, 1024}) {
        CoreSet s = CoreSet::first_n(n);
        EXPECT_EQ(s.count(), n) << "n=" << n;
        EXPECT_TRUE(s.test(n - 1));
        if (n < CoreSet::kCapacity) {
            EXPECT_FALSE(s.test(n));
        }
    }
}

TEST(CoreSetTest, FromWordAndFromRange)
{
    CoreSet w = CoreSet::from_word(0b1011);
    EXPECT_EQ(w.count(), 3);
    EXPECT_TRUE(w.test(0) && w.test(1) && w.test(3));

    std::vector<int> ids{5, 900, 66, 5};
    CoreSet r = CoreSet::from_range(ids);
    EXPECT_EQ(r.count(), 3); // duplicate collapses
    EXPECT_TRUE(r.test(5) && r.test(66) && r.test(900));
}

TEST(CoreSetTest, SetAlgebra)
{
    CoreSet a = CoreSet::of(1) | CoreSet::of(100) | CoreSet::of(1023);
    CoreSet b = CoreSet::of(100) | CoreSet::of(2);

    EXPECT_EQ((a & b), CoreSet::of(100));
    EXPECT_EQ((a | b).count(), 4);
    EXPECT_EQ((a ^ b).count(), 3);
    EXPECT_EQ(a.andnot(b), CoreSet::of(1) | CoreSet::of(1023));
    EXPECT_EQ(a & ~b, a.andnot(b));

    // The complement covers the full capacity.
    EXPECT_EQ((~CoreSet{}).count(), CoreSet::kCapacity);
}

TEST(CoreSetTest, IterationAscendingAcrossWords)
{
    std::vector<int> ids{0, 1, 63, 64, 65, 511, 512, 1023};
    CoreSet s = CoreSet::from_range(ids);
    std::vector<int> seen;
    for (int v : s)
        seen.push_back(v);
    EXPECT_EQ(seen, ids);

    // next() resumes mid-word and mid-set.
    EXPECT_EQ(s.next(2), 63);
    EXPECT_EQ(s.next(66), 511);
    EXPECT_EQ(s.next(1024), CoreSet::kCapacity);

    // pop_lowest drains in the same order.
    CoreSet t = s;
    std::vector<int> popped;
    while (t.any())
        popped.push_back(t.pop_lowest());
    EXPECT_EQ(popped, ids);
}

TEST(CoreSetTest, OrderingMatchesU64ForLowSets)
{
    // For sets within the first word the strict weak order must agree
    // with the old integer-mask comparison (candidate dedup sorts).
    Rng rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        std::uint64_t x = rng.next();
        std::uint64_t y = rng.next();
        EXPECT_EQ(CoreSet::from_word(x) < CoreSet::from_word(y), x < y);
    }
    // High bits dominate low bits.
    EXPECT_LT(CoreSet::first_n(64), CoreSet::of(64));
    EXPECT_LT(CoreSet::of(1022), CoreSet::of(1023));
}

TEST(CoreSetTest, HashingSupportsUnorderedContainers)
{
    std::unordered_set<CoreSet> cache;
    std::set<CoreSet> ordered;
    Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        CoreSet s;
        int k = 1 + static_cast<int>(rng.next_below(20));
        for (int i = 0; i < k; ++i)
            s.set(static_cast<int>(rng.next_below(CoreSet::kCapacity)));
        cache.insert(s);
        ordered.insert(s);
    }
    EXPECT_EQ(cache.size(), ordered.size());
    for (const CoreSet& s : ordered)
        EXPECT_EQ(cache.count(s), 1u);
}

TEST(CoreSetTest, ToStringRendersRanges)
{
    EXPECT_EQ(CoreSet{}.to_string(), "{}");
    CoreSet s = CoreSet::first_n(3) | CoreSet::of(9) | CoreSet::of(64) |
                CoreSet::of(65);
    EXPECT_EQ(s.to_string(), "{0-2,9,64-65}");
}

TEST(CoreSetTest, NthSelectsAscendingSetBits)
{
    CoreSet s = CoreSet::of(3) | CoreSet::of(63) | CoreSet::of(64) |
                CoreSet::of(200) | CoreSet::of(1023);
    EXPECT_EQ(s.nth(0), 3);
    EXPECT_EQ(s.nth(1), 63);
    EXPECT_EQ(s.nth(2), 64);
    EXPECT_EQ(s.nth(3), 200);
    EXPECT_EQ(s.nth(4), 1023);

    // nth agrees with iteration order on random sets.
    Rng rng(21);
    for (int trial = 0; trial < 50; ++trial) {
        CoreSet r;
        int k = 1 + static_cast<int>(rng.next_below(40));
        for (int i = 0; i < k; ++i)
            r.set(static_cast<int>(rng.next_below(CoreSet::kCapacity)));
        int idx = 0;
        for (int v : r)
            EXPECT_EQ(r.nth(idx++), v);
        EXPECT_EQ(idx, r.count());
    }
}

TEST(CoreSetTest, TestRangeChecksContiguousRuns)
{
    CoreSet s;
    for (int i = 60; i < 70; ++i)
        s.set(i); // crosses the word boundary
    EXPECT_TRUE(s.test_range(60, 10));
    EXPECT_TRUE(s.test_range(63, 2));
    EXPECT_TRUE(s.test_range(65, 0)); // empty run is trivially set
    EXPECT_FALSE(s.test_range(59, 2));
    EXPECT_FALSE(s.test_range(60, 11));
    EXPECT_FALSE(s.test_range(0, 1));

    // A full 128-bit run spanning two whole words plus fringes.
    CoreSet wide = CoreSet::first_n(200).andnot(CoreSet::first_n(50));
    EXPECT_TRUE(wide.test_range(50, 150));
    EXPECT_FALSE(wide.test_range(49, 151));
    EXPECT_FALSE(wide.test_range(50, 151));
}

TEST(CoreSetTest, TypesHelpersAgree)
{
    CoreSet s = core_bit(7) | core_bit(700);
    EXPECT_EQ(mask_count(s), 2);
    EXPECT_TRUE(s.test(700));
    EXPECT_EQ(kMaxCores, CoreSet::kCapacity);
}

} // namespace
} // namespace vnpu
