/**
 * @file
 * Tests for the packet-level NoC: routing, pipelining, contention,
 * confined routes and interference accounting.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "noc/network.h"
#include "obs/metrics.h"
#include "sim/config.h"
#include "sim/event_queue.h"

namespace vnpu::noc {
namespace {

struct NetFixture : public ::testing::Test {
    NetFixture()
        : cfg(make_cfg()), topo(cfg.mesh_x, cfg.mesh_y), net(cfg, topo, eq)
    {
    }

    static SocConfig
    make_cfg()
    {
        SocConfig c = SocConfig::Fpga();
        c.mesh_x = 4;
        c.mesh_y = 4;
        return c;
    }

    SocConfig cfg;
    EventQueue eq;
    MeshTopology topo;
    Network net;
};

TEST_F(NetFixture, RoutePathFollowsXy)
{
    EXPECT_EQ(net.route_path(0, 15),
              (std::vector<int>{0, 1, 2, 3, 7, 11, 15}));
    EXPECT_EQ(net.route_path(5, 6), (std::vector<int>{5, 6}));
}

TEST_F(NetFixture, SingleMessageTiming)
{
    // One 2048-byte packet over one hop:
    // handshake(20) + router(2) + 2048/16 = 128 -> done at 150.
    SendResult r = net.send(0, 0, 1, 2048, kNoVm, 0);
    EXPECT_EQ(r.hops, 1);
    EXPECT_EQ(r.delivered, 20u + 2u + 128u);
    // The sender frees once the packet leaves the first (only) link.
    EXPECT_EQ(r.sender_free, r.delivered);
}

TEST_F(NetFixture, RelayStoreAndForwardChargesPerHop)
{
    // Default relay mode (Figure 5): every hop re-serializes the whole
    // message, so a 3-hop transfer costs ~3x the 1-hop transfer.
    SendResult near = net.send(0, 0, 1, 4096, kNoVm, 0);
    EXPECT_EQ(near.delivered, 20u + 2u + 256u);
    net.reset();
    SendResult far = net.send(0, 0, 3, 4096, kNoVm, 0);
    EXPECT_EQ(far.delivered, 20u + 3u * (2u + 256u));
}

TEST_F(NetFixture, WormholeModePipelinesPackets)
{
    SocConfig wcfg = make_cfg();
    wcfg.noc_relay_store_forward = false;
    EventQueue weq;
    Network wnet(wcfg, topo, weq);

    // Two packets over one hop: the second serializes after the first.
    SendResult two = wnet.send(0, 0, 1, 4096, kNoVm, 0);
    EXPECT_EQ(two.delivered, 20u + 2u * (2 + 128));

    // Over 3 hops, packets pipeline: doubling the payload adds only
    // one link-time, not three.
    wnet.reset();
    SendResult far1 = wnet.send(0, 0, 3, 2048, kNoVm, 0);
    wnet.reset();
    SendResult far2 = wnet.send(0, 0, 3, 4096, kNoVm, 0);
    EXPECT_EQ(far2.delivered - far1.delivered, 130u);
}

TEST_F(NetFixture, DeliveryCallbackFiresAtArrival)
{
    Tick delivered_at = 0;
    int got_tag = -1;
    net.set_deliver_callback([&](int dst, int src, std::uint64_t bytes,
                                 int tag, VmId vm, bool credit) {
        EXPECT_EQ(dst, 5);
        EXPECT_EQ(src, 0);
        EXPECT_EQ(bytes, 2048u);
        EXPECT_EQ(vm, 3);
        EXPECT_FALSE(credit);
        got_tag = tag;
        delivered_at = eq.now();
    });
    SendResult r = net.send(0, 0, 5, 2048, 3, 42);
    eq.run();
    EXPECT_EQ(got_tag, 42);
    EXPECT_EQ(delivered_at, r.delivered);
}

TEST_F(NetFixture, LocalLoopbackSkipsLinks)
{
    // No links are reserved, but the 1 MiB payload still serializes
    // through the send/receive engine at link bandwidth and the packet
    // counter sees the message (Fig. 3/13 local-traffic accounting).
    SendResult r = net.send(100, 7, 7, 1 << 20, kNoVm, 0);
    EXPECT_EQ(r.hops, 0);
    Cycles ser = (1 << 20) / 16; // 65536 cycles at 16 B/cycle
    EXPECT_EQ(r.delivered, 100u + cfg.noc_handshake_cycles + ser);
    EXPECT_EQ(r.sender_free, r.delivered);
    EXPECT_EQ(net.stats().local_deliveries.value(), 1u);
    EXPECT_EQ(net.stats().packets.value(), (1u << 20) / 2048);
    // Links stay idle: a later remote message sees no contention.
    EXPECT_EQ(net.link_busy_until(7, 6), 0u);
}

TEST_F(NetFixture, LoopbackDeliveryCallbackFires)
{
    Tick delivered_at = 0;
    net.set_deliver_callback([&](int dst, int src, std::uint64_t bytes,
                                 int, VmId, bool) {
        EXPECT_EQ(dst, 3);
        EXPECT_EQ(src, 3);
        EXPECT_EQ(bytes, 4096u);
        delivered_at = eq.now();
    });
    SendResult r = net.send(0, 3, 3, 4096, kNoVm, 0);
    eq.run();
    EXPECT_EQ(delivered_at, r.delivered);
    EXPECT_EQ(r.delivered, cfg.noc_handshake_cycles + 4096u / 16u);
}

TEST_F(NetFixture, ContentionSerializesSharedLink)
{
    // Two flows share link 0->1.
    SendResult a = net.send(0, 0, 1, 2048, 1, 0);
    SendResult b = net.send(0, 0, 1, 2048, 2, 1);
    EXPECT_GT(b.delivered, a.delivered);
    EXPECT_GE(b.delivered, a.delivered + 128);
}

TEST_F(NetFixture, DisjointFlowsDoNotContend)
{
    SendResult a = net.send(0, 0, 1, 2048, 1, 0);
    SendResult b = net.send(0, 14, 15, 2048, 2, 1);
    EXPECT_EQ(a.delivered, b.delivered);
}

TEST_F(NetFixture, InterferenceAccounting)
{
    // Default DOR: vm 1 and vm 2 share the 1->2 link.
    net.send(0, 1, 2, 2048, 1, 0);
    net.send(0, 1, 2, 2048, 2, 1);
    EXPECT_EQ(net.interference_links(), 1);
    net.reset();
    EXPECT_EQ(net.interference_links(), 0);
}

TEST_F(NetFixture, ConfinedRoutingStaysInsideRegion)
{
    // L-shaped region: 0, 4, 8, 9, 10. XY routing 0->10 would go
    // through 1, 2 (outside); the override must stay inside.
    CoreSet region = core_bit(0) | core_bit(4) | core_bit(8) |
                     core_bit(9) | core_bit(10);
    RouteOverride ov = RouteOverride::build_confined(topo, region);
    std::vector<int> path = net.route_path(0, 10, &ov);
    EXPECT_EQ(path, (std::vector<int>{0, 4, 8, 9, 10}));
    for (int node : path)
        EXPECT_TRUE(region.test(node)) << "node " << node;

    // Without the override, XY leaves the region.
    std::vector<int> dor = net.route_path(0, 10, nullptr);
    bool leaves = false;
    for (int node : dor)
        if (!region.test(node))
            leaves = true;
    EXPECT_TRUE(leaves);
}

TEST_F(NetFixture, ConfinedRoutingEliminatesInterference)
{
    // vm1 owns the left 2 columns, vm2 the right 2 columns.
    CoreSet left, right;
    for (int y = 0; y < 4; ++y) {
        left |= core_bit(topo.id_of(0, y)) | core_bit(topo.id_of(1, y));
        right |= core_bit(topo.id_of(2, y)) | core_bit(topo.id_of(3, y));
    }
    RouteOverride ov_l = RouteOverride::build_confined(topo, left);
    RouteOverride ov_r = RouteOverride::build_confined(topo, right);
    // Both VMs send column-spanning traffic within their own halves.
    net.send(0, topo.id_of(0, 0), topo.id_of(1, 3), 8192, 1, 0, &ov_l);
    net.send(0, topo.id_of(3, 0), topo.id_of(2, 3), 8192, 2, 1, &ov_r);
    EXPECT_EQ(net.interference_links(), 0);
    EXPECT_EQ(net.stats().confined_messages.value(), 2u);
}

TEST_F(NetFixture, ZeroByteSendFollowsConfinedRoute)
{
    // Zero-byte wormhole messages occupy no links but must still
    // report the confined route's hop count, not Manhattan distance.
    SocConfig wcfg = make_cfg();
    wcfg.noc_relay_store_forward = false;
    EventQueue weq;
    Network wnet(wcfg, topo, weq);
    CoreSet region = core_bit(0) | core_bit(4) | core_bit(8) |
                     core_bit(9) | core_bit(10);
    RouteOverride ov = RouteOverride::build_confined(topo, region);
    SendResult r = wnet.send(0, 0, 10, 0, 1, 0, &ov);
    EXPECT_EQ(r.hops, 4);               // 0->4->8->9->10, not 3 (Manhattan)
    EXPECT_EQ(r.delivered, 0u);         // no packets, instant
    EXPECT_EQ(wnet.link_busy_until(0, 4), 0u); // no link reserved
}

TEST_F(NetFixture, OverrideRequiresConnectedRegion)
{
    CoreSet split = core_bit(0) | core_bit(15);
    EXPECT_THROW(RouteOverride::build_confined(topo, split), SimFatal);
}

TEST_F(NetFixture, StatsCountMessagesAndBytes)
{
    net.send(0, 0, 1, 5000, kNoVm, 0);
    EXPECT_EQ(net.stats().messages.value(), 1u);
    EXPECT_EQ(net.stats().bytes.value(), 5000u);
    EXPECT_EQ(net.stats().packets.value(), 3u); // ceil(5000/2048)
}

/** Sum an integer field over every `"field": N` occurrence in `json`. */
static std::uint64_t
sum_json_field(const std::string& json, const std::string& field)
{
    const std::string key = "\"" + field + "\": ";
    std::uint64_t sum = 0;
    for (std::size_t pos = json.find(key); pos != std::string::npos;
         pos = json.find(key, pos + key.size())) {
        sum += std::strtoull(json.c_str() + pos + key.size(), nullptr, 10);
    }
    return sum;
}

TEST_F(NetFixture, LinkHeatmapJsonIsStructuredAndConservesFlits)
{
    net.send(0, 0, 5, 4096, kNoVm, 1);
    net.send(0, 3, 12, 2048, kNoVm, 2);
    net.send(5, 2, 2, 512, kNoVm, 3); // loopback: no link traffic
    eq.run();

    std::ostringstream os;
    net.write_link_heatmap(os, 1000);
    const std::string j = os.str();

    // Structure: a JSON array whose entries carry all four fields.
    ASSERT_FALSE(j.empty());
    EXPECT_EQ(j.front(), '[');
    EXPECT_EQ(j.substr(j.size() - 3), "\n]\n");
    EXPECT_NE(j.find("\"from\": "), std::string::npos);
    EXPECT_NE(j.find("\"to\": "), std::string::npos);
    EXPECT_NE(j.find("\"flits\": "), std::string::npos);
    EXPECT_NE(j.find("\"busy_ticks\": "), std::string::npos);
    EXPECT_NE(j.find("\"utilization\": "), std::string::npos);

    // Conservation: the JSON's flit total equals both the raw link
    // counters and the neutral obs records the sampler consumes.
    std::uint64_t counter_flits = 0;
    for (const LinkCounters& c : net.link_counters())
        counter_flits += c.flits;
    ASSERT_GT(counter_flits, 0u);
    EXPECT_EQ(sum_json_field(j, "flits"), counter_flits);

    std::vector<obs::LinkRecord> recs;
    net.append_link_records(recs);
    std::uint64_t rec_flits = 0;
    for (const obs::LinkRecord& r : recs)
        rec_flits += r.flits;
    EXPECT_EQ(rec_flits, counter_flits);
    // Records cover EVERY valid directed link (stable index order for
    // window diffing): 2 * (2 * 3 * 4) directed links on a 4x4 mesh.
    EXPECT_EQ(recs.size(), 48u);
}

TEST_F(NetFixture, LinkHeatmapOfIdleNetworkIsAnEmptyArray)
{
    std::ostringstream os;
    net.write_link_heatmap(os, 0);
    EXPECT_EQ(os.str(), "[\n]\n");
    // Zero-traffic export parses as an (empty) array and stays stable
    // with a nonzero elapsed argument too.
    std::ostringstream os2;
    net.write_link_heatmap(os2, 1234);
    EXPECT_EQ(os2.str(), "[\n]\n");
}

} // namespace
} // namespace vnpu::noc
