/**
 * @file
 * Tests pinning the Table 2 SoC configuration presets and validation.
 */

#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/log.h"

namespace vnpu {
namespace {

TEST(ConfigTest, FpgaPresetMatchesTable2)
{
    SocConfig c = SocConfig::Fpga();
    c.validate();
    EXPECT_EQ(c.num_cores(), 8);                       // 8 tiles
    EXPECT_EQ(c.sa_dim, 16);                           // 16x16 SA
    EXPECT_EQ(c.spad_bytes_per_core, 512u * 1024u);    // 512 KB/tile
    EXPECT_EQ(c.total_spad_bytes(), 4u * 1024u * 1024u); // 4 MB total
    EXPECT_DOUBLE_EQ(c.hbm_bytes_per_cycle, 16.0);     // 16 GB/s @ 1 GHz
    EXPECT_DOUBLE_EQ(c.freq_ghz, 1.0);
}

TEST(ConfigTest, SimPresetMatchesTable2)
{
    SocConfig c = SocConfig::Sim();
    c.validate();
    EXPECT_EQ(c.num_cores(), 36);                      // 36 tiles
    EXPECT_EQ(c.sa_dim, 128);                          // 128x128 SA
    EXPECT_EQ(c.spad_bytes_per_core, 30ull << 20);     // 30 MB/tile
    EXPECT_EQ(c.total_spad_bytes(), 1080ull << 20);    // 1080 MB total
    EXPECT_DOUBLE_EQ(c.freq_ghz, 0.5);                 // 500 MHz
    // 360 GB/s at 500 MHz = 720 bytes per cycle.
    EXPECT_DOUBLE_EQ(c.hbm_bytes_per_cycle, 720.0);
}

TEST(ConfigTest, Sim48HasFortyEightCores)
{
    SocConfig c = SocConfig::Sim48();
    c.validate();
    EXPECT_EQ(c.num_cores(), 48);
    EXPECT_EQ(c.total_spad_bytes(), 1440ull << 20);    // 1440 MB total
}

TEST(ConfigTest, SecondsConversion)
{
    SocConfig c = SocConfig::Fpga();
    EXPECT_DOUBLE_EQ(c.seconds(1'000'000'000ull), 1.0); // 1e9 cyc @ 1 GHz
    c = SocConfig::Sim();
    EXPECT_DOUBLE_EQ(c.seconds(500'000'000ull), 1.0);   // 5e8 cyc @ 0.5 GHz
}

TEST(ConfigTest, PeakMacs)
{
    SocConfig c = SocConfig::Fpga();
    EXPECT_DOUBLE_EQ(c.peak_macs_per_cycle(), 256.0);
    c = SocConfig::Sim();
    EXPECT_DOUBLE_EQ(c.peak_macs_per_cycle(), 16384.0);
}

TEST(ConfigValidationTest, RejectsBadMesh)
{
    SocConfig c = SocConfig::Fpga();
    c.mesh_x = 0;
    EXPECT_THROW(c.validate(), SimFatal);
    c = SocConfig::Fpga();
    c.mesh_x = 9;
    c.mesh_y = 9; // 81 cores: beyond the old u64 cap, valid now
    EXPECT_NO_THROW(c.validate());
    c.mesh_x = 64;
    c.mesh_y = 17; // 1088 cores > CoreSet capacity
    EXPECT_THROW(c.validate(), SimFatal);
}

TEST(ConfigValidationTest, RejectsBadBandwidthAndZones)
{
    SocConfig c = SocConfig::Fpga();
    c.link_bytes_per_cycle = 0;
    EXPECT_THROW(c.validate(), SimFatal);

    c = SocConfig::Fpga();
    c.meta_zone_bytes = c.spad_bytes_per_core;
    EXPECT_THROW(c.validate(), SimFatal);

    c = SocConfig::Fpga();
    c.hbm_channels = 0;
    EXPECT_THROW(c.validate(), SimFatal);
}

} // namespace
} // namespace vnpu
