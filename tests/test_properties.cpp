/**
 * @file
 * Parameterized property tests: invariants that must hold across
 * sweeps of mesh sizes, region shapes, models and pipeline widths.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "graph/enumerate.h"
#include "hyp/topology_mapper.h"
#include "mem/buddy_allocator.h"
#include "noc/network.h"
#include "runtime/compiler.h"
#include "sim/rng.h"
#include "virt/routing_table.h"
#include "workload/model_zoo.h"
#include "workload/partitioner.h"

namespace vnpu {
namespace {

// ---- Confined routing stays shortest and inside, for random regions ---

class ConfinedRoutingProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConfinedRoutingProperty, RoutesAreInRegionShortestPaths)
{
    const int seed = GetParam();
    Rng rng(seed);
    int w = 3 + static_cast<int>(rng.next_below(4));
    int h = 3 + static_cast<int>(rng.next_below(3));
    noc::MeshTopology topo(w, h);
    graph::Graph mesh = topo.to_graph();

    int k = 3 + static_cast<int>(rng.next_below(6));
    graph::NodeMask all = graph::NodeMask::first_n(mesh.num_nodes());
    auto regions = graph::sample_connected_subsets(mesh, k, all, 4, rng);
    ASSERT_FALSE(regions.empty());

    for (const graph::NodeMask& region : regions) {
        noc::RouteOverride ov =
            noc::RouteOverride::build_confined(topo, region);
        std::vector<int> nodes = graph::Graph::mask_to_nodes(region);
        for (int a : nodes) {
            for (int b : nodes) {
                if (a == b)
                    continue;
                // Follow the override; count hops.
                int cur = a, hops = 0;
                while (cur != b) {
                    cur = ov.next_hop(cur, b);
                    ASSERT_NE(cur, kInvalidCore);
                    ASSERT_TRUE(region.test(cur));
                    ASSERT_LE(++hops, topo.num_nodes());
                }
                // Path length equals BFS distance within the region.
                graph::Graph sub = topo.to_graph();
                // BFS distance inside region:
                std::map<int, int> dist{{a, 0}};
                std::vector<int> queue{a};
                for (std::size_t head = 0; head < queue.size(); ++head) {
                    int v = queue[head];
                    for (int u : sub.neighbors(v) & region) {
                        if (!dist.count(u)) {
                            dist[u] = dist[v] + 1;
                            queue.push_back(u);
                        }
                    }
                }
                EXPECT_EQ(hops, dist.at(b));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfinedRoutingProperty,
                         ::testing::Range(1, 9));

// ---- Compact mesh routing table == standard table ------------------------

struct RtShape {
    int vw, vh, anchor, stride;
};

class RoutingTableEquivalence
    : public ::testing::TestWithParam<RtShape> {};

TEST_P(RoutingTableEquivalence, CompactMatchesExplicit)
{
    RtShape s = GetParam();
    virt::RoutingTable compact =
        virt::RoutingTable::mesh2d(1, s.vw, s.vh, s.anchor, s.stride);
    virt::RoutingTable standard =
        virt::RoutingTable::standard(1, compact.phys_cores());
    ASSERT_EQ(compact.num_cores(), standard.num_cores());
    for (int v = -1; v <= compact.num_cores(); ++v)
        EXPECT_EQ(compact.lookup(v), standard.lookup(v)) << "v=" << v;
    // The descriptor form saves SRAM once there is more than one core
    // (for a single core the shape field is pure overhead).
    if (compact.num_cores() > 1) {
        EXPECT_LE(compact.storage_bits(), standard.storage_bits());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoutingTableEquivalence,
    ::testing::Values(RtShape{1, 1, 0, 6}, RtShape{2, 2, 1, 3},
                      RtShape{3, 2, 7, 6}, RtShape{2, 3, 0, 8},
                      RtShape{4, 4, 9, 6}, RtShape{6, 1, 12, 6}));

// ---- Buddy allocator invariants under random workloads --------------------

class BuddyProperty : public ::testing::TestWithParam<int> {};

TEST_P(BuddyProperty, NoOverlapAndFullRecovery)
{
    Rng rng(GetParam());
    mem::BuddyAllocator buddy(0x1000000, 4u << 20, 4096);
    std::map<Addr, std::uint64_t> live; // addr -> size
    for (int op = 0; op < 400; ++op) {
        if (live.empty() || rng.next_double() < 0.6) {
            std::uint64_t want = 1ull << (12 + rng.next_below(6));
            auto a = buddy.alloc(want);
            if (!a)
                continue;
            std::uint64_t got = buddy.block_size(*a);
            EXPECT_GE(got, want);
            // No overlap with any live block.
            for (auto [addr, size] : live) {
                bool disjoint = *a + got <= addr || addr + size <= *a;
                ASSERT_TRUE(disjoint)
                    << "overlap: " << *a << "+" << got << " vs " << addr;
            }
            live[*a] = got;
        } else {
            auto it = live.begin();
            std::advance(it, rng.next_below(live.size()));
            buddy.free(it->first);
            live.erase(it);
        }
    }
    for (auto [addr, size] : live)
        buddy.free(addr);
    EXPECT_EQ(buddy.free_bytes(), 4u << 20);
    EXPECT_EQ(buddy.live_blocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyProperty, ::testing::Range(10, 18));

// ---- Pipeline plans: conservation + well-formed edges, model sweep ---------

struct PlanCase {
    const char* model;
    int stages;
};

class PipelinePlanProperty : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PipelinePlanProperty, ConservationAndEdgeSanity)
{
    PlanCase pc = GetParam();
    workload::Model m = workload::by_name(pc.model);
    workload::PipelinePlan plan =
        workload::make_pipeline_plan(m, pc.stages);
    ASSERT_EQ(plan.num_stages, pc.stages);

    std::uint64_t flops = 0, weights = 0;
    for (int s = 0; s < plan.num_stages; ++s) {
        EXPECT_FALSE(plan.stages[s].slices.empty());
        flops += plan.stage_flops(m, s);
        weights += plan.stage_weight_bytes(m, s);
    }
    EXPECT_NEAR(static_cast<double>(flops),
                static_cast<double>(m.total_flops()),
                0.03 * m.total_flops());
    EXPECT_NEAR(static_cast<double>(weights),
                static_cast<double>(m.total_weight_bytes()),
                0.03 * m.total_weight_bytes() + 64);

    std::set<int> tags;
    for (const workload::CommEdge& e : plan.edges) {
        EXPECT_GE(e.src_stage, 0);
        EXPECT_LT(e.src_stage, pc.stages);
        EXPECT_GE(e.dst_stage, 0);
        EXPECT_LT(e.dst_stage, pc.stages);
        EXPECT_NE(e.src_stage, e.dst_stage);
        EXPECT_GT(e.bytes, 0u);
        EXPECT_TRUE(tags.insert(e.tag).second);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinePlanProperty,
    ::testing::Values(PlanCase{"resnet18", 3}, PlanCase{"resnet18", 13},
                      PlanCase{"resnet34", 28}, PlanCase{"gpt2-s", 12},
                      PlanCase{"gpt2-s", 36}, PlanCase{"alexnet", 8},
                      PlanCase{"mobilenet", 16}, PlanCase{"googlenet", 9},
                      PlanCase{"bert", 24}, PlanCase{"dlrm", 4},
                      PlanCase{"yololite", 6}, PlanCase{"efficientnet", 10}));

// ---- Compiled programs: structural well-formedness across modes ------------

struct CompileCase {
    const char* model;
    int stages;
    runtime::CommMode comm;
    bool stream;
    bool single_stream;
};

class CompiledProgramProperty
    : public ::testing::TestWithParam<CompileCase> {};

TEST_P(CompiledProgramProperty, TagsBalanceAndBoundsHold)
{
    CompileCase cc = GetParam();
    workload::Model m = workload::by_name(cc.model);
    workload::PipelinePlan plan =
        workload::make_pipeline_plan(m, cc.stages);
    runtime::CompileOptions opt;
    opt.iterations = 3;
    opt.comm = cc.comm;
    opt.stream_weights = cc.stream;
    opt.single_stream = cc.single_stream;
    runtime::CompiledWorkload cw =
        runtime::compile_pipeline(m, plan, opt, 0x10000, 8ull << 30);
    ASSERT_EQ(cw.programs.size(), static_cast<std::size_t>(cc.stages));

    std::map<int, int> sends, recvs;
    for (const core::Program& p : cw.programs) {
        ASSERT_FALSE(p.empty());
        EXPECT_EQ(p.back().op, core::Opcode::kHalt);
        int iter_markers = 0;
        for (const core::Instr& in : p) {
            switch (in.op) {
              case core::Opcode::kSend:
                ++sends[in.tag];
                EXPECT_GE(in.peer, 0);
                EXPECT_LT(in.peer, cc.stages);
                break;
              case core::Opcode::kRecv:
                ++recvs[in.tag];
                break;
              case core::Opcode::kIterBegin:
                ++iter_markers;
                break;
              case core::Opcode::kLoadWeight:
              case core::Opcode::kLoadGlobal:
              case core::Opcode::kStoreGlobal:
                EXPECT_GE(in.va, 0x10000u);
                EXPECT_LE(in.va + in.bytes, 0x10000u + cw.va_used);
                break;
              default:
                break;
            }
        }
        EXPECT_EQ(iter_markers, 3);
    }
    // Every send has a matching recv (deadlock-freedom precondition).
    EXPECT_EQ(sends, recvs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompiledProgramProperty,
    ::testing::Values(
        CompileCase{"resnet18", 6, runtime::CommMode::kDataflow, false,
                    false},
        CompileCase{"resnet18", 6, runtime::CommMode::kUvmSync, false,
                    false},
        CompileCase{"resnet34", 24, runtime::CommMode::kDataflow, true,
                    false},
        CompileCase{"gpt2-s", 12, runtime::CommMode::kDataflow, false,
                    true},
        CompileCase{"gpt2-s", 12, runtime::CommMode::kUvmSync, true,
                    true},
        CompileCase{"transformer", 8, runtime::CommMode::kDataflow, false,
                    true},
        CompileCase{"mobilenet", 8, runtime::CommMode::kUvmSync, true,
                    false}));

// ---- Mapper: assignments are valid for every strategy and scale -----------

class MapperStrategyProperty
    : public ::testing::TestWithParam<
          std::tuple<int, hyp::MappingStrategy>> {};

TEST_P(MapperStrategyProperty, AssignmentsAreDistinctFreeCores)
{
    const auto [side, strat] = GetParam();
    noc::MeshTopology topo(side, side);
    hyp::TopologyMapper mapper(topo);
    graph::Graph mesh = topo.to_graph();
    const int n = side * side;
    Rng rng(99 + side);
    int mapped = 0;
    for (int trial = 0; trial < 6; ++trial) {
        // Random occupancy, scaled with the mesh.
        CoreSet free = CoreSet::first_n(n);
        for (int i = 0; i < n / 4; ++i)
            free.reset(static_cast<CoreId>(rng.next_below(n)));
        int k = 4 + static_cast<int>(rng.next_below(8 + side));
        hyp::MappingRequest req;
        req.vtopo = hyp::TopologyMapper::snake_topology(k);
        req.strategy = strat;
        req.max_candidates = 48;
        hyp::MappingResult r = mapper.map(req, free);
        if (!r.ok)
            continue; // exact may legitimately fail
        ++mapped;
        std::set<CoreId> used;
        for (CoreId c : r.assignment) {
            EXPECT_TRUE(free.test(c));
            EXPECT_TRUE(used.insert(c).second);
        }
        EXPECT_EQ(static_cast<int>(used.size()), k);
        EXPECT_GE(r.ted, 0.0);
        if (strat == hyp::MappingStrategy::kExact) {
            // An exact hit is a cost-0 isomorphic placement: the mesh
            // adjacency of the assigned cores mirrors the request
            // edge-for-edge.
            EXPECT_EQ(r.ted, 0.0);
            for (int u = 0; u < k; ++u)
                for (int v = u + 1; v < k; ++v)
                    EXPECT_EQ(req.vtopo.has_edge(u, v),
                              mesh.has_edge(r.assignment[u],
                                            r.assignment[v]))
                        << side << "x" << side << " pair (" << u << ","
                        << v << ")";
        }
    }
    EXPECT_GT(mapped, 0) << "sweep never exercised a successful map";
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesByMesh, MapperStrategyProperty,
    ::testing::Combine(
        ::testing::Values(6, 16, 32),
        ::testing::Values(hyp::MappingStrategy::kExact,
                          hyp::MappingStrategy::kStraightforward,
                          hyp::MappingStrategy::kSimilarTopology,
                          hyp::MappingStrategy::kFragmented)));

} // namespace
} // namespace vnpu
