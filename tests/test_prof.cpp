/**
 * @file
 * Tests for the host-side self-profiler: scope nesting arithmetic,
 * per-thread merge and worker naming, the disabled no-op path, and the
 * presence of the admission-funnel instrumentation sites.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>

#include "hyp/hypervisor.h"
#include "obs/prof.h"
#include "runtime/machine.h"
#include "sim/config.h"

namespace vnpu {
namespace {

using runtime::Machine;

/** Restore the no-profiler state even when a test fails mid-way. */
struct ProfGuard {
    explicit ProfGuard(obs::Profiler* p) { obs::set_profiler(p); }
    ~ProfGuard() { obs::set_profiler(nullptr); }
};

const obs::Profiler::SiteReport*
find_site(const obs::Profiler::Report& rep, const std::string& name)
{
    for (const auto& s : rep.sites)
        if (s.name == name)
            return &s;
    return nullptr;
}

/** Burn a little CPU so scope durations are visibly nonzero. */
void
spin()
{
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 20000; ++i)
        x += static_cast<std::uint64_t>(i) * i;
}

void
leaf_scope()
{
    VNPU_PROF("test.inner");
    spin();
}

void
outer_scope()
{
    VNPU_PROF("test.outer");
    spin();
    leaf_scope();
    leaf_scope();
}

TEST(ProfTest, DisabledByDefaultAndScopesAreNoOps)
{
    EXPECT_FALSE(obs::prof_enabled());
    EXPECT_EQ(obs::profiler(), nullptr);
    outer_scope(); // must be harmless without a profiler
}

TEST(ProfTest, SiteIdsAreInternedAndStable)
{
    const int a = obs::Profiler::site_id("test.same_site");
    const int b = obs::Profiler::site_id("test.same_site");
    const int c = obs::Profiler::site_id("test.other_site");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(ProfTest, NestedScopesSplitInclusiveAndExclusive)
{
    obs::Profiler prof;
    {
        ProfGuard guard(&prof);
        outer_scope();
        outer_scope();
    }
    const obs::Profiler::Report rep = prof.report();
    const auto* outer = find_site(rep, "test.outer");
    const auto* inner = find_site(rep, "test.inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->calls, 2u);
    EXPECT_EQ(inner->calls, 4u);
    EXPECT_GT(outer->incl_ns, 0u);
    EXPECT_GT(inner->incl_ns, 0u);
    // Exclusive = inclusive minus profiled children, exactly: inner's
    // full inclusive time was charged to outer's child_ns.
    EXPECT_EQ(outer->excl_ns, outer->incl_ns - inner->incl_ns);
    // Inner has no profiled children.
    EXPECT_EQ(inner->excl_ns, inner->incl_ns);
    // All top-level time is attributed to this (non-worker) thread.
    EXPECT_EQ(rep.attributed_ns, outer->incl_ns);
}

TEST(ProfTest, ThreadsMergeAndWorkerTimeIsNotAttributed)
{
    obs::Profiler prof;
    {
        ProfGuard guard(&prof);
        outer_scope();
        std::thread t([] {
            obs::set_prof_thread_name("worker99");
            leaf_scope();
        });
        t.join();
    }
    const obs::Profiler::Report rep = prof.report();
    const auto* inner = find_site(rep, "test.inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->calls, 3u); // 2 from outer_scope + 1 from worker

    bool saw_worker = false;
    std::uint64_t worker_ns = 0;
    for (const auto& t : rep.threads) {
        if (t.name == "worker99") {
            saw_worker = true;
            worker_ns = t.root_ns;
        }
    }
    EXPECT_TRUE(saw_worker);
    EXPECT_GT(worker_ns, 0u);
    // Worker root time is reported but excluded from attributed_ns,
    // which is the coverage basis for the sim thread's wall clock.
    const auto* outer = find_site(rep, "test.outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(rep.attributed_ns, outer->incl_ns);
}

TEST(ProfTest, SwappingProfilersIsolatesTheirCounts)
{
    obs::Profiler first, second;
    {
        ProfGuard guard(&first);
        leaf_scope();
    }
    {
        ProfGuard guard(&second);
        leaf_scope();
        leaf_scope();
    }
    const obs::Profiler::Report rep_a = first.report();
    const obs::Profiler::Report rep_b = second.report();
    const auto* a = find_site(rep_a, "test.inner");
    const auto* b = find_site(rep_b, "test.inner");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->calls, 1u);
    EXPECT_EQ(b->calls, 2u);
}

TEST(ProfTest, AdmissionFunnelStagesAreIndividuallyVisible)
{
    obs::Profiler prof;
    {
        ProfGuard guard(&prof);
        Machine m(SocConfig::Sim());
        hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
        for (int i = 0; i < 4; ++i) {
            hyp::VnpuSpec spec;
            spec.num_cores = 5; // non-rectangular: exercises the funnel
            spec.strategy = hyp::MappingStrategy::kSimilarTopology;
            hv.create(spec);
        }
    }
    const obs::Profiler::Report rep = prof.report();
    for (const char* site :
         {"hyp.create", "machine.ctor", "funnel.enumerate",
          "funnel.wl_dedup", "funnel.memo_probe", "funnel.lb_prune"}) {
        const auto* s = find_site(rep, site);
        ASSERT_NE(s, nullptr) << site;
        EXPECT_GT(s->calls, 0u) << site;
    }
    EXPECT_GT(rep.attributed_ns, 0u);
}

TEST(ProfTest, ReportFormatsCarryScopesAndThreads)
{
    obs::Profiler prof;
    {
        ProfGuard guard(&prof);
        outer_scope();
    }
    std::ostringstream text;
    prof.write_text(text, 1'000'000'000ull);
    EXPECT_NE(text.str().find("self-profile:"), std::string::npos);
    EXPECT_NE(text.str().find("test.outer"), std::string::npos);
    EXPECT_NE(text.str().find("coverage"), std::string::npos);
    EXPECT_NE(text.str().find("per-thread profiled time:"),
              std::string::npos);

    std::ostringstream json;
    prof.write_json(json, 42);
    EXPECT_NE(json.str().find("\"wall_ns\": 42"), std::string::npos);
    EXPECT_NE(json.str().find("\"attributed_ns\""), std::string::npos);
    EXPECT_NE(json.str().find("\"name\": \"test.outer\""),
              std::string::npos);
}

} // namespace
} // namespace vnpu
