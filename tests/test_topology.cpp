/**
 * @file
 * Unit tests for the 2D mesh topology.
 */

#include <gtest/gtest.h>

#include "noc/topology.h"
#include "sim/log.h"

namespace vnpu::noc {
namespace {

TEST(TopologyTest, CoordinateMapping)
{
    MeshTopology t(4, 3);
    EXPECT_EQ(t.num_nodes(), 12);
    EXPECT_EQ(t.id_of(2, 1), 6);
    EXPECT_EQ(t.x_of(6), 2);
    EXPECT_EQ(t.y_of(6), 1);
    EXPECT_TRUE(t.valid(0));
    EXPECT_TRUE(t.valid(11));
    EXPECT_FALSE(t.valid(12));
    EXPECT_FALSE(t.valid(-1));
}

TEST(TopologyTest, HopDistanceIsManhattan)
{
    MeshTopology t(4, 4);
    EXPECT_EQ(t.hop_distance(0, 0), 0);
    EXPECT_EQ(t.hop_distance(0, 3), 3);
    EXPECT_EQ(t.hop_distance(0, 15), 6);
    EXPECT_EQ(t.hop_distance(5, 10), 2);
}

TEST(TopologyTest, NeighborsAndDirections)
{
    MeshTopology t(3, 3);
    EXPECT_EQ(t.neighbor(4, Direction::kEast), 5);
    EXPECT_EQ(t.neighbor(4, Direction::kWest), 3);
    EXPECT_EQ(t.neighbor(4, Direction::kNorth), 1);
    EXPECT_EQ(t.neighbor(4, Direction::kSouth), 7);
    EXPECT_EQ(t.neighbor(4, Direction::kLocal), 4);
    // Mesh boundary.
    EXPECT_EQ(t.neighbor(0, Direction::kWest), kInvalidCore);
    EXPECT_EQ(t.neighbor(0, Direction::kNorth), kInvalidCore);
    EXPECT_EQ(t.neighbor(8, Direction::kEast), kInvalidCore);
    EXPECT_EQ(t.neighbor(8, Direction::kSouth), kInvalidCore);

    EXPECT_EQ(t.dir_to(4, 5), Direction::kEast);
    EXPECT_EQ(t.dir_to(4, 1), Direction::kNorth);
}

TEST(TopologyTest, XyRoutingGoesXFirst)
{
    MeshTopology t(4, 4);
    // 0 -> 15: east first.
    int cur = 0;
    std::vector<int> path;
    while (cur != 15) {
        cur = t.xy_next_hop(cur, 15);
        path.push_back(cur);
    }
    EXPECT_EQ(path, (std::vector<int>{1, 2, 3, 7, 11, 15}));
    // Same column: straight south.
    EXPECT_EQ(t.xy_next_hop(1, 13), 5);
    // West movement.
    EXPECT_EQ(t.xy_next_hop(3, 0), 2);
}

TEST(TopologyTest, ChannelAssignmentByRow)
{
    MeshTopology t(6, 6);
    EXPECT_EQ(t.channel_of(0, 6), 0);
    EXPECT_EQ(t.channel_of(6, 6), 1);   // row 1
    EXPECT_EQ(t.channel_of(35, 6), 5);  // row 5
    // Fewer channels than rows: striped.
    EXPECT_EQ(t.channel_of(35, 2), 1);
}

TEST(TopologyTest, InterfaceCountOfRegions)
{
    MeshTopology t(6, 6);
    // One full row touches exactly one channel.
    CoreSet row0;
    for (int x = 0; x < 6; ++x)
        row0.set(t.id_of(x, 0));
    EXPECT_EQ(t.interfaces_of(row0, 6), 1);
    // A 2x2 block spans two rows -> two interfaces.
    CoreSet block = core_bit(t.id_of(0, 0)) | core_bit(t.id_of(1, 0)) |
                    core_bit(t.id_of(0, 1)) | core_bit(t.id_of(1, 1));
    EXPECT_EQ(t.interfaces_of(block, 6), 2);
    // The whole chip reaches all channels.
    CoreSet all = CoreSet::first_n(36);
    EXPECT_EQ(t.interfaces_of(all, 6), 6);
}

TEST(TopologyTest, InterfaceCountBeyond32Channels)
{
    // Regression: the channel accumulator was 32-bit, so `1u << ch`
    // silently wrapped (or worse) for 33+ channels. A 40-row mesh
    // with one core per row must now report every channel.
    MeshTopology t(2, 40);
    CoreSet col;
    for (int y = 0; y < 40; ++y)
        col.set(t.id_of(0, y));
    EXPECT_EQ(t.interfaces_of(col, 40), 40);
    EXPECT_EQ(t.interfaces_of(col, 33), 33);
    EXPECT_EQ(t.interfaces_of(col, 64), 40);
    // A single high-row core maps to a channel index above 31.
    EXPECT_EQ(t.interfaces_of(core_bit(t.id_of(1, 39)), 64), 1);
    // Channel counts past the 64-bit accumulator are rejected.
    EXPECT_THROW(t.interfaces_of(col, 65), SimFatal);
}

TEST(TopologyTest, MemoryDistanceLabels)
{
    MeshTopology t(4, 2);
    auto labels = t.memory_distance_labels();
    EXPECT_EQ(labels[0], 0);
    EXPECT_EQ(labels[3], 3);
    EXPECT_EQ(labels[4], 0);
    EXPECT_EQ(labels[7], 3);
}

TEST(TopologyTest, ToGraphMatchesMesh)
{
    MeshTopology t(3, 2);
    graph::Graph g = t.to_graph();
    EXPECT_EQ(g.num_nodes(), 6);
    EXPECT_EQ(g.num_edges(), 7);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(2, 5));
}

TEST(TopologyTest, RejectsOversizedMesh)
{
    // Pure-topology meshes may exceed kMaxCores (large-mesh golden
    // traces), but not the kMaxMeshNodes routing-model limit.
    EXPECT_NO_THROW(MeshTopology(16, 16));
    EXPECT_THROW(MeshTopology(40, 40), SimFatal);
    EXPECT_THROW(MeshTopology(0, 4), SimFatal);
}

TEST(TopologyTest, LargeMeshRoutesXy)
{
    MeshTopology t(16, 16);
    EXPECT_EQ(t.num_nodes(), 256);
    // XY: east along row 0, then south down column 15.
    int cur = 0;
    int hops = 0;
    while (cur != 255) {
        cur = t.xy_next_hop(cur, 255);
        ++hops;
    }
    EXPECT_EQ(hops, t.hop_distance(0, 255));
    EXPECT_EQ(hops, 30);
}

} // namespace
} // namespace vnpu::noc
