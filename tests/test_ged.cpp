/**
 * @file
 * Tests for topology edit distance, including the paper's Figure 9
 * example and brute-force cross-checks of the exact search.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "graph/ged.h"
#include "graph/graph.h"
#include "sim/rng.h"

namespace vnpu::graph {
namespace {

/** Reference: minimum mapping cost over all n! bijections. */
double
brute_force_ged(const Graph& req, const Graph& cand, const GedOptions& opt)
{
    int n = req.num_nodes();
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    double best = std::numeric_limits<double>::infinity();
    do {
        best = std::min(best, ged_mapping_cost(req, cand, perm, opt));
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
}

TEST(GedTest, IdenticalGraphsHaveZeroDistance)
{
    Graph g = Graph::mesh(2, 3);
    GedResult r = exact_ged(g, g);
    EXPECT_DOUBLE_EQ(r.cost, 0.0);
    // Mapping realizes zero cost.
    EXPECT_DOUBLE_EQ(ged_mapping_cost(g, g, r.mapping), 0.0);
}

TEST(GedTest, IsomorphicGraphsHaveZeroDistance)
{
    // A 2x2 mesh is a 4-ring under relabeling.
    Graph a = Graph::mesh(2, 2);
    Graph b(4);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(3, 0);
    EXPECT_DOUBLE_EQ(exact_ged(a, b).cost, 0.0);
}

TEST(GedTest, SingleEdgeDifferenceCostsOne)
{
    Graph a = Graph::chain(4);
    Graph b = Graph::chain(4);
    b.add_edge(0, 3); // ring: one extra edge -> one insertion
    EXPECT_DOUBLE_EQ(exact_ged(a, b).cost, 1.0);
    EXPECT_DOUBLE_EQ(exact_ged(b, a).cost, 1.0); // one deletion
}

TEST(GedTest, PaperFigure9Example)
{
    // Figure 9: transforming T1 into T2 takes two edge deletions, one
    // edge insertion and one node substitution => TED = 4.
    //
    // T1: 5-node chain 0-1-2-3-4 (4 edges).
    // T2: 3-star around node 0 plus an isolated node with a different
    //     attribute. The chain's maximum degree is 2, so at most two
    //     star edges can be preserved: 4-2 = 2 deletions, 3-2 = 1
    //     insertion, plus the forced node substitution = 4.
    Graph t1 = Graph::chain(5);
    Graph t2(5);
    t2.add_edge(0, 1);
    t2.add_edge(0, 2);
    t2.add_edge(0, 3);
    t2.set_label(4, 1); // substituted node type

    GedOptions opt; // unit costs
    double expected = brute_force_ged(t1, t2, opt);
    EXPECT_DOUBLE_EQ(expected, 4.0);
    EXPECT_DOUBLE_EQ(exact_ged(t1, t2, opt).cost, 4.0);
}

TEST(GedTest, ExactMatchesBruteForceOnRandomPairs)
{
    Rng rng(31);
    for (int trial = 0; trial < 25; ++trial) {
        int n = 3 + static_cast<int>(rng.next_below(4)); // 3..6 nodes
        auto rand_graph = [&](double p) {
            Graph g(n);
            for (int a = 0; a < n; ++a)
                for (int b = a + 1; b < n; ++b)
                    if (rng.next_double() < p)
                        g.add_edge(a, b);
            if (rng.next_double() < 0.5)
                g.set_label(static_cast<int>(rng.next_below(n)), 1);
            return g;
        };
        Graph a = rand_graph(0.5);
        Graph b = rand_graph(0.5);
        GedOptions opt;
        EXPECT_DOUBLE_EQ(exact_ged(a, b, opt).cost,
                         brute_force_ged(a, b, opt))
            << "trial " << trial;
    }
}

TEST(GedTest, ApproxIsUpperBoundAndOftenTight)
{
    Rng rng(77);
    int tight = 0;
    const int trials = 20;
    for (int trial = 0; trial < trials; ++trial) {
        int n = 5 + static_cast<int>(rng.next_below(3));
        auto rand_graph = [&] {
            Graph g(n);
            for (int a = 0; a < n; ++a)
                for (int b = a + 1; b < n; ++b)
                    if (rng.next_double() < 0.4)
                        g.add_edge(a, b);
            return g;
        };
        Graph a = rand_graph();
        Graph b = rand_graph();
        double exact = exact_ged(a, b).cost;
        GedResult approx = approx_ged(a, b);
        EXPECT_GE(approx.cost + 1e-9, exact);
        // Approx result is self-consistent.
        EXPECT_NEAR(ged_mapping_cost(a, b, approx.mapping), approx.cost,
                    1e-9);
        if (approx.cost <= exact + 1e-9)
            ++tight;
    }
    // The 2-opt heuristic should match the optimum most of the time on
    // these small graphs.
    EXPECT_GE(tight, trials / 2);
}

TEST(GedTest, ApproxFindsExactMatchForMeshInMesh)
{
    // Same shape => zero distance even through the approximation.
    Graph req = Graph::mesh(3, 3);
    Graph cand = Graph::mesh(3, 3);
    GedOptions opt;
    opt.exact_limit = 0; // force approximation
    GedResult r = ged(req, cand, opt);
    EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(GedTest, CustomNodeCostPenalizesLabelDistance)
{
    // Heterogeneous nodes: penalty = |distance-to-memory difference|
    // (paper: node-match penalty from memory-interface distance).
    Graph a(2);
    a.set_label(0, 0);
    a.set_label(1, 3);
    Graph b(2);
    b.set_label(0, 2);
    b.set_label(1, 0);
    GedOptions opt;
    opt.node_cost = [](int x, int y) {
        return static_cast<double>(std::abs(x - y));
    };
    // Best bijection: 0->1 (|0-0|=0), 1->0 (|3-2|=1) => cost 1.
    EXPECT_DOUBLE_EQ(exact_ged(a, b, opt).cost, 1.0);
}

TEST(GedTest, CustomEdgeCostPenalizesCriticalPath)
{
    // Critical edge 0-1 in the request costs 10 to delete; mapping
    // should preserve it even at the expense of other edges.
    Graph req = Graph::chain(4);          // 0-1-2-3
    Graph cand(4);                         // only one edge available
    cand.add_edge(2, 3);
    GedOptions opt;
    opt.edge_del_cost = [](int u, int v) {
        return (u == 0 && v == 1) ? 10.0 : 1.0;
    };
    GedResult r = exact_ged(req, cand, opt);
    // The preserved candidate edge must host req edge 0-1: cost = two
    // ordinary deletions (1-2, 2-3) = 2. Keeping any other edge would
    // cost >= 10 + 1.
    EXPECT_DOUBLE_EQ(r.cost, 2.0);
    EXPECT_TRUE(cand.has_edge(r.mapping[0], r.mapping[1]));
}

TEST(GedTest, MappingIsABijection)
{
    Graph a = Graph::mesh(2, 3);
    Graph b = Graph::ring(6);
    for (const GedResult& r : {exact_ged(a, b), approx_ged(a, b)}) {
        std::vector<bool> used(6, false);
        for (int img : r.mapping) {
            ASSERT_GE(img, 0);
            ASSERT_LT(img, 6);
            EXPECT_FALSE(used[img]);
            used[img] = true;
        }
    }
}

TEST(GedTest, DispatchUsesExactForSmall)
{
    Graph a = Graph::chain(5);
    Graph b = Graph::ring(5);
    GedOptions opt;
    opt.exact_limit = 9;
    EXPECT_DOUBLE_EQ(ged(a, b, opt).cost, exact_ged(a, b, opt).cost);
}

} // namespace
} // namespace vnpu::graph
