/**
 * @file
 * Differential test harness for the exact-isomorphism mapping strategy.
 *
 * The exact strategy is the paper's topology lock-in baseline, so it is
 * held to an oracle standard: every verdict is cross-checked against an
 * independent reference — brute-force enumeration of connected free
 * subsets plus a self-contained backtracking isomorphism checker (no
 * shared code with the production VF2 search) on small instances, a
 * coordinate-level polyomino placement oracle on DCRA-scale fuzz runs,
 * and the similar-topology strategy's zero-cost hits on randomized
 * 16x16 / 32x32 fixtures.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/enumerate.h"
#include "hyp/topology_mapper.h"
#include "reference/polyomino_shapes.h"
#include "sim/rng.h"

namespace vnpu::hyp {
namespace {

using testref::cross_shape;
using testref::l_shape;
using testref::shape_graph;
using testref::t_shape;

// ---- Independent reference implementations ---------------------------

/**
 * Reference isomorphism test: plain backtracking on vertex id order with
 * adjacency-mask equality. Deliberately naive and structurally unlike
 * the production search (no ordering heuristic, no degree masks) so a
 * shared bug cannot hide.
 */
bool
ref_iso_rec(const graph::Graph& a, const graph::Graph& b,
            std::vector<int>& img, std::vector<char>& used, int v)
{
    const int n = a.num_nodes();
    if (v == n)
        return true;
    for (int h = 0; h < n; ++h) {
        if (used[h] || a.label(v) != b.label(h) ||
            a.degree(v) != b.degree(h))
            continue;
        bool ok = true;
        for (int u = 0; u < v && ok; ++u)
            ok = a.has_edge(u, v) == b.has_edge(img[u], h);
        if (!ok)
            continue;
        img[v] = h;
        used[h] = 1;
        if (ref_iso_rec(a, b, img, used, v + 1))
            return true;
        used[h] = 0;
    }
    return false;
}

bool
ref_isomorphic(const graph::Graph& a, const graph::Graph& b)
{
    if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges())
        return false;
    std::vector<int> img(a.num_nodes(), -1);
    std::vector<char> used(a.num_nodes(), 0);
    return ref_iso_rec(a, b, img, used, 0);
}

/**
 * Brute-force oracle: does any connected k-subset of `free` induce a
 * subgraph isomorphic to `pattern`? Enumerates every subset; the
 * (isomorphism-invariant) WL hash only orders the work, the verdict
 * always comes from the reference checker.
 */
bool
oracle_exists(const graph::Graph& mesh, const graph::Graph& pattern,
              const CoreSet& free)
{
    const std::uint64_t want = pattern.wl_hash();
    bool found = false;
    graph::enumerate_connected_subsets(
        mesh, pattern.num_nodes(), free, [&](const graph::NodeMask& m) {
            graph::Graph sub =
                mesh.induced(graph::Graph::mask_to_nodes(m));
            if (sub.wl_hash() == want && ref_isomorphic(pattern, sub)) {
                found = true;
                return false; // stop enumeration
            }
            return true;
        });
    return found;
}

/** The assignment realizes the request exactly: distinct free cores
 *  whose mesh adjacency (`mesh` = the topology's graph, built once by
 *  the caller) mirrors the request edge-for-edge. */
void
expect_exact_placement(const graph::Graph& mesh,
                       const graph::Graph& vtopo, const CoreSet& free,
                       const std::vector<CoreId>& assignment)
{
    ASSERT_EQ(assignment.size(),
              static_cast<std::size_t>(vtopo.num_nodes()));
    std::set<CoreId> used;
    for (CoreId c : assignment) {
        EXPECT_TRUE(free.test(c));
        EXPECT_TRUE(used.insert(c).second);
    }
    for (int u = 0; u < vtopo.num_nodes(); ++u)
        for (int v = u + 1; v < vtopo.num_nodes(); ++v)
            EXPECT_EQ(vtopo.has_edge(u, v),
                      mesh.has_edge(assignment[u], assignment[v]))
                << "virtual pair (" << u << "," << v << ")";
}

MappingRequest
exact_request(graph::Graph g)
{
    MappingRequest req;
    req.vtopo = std::move(g);
    req.strategy = MappingStrategy::kExact;
    return req;
}

// ---- Differential harness: all small topologies vs brute force -------

/**
 * Every connected topology of up to 7 nodes that can occur as an
 * induced mesh region (collected by enumerating a 4x4 mesh and
 * deduplicating by shape), plus deliberately non-embeddable shapes,
 * against mixed free-set fixtures on a 5x5 mesh: the mapper's verdict
 * must equal the brute-force oracle's on every (topology, fixture)
 * pair, and every success must be a valid exact placement.
 */
TEST(ExactDifferentialTest, AllSmallTopologiesMatchBruteForce)
{
    // Collect distinct pattern shapes.
    graph::Graph donor = graph::Graph::mesh(4, 4);
    std::vector<graph::Graph> patterns;
    std::set<std::uint64_t> shapes_seen;
    for (int k = 2; k <= 7; ++k) {
        graph::enumerate_connected_subsets(
            donor, k, graph::NodeMask::first_n(16),
            [&](const graph::NodeMask& m) {
                graph::Graph sub =
                    donor.induced(graph::Graph::mask_to_nodes(m));
                if (shapes_seen.insert(sub.wl_hash()).second)
                    patterns.push_back(std::move(sub));
                return true;
            });
    }
    // Non-embeddable controls: odd cycles (mesh is bipartite), a
    // degree-5 star, K4.
    patterns.push_back(graph::Graph::ring(3));
    patterns.push_back(graph::Graph::ring(5));
    {
        graph::Graph star(6);
        for (int leaf = 1; leaf < 6; ++leaf)
            star.add_edge(0, leaf);
        patterns.push_back(std::move(star));
        graph::Graph k4(4);
        for (int a = 0; a < 4; ++a)
            for (int b = a + 1; b < 4; ++b)
                k4.add_edge(a, b);
        patterns.push_back(std::move(k4));
    }
    ASSERT_GT(patterns.size(), 30u);

    noc::MeshTopology topo(5, 5);
    TopologyMapper mapper(topo);
    graph::Graph mesh = topo.to_graph();

    // Fixtures: fully free plus seeded random occupancies of varying
    // density, including heavily fragmented ones where exact requests
    // genuinely fail.
    std::vector<CoreSet> fixtures{CoreSet::first_n(25)};
    Rng rng(0xd1ff);
    for (int f = 0; f < 6; ++f) {
        CoreSet free = CoreSet::first_n(25);
        int holes = 3 + f * 2;
        for (int i = 0; i < holes; ++i)
            free.reset(static_cast<int>(rng.next_below(25)));
        fixtures.push_back(free);
    }

    int disagreements = 0, successes = 0, refusals = 0;
    for (const graph::Graph& pattern : patterns) {
        for (const CoreSet& free : fixtures) {
            if (free.count() < pattern.num_nodes())
                continue;
            MappingResult r = mapper.map(exact_request(pattern), free);
            ASSERT_FALSE(r.budget_exhausted);
            bool exists = oracle_exists(mesh, pattern, free);
            if (r.ok != exists)
                ++disagreements;
            EXPECT_EQ(r.ok, exists)
                << "pattern n=" << pattern.num_nodes()
                << " e=" << pattern.num_edges()
                << " free=" << free.to_string();
            if (r.ok) {
                ++successes;
                EXPECT_EQ(r.ted, 0.0);
                expect_exact_placement(mesh, pattern, free, r.assignment);
            } else {
                ++refusals;
            }
        }
    }
    EXPECT_EQ(disagreements, 0);
    // The sweep must exercise both verdicts to mean anything.
    EXPECT_GT(successes, 100);
    EXPECT_GT(refusals, 20);
}

/**
 * Brute-force differential coverage up to 16-node requests: seeded
 * random connected patterns of 8..16 nodes (mesh-region shapes, id
 * permutations of them, and edge-dropped mutants that are usually not
 * realizable), each cross-checked against exhaustive enumeration over
 * every fixture. The 5x5 host keeps the full subset scan affordable
 * even for the 16-node refusals.
 */
TEST(ExactDifferentialTest, RandomMidSizeTopologiesMatchBruteForce)
{
    noc::MeshTopology topo(5, 5);
    TopologyMapper mapper(topo);
    graph::Graph mesh = topo.to_graph();
    Rng rng(0x16b);

    std::vector<CoreSet> fixtures{CoreSet::first_n(25)};
    for (int f = 0; f < 2; ++f) {
        CoreSet free = CoreSet::first_n(25);
        for (int i = 0; i < 4 + 2 * f; ++i)
            free.reset(static_cast<int>(rng.next_below(25)));
        fixtures.push_back(free);
    }

    int successes = 0, refusals = 0;
    for (int k : {8, 10, 12, 14, 16}) {
        auto regions = graph::sample_connected_subsets(
            mesh, k, CoreSet::first_n(25), 18, rng);
        ASSERT_GE(regions.size(), 6u) << "k=" << k;
        for (int i = 0; i < 6; ++i) {
            graph::Graph pattern = mesh.induced(
                graph::Graph::mask_to_nodes(regions[i]));
            if (i % 3 == 1) {
                // Random id permutation (Fisher-Yates).
                std::vector<int> perm(k);
                for (int v = 0; v < k; ++v)
                    perm[v] = v;
                for (int v = k - 1; v > 0; --v)
                    std::swap(perm[v],
                              perm[rng.next_below(
                                  static_cast<std::uint64_t>(v) + 1)]);
                graph::Graph shuffled(k);
                for (auto [a, b] : pattern.edges())
                    shuffled.add_edge(perm[a], perm[b]);
                pattern = std::move(shuffled);
            } else if (i % 3 == 2) {
                // Drop one random edge: often no induced region can
                // realize the mutant, exercising proven refusals.
                auto edges = pattern.edges();
                auto [a, b] =
                    edges[rng.next_below(edges.size())];
                pattern.remove_edge(a, b);
                if (!pattern.is_connected())
                    continue; // exact requires connected (R-3)
            }
            for (const CoreSet& free : fixtures) {
                MappingResult r =
                    mapper.map(exact_request(pattern), free);
                ASSERT_FALSE(r.budget_exhausted);
                bool exists = oracle_exists(mesh, pattern, free);
                EXPECT_EQ(r.ok, exists)
                    << "k=" << k << " variant " << i
                    << " free=" << free.to_string();
                if (r.ok) {
                    ++successes;
                    EXPECT_EQ(r.ted, 0.0);
                    expect_exact_placement(mesh, pattern, free,
                                           r.assignment);
                } else {
                    ++refusals;
                }
            }
        }
    }
    EXPECT_GT(successes, 30);
    EXPECT_GT(refusals, 10);
}

/** Node numbering must not matter: permuted copies of one topology get
 *  the same verdict and a valid placement. */
TEST(ExactDifferentialTest, VerdictInvariantUnderRelabeling)
{
    noc::MeshTopology topo(6, 6);
    TopologyMapper mapper(topo);
    graph::Graph mesh = topo.to_graph();
    graph::Graph base = shape_graph(l_shape(3, 4, 1)); // 6-node L path
    Rng rng(42);
    CoreSet free = CoreSet::first_n(36);
    for (int i = 0; i < 7; ++i)
        free.reset(static_cast<int>(rng.next_below(36)));

    MappingResult ref = mapper.map(exact_request(base), free);
    for (int trial = 0; trial < 8; ++trial) {
        // Random permutation of vertex ids.
        std::vector<int> perm(base.num_nodes());
        for (int i = 0; i < base.num_nodes(); ++i)
            perm[i] = i;
        for (int i = base.num_nodes() - 1; i > 0; --i)
            std::swap(perm[i],
                      perm[rng.next_below(static_cast<std::uint64_t>(i) +
                                          1)]);
        graph::Graph shuffled(base.num_nodes());
        for (auto [a, b] : base.edges())
            shuffled.add_edge(perm[a], perm[b]);
        MappingResult r = mapper.map(exact_request(shuffled), free);
        ASSERT_EQ(r.ok, ref.ok) << "trial " << trial;
        if (r.ok)
            expect_exact_placement(mesh, shuffled, free, r.assignment);
    }
}

// ---- Cross-check against the similar strategy's zero-cost hits -------

/**
 * On randomized DCRA-scale fixtures, whenever the similar-topology
 * strategy finds a TED-0 placement, an isomorphic region exists — so
 * the exact strategy must find one too.
 */
TEST(ExactDifferentialTest, ExactCoversSimilarZeroCostHits)
{
    for (int side : {16, 32}) {
        noc::MeshTopology topo(side, side);
        TopologyMapper mapper(topo);
        graph::Graph mesh = topo.to_graph();
        Rng rng(0xcafe + side);
        int zero_cost_hits = 0;
        for (int trial = 0; trial < 6; ++trial) {
            CoreSet free = CoreSet::first_n(side * side);
            int holes = static_cast<int>(rng.next_below(side * 2));
            for (int i = 0; i < holes; ++i)
                free.reset(
                    static_cast<int>(rng.next_below(side * side)));
            int k = 6 + static_cast<int>(rng.next_below(15));

            MappingRequest sim;
            sim.vtopo = TopologyMapper::snake_topology(k);
            sim.strategy = MappingStrategy::kSimilarTopology;
            sim.max_candidates = 48;
            MappingResult rs = mapper.map(sim, free);
            if (!rs.ok || rs.ted != 0.0)
                continue;
            ++zero_cost_hits;

            MappingResult re =
                mapper.map(exact_request(sim.vtopo), free);
            ASSERT_TRUE(re.ok)
                << side << "x" << side << " trial " << trial
                << ": similar found TED 0 but exact failed: "
                << re.error;
            EXPECT_EQ(re.ted, 0.0);
            expect_exact_placement(mesh, sim.vtopo, free, re.assignment);
        }
        EXPECT_GT(zero_cost_hits, 0) << side << "x" << side;
    }
}

// ---- Acceptance: non-rectangular shapes at DCRA scale ----------------

TEST(ExactScaleTest, IrregularShapesSucceedOnFreeLargeMeshes)
{
    struct Shape {
        const char* name;
        std::vector<std::pair<int, int>> cells;
    };
    std::vector<Shape> shapes{
        {"L 6x4+2", l_shape(6, 4, 2)},          // 20 nodes
        {"T bar8 stem5x2", t_shape(8, 5, 2)},   // 22 nodes
        {"cross 6x2", cross_shape(6, 2)},       // 20 nodes
        {"L 8x8 thin", l_shape(8, 8, 2)},       // 28 nodes
        {"cross 7x3", cross_shape(7, 3)},       // 33 -> capped below
    };
    for (int side : {16, 32}) {
        noc::MeshTopology topo(side, side);
        TopologyMapper mapper(topo);
        graph::Graph mesh = topo.to_graph();
        CoreSet free = CoreSet::first_n(side * side);
        for (const Shape& s : shapes) {
            if (static_cast<int>(s.cells.size()) > 32)
                continue;
            graph::Graph pattern = shape_graph(s.cells);
            MappingResult r = mapper.map(exact_request(pattern), free);
            ASSERT_TRUE(r.ok) << s.name << " on " << side << "x" << side
                              << ": " << r.error;
            EXPECT_EQ(r.ted, 0.0);
            expect_exact_placement(mesh, pattern, free, r.assignment);
            // The slide fast path should carry these: a full VF2 walk
            // is budgeted but not needed on an empty mesh.
            EXPECT_LT(r.search_steps, 200000u) << s.name;
        }
    }
}

TEST(ExactScaleTest, BudgetBoundsWorkAndIsReported)
{
    noc::MeshTopology topo(32, 32);
    TopologyMapper mapper(topo);
    // Checkerboard-ish fragmentation: no 2x2 block survives, so a big
    // rectangle request fails — the search must refute or give up
    // within budget, and say which.
    CoreSet free = CoreSet::first_n(1024);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            if ((x + y) % 2 == 0)
                free.reset(topo.id_of(x, y));

    MappingRequest req = exact_request(graph::Graph::mesh(4, 5));
    req.exact_search_budget = 2000;
    MappingResult r = mapper.map(req, free);
    EXPECT_FALSE(r.ok);
    // Either verdict is legal under a tiny budget, but the effort cap
    // is hard: embedding probe + slide + bounded VF2.
    EXPECT_LE(r.search_steps, 2u * req.exact_search_budget + 2);
    if (!r.budget_exhausted) {
        // Proven absence must agree with geometry: no free 2x2 exists.
        bool any_2x2 = false;
        for (int y = 0; y + 1 < 32 && !any_2x2; ++y)
            for (int x = 0; x + 1 < 32 && !any_2x2; ++x)
                any_2x2 = free.test(topo.id_of(x, y)) &&
                          free.test(topo.id_of(x + 1, y)) &&
                          free.test(topo.id_of(x, y + 1)) &&
                          free.test(topo.id_of(x + 1, y + 1));
        EXPECT_FALSE(any_2x2);
    }
}

TEST(ExactScaleTest, DisconnectedRequestHonorsConnectivityFlag)
{
    noc::MeshTopology topo(8, 8);
    TopologyMapper mapper(topo);
    graph::Graph mesh = topo.to_graph();
    // Two disjoint 2x2 blocks.
    graph::Graph two_blocks(8);
    auto block = [&](int base) {
        two_blocks.add_edge(base + 0, base + 1);
        two_blocks.add_edge(base + 0, base + 2);
        two_blocks.add_edge(base + 1, base + 3);
        two_blocks.add_edge(base + 2, base + 3);
    };
    block(0);
    block(4);

    MappingRequest req = exact_request(two_blocks);
    EXPECT_FALSE(mapper.map(req, CoreSet::first_n(64)).ok); // R-3

    req.require_connected = false;
    // Free cores: two islands far apart, each exactly 2x2.
    CoreSet free;
    for (int id : {0, 1, 8, 9})
        free.set(id);
    for (int id : {54, 55, 62, 63})
        free.set(id);
    MappingResult r = mapper.map(req, free);
    ASSERT_TRUE(r.ok) << r.error;
    expect_exact_placement(mesh, two_blocks, free, r.assignment);
}

// ---- Fragmentation-churn fuzz (satellite) ----------------------------

/**
 * Independent placement oracle for polyomino requests: try every
 * translate of every grid symmetry of the cell set directly against
 * the free set, one coordinate at a time. Complete for congruent
 * placements, shares no code with the mapper.
 */
bool
polyomino_fits(const noc::MeshTopology& topo,
               const std::vector<std::pair<int, int>>& cells,
               const CoreSet& free)
{
    for (int t = 0; t < 8; ++t) {
        std::vector<std::pair<int, int>> c = cells;
        for (auto& [x, y] : c) {
            if (t & 4)
                std::swap(x, y);
            if (t & 1)
                x = -x;
            if (t & 2)
                y = -y;
        }
        int min_x = INT32_MAX, min_y = INT32_MAX, max_x = INT32_MIN,
            max_y = INT32_MIN;
        for (auto [x, y] : c) {
            min_x = std::min(min_x, x);
            min_y = std::min(min_y, y);
            max_x = std::max(max_x, x);
            max_y = std::max(max_y, y);
        }
        int w = max_x - min_x + 1, h = max_y - min_y + 1;
        for (int ay = 0; ay + h <= topo.height(); ++ay)
            for (int ax = 0; ax + w <= topo.width(); ++ax) {
                bool fits = true;
                for (auto [x, y] : c)
                    fits = fits && free.test(topo.id_of(
                                       ax + x - min_x, ay + y - min_y));
                if (fits)
                    return true;
            }
    }
    return false;
}

TEST(ExactFuzzTest, ChurnOn32x32AgreesWithPlacementOracle)
{
    noc::MeshTopology topo(32, 32);
    TopologyMapper mapper(topo);
    graph::Graph mesh = topo.to_graph();
    Rng rng(0xf022);

    std::vector<std::vector<std::pair<int, int>>> probe_shapes{
        l_shape(4, 4, 1),  // 7-node L
        l_shape(5, 4, 2),  // 16-node thick L
        t_shape(5, 4, 1),  // 8-node T
        t_shape(6, 5, 2),  // 18-node thick T
        cross_shape(4, 2), // 12-node plus
        l_shape(6, 5, 2),  // 20-node L
    };

    CoreSet free = CoreSet::first_n(1024);
    std::vector<std::vector<CoreId>> live;
    int oracle_hits = 0, oracle_misses = 0;
    for (int step = 0; step < 60; ++step) {
        // Churn toward high occupancy: allocate snake tenants; when an
        // allocation bounces (or occasionally at random), retire one —
        // utilization hovers near the fragmentation-bound maximum, so
        // the exact probes below see genuinely hard free sets.
        MappingRequest fill;
        fill.vtopo = TopologyMapper::snake_topology(
            16 + static_cast<int>(rng.next_below(48)));
        fill.strategy = MappingStrategy::kSimilarTopology;
        fill.max_candidates = 24;
        MappingResult filled = mapper.map(fill, free);
        if (filled.ok) {
            for (CoreId c : filled.assignment)
                free.reset(c);
            live.push_back(filled.assignment);
        }
        if (!live.empty() &&
            (!filled.ok || rng.next_below(6) == 0)) {
            std::size_t at = rng.next_below(live.size());
            for (CoreId c : live[at])
                free.set(c);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
        }

        // Probe: an exact L/T/cross request against the current holes.
        const auto& cells =
            probe_shapes[step % probe_shapes.size()];
        graph::Graph pattern = shape_graph(cells);
        MappingResult r = mapper.map(exact_request(pattern), free);
        ASSERT_FALSE(r.budget_exhausted) << "step " << step;
        bool congruent_exists = polyomino_fits(topo, cells, free);
        if (congruent_exists) {
            ++oracle_hits;
            ASSERT_TRUE(r.ok)
                << "step " << step << ": oracle placed a "
                << cells.size() << "-cell shape the mapper missed";
        } else {
            ++oracle_misses;
        }
        if (r.ok)
            expect_exact_placement(mesh, pattern, free, r.assignment);
        else
            EXPECT_FALSE(congruent_exists);
    }
    // The churn must produce both outcomes for the fuzz to bite.
    EXPECT_GT(oracle_hits, 10);
    EXPECT_GT(oracle_misses, 0);
}

/** Small-free-set churn where full brute force is affordable: the
 *  mapper verdict must equal exhaustive enumeration, both ways. */
TEST(ExactFuzzTest, SmallFreeSetsMatchFullBruteForce)
{
    noc::MeshTopology topo(32, 32);
    TopologyMapper mapper(topo);
    graph::Graph mesh = topo.to_graph();
    Rng rng(0xbead);

    std::vector<std::vector<std::pair<int, int>>> probe_shapes{
        l_shape(3, 3, 1), // 5-node L
        t_shape(3, 3, 1), // 5-node T
        l_shape(4, 3, 2), // 12-node thick L
    };
    for (int trial = 0; trial < 12; ++trial) {
        // A random small window of free cores with random holes, placed
        // anywhere on the 32x32 mesh (exercises word-boundary ids).
        int wx = static_cast<int>(rng.next_below(26));
        int wy = static_cast<int>(rng.next_below(26));
        CoreSet free;
        for (int y = 0; y < 5; ++y)
            for (int x = 0; x < 6; ++x)
                if (rng.next_below(4) != 0)
                    free.set(topo.id_of(wx + x, wy + y));
        for (const auto& cells : probe_shapes) {
            graph::Graph pattern = shape_graph(cells);
            if (free.count() < pattern.num_nodes())
                continue;
            MappingResult r = mapper.map(exact_request(pattern), free);
            ASSERT_FALSE(r.budget_exhausted);
            bool exists = oracle_exists(mesh, pattern, free);
            EXPECT_EQ(r.ok, exists)
                << "trial " << trial << " shape n="
                << pattern.num_nodes() << " free=" << free.to_string();
            if (r.ok)
                expect_exact_placement(mesh, pattern, free,
                                       r.assignment);
        }
    }
}

// ---- find_induced_isomorphism unit coverage --------------------------

TEST(InducedIsoTest, InducedNonEdgesAreEnforced)
{
    // chain(4) must never land on a 2x2 block (extra edge) even though
    // the block contains a spanning path.
    graph::Graph host = graph::Graph::mesh(2, 2);
    graph::IsoResult r = graph::find_induced_isomorphism(
        graph::Graph::chain(4), host, graph::NodeMask::first_n(4));
    EXPECT_FALSE(r.found);
    EXPECT_FALSE(r.budget_exhausted);

    // On a 1x4 strip it fits.
    graph::Graph strip = graph::Graph::mesh(4, 1);
    r = graph::find_induced_isomorphism(graph::Graph::chain(4), strip,
                                        graph::NodeMask::first_n(4));
    ASSERT_TRUE(r.found);
}

TEST(InducedIsoTest, LabelsGateCandidates)
{
    graph::Graph pattern = graph::Graph::chain(2);
    pattern.set_label(1, 7);
    graph::Graph host = graph::Graph::chain(3);
    graph::NodeMask all = graph::NodeMask::first_n(3);
    EXPECT_FALSE(
        graph::find_induced_isomorphism(pattern, host, all).found);
    host.set_label(2, 7);
    graph::IsoResult r =
        graph::find_induced_isomorphism(pattern, host, all);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.mapping[1], 2);

    // Custom compatibility overrides label equality.
    graph::IsoOptions opt;
    opt.node_compat = [](int, int) { return true; };
    host.set_label(2, 0);
    EXPECT_TRUE(
        graph::find_induced_isomorphism(pattern, host, all, opt).found);
}

TEST(InducedIsoTest, WideHostMatchesNarrowHost)
{
    // The same pattern and window must resolve identically through the
    // u64 fast path (8x8 host) and the wide-mask path (9x9+ host).
    graph::Graph pattern = shape_graph(t_shape(4, 3, 1));
    noc::MeshTopology small(8, 8), big(12, 12);
    graph::NodeMask win_small, win_big;
    for (int y = 2; y < 7; ++y)
        for (int x = 3; x < 8; ++x) {
            if ((x + y) % 7 == 0)
                continue;
            win_small.set(small.id_of(x, y));
            win_big.set(big.id_of(x, y));
        }
    graph::IsoResult a = graph::find_induced_isomorphism(
        pattern, small.to_graph(), win_small);
    graph::IsoResult b = graph::find_induced_isomorphism(
        pattern, big.to_graph(), win_big);
    EXPECT_EQ(a.found, b.found);
    ASSERT_TRUE(a.found);
    // Same placement modulo the coordinate re-indexing.
    for (std::size_t i = 0; i < a.mapping.size(); ++i) {
        EXPECT_EQ(small.x_of(a.mapping[i]), big.x_of(b.mapping[i]));
        EXPECT_EQ(small.y_of(a.mapping[i]), big.y_of(b.mapping[i]));
    }
}

TEST(InducedIsoTest, DegreeSequencePrefilterRejectsCheaply)
{
    // A 5-leaf star cannot embed in a mesh (max degree 4): the search
    // must refute without any backtracking steps.
    graph::Graph star(6);
    for (int leaf = 1; leaf < 6; ++leaf)
        star.add_edge(0, leaf);
    graph::IsoResult r = graph::find_induced_isomorphism(
        star, graph::Graph::mesh(16, 16), graph::NodeMask::first_n(256));
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.steps, 0u);
}

} // namespace
} // namespace vnpu::hyp
