/**
 * @file
 * Unit and property tests for the bitmask graph library.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/graph.h"
#include "sim/log.h"
#include "sim/rng.h"

namespace vnpu::graph {
namespace {

TEST(GraphTest, MeshStructure)
{
    Graph g = Graph::mesh(3, 2);
    EXPECT_EQ(g.num_nodes(), 6);
    // Grid edges: 2 rows x 2 horizontal + 3 vertical = 7.
    EXPECT_EQ(g.num_edges(), 7);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(0, 3));
    EXPECT_FALSE(g.has_edge(0, 4));
    EXPECT_TRUE(g.is_connected());
    // Corner degree 2, edge-center degree 3.
    EXPECT_EQ(g.degree(0), 2);
    EXPECT_EQ(g.degree(1), 3);
}

TEST(GraphTest, ChainAndRing)
{
    Graph c = Graph::chain(5);
    EXPECT_EQ(c.num_edges(), 4);
    EXPECT_TRUE(c.is_connected());
    Graph r = Graph::ring(5);
    EXPECT_EQ(r.num_edges(), 5);
    EXPECT_TRUE(r.has_edge(4, 0));
}

TEST(GraphTest, TorusAddsWraparound)
{
    Graph t = Graph::torus(4, 3);
    Graph m = Graph::mesh(4, 3);
    EXPECT_GT(t.num_edges(), m.num_edges());
    EXPECT_TRUE(t.has_edge(0, 3));  // row wrap
    EXPECT_TRUE(t.has_edge(0, 8));  // column wrap
}

TEST(GraphTest, AddRemoveEdgeIdempotent)
{
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 1);
    EXPECT_EQ(g.num_edges(), 1);
    g.remove_edge(0, 1);
    g.remove_edge(0, 1);
    EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, ConnectivityDetectsSplit)
{
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    EXPECT_FALSE(g.is_connected());
    g.add_edge(1, 2);
    EXPECT_TRUE(g.is_connected());
}

TEST(GraphTest, ConnectedSubsetQueries)
{
    Graph g = Graph::mesh(3, 3);
    // L-shaped region 0-1-2-5 is connected.
    NodeMask l_shape = NodeMask::from_word(0b100111);
    EXPECT_TRUE(g.is_connected_subset(l_shape));
    // Two opposite corners are not.
    NodeMask corners = NodeMask::of(0) | NodeMask::of(8);
    EXPECT_FALSE(g.is_connected_subset(corners));
    // The empty set is trivially connected.
    EXPECT_TRUE(g.is_connected_subset(NodeMask{}));
}

TEST(GraphTest, InducedSubgraphKeepsEdgesAndLabels)
{
    Graph g = Graph::mesh(3, 3);
    g.set_label(4, 7);
    Graph sub = g.induced({3, 4, 5});
    EXPECT_EQ(sub.num_nodes(), 3);
    EXPECT_EQ(sub.num_edges(), 2);
    EXPECT_TRUE(sub.has_edge(0, 1));
    EXPECT_TRUE(sub.has_edge(1, 2));
    EXPECT_EQ(sub.label(1), 7);
}

TEST(GraphTest, MaskToNodesAscending)
{
    auto nodes = Graph::mask_to_nodes(NodeMask::from_word(0b101001));
    EXPECT_EQ(nodes, (std::vector<int>{0, 3, 5}));
}

TEST(GraphTest, EdgesListMatchesHasEdge)
{
    Graph g = Graph::mesh(4, 4);
    auto es = g.edges();
    EXPECT_EQ(static_cast<int>(es.size()), g.num_edges());
    for (auto [a, b] : es) {
        EXPECT_LT(a, b);
        EXPECT_TRUE(g.has_edge(a, b));
    }
}

TEST(GraphTest, RejectsOversizedGraph)
{
    // 65 nodes (the old u64-mask cap + 1) is now fine; the CoreSet
    // capacity is the only limit.
    EXPECT_NO_THROW(Graph(65));
    EXPECT_NO_THROW((Graph(kMaxCores)));
    EXPECT_THROW(Graph(kMaxCores + 1), SimFatal);
    EXPECT_THROW(Graph(-1), SimFatal);
}

// ---- WL hash: isomorphism invariance (property test) ----------------

/** Apply a node permutation to a graph. */
Graph
permuted(const Graph& g, const std::vector<int>& perm)
{
    Graph out(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v)
        out.set_label(perm[v], g.label(v));
    for (auto [a, b] : g.edges())
        out.add_edge(perm[a], perm[b]);
    return out;
}

Graph
random_graph(int n, double p, Rng& rng)
{
    Graph g(n);
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            if (rng.next_double() < p)
                g.add_edge(a, b);
    return g;
}

TEST(GraphHashProperty, InvariantUnderPermutation)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        int n = 3 + static_cast<int>(rng.next_below(10));
        Graph g = random_graph(n, 0.4, rng);
        g.set_label(0, 3); // exercise label-awareness too

        std::vector<int> perm(n);
        for (int i = 0; i < n; ++i)
            perm[i] = i;
        for (int i = n - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.next_below(i + 1)]);

        EXPECT_EQ(g.wl_hash(), permuted(g, perm).wl_hash())
            << "trial " << trial;
    }
}

TEST(GraphHashProperty, DistinguishesStructures)
{
    // Chain vs ring vs star of the same size should hash differently.
    Graph chain = Graph::chain(6);
    Graph ring = Graph::ring(6);
    Graph star(6);
    for (int i = 1; i < 6; ++i)
        star.add_edge(0, i);
    std::set<std::uint64_t> hashes{chain.wl_hash(), ring.wl_hash(),
                                   star.wl_hash()};
    EXPECT_EQ(hashes.size(), 3u);
}

TEST(GraphHashProperty, LabelChangesHash)
{
    Graph a = Graph::mesh(2, 2);
    Graph b = Graph::mesh(2, 2);
    b.set_label(0, 1);
    EXPECT_NE(a.wl_hash(), b.wl_hash());
}

TEST(GraphHashProperty, SubsetHashMatchesInducedGraphHash)
{
    // wl_hash_subset avoids materializing the induced subgraph but must
    // produce the exact value induced(...).wl_hash() would — including
    // across word boundaries and with labels.
    Rng rng(7);
    Graph g = random_graph(90, 0.1, rng);
    for (int v = 0; v < 90; v += 7)
        g.set_label(v, 1 + static_cast<int>(rng.next_below(3)));
    for (int trial = 0; trial < 40; ++trial) {
        NodeMask mask;
        int k = 1 + static_cast<int>(rng.next_below(30));
        while (mask.count() < k)
            mask.set(static_cast<int>(rng.next_below(90)));
        EXPECT_EQ(g.wl_hash_subset(mask),
                  g.induced(Graph::mask_to_nodes(mask)).wl_hash())
            << "trial " << trial;
    }
}

} // namespace
} // namespace vnpu::graph
