/**
 * @file
 * Tests for the virtualization layer: routing tables, vRouters,
 * vChunk, VirtualNpu invariants and the hardware-cost model.
 */

#include <gtest/gtest.h>

#include "noc/topology.h"
#include "sim/log.h"
#include "virt/hw_cost.h"
#include "virt/routing_table.h"
#include "virt/vchunk.h"
#include "virt/virtual_npu.h"
#include "virt/vrouter.h"

namespace vnpu::virt {
namespace {

SocConfig
cfg()
{
    return SocConfig::Fpga();
}

// ---- Routing table -------------------------------------------------------

TEST(RoutingTableTest, StandardLookup)
{
    RoutingTable rt = RoutingTable::standard(1, {4, 5, 8, 9});
    EXPECT_EQ(rt.vm(), 1);
    EXPECT_EQ(rt.type(), RtType::kStandard);
    EXPECT_EQ(rt.num_cores(), 4);
    EXPECT_EQ(rt.lookup(0), 4);
    EXPECT_EQ(rt.lookup(3), 9);
    EXPECT_EQ(rt.lookup(4), kInvalidCore);
    EXPECT_EQ(rt.lookup(-1), kInvalidCore);
    EXPECT_EQ(rt.num_entries(), 4);
}

TEST(RoutingTableTest, Mesh2dCompactLookup)
{
    // Figure 4: a 2x2 virtual mesh anchored at physical core 1 of a
    // 3-wide mesh -> physical cores {1, 2, 4, 5}.
    RoutingTable rt = RoutingTable::mesh2d(2, 2, 2, 1, 3);
    EXPECT_EQ(rt.type(), RtType::kMesh2D);
    EXPECT_EQ(rt.num_cores(), 4);
    EXPECT_EQ(rt.lookup(0), 1);
    EXPECT_EQ(rt.lookup(1), 2);
    EXPECT_EQ(rt.lookup(2), 4);
    EXPECT_EQ(rt.lookup(3), 5);
    EXPECT_EQ(rt.num_entries(), 1); // one descriptor
    EXPECT_EQ(rt.phys_cores(), (std::vector<CoreId>{1, 2, 4, 5}));
}

TEST(RoutingTableTest, CompactFormSavesStorage)
{
    RoutingTable compact = RoutingTable::mesh2d(1, 4, 4, 0, 6);
    RoutingTable standard =
        RoutingTable::standard(1, compact.phys_cores());
    EXPECT_LT(compact.storage_bits(), standard.storage_bits());
}

TEST(RoutingTableTest, TdmDuplicatesAllowed)
{
    // MIG TDM: two virtual cores on one physical core.
    RoutingTable rt = RoutingTable::standard(1, {4, 5, 4, 5});
    EXPECT_EQ(rt.lookup(0), rt.lookup(2));
}

// ---- Instruction vRouter ----------------------------------------------------

TEST(InstVRouterTest, DispatchTranslatesAndIsolates)
{
    SocConfig c = cfg();
    noc::MeshTopology topo(c.mesh_x, c.mesh_y);
    core::NpuController ctrl(c, topo);
    ctrl.set_hyper_mode(true);
    InstVRouter ivr(ctrl);
    RoutingTable rt = RoutingTable::standard(7, {2, 3});
    ivr.install(&rt);

    auto d = ivr.dispatch(7, 0, core::DispatchVia::kIbus);
    EXPECT_EQ(d.pcore, 2);
    EXPECT_GT(d.cost, 0u);

    // Out-of-range virtual core: isolation violation -> panic.
    EXPECT_THROW(ivr.dispatch(7, 5, core::DispatchVia::kIbus), SimPanic);
    // Unknown VM.
    EXPECT_THROW(ivr.dispatch(9, 0, core::DispatchVia::kIbus), SimPanic);
}

TEST(InstVRouterTest, InstallRequiresHyperMode)
{
    SocConfig c = cfg();
    noc::MeshTopology topo(c.mesh_x, c.mesh_y);
    core::NpuController ctrl(c, topo);
    InstVRouter ivr(ctrl);
    RoutingTable rt = RoutingTable::standard(7, {2, 3});
    EXPECT_THROW(ivr.install(&rt), SimPanic);
    ctrl.set_hyper_mode(true);
    ivr.install(&rt);
    EXPECT_TRUE(ivr.has_vm(7));
    ivr.remove(7);
    EXPECT_FALSE(ivr.has_vm(7));
}

// ---- NoC vRouter -------------------------------------------------------------

TEST(NocVRouterTest, TranslatesAndCachesPeers)
{
    SocConfig c = cfg();
    RoutingTable rt = RoutingTable::standard(1, {4, 5, 6});
    NocVRouter vr(c, rt, nullptr);
    auto x1 = vr.translate_peer(1);
    EXPECT_EQ(x1.phys, 5);
    EXPECT_EQ(x1.cost, c.rt_lookup_cycles);
    // Repeated translation of the same peer hits the cached entry.
    auto x2 = vr.translate_peer(1);
    EXPECT_EQ(x2.phys, 5);
    EXPECT_EQ(x2.cost, c.rt_cached_cycles);
    EXPECT_EQ(vr.cached_hits(), 1u);
    // Out-of-topology peer is an isolation violation.
    EXPECT_THROW(vr.translate_peer(3), SimPanic);
}

// ---- vChunk ---------------------------------------------------------------------

TEST(VChunkTest, CoreLocalCopyHasPrivateState)
{
    SocConfig c = cfg();
    mem::RangeTable shared;
    shared.add(0x10000, 0x100000, 0x10000, mem::kPermRead);
    shared.add(0x20000, 0x200000, 0x10000, mem::kPermRead);
    shared.finalize();

    VChunk a(c, shared, 4);
    VChunk b(c, shared, 4);
    // Accesses through one core must not disturb the other's walker
    // state (each core's meta-zone holds a private RTT image).
    a.translator()->translate(0x20000, 64, mem::kPermRead);
    EXPECT_EQ(a.tlb().misses(), 1u);
    EXPECT_EQ(b.tlb().misses(), 0u);
    EXPECT_EQ(a.meta_footprint(), 2u * 18u);
}

TEST(VChunkTest, RequiresFinalizedTable)
{
    SocConfig c = cfg();
    mem::RangeTable raw;
    raw.add(0x10000, 0x100000, 0x10000, mem::kPermRead);
    EXPECT_THROW(VChunk(c, raw, 4), SimFatal);
}

// ---- VirtualNpu ------------------------------------------------------------------

TEST(VirtualNpuTest, InvariantsEnforced)
{
    graph::Graph topo = graph::Graph::chain(3);
    RoutingTable rt = RoutingTable::standard(1, {4, 5, 6});
    VirtualNpu v(1, {4, 5, 6}, topo, rt);
    EXPECT_EQ(v.num_cores(), 3);
    EXPECT_EQ(v.phys_of(2), 6);
    EXPECT_EQ(v.mask(), core_bit(4) | core_bit(5) | core_bit(6));
    EXPECT_THROW(v.phys_of(3), SimFatal);

    // Mismatched routing table is rejected.
    RoutingTable bad = RoutingTable::standard(1, {4, 5, 7});
    EXPECT_THROW(VirtualNpu(1, {4, 5, 6}, topo, bad), SimFatal);
    // Topology / core-count mismatch.
    EXPECT_THROW(VirtualNpu(1, {4, 5}, topo, rt), SimFatal);
}

TEST(VirtualNpuTest, MemoryAttachment)
{
    graph::Graph topo = graph::Graph::chain(2);
    RoutingTable rt = RoutingTable::standard(1, {0, 1});
    VirtualNpu v(1, {0, 1}, topo, rt);
    EXPECT_FALSE(v.has_memory());

    mem::RangeTable rtt;
    rtt.add(0x10000, 0, 1 << 20, mem::kPermRead);
    rtt.finalize();
    v.set_range_table(std::move(rtt));
    EXPECT_TRUE(v.has_memory());
    EXPECT_EQ(v.memory_bytes(), 1u << 20);
}

// ---- Hardware cost (Figure 19) -----------------------------------------------------

TEST(HwCostTest, VnpuAdditionsAreSmallFractionOfBaseline)
{
    HwCost base_ctrl = baseline_controller_cost();
    HwCost base_core = baseline_core_cost(16);

    HwCost vnpu_ctrl = inst_vrouter_cost(128);
    HwCost vnpu_core = noc_vrouter_cost();
    vnpu_core += vchunk_cost(4);

    HwOverhead ctrl_oh = overhead(base_ctrl, vnpu_ctrl);
    HwOverhead core_oh = overhead(base_core, vnpu_core);
    // Paper: ~2% additional LUTs/FFs.
    EXPECT_LT(ctrl_oh.luts_pct, 10.0);
    EXPECT_LT(core_oh.luts_pct, 5.0);
    EXPECT_LT(core_oh.ffs_pct, 5.0);
    EXPECT_GT(ctrl_oh.luts_pct, 0.0);
}

TEST(HwCostTest, RoutingTableNeedsAlmostNoLogic)
{
    // Paper: a 128-entry routing table requires minimal FF resources
    // and near-zero LUTs relative to the controller.
    HwCost rt = routing_table_cost(128);
    HwCost base = baseline_controller_cost();
    EXPECT_LT(rt.luts / base.luts, 0.01);
    EXPECT_LT(rt.ffs / base.ffs, 0.05);
}

TEST(HwCostTest, VchunkComparableToUvmMmu)
{
    // Both designs add a similar, small amount of hardware (Fig. 19).
    HwCost ours = vchunk_cost(4);
    HwCost theirs = uvm_mmu_cost(32);
    EXPECT_LT(ours.luts, theirs.luts * 2);
    EXPECT_LT(theirs.luts, ours.luts * 10);
}

} // namespace
} // namespace vnpu::virt
