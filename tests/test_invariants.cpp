/**
 * @file
 * Tests for the runtime invariant sanitizer (src/check/).
 *
 * The verification routines are compiled in every build, so the
 * negative cases (deliberately broken inputs must panic) run in all
 * flavors; the "checks are live" cases only assert counter movement
 * when the build was configured with -DVNPU_SANITIZE=ON.
 */

#include <gtest/gtest.h>

#include <vector>

#include "check/check.h"
#include "check/checks.h"
#include "noc/network.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/log.h"

namespace vnpu::check {
namespace {

noc::MeshTopology
mesh4x4()
{
    return noc::MeshTopology(4, 4);
}

// ---- Confined-route containment --------------------------------------

TEST(ConfinedRouteCheck, AcceptsFreshlyBuiltTable)
{
    const noc::MeshTopology topo = mesh4x4();
    // 2x2 block {0, 1, 4, 5}.
    const CoreSet region = CoreSet::from_word(0b110011);
    const noc::RouteOverride ov =
        noc::RouteOverride::build_confined(topo, region);
    EXPECT_NO_THROW(verify_confined_route(topo, region, ov));
}

TEST(ConfinedRouteCheck, RejectsMissingNextHop)
{
    const noc::MeshTopology topo = mesh4x4();
    const CoreSet region = CoreSet::from_word(0b110011);
    const noc::RouteOverride ov =
        noc::RouteOverride::build_confined(topo, region);
    // Verify against a larger region: pairs involving core 2 have no
    // table entry.
    const CoreSet bigger = CoreSet::from_word(0b110111);
    EXPECT_THROW(verify_confined_route(topo, bigger, ov), SimPanic);
}

TEST(ConfinedRouteCheck, RejectsRouteLeavingRegion)
{
    const noc::MeshTopology topo = mesh4x4();
    // L-shape {0, 1, 5}: the 0 <-> 5 route relays through core 1.
    const CoreSet built_for = CoreSet::from_word(0b100011);
    const noc::RouteOverride ov =
        noc::RouteOverride::build_confined(topo, built_for);
    // Claiming the region is only {0, 5} must trip containment: the
    // stored next hop (core 1) is outside it.
    const CoreSet claimed = CoreSet::from_word(0b100001);
    EXPECT_THROW(verify_confined_route(topo, claimed, ov), SimPanic);
}

// ---- Live-VM partition ------------------------------------------------

TEST(VmPartitionCheck, AcceptsDisjointCover)
{
    const int n = 16;
    const CoreSet a = CoreSet::from_word(0b110011);          // 2x2 block
    const CoreSet b = CoreSet::from_word(0b1100110000000000); // another
    CoreSet free = CoreSet::first_n(n).andnot(a).andnot(b);
    EXPECT_NO_THROW(verify_vm_partition(free, {a, b}, n));
}

TEST(VmPartitionCheck, RejectsOverlappingRegions)
{
    const int n = 16;
    const CoreSet a = CoreSet::from_word(0b110011);
    const CoreSet b = CoreSet::from_word(0b100001); // subset of a
    const CoreSet free = CoreSet::first_n(n).andnot(a);
    EXPECT_THROW(verify_vm_partition(free, {a, b}, n), SimPanic);
}

TEST(VmPartitionCheck, RejectsRegionOverlappingFreeSet)
{
    const int n = 16;
    const CoreSet a = CoreSet::from_word(0b110011);
    const CoreSet free = CoreSet::first_n(n); // forgot to subtract a
    EXPECT_THROW(verify_vm_partition(free, {a}, n), SimPanic);
}

TEST(VmPartitionCheck, RejectsCoverageGap)
{
    const int n = 16;
    const CoreSet a = CoreSet::from_word(0b110011);
    // Free set lost core 15: a leak, neither free nor owned.
    const CoreSet free =
        CoreSet::first_n(n).andnot(a).andnot(CoreSet::from_word(1ull << 15));
    EXPECT_THROW(verify_vm_partition(free, {a}, n), SimPanic);
}

TEST(VmPartitionCheck, RejectsOutOfMeshCores)
{
    const int n = 16;
    const CoreSet a = CoreSet::from_word(0b110011 | (1ull << 20));
    const CoreSet free = CoreSet::first_n(n).andnot(a);
    EXPECT_THROW(verify_vm_partition(free, {a}, n), SimPanic);
}

TEST(VmPartitionCheck, RejectsEmptyRegion)
{
    const int n = 16;
    EXPECT_THROW(verify_vm_partition(CoreSet::first_n(n), {CoreSet{}}, n),
                 SimPanic);
}

// ---- Reference wormhole model vs. the closed-form send path ----------

struct InvariantNetFixture : public ::testing::Test {
    InvariantNetFixture()
        : cfg(make_cfg()), topo(cfg.mesh_x, cfg.mesh_y), net(cfg, topo, eq)
    {
    }

    static SocConfig
    make_cfg()
    {
        SocConfig c = SocConfig::Fpga();
        c.mesh_x = 4;
        c.mesh_y = 4;
        c.noc_relay_store_forward = false; // exercise the wormhole path
        return c;
    }

    /** Prior per-link busy along src->dst's XY route. */
    std::vector<Tick>
    prior_busy(int src, int dst) const
    {
        const std::vector<int> path = net.route_path(src, dst);
        std::vector<Tick> busy;
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
            busy.push_back(net.link_busy_until(path[i], path[i + 1]));
        return busy;
    }

    SocConfig cfg;
    EventQueue eq;
    noc::MeshTopology topo;
    noc::Network net;
};

TEST_F(InvariantNetFixture, ReferenceMatchesQuietWormholeSend)
{
    const std::uint64_t bytes = 3 * cfg.packet_bytes + 100;
    const std::vector<Tick> prior = prior_busy(0, 15);
    const Cycles ser_full = static_cast<Cycles>(cfg.packet_bytes /
                                                cfg.link_bytes_per_cycle);
    const Cycles ser_tail =
        static_cast<Cycles>((100 + cfg.link_bytes_per_cycle - 1) /
                            cfg.link_bytes_per_cycle);
    const WormholeRef ref =
        wormhole_reference(cfg.router_delay, ser_full, ser_tail, 4,
                           cfg.noc_handshake_cycles, prior);
    const noc::SendResult r = net.send(0, 0, 15, bytes, kNoVm, 0);
    EXPECT_EQ(ref.delivered, r.delivered);
    EXPECT_EQ(ref.sender_free, r.sender_free);
    const std::vector<int> path = net.route_path(0, 15);
    ASSERT_EQ(ref.link_busy.size(), path.size() - 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_EQ(ref.link_busy[i],
                  net.link_busy_until(path[i], path[i + 1]))
            << "hop " << i;
}

TEST_F(InvariantNetFixture, ReferenceMatchesContendedSend)
{
    // First send occupies the shared prefix of the path; the second
    // send's reference model starts from the contended busy state.
    net.send(0, 0, 3, 5 * cfg.packet_bytes, kNoVm, 0);
    const std::uint64_t bytes = 2 * cfg.packet_bytes;
    const std::vector<Tick> prior = prior_busy(0, 7);
    const Cycles ser = static_cast<Cycles>(cfg.packet_bytes /
                                           cfg.link_bytes_per_cycle);
    const WormholeRef ref =
        wormhole_reference(cfg.router_delay, ser, ser, 2,
                           10 + cfg.noc_handshake_cycles, prior);
    const noc::SendResult r = net.send(10, 0, 7, bytes, kNoVm, 0);
    EXPECT_EQ(ref.delivered, r.delivered);
    EXPECT_EQ(ref.sender_free, r.sender_free);
}

TEST_F(InvariantNetFixture, ReferenceMatchesRelaySend)
{
    cfg.noc_relay_store_forward = true;
    noc::Network relay_net(cfg, topo, eq);
    const std::uint64_t bytes = 3 * cfg.packet_bytes;
    // Store-and-forward is the recurrence with one whole-message packet.
    const Cycles ser =
        static_cast<Cycles>(bytes / cfg.link_bytes_per_cycle);
    const WormholeRef ref = wormhole_reference(
        cfg.router_delay, ser, ser, 1, cfg.noc_handshake_cycles,
        std::vector<Tick>(6, 0));
    const noc::SendResult r = relay_net.send(0, 0, 15, bytes, kNoVm, 0);
    EXPECT_EQ(ref.delivered, r.delivered);
    EXPECT_EQ(ref.sender_free, r.sender_free);
}

// ---- Sanitize builds: the gated call sites are actually live ----------

TEST(SanitizeMode, GatedCallSitesIncrementCounters)
{
    if (!sanitize_enabled())
        GTEST_SKIP() << "build configured without -DVNPU_SANITIZE=ON";
    reset_counters();

    SocConfig cfg = SocConfig::Fpga();
    cfg.mesh_x = 4;
    cfg.mesh_y = 4;
    EventQueue eq;
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    noc::Network net(cfg, topo, eq);

    net.send(0, 0, 5, 4096, kNoVm, 0);
    eq.schedule(100, [] {});
    eq.schedule(100, [] {});
    eq.run();

    EXPECT_GE(counters().noc_sends, 1u);
    EXPECT_GE(counters().event_queue_events, 2u);
}

} // namespace
} // namespace vnpu::check
