/**
 * @file
 * Polyomino request-shape builders shared by the exact-mapping
 * differential tests and the `sweep_exact_scale` harness, so the
 * benched shapes are exactly the tested shapes.
 */

#ifndef VNPU_TESTS_REFERENCE_POLYOMINO_SHAPES_H
#define VNPU_TESTS_REFERENCE_POLYOMINO_SHAPES_H

#include <set>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace vnpu::testref {

/** Graph of a cell set: vertex i = cells[i], edges between 4-neighbor
 *  cells — the topology a mesh region of that shape induces. */
inline graph::Graph
shape_graph(const std::vector<std::pair<int, int>>& cells)
{
    graph::Graph g(static_cast<int>(cells.size()));
    for (std::size_t i = 0; i < cells.size(); ++i)
        for (std::size_t j = i + 1; j < cells.size(); ++j) {
            int dx = cells[i].first - cells[j].first;
            int dy = cells[i].second - cells[j].second;
            if (dx * dx + dy * dy == 1)
                g.add_edge(static_cast<int>(i), static_cast<int>(j));
        }
    return g;
}

/** L: a thick vertical arm of `arm_a` rows joined to a horizontal arm
 *  reaching column `arm_b`, both `thick` cells wide. */
inline std::vector<std::pair<int, int>>
l_shape(int arm_a, int arm_b, int thick)
{
    std::vector<std::pair<int, int>> cells;
    for (int y = 0; y < arm_a; ++y)
        for (int x = 0; x < thick; ++x)
            cells.emplace_back(x, y);
    for (int x = thick; x < arm_b; ++x)
        for (int y = arm_a - thick; y < arm_a; ++y)
            cells.emplace_back(x, y);
    return cells;
}

/** T: a `bar`-wide top bar with a centered stem down to row `stem`,
 *  both `thick` cells wide. */
inline std::vector<std::pair<int, int>>
t_shape(int bar, int stem, int thick)
{
    std::vector<std::pair<int, int>> cells;
    for (int x = 0; x < bar; ++x)
        for (int y = 0; y < thick; ++y)
            cells.emplace_back(x, y);
    int mid = (bar - thick) / 2;
    for (int y = thick; y < stem; ++y)
        for (int x = mid; x < mid + thick; ++x)
            cells.emplace_back(x, y);
    return cells;
}

/** Plus/cross: two centered `span x thick` bars, overlap deduplicated. */
inline std::vector<std::pair<int, int>>
cross_shape(int span, int thick)
{
    int mid = (span - thick) / 2;
    std::set<std::pair<int, int>> dedup;
    for (int x = 0; x < span; ++x)
        for (int y = mid; y < mid + thick; ++y)
            dedup.insert({x, y});
    for (int y = 0; y < span; ++y)
        for (int x = mid; x < mid + thick; ++x)
            dedup.insert({x, y});
    return {dedup.begin(), dedup.end()};
}

} // namespace vnpu::testref

#endif // VNPU_TESTS_REFERENCE_POLYOMINO_SHAPES_H
