/**
 * @file
 * Reference (seed) implementations of the simulation kernel, kept as a
 * golden model after the fast-path rewrite.
 *
 * `SeedEventQueue` is the original binary-heap event queue with
 * `std::function` callbacks; `SeedNoc` is the original `Network::send`
 * algorithm with the materialized path vector, the O(npkts * hops)
 * wormhole inner loop, and the `unordered_map` route override. The
 * golden-trace tests assert the production kernel is tick-identical to
 * these models, and bench/micro_kernels.cpp measures the speedup
 * against them (BENCH_noc.json).
 *
 * Deliberate deviation: the seed's local-loopback path neither counted
 * packets nor serialized the payload; that was a modeling bug fixed in
 * this rewrite, so `SeedNoc` carries the *fixed* loopback while keeping
 * the original multi-hop algorithms verbatim.
 */

#ifndef VNPU_TESTS_REFERENCE_SEED_MODELS_H
#define VNPU_TESTS_REFERENCE_SEED_MODELS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "noc/network.h"
#include "noc/topology.h"
#include "sim/config.h"
#include "sim/log.h"
#include "sim/types.h"

namespace vnpu::seed {

/** The seed's deterministic min-heap event queue (verbatim). */
class SeedEventQueue {
  public:
    using Callback = std::function<void()>;

    SeedEventQueue() = default;

    Tick now() const { return now_; }
    std::size_t pending() const { return heap_.size(); }

    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            panic("scheduling event in the past: ", when, " < ", now_);
        heap_.push(Entry{when, next_seq_++, std::move(cb)});
    }

    void schedule_in(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    Tick
    run(Tick limit = kTickMax)
    {
        while (!heap_.empty()) {
            const Entry& top = heap_.top();
            if (top.when > limit) {
                now_ = limit;
                return now_;
            }
            now_ = top.when;
            Callback cb = std::move(const_cast<Entry&>(top).cb);
            heap_.pop();
            cb();
        }
        return now_;
    }

    bool
    step()
    {
        if (heap_.empty())
            return false;
        const Entry& top = heap_.top();
        now_ = top.when;
        Callback cb = std::move(const_cast<Entry&>(top).cb);
        heap_.pop();
        cb();
        return true;
    }

    void
    clear()
    {
        while (!heap_.empty())
            heap_.pop();
    }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
};

/** The seed's hash-map route override (verbatim). */
class SeedRouteOverride {
  public:
    int
    next_hop(int cur, int dst) const
    {
        auto it = next_.find(key(cur, dst));
        return it == next_.end() ? kInvalidCore : it->second;
    }

    std::size_t size() const { return next_.size(); }

    static SeedRouteOverride
    build_confined(const noc::MeshTopology& topo, const CoreSet& region)
    {
        using noc::Direction;
        SeedRouteOverride ov;
        std::vector<int> nodes;
        for (int id = 0; id < topo.num_nodes(); ++id)
            if (region & core_bit(id))
                nodes.push_back(id);

        for (int dst : nodes) {
            std::vector<int> dist(topo.num_nodes(), -1);
            std::vector<int> queue{dst};
            dist[dst] = 0;
            for (std::size_t head = 0; head < queue.size(); ++head) {
                int v = queue[head];
                for (Direction d : {Direction::kEast, Direction::kWest,
                                    Direction::kNorth, Direction::kSouth}) {
                    int u = topo.neighbor(v, d);
                    if (u == kInvalidCore || !(region & core_bit(u)))
                        continue;
                    if (dist[u] == -1) {
                        dist[u] = dist[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
            for (int cur : nodes) {
                if (cur == dst)
                    continue;
                if (dist[cur] == -1)
                    fatal("route override: region is disconnected between ",
                          cur, " and ", dst);
                int best = kInvalidCore;
                for (Direction d : {Direction::kEast, Direction::kWest,
                                    Direction::kNorth, Direction::kSouth}) {
                    int u = topo.neighbor(cur, d);
                    if (u == kInvalidCore || !(region & core_bit(u)))
                        continue;
                    if (dist[u] == dist[cur] - 1 &&
                        (best == kInvalidCore || u < best)) {
                        best = u;
                    }
                }
                VNPU_ASSERT(best != kInvalidCore);
                ov.next_[key(cur, dst)] = static_cast<std::int16_t>(best);
            }
        }
        return ov;
    }

  private:
    static std::uint32_t key(int cur, int dst)
    {
        return static_cast<std::uint32_t>(cur) << 8 |
               static_cast<std::uint32_t>(dst);
    }

    std::unordered_map<std::uint32_t, std::int16_t> next_;
};

/**
 * The seed's `Network` timing model (verbatim algorithms), templated on
 * the event-queue and route-override types so the same code serves the
 * golden-trace tests and the seed-vs-fast benchmarks.
 */
template <typename QueueT = SeedEventQueue,
          typename RouteT = SeedRouteOverride>
class SeedNoc {
  public:
    using DeliverFn =
        std::function<void(int dst, int src, std::uint64_t bytes, int tag,
                           VmId vm, bool credit)>;

    SeedNoc(const SocConfig& cfg, const noc::MeshTopology& topo, QueueT& eq)
        : cfg_(cfg), topo_(topo), eq_(eq),
          link_busy_(static_cast<std::size_t>(topo.num_nodes()) * 4, 0),
          link_vms_(static_cast<std::size_t>(topo.num_nodes()) * 4, 0)
    {
    }

    void set_deliver_callback(DeliverFn fn) { deliver_ = std::move(fn); }

    std::vector<int>
    route_path(int src, int dst, const RouteT* route = nullptr) const
    {
        std::vector<int> path{src};
        int cur = src;
        int guard = 0;
        while (cur != dst) {
            int next = kInvalidCore;
            if (route != nullptr)
                next = route->next_hop(cur, dst);
            if (next == kInvalidCore)
                next = topo_.xy_next_hop(cur, dst);
            path.push_back(next);
            cur = next;
            if (++guard > topo_.num_nodes() * 2)
                panic("routing loop from ", src, " to ", dst);
        }
        return path;
    }

    noc::SendResult
    send(Tick start, int src, int dst, std::uint64_t bytes, VmId vm,
         int tag, const RouteT* route = nullptr, bool credit = false)
    {
        VNPU_ASSERT(topo_.valid(src) && topo_.valid(dst));
        ++messages_;
        bytes_ += bytes;

        const std::uint64_t pkt_bytes = cfg_.packet_bytes;
        const std::uint64_t npkts = (bytes + pkt_bytes - 1) / pkt_bytes;
        packets_ += npkts;

        if (src == dst) {
            // Fixed loopback semantics (see file comment).
            Cycles ser = static_cast<Cycles>(std::ceil(
                static_cast<double>(bytes) / cfg_.link_bytes_per_cycle));
            Tick done = start + cfg_.noc_handshake_cycles + ser;
            if (deliver_) {
                eq_.schedule(done,
                             [this, dst, src, bytes, tag, vm, credit] {
                                 deliver_(dst, src, bytes, tag, vm, credit);
                             });
            }
            return {done, done, 0};
        }

        std::vector<int> path = route_path(src, dst, route);
        const int hops = static_cast<int>(path.size()) - 1;

        Tick sender_free = start;
        Tick delivered = start;
        Tick inject_ready = start + cfg_.noc_handshake_cycles;

        if (cfg_.noc_relay_store_forward) {
            Cycles ser = static_cast<Cycles>(
                std::ceil(bytes / cfg_.link_bytes_per_cycle));
            Tick t = inject_ready;
            for (int i = 0; i < hops; ++i) {
                int li = link_index(path[i], path[i + 1]);
                Tick depart = std::max(t, link_busy_[li]) +
                              cfg_.router_delay + ser;
                link_busy_[li] = depart;
                if (vm >= 0 && vm < 64)
                    link_vms_[li] |= std::uint64_t{1} << vm;
                t = depart;
                if (i == 0)
                    sender_free = depart;
            }
            delivered = t;
        } else {
            // The O(npkts * hops) per-packet inner loop.
            for (std::uint64_t p = 0; p < npkts; ++p) {
                std::uint64_t payload =
                    std::min(pkt_bytes, bytes - p * pkt_bytes);
                Cycles ser = static_cast<Cycles>(
                    std::ceil(payload / cfg_.link_bytes_per_cycle));
                Tick t = inject_ready;
                for (int i = 0; i < hops; ++i) {
                    int li = link_index(path[i], path[i + 1]);
                    Tick depart = std::max(t, link_busy_[li]) +
                                  cfg_.router_delay + ser;
                    link_busy_[li] = depart;
                    if (vm >= 0 && vm < 64)
                        link_vms_[li] |= std::uint64_t{1} << vm;
                    t = depart;
                    if (i == 0)
                        sender_free = depart;
                }
                delivered = std::max(delivered, t);
            }
        }

        if (deliver_) {
            eq_.schedule(delivered, [this, dst, src, bytes, tag, vm, credit] {
                deliver_(dst, src, bytes, tag, vm, credit);
            });
        }
        return {sender_free, delivered, hops};
    }

    Tick
    link_busy_until(int a, int b) const
    {
        return link_busy_[link_index(a, b)];
    }

    const std::vector<Tick>& link_busy() const { return link_busy_; }
    const std::vector<std::uint64_t>& link_vm_masks() const
    {
        return link_vms_;
    }
    std::uint64_t messages() const { return messages_; }
    std::uint64_t packets() const { return packets_; }
    std::uint64_t bytes() const { return bytes_; }

    void
    reset()
    {
        std::fill(link_busy_.begin(), link_busy_.end(), 0);
        std::fill(link_vms_.begin(), link_vms_.end(), 0);
        messages_ = packets_ = bytes_ = 0;
    }

  private:
    int
    link_index(int from, int to) const
    {
        return from * 4 + static_cast<int>(topo_.dir_to(from, to));
    }

    const SocConfig& cfg_;
    const noc::MeshTopology& topo_;
    QueueT& eq_;
    DeliverFn deliver_;
    std::vector<Tick> link_busy_;
    std::vector<std::uint64_t> link_vms_;
    std::uint64_t messages_ = 0;
    std::uint64_t packets_ = 0;
    std::uint64_t bytes_ = 0;
};

/** Deterministic 64-bit LCG for reproducible message schedules. */
class SeedLcg {
  public:
    explicit SeedLcg(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return state_ >> 16;
    }

    /** Uniform in [0, bound). @pre bound > 0 */
    std::uint64_t next_below(std::uint64_t bound)
    {
        return next() % bound;
    }

  private:
    std::uint64_t state_;
};

} // namespace vnpu::seed

#endif // VNPU_TESTS_REFERENCE_SEED_MODELS_H
