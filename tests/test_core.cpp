/**
 * @file
 * Tests for the NPU core engine: compute timing, program execution,
 * send/recv rendezvous, TDM contexts, and the controller.
 */

#include <gtest/gtest.h>

#include "core/compute.h"
#include "core/controller.h"
#include "core/isa.h"
#include "runtime/machine.h"
#include "sim/log.h"

namespace vnpu::core {
namespace {

using runtime::Machine;

SocConfig
small_cfg()
{
    SocConfig c = SocConfig::Fpga();
    c.mesh_x = 4;
    c.mesh_y = 2;
    return c;
}

// ---- Compute model ---------------------------------------------------------

TEST(ComputeModelTest, MatmulCycles)
{
    SocConfig cfg = small_cfg(); // 16x16 systolic array
    ComputeModel cm(cfg);
    // 128^3 matmul: 64 tiles * (128 + 16) + 16 = 9232 cycles.
    KernelCost c = cm.matmul(128, 128, 128);
    EXPECT_EQ(c.cycles, 9232u);
    EXPECT_EQ(c.flops, 2ull * 128 * 128 * 128);
}

TEST(ComputeModelTest, SmallMatmulStillCostsFullTile)
{
    ComputeModel cm(small_cfg());
    KernelCost tiny = cm.matmul(1, 1, 1);
    EXPECT_GT(tiny.cycles, 16u); // fill/drain dominate
}

TEST(ComputeModelTest, ConvAddsIm2colOverhead)
{
    ComputeModel cm(small_cfg());
    KernelCost conv = cm.conv(32, 32, 16, 16, 3);
    KernelCost mm = cm.matmul(32 * 32, 16 * 9, 16);
    EXPECT_EQ(conv.cycles, mm.cycles + mm.cycles / 10);
    EXPECT_EQ(conv.flops, mm.flops);
}

TEST(ComputeModelTest, VectorOpUsesLanes)
{
    ComputeModel cm(small_cfg()); // 16 lanes
    EXPECT_EQ(cm.vector_op(160).cycles, 10u);
    EXPECT_EQ(cm.vector_op(1).cycles, 1u);
}

TEST(ComputeModelTest, KernelExecutionDwarfsDispatch)
{
    // Paper Fig. 12: compute kernels are 2-3 orders of magnitude above
    // instruction-dispatch latency.
    SocConfig cfg = small_cfg();
    ComputeModel cm(cfg);
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    NpuController ctrl(cfg, topo);
    Cycles dispatch = ctrl.dispatch_cost(7, DispatchVia::kInoc);
    EXPECT_GT(cm.matmul(128, 128, 128).cycles, 100 * dispatch);
    EXPECT_GT(cm.conv(32, 32, 16, 16, 3).cycles, 100 * dispatch);
}

// ---- ISA helpers -------------------------------------------------------------

TEST(IsaTest, FactoriesAndRendering)
{
    Instr s = Instr::send(3, 2048, 7);
    EXPECT_EQ(s.op, Opcode::kSend);
    EXPECT_NE(s.to_string().find("dst=3"), std::string::npos);
    Instr m = Instr::matmul(8, 16, 32);
    EXPECT_NE(m.to_string().find("matmul"), std::string::npos);

    Program p{Instr::load_weight(0, 1000), Instr::load_global(0, 500),
              Instr::send(0, 64, 0), Instr::halt()};
    EXPECT_EQ(program_load_bytes(p), 1500u);
    EXPECT_EQ(program_send_bytes(p), 64u);
}

// ---- Core execution -----------------------------------------------------------

TEST(NpuCoreTest, RunsComputeAndDmaSequence)
{
    Machine m(small_cfg());
    Program p{
        Instr::iter_begin(),
        Instr::load_weight(0x1000, 8192), // 1024 cycles at 8 B/cyc
        Instr::matmul(16, 16, 16),        // 1*(16+16)+16 = 48 cycles
        Instr::halt(),
    };
    m.core(0).add_context(p, ContextConfig{});
    Tick end = m.run();
    EXPECT_EQ(end, 1024u + 48u);
    const ContextStats& st = m.core(0).context_stats(0);
    EXPECT_TRUE(st.done);
    EXPECT_EQ(st.busy_dma, 1024u);
    EXPECT_EQ(st.busy_compute, 48u);
    EXPECT_EQ(st.iterations, 1u);
}

TEST(NpuCoreTest, SendRecvRendezvous)
{
    Machine m(small_cfg());
    Program sender{Instr::send(1, 2048, 5), Instr::halt()};
    Program receiver{Instr::recv(0, 2048, 5), Instr::halt()};
    m.core(0).add_context(sender, ContextConfig{});
    m.core(1).add_context(receiver, ContextConfig{});
    m.run();
    // Delivery after handshake + 1 hop + serialization (the event
    // queue itself drains later: the credit message flies back).
    EXPECT_EQ(m.core(1).context_stats(0).done_tick, 150u);
    EXPECT_GT(m.core(1).context_stats(0).wait_recv, 0u);
}

TEST(NpuCoreTest, CreditWindowBoundsProducerRunahead)
{
    // A producer sending 8 messages to a slow consumer must stall once
    // the 2-credit window fills.
    SocConfig cfg = small_cfg();
    Machine m(cfg);
    Program producer, consumer;
    for (int i = 0; i < 8; ++i) {
        producer.push_back(Instr::send(1, 2048, 5));
        consumer.push_back(Instr::matmul(128, 128, 128)); // 9232 cycles
        consumer.push_back(Instr::recv(0, 2048, 5));
    }
    producer.push_back(Instr::halt());
    consumer.push_back(Instr::halt());
    m.core(0).add_context(producer, ContextConfig{});
    m.core(1).add_context(consumer, ContextConfig{});
    m.run();
    const ContextStats& prod = m.core(0).context_stats(0);
    const ContextStats& cons = m.core(1).context_stats(0);
    // The producer spent most of its life credit-blocked...
    EXPECT_GT(prod.wait_recv, 6u * 9000u);
    // ...and the consumer never waited (messages always buffered).
    EXPECT_EQ(cons.wait_recv, 0u);
}

TEST(NpuCoreTest, RecvAfterDeliveryDoesNotBlock)
{
    Machine m(small_cfg());
    // Receiver is busy computing while the message arrives.
    Program sender{Instr::send(1, 2048, 5), Instr::halt()};
    Program receiver{Instr::matmul(128, 128, 128), // 9232 cycles
                     Instr::recv(0, 2048, 5), Instr::halt()};
    m.core(0).add_context(sender, ContextConfig{});
    m.core(1).add_context(receiver, ContextConfig{});
    m.run();
    EXPECT_EQ(m.core(1).context_stats(0).wait_recv, 0u);
}

TEST(NpuCoreTest, PipelinedIterationsOverlap)
{
    // Two-stage pipeline: stage 0 computes and sends; stage 1 receives
    // and computes. Iteration markers measure the steady-state period.
    const int iters = 6;
    Machine m(small_cfg());
    Program p0, p1;
    for (int i = 0; i < iters; ++i) {
        p0.push_back(Instr::iter_begin());
        p0.push_back(Instr::matmul(64, 64, 64)); // 16*(64+16)+16 = 1296
        p0.push_back(Instr::send(1, 4096, i));
        p1.push_back(Instr::iter_begin());
        p1.push_back(Instr::recv(0, 4096, i));
        p1.push_back(Instr::matmul(64, 64, 64));
    }
    p0.push_back(Instr::halt());
    p1.push_back(Instr::halt());
    m.core(0).add_context(p0, ContextConfig{});
    m.core(1).add_context(p1, ContextConfig{});
    Tick end = m.run();
    // With overlap, total << 2 * iters * stage_time.
    EXPECT_LT(end, 2u * iters * 1600u);
    const ContextStats& st1 = m.core(1).context_stats(0);
    EXPECT_EQ(st1.iterations, static_cast<std::uint32_t>(iters));
    EXPECT_GT(st1.iter_latency.count(), 0u);
}

TEST(NpuCoreTest, LongProgramDeliveryFindsConsumingContext)
{
    // Two VMs' contexts share the receiving core, each with a long
    // program of distinct tags. All messages land while the receivers
    // are still computing, so every delivery must locate its consuming
    // context through the per-context tag index (the old code rescanned
    // the program text per delivery - quadratic in program length).
    const int n = 400;
    Machine m(small_cfg());
    Program send_a, send_b, recv_a, recv_b;
    recv_a.push_back(Instr::matmul(128, 128, 128)); // 9232 cycles busy
    recv_b.push_back(Instr::matmul(128, 128, 128));
    for (int i = 0; i < n; ++i) {
        send_a.push_back(Instr::send(2, 64, 1000 + i));
        recv_a.push_back(Instr::recv(0, 64, 1000 + i));
        // VM b reuses the same numeric tags: the vm filter must keep
        // the streams apart.
        send_b.push_back(Instr::send(2, 64, 1000 + i));
        recv_b.push_back(Instr::recv(1, 64, 1000 + i));
    }
    send_a.push_back(Instr::halt());
    send_b.push_back(Instr::halt());
    recv_a.push_back(Instr::halt());
    recv_b.push_back(Instr::halt());

    ContextConfig va, vb;
    va.vm = 1;
    vb.vm = 2;
    m.core(0).add_context(send_a, va);
    m.core(1).add_context(send_b, vb);
    m.core(2).add_context(recv_a, va);
    m.core(2).add_context(recv_b, vb);
    m.run();
    const ContextStats& sa = m.core(2).context_stats(0);
    const ContextStats& sb = m.core(2).context_stats(1);
    EXPECT_TRUE(sa.done);
    EXPECT_TRUE(sb.done);
    EXPECT_EQ(sa.instructions, static_cast<std::uint64_t>(n + 2));
    EXPECT_EQ(sb.instructions, static_cast<std::uint64_t>(n + 2));
}

TEST(NpuCoreTest, TdmContextsSerialize)
{
    // The same compute twice: once as two contexts on one core (TDM),
    // once on two separate cores.
    SocConfig cfg = small_cfg();
    Program p{Instr::matmul(128, 128, 128), Instr::halt()}; // 9232 cyc

    Machine tdm(cfg);
    tdm.core(0).add_context(p, ContextConfig{.vm = 1});
    tdm.core(0).add_context(p, ContextConfig{.vm = 2});
    Tick tdm_end = tdm.run();

    Machine spatial(cfg);
    spatial.core(0).add_context(p, ContextConfig{.vm = 1});
    spatial.core(1).add_context(p, ContextConfig{.vm = 2});
    Tick spatial_end = spatial.run();

    EXPECT_EQ(spatial_end, 9232u);
    // TDM serializes both kernels plus a context switch.
    EXPECT_GE(tdm_end, 2u * 9232u);
    EXPECT_LE(tdm_end, 2u * 9232u + 4u * cfg.context_switch_cycles);
}

TEST(NpuCoreTest, TdmInterleavesAtBlockingPoints)
{
    // Context A waits on a message; context B must run meanwhile.
    SocConfig cfg = small_cfg();
    Machine m(cfg);
    Program waiter{Instr::recv(1, 2048, 9), Instr::halt()};
    Program worker{Instr::matmul(64, 64, 64), Instr::halt()};
    Program remote{Instr::matmul(128, 128, 128), // keeps the peer busy
                   Instr::send(0, 2048, 9), Instr::halt()};
    m.core(0).add_context(waiter, ContextConfig{.vm = 1});
    m.core(0).add_context(worker, ContextConfig{.vm = 2});
    m.core(1).add_context(remote, ContextConfig{.vm = 1});
    m.run();
    const ContextStats& worker_st = m.core(0).context_stats(1);
    const ContextStats& waiter_st = m.core(0).context_stats(0);
    // The worker finished while the waiter was blocked.
    EXPECT_LT(worker_st.done_tick, waiter_st.done_tick);
}

TEST(NpuCoreTest, DeadlockIsDetected)
{
    Machine m(small_cfg());
    Program p{Instr::recv(1, 64, 0), Instr::halt()}; // nobody sends
    m.core(0).add_context(p, ContextConfig{});
    EXPECT_THROW(m.run(), SimPanic);
}

// ---- Controller ---------------------------------------------------------------

TEST(ControllerTest, HyperModeGatesConfiguration)
{
    SocConfig cfg = small_cfg();
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    NpuController ctrl(cfg, topo);
    EXPECT_THROW(ctrl.configure_routing_table(1, 4), SimPanic);
    EXPECT_THROW(ctrl.deploy_meta_bytes(1, 64), SimPanic);
    ctrl.set_hyper_mode(true);
    EXPECT_GT(ctrl.configure_routing_table(1, 4), 0u);
    ctrl.deploy_meta_bytes(1, 64);
    EXPECT_EQ(ctrl.meta_bytes(1), 64u);
}

TEST(ControllerTest, ConfigCostScalesLinearlyInCores)
{
    SocConfig cfg = small_cfg();
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    NpuController ctrl(cfg, topo);
    ctrl.set_hyper_mode(true);
    Cycles c1 = ctrl.configure_routing_table(1, 1);
    Cycles c8 = ctrl.configure_routing_table(1, 8);
    EXPECT_EQ(c8, 8 * c1);
    // "a few hundred cycles" for an 8-core table (Figure 11).
    EXPECT_LT(c8, 500u);
}

TEST(ControllerTest, DispatchLatencies)
{
    SocConfig cfg = small_cfg();
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    NpuController ctrl(cfg, topo);
    // IBUS is fixed; the instruction NoC grows with distance.
    Cycles ibus0 = ctrl.dispatch_cost(0, DispatchVia::kIbus);
    Cycles ibus7 = ctrl.dispatch_cost(7, DispatchVia::kIbus);
    EXPECT_EQ(ibus0, ibus7);
    Cycles near = ctrl.dispatch_cost(0, DispatchVia::kInoc);
    Cycles far = ctrl.dispatch_cost(7, DispatchVia::kInoc);
    EXPECT_LT(near, far);
}

TEST(ControllerTest, CachedTranslationForConsecutiveDispatch)
{
    SocConfig cfg = small_cfg();
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    NpuController ctrl(cfg, topo);
    Cycles first = ctrl.dispatch_cost_virtual(1, 0, 3, DispatchVia::kIbus);
    Cycles second = ctrl.dispatch_cost_virtual(1, 0, 3, DispatchVia::kIbus);
    EXPECT_GT(first, second);
    EXPECT_EQ(ctrl.rt_lookup_hits().value(), 1u);
    // A different virtual core misses the cache again.
    Cycles third = ctrl.dispatch_cost_virtual(1, 1, 4, DispatchVia::kIbus);
    EXPECT_EQ(third, first);
}

} // namespace
} // namespace vnpu::core
