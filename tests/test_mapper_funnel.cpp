/**
 * @file
 * Tests for the similar/fragmented admission funnel (ISSUE 6): the
 * staged candidate scorer must make bit-identical decisions with the
 * funnel on or off, its GED lower bounds must be admissible, and the
 * scoring pool must be deterministic.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/ged.h"
#include "hyp/topology_mapper.h"
#include "sim/rng.h"
#include "sim/task_pool.h"

namespace vnpu::hyp {
namespace {

graph::Graph
random_graph(int n, Rng& rng, int labels = 1)
{
    graph::Graph g(n);
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            if (rng.next_below(3) == 0)
                g.add_edge(a, b);
    if (labels > 1)
        for (int v = 0; v < n; ++v)
            g.set_label(v, static_cast<int>(rng.next_below(labels)));
    return g;
}

/**
 * Run one fragmentation-churn sequence on a `side`x`side` mesh and
 * require the funneled and unfunneled mappers to agree on every
 * admission decision: same ok, same assignment (placement), same TED,
 * same error. The churn allocates snake requests of varying size and
 * frees the oldest live region every few steps, recreating the
 * fragmented free sets the funnel's memo and pruning stages see in
 * production.
 */
void
churn_differential(int side, int steps, MappingStrategy strategy)
{
    noc::MeshTopology topo(side, side);
    TopologyMapper mapper(topo);
    CoreSet free_cores = CoreSet::first_n(topo.num_nodes());
    std::vector<CoreSet> live;
    Rng rng(0xc0ffee + static_cast<std::uint64_t>(side));

    for (int step = 0; step < steps; ++step) {
        if (live.size() >= 3 && rng.next_below(3) == 0) {
            free_cores |= live.front();
            live.erase(live.begin());
        }
        int size = 6 + static_cast<int>(rng.next_below(27)); // 6..32

        MappingRequest req;
        req.vtopo = TopologyMapper::snake_topology(size);
        req.strategy = strategy;
        req.funnel = true;
        MappingResult on = mapper.map(req, free_cores);

        req.funnel = false;
        MappingResult off = mapper.map(req, free_cores);

        ASSERT_EQ(on.ok, off.ok) << "side=" << side << " step=" << step;
        EXPECT_EQ(on.assignment, off.assignment)
            << "side=" << side << " step=" << step;
        EXPECT_EQ(on.ted, off.ted) << "side=" << side << " step=" << step;
        EXPECT_EQ(on.error, off.error);

        if (on.ok) {
            CoreSet used;
            for (CoreId c : on.assignment)
                used.set(static_cast<int>(c));
            free_cores = free_cores.andnot(used);
            live.push_back(used);
        }
    }
}

TEST(MapperFunnelTest, DifferentialChurn16x16AllStrategies)
{
    for (MappingStrategy s :
         {MappingStrategy::kExact, MappingStrategy::kStraightforward,
          MappingStrategy::kSimilarTopology, MappingStrategy::kFragmented})
        churn_differential(16, 14, s);
}

TEST(MapperFunnelTest, DifferentialChurn32x32SimilarAndFragmented)
{
    // 32x32 exercises the sampled-candidate path (enumeration budget
    // overflows) and 47-node approximate GED. Kept short: the
    // funnel-off reference scorer is the slow path under test.
    churn_differential(32, 8, MappingStrategy::kSimilarTopology);
    churn_differential(32, 8, MappingStrategy::kFragmented);
}

TEST(MapperFunnelTest, StageCountersAccount)
{
    noc::MeshTopology topo(16, 16);
    TopologyMapper mapper(topo);
    CoreSet free_cores = CoreSet::first_n(256);
    // Punch holes so no TED-0 region exists and real scoring happens.
    Rng rng(11);
    for (int i = 0; i < 60; ++i)
        free_cores.reset(static_cast<int>(rng.next_below(256)));

    MappingRequest req;
    req.vtopo = TopologyMapper::snake_topology(24);
    req.strategy = MappingStrategy::kSimilarTopology;
    MappingResult r = mapper.map(req, free_cores);
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.funnel_candidates, 0u);
    // Every candidate probes the memo exactly once...
    EXPECT_EQ(r.funnel_candidates,
              r.funnel_memo_hits + r.funnel_memo_misses);
    // ...and every miss is then lower-bound-pruned, certified TED-0, or
    // fully scored (>= because the TED-0 early exit can stop reduction
    // mid-chunk after the probes were already counted).
    EXPECT_GE(r.funnel_memo_misses, r.funnel_lb_pruned +
                                        r.funnel_ted0_hits +
                                        r.funnel_full_ged);
    EXPECT_GT(r.funnel_full_ged, 0u);

    // Same request against the same free set: the memo now answers
    // (at least partially) and the decision is unchanged.
    MappingResult again = mapper.map(req, free_cores);
    ASSERT_TRUE(again.ok);
    EXPECT_GT(again.funnel_memo_hits, 0u);
    EXPECT_EQ(again.assignment, r.assignment);
    EXPECT_EQ(again.ted, r.ted);
}

TEST(MapperFunnelTest, CustomCostsDisableFunnelStages)
{
    // Custom edit costs cannot be lower-bounded, memo-keyed, or
    // assumed thread-safe: candidates are still counted and scored,
    // but every funnel stage (memo, LB prune, TED-0) must stay silent.
    noc::MeshTopology topo(8, 8);
    TopologyMapper mapper(topo);
    MappingRequest req;
    req.vtopo = TopologyMapper::snake_topology(12);
    req.strategy = MappingStrategy::kSimilarTopology;
    req.ged.node_cost = [](int a, int b) { return a == b ? 0.0 : 2.0; };
    MappingResult r = mapper.map(req, CoreSet::first_n(64));
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.funnel_candidates, 0u);
    EXPECT_GT(r.funnel_full_ged, 0u);
    EXPECT_EQ(r.funnel_memo_hits, 0u);
    EXPECT_EQ(r.funnel_memo_misses, 0u);
    EXPECT_EQ(r.funnel_lb_pruned, 0u);
    EXPECT_EQ(r.funnel_ted0_hits, 0u);
}

// ---- GED lower bound / bounded-search contracts -----------------------

TEST(GedLowerBoundTest, AdmissibleOnRandomPairs)
{
    Rng rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        int n = 3 + static_cast<int>(rng.next_below(5)); // 3..7: exact
        graph::Graph a = random_graph(n, rng, 2);
        graph::Graph b = random_graph(n, rng, 2);
        double lb = graph::ged_lower_bound(a, b);
        double exact = graph::exact_ged(a, b).cost;
        EXPECT_LE(lb, exact) << "trial=" << trial << " n=" << n;
    }
}

TEST(GedLowerBoundTest, ProfileOverloadMatchesGraphOverload)
{
    Rng rng(43);
    for (int trial = 0; trial < 50; ++trial) {
        int n = 3 + static_cast<int>(rng.next_below(6));
        graph::Graph a = random_graph(n, rng, 3);
        graph::Graph b = random_graph(n, rng, 3);
        EXPECT_EQ(graph::ged_lower_bound(graph::ged_profile(a),
                                         graph::ged_profile(b)),
                  graph::ged_lower_bound(a, b));
    }
}

TEST(GedLowerBoundTest, CostBoundPreservesOrFlagsResult)
{
    // cost_bound is prune-only: a bound above the true minimum must
    // not change the result at all; a bound at/below it must yield the
    // {infinity, empty} sentinel.
    Rng rng(44);
    for (int trial = 0; trial < 60; ++trial) {
        int n = 3 + static_cast<int>(rng.next_below(5));
        graph::Graph a = random_graph(n, rng, 2);
        graph::Graph b = random_graph(n, rng, 2);
        graph::GedResult ref = graph::exact_ged(a, b);

        graph::GedOptions loose;
        loose.cost_bound = ref.cost + 0.5;
        graph::GedResult same = graph::exact_ged(a, b, loose);
        EXPECT_EQ(same.cost, ref.cost);
        EXPECT_EQ(same.mapping, ref.mapping);

        graph::GedOptions tight;
        tight.cost_bound = ref.cost;
        graph::GedResult cut = graph::exact_ged(a, b, tight);
        EXPECT_TRUE(std::isinf(cut.cost));
        EXPECT_TRUE(cut.mapping.empty());
    }
}

// ---- Batch scorer vs plain ged() --------------------------------------

TEST(GedScorerTest, SubsetScoresMatchPlainGed)
{
    Rng rng(45);
    noc::MeshTopology topo(8, 8);
    const graph::Graph& mesh = topo.to_graph();
    for (int k : {5, 9, 14, 20}) {
        graph::Graph req = TopologyMapper::snake_topology(k);
        graph::GedOptions opt;
        graph::GedScorer scorer(req, opt);
        auto subs = graph::sample_connected_subsets(
            mesh, k, CoreSet::first_n(64), 24, rng);
        ASSERT_FALSE(subs.empty());
        for (const auto& mask : subs) {
            graph::GedResult via_scorer = scorer.score_subset(mesh, mask);
            graph::GedResult via_ged = graph::ged(
                req, mesh.induced(graph::Graph::mask_to_nodes(mask)), opt);
            EXPECT_EQ(via_scorer.cost, via_ged.cost);
            EXPECT_EQ(via_scorer.mapping, via_ged.mapping);
        }
    }
}

TEST(GedScorerTest, IntegerFastPathMatchesGenericPath)
{
    // Callbacks that reproduce the default costs force the generic
    // floating-point 2-opt; the callback-free run takes the integer
    // fast path. Equal costs AND equal mappings prove the fast path
    // replays the identical swap sequence, not merely an equivalent
    // optimum.
    Rng rng(46);
    graph::GedOptions fast; // defaults: integer fast path eligible
    graph::GedOptions generic;
    generic.node_cost = [](int a, int b) { return a == b ? 0.0 : 1.0; };
    generic.edge_del_cost = [](int, int) { return 1.0; };
    for (int trial = 0; trial < 40; ++trial) {
        int n = 10 + static_cast<int>(rng.next_below(30)); // approx path
        graph::Graph a = random_graph(n, rng);
        graph::Graph b = random_graph(n, rng);
        graph::GedResult rf = graph::approx_ged(a, b, fast);
        graph::GedResult rg = graph::approx_ged(a, b, generic);
        EXPECT_EQ(rf.cost, rg.cost) << "trial=" << trial << " n=" << n;
        EXPECT_EQ(rf.mapping, rg.mapping) << "trial=" << trial;
    }
}

// ---- Scoring pool determinism -----------------------------------------

TEST(TaskPoolTest, RunsEveryIndexExactlyOnce)
{
    TaskPool& pool = TaskPool::instance();
    std::vector<std::atomic<int>> hits(500);
    for (auto& h : hits)
        h.store(0);
    pool.parallel_for(0, 500,
                      [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPoolTest, PerIndexSlotsGiveDeterministicReduction)
{
    // The funnel's contract: workers write disjoint slots, the caller
    // reduces in index order, so the reduced value is independent of
    // scheduling. Floating-point sum in slot order must be bit-stable
    // across repeats.
    TaskPool& pool = TaskPool::instance();
    std::vector<double> slots(997);
    double first = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
        pool.parallel_for(0, 997, [&](int i) {
            slots[i] = 1.0 / (1.0 + i * 0.37);
        });
        double sum = 0.0;
        for (double s : slots)
            sum += s;
        if (rep == 0)
            first = sum;
        else
            EXPECT_EQ(sum, first);
    }
}

TEST(TaskPoolTest, PropagatesFirstException)
{
    TaskPool& pool = TaskPool::instance();
    EXPECT_THROW(pool.parallel_for(0, 64,
                                   [](int i) {
                                       if (i == 13)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool stays usable afterwards.
    std::atomic<int> n{0};
    pool.parallel_for(0, 8, [&](int) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 8);
}

TEST(TaskPoolTest, NestedCallsRunInline)
{
    TaskPool& pool = TaskPool::instance();
    std::vector<std::atomic<int>> hits(64);
    for (auto& h : hits)
        h.store(0);
    pool.parallel_for(0, 8, [&](int outer) {
        pool.parallel_for(0, 8, [&](int inner) {
            hits[outer * 8 + inner].fetch_add(1);
        });
    });
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

} // namespace
} // namespace vnpu::hyp
