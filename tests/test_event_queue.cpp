/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace vnpu {
namespace {

TEST(EventQueueTest, StartsAtTickZeroWithNoEvents)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, SameTickEventsRunInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, EventsMayScheduleFurtherEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule_in(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueueTest, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), SimPanic);
}

TEST(EventQueueTest, ClearDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.clear();
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, StepExecutesExactlyOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, ManyInterleavedEventsStaysDeterministic)
{
    // Two runs of the same schedule produce identical traces.
    auto run_once = [] {
        EventQueue eq;
        std::vector<std::pair<Tick, int>> trace;
        for (int i = 0; i < 200; ++i) {
            Tick when = static_cast<Tick>((i * 37) % 50);
            eq.schedule(when, [&trace, i, &eq] {
                trace.emplace_back(eq.now(), i);
            });
        }
        eq.run();
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace vnpu
