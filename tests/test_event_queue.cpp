/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "sim/event_queue.h"

namespace vnpu {
namespace {

TEST(EventQueueTest, StartsAtTickZeroWithNoEvents)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, SameTickEventsRunInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, EventsMayScheduleFurtherEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule_in(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueueTest, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), SimPanic);
}

TEST(EventQueueTest, ClearDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.clear();
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, StepExecutesExactlyOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, FarFutureEventsCrossCalendarWindows)
{
    // The wheel covers a 4096-tick window; events far beyond it take
    // the overflow path and must still execute in global (tick, FIFO)
    // order as the window advances across many empty stretches.
    EventQueue eq;
    std::vector<Tick> order;
    const Tick ticks[] = {1,       5000,    4095,    4096,   1u << 20,
                          123456,  4097,    9999999, 2,      8191};
    for (Tick t : ticks)
        eq.schedule(t, [&order, t, &eq] {
            EXPECT_EQ(eq.now(), t);
            order.push_back(t);
        });
    eq.run();
    std::vector<Tick> sorted(std::begin(ticks), std::end(ticks));
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(order, sorted);
    EXPECT_EQ(eq.now(), 9999999u);
}

TEST(EventQueueTest, SameTickFifoAcrossOverflowBoundary)
{
    // Two events at the same far-future tick, one scheduled before and
    // one after intermediate progress: FIFO order must survive the
    // overflow-to-wheel drain.
    EventQueue eq;
    std::vector<int> order;
    const Tick far = 1000000;
    eq.schedule(far, [&] { order.push_back(1); });
    eq.schedule(10, [&, far] {
        eq.schedule(far, [&] { order.push_back(2); });
    });
    eq.schedule(far, [&] { order.push_back(3); });
    eq.run();
    // Seq order of scheduling: 1, 3 (both at t=0), then 2 (at t=10).
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(EventQueueTest, RunLimitBetweenWindows)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1000000, [&] { ++fired; });
    // Stop in the dead zone between now and the far event.
    EXPECT_EQ(eq.run(50000), 50000u);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.pending(), 1u);
    // Scheduling relative to the limit-advanced clock still works.
    eq.schedule_in(100, [&] { fired += 10; });
    eq.run();
    EXPECT_EQ(fired, 11);
    EXPECT_EQ(eq.now(), 1000000u);
}

TEST(EventQueueTest, RunWithPastLimitIsANoOp)
{
    // The clock is monotonic: run(limit) with limit < now() executes
    // nothing, keeps now(), and later runs still see every event.
    EventQueue eq;
    int fired = 0;
    eq.schedule(10040, [&] { ++fired; });
    eq.schedule(10050, [&] { ++fired; });
    eq.run(10045);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10045u);
    EXPECT_EQ(eq.run(5), 10045u); // past limit: no-op, clock unchanged
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 10050u);
}

TEST(EventQueueTest, PendingTracksWheelAndOverflow)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [] {});
    for (int i = 0; i < 7; ++i)
        eq.schedule(1u << 24, [] {});
    EXPECT_EQ(eq.pending(), 17u);
    eq.run(10);
    EXPECT_EQ(eq.pending(), 7u);
    eq.clear();
    EXPECT_EQ(eq.pending(), 0u);
    eq.run();
    EXPECT_EQ(eq.now(), 10u); // clear() keeps the clock
}

TEST(EventQueueTest, LargeCapturesFallBackToHeap)
{
    // Captures beyond EventCallback's inline buffer use the heap path;
    // behavior must be identical.
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    eq.schedule(9, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    static_assert(sizeof(payload) > EventCallback::kInlineBytes);
    eq.run();
    EXPECT_EQ(sum, 376u); // sum of i*3+1 for i in [0, 16)
}

TEST(EventQueueTest, StepInterleavesWithRunAcrossWindows)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3, [&] { order.push_back(1); });
    eq.schedule(3, [&] { order.push_back(2); });
    eq.schedule(100000, [&] { order.push_back(3); });
    EXPECT_TRUE(eq.step()); // first of the tick-3 batch
    EXPECT_EQ(eq.now(), 3u);
    eq.run(50000);          // finishes the batch, stops before 100000
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, ManyInterleavedEventsStaysDeterministic)
{
    // Two runs of the same schedule produce identical traces.
    auto run_once = [] {
        EventQueue eq;
        std::vector<std::pair<Tick, int>> trace;
        for (int i = 0; i < 200; ++i) {
            Tick when = static_cast<Tick>((i * 37) % 50);
            eq.schedule(when, [&trace, i, &eq] {
                trace.emplace_back(eq.now(), i);
            });
        }
        eq.run();
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace vnpu
