/**
 * @file
 * Unit tests for counters, distributions and stat sets.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/machine.h"
#include "sim/config.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace vnpu {
namespace {

TEST(CounterTest, AccumulatesAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DistributionTest, TracksMinMeanMax)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(10.0);
    d.sample(20.0);
    d.sample(30.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(DistributionTest, SingleSampleIsMinAndMax)
{
    Distribution d;
    d.sample(-5.5);
    EXPECT_DOUBLE_EQ(d.min(), -5.5);
    EXPECT_DOUBLE_EQ(d.max(), -5.5);
    EXPECT_DOUBLE_EQ(d.mean(), -5.5);
}

TEST(DistributionTest, MergeEqualsCombinedSampling)
{
    Distribution a, b, all;
    for (int i = 1; i <= 10; ++i) {
        (i % 2 == 0 ? a : b).sample(i);
        all.sample(i);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());

    // Merging into (or from) an empty distribution is the identity.
    Distribution empty;
    empty.merge(all);
    EXPECT_EQ(empty.count(), all.count());
    EXPECT_DOUBLE_EQ(empty.min(), all.min());
    all.merge(Distribution{});
    EXPECT_EQ(all.count(), empty.count());
}

TEST(StatSetTest, SetAddGet)
{
    StatSet s;
    EXPECT_FALSE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x", -1.0), -1.0);
    s.set("x", 2.0);
    s.add("x", 3.0);
    s.add("y", 1.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 5.0);
    EXPECT_DOUBLE_EQ(s.get("y"), 1.0);
}

TEST(StatSetTest, DumpIsSortedByName)
{
    StatSet s;
    s.set("zeta", 1);
    s.set("alpha", 2);
    std::ostringstream os;
    s.dump(os, "p.");
    EXPECT_EQ(os.str(), "p.alpha = 2\np.zeta = 1\n");
}

TEST(LogTest, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("boom ", 1), SimPanic);
    EXPECT_THROW(fatal("bad config ", 2), SimFatal);
    try {
        panic("value=", 42);
    } catch (const SimPanic& e) {
        EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
    }
}

TEST(LogTest, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(VNPU_ASSERT(1 == 2), SimPanic);
    EXPECT_NO_THROW(VNPU_ASSERT(1 == 1));
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true;
    bool any_diff_seed_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        if (va != b.next())
            all_equal = false;
        if (va != c.next())
            any_diff_seed_diff = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed_diff);
}

TEST(RngTest, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.next_below(17), 17u);
        double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(StatSetTest, RegistrationRecordsKind)
{
    StatSet st;
    st.add("ctr", 3.0);
    st.set("gauge", 7.0);
    EXPECT_EQ(st.kind("ctr"), StatSet::Kind::kCounter);
    EXPECT_EQ(st.kind("gauge"), StatSet::Kind::kGauge);
    // Unknown keys default to gauge (raw-value) semantics.
    EXPECT_EQ(st.kind("absent"), StatSet::Kind::kGauge);
    // Repeated add() on one key is the intended sharing pattern.
    st.add("ctr", 2.0);
    EXPECT_EQ(st.get("ctr", -1), 5.0);
    EXPECT_EQ(st.duplicate_sets(), 0u);
}

TEST(StatSetTest, DuplicateRegistrationIsCountedAndLastWriteWins)
{
    StatSet st;
    st.set("a", 1.0);
    st.set("a", 2.0); // second set(): one subsystem shadows another
    EXPECT_EQ(st.duplicate_sets(), 1u);
    EXPECT_EQ(st.get("a", -1), 2.0);

    st.add("b", 1.0);
    st.set("b", 5.0); // set() after add(): kind conflict
    EXPECT_EQ(st.duplicate_sets(), 2u);

    st.set("c", 1.0);
    st.add("c", 1.0); // add() after set(): kind conflict
    EXPECT_EQ(st.duplicate_sets(), 3u);

    // A fresh StatSet starts clean (the warning is per-set, the
    // counter is per-offense).
    StatSet fresh;
    fresh.set("a", 1.0);
    EXPECT_EQ(fresh.duplicate_sets(), 0u);
}

TEST(StatSetTest, MachineSweepHasNoDuplicateRegistrations)
{
    // Pin the repo-wide contract: one collect_stats sweep never
    // registers the same key twice (each layer owns a unique prefix).
    runtime::Machine m(SocConfig::Fpga());
    StatSet st;
    m.collect_stats(st);
    EXPECT_EQ(st.duplicate_sets(), 0u);
    EXPECT_GT(st.all().size(), 0u);
}

TEST(HistogramDeltaTest, WindowDeltasMergeBackToCumulative)
{
    Histogram cum, merged;
    Histogram prev; // snapshot at the previous window boundary
    Rng rng(42);
    for (int w = 0; w < 5; ++w) {
        for (int i = 0; i < 300; ++i)
            cum.record(static_cast<double>(rng.next_below(100000) + 1));
        Histogram win = cum.delta_since(prev);
        EXPECT_EQ(win.count(), 300u) << w;
        merged.merge(win);
        prev = cum;
    }
    EXPECT_EQ(merged.count(), cum.count());
    EXPECT_EQ(merged.sum(), cum.sum());
    for (double p : {0.25, 0.5, 0.9, 0.99})
        EXPECT_EQ(merged.quantile(p), cum.quantile(p)) << "p=" << p;
}

TEST(HistogramDeltaTest, EmptyWindowAndBoundedMinMax)
{
    Histogram cum;
    cum.record(100.0);
    Histogram snap = cum;
    // Nothing recorded since the snapshot: the delta is empty.
    Histogram none = cum.delta_since(snap);
    EXPECT_EQ(none.count(), 0u);
    EXPECT_EQ(none.sum(), 0.0);

    cum.record(500.0);
    cum.record(700.0);
    Histogram win = cum.delta_since(snap);
    EXPECT_EQ(win.count(), 2u);
    EXPECT_EQ(win.sum(), 1200.0);
    // min/max are bucket approximations, clamped into the cumulative
    // exact range and bracketing the window's true extremes' buckets.
    EXPECT_GE(win.min(), cum.min());
    EXPECT_LE(win.max(), cum.max());
    EXPECT_LE(win.min(), 500.0);
    EXPECT_GE(win.max(), 700.0 / 1.05);
}

} // namespace
} // namespace vnpu
