/**
 * @file
 * Unit tests for counters, distributions and stat sets.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/log.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace vnpu {
namespace {

TEST(CounterTest, AccumulatesAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DistributionTest, TracksMinMeanMax)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(10.0);
    d.sample(20.0);
    d.sample(30.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(DistributionTest, SingleSampleIsMinAndMax)
{
    Distribution d;
    d.sample(-5.5);
    EXPECT_DOUBLE_EQ(d.min(), -5.5);
    EXPECT_DOUBLE_EQ(d.max(), -5.5);
    EXPECT_DOUBLE_EQ(d.mean(), -5.5);
}

TEST(DistributionTest, MergeEqualsCombinedSampling)
{
    Distribution a, b, all;
    for (int i = 1; i <= 10; ++i) {
        (i % 2 == 0 ? a : b).sample(i);
        all.sample(i);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());

    // Merging into (or from) an empty distribution is the identity.
    Distribution empty;
    empty.merge(all);
    EXPECT_EQ(empty.count(), all.count());
    EXPECT_DOUBLE_EQ(empty.min(), all.min());
    all.merge(Distribution{});
    EXPECT_EQ(all.count(), empty.count());
}

TEST(StatSetTest, SetAddGet)
{
    StatSet s;
    EXPECT_FALSE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x", -1.0), -1.0);
    s.set("x", 2.0);
    s.add("x", 3.0);
    s.add("y", 1.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 5.0);
    EXPECT_DOUBLE_EQ(s.get("y"), 1.0);
}

TEST(StatSetTest, DumpIsSortedByName)
{
    StatSet s;
    s.set("zeta", 1);
    s.set("alpha", 2);
    std::ostringstream os;
    s.dump(os, "p.");
    EXPECT_EQ(os.str(), "p.alpha = 2\np.zeta = 1\n");
}

TEST(LogTest, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("boom ", 1), SimPanic);
    EXPECT_THROW(fatal("bad config ", 2), SimFatal);
    try {
        panic("value=", 42);
    } catch (const SimPanic& e) {
        EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
    }
}

TEST(LogTest, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(VNPU_ASSERT(1 == 2), SimPanic);
    EXPECT_NO_THROW(VNPU_ASSERT(1 == 1));
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true;
    bool any_diff_seed_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        if (va != b.next())
            all_equal = false;
        if (va != c.next())
            any_diff_seed_diff = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed_diff);
}

TEST(RngTest, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.next_below(17), 17u);
        double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

} // namespace
} // namespace vnpu
