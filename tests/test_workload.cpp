/**
 * @file
 * Tests for the model zoo and the pipeline partitioner.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/log.h"
#include "workload/model_zoo.h"
#include "workload/partitioner.h"

namespace vnpu::workload {
namespace {

TEST(ModelZooTest, ParameterCountsMatchLiterature)
{
    // fp16 weight bytes = 2 * parameter count; compare against the
    // well-known parameter counts with generous tolerance (we model
    // conv/linear weights only).
    auto params = [](const Model& m) {
        return static_cast<double>(m.total_weight_bytes()) / kElemBytes;
    };
    EXPECT_NEAR(params(resnet18()), 11.7e6, 1.5e6);
    EXPECT_NEAR(params(resnet34()), 21.8e6, 2.5e6);
    EXPECT_NEAR(params(alexnet()), 61e6, 6e6);
    EXPECT_NEAR(params(mobilenet()), 4.2e6, 1.0e6);
    // GPT-2 decoder blocks: ~12 * dim^2 per block.
    EXPECT_NEAR(params(gpt2(Gpt2Size::kSmall)), 12.0 * 12 * 768 * 768,
                0.15 * 12.0 * 12 * 768 * 768);
    EXPECT_NEAR(params(gpt2(Gpt2Size::kLarge)), 36.0 * 12 * 1280 * 1280,
                0.15 * 36.0 * 12 * 1280 * 1280);
}

TEST(ModelZooTest, ResnetFlopsScale)
{
    // ResNet-34 ≈ 2x ResNet-18 FLOPs; batch scales linearly.
    std::uint64_t f18 = resnet18().total_flops();
    std::uint64_t f34 = resnet34().total_flops();
    EXPECT_GT(f34, f18 * 3 / 2);
    EXPECT_LT(f34, f18 * 3);
    EXPECT_EQ(resnet18(4).total_flops(), 4 * f18);
    // ~3.6 GFLOPs for ResNet-18 at batch 1 (2 * 1.8G MACs).
    EXPECT_NEAR(static_cast<double>(f18), 3.6e9, 1.2e9);
}

TEST(ModelZooTest, AllModelsValidateAndAreNamed)
{
    for (const char* name :
         {"alexnet", "resnet18", "resnet34", "resnet50", "googlenet",
          "mobilenet", "yololite", "retinanet", "efficientnet", "gpt2-s",
          "gpt2-m", "gpt2-l", "bert", "dlrm", "transformer"}) {
        Model m = by_name(name);
        EXPECT_EQ(m.name, name);
        EXPECT_GT(m.total_flops(), 0u);
        EXPECT_NO_THROW(m.validate());
    }
    EXPECT_THROW(by_name("nonexistent"), SimFatal);
}

TEST(ModelZooTest, MicroBlockNamesMatchPaperLabels)
{
    EXPECT_EQ(transformer_block(128, 16).name, "128dim_16slen");
    EXPECT_EQ(resnet_block(16, 64).name, "16wh_64c");
    EXPECT_EQ(resnet_block(20, 32).name, "20wh_32c");
}

TEST(ModelZooTest, DepthwiseConvHasReducedCost)
{
    Layer dw = Layer::conv("dw", 14, 14, 512, 512, 3, 1, true);
    Layer full = Layer::conv("full", 14, 14, 512, 512, 3, 1, false);
    EXPECT_LT(dw.flops(1) * 100, full.flops(1));
    EXPECT_LT(dw.weight_bytes() * 100, full.weight_bytes());
}

TEST(LayerTest, LoweredKernelsMatchShapes)
{
    Layer c = Layer::conv("c", 32, 32, 16, 64, 3, 2);
    core::ComputeDims d = c.lowered(2, 1.0);
    EXPECT_EQ(d.kind, core::ComputeKind::kConv);
    EXPECT_EQ(d.oh, 32); // 16 out rows * batch 2
    EXPECT_EQ(d.cout, 64);
    core::ComputeDims half = c.lowered(1, 0.5);
    EXPECT_EQ(half.cout, 32);

    Layer l = Layer::linear("l", 16, 768, 768);
    core::ComputeDims ld = l.lowered(1, 0.25);
    EXPECT_EQ(ld.m, 16);
    EXPECT_EQ(ld.n, 192);
}

// ---- Partitioner -------------------------------------------------------------

TEST(PartitionerTest, ProducesRequestedStageCount)
{
    for (int n : {1, 2, 4, 7, 12, 28}) {
        Model m = resnet18();
        PipelinePlan plan = make_pipeline_plan(m, n);
        EXPECT_EQ(plan.num_stages, n);
        // No stage is empty.
        for (const Stage& s : plan.stages)
            EXPECT_FALSE(s.slices.empty());
    }
}

TEST(PartitionerTest, FlopsConserved)
{
    Model m = resnet34();
    for (int n : {3, 9, 24}) {
        PipelinePlan plan = make_pipeline_plan(m, n);
        std::uint64_t sum = 0;
        for (int s = 0; s < n; ++s)
            sum += plan.stage_flops(m, s);
        double ratio = static_cast<double>(sum) /
                       static_cast<double>(m.total_flops());
        EXPECT_NEAR(ratio, 1.0, 0.02) << "n=" << n;
    }
}

TEST(PartitionerTest, WeightsConserved)
{
    Model m = gpt2(Gpt2Size::kSmall, 64);
    PipelinePlan plan = make_pipeline_plan(m, 12);
    std::uint64_t sum = 0;
    for (int s = 0; s < 12; ++s)
        sum += plan.stage_weight_bytes(m, s);
    EXPECT_NEAR(static_cast<double>(sum),
                static_cast<double>(m.total_weight_bytes()),
                0.02 * m.total_weight_bytes());
}

TEST(PartitionerTest, BalanceImprovesWithSplitting)
{
    // More stages than layers exercises channel splitting.
    Model m = transformer_block(128, 16);
    int layers = static_cast<int>(m.layers.size());
    PipelinePlan plan = make_pipeline_plan(m, layers + 4);
    EXPECT_EQ(plan.num_stages, layers + 4);
    double imb = plan.imbalance(m);
    EXPECT_LT(imb, 6.0);
}

TEST(PartitionerTest, BalancedPipelineForGpt)
{
    // GPT blocks are uniform: balance should be tight.
    Model m = gpt2(Gpt2Size::kSmall, 64);
    PipelinePlan plan = make_pipeline_plan(m, 12);
    EXPECT_LT(plan.imbalance(m), 1.6);
}

TEST(PartitionerTest, EdgesConnectCrossStageDataflow)
{
    Model m = resnet18();
    PipelinePlan plan = make_pipeline_plan(m, 6);
    EXPECT_FALSE(plan.edges.empty());
    std::set<int> tags;
    for (const CommEdge& e : plan.edges) {
        EXPECT_GE(e.src_stage, 0);
        EXPECT_LT(e.src_stage, 6);
        EXPECT_GE(e.dst_stage, 0);
        EXPECT_LT(e.dst_stage, 6);
        EXPECT_NE(e.src_stage, e.dst_stage);
        EXPECT_GT(e.bytes, 0u);
        EXPECT_TRUE(tags.insert(e.tag).second) << "duplicate tag";
    }
}

TEST(PartitionerTest, ResidualEdgesSkipStages)
{
    // ResNet skip connections should produce at least one edge whose
    // stages are non-adjacent when the pipeline is deep enough.
    Model m = resnet18();
    PipelinePlan plan = make_pipeline_plan(m, 16);
    bool has_skip = false;
    for (const CommEdge& e : plan.edges)
        if (e.dst_stage > e.src_stage + 1)
            has_skip = true;
    EXPECT_TRUE(has_skip);
}

TEST(PartitionerTest, SingleStageHasNoEdges)
{
    Model m = resnet18();
    PipelinePlan plan = make_pipeline_plan(m, 1);
    EXPECT_TRUE(plan.edges.empty());
    EXPECT_EQ(plan.stage_flops(m, 0), m.total_flops());
}

} // namespace
} // namespace vnpu::workload
