/**
 * @file
 * Tests for the fleet-scale serving layer: arrival processes, per-device
 * Rng substream isolation, scheduler determinism, defragmentation
 * payoff, and migration invariants (partition disjointness + confined
 * route containment after every remap).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "check/checks.h"
#include "fleet/arrival.h"
#include "fleet/scheduler.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace vnpu::fleet {
namespace {

/** A 16x16-core device: big enough to fragment, fast enough to churn
 *  thousands of admissions through in a unit test. */
SocConfig
small_device()
{
    SocConfig c = SocConfig::Sim();
    c.mesh_x = 16;
    c.mesh_y = 16;
    c.hbm_channels = 16;
    // Confined-route tables scale with region^2; the 8x8 class below
    // needs more than the 16 KiB default (docs/fleet.md).
    c.meta_zone_bytes = 64 * 1024;
    return c;
}

/** Mix spanning 4..64 cores so large tenants get fragmentation-blocked
 *  while small ones keep churning the free sets. */
std::vector<TenantClass>
small_mix()
{
    return {
        {"mobilenet", 2, 2, 0.40, 30'000},
        {"resnet50", 4, 4, 0.30, 40'000},
        {"bert", 8, 4, 0.20, 50'000},
        {"gpt2-s", 8, 8, 0.10, 60'000},
    };
}

FleetConfig
small_fleet(std::uint64_t seed, bool defrag, Tick mean_gap = 1100)
{
    FleetConfig cfg;
    cfg.num_devices = 4;
    cfg.device = small_device();
    cfg.seed = seed;
    cfg.mix = small_mix();
    cfg.arrival.mean_gap = mean_gap;
    cfg.max_arrivals = 2'000;
    cfg.defrag = defrag;
    return cfg;
}

// ---- Arrival process -----------------------------------------------------

TEST(ArrivalTest, PoissonIsDeterministicAndMonotonic)
{
    ArrivalConfig cfg;
    cfg.mean_gap = 500;
    ArrivalProcess a(cfg, 7), b(cfg, 7);
    Tick prev = 0;
    for (int i = 0; i < 500; ++i) {
        const FleetRequest ra = a.next();
        const FleetRequest rb = b.next();
        EXPECT_EQ(ra.id, static_cast<std::uint64_t>(i));
        EXPECT_EQ(ra.arrival, rb.arrival);
        EXPECT_EQ(ra.width, rb.width);
        EXPECT_EQ(ra.height, rb.height);
        EXPECT_EQ(ra.lifetime, rb.lifetime);
        EXPECT_GE(ra.arrival, prev);
        EXPECT_GE(ra.lifetime, 1);
        prev = ra.arrival;
    }
    // A different seed reshuffles the stream.
    ArrivalProcess c(cfg, 8);
    bool any_diff = false;
    ArrivalProcess a2(cfg, 7);
    for (int i = 0; i < 50 && !any_diff; ++i)
        any_diff = c.next().arrival != a2.next().arrival;
    EXPECT_TRUE(any_diff);
}

TEST(ArrivalTest, TraceReplayUsesExplicitTicks)
{
    ArrivalConfig cfg;
    cfg.model = ArrivalModel::kTrace;
    cfg.trace = {5, 5, 12, 40};
    ArrivalProcess p(cfg, 1);
    std::vector<Tick> got;
    while (!p.exhausted())
        got.push_back(p.next().arrival);
    EXPECT_EQ(got, (std::vector<Tick>{5, 5, 12, 40}));
    EXPECT_EQ(p.generated(), 4u);
}

TEST(ArrivalTest, RejectsBrokenConfigs)
{
    ArrivalConfig decreasing;
    decreasing.model = ArrivalModel::kTrace;
    decreasing.trace = {10, 4};
    EXPECT_THROW(ArrivalProcess(decreasing, 1), SimFatal);

    ArrivalConfig empty_trace;
    empty_trace.model = ArrivalModel::kTrace;
    EXPECT_THROW(ArrivalProcess(empty_trace, 1), SimFatal);

    ArrivalConfig ok;
    EXPECT_THROW(ArrivalProcess(ok, 1, {{"no-such-model", 2, 2, 1.0, 10}}),
                 SimFatal);
    EXPECT_THROW(ArrivalProcess(ok, 1, std::vector<TenantClass>{}),
                 SimFatal);
}

TEST(ArrivalTest, BurstyTightensInterArrivalGaps)
{
    ArrivalConfig calm;
    calm.mean_gap = 1000;
    ArrivalConfig bursty = calm;
    bursty.model = ArrivalModel::kBursty;
    bursty.burst_factor = 10.0;
    bursty.burst_enter = 0.3;
    bursty.burst_exit = 0.1;

    const auto horizon = [](ArrivalConfig cfg) {
        ArrivalProcess p(cfg, 3);
        Tick last = 0;
        for (int i = 0; i < 2000; ++i)
            last = p.next().arrival;
        return last;
    };
    // Same arrival count in strictly less time once bursts kick in.
    EXPECT_LT(horizon(bursty), horizon(calm));
}

// ---- Per-device Rng substreams -------------------------------------------

TEST(RngTest, SubstreamsAreDecorrelated)
{
    std::set<std::uint64_t> first;
    for (std::uint64_t id = 0; id < 64; ++id)
        first.insert(Rng::substream(42, id).next());
    EXPECT_EQ(first.size(), 64u); // no two substreams collide up front
    // The substream family is also distinct from the master stream.
    EXPECT_FALSE(first.count(Rng(42).next()));
}

TEST(FleetTest, DeviceStreamInvariantToFleetSize)
{
    // A device's private decision stream must not depend on how many
    // siblings share the fleet: device 0 of a 1-device fleet and
    // device 0 of a 4-device fleet draw the same jitter sequence, each
    // a prefix of the reference substream. Seeding all devices from
    // one shared Rng would interleave draws and break this.
    const std::uint64_t seed = 99;
    std::vector<std::vector<Cycles>> logs;
    for (int fleet_size : {1, 4}) {
        FleetConfig cfg = small_fleet(seed, true);
        cfg.num_devices = fleet_size;
        cfg.max_arrivals = 400;
        cfg.record_device_jitter = true;
        FleetSimulator sim(cfg);
        sim.run();
        logs.push_back(sim.device_jitter_log(0));
        ASSERT_FALSE(logs.back().empty());
    }

    FleetConfig ref_cfg = small_fleet(seed, true);
    Rng ref = Rng::substream(seed, 0);
    std::vector<Cycles> expected;
    const std::size_t need =
        std::max(logs[0].size(), logs[1].size());
    for (std::size_t i = 0; i < need; ++i)
        expected.push_back(ref.next_below(ref_cfg.admit_jitter_ticks));

    for (const std::vector<Cycles>& log : logs)
        for (std::size_t i = 0; i < log.size(); ++i)
            EXPECT_EQ(log[i], expected[i]) << "draw " << i;
}

// ---- Scheduler determinism and SLO accounting ----------------------------

TEST(FleetTest, RunToRunDecisionIdentity)
{
    const FleetConfig cfg = small_fleet(11, true);
    FleetSimulator a(cfg), b(cfg);
    a.run();
    b.run();
    ASSERT_EQ(a.decisions().size(), b.decisions().size());
    EXPECT_EQ(a.decision_hash(), b.decision_hash());
    EXPECT_EQ(a.decision_hash48(), b.decision_hash48());
    EXPECT_LT(a.decision_hash48(), std::uint64_t{1} << 48);

    // Every generated request is decided exactly once.
    EXPECT_EQ(a.decisions().size(), a.stats().arrivals.value());
    EXPECT_EQ(a.stats().admitted.value() + a.stats().rejected.value(),
              a.stats().arrivals.value());
    std::set<std::uint64_t> ids;
    for (const FleetDecision& d : a.decisions())
        ids.insert(d.request_id);
    EXPECT_EQ(ids.size(), a.decisions().size());

    FleetConfig other = cfg;
    other.seed = 12;
    FleetSimulator c(other);
    c.run();
    EXPECT_NE(a.decision_hash(), c.decision_hash());
}

TEST(FleetTest, SloAccountingIsSane)
{
    FleetSimulator sim(small_fleet(5, true));
    sim.run();
    const FleetStats& st = sim.stats();
    EXPECT_GT(st.admitted.value(), 0u);
    EXPECT_GE(st.admission_wait.quantile(0.99),
              st.admission_wait.quantile(0.5));
    EXPECT_GE(sim.utilization_mean(), 0.0);
    EXPECT_LE(sim.utilization_mean(), 1.0);
    EXPECT_GE(sim.utilization_peak(), sim.utilization_mean());
    EXPECT_LE(sim.utilization_peak(), 1.0);
    EXPECT_GE(sim.queue_depth_mean(), 0.0);
    EXPECT_GE(static_cast<double>(sim.queue_depth_peak()),
              sim.queue_depth_mean());
    // Nothing is left in flight once run() returns.
    EXPECT_EQ(sim.queue_depth(), 0u);

    StatSet out;
    sim.collect_stats(out);
    EXPECT_EQ(out.get("fleet.arrivals", -1),
              static_cast<double>(st.arrivals.value()));
    EXPECT_TRUE(out.has("fleet.util.mean"));
    EXPECT_TRUE(out.has("fleet.queue.depth_peak"));
    EXPECT_TRUE(out.has("fleet.wait.p99"));
    EXPECT_TRUE(out.has("fleet.migrations"));
}

TEST(FleetTest, DefragReducesBlockedRate)
{
    // At a fragmentation-bound load, migrating small tenants out of
    // the way admits large requests that would otherwise time out.
    FleetSimulator off(small_fleet(21, false));
    FleetSimulator on(small_fleet(21, true));
    off.run();
    on.run();
    EXPECT_EQ(off.stats().migrations.value(), 0u);
    EXPECT_GT(on.stats().migrations.value(), 0u);
    EXPECT_GT(on.stats().defrag_success.value(), 0u);
    EXPECT_LT(on.stats().rejected.value(), off.stats().rejected.value());
}

// ---- Migration invariants ------------------------------------------------

/** Partition + confined-route invariants on every device, from fleet
 *  bookkeeping down to hypervisor state. Panics (SimPanic) on any
 *  violation, so simply calling it is the assertion. */
void
verify_fleet_invariants(const FleetSimulator& sim)
{
    std::map<int, std::vector<CoreSet>> regions;
    for (const auto& [dev, vm] : sim.live_vms()) {
        const virt::VirtualNpu* v =
            sim.device(dev).hypervisor().find(vm);
        ASSERT_NE(v, nullptr);
        regions[dev].push_back(v->mask());
        if (const noc::RouteOverride* r = v->confined_routes())
            check::verify_confined_route(sim.device(dev).topology(),
                                         v->mask(), *r);
    }
    for (int d = 0; d < sim.num_devices(); ++d)
        check::verify_vm_partition(
            sim.device(d).hypervisor().free_cores(), regions[d],
            sim.device(d).num_cores());
}

TEST(FleetTest, MigrationPreservesPartitionAndRouteInvariants)
{
    FleetConfig cfg = small_fleet(31, true, 900); // saturated: migrate lots
    cfg.max_arrivals = 1'200;
    FleetSimulator sim(cfg);
    std::uint64_t steps = 0;
    std::uint64_t last_migrations = 0;
    while (sim.step()) {
        ++steps;
        const std::uint64_t m = sim.stats().migrations.value();
        // Verify after every step that migrated something, plus a
        // periodic sweep so plain admissions stay covered too.
        if (m != last_migrations || steps % 256 == 0) {
            last_migrations = m;
            verify_fleet_invariants(sim);
        }
    }
    verify_fleet_invariants(sim);
    // The config must actually exercise the migration path.
    EXPECT_GT(sim.stats().migrations.value(), 0u);
    EXPECT_GT(sim.stats().defrag_success.value(), 0u);
}

} // namespace
} // namespace vnpu::fleet
