/**
 * @file
 * Tests for the observability layer: trace sink determinism and
 * non-perturbation, Histogram quantiles against a sorted oracle, the
 * admission audit ring, and the uniform collect_stats sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hyp/admission_audit.h"
#include "hyp/hypervisor.h"
#include "noc/network.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "runtime/machine.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace vnpu {
namespace {

using noc::MeshTopology;
using noc::Network;
using noc::SendResult;
using runtime::Machine;

/** Restore the no-sink state even when a test fails mid-way. */
struct SinkGuard {
    explicit SinkGuard(obs::TraceSink* sink) { obs::set_sink(sink); }
    ~SinkGuard() { obs::set_sink(nullptr); }
};

SocConfig
net_cfg()
{
    SocConfig c = SocConfig::Fpga();
    c.mesh_x = 4;
    c.mesh_y = 4;
    return c;
}

/** Everything observable about one fixed NoC scenario. */
struct ScenarioResult {
    std::vector<SendResult> sends;
    Tick end = 0;
    int delivered = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::vector<Tick> busy;
    std::vector<noc::LinkCounters> links;
};

/** Run a fixed contention scenario, optionally traced into `sink`. */
ScenarioResult
run_scenario(obs::TraceSink* sink)
{
    SinkGuard guard(sink);
    SocConfig cfg = net_cfg();
    EventQueue eq;
    MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    Network net(cfg, topo, eq);
    ScenarioResult r;
    net.set_deliver_callback(
        [&r](int, int, std::uint64_t, int, VmId, bool) { ++r.delivered; });

    r.sends.push_back(net.send(0, 0, 5, 4096, 1, 7));
    r.sends.push_back(net.send(0, 3, 15, 2048, 2, 8));
    r.sends.push_back(net.send(10, 2, 2, 512, 1, 9));   // loopback
    r.sends.push_back(net.send(40, 0, 5, 4096, 1, 7));  // re-contend
    eq.run();
    net.trace_link_counters(eq.now());

    r.end = eq.now();
    r.messages = net.stats().messages.value();
    r.bytes = net.stats().bytes.value();
    for (int a : {0, 1, 2}) {
        r.busy.push_back(net.link_busy_until(a, a + 1));
    }
    r.links = net.link_counters();
    return r;
}

void
expect_same(const ScenarioResult& a, const ScenarioResult& b)
{
    ASSERT_EQ(a.sends.size(), b.sends.size());
    for (std::size_t i = 0; i < a.sends.size(); ++i) {
        EXPECT_EQ(a.sends[i].delivered, b.sends[i].delivered) << i;
        EXPECT_EQ(a.sends[i].sender_free, b.sends[i].sender_free) << i;
        EXPECT_EQ(a.sends[i].hops, b.sends[i].hops) << i;
    }
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.busy, b.busy);
    ASSERT_EQ(a.links.size(), b.links.size());
    for (std::size_t i = 0; i < a.links.size(); ++i) {
        EXPECT_EQ(a.links[i].flits, b.links[i].flits) << i;
        EXPECT_EQ(a.links[i].busy_ticks, b.links[i].busy_ticks) << i;
    }
}

TEST(TraceTest, DisabledByDefault)
{
    EXPECT_FALSE(obs::enabled());
    // Emitting with no sink must be a harmless no-op.
    obs::emit_instant("noop", "sim", 0, 0);
}

TEST(TraceTest, TracedRunIsByteIdenticalAcrossRuns)
{
    std::ostringstream os1, os2;
    {
        obs::ChromeTraceWriter w(os1);
        run_scenario(&w);
        obs::set_sink(nullptr);
        w.close();
        EXPECT_GT(w.num_events(), 0u);
    }
    {
        obs::ChromeTraceWriter w(os2);
        run_scenario(&w);
        obs::set_sink(nullptr);
        w.close();
    }
    // Timestamps are sim ticks, never wall clock, so a deterministic
    // simulation yields a byte-identical trace.
    EXPECT_EQ(os1.str(), os2.str());
}

TEST(TraceTest, TraceIsStructurallyValidChromeJson)
{
    std::ostringstream os;
    obs::ChromeTraceWriter w(os);
    run_scenario(&w);
    obs::set_sink(nullptr);
    w.close();

    const std::string t = os.str();
    EXPECT_EQ(t.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(t.find("\"ph\":\"X\""), std::string::npos); // msg spans
    EXPECT_NE(t.find("\"ph\":\"C\""), std::string::npos); // link counters
    EXPECT_NE(t.find("\"cat\":\"noc\""), std::string::npos);
    EXPECT_NE(t.find("\"cat\":\"sim\""), std::string::npos); // tick spans
    EXPECT_EQ(t.substr(t.size() - 3), "]}\n");
}

TEST(TraceTest, SinkDoesNotPerturbSimulation)
{
    ScenarioResult off = run_scenario(nullptr);
    std::ostringstream os;
    obs::ChromeTraceWriter w(os);
    ScenarioResult on = run_scenario(&w);
    obs::set_sink(nullptr);
    w.close();
    expect_same(off, on);
}

TEST(HistogramTest, EmptyAndSingleSample)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    h.record(42.0);
    EXPECT_EQ(h.quantile(0.0), 42.0);
    EXPECT_EQ(h.quantile(0.5), 42.0);
    EXPECT_EQ(h.quantile(1.0), 42.0);
    EXPECT_EQ(h.min(), 42.0);
    EXPECT_EQ(h.max(), 42.0);
    EXPECT_EQ(h.mean(), 42.0);
}

TEST(HistogramTest, QuantilesMatchSortedOracle)
{
    Histogram h;
    std::vector<double> vals;
    Rng rng(1234);
    for (int i = 0; i < 5000; ++i) {
        // Span several octaves: 1 .. ~1e6.
        double v = static_cast<double>(rng.next_below(1000000) + 1);
        vals.push_back(v);
        h.record(v);
    }
    std::sort(vals.begin(), vals.end());
    for (double p : {0.5, 0.9, 0.99}) {
        const std::size_t rank = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(p * static_cast<double>(vals.size()))));
        const double oracle = vals[rank - 1];
        const double got = h.quantile(p);
        // Log-bucketed with 16 sub-buckets per octave: relative error
        // is bounded by 2^(1/16) - 1 (~4.4%).
        EXPECT_GT(got, oracle / 1.05) << "p=" << p;
        EXPECT_LT(got, oracle * 1.05) << "p=" << p;
    }
    EXPECT_EQ(h.count(), 5000u);
    EXPECT_EQ(h.min(), vals.front());
    EXPECT_EQ(h.max(), vals.back());
}

TEST(HistogramTest, MergeEqualsCombinedRecording)
{
    Histogram a, b, all;
    Rng rng(77);
    for (int i = 0; i < 2000; ++i) {
        double v = static_cast<double>(rng.next_below(100000) + 1);
        (i % 2 == 0 ? a : b).record(v);
        all.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.sum(), all.sum());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    for (double p : {0.25, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.quantile(p), all.quantile(p)) << "p=" << p;
}

TEST(HistogramTest, CollectExportsQuantileKeys)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    StatSet st;
    h.collect(st, "lat.");
    EXPECT_EQ(st.get("lat.count", -1), 100.0);
    EXPECT_TRUE(st.has("lat.p50"));
    EXPECT_TRUE(st.has("lat.p90"));
    EXPECT_TRUE(st.has("lat.p99"));
    EXPECT_EQ(st.get("lat.min", -1), 1.0);
    EXPECT_EQ(st.get("lat.max", -1), 100.0);
}

TEST(AuditRingTest, StaysBoundedAndKeepsNewest)
{
    hyp::AdmissionAuditRing ring(256);
    for (int i = 0; i < 600; ++i) {
        hyp::AdmissionAuditEntry e;
        e.requested_cores = i;
        ring.push(std::move(e));
    }
    EXPECT_EQ(ring.size(), 256u);
    EXPECT_EQ(ring.capacity(), 256u);
    EXPECT_EQ(ring.total_pushed(), 600u);
    // Oldest retained is push #344 (600 - 256), newest is #599.
    EXPECT_EQ(ring.at(0).seq, 344u);
    EXPECT_EQ(ring.at(0).requested_cores, 344);
    EXPECT_EQ(ring.at(255).seq, 599u);

    std::ostringstream os;
    ring.dump_jsonl(os);
    const std::string dump = os.str();
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(dump.begin(), dump.end(), '\n')),
              ring.size());
    EXPECT_NE(dump.find("\"seq\": 344"), std::string::npos);
    EXPECT_EQ(dump.find("\"seq\": 343"), std::string::npos);
}

TEST(AuditRingTest, SetCapacityRepacksOldestFirst)
{
    hyp::AdmissionAuditRing ring(8);
    for (int i = 0; i < 20; ++i) {
        hyp::AdmissionAuditEntry e;
        ring.push(std::move(e));
    }
    ring.set_capacity(4);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.at(0).seq, 16u);
    EXPECT_EQ(ring.at(3).seq, 19u);
    // Pushing after a resize keeps seq numbering and order.
    hyp::AdmissionAuditEntry e;
    ring.push(std::move(e));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.at(0).seq, 17u);
    EXPECT_EQ(ring.at(3).seq, 20u);
}

/**
 * Strict JSON value parser (validate + collect top-level string
 * members). Just substring-probing a dump cannot catch escaping
 * faults; this actually consumes every byte the way RFC 8259 says a
 * reader will, and records decoded top-level strings for round-trip
 * comparison.
 */
class JsonChecker {
  public:
    explicit JsonChecker(const std::string& s) : s_(s) {}

    bool
    parse()
    {
        pos_ = 0;
        if (!value(""))
            return false;
        skip_ws();
        return pos_ == s_.size();
    }

    /** Decoded top-level string members, by key. */
    const std::map<std::string, std::string>& strings() const
    {
        return strings_;
    }

  private:
    void
    skip_ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char* lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string_value(std::string& out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < s_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return false; // raw control char: invalid JSON
            if (c == '\\') {
                if (++pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > s_.size())
                        return false;
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_++];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    if (v > 0xFF)
                        return false; // audit strings are raw bytes
                    out += static_cast<char>(v);
                    break;
                  }
                  default: return false;
                }
            } else {
                out += static_cast<char>(c);
                ++pos_;
            }
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        std::size_t digits = 0;
        while (pos_ < s_.size() && std::isdigit(
                                       static_cast<unsigned char>(
                                           s_[pos_]))) {
            ++pos_;
            ++digits;
        }
        if (digits == 0)
            return false;
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return false;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return false;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    value(const std::string& key, int depth = 0)
    {
        skip_ws();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skip_ws();
                std::string k;
                if (!string_value(k))
                    return false;
                skip_ws();
                if (pos_ >= s_.size() || s_[pos_++] != ':')
                    return false;
                if (!value(k, depth + 1))
                    return false;
                skip_ws();
                if (pos_ < s_.size() && s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            return pos_ < s_.size() && s_[pos_++] == '}';
        }
        if (c == '[') {
            ++pos_;
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                if (!value("", depth + 1))
                    return false;
                skip_ws();
                if (pos_ < s_.size() && s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            return pos_ < s_.size() && s_[pos_++] == ']';
        }
        if (c == '"') {
            std::string v;
            if (!string_value(v))
                return false;
            if (depth == 1 && !key.empty())
                strings_[key] = v;
            return true;
        }
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    std::map<std::string, std::string> strings_;
};

TEST(AuditRingTest, DumpJsonlSurvivesAdversarialStrings)
{
    // Failure reasons flow straight from fatal() messages into the
    // ring; under fleet churn they can carry model names, quoted
    // specs, file paths — any byte. Every line of the dump must stay
    // machine-parseable JSON and round-trip the exact string.
    std::vector<std::string> nasty = {
        "plain reason",
        "quote \" backslash \\ slash / done",
        "newline \n tab \t cr \r backspace \b formfeed \f",
        "\"{]}\\u0000 not a real escape: \\x41",
        std::string("embedded\0NUL", 12),
        "high bytes \xc3\xa9\xf0\x9f\x92\xa9 pass through",
        "trailing backslash \\",
    };
    std::string all_controls;
    for (int c = 1; c < 0x20; ++c)
        all_controls += static_cast<char>(c);
    nasty.push_back(all_controls);

    hyp::AdmissionAuditRing ring(64);
    for (const std::string& s : nasty) {
        hyp::AdmissionAuditEntry e;
        e.requested_cores = 4;
        e.strategy = hyp::MappingStrategy::kSimilarTopology;
        e.error = s;
        ring.push(std::move(e));
    }

    std::ostringstream os;
    ring.dump_jsonl(os);
    std::istringstream is(os.str());
    std::string line;
    std::size_t i = 0;
    while (std::getline(is, line)) {
        ASSERT_LT(i, nasty.size());
        JsonChecker parser(line);
        ASSERT_TRUE(parser.parse()) << "line " << i << ": " << line;
        const auto it = parser.strings().find("error");
        ASSERT_NE(it, parser.strings().end()) << "line " << i;
        EXPECT_EQ(it->second, nasty[i]) << "line " << i;
        ++i;
    }
    EXPECT_EQ(i, nasty.size());
}

TEST(AuditRingTest, SetCapacityFuzzMatchesDequeOracle)
{
    // Adversarial repack schedule: random push bursts interleaved with
    // random grow/shrink set_capacity calls, so repacks regularly hit
    // a ring whose head has wrapped mid-buffer. The ring must always
    // hold exactly the newest entries in oldest-first order — modeled
    // by a deque oracle that never wraps.
    hyp::AdmissionAuditRing ring(5);
    std::deque<std::uint64_t> oracle; // seq numbers, oldest first
    std::size_t oracle_cap = 5;
    std::uint64_t next_seq = 0;
    Rng rng(2024);

    for (int op = 0; op < 400; ++op) {
        if (rng.next_below(3) != 0) {
            const std::uint64_t burst = rng.next_below(9) + 1;
            for (std::uint64_t b = 0; b < burst; ++b) {
                hyp::AdmissionAuditEntry e;
                e.requested_cores = static_cast<int>(next_seq);
                EXPECT_EQ(ring.push(std::move(e)), next_seq);
                oracle.push_back(next_seq++);
                while (oracle.size() > oracle_cap)
                    oracle.pop_front();
            }
        } else {
            const std::size_t cap = rng.next_below(11) + 1;
            ring.set_capacity(cap);
            oracle_cap = cap;
            while (oracle.size() > oracle_cap)
                oracle.pop_front();
        }
        ASSERT_EQ(ring.size(), oracle.size()) << "op " << op;
        ASSERT_EQ(ring.total_pushed(), next_seq);
        for (std::size_t i = 0; i < oracle.size(); ++i) {
            ASSERT_EQ(ring.at(i).seq, oracle[i])
                << "op " << op << " slot " << i;
            ASSERT_EQ(ring.at(i).requested_cores,
                      static_cast<int>(oracle[i]));
        }
    }
}

TEST(HypervisorAuditTest, RecordsAdmissionsAndRejections)
{
    Machine m(SocConfig::Sim()); // 6x6
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());

    hyp::VnpuSpec ok;
    ok.num_cores = 6;
    ok.memory_bytes = 1ull << 20;
    virt::VirtualNpu& v = hv.create(ok);

    hyp::VnpuSpec bad;
    bad.num_cores = 37; // more cores than the 36-core mesh has
    EXPECT_THROW(hv.create(bad), SimFatal);

    const hyp::AdmissionAuditRing& log = hv.audit_log();
    ASSERT_EQ(log.total_pushed(), 2u);
    const hyp::AdmissionAuditEntry& adm = log.at(0);
    EXPECT_TRUE(adm.admitted);
    EXPECT_EQ(adm.vm, v.vm());
    EXPECT_EQ(adm.requested_cores, 6);
    EXPECT_GT(adm.setup_cycles, 0u);
    EXPECT_TRUE(adm.error.empty());
    const hyp::AdmissionAuditEntry& rej = log.at(1);
    EXPECT_FALSE(rej.admitted);
    EXPECT_EQ(rej.requested_cores, 37);
    EXPECT_FALSE(rej.error.empty());
}

TEST(HypervisorAuditTest, AdmissionSpansReachTheTrace)
{
    std::ostringstream os;
    obs::ChromeTraceWriter w(os);
    {
        SinkGuard guard(&w);
        Machine m(SocConfig::Sim());
        hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
        hyp::VnpuSpec spec;
        spec.num_cores = 4;
        hv.create(spec);
        hv.destroy(hv.audit_log().at(0).vm);
    }
    w.close();
    const std::string t = os.str();
    EXPECT_NE(t.find("\"name\":\"admission\""), std::string::npos);
    EXPECT_NE(t.find("\"cat\":\"hyp\""), std::string::npos);
    EXPECT_NE(t.find("\"name\":\"destroy\""), std::string::npos);
    EXPECT_NE(t.find("\"strategy\""), std::string::npos);
}

TEST(CollectStatsTest, HypervisorSweepMatchesLegacyCounters)
{
    Machine m(SocConfig::Sim());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    for (int i = 0; i < 3; ++i) {
        hyp::VnpuSpec spec;
        spec.num_cores = 6;
        spec.strategy = hyp::MappingStrategy::kSimilarTopology;
        hv.create(spec);
    }
    StatSet st;
    hv.collect_stats(st);
    const hyp::HypervisorStats& legacy = hv.stats();
    EXPECT_EQ(st.get("hyp.vnpus_created", -1), 3.0);
    EXPECT_EQ(st.get("hyp.setup_cycles", -1),
              static_cast<double>(legacy.setup_cycles.value()));
    EXPECT_EQ(st.get("hyp.funnel.candidates", -1),
              static_cast<double>(legacy.mapper_funnel_candidates.value()));
    EXPECT_EQ(st.get("hyp.funnel.lb_pruned", -1),
              static_cast<double>(legacy.mapper_lb_pruned.value()));
    EXPECT_EQ(st.get("hyp.funnel.memo_hits", -1),
              static_cast<double>(legacy.mapper_memo_hits.value()));
    EXPECT_EQ(st.get("hyp.funnel.full_ged", -1),
              static_cast<double>(legacy.mapper_full_ged.value()));
    EXPECT_EQ(st.get("hyp.audit.total", -1), 3.0);
    EXPECT_EQ(st.get("hyp.free_cores", -1),
              static_cast<double>(hv.num_free_cores()));
}

TEST(CollectStatsTest, MachineSweepCoversEveryLayer)
{
    Machine m(net_cfg());
    // Drive a little NoC traffic so the layers have something to say.
    m.network().send(0, 0, 5, 4096, kNoVm, 1);
    m.event_queue().run();
    StatSet st;
    m.collect_stats(st);
    EXPECT_TRUE(st.has("sim.events_executed"));
    EXPECT_TRUE(st.has("sim.busy_ticks"));
    EXPECT_TRUE(st.has("noc.messages"));
    EXPECT_TRUE(st.has("noc.msg_latency.p99"));
    EXPECT_TRUE(st.has("noc.links_used"));
    EXPECT_TRUE(st.has("mem.dram.bytes"));
    EXPECT_TRUE(st.has("mem.dma.transfers"));
    EXPECT_TRUE(st.has("core.contexts"));
    EXPECT_EQ(st.get("noc.messages", -1), 1.0);
    EXPECT_GT(st.get("sim.events_executed", 0), 0.0);
}

TEST(NetworkTelemetryTest, LinkCountersTrackFlitsAndBusy)
{
    SocConfig cfg = net_cfg();
    EventQueue eq;
    MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    Network net(cfg, topo, eq);
    // 4096 B = 2 packets over the 0->1 link (relay mode: whole-message
    // serialization per hop, busy = router(2) + 4096/16 = 258).
    net.send(0, 0, 1, 4096, kNoVm, 0);
    const auto& links = net.link_counters();
    const auto& l01 = links[0 * 4 + 0]; // node 0, east
    EXPECT_EQ(l01.flits, 2u);
    EXPECT_EQ(l01.busy_ticks, 2u + 256u);
    EXPECT_EQ(net.stats().msg_latency.count(), 1u);

    std::ostringstream os;
    net.write_link_heatmap(os, 1000);
    EXPECT_NE(os.str().find("\"from\": 0, \"to\": 1"), std::string::npos);
    EXPECT_NE(os.str().find("\"utilization\""), std::string::npos);

    net.reset();
    EXPECT_EQ(net.link_counters()[0].flits, 0u);
    EXPECT_EQ(net.stats().msg_latency.count(), 0u);
}

} // namespace
} // namespace vnpu
