/**
 * @file
 * Tests for the sim-time metrics sampler: delta-vs-gauge semantics,
 * windowed latency views, machine auto-attach, export formats, link
 * conservation, and the non-perturbation contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "hyp/hypervisor.h"
#include "noc/network.h"
#include "obs/metrics.h"
#include "runtime/machine.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace vnpu {
namespace {

using runtime::Machine;

/** Restore the no-sampler state even when a test fails mid-way. */
struct MetricsGuard {
    explicit MetricsGuard(obs::MetricsSampler* m) { obs::set_metrics(m); }
    ~MetricsGuard() { obs::set_metrics(nullptr); }
};

SocConfig
net_cfg()
{
    SocConfig c = SocConfig::Fpga();
    c.mesh_x = 4;
    c.mesh_y = 4;
    return c;
}

/** Sum an integer field over every `"field": N` occurrence in `json`. */
std::uint64_t
sum_json_field(const std::string& json, const std::string& field)
{
    const std::string key = "\"" + field + "\": ";
    std::uint64_t sum = 0;
    for (std::size_t pos = json.find(key); pos != std::string::npos;
         pos = json.find(key, pos + key.size())) {
        sum += std::strtoull(json.c_str() + pos + key.size(), nullptr, 10);
    }
    return sum;
}

/** Everything observable about one fixed machine-level scenario. */
struct MachineResult {
    Tick end = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t events = 0;
    std::vector<noc::LinkCounters> links;
};

/** Drive fixed traffic through a Machine, optionally sampled. */
MachineResult
run_machine_scenario(obs::MetricsSampler* sampler)
{
    MetricsGuard guard(sampler);
    Machine m(net_cfg());
    MachineResult r;
    m.network().send(0, 0, 5, 4096, kNoVm, 7);
    m.network().send(0, 3, 15, 2048, kNoVm, 8);
    m.event_queue().run();
    m.network().send(m.event_queue().now() + 10, 0, 5, 4096, kNoVm, 7);
    m.event_queue().run();
    r.end = m.event_queue().now();
    r.messages = m.network().stats().messages.value();
    r.bytes = m.network().stats().bytes.value();
    r.events = m.event_queue().executed();
    r.links = m.network().link_counters();
    return r;
}

TEST(MetricsTest, DisabledByDefault)
{
    EXPECT_EQ(obs::metrics(), nullptr);
}

TEST(MetricsTest, CounterDeltasAndGaugeRawValues)
{
    obs::MetricsSampler s(100);
    double cum = 0.0, gauge = 0.0;
    int owner = 0;
    s.attach_machine(&owner,
                     [&](StatSet& out) {
                         out.add("t.ctr", cum);
                         out.set("t.g", gauge);
                     },
                     {}, {});
    cum = 5.0;
    gauge = 7.0;
    s.sample(100);
    cum = 8.0;
    gauge = 9.0;
    s.sample(200);
    s.detach_machine(&owner, 200);

    std::ostringstream csv;
    s.write_csv(csv);
    // Counters report per-window deltas (5 then 3), gauges raw values.
    EXPECT_EQ(csv.str(), "run,tick,t.ctr,t.g\n"
                         "0,100,5,7\n"
                         "0,200,3,9\n");

    std::ostringstream prom;
    s.write_prom(prom);
    // Prometheus exposition carries the cumulative value and the kind.
    EXPECT_NE(prom.str().find("# TYPE vnpu_t_ctr counter\nvnpu_t_ctr 8"),
              std::string::npos);
    EXPECT_NE(prom.str().find("# TYPE vnpu_t_g gauge\nvnpu_t_g 9"),
              std::string::npos);
}

TEST(MetricsTest, EachAttachStartsANewRunWithFreshDeltas)
{
    obs::MetricsSampler s(50);
    for (int run = 0; run < 2; ++run) {
        double cum = 0.0;
        int owner = 0;
        s.attach_machine(&owner,
                         [&](StatSet& out) { out.add("c", cum); },
                         {}, {});
        cum = 4.0; // cumulative restarts per machine; delta must be 4,
                   // not 4 minus the previous run's final value
        s.sample(50);
        s.detach_machine(&owner, 50);
    }
    EXPECT_EQ(s.num_runs(), 2);
    std::ostringstream csv;
    s.write_csv(csv);
    EXPECT_EQ(csv.str(), "run,tick,c\n0,50,4\n1,50,4\n");
}

TEST(MetricsTest, WindowedLatencyDeltasSumToCumulative)
{
    obs::MetricsSampler s(10);
    Histogram lat;
    int owner = 0;
    s.attach_machine(&owner, [](StatSet&) {}, {},
                     [&] { return lat; });
    std::uint64_t total = 0;
    double win_count_sum = 0.0;
    for (int w = 1; w <= 4; ++w) {
        for (int i = 0; i < w * 3; ++i) {
            lat.record(static_cast<double>(16 * w + i));
            ++total;
        }
        s.sample(static_cast<Tick>(10 * w));
    }
    s.detach_machine(&owner, 40);

    // Recover the per-window counts from the CSV win.count column.
    std::istringstream csv([&] {
        std::ostringstream os;
        s.write_csv(os);
        return os.str();
    }());
    std::string line;
    std::getline(csv, line);
    ASSERT_NE(line.find("noc.msg_latency.win.count"), std::string::npos);
    while (std::getline(csv, line)) {
        const std::size_t cut = line.rfind(',');
        // win.p99 is the last column; win.count is 4 columns before.
        std::vector<std::string> cells;
        std::size_t start = 0;
        for (std::size_t c = line.find(','); c != std::string::npos;
             c = line.find(',', start)) {
            cells.push_back(line.substr(start, c - start));
            start = c + 1;
        }
        cells.push_back(line.substr(start));
        ASSERT_GE(cells.size(), 5u) << line << cut;
        win_count_sum += std::strtod(
            cells[cells.size() - 5].c_str(), nullptr);
    }
    EXPECT_EQ(win_count_sum, static_cast<double>(total));
    EXPECT_EQ(lat.count(), total);
}

TEST(MetricsTest, SamplerDoesNotPerturbSimulation)
{
    MachineResult off = run_machine_scenario(nullptr);
    obs::MetricsSampler s(16);
    MachineResult on = run_machine_scenario(&s);
    EXPECT_GT(s.num_samples(), 0u);

    EXPECT_EQ(off.end, on.end);
    EXPECT_EQ(off.messages, on.messages);
    EXPECT_EQ(off.bytes, on.bytes);
    EXPECT_EQ(off.events, on.events);
    ASSERT_EQ(off.links.size(), on.links.size());
    for (std::size_t i = 0; i < off.links.size(); ++i) {
        EXPECT_EQ(off.links[i].flits, on.links[i].flits) << i;
        EXPECT_EQ(off.links[i].busy_ticks, on.links[i].busy_ticks) << i;
    }
}

TEST(MetricsTest, MachineAutoAttachesAndLinkDeltasConserveFlits)
{
    obs::MetricsSampler s(16);
    std::uint64_t total_flits = 0;
    {
        MetricsGuard guard(&s);
        Machine m(net_cfg());
        m.network().send(0, 0, 5, 4096, kNoVm, 7);
        m.network().send(0, 3, 15, 2048, kNoVm, 8);
        m.event_queue().run();
        for (const noc::LinkCounters& c : m.network().link_counters())
            total_flits += c.flits;
        // Machine destruction detaches: final sample + run heatmap.
    }
    ASSERT_GT(s.num_samples(), 0u);
    ASSERT_GT(total_flits, 0u);

    // Per-window link deltas across all samples must sum to the
    // cumulative flit count, as must the detach-time heatmap.
    std::ostringstream tl, hm;
    s.write_json(tl);
    s.write_heatmap_json(hm);
    EXPECT_EQ(sum_json_field(tl.str(), "flits"), total_flits);
    EXPECT_EQ(sum_json_field(hm.str(), "flits"), total_flits);

    // Timeline columns cover the machine's stat surface.
    EXPECT_NE(tl.str().find("\"name\": \"noc.messages\", "
                            "\"kind\": \"counter\""),
              std::string::npos);
    EXPECT_NE(tl.str().find("\"name\": \"sim.now\", \"kind\": \"gauge\""),
              std::string::npos);
}

TEST(MetricsTest, HypervisorCollectorContributesHypColumns)
{
    obs::MetricsSampler s(1000);
    MetricsGuard guard(&s);
    Machine m(SocConfig::Sim());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = 4;
    hv.create(spec);
    s.sample(500);

    std::ostringstream csv;
    s.write_csv(csv);
    EXPECT_NE(csv.str().find("hyp.vnpus_created"), std::string::npos);
    EXPECT_NE(csv.str().find("hyp.free_cores"), std::string::npos);

    std::ostringstream prom;
    s.write_prom(prom);
    EXPECT_NE(prom.str().find("# TYPE vnpu_hyp_vnpus_created counter\n"
                              "vnpu_hyp_vnpus_created 1"),
              std::string::npos);
}

TEST(MetricsTest, DetachSamplesShortRunsAndStaleOwnerIsIgnored)
{
    obs::MetricsSampler s(1'000'000); // interval longer than the run
    int owner = 0;
    double cum = 3.0;
    s.attach_machine(&owner,
                     [&](StatSet& out) { out.add("c", cum); },
                     {}, {});
    int stale = 0;
    s.detach_machine(&stale, 99); // not the owner: must be a no-op
    EXPECT_EQ(s.num_samples(), 0u);
    s.detach_machine(&owner, 99); // takes the final (only) sample
    EXPECT_EQ(s.num_samples(), 1u);

    std::ostringstream csv;
    s.write_csv(csv);
    EXPECT_EQ(csv.str(), "run,tick,c\n0,99,3\n");
}

} // namespace
} // namespace vnpu
