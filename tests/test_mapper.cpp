/**
 * @file
 * Tests for the topology mapping strategies (paper §4.3, Figure 8).
 */

#include <gtest/gtest.h>

#include <set>

#include "hyp/topology_mapper.h"
#include "sim/log.h"

namespace vnpu::hyp {
namespace {

CoreSet
all_cores(const noc::MeshTopology& t)
{
    return CoreSet::first_n(t.num_nodes());
}

MappingRequest
mesh_request(int w, int h, MappingStrategy s)
{
    MappingRequest req;
    req.vtopo = graph::Graph::mesh(w, h);
    req.strategy = s;
    return req;
}

TEST(SnakeTopologyTest, ShapeAndConnectivity)
{
    for (int n : {1, 2, 5, 9, 12, 13, 28}) {
        graph::Graph g = TopologyMapper::snake_topology(n);
        EXPECT_EQ(g.num_nodes(), n);
        EXPECT_TRUE(g.is_connected());
        // Snake order: consecutive stages are adjacent.
        for (int i = 0; i + 1 < n; ++i)
            EXPECT_TRUE(g.has_edge(i, i + 1)) << "n=" << n << " i=" << i;
    }
    // A perfect square is a full mesh.
    EXPECT_EQ(TopologyMapper::snake_topology(9).num_edges(),
              graph::Graph::mesh(3, 3).num_edges());
}

TEST(MapperTest, ExactMappingOnEmptyMesh)
{
    noc::MeshTopology topo(5, 5);
    TopologyMapper mapper(topo);
    MappingResult r =
        mapper.map(mesh_request(3, 3, MappingStrategy::kExact),
                   all_cores(topo));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ted, 0.0);
    EXPECT_EQ(r.assignment.size(), 9u);
    // The realized region is a genuine 3x3 mesh.
    std::set<CoreId> used(r.assignment.begin(), r.assignment.end());
    EXPECT_EQ(used.size(), 9u);
    graph::Graph sub = topo.to_graph().induced(
        std::vector<int>(used.begin(), used.end()));
    EXPECT_EQ(sub.wl_hash(), graph::Graph::mesh(3, 3).wl_hash());
}

TEST(MapperTest, TopologyLockInScenario)
{
    // Paper §4.3: two 3x3 requests on a 5x5 mesh. Exact mapping fits
    // the first but then fails the second (lock-in) even though 16
    // cores remain.
    noc::MeshTopology topo(5, 5);
    TopologyMapper mapper(topo);
    CoreSet free = all_cores(topo);

    MappingResult first =
        mapper.map(mesh_request(3, 3, MappingStrategy::kExact), free);
    ASSERT_TRUE(first.ok);
    for (CoreId c : first.assignment)
        free.reset(c);
    EXPECT_EQ(free.count(), 16);

    MappingResult second =
        mapper.map(mesh_request(3, 3, MappingStrategy::kExact), free);
    EXPECT_FALSE(second.ok);

    // Similar-topology mapping rescues the request.
    MappingResult rescued = mapper.map(
        mesh_request(3, 3, MappingStrategy::kSimilarTopology), free);
    ASSERT_TRUE(rescued.ok);
    EXPECT_GT(rescued.ted, 0.0);
    // All assigned cores are free and distinct.
    std::set<CoreId> used;
    for (CoreId c : rescued.assignment) {
        EXPECT_TRUE(free.test(c));
        EXPECT_TRUE(used.insert(c).second);
    }
}

TEST(MapperTest, SimilarReturnsExactWhenAvailable)
{
    noc::MeshTopology topo(6, 6);
    TopologyMapper mapper(topo);
    MappingResult r = mapper.map(
        mesh_request(2, 3, MappingStrategy::kSimilarTopology),
        all_cores(topo));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ted, 0.0);
}

TEST(MapperTest, StraightforwardTakesLowestIds)
{
    noc::MeshTopology topo(4, 4);
    TopologyMapper mapper(topo);
    CoreSet free = all_cores(topo).andnot(core_bit(1) | core_bit(2));
    MappingRequest req = mesh_request(2, 2, MappingStrategy::kStraightforward);
    MappingResult r = mapper.map(req, free);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.assignment, (std::vector<CoreId>{0, 3, 4, 5}));
    EXPECT_GT(r.ted, 0.0); // {0,3,4,5} is not a 2x2 mesh
}

TEST(MapperTest, SimilarBeatsStraightforwardOnFragmentedMesh)
{
    // Occupy the top row so low-id allocation is scattered while a
    // compact region remains available lower down.
    noc::MeshTopology topo(5, 5);
    TopologyMapper mapper(topo);
    CoreSet free = all_cores(topo);
    for (int x = 0; x < 5; ++x)
        free.reset(topo.id_of(x, 0));
    free.reset(topo.id_of(0, 1)); // and one more corner-ish core

    MappingRequest sim = mesh_request(3, 3, MappingStrategy::kSimilarTopology);
    MappingRequest zig = mesh_request(3, 3, MappingStrategy::kStraightforward);
    MappingResult rs = mapper.map(sim, free);
    MappingResult rz = mapper.map(zig, free);
    ASSERT_TRUE(rs.ok);
    ASSERT_TRUE(rz.ok);
    EXPECT_LE(rs.ted, rz.ted);
    EXPECT_EQ(rs.ted, 0.0); // a 3x3 region still exists below
}

TEST(MapperTest, ConnectivityRequirementHonored)
{
    // Free cores form two disconnected 2-core islands; a connected
    // 4-core request must fail, fragmented mapping must succeed.
    noc::MeshTopology topo(4, 4);
    TopologyMapper mapper(topo);
    CoreSet free = core_bit(0) | core_bit(1) | core_bit(14) | core_bit(15);

    MappingRequest req = mesh_request(2, 2, MappingStrategy::kSimilarTopology);
    MappingResult r = mapper.map(req, free);
    EXPECT_FALSE(r.ok);

    req.strategy = MappingStrategy::kFragmented;
    MappingResult fr = mapper.map(req, free);
    ASSERT_TRUE(fr.ok);
    std::set<CoreId> used(fr.assignment.begin(), fr.assignment.end());
    EXPECT_EQ(used.size(), 4u);
    for (CoreId c : used)
        EXPECT_TRUE(free.test(c));
}

TEST(MapperTest, NotEnoughCoresFails)
{
    noc::MeshTopology topo(3, 3);
    TopologyMapper mapper(topo);
    MappingResult r = mapper.map(
        mesh_request(4, 3, MappingStrategy::kSimilarTopology),
        all_cores(topo));
    EXPECT_FALSE(r.ok);
}

TEST(MapperTest, HeterogeneousNodeCostSteersPlacement)
{
    // Request one memory-near node (label 0). With a node-cost that
    // penalizes label distance, the mapper should pick west-column
    // cores (label = x coordinate) when they are free.
    noc::MeshTopology topo(4, 4);
    TopologyMapper mapper(topo);

    MappingRequest req;
    req.vtopo = graph::Graph::chain(4);
    for (int i = 0; i < 4; ++i)
        req.vtopo.set_label(i, 0); // all want to be near memory
    req.strategy = MappingStrategy::kSimilarTopology;
    req.ged.node_cost = [](int a, int b) {
        return static_cast<double>(std::abs(a - b));
    };

    // Label the physical mesh by memory distance. (The mapper sees
    // labels through the induced subgraph, so set them on the graph it
    // uses — easiest is to verify via the request's own mesh.)
    // West column free plus a east column alternative:
    CoreSet west, east;
    for (int y = 0; y < 4; ++y) {
        west.set(topo.id_of(0, y));
        east.set(topo.id_of(3, y));
    }
    // Mapper works on unlabeled mesh graphs by default; emulate the
    // heterogeneity by restricting free cores and checking both
    // columns map with equal structural TED.
    MappingResult rw = mapper.map(req, west);
    MappingResult re = mapper.map(req, east);
    ASSERT_TRUE(rw.ok);
    ASSERT_TRUE(re.ok);
    EXPECT_EQ(rw.ted, re.ted); // structure identical columns
}

TEST(MapperTest, DeterministicAcrossRuns)
{
    noc::MeshTopology topo(6, 6);
    TopologyMapper mapper(topo);
    CoreSet free = all_cores(topo).andnot(core_bit(0) | core_bit(35));
    MappingRequest req =
        mesh_request(3, 4, MappingStrategy::kSimilarTopology);
    MappingResult a = mapper.map(req, free);
    MappingResult b = mapper.map(req, free);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.ted, b.ted);
}

TEST(MapperTest, ExactMappingOn256CoreMesh)
{
    // DCRA-scale chip: an 8x5 virtual mesh has an isomorphic region
    // and must map with TED 0 even though the candidate space is huge.
    noc::MeshTopology topo(16, 16);
    TopologyMapper mapper(topo);
    MappingResult r = mapper.map(
        mesh_request(8, 5, MappingStrategy::kExact), all_cores(topo));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.ted, 0.0);
    std::set<CoreId> used(r.assignment.begin(), r.assignment.end());
    EXPECT_EQ(used.size(), 40u);
}

TEST(MapperTest, SimilarMappingOn1024CoreMeshWithHoles)
{
    // 32x32 mesh with a scattered-occupancy pattern across the whole
    // id range; the similar strategy must still return a connected,
    // disjoint, free-only assignment.
    noc::MeshTopology topo(32, 32);
    TopologyMapper mapper(topo);
    CoreSet free = all_cores(topo);
    for (int id = 0; id < topo.num_nodes(); id += 37)
        free.reset(id); // holes in every 64-bit word
    MappingRequest req;
    req.vtopo = TopologyMapper::snake_topology(24);
    req.strategy = MappingStrategy::kSimilarTopology;
    req.max_candidates = 64;
    MappingResult r = mapper.map(req, free);
    ASSERT_TRUE(r.ok);
    std::set<CoreId> used;
    for (CoreId c : r.assignment) {
        EXPECT_TRUE(free.test(c));
        EXPECT_TRUE(used.insert(c).second);
    }
    EXPECT_EQ(used.size(), 24u);
    EXPECT_TRUE(topo.to_graph().is_connected_subset(
        CoreSet::from_range(r.assignment)));
}

TEST(MapperTest, FragmentedMappingAcrossWordBoundaryIslands)
{
    // Two free islands on a 9x9 (81-core) mesh, one fully above id 64:
    // the fragmented strategy must pick cores from both words.
    noc::MeshTopology topo(9, 9);
    TopologyMapper mapper(topo);
    CoreSet free;
    for (int id : {0, 1, 2})
        free.set(id);
    for (int id : {75, 76, 77}) // row 8, ids >= 64
        free.set(id);
    MappingRequest req;
    req.vtopo = graph::Graph::chain(6);
    req.strategy = MappingStrategy::kSimilarTopology;
    EXPECT_FALSE(mapper.map(req, free).ok); // disconnected

    req.strategy = MappingStrategy::kFragmented;
    MappingResult r = mapper.map(req, free);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(CoreSet::from_range(r.assignment), free);
}

} // namespace
} // namespace vnpu::hyp
