/**
 * @file
 * Tests for connected-induced-subgraph enumeration, checked against a
 * brute-force reference over all C(n, k) subsets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/enumerate.h"
#include "graph/graph.h"
#include "sim/rng.h"

namespace vnpu::graph {
namespace {

/** Brute force: all k-subsets of `allowed` that induce a connected set. */
std::set<NodeMask>
brute_force(const Graph& g, int k, const NodeMask& allowed)
{
    std::vector<int> nodes = Graph::mask_to_nodes(allowed);
    std::set<NodeMask> out;
    int n = static_cast<int>(nodes.size());
    // Iterate all k-combinations via bit tricks over positions.
    std::vector<int> idx(k);
    for (int i = 0; i < k; ++i)
        idx[i] = i;
    if (k > n)
        return out;
    while (true) {
        NodeMask m;
        for (int i : idx)
            m.set(nodes[i]);
        if (g.is_connected_subset(m))
            out.insert(m);
        // next combination
        int i = k - 1;
        while (i >= 0 && idx[i] == n - k + i)
            --i;
        if (i < 0)
            break;
        ++idx[i];
        for (int j = i + 1; j < k; ++j)
            idx[j] = idx[j - 1] + 1;
    }
    return out;
}

NodeMask
full_mask(int n)
{
    return NodeMask::first_n(n);
}

TEST(EnumerateTest, MatchesBruteForceOnMesh3x3)
{
    Graph g = Graph::mesh(3, 3);
    for (int k = 1; k <= 6; ++k) {
        std::set<NodeMask> expected = brute_force(g, k, full_mask(9));
        std::set<NodeMask> got;
        enumerate_connected_subsets(
            g, k, full_mask(9), [&](const NodeMask& m) {
                EXPECT_TRUE(got.insert(m).second) << "duplicate subset";
                return true;
            });
        EXPECT_EQ(got, expected) << "k=" << k;
    }
}

TEST(EnumerateTest, MatchesBruteForceWithRestrictedAllowedSet)
{
    Graph g = Graph::mesh(4, 3);
    // Exclude two cores, as if already allocated to another vNPU.
    NodeMask allowed =
        full_mask(12).andnot(NodeMask::of(0)).andnot(NodeMask::of(7));
    for (int k = 2; k <= 5; ++k) {
        std::set<NodeMask> expected = brute_force(g, k, allowed);
        std::set<NodeMask> got;
        enumerate_connected_subsets(g, k, allowed,
                                    [&](const NodeMask& m) {
                                        got.insert(m);
                                        return true;
                                    });
        EXPECT_EQ(got, expected) << "k=" << k;
    }
}

TEST(EnumerateTest, MatchesBruteForceOnRandomGraphs)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        int n = 6 + static_cast<int>(rng.next_below(5));
        Graph g(n);
        for (int a = 0; a < n; ++a)
            for (int b = a + 1; b < n; ++b)
                if (rng.next_double() < 0.3)
                    g.add_edge(a, b);
        int k = 2 + static_cast<int>(rng.next_below(4));
        EXPECT_EQ(count_connected_subsets(g, k, full_mask(n)),
                  brute_force(g, k, full_mask(n)).size())
            << "trial " << trial << " n=" << n << " k=" << k;
    }
}

TEST(EnumerateTest, MaxResultsStopsEarly)
{
    Graph g = Graph::mesh(4, 4);
    std::uint64_t seen = 0;
    std::uint64_t produced = enumerate_connected_subsets(
        g, 4, full_mask(16),
        [&](const NodeMask&) {
            ++seen;
            return true;
        },
        10);
    EXPECT_EQ(produced, 10u);
    EXPECT_EQ(seen, 10u);
}

TEST(EnumerateTest, CallbackFalseStops)
{
    Graph g = Graph::mesh(4, 4);
    std::uint64_t seen = 0;
    enumerate_connected_subsets(g, 3, full_mask(16),
                                [&](const NodeMask&) {
                                    ++seen;
                                    return seen < 5;
                                });
    EXPECT_EQ(seen, 5u);
}

TEST(EnumerateTest, DegenerateCases)
{
    Graph g = Graph::mesh(2, 2);
    EXPECT_EQ(count_connected_subsets(g, 0, full_mask(4)), 0u);
    EXPECT_EQ(count_connected_subsets(g, 5, full_mask(4)), 0u);
    // Singletons: every allowed node.
    EXPECT_EQ(count_connected_subsets(g, 1, full_mask(4)), 4u);
    // The full mesh itself.
    EXPECT_EQ(count_connected_subsets(g, 4, full_mask(4)), 1u);
}

TEST(SampleTest, SamplesAreConnectedAndCorrectSize)
{
    Graph g = Graph::mesh(5, 5);
    Rng rng(99);
    auto samples = sample_connected_subsets(g, 9, full_mask(25), 64, rng);
    EXPECT_FALSE(samples.empty());
    for (const NodeMask& m : samples) {
        EXPECT_EQ(m.count(), 9);
        EXPECT_TRUE(g.is_connected_subset(m));
    }
    // Deduplicated and sorted.
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_LT(samples[i - 1], samples[i]);
}

/**
 * Reference sampler: the pre-reservoir implementation that materialized
 * a choices vector per growth step. The CoreSet::nth pick must draw the
 * same node for the same rng stream (the i-th vector entry was the i-th
 * set bit), so outputs are required to be identical, not just similar.
 */
std::vector<NodeMask>
reference_sample(const Graph& g, int k, const NodeMask& allowed,
                 int samples, Rng& rng)
{
    std::vector<NodeMask> out;
    if (k <= 0 || allowed.count() < k)
        return out;
    std::vector<int> seeds = Graph::mask_to_nodes(allowed);
    std::vector<int> choices;
    for (int s = 0; s < samples; ++s) {
        int seed = seeds[s % seeds.size()];
        NodeMask sub = NodeMask::of(seed);
        NodeMask frontier = g.neighbors(seed);
        for (int size = 1; size < k; ++size) {
            frontier = (frontier & allowed).andnot(sub);
            if (frontier.none()) {
                sub = NodeMask{};
                break;
            }
            choices.clear();
            for (int v : frontier)
                choices.push_back(v);
            int pick = choices[rng.next_below(choices.size())];
            sub.set(pick);
            frontier |= g.neighbors(pick);
        }
        if (sub.count() == k)
            out.push_back(sub);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

TEST(SampleTest, ReservoirPickMatchesChoicesVectorReference)
{
    // Same seed, same graph => bit-identical sample sets, including
    // across the 64-node word boundary (9x9 and 16x16 meshes).
    struct Case {
        int w, h, k, samples;
    };
    for (Case c : {Case{5, 5, 9, 64}, Case{9, 9, 7, 48},
                   Case{16, 16, 12, 64}}) {
        Graph g = Graph::mesh(c.w, c.h);
        NodeMask allowed = full_mask(c.w * c.h);
        // Punch holes so frontiers shrink mid-growth.
        for (int id = 3; id < c.w * c.h; id += 11)
            allowed.reset(id);
        Rng r1(0x5eed), r2(0x5eed);
        auto got = sample_connected_subsets(g, c.k, allowed, c.samples, r1);
        auto want = reference_sample(g, c.k, allowed, c.samples, r2);
        EXPECT_EQ(got, want) << c.w << "x" << c.h;
        EXPECT_FALSE(got.empty());
    }
}

TEST(SampleTest, GrowthPickIsUniformOverFrontier)
{
    // Distribution regression: on a star, the first growth step picks
    // uniformly among the leaves. Chi-square-ish bound on a seeded run.
    const int leaves = 7;
    Graph star(1 + leaves);
    for (int leaf = 1; leaf <= leaves; ++leaf)
        star.add_edge(0, leaf);
    NodeMask allowed = full_mask(1 + leaves);
    Rng rng(1234);
    const int trials = 7000;
    std::vector<int> picked(1 + leaves, 0);
    for (int t = 0; t < trials; ++t) {
        // k=2 from seed 0: one growth step over the full leaf frontier.
        auto s = sample_connected_subsets(star, 2, allowed, 1, rng);
        ASSERT_EQ(s.size(), 1u);
        NodeMask m = s[0];
        m.reset(0);
        picked[m.lowest()]++;
    }
    for (int leaf = 1; leaf <= leaves; ++leaf) {
        double expectation = static_cast<double>(trials) / leaves;
        EXPECT_NEAR(picked[leaf], expectation, 0.12 * expectation)
            << "leaf " << leaf;
    }
}

TEST(SampleTest, DeterministicForSameSeed)
{
    Graph g = Graph::mesh(5, 5);
    Rng r1(5), r2(5);
    auto a = sample_connected_subsets(g, 6, full_mask(25), 32, r1);
    auto b = sample_connected_subsets(g, 6, full_mask(25), 32, r2);
    EXPECT_EQ(a, b);
}

TEST(BinomialTest, SmallValuesAndSaturation)
{
    EXPECT_EQ(binomial(5, 2), 10u);
    EXPECT_EQ(binomial(25, 9), 2042975u);
    EXPECT_EQ(binomial(10, 0), 1u);
    EXPECT_EQ(binomial(10, 11), 0u);
    EXPECT_EQ(binomial(300, 150), UINT64_MAX); // saturates
}

} // namespace
} // namespace vnpu::graph
