/**
 * @file
 * Tests for the hypervisor (vNPU lifecycle) and the MIG baseline.
 */

#include <gtest/gtest.h>

#include <set>

#include "hyp/hypervisor.h"
#include "hyp/mig.h"
#include "runtime/machine.h"
#include "sim/log.h"

namespace vnpu::hyp {
namespace {

using runtime::Machine;

SocConfig
sim_cfg()
{
    return SocConfig::Sim(); // 6x6
}

TEST(HypervisorTest, CreatesVnpuWithAllResources)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());

    VnpuSpec spec;
    spec.num_cores = 6;
    spec.memory_bytes = 64ull << 20;
    virt::VirtualNpu& v = hv.create(spec);

    EXPECT_EQ(v.num_cores(), 6);
    EXPECT_TRUE(v.has_memory());
    EXPECT_GE(v.memory_bytes(), 64ull << 20);
    EXPECT_TRUE(v.isolated());
    EXPECT_GT(v.interfaces(), 0);
    EXPECT_GT(v.bandwidth_cap(), 0.0);
    EXPECT_GT(hv.last_setup_cost(), 0u);
    EXPECT_EQ(hv.num_free_cores(), 30);
    EXPECT_TRUE(hv.inst_vrouter().has_vm(v.vm()));
    // Routing table agrees with the core list.
    for (int i = 0; i < v.num_cores(); ++i)
        EXPECT_EQ(v.routing_table().lookup(i), v.cores()[i]);
}

TEST(HypervisorTest, RectangularRegionsGetCompactTables)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.topo = graph::Graph::mesh(3, 2);
    virt::VirtualNpu& v = hv.create(spec);
    // A 3x2 request on an empty mesh maps exactly -> compact form.
    EXPECT_EQ(v.mapping_ted(), 0.0);
    EXPECT_EQ(v.routing_table().type(), virt::RtType::kMesh2D);
    EXPECT_EQ(v.routing_table().num_entries(), 1);
}

TEST(HypervisorTest, DestroyReleasesEverything)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 9;
    spec.memory_bytes = 32ull << 20;
    virt::VirtualNpu& v = hv.create(spec);
    VmId vm = v.vm();
    EXPECT_EQ(hv.num_free_cores(), 27);
    hv.destroy(vm);
    EXPECT_EQ(hv.num_free_cores(), 36);
    EXPECT_EQ(hv.find(vm), nullptr);
    EXPECT_FALSE(hv.inst_vrouter().has_vm(vm));
    EXPECT_THROW(hv.destroy(vm), SimFatal);
}

TEST(HypervisorTest, MultiTenantAllocationsAreDisjoint)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 12;
    spec.memory_bytes = 16ull << 20;
    virt::VirtualNpu& a = hv.create(spec);
    virt::VirtualNpu& b = hv.create(spec);
    EXPECT_EQ(a.mask() & b.mask(), 0u);
    EXPECT_NE(a.vm(), b.vm());
    EXPECT_EQ(hv.num_free_cores(), 12);
    EXPECT_NEAR(hv.core_utilization(), 24.0 / 36.0, 1e-9);
    // Disjoint physical memory too.
    std::set<Addr> pas;
    for (std::size_t i = 0; i < a.range_table().size(); ++i)
        pas.insert(a.range_table().entry(i).pa);
    for (std::size_t i = 0; i < b.range_table().size(); ++i)
        EXPECT_EQ(pas.count(b.range_table().entry(i).pa), 0u);
}

TEST(HypervisorTest, FailsWhenOutOfCores)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 30;
    hv.create(spec);
    VnpuSpec spec2;
    spec2.num_cores = 12;
    EXPECT_THROW(hv.create(spec2), SimFatal);
    EXPECT_EQ(hv.stats().allocation_failures.value(), 1u);
}

TEST(HypervisorTest, BestEffortUsesLeftoverCores)
{
    // The lock-in scenario of §4.3: after one 3x3 exact allocation on
    // 5x5, a second 3x3 succeeds with a similar topology.
    SocConfig cfg = sim_cfg();
    cfg.mesh_x = 5;
    cfg.mesh_y = 5;
    Machine m(cfg);
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.topo = graph::Graph::mesh(3, 3);
    spec.strategy = MappingStrategy::kExact;
    hv.create(spec);
    spec.strategy = MappingStrategy::kSimilarTopology;
    virt::VirtualNpu& second = hv.create(spec);
    EXPECT_GT(second.mapping_ted(), 0.0);
    EXPECT_EQ(hv.num_free_cores(), 7);
}

TEST(HypervisorTest, ConfinedRoutesStayInRegion)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 7; // irregular shape likely
    virt::VirtualNpu& v = hv.create(spec);
    ASSERT_TRUE(v.isolated());
    // Every pair routes inside the region.
    for (CoreId a : v.cores()) {
        for (CoreId b : v.cores()) {
            if (a == b)
                continue;
            int cur = a;
            int guard = 0;
            while (cur != b) {
                cur = v.confined_routes()->next_hop(cur, b);
                ASSERT_NE(cur, kInvalidCore);
                EXPECT_TRUE(v.mask() & core_bit(cur));
                ASSERT_LT(++guard, 64);
            }
        }
    }
}

TEST(HypervisorTest, MemoryRoundTripThroughBuddy)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 100ull << 20; // not a power of two
    virt::VirtualNpu& v = hv.create(spec);
    // Mapped memory covers the request with contiguous VAs.
    EXPECT_GE(v.memory_bytes(), 100ull << 20);
    const mem::RangeTable& rtt = v.range_table();
    for (std::size_t i = 1; i < rtt.size(); ++i) {
        EXPECT_EQ(rtt.entry(i).va,
                  rtt.entry(i - 1).va + rtt.entry(i - 1).size);
    }
    VmId vm = v.vm();
    hv.destroy(vm);
    // All HBM is reusable afterwards.
    VnpuSpec big;
    big.num_cores = 4;
    big.memory_bytes = 1ull << 30;
    EXPECT_NO_THROW(hv.create(big));
}

// ---- MIG baseline ------------------------------------------------------------

TEST(MigTest, DefaultHalvesAndExactFit)
{
    Machine m(sim_cfg());
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    ASSERT_EQ(mig.partitions().size(), 2u);
    EXPECT_EQ(mig.partitions()[0].num_cores(), 18);
    EXPECT_EQ(mig.partitions()[1].num_cores(), 18);

    virt::VirtualNpu& v = mig.create(12, 1 << 20);
    EXPECT_EQ(v.num_cores(), 12);
    EXPECT_EQ(v.tdm_factor(), 1);
    // 12 distinct physical cores out of the 18-core partition.
    EXPECT_EQ(mask_count(v.mask()), 12);
    EXPECT_EQ(mig.wasted_cores(), 6);
}

TEST(MigTest, OversizedRequestUsesTdm)
{
    Machine m(sim_cfg());
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    virt::VirtualNpu& v = mig.create(24, 1 << 20);
    EXPECT_EQ(v.num_cores(), 24);
    EXPECT_EQ(v.tdm_factor(), 2);
    EXPECT_EQ(mask_count(v.mask()), 18); // all partition cores, doubled up
}

TEST(MigTest, PartitionExhaustion)
{
    Machine m(sim_cfg());
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    mig.create(12, 0);
    mig.create(12, 0);
    EXPECT_THROW(mig.create(4, 0), SimFatal);
}

TEST(MigTest, DestroyFreesPartition)
{
    Machine m(sim_cfg());
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    virt::VirtualNpu& v = mig.create(12, 1 << 20);
    VmId vm = v.vm();
    mig.destroy(vm);
    EXPECT_NO_THROW(mig.create(18, 0));
    EXPECT_NO_THROW(mig.create(18, 0));
}

TEST(MigTest, CustomPartitions)
{
    Machine m(SocConfig::Sim48()); // 8x6
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    EXPECT_EQ(mig.partitions()[0].num_cores(), 24);
    std::vector<MigPartition> parts{{0, 0, 2, 6}, {2, 0, 6, 6}};
    mig.set_partitions(parts);
    virt::VirtualNpu& v = mig.create(10, 0);
    EXPECT_EQ(mask_count(v.mask()), 10);
    // Out-of-bounds partitions rejected.
    EXPECT_THROW(mig.set_partitions({{7, 0, 2, 6}}), SimFatal);
}

} // namespace
} // namespace vnpu::hyp
