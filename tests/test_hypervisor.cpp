/**
 * @file
 * Tests for the hypervisor (vNPU lifecycle) and the MIG baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "check/checks.h"
#include "hyp/hypervisor.h"
#include "hyp/mig.h"
#include "runtime/machine.h"
#include "sim/log.h"

namespace vnpu::hyp {
namespace {

using runtime::Machine;

SocConfig
sim_cfg()
{
    return SocConfig::Sim(); // 6x6
}

TEST(HypervisorTest, CreatesVnpuWithAllResources)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());

    VnpuSpec spec;
    spec.num_cores = 6;
    spec.memory_bytes = 64ull << 20;
    virt::VirtualNpu& v = hv.create(spec);

    EXPECT_EQ(v.num_cores(), 6);
    EXPECT_TRUE(v.has_memory());
    EXPECT_GE(v.memory_bytes(), 64ull << 20);
    EXPECT_TRUE(v.isolated());
    EXPECT_GT(v.interfaces(), 0);
    EXPECT_GT(v.bandwidth_cap(), 0.0);
    EXPECT_GT(hv.last_setup_cost(), 0u);
    EXPECT_EQ(hv.num_free_cores(), 30);
    EXPECT_TRUE(hv.inst_vrouter().has_vm(v.vm()));
    // Routing table agrees with the core list.
    for (int i = 0; i < v.num_cores(); ++i)
        EXPECT_EQ(v.routing_table().lookup(i), v.cores()[i]);
}

TEST(HypervisorTest, RectangularRegionsGetCompactTables)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.topo = graph::Graph::mesh(3, 2);
    virt::VirtualNpu& v = hv.create(spec);
    // A 3x2 request on an empty mesh maps exactly -> compact form.
    EXPECT_EQ(v.mapping_ted(), 0.0);
    EXPECT_EQ(v.routing_table().type(), virt::RtType::kMesh2D);
    EXPECT_EQ(v.routing_table().num_entries(), 1);
}

TEST(HypervisorTest, DestroyReleasesEverything)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 9;
    spec.memory_bytes = 32ull << 20;
    virt::VirtualNpu& v = hv.create(spec);
    VmId vm = v.vm();
    EXPECT_EQ(hv.num_free_cores(), 27);
    hv.destroy(vm);
    EXPECT_EQ(hv.num_free_cores(), 36);
    EXPECT_EQ(hv.find(vm), nullptr);
    EXPECT_FALSE(hv.inst_vrouter().has_vm(vm));
    EXPECT_THROW(hv.destroy(vm), SimFatal);
}

TEST(HypervisorTest, MultiTenantAllocationsAreDisjoint)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 12;
    spec.memory_bytes = 16ull << 20;
    virt::VirtualNpu& a = hv.create(spec);
    virt::VirtualNpu& b = hv.create(spec);
    EXPECT_TRUE((a.mask() & b.mask()).none());
    EXPECT_NE(a.vm(), b.vm());
    EXPECT_EQ(hv.num_free_cores(), 12);
    EXPECT_NEAR(hv.core_utilization(), 24.0 / 36.0, 1e-9);
    // Disjoint physical memory too.
    std::set<Addr> pas;
    for (std::size_t i = 0; i < a.range_table().size(); ++i)
        pas.insert(a.range_table().entry(i).pa);
    for (std::size_t i = 0; i < b.range_table().size(); ++i)
        EXPECT_EQ(pas.count(b.range_table().entry(i).pa), 0u);
}

TEST(HypervisorTest, FailsWhenOutOfCores)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 30;
    hv.create(spec);
    VnpuSpec spec2;
    spec2.num_cores = 12;
    EXPECT_THROW(hv.create(spec2), SimFatal);
    EXPECT_EQ(hv.stats().allocation_failures.value(), 1u);
}

TEST(HypervisorTest, BestEffortUsesLeftoverCores)
{
    // The lock-in scenario of §4.3: after one 3x3 exact allocation on
    // 5x5, a second 3x3 succeeds with a similar topology.
    SocConfig cfg = sim_cfg();
    cfg.mesh_x = 5;
    cfg.mesh_y = 5;
    Machine m(cfg);
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.topo = graph::Graph::mesh(3, 3);
    spec.strategy = MappingStrategy::kExact;
    hv.create(spec);
    spec.strategy = MappingStrategy::kSimilarTopology;
    virt::VirtualNpu& second = hv.create(spec);
    EXPECT_GT(second.mapping_ted(), 0.0);
    EXPECT_EQ(hv.num_free_cores(), 7);
}

TEST(HypervisorTest, ConfinedRoutesStayInRegion)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 7; // irregular shape likely
    virt::VirtualNpu& v = hv.create(spec);
    ASSERT_TRUE(v.isolated());
    // Every pair routes inside the region.
    for (CoreId a : v.cores()) {
        for (CoreId b : v.cores()) {
            if (a == b)
                continue;
            int cur = a;
            int guard = 0;
            while (cur != b) {
                cur = v.confined_routes()->next_hop(cur, b);
                ASSERT_NE(cur, kInvalidCore);
                EXPECT_TRUE(v.mask().test(cur));
                ASSERT_LT(++guard, 64);
            }
        }
    }
}

TEST(HypervisorTest, MemoryRoundTripThroughBuddy)
{
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 100ull << 20; // not a power of two
    virt::VirtualNpu& v = hv.create(spec);
    // Mapped memory covers the request with contiguous VAs.
    EXPECT_GE(v.memory_bytes(), 100ull << 20);
    const mem::RangeTable& rtt = v.range_table();
    for (std::size_t i = 1; i < rtt.size(); ++i) {
        EXPECT_EQ(rtt.entry(i).va,
                  rtt.entry(i - 1).va + rtt.entry(i - 1).size);
    }
    VmId vm = v.vm();
    hv.destroy(vm);
    // All HBM is reusable afterwards.
    VnpuSpec big;
    big.num_cores = 4;
    big.memory_bytes = 1ull << 30;
    EXPECT_NO_THROW(hv.create(big));
}

// ---- Beyond 64 cores ---------------------------------------------------------

/** A Sim-flavoured config resized to `w` x `h` tiles. */
SocConfig
mesh_cfg(int w, int h)
{
    SocConfig c = SocConfig::Sim();
    c.mesh_x = w;
    c.mesh_y = h;
    c.hbm_channels = std::min(h, 64);
    return c;
}

TEST(HypervisorTest, EightyNodeMeshHasExactFreeMask)
{
    // Regression: the free-mask used to be built by `1 << num_nodes`,
    // undefined for meshes above 64 nodes. 80 nodes exercises the
    // word-crossing path (UBSan-clean by construction now).
    Machine m(mesh_cfg(16, 5));
    Hypervisor hv(m.config(), m.topology(), m.controller());
    EXPECT_EQ(hv.num_free_cores(), 80);
    EXPECT_EQ(hv.free_cores(), CoreSet::first_n(80));

    VnpuSpec spec;
    spec.num_cores = 24;
    virt::VirtualNpu& v = hv.create(spec);
    EXPECT_EQ(hv.num_free_cores(), 56);
    EXPECT_TRUE(v.mask().andnot(CoreSet::first_n(80)).none());
    hv.destroy(v.vm());
    EXPECT_EQ(hv.free_cores(), CoreSet::first_n(80));
}

TEST(HypervisorTest, AllPoliciesOn256CoreMesh)
{
    // A 16x16 (DCRA-scale) chip: exact, similar-topology and
    // fragmented requests must allocate, confine routes, and tear
    // down cleanly.
    Machine m(mesh_cfg(16, 16));
    Hypervisor hv(m.config(), m.topology(), m.controller());
    EXPECT_EQ(hv.num_free_cores(), 256);

    VnpuSpec exact;
    exact.topo = graph::Graph::mesh(6, 6);
    exact.strategy = MappingStrategy::kExact;
    virt::VirtualNpu& ve = hv.create(exact);
    EXPECT_EQ(ve.mapping_ted(), 0.0);
    ASSERT_TRUE(ve.isolated());

    VnpuSpec similar;
    similar.num_cores = 40;
    similar.strategy = MappingStrategy::kSimilarTopology;
    virt::VirtualNpu& vs = hv.create(similar);
    ASSERT_TRUE(vs.isolated());
    EXPECT_TRUE((ve.mask() & vs.mask()).none());

    VnpuSpec frag;
    frag.num_cores = 30;
    frag.strategy = MappingStrategy::kFragmented;
    virt::VirtualNpu& vf = hv.create(frag);
    EXPECT_EQ(hv.num_free_cores(), 256 - 36 - 40 - 30);

    // Confined routes of each isolated vNPU stay inside its region;
    // regions legitimately span core ids above 64.
    for (const virt::VirtualNpu* v : {&ve, &vs}) {
        CoreSet region = v->mask();
        const noc::RouteOverride* ov = v->confined_routes();
        ASSERT_NE(ov, nullptr);
        for (CoreId a : v->cores()) {
            for (CoreId b : v->cores()) {
                if (a == b)
                    continue;
                int cur = a, guard = 0;
                while (cur != b) {
                    cur = ov->next_hop(cur, b);
                    ASSERT_NE(cur, kInvalidCore);
                    ASSERT_TRUE(region.test(cur));
                    ASSERT_LT(++guard, 256);
                }
            }
        }
    }
    // 106 allocated cores cannot fit below id 64: the wide half of the
    // set is genuinely exercised.
    CoreSet all_used = ve.mask() | vs.mask() | vf.mask();
    EXPECT_TRUE(all_used.andnot(CoreSet::first_n(256)).none());
    EXPECT_LT(all_used.next(64), 256);

    VmId vms[] = {ve.vm(), vs.vm(), vf.vm()};
    for (VmId vm : vms)
        hv.destroy(vm);
    EXPECT_EQ(hv.free_cores(), CoreSet::first_n(256));
}

TEST(HypervisorTest, FragmentationSweepOn1024CoreMesh)
{
    // 32x32 chip: an allocate/destroy churn that fragments the free
    // set, then a fragmented request that must still succeed. This is
    // the scale the old u64 regions could not even represent.
    Machine m(mesh_cfg(32, 32));
    Hypervisor hv(m.config(), m.topology(), m.controller());
    EXPECT_EQ(hv.num_free_cores(), 1024);

    std::vector<VmId> vms;
    VnpuSpec spec;
    spec.num_cores = 48;
    spec.max_candidates = 64; // keep the sweep quick
    for (int i = 0; i < 8; ++i)
        vms.push_back(hv.create(spec).vm());
    EXPECT_EQ(hv.num_free_cores(), 1024 - 8 * 48);

    // Punch holes: destroy every other vNPU.
    for (std::size_t i = 0; i < vms.size(); i += 2)
        hv.destroy(vms[i]);
    EXPECT_EQ(hv.num_free_cores(), 1024 - 4 * 48);

    VnpuSpec frag;
    frag.num_cores = 60;
    frag.strategy = MappingStrategy::kFragmented;
    frag.max_candidates = 64;
    virt::VirtualNpu& vf = hv.create(frag);
    EXPECT_EQ(vf.num_cores(), 60);
    // Still disjoint from the surviving tenants.
    for (std::size_t i = 1; i < vms.size(); i += 2) {
        const virt::VirtualNpu* other = hv.find(vms[i]);
        ASSERT_NE(other, nullptr);
        EXPECT_TRUE((vf.mask() & other->mask()).none());
    }
}

TEST(HypervisorTest, RouteCacheHitsAcrossMigComparisonSweep)
{
    // The MIG comparison sweeps re-create identical vNPUs run after
    // run; the confined-route tables must come from the cache after
    // the first round instead of re-running the BFS build.
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());

    const noc::RouteOverride* first_round[2] = {nullptr, nullptr};
    const int rounds = 4;
    for (int round = 0; round < rounds; ++round) {
        VnpuSpec sa, sb;
        sa.num_cores = 12;
        sb.num_cores = 24;
        virt::VirtualNpu& va = hv.create(sa);
        virt::VirtualNpu& vb = hv.create(sb);
        ASSERT_TRUE(va.isolated() && vb.isolated());
        if (round == 0) {
            first_round[0] = va.confined_routes();
            first_round[1] = vb.confined_routes();
        } else {
            // Identical regions -> the very same cached tables.
            EXPECT_EQ(va.confined_routes(), first_round[0]);
            EXPECT_EQ(vb.confined_routes(), first_round[1]);
        }
        VmId vma = va.vm(), vmb = vb.vm();
        hv.destroy(vma);
        hv.destroy(vmb);
    }
    EXPECT_EQ(hv.stats().route_cache_misses.value(), 2u);
    EXPECT_EQ(hv.stats().route_cache_hits.value(), 2u * (rounds - 1));
}

TEST(HypervisorTest, RouteCacheEvictsUnreferencedTables)
{
    // 70 distinct single-tenant regions churned through an 80-node
    // chip: every table is unreferenced after its destroy, so the
    // cache must stay bounded at the eviction cap (64 entries at this
    // mesh size) instead of retaining one n*n matrix per region ever
    // seen.
    Machine m(mesh_cfg(16, 5));
    Hypervisor hv(m.config(), m.topology(), m.controller());
    for (int k = 1; k <= 70; ++k) {
        VnpuSpec spec;
        spec.num_cores = k;
        spec.max_candidates = 16;
        virt::VirtualNpu& v = hv.create(spec);
        hv.destroy(v.vm());
    }
    EXPECT_EQ(hv.stats().route_cache_misses.value(), 70u);
    EXPECT_LE(hv.route_cache_size(), 64u); // evict-before-insert cap
}

TEST(HypervisorTest, RouteCacheServesRegionTablesAcrossVmIdentities)
{
    // Fleet churn re-creates the *same region* under a *different VM
    // id* millions of times. The cache is keyed by region CoreSet and
    // the table holds only region-internal next hops — nothing per-VM
    // — so a hit across destroy/re-create is safe by construction.
    // Pin that: the re-created VM gets the cached table, the table
    // passes full containment verification, and the ids differ.
    Machine m(sim_cfg());
    Hypervisor hv(m.config(), m.topology(), m.controller());

    VnpuSpec spec;
    spec.num_cores = 12;
    virt::VirtualNpu& v1 = hv.create(spec);
    const VmId id1 = v1.vm();
    const CoreSet region = v1.mask();
    const noc::RouteOverride* table = v1.confined_routes();
    ASSERT_NE(table, nullptr);
    hv.destroy(id1);

    virt::VirtualNpu& v2 = hv.create(spec);
    EXPECT_NE(v2.vm(), id1); // fresh VM identity...
    EXPECT_EQ(v2.mask(), region);
    EXPECT_EQ(v2.confined_routes(), table); // ...same cached table
    check::verify_confined_route(m.topology(), v2.mask(),
                                 *v2.confined_routes());
    EXPECT_EQ(hv.stats().route_cache_hits.value(), 1u);
    EXPECT_EQ(hv.stats().route_cache_misses.value(), 1u);
    hv.destroy(v2.vm());
}

TEST(HypervisorTest, RouteCacheEvictionBoundUnderChurnAt1024Cores)
{
    // At 32x32 every cached table is a 1024x1024 next-hop matrix
    // (~2 MiB), so the 16 MiB budget caps the cache at 8 entries.
    // Churning 14 distinct regions through create/destroy must evict
    // — not retain one matrix per region ever seen — and the eviction
    // count must ride the collect_stats sweep for fleet telemetry.
    Machine m(mesh_cfg(32, 32));
    Hypervisor hv(m.config(), m.topology(), m.controller());
    for (int k = 1; k <= 14; ++k) {
        VnpuSpec spec;
        spec.num_cores = k; // distinct region per k
        spec.strategy = MappingStrategy::kExact;
        virt::VirtualNpu& v = hv.create(spec);
        hv.destroy(v.vm());
    }
    EXPECT_EQ(hv.stats().route_cache_misses.value(), 14u);
    EXPECT_LE(hv.route_cache_size(), 8u);
    EXPECT_GE(hv.stats().route_cache_evictions.value(), 6u);

    StatSet st;
    hv.collect_stats(st, "hyp.");
    EXPECT_EQ(st.get("hyp.route_cache.evictions", -1),
              static_cast<double>(
                  hv.stats().route_cache_evictions.value()));
    EXPECT_EQ(st.get("hyp.route_cache.hits", -1), 0.0);
    EXPECT_EQ(st.get("hyp.route_cache.misses", -1), 14.0);
}

TEST(HypervisorTest, RouteCacheNeverEvictsLiveTables)
{
    // Ten concurrent 2-core tenants on a 32x32 mesh push the cache
    // past its 8-entry budget, but every table is still referenced by
    // a live VM: eviction must skip them all (a dropped live table
    // would be rebuilt on the next admission, violating pointer
    // stability that RouteCacheHitsAcrossMigComparisonSweep pins).
    Machine m(mesh_cfg(32, 32));
    Hypervisor hv(m.config(), m.topology(), m.controller());
    std::vector<VmId> vms;
    std::vector<const noc::RouteOverride*> tables;
    for (int i = 0; i < 10; ++i) {
        VnpuSpec spec;
        spec.num_cores = 2;
        spec.strategy = MappingStrategy::kExact;
        virt::VirtualNpu& v = hv.create(spec);
        vms.push_back(v.vm());
        tables.push_back(v.confined_routes());
    }
    EXPECT_EQ(hv.route_cache_size(), 10u); // over budget, all live
    EXPECT_EQ(hv.stats().route_cache_evictions.value(), 0u);
    for (std::size_t i = 0; i < vms.size(); ++i) {
        EXPECT_EQ(hv.find(vms[i])->confined_routes(), tables[i]);
        hv.destroy(vms[i]);
    }
}

// ---- MIG baseline ------------------------------------------------------------

TEST(MigTest, DefaultHalvesAndExactFit)
{
    Machine m(sim_cfg());
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    ASSERT_EQ(mig.partitions().size(), 2u);
    EXPECT_EQ(mig.partitions()[0].num_cores(), 18);
    EXPECT_EQ(mig.partitions()[1].num_cores(), 18);

    virt::VirtualNpu& v = mig.create(12, 1 << 20);
    EXPECT_EQ(v.num_cores(), 12);
    EXPECT_EQ(v.tdm_factor(), 1);
    // 12 distinct physical cores out of the 18-core partition.
    EXPECT_EQ(mask_count(v.mask()), 12);
    EXPECT_EQ(mig.wasted_cores(), 6);
}

TEST(MigTest, OversizedRequestUsesTdm)
{
    Machine m(sim_cfg());
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    virt::VirtualNpu& v = mig.create(24, 1 << 20);
    EXPECT_EQ(v.num_cores(), 24);
    EXPECT_EQ(v.tdm_factor(), 2);
    EXPECT_EQ(mask_count(v.mask()), 18); // all partition cores, doubled up
}

TEST(MigTest, PartitionExhaustion)
{
    Machine m(sim_cfg());
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    mig.create(12, 0);
    mig.create(12, 0);
    EXPECT_THROW(mig.create(4, 0), SimFatal);
}

TEST(MigTest, DestroyFreesPartition)
{
    Machine m(sim_cfg());
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    virt::VirtualNpu& v = mig.create(12, 1 << 20);
    VmId vm = v.vm();
    mig.destroy(vm);
    EXPECT_NO_THROW(mig.create(18, 0));
    EXPECT_NO_THROW(mig.create(18, 0));
}

TEST(MigTest, CustomPartitions)
{
    Machine m(SocConfig::Sim48()); // 8x6
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    EXPECT_EQ(mig.partitions()[0].num_cores(), 24);
    std::vector<MigPartition> parts{{0, 0, 2, 6}, {2, 0, 6, 6}};
    mig.set_partitions(parts);
    virt::VirtualNpu& v = mig.create(10, 0);
    EXPECT_EQ(mask_count(v.mask()), 10);
    // Out-of-bounds partitions rejected.
    EXPECT_THROW(mig.set_partitions({{7, 0, 2, 6}}), SimFatal);
}

TEST(MigTest, PartitionsOn256CoreMesh)
{
    // MIG halves a 16x16 chip into two 8x16 partitions whose core ids
    // reach past 64; snake order, TDM, and interface accounting must
    // all survive the wide masks.
    SocConfig cfg = SocConfig::Sim();
    cfg.mesh_x = 16;
    cfg.mesh_y = 16;
    cfg.hbm_channels = 16;
    Machine m(cfg);
    MigPartitioner mig(m.config(), m.topology(), m.controller());
    ASSERT_EQ(mig.partitions().size(), 2u);
    EXPECT_EQ(mig.partitions()[0].num_cores(), 128);

    virt::VirtualNpu& a = mig.create(100, 1 << 20);
    EXPECT_EQ(a.tdm_factor(), 1);
    EXPECT_EQ(mask_count(a.mask()), 100);
    EXPECT_EQ(mig.wasted_cores(), 28);

    virt::VirtualNpu& b = mig.create(200, 1 << 20); // TDM on 128 cores
    EXPECT_EQ(b.tdm_factor(), 2);
    EXPECT_EQ(mask_count(b.mask()), 128);
    EXPECT_TRUE((a.mask() & b.mask()).none());
    EXPECT_GT(b.interfaces(), 0);

    mig.destroy(a.vm());
    mig.destroy(b.vm());
    EXPECT_NO_THROW(mig.create(128, 0));
}

} // namespace
} // namespace vnpu::hyp
