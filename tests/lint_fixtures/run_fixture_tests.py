#!/usr/bin/env python3
"""Self-test for tools/vnpu_lint.py against the golden fixtures.

Each `bad_<rule>` fixture must trip exactly its own rule (at least one
finding, no findings from any other rule); each `ok_*` fixture must
lint clean. The JSON output contract (key shape, counts consistency,
exit codes) is asserted on the way. Registered as a ctest so a rule
regression fails tier-1, not just CI.

Stdlib-only, like the linter itself.
"""

import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "vnpu_lint.py")
FIXTURE_SRC = os.path.join(HERE, "src")

# fixture file -> the one rule it must trip
BAD_FIXTURES = {
    "bad_nondet.cpp": "nondet",
    "bad_unordered_iter.cpp": "unordered-iter",
    "bad_hot_path_alloc.cpp": "hot-path-alloc",
    "bad_stdout_io.cpp": "stdout-io",
    "bad_ungated_trace.cpp": "ungated-trace",
    "bad_guard.h": "include-guard",
    "bad_include_order.cpp": "include-order",
}

OK_FIXTURES = ["ok_clean.cpp", "ok_guard.h", "ok_suppressed.cpp"]

FINDING_KEYS = {"file", "line", "rule", "message", "snippet"}
REPORT_KEYS = {"version", "files_scanned", "findings", "counts",
               "suppressed"}

failures = []


def check(cond, what):
    if cond:
        print("  ok: %s" % what)
    else:
        print("  FAIL: %s" % what)
        failures.append(what)


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", REPO] + list(args),
        capture_output=True, text=True, cwd=REPO)
    return proc


def lint_json(path):
    proc = run_lint("--json", path)
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError:
        report = None
    return proc.returncode, report


def check_report_shape(name, report):
    check(report is not None, "%s: --json output parses" % name)
    if report is None:
        return
    check(set(report) == REPORT_KEYS,
          "%s: report keys are %s" % (name, sorted(REPORT_KEYS)))
    check(isinstance(report["version"], int),
          "%s: version is an integer" % name)
    for f in report["findings"]:
        check(set(f) == FINDING_KEYS,
              "%s: finding keys are %s" % (name, sorted(FINDING_KEYS)))
        break  # shape is uniform; one sample per file keeps output short
    counts = {}
    for f in report["findings"]:
        counts[f["rule"]] = counts.get(f["rule"], 0) + 1
    check(counts == report["counts"],
          "%s: counts match the findings list" % name)


def main():
    print("== bad fixtures: each trips exactly its rule ==")
    for name, want_rule in sorted(BAD_FIXTURES.items()):
        path = os.path.join(FIXTURE_SRC, name)
        code, report = lint_json(path)
        print("- %s (expect %s)" % (name, want_rule))
        check(code == 1, "%s: exit code 1 on findings" % name)
        check_report_shape(name, report)
        if report is None:
            continue
        rules = {f["rule"] for f in report["findings"]}
        check(want_rule in rules,
              "%s: trips '%s'" % (name, want_rule))
        check(rules <= {want_rule},
              "%s: trips no other rule (got %s)" % (name, sorted(rules)))
        check(len(report["findings"]) >= 1,
              "%s: at least one finding" % name)

    print("== ok fixtures: lint clean ==")
    for name in OK_FIXTURES:
        path = os.path.join(FIXTURE_SRC, name)
        code, report = lint_json(path)
        print("- %s" % name)
        check(code == 0, "%s: exit code 0 when clean" % name)
        check_report_shape(name, report)
        if report is None:
            continue
        check(report["findings"] == [], "%s: zero findings" % name)
        if name == "ok_suppressed.cpp":
            check(report["suppressed"] >= 3,
                  "%s: allow/allow-next-line/allow-file all counted"
                  % name)

    print("== driver contract ==")
    proc = run_lint("--list-rules")
    listed = {line.split()[0] for line in proc.stdout.splitlines()
              if line.strip()}
    check(listed == set(BAD_FIXTURES.values()),
          "--list-rules lists exactly the fixtured rules")

    proc = run_lint("--rules", "no-such-rule", FIXTURE_SRC)
    check(proc.returncode == 2, "unknown rule name exits 2")

    proc = run_lint(os.path.join(FIXTURE_SRC, "no_such_file.cpp"))
    check(proc.returncode == 2, "missing input exits 2")

    # Directory walks skip lint_fixtures/, so the deliberately broken
    # files can never fail a whole-repo lint run.
    proc = run_lint("--json", os.path.join(REPO, "tests"))
    report = json.loads(proc.stdout)
    scanned = {f["file"] for f in report["findings"]}
    check(not any("lint_fixtures" in f for f in scanned),
          "tests/ walk reports nothing from lint_fixtures/")

    if failures:
        print("\n%d check(s) FAILED" % len(failures))
        return 1
    print("\nall fixture checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
