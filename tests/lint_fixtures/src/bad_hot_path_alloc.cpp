// Fixture: allocation inside a hot-path region must trip
// `hot-path-alloc`; the identical calls before the annotation must not.

void
setup(std::vector<int>& v)
{
    v.reserve(64); // outside any region: allowed
}

void
hot_loop(std::vector<int>& v)
{
    // vnpu-lint: hot-path
    for (int i = 0; i < 8; ++i) {
        v.push_back(i);
        auto p = std::make_unique<int>(i);
        (void)p;
    }
}
