// Fixture: every offense below carries a suppression annotation, so
// the file must lint clean — with a nonzero suppressed count.

// vnpu-lint: allow-file(stdout-io)

void
report(int value)
{
    std::cout << "value = " << value << "\n"; // file-wide allow
}

int
seeded()
{
    return std::rand(); // vnpu-lint: allow(nondet)
}

void
hot_loop(std::vector<int>& v)
{
    // vnpu-lint: hot-path
    // vnpu-lint: allow-next-line(hot-path-alloc)
    v.push_back(1);
}
