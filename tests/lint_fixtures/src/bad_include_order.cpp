// Fixture: an unsorted include block and a C-compatibility header must
// both trip `include-order`.

#include <vector>
#include <algorithm>

#include <stdint.h>

int
fixture_sum(const std::vector<int>& v)
{
    int total = 0;
    for (int x : v)
        total += x;
    return total;
}
