// Fixture: stdout writes from library code must trip `stdout-io`.

void
report(int value)
{
    std::cout << "value = " << value << "\n";
    printf("value = %d\n", value);
}
