// Fixture: raw trace emission outside src/obs with neither VNPU_TRACE
// nor an obs::enabled() guard must trip `ungated-trace`.

void
emit_raw(int node)
{
    obs::emit_instant("event", "fixture", 0, node, {});
}
