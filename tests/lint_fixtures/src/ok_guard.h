// Fixture: correctly path-derived include guard; must lint clean.

#ifndef VNPU_OK_GUARD_H
#define VNPU_OK_GUARD_H

inline int
fixture_value()
{
    return 7;
}

#endif // VNPU_OK_GUARD_H
