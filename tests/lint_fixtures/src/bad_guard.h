// Fixture: the guard must be VNPU_BAD_GUARD_H (path-derived); this
// mismatched name must trip `include-guard`.

#ifndef VNPU_SOMETHING_ELSE_H
#define VNPU_SOMETHING_ELSE_H

inline int
fixture_value()
{
    return 42;
}

#endif // VNPU_SOMETHING_ELSE_H
