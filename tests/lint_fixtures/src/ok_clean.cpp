// Fixture: idiomatic library code that must produce zero findings —
// sorted includes, gated trace emission, ordered containers only,
// allocation-free hot path.

#include <algorithm>
#include <map>
#include <vector>

std::map<int, int> ordered_table;

int
sum_all()
{
    int total = 0;
    for (const auto& kv : ordered_table)
        total += kv.second;
    return total;
}

void
traced(int node)
{
    VNPU_TRACE(emit_instant("event", "fixture", 0, node, {}));
}

void
guarded(int node)
{
    if (!obs::enabled())
        return;
    obs::emit_instant("event", "fixture", 0, node, {});
}

int
hot_loop(const std::vector<int>& v)
{
    // vnpu-lint: hot-path
    int total = 0;
    for (std::size_t i = 0; i < v.size(); ++i)
        total += v[i];
    return total;
}
