// Fixture: iterating an unordered container in library code must trip
// `unordered-iter` (declaration registry + range-for / begin() uses).

std::unordered_map<int, int> table;

int
sum_all()
{
    int total = 0;
    for (const auto& kv : table)
        total += kv.second;
    return total;
}

auto
first_entry()
{
    return table.begin();
}
