// Fixture: every line below must trip `nondet` (and nothing else).
// The src/ path component makes the file count as library code.

int
noisy_seed()
{
    int s = std::rand();
    if (std::getenv("VNPU_FIXTURE") != nullptr)
        ++s;
    auto t = std::chrono::steady_clock::now();
    (void)t;
    return s;
}
