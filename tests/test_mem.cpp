/**
 * @file
 * Tests for the memory substrate: DRAM channels, buddy allocator,
 * scratchpad zones, and the DMA engine (translation stalls, caps,
 * tracing).
 */

#include <gtest/gtest.h>

#include "mem/buddy_allocator.h"
#include "mem/dma.h"
#include "mem/dram.h"
#include "mem/scratchpad.h"
#include "mem/trace.h"
#include "sim/config.h"
#include "sim/log.h"

namespace vnpu::mem {
namespace {

SocConfig
fpga()
{
    return SocConfig::Fpga(); // 16 B/cyc HBM over 2 channels = 8 B/cyc/ch
}

// ---- DRAM -----------------------------------------------------------------

TEST(DramTest, TransferTimeMatchesChannelRate)
{
    SocConfig cfg = fpga();
    DramModel dram(cfg);
    EXPECT_EQ(dram.num_channels(), 2);
    EXPECT_DOUBLE_EQ(dram.channel_rate(), 8.0);
    // 800 bytes at 8 B/cyc = 100 cycles.
    EXPECT_EQ(dram.transfer(0, 0, 800, 1), 100u);
}

TEST(DramTest, SameChannelContends)
{
    DramModel dram(fpga());
    Tick a = dram.transfer(0, 0, 800, 1);
    Tick b = dram.transfer(0, 0, 800, 2);
    EXPECT_EQ(b, a + 100);
}

TEST(DramTest, DifferentChannelsRunInParallel)
{
    DramModel dram(fpga());
    Tick a = dram.transfer(0, 0, 800, 1);
    Tick b = dram.transfer(0, 1, 800, 2);
    EXPECT_EQ(a, b);
}

TEST(DramTest, PerVmByteAccounting)
{
    DramModel dram(fpga());
    dram.transfer(0, 0, 100, 1);
    dram.transfer(0, 0, 200, 2);
    dram.transfer(0, 1, 50, 1);
    EXPECT_EQ(dram.bytes_of_vm(1), 150u);
    EXPECT_EQ(dram.bytes_of_vm(2), 200u);
    EXPECT_EQ(dram.bytes_of_vm(9), 0u);
    EXPECT_EQ(dram.total_bytes(), 350u);
}

// ---- Buddy allocator ---------------------------------------------------------

TEST(BuddyTest, AllocatesPowerOfTwoBlocks)
{
    BuddyAllocator b(0, 1 << 20, 4096);
    auto a = b.alloc(5000);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(b.block_size(*a), 8192u); // rounded up
    EXPECT_EQ(b.used_bytes(), 8192u);
}

TEST(BuddyTest, SplitsAndCoalesces)
{
    BuddyAllocator b(0, 64 * 1024, 4096);
    auto a1 = b.alloc(4096);
    auto a2 = b.alloc(4096);
    ASSERT_TRUE(a1 && a2);
    EXPECT_NE(*a1, *a2);
    b.free(*a1);
    b.free(*a2);
    EXPECT_EQ(b.free_bytes(), 64u * 1024u);
    // After full coalescing a max-size block is available again.
    auto big = b.alloc(64 * 1024);
    EXPECT_TRUE(big.has_value());
}

TEST(BuddyTest, ExhaustionReturnsNullopt)
{
    BuddyAllocator b(0, 16 * 1024, 4096);
    EXPECT_TRUE(b.alloc(16 * 1024).has_value());
    EXPECT_FALSE(b.alloc(4096).has_value());
    EXPECT_FALSE(b.alloc(0).has_value());
    EXPECT_FALSE(b.alloc(32 * 1024).has_value());
}

TEST(BuddyTest, BaseOffsetRespected)
{
    BuddyAllocator b(0x1000000, 64 * 1024, 4096);
    auto a = b.alloc(4096);
    ASSERT_TRUE(a);
    EXPECT_GE(*a, 0x1000000u);
    b.free(*a);
}

TEST(BuddyTest, DoubleFreeIsFatal)
{
    BuddyAllocator b(0, 64 * 1024, 4096);
    auto a = b.alloc(4096);
    b.free(*a);
    EXPECT_THROW(b.free(*a), SimFatal);
}

TEST(BuddyTest, ManyAllocFreeCyclesStayConsistent)
{
    BuddyAllocator b(0, 1 << 20, 4096);
    std::vector<Addr> live;
    for (int round = 0; round < 50; ++round) {
        auto a = b.alloc(4096 << (round % 4));
        ASSERT_TRUE(a);
        live.push_back(*a);
        if (round % 3 == 2) {
            b.free(live.front());
            live.erase(live.begin());
        }
    }
    for (Addr a : live)
        b.free(a);
    EXPECT_EQ(b.free_bytes(), 1u << 20);
    EXPECT_EQ(b.live_blocks(), 0u);
}

// ---- Scratchpad -------------------------------------------------------------

TEST(ScratchpadTest, ZoneAccounting)
{
    Scratchpad sp(512 * 1024, 16 * 1024);
    EXPECT_EQ(sp.weight_zone_capacity(), 496u * 1024u);
    std::uint64_t off = sp.alloc_weight("w0", 100 * 1024);
    EXPECT_EQ(off, 0u);
    EXPECT_EQ(sp.alloc_weight("w1", 100 * 1024), 100u * 1024u);
    EXPECT_EQ(sp.weight_used(), 200u * 1024u);
    sp.release_weights();
    EXPECT_EQ(sp.weight_used(), 0u);
}

TEST(ScratchpadTest, OverflowIsFatal)
{
    Scratchpad sp(64 * 1024, 16 * 1024);
    EXPECT_TRUE(sp.weight_fits(48 * 1024));
    EXPECT_FALSE(sp.weight_fits(48 * 1024 + 1));
    EXPECT_THROW(sp.alloc_weight("big", 49 * 1024), SimFatal);
}

TEST(ScratchpadTest, MetaZoneEnforced)
{
    Scratchpad sp(64 * 1024, 8 * 1024);
    sp.set_meta_usage(8 * 1024);
    EXPECT_EQ(sp.meta_used(), 8u * 1024u);
    EXPECT_THROW(sp.set_meta_usage(8 * 1024 + 1), SimFatal);
    EXPECT_THROW(Scratchpad(1024, 1024), SimFatal);
}

// ---- DMA ---------------------------------------------------------------------

TEST(DmaTest, IdentityTransferUsesChannelBandwidth)
{
    SocConfig cfg = fpga();
    DramModel dram(cfg);
    DmaEngine dma(cfg, dram, 0, 0);
    // 8 KiB at 8 B/cyc = 1024 cycles, no translation stall.
    Tick done = dma.load(0, 0x1000, 8192, 1);
    EXPECT_EQ(done, 1024u);
    EXPECT_EQ(dma.stats().translation_stall.value(), 0u);
    EXPECT_EQ(dma.stats().bytes.value(), 8192u);
}

TEST(DmaTest, BandwidthCapThrottles)
{
    SocConfig cfg = fpga();
    DramModel dram(cfg);
    DmaEngine dma(cfg, dram, 0, 0);
    dma.set_bandwidth_cap(2.0); // 2 B/cyc, a quarter of the channel
    Tick done = dma.load(0, 0x1000, 8192, 1);
    EXPECT_EQ(done, 4096u);
    EXPECT_GT(dma.stats().throttle_stall.value(), 0u);
}

TEST(DmaTest, TraceRecordsAccesses)
{
    SocConfig cfg = fpga();
    DramModel dram(cfg);
    MemTraceRecorder trace;
    DmaEngine dma(cfg, dram, 0, 7);
    dma.set_trace(&trace);
    dma.set_iteration(0);
    dma.load(0, 0x1000, 4096, 1);
    dma.set_iteration(1);
    dma.load(2000, 0x1000, 4096, 1);
    ASSERT_EQ(trace.records().size(), 2u);
    EXPECT_EQ(trace.records()[0].core, 7);
    EXPECT_EQ(trace.records()[0].iteration, 0u);
    EXPECT_EQ(trace.records()[1].iteration, 1u);
    EXPECT_TRUE(trace.monotonic_within_iterations());
    EXPECT_TRUE(trace.repeating_across_iterations());
}

TEST(TraceTest, DetectsNonMonotonicAndNonRepeating)
{
    MemTraceRecorder t;
    t.record(0, 0, 0x2000, 64, 0);
    t.record(0, 0, 0x1000, 64, 10);
    EXPECT_FALSE(t.monotonic_within_iterations());

    MemTraceRecorder u;
    u.record(0, 0, 0x1000, 64, 0);
    u.record(0, 1, 0x3000, 64, 10);
    EXPECT_FALSE(u.repeating_across_iterations());
}

} // namespace
} // namespace vnpu::mem
