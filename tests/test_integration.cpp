/**
 * @file
 * Cross-module integration tests: the Poplar front end, single-stream
 * gating, aggregate bandwidth caps, UVM traffic accounting, tenant
 * isolation, and vNPU lifecycle reuse under load.
 */

#include <gtest/gtest.h>

#include "hyp/hypervisor.h"
#include "hyp/mig.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "runtime/poplar.h"
#include "workload/model_zoo.h"

namespace vnpu {
namespace {

using runtime::Machine;

// ---- Poplar front end ----------------------------------------------------

TEST(PoplarTest, Listing1StyleProgramRunsOnVnpu)
{
    Machine m(SocConfig::Fpga());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.topo = graph::Graph::mesh(2, 2);
    spec.memory_bytes = 64ull << 20;
    virt::VirtualNpu& v = hv.create(spec);

    using namespace runtime::poplar;
    Graph g(m, &v);
    Tensor v1 = g.addVariable(Type::HALF, {1024}, "v1");
    Tensor v2 = g.addVariable(Type::HALF, {1024}, "v2");
    Tensor c1 = g.addConstant(Type::HALF, {1024}, "c1");
    g.setTileMapping(v1, 0);
    g.setTileMapping(v2, 3);

    Sequence prog;
    prog.add(Copy(c1, v1));
    ComputeSet cs = g.addComputeSet("cs");
    for (int t = 0; t < 4; ++t) {
        VertexRef vx = g.addVertex(cs, "SumVertex");
        g.connect(vx, "in", v1);
        g.connect(vx, "out", v2);
        g.setTileMapping(vx, t);
        g.setPerfEstimate(vx, 20);
    }
    prog.add(Execute(cs));
    prog.add(Copy(v2, v1));

    Engine engine(g, prog);
    RunStats stats = engine.run(2);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.noc_bytes, 0u);  // inter-tile copies happened
    EXPECT_GT(stats.dma_bytes, 0u);  // the host constant was fetched
    EXPECT_GT(stats.flops, 0u);
}

TEST(PoplarTest, BareMetalGraphUsesPhysicalTiles)
{
    Machine m(SocConfig::Fpga());
    using namespace runtime::poplar;
    Graph g(m, nullptr);
    Tensor a = g.addVariable(Type::FLOAT, {256}, "a");
    Tensor b = g.addVariable(Type::FLOAT, {256}, "b");
    g.setTileMapping(a, 2);
    g.setTileMapping(b, 6);
    Sequence prog;
    prog.add(Copy(a, b));
    Engine engine(g, prog);
    RunStats stats = engine.run(1);
    // The copy payload plus the flow-control credit return.
    EXPECT_EQ(stats.noc_bytes, 256u * 4u + m.config().credit_bytes);
}

TEST(PoplarTest, MissingTileMappingIsFatal)
{
    Machine m(SocConfig::Fpga());
    using namespace runtime::poplar;
    Graph g(m, nullptr);
    Tensor a = g.addVariable(Type::FLOAT, {16}, "a");
    Tensor b = g.addVariable(Type::FLOAT, {16}, "b");
    g.setTileMapping(a, 0); // b left unmapped
    Sequence prog;
    prog.add(Copy(a, b));
    Engine engine(g, prog);
    EXPECT_THROW(engine.run(1), SimFatal);
}

// ---- Single-stream gating ---------------------------------------------------

TEST(SingleStreamTest, OneInferenceInFlight)
{
    Machine m(SocConfig::Fpga());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 256ull << 20;
    virt::VirtualNpu& v = hv.create(spec);
    runtime::WorkloadLauncher l(m);
    runtime::LaunchOptions opt;
    opt.iterations = 5;
    opt.single_stream = true;
    runtime::LoadedRun run =
        l.load(v, workload::transformer_block(128, 16), opt);
    m.run();
    l.collect(run);

    // Stage 0's iteration k+1 must start after the last stage began
    // (and thus finished receiving) iteration k.
    const core::ContextStats& first =
        m.core(run.cores.front()).context_stats(run.ctx_ids.front());
    const core::ContextStats& last =
        m.core(run.cores.back()).context_stats(run.ctx_ids.back());
    ASSERT_EQ(first.iter_starts.size(), 5u);
    ASSERT_EQ(last.iter_starts.size(), 5u);
    for (std::size_t k = 0; k + 1 < 5; ++k)
        EXPECT_GE(first.iter_starts[k + 1], last.iter_starts[k]);
}

TEST(SingleStreamTest, PipelinedModeOverlapsMore)
{
    auto period = [](bool single) {
        Machine m(SocConfig::Fpga());
        hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
        hyp::VnpuSpec spec;
        spec.num_cores = 4;
        spec.memory_bytes = 256ull << 20;
        virt::VirtualNpu& v = hv.create(spec);
        runtime::WorkloadLauncher l(m);
        runtime::LaunchOptions opt;
        opt.iterations = 8;
        opt.single_stream = single;
        return l.run_single(v, workload::transformer_block(128, 16), opt)
            .iter_period;
    };
    EXPECT_LT(period(false), period(true));
}

// ---- Aggregate bandwidth cap -----------------------------------------------

TEST(SharedCapTest, AggregateRateIsEnforcedAcrossCores)
{
    SocConfig cfg = SocConfig::Fpga();
    Machine m(cfg);
    mem::SharedBandwidthLimiter limiter(4.0); // 4 B/cycle for the VM

    // Two cores stream 64 KiB each, concurrently, through the limiter.
    core::Program p{core::Instr::load_weight(0x1000, 64 << 10),
                    core::Instr::halt()};
    core::ContextConfig ccfg;
    ccfg.shared_cap = &limiter;
    m.core(0).add_context(p, ccfg);
    m.core(1).add_context(p, ccfg);
    Tick end = m.run();
    // 128 KiB at an aggregate 4 B/cycle is ~32k cycles even though the
    // two HBM channels alone could do it in ~8k.
    EXPECT_GE(end, 32000u);
    EXPECT_LE(end, 36000u);
}

// ---- UVM memory-traffic accounting -----------------------------------------

TEST(UvmTrafficTest, UvmMovesActivationsThroughHbm)
{
    auto dram_bytes = [](runtime::CommMode mode) {
        Machine m(SocConfig::Fpga());
        hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
        hyp::VnpuSpec spec;
        spec.num_cores = 4;
        spec.memory_bytes = 256ull << 20;
        virt::VirtualNpu& v = hv.create(spec);
        runtime::WorkloadLauncher l(m);
        runtime::LaunchOptions opt;
        opt.iterations = 4;
        opt.comm = mode;
        l.run_single(v, workload::transformer_block(128, 16), opt);
        return m.dram().total_bytes();
    };
    std::uint64_t df = dram_bytes(runtime::CommMode::kDataflow);
    std::uint64_t uvm = dram_bytes(runtime::CommMode::kUvmSync);
    // UVM stages every activation through global memory twice.
    EXPECT_GT(uvm, df + 100000);
}

// ---- Tenant isolation and lifecycle ------------------------------------------

TEST(IsolationTest, ConfinedTenantsShareNoLinks)
{
    Machine m(SocConfig::Sim());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = 9;
    spec.memory_bytes = 1ull << 30;
    virt::VirtualNpu& a = hv.create(spec);
    virt::VirtualNpu& b = hv.create(spec);
    runtime::WorkloadLauncher l(m);
    runtime::LaunchOptions opt;
    opt.iterations = 6;
    runtime::LoadedRun ra =
        l.load(a, workload::transformer_block(256, 32), opt);
    runtime::LoadedRun rb =
        l.load(b, workload::transformer_block(256, 32), opt);
    m.run();
    l.collect(ra);
    l.collect(rb);
    EXPECT_EQ(m.network().interference_links(), 0);
}

TEST(LifecycleTest, DestroyAndReuseUnderLoad)
{
    Machine m(SocConfig::Sim());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    for (int round = 0; round < 3; ++round) {
        hyp::VnpuSpec spec;
        spec.num_cores = 16;
        spec.memory_bytes = 1ull << 30;
        virt::VirtualNpu& v = hv.create(spec);
        VmId vm = v.vm();

        Machine worker(SocConfig::Sim());
        hyp::Hypervisor whv(worker.config(), worker.topology(),
                            worker.controller());
        hyp::VnpuSpec wspec = spec;
        virt::VirtualNpu& wv = whv.create(wspec);
        runtime::WorkloadLauncher l(worker);
        runtime::LaunchOptions opt;
        opt.iterations = 3;
        runtime::LaunchResult r =
            l.run_single(wv, workload::resnet_block(16, 64), opt);
        EXPECT_GT(r.fps, 0.0);

        hv.destroy(vm);
        EXPECT_EQ(hv.num_free_cores(), 36);
    }
    EXPECT_EQ(hv.stats().vnpus_created.value(), 3u);
    EXPECT_EQ(hv.stats().vnpus_destroyed.value(), 3u);
}

TEST(WarmupTest, MoreInterfacesLoadWeightsFaster)
{
    // A vNPU spanning all six rows (6 interfaces) warms up faster than
    // one confined to a single row (1 interface) — §6.3.4. Placement is
    // constructed directly because a 6x1 and a 1x6 request are
    // isomorphic and the mapper may legally choose either orientation.
    auto warmup_of = [](const std::vector<CoreId>& cores) {
        Machine m(SocConfig::Sim());
        const SocConfig& cfg = m.config();
        virt::RoutingTable rt = virt::RoutingTable::standard(1, cores);
        virt::VirtualNpu v(1, cores, graph::Graph::chain(6), rt);
        mem::RangeTable rtt;
        rtt.add(0x10000, 0, 2ull << 30,
                mem::kPermRead | mem::kPermWrite);
        rtt.finalize();
        v.set_range_table(std::move(rtt));
        int ifaces =
            m.topology().interfaces_of(v.mask(), cfg.hbm_channels);
        v.set_interfaces(ifaces);
        v.set_bandwidth_cap(cfg.hbm_bytes_per_cycle * ifaces /
                            cfg.hbm_channels);
        runtime::WorkloadLauncher l(m);
        runtime::LaunchOptions opt;
        opt.iterations = 2;
        workload::Model model = workload::transformer_block(1024, 64);
        return std::make_pair(l.run_single(v, model, opt).warmup, ifaces);
    };
    // Row 0: ids 0..5 -> one HBM interface. Column 0: 0,6,..,30 -> six.
    auto [row_warmup, row_ifaces] = warmup_of({0, 1, 2, 3, 4, 5});
    auto [col_warmup, col_ifaces] = warmup_of({0, 6, 12, 18, 24, 30});
    EXPECT_EQ(row_ifaces, 1);
    EXPECT_EQ(col_ifaces, 6);
    EXPECT_GT(row_warmup, 3 * col_warmup);
}

TEST(MigIntegrationTest, TdmWorkloadCompletesAndReportsContexts)
{
    Machine m(SocConfig::Sim());
    hyp::MigPartitioner mig(m.config(), m.topology(), m.controller());
    virt::VirtualNpu& v = mig.create(24, 1ull << 30);
    ASSERT_EQ(v.tdm_factor(), 2);
    runtime::WorkloadLauncher l(m);
    runtime::LaunchOptions opt;
    opt.iterations = 30;
    runtime::LaunchResult r = l.run_single(
        v, workload::gpt2(workload::Gpt2Size::kSmall, 64), opt);
    EXPECT_EQ(r.iterations, 30u);
    // The doubled physical cores ran two contexts each.
    int multi = 0;
    for (int c = 0; c < m.num_cores(); ++c)
        if (m.core(c).num_contexts() == 2)
            ++multi;
    EXPECT_EQ(multi, 6); // 24 vcores on 18 pcores
}

} // namespace
} // namespace vnpu
