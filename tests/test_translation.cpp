/**
 * @file
 * Tests for address translation: the page-TLB baseline and vChunk's
 * range translation table (RTT_CUR / last_v walk behaviour, Figure 7).
 */

#include <gtest/gtest.h>

#include "mem/page_tlb.h"
#include "mem/range_table.h"
#include "sim/config.h"
#include "sim/log.h"

namespace vnpu::mem {
namespace {

SocConfig
cfg4()
{
    return SocConfig::Fpga();
}

// ---- Page table / IOTLB -------------------------------------------------

TEST(PageTableTest, MapAndLookup)
{
    PageTable pt(4096);
    pt.map_range(0x10000, 0x800000, 0x4000, kPermRead | kPermWrite);
    TranslationResult r = pt.lookup(0x10000, kPermRead);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.pa, 0x800000u);
    // Interior address with page offset.
    r = pt.lookup(0x11234, kPermRead);
    EXPECT_EQ(r.pa, 0x801234u);
    EXPECT_EQ(r.seg_bytes, 4096u - 0x234u);
    // Unmapped.
    EXPECT_TRUE(pt.lookup(0x20000, kPermRead).fault);
    // Permission violation.
    EXPECT_TRUE(pt.lookup(0x10000, kPermExec).fault);
}

TEST(PageTableTest, RejectsUnalignedRanges)
{
    PageTable pt(4096);
    EXPECT_THROW(pt.map_range(0x100, 0x800000, 0x4000, kPermRead),
                 SimFatal);
}

TEST(PageTlbTest, HitsAfterFirstTouch)
{
    SocConfig cfg = cfg4();
    PageTable pt(cfg.page_bytes);
    pt.map_range(0x10000, 0x800000, 1 << 20, kPermRead);
    PageTlbTranslator tlb(cfg, pt, 4);

    TranslationResult first = tlb.translate(0x10000, 64, kPermRead);
    EXPECT_GT(first.stall, 0u);
    TranslationResult second = tlb.translate(0x10040, 64, kPermRead);
    EXPECT_EQ(second.stall, 0u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(PageTlbTest, LruEvictionThrashesOnWideWorkingSet)
{
    SocConfig cfg = cfg4();
    PageTable pt(cfg.page_bytes);
    pt.map_range(0x10000, 0x800000, 1 << 20, kPermRead);
    PageTlbTranslator tlb(cfg, pt, 4);

    // Touch 8 pages twice: with 4 entries everything misses both times.
    for (int round = 0; round < 2; ++round)
        for (int p = 0; p < 8; ++p)
            tlb.translate(0x10000 + p * 4096, 64, kPermRead);
    EXPECT_EQ(tlb.misses(), 16u);

    // A 32-entry TLB holds the working set: second round all hits.
    PageTlbTranslator big(cfg, pt, 32);
    for (int round = 0; round < 2; ++round)
        for (int p = 0; p < 8; ++p)
            big.translate(0x10000 + p * 4096, 64, kPermRead);
    EXPECT_EQ(big.misses(), 8u);
    EXPECT_EQ(big.hits(), 8u);
}

TEST(PageTlbTest, LargerTlbHidesMoreWalkLatency)
{
    SocConfig cfg = cfg4();
    PageTable pt(cfg.page_bytes);
    pt.map_range(0x10000, 0x800000, 1 << 20, kPermRead);
    PageTlbTranslator small(cfg, pt, 4);
    PageTlbTranslator big(cfg, pt, 32);
    Cycles s = small.translate(0x10000, 64, kPermRead).stall;
    Cycles b = big.translate(0x10000, 64, kPermRead).stall;
    EXPECT_GT(s, b); // deeper translation pipelining with 32 entries
}

// ---- Range table / vChunk ------------------------------------------------

RangeTable
three_ranges()
{
    RangeTable rtt;
    rtt.add(0x10000, 0x2000000, 0x10000, kPermRead | kPermWrite); // 64 KiB
    rtt.add(0x20000, 0x5000000, 0x10000, kPermRead);              // 64 KiB
    rtt.add(0x60000, 0x6000000, 0x400, kPermRead);                // 1 KiB
    rtt.finalize();
    return rtt;
}

TEST(RangeTableTest, FindByBinarySearch)
{
    RangeTable rtt = three_ranges();
    EXPECT_EQ(rtt.find(0x10000).value(), 0u);
    EXPECT_EQ(rtt.find(0x1ffff).value(), 0u);
    EXPECT_EQ(rtt.find(0x20000).value(), 1u);
    EXPECT_EQ(rtt.find(0x60200).value(), 2u);
    EXPECT_FALSE(rtt.find(0x30000).has_value()); // gap
    EXPECT_FALSE(rtt.find(0x1).has_value());
}

TEST(RangeTableTest, OverlapIsFatal)
{
    RangeTable rtt;
    rtt.add(0x10000, 0, 0x10000, kPermRead);
    rtt.add(0x18000, 0, 0x10000, kPermRead);
    EXPECT_THROW(rtt.finalize(), SimFatal);
}

TEST(RangeTableTest, FootprintIs144BitsPerEntry)
{
    RangeTable rtt = three_ranges();
    EXPECT_EQ(rtt.footprint_bytes(), 3u * 18u);
}

TEST(RangeTlbTest, WholeRangeIsOneEntry)
{
    SocConfig cfg = cfg4();
    RangeTable rtt = three_ranges();
    RangeTlbTranslator tlb(cfg, rtt, 4);

    // First touch misses (walk), then the whole 64 KiB range hits.
    EXPECT_GT(tlb.translate(0x10000, 64, kPermRead).stall, 0u);
    for (Addr a = 0x10040; a < 0x20000; a += 0x1000)
        EXPECT_EQ(tlb.translate(a, 64, kPermRead).stall, 0u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(RangeTlbTest, SegmentEndsAtRangeBoundary)
{
    SocConfig cfg = cfg4();
    RangeTable rtt = three_ranges();
    RangeTlbTranslator tlb(cfg, rtt, 4);
    TranslationResult r = tlb.translate(0x1ff00, 0x10000, kPermRead);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.seg_bytes, 0x100u); // clipped at the range end
    EXPECT_EQ(r.pa, 0x2000000u + 0xff00u);
}

TEST(RangeTlbTest, PermissionsEnforced)
{
    SocConfig cfg = cfg4();
    RangeTable rtt = three_ranges();
    RangeTlbTranslator tlb(cfg, rtt, 4);
    EXPECT_FALSE(tlb.translate(0x10000, 64, kPermWrite).fault);
    EXPECT_TRUE(tlb.translate(0x20000, 64, kPermWrite).fault); // R only
    EXPECT_TRUE(tlb.translate(0x40000, 64, kPermRead).fault);  // unmapped
}

TEST(RangeTlbTest, LastVShortcutsIterationWrap)
{
    SocConfig cfg = cfg4();
    RangeTable rtt = three_ranges();
    RangeTlbTranslator tlb(cfg, rtt, 1); // tiny TLB to force walks

    auto one_iteration = [&] {
        tlb.translate(0x10000, 64, kPermRead);
        tlb.translate(0x20000, 64, kPermRead);
        tlb.translate(0x60000, 64, kPermRead);
    };

    // Iterations 1-2 teach the forward transitions and the wrap from
    // the last range back to the first (Pattern-3).
    one_iteration();
    one_iteration();
    std::uint64_t fetched_before = tlb.entries_fetched();
    std::uint64_t misses_before = tlb.misses();
    std::uint64_t lastv_before = tlb.last_v_hits();

    // Iteration 3: every miss resolves via last_v with exactly one
    // meta-zone fetch.
    one_iteration();
    std::uint64_t fetched = tlb.entries_fetched() - fetched_before;
    std::uint64_t misses = tlb.misses() - misses_before;
    EXPECT_EQ(misses, 3u);
    EXPECT_EQ(fetched, misses);
    EXPECT_EQ(tlb.last_v_hits() - lastv_before, 3u);
}

TEST(RangeTlbTest, StallProportionalToFetches)
{
    SocConfig cfg = cfg4();
    RangeTable rtt = three_ranges();
    RangeTlbTranslator tlb(cfg, rtt, 4);
    tlb.translate(0x10000, 64, kPermRead);
    EXPECT_EQ(tlb.stall_cycles(),
              tlb.entries_fetched() * cfg.rtt_fetch_cycles);
}

TEST(RangeTlbTest, TooManyEntriesRejected)
{
    RangeTable rtt;
    for (int i = 0; i < 257; ++i)
        rtt.add(0x10000 + i * 0x1000, i * 0x1000, 0x1000, kPermRead);
    EXPECT_THROW(rtt.finalize(), SimFatal);
}

} // namespace
} // namespace vnpu::mem
