/**
 * @file
 * Tests for the runtime: compiler output well-formedness and
 * end-to-end launches (bare metal, virtualized, UVM mode, TDM).
 */

#include <gtest/gtest.h>

#include <map>

#include "hyp/hypervisor.h"
#include "hyp/mig.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "sim/log.h"
#include "workload/model_zoo.h"

namespace vnpu::runtime {
namespace {

using hyp::Hypervisor;
using hyp::VnpuSpec;
using workload::Model;

SocConfig
fpga()
{
    return SocConfig::Fpga();
}

// ---- Compiler ---------------------------------------------------------------

TEST(CompilerTest, SendRecvTagsPairUp)
{
    Model m = workload::resnet_block(16, 64);
    workload::PipelinePlan plan = workload::make_pipeline_plan(m, 4);
    CompileOptions opt;
    opt.iterations = 3;
    CompiledWorkload cw =
        compile_pipeline(m, plan, opt, 0x10000, 1ull << 30);
    ASSERT_EQ(cw.programs.size(), 4u);

    std::map<int, int> send_count, recv_count;
    for (const core::Program& p : cw.programs) {
        for (const core::Instr& in : p) {
            if (in.op == core::Opcode::kSend)
                ++send_count[in.tag];
            if (in.op == core::Opcode::kRecv)
                ++recv_count[in.tag];
        }
    }
    EXPECT_EQ(send_count, recv_count);
    for (auto [tag, cnt] : send_count)
        EXPECT_EQ(cnt, opt.iterations) << "tag " << tag;
}

TEST(CompilerTest, IterationMarkersPresent)
{
    Model m = workload::transformer_block(64, 16);
    workload::PipelinePlan plan = workload::make_pipeline_plan(m, 2);
    CompileOptions opt;
    opt.iterations = 5;
    CompiledWorkload cw =
        compile_pipeline(m, plan, opt, 0x10000, 1ull << 30);
    for (const core::Program& p : cw.programs) {
        int markers = 0;
        for (const core::Instr& in : p)
            if (in.op == core::Opcode::kIterBegin)
                ++markers;
        EXPECT_EQ(markers, 5);
        EXPECT_EQ(p.back().op, core::Opcode::kHalt);
    }
}

TEST(CompilerTest, StreamingReloadsWeightsEachIteration)
{
    Model m = workload::resnet_block(16, 64);
    workload::PipelinePlan plan = workload::make_pipeline_plan(m, 2);
    CompileOptions resident;
    resident.iterations = 3;
    CompileOptions streaming = resident;
    streaming.stream_weights = true;

    CompiledWorkload r =
        compile_pipeline(m, plan, resident, 0x10000, 1ull << 30);
    CompiledWorkload s =
        compile_pipeline(m, plan, streaming, 0x10000, 1ull << 30);
    auto weight_loads = [](const core::Program& p) {
        std::uint64_t bytes = 0;
        for (const core::Instr& in : p)
            if (in.op == core::Opcode::kLoadWeight)
                bytes += in.bytes;
        return bytes;
    };
    for (std::size_t v = 0; v < r.programs.size(); ++v) {
        if (weight_loads(r.programs[v]) == 0)
            continue;
        EXPECT_EQ(weight_loads(s.programs[v]),
                  3 * weight_loads(r.programs[v]));
    }
}

TEST(CompilerTest, UvmModeRoutesEdgesThroughMemory)
{
    Model m = workload::transformer_block(64, 16);
    workload::PipelinePlan plan = workload::make_pipeline_plan(m, 4);
    CompileOptions df;
    df.iterations = 1;
    CompileOptions uvm = df;
    uvm.comm = CommMode::kUvmSync;

    CompiledWorkload a = compile_pipeline(m, plan, df, 0x10000, 1ull << 30);
    CompiledWorkload b =
        compile_pipeline(m, plan, uvm, 0x10000, 1ull << 30);

    auto count = [](const CompiledWorkload& cw, core::Opcode op) {
        std::uint64_t bytes = 0;
        for (const core::Program& p : cw.programs)
            for (const core::Instr& in : p)
                if (in.op == op)
                    bytes += in.bytes;
        return bytes;
    };
    // Dataflow: activations over the NoC; UVM: stores + loads + flags.
    EXPECT_GT(count(a, core::Opcode::kSend), 0u);
    EXPECT_GT(count(b, core::Opcode::kStoreGlobal),
              count(a, core::Opcode::kStoreGlobal));
    EXPECT_GT(count(b, core::Opcode::kLoadGlobal),
              count(a, core::Opcode::kLoadGlobal));
    // UVM flags are tiny compared to dataflow payloads.
    EXPECT_LT(count(b, core::Opcode::kSend),
              count(a, core::Opcode::kSend));
}

TEST(CompilerTest, VaBudgetEnforced)
{
    Model m = workload::resnet18();
    workload::PipelinePlan plan = workload::make_pipeline_plan(m, 4);
    CompileOptions opt;
    EXPECT_THROW(compile_pipeline(m, plan, opt, 0x10000, 1 << 20),
                 SimFatal);
}

// ---- End-to-end launches ----------------------------------------------------------

TEST(LauncherTest, BareMetalRunCompletes)
{
    Machine m(fpga());
    WorkloadLauncher launcher(m);
    Model model = workload::resnet_block(16, 64);
    LaunchOptions opt;
    opt.iterations = 3;
    opt.xlat = XlatMode::kPhysical;
    LoadedRun run = launcher.load_bare({0, 1, 2, 3}, model, opt);
    m.run();
    LaunchResult res = launcher.collect(run);
    EXPECT_GT(res.makespan, 0u);
    EXPECT_GT(res.fps, 0.0);
    EXPECT_GT(res.flops, 0u);
    EXPECT_EQ(res.iterations, 3u);
    EXPECT_EQ(res.translation_stall, 0u);
}

TEST(LauncherTest, VirtualizedRunMatchesBareMetalClosely)
{
    // Paper §6.3.3: vNPU virtualization costs < 1% end to end. The
    // bare-metal reference runs on exactly the same physical cores so
    // only the virtualization machinery differs; the bandwidth cap is
    // disabled because bare metal has no cap either.
    Model model = workload::transformer_block(128, 16);
    LaunchOptions opt;
    opt.iterations = 4;
    opt.apply_bw_cap = false;

    Machine virt_m(fpga());
    Hypervisor hv(virt_m.config(), virt_m.topology(), virt_m.controller());
    VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 256ull << 20;
    virt::VirtualNpu& v = hv.create(spec);
    WorkloadLauncher virt_l(virt_m);
    LaunchResult res = virt_l.run_single(v, model, opt);

    Machine bare_m(fpga());
    WorkloadLauncher bare_l(bare_m);
    LaunchOptions bare_opt = opt;
    bare_opt.xlat = XlatMode::kPhysical;
    LoadedRun bare = bare_l.load_bare(v.cores(), model, bare_opt);
    bare_m.run();
    Tick bare_t = bare_l.collect(bare).makespan;

    double overhead = static_cast<double>(res.makespan) /
                          static_cast<double>(bare_t) -
                      1.0;
    EXPECT_GE(overhead, 0.0);
    EXPECT_LT(overhead, 0.02) << "virtualization overhead too high";
}

TEST(LauncherTest, UvmSlowerThanDataflow)
{
    Model model = workload::transformer_block(128, 16);

    auto run_mode = [&](CommMode mode) {
        Machine m(fpga());
        Hypervisor hv(m.config(), m.topology(), m.controller());
        VnpuSpec spec;
        spec.num_cores = 4;
        spec.memory_bytes = 256ull << 20;
        virt::VirtualNpu& v = hv.create(spec);
        WorkloadLauncher l(m);
        LaunchOptions opt;
        opt.iterations = 4;
        opt.comm = mode;
        return l.run_single(v, model, opt);
    };
    LaunchResult df = run_mode(CommMode::kDataflow);
    LaunchResult uvm = run_mode(CommMode::kUvmSync);
    EXPECT_GT(uvm.iter_period, df.iter_period);
}

TEST(LauncherTest, TdmRunsSlowerThanSpatial)
{
    // MIG TDM (24 vcores on 18 pcores) vs full allocation, on a
    // compute-heavy workload where serialization dominates placement.
    // TDM contention only materializes under sustained serving: the
    // two stages sharing a core sit 18 pipeline steps apart, so the
    // iteration count must exceed the pipeline depth.
    Model model = workload::gpt2(workload::Gpt2Size::kSmall, 128);

    Machine m1(SocConfig::Sim());
    Hypervisor hv(m1.config(), m1.topology(), m1.controller());
    VnpuSpec spec;
    spec.num_cores = 24;
    spec.memory_bytes = 1ull << 30;
    virt::VirtualNpu& v = hv.create(spec);
    WorkloadLauncher l1(m1);
    LaunchOptions opt;
    opt.iterations = 48; // > 2x pipeline depth
    LaunchResult full = l1.run_single(v, model, opt);

    Machine m2(SocConfig::Sim());
    hyp::MigPartitioner mig(m2.config(), m2.topology(), m2.controller());
    virt::VirtualNpu& mv = mig.create(24, 1ull << 30);
    ASSERT_EQ(mv.tdm_factor(), 2);
    WorkloadLauncher l2(m2);
    LaunchResult tdm = l2.run_single(mv, model, opt);

    EXPECT_GT(tdm.iter_period, 1.3 * full.iter_period);
}

TEST(LauncherTest, MemoryAccessPatternsHold)
{
    // Figure 6: DMA traces are monotonic within an iteration and
    // repeat across iterations.
    Machine m(fpga());
    m.enable_trace();
    Hypervisor hv(m.config(), m.topology(), m.controller());
    VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 256ull << 20;
    virt::VirtualNpu& v = hv.create(spec);
    WorkloadLauncher l(m);
    LaunchOptions opt;
    opt.iterations = 3;
    opt.force_stream_weights = true;
    l.run_single(v, workload::resnet_block(16, 64), opt);
    EXPECT_FALSE(m.trace().records().empty());
    EXPECT_TRUE(m.trace().monotonic_within_iterations());
    EXPECT_TRUE(m.trace().repeating_across_iterations());
}

TEST(LauncherTest, TranslationSchemesRankCorrectly)
{
    // physical <= vchunk << page-tlb on a streaming workload (Fig 14).
    Model model = workload::resnet_block(16, 64);
    auto run_x = [&](XlatMode x, int entries) {
        Machine m(fpga());
        Hypervisor hv(m.config(), m.topology(), m.controller());
        VnpuSpec spec;
        spec.num_cores = 4;
        spec.memory_bytes = 256ull << 20;
        virt::VirtualNpu& v = hv.create(spec);
        WorkloadLauncher l(m);
        LaunchOptions opt;
        opt.iterations = 3;
        opt.force_stream_weights = true;
        opt.xlat = x;
        opt.tlb_entries = entries;
        return l.run_single(v, model, opt);
    };
    LaunchResult phys = run_x(XlatMode::kPhysical, 4);
    LaunchResult vchunk = run_x(XlatMode::kVChunk, 4);
    LaunchResult page4 = run_x(XlatMode::kPageTlb, 4);
    LaunchResult page32 = run_x(XlatMode::kPageTlb, 32);

    EXPECT_LE(phys.iter_period, vchunk.iter_period);
    EXPECT_LT(vchunk.iter_period, page4.iter_period);
    EXPECT_LT(page32.iter_period, page4.iter_period);
    EXPECT_GT(page4.translation_stall, vchunk.translation_stall);
}

TEST(LauncherTest, BandwidthCapLimitsWarmup)
{
    // Halving the bandwidth cap roughly doubles weight warm-up time.
    Model model = workload::transformer_block(128, 64);
    auto run_cap = [&](double cap) {
        Machine m(fpga());
        Hypervisor hv(m.config(), m.topology(), m.controller());
        VnpuSpec spec;
        spec.num_cores = 4;
        spec.memory_bytes = 256ull << 20;
        spec.bw_cap = cap;
        virt::VirtualNpu& v = hv.create(spec);
        WorkloadLauncher l(m);
        LaunchOptions opt;
        opt.iterations = 2;
        return l.run_single(v, model, opt).warmup;
    };
    Cycles fast = run_cap(8.0);
    Cycles slow = run_cap(2.0);
    EXPECT_GT(slow, 2 * fast);
}

} // namespace
} // namespace vnpu::runtime
