/**
 * @file
 * Golden-trace equivalence tests for the fast-path simulation kernel.
 *
 * The calendar event queue, the allocation-free `Network::send` walk and
 * the closed-form wormhole occupancy update must be *tick-identical* to
 * the seed implementations (tests/reference/seed_models.h) — the
 * rewrite is a pure host-speed optimization with no observable timing
 * change. These tests replay deterministic pseudo-random message
 * schedules on meshes from 4x4 to 16x16 and compare every SendResult,
 * every final link reservation, and the full delivery schedule.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <tuple>
#include <vector>

#include "noc/network.h"
#include "reference/seed_models.h"
#include "sim/config.h"
#include "sim/event_queue.h"

namespace vnpu {
namespace {

using noc::MeshTopology;
using noc::Network;
using noc::RouteOverride;
using noc::SendResult;

struct Msg {
    Tick start;
    int src;
    int dst;
    std::uint64_t bytes;
    VmId vm;
    int tag;
};

/** Deterministic message schedule: mixed sizes from 1 B to ~8 MiB. */
std::vector<Msg>
make_schedule(int nodes, int count, std::uint64_t rng_seed)
{
    static const std::uint64_t kSizes[] = {
        1,       64,      2048,    2049,          5000,
        64_KiB,  300000,  1_MiB,   8_MiB + 1234,
    };
    seed::SeedLcg lcg(rng_seed);
    std::vector<Msg> msgs;
    Tick t = 0;
    for (int i = 0; i < count; ++i) {
        t += lcg.next_below(5000);
        Msg m;
        m.start = t;
        m.src = static_cast<int>(lcg.next_below(nodes));
        m.dst = static_cast<int>(lcg.next_below(nodes));
        m.bytes = kSizes[lcg.next_below(std::size(kSizes))];
        m.vm = static_cast<VmId>(lcg.next_below(8));
        m.tag = static_cast<int>(lcg.next_below(64));
        msgs.push_back(m);
    }
    return msgs;
}

/** One delivery observed through the event queue. */
using Delivery = std::tuple<Tick, int, int, std::uint64_t, int>;

struct RunTrace {
    std::vector<SendResult> results;
    std::vector<Tick> final_link_busy;
    std::vector<Delivery> deliveries;
    std::uint64_t packets = 0;
};

RunTrace
run_fast(const SocConfig& cfg, const std::vector<Msg>& msgs)
{
    EventQueue eq;
    MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    Network net(cfg, topo, eq);
    RunTrace tr;
    net.set_deliver_callback([&](int dst, int src, std::uint64_t bytes,
                                 int tag, VmId, bool) {
        tr.deliveries.emplace_back(eq.now(), dst, src, bytes, tag);
    });
    for (const Msg& m : msgs)
        tr.results.push_back(
            net.send(m.start, m.src, m.dst, m.bytes, m.vm, m.tag));
    eq.run();
    for (int a = 0; a < topo.num_nodes(); ++a)
        for (noc::Direction d : {noc::Direction::kEast, noc::Direction::kWest,
                                 noc::Direction::kNorth,
                                 noc::Direction::kSouth}) {
            int b = topo.neighbor(a, d);
            if (b != kInvalidCore)
                tr.final_link_busy.push_back(net.link_busy_until(a, b));
        }
    tr.packets = net.stats().packets.value();
    return tr;
}

RunTrace
run_seed(const SocConfig& cfg, const std::vector<Msg>& msgs)
{
    seed::SeedEventQueue eq;
    MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    seed::SeedNoc<> net(cfg, topo, eq);
    RunTrace tr;
    net.set_deliver_callback([&](int dst, int src, std::uint64_t bytes,
                                 int tag, VmId, bool) {
        tr.deliveries.emplace_back(eq.now(), dst, src, bytes, tag);
    });
    for (const Msg& m : msgs)
        tr.results.push_back(
            net.send(m.start, m.src, m.dst, m.bytes, m.vm, m.tag));
    eq.run();
    for (int a = 0; a < topo.num_nodes(); ++a)
        for (noc::Direction d : {noc::Direction::kEast, noc::Direction::kWest,
                                 noc::Direction::kNorth,
                                 noc::Direction::kSouth}) {
            int b = topo.neighbor(a, d);
            if (b != kInvalidCore)
                tr.final_link_busy.push_back(net.link_busy_until(a, b));
        }
    tr.packets = net.packets();
    return tr;
}

void
expect_identical(const RunTrace& fast, const RunTrace& seed_tr)
{
    ASSERT_EQ(fast.results.size(), seed_tr.results.size());
    for (std::size_t i = 0; i < fast.results.size(); ++i) {
        EXPECT_EQ(fast.results[i].sender_free, seed_tr.results[i].sender_free)
            << "message " << i;
        EXPECT_EQ(fast.results[i].delivered, seed_tr.results[i].delivered)
            << "message " << i;
        EXPECT_EQ(fast.results[i].hops, seed_tr.results[i].hops)
            << "message " << i;
    }
    EXPECT_EQ(fast.final_link_busy, seed_tr.final_link_busy);
    EXPECT_EQ(fast.deliveries, seed_tr.deliveries);
    EXPECT_EQ(fast.packets, seed_tr.packets);
}

class GoldenTraceTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(GoldenTraceTest, TickIdenticalToSeed)
{
    const int dim = std::get<0>(GetParam());
    const bool relay = std::get<1>(GetParam());
    SocConfig cfg = SocConfig::Fpga();
    cfg.mesh_x = dim;
    cfg.mesh_y = dim;
    cfg.noc_relay_store_forward = relay;
    std::vector<Msg> msgs =
        make_schedule(dim * dim, 400, 0x9E3779B97F4A7C15ull + dim);
    expect_identical(run_fast(cfg, msgs), run_seed(cfg, msgs));
}

INSTANTIATE_TEST_SUITE_P(
    Meshes, GoldenTraceTest,
    ::testing::Combine(::testing::Values(4, 8, 12, 16),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& p) {
        return std::to_string(std::get<0>(p.param)) + "x" +
               std::to_string(std::get<0>(p.param)) +
               (std::get<1>(p.param) ? "Relay" : "Wormhole");
    });

TEST(GoldenRouteOverrideTest, DenseTableMatchesSeedMap)
{
    MeshTopology topo(8, 8);
    // L-shaped, rectangular, single-row and near-full regions.
    std::vector<CoreSet> regions;
    {
        CoreSet l;
        for (int y = 0; y < 6; ++y)
            l |= core_bit(topo.id_of(0, y));
        for (int x = 0; x < 5; ++x)
            l |= core_bit(topo.id_of(x, 5));
        regions.push_back(l);
    }
    {
        CoreSet rect;
        for (int y = 2; y < 6; ++y)
            for (int x = 3; x < 8; ++x)
                rect |= core_bit(topo.id_of(x, y));
        regions.push_back(rect);
    }
    {
        CoreSet row;
        for (int x = 0; x < 8; ++x)
            row |= core_bit(topo.id_of(x, 1));
        regions.push_back(row);
    }
    regions.push_back(CoreSet::first_n(64)); // all 64 cores

    for (const CoreSet& region : regions) {
        RouteOverride fast = RouteOverride::build_confined(topo, region);
        seed::SeedRouteOverride ref =
            seed::SeedRouteOverride::build_confined(topo, region);
        EXPECT_EQ(fast.size(), ref.size());
        for (int cur = 0; cur < topo.num_nodes(); ++cur)
            for (int dst = 0; dst < topo.num_nodes(); ++dst)
                EXPECT_EQ(fast.next_hop(cur, dst), ref.next_hop(cur, dst))
                    << "cur=" << cur << " dst=" << dst;
    }
}

TEST(GoldenRouteOverrideTest, ConfinedSendsMatchSeed)
{
    SocConfig cfg = SocConfig::Fpga();
    cfg.mesh_x = 8;
    cfg.mesh_y = 8;
    MeshTopology topo(8, 8);
    CoreSet region;
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 3; ++x)
            region |= core_bit(topo.id_of(x, y));
    region |= core_bit(topo.id_of(3, 3)); // bump for non-rectangular shape

    RouteOverride fast_ov = RouteOverride::build_confined(topo, region);
    seed::SeedRouteOverride seed_ov =
        seed::SeedRouteOverride::build_confined(topo, region);

    EventQueue eq;
    Network fast_net(cfg, topo, eq);
    seed::SeedEventQueue seq;
    seed::SeedNoc<> seed_net(cfg, topo, seq);

    std::vector<int> nodes;
    for (int id = 0; id < topo.num_nodes(); ++id)
        if (region & core_bit(id))
            nodes.push_back(id);

    Tick t = 0;
    for (int src : nodes)
        for (int dst : nodes) {
            SendResult f =
                fast_net.send(t, src, dst, 10000, 1, 0, &fast_ov);
            SendResult s =
                seed_net.send(t, src, dst, 10000, 1, 0, &seed_ov);
            EXPECT_EQ(f.sender_free, s.sender_free);
            EXPECT_EQ(f.delivered, s.delivered);
            EXPECT_EQ(f.hops, s.hops);
            t += 1000;
        }
}

TEST(GoldenDeterminismTest, TwoRunsProduceIdenticalTraces)
{
    SocConfig cfg = SocConfig::Fpga();
    cfg.mesh_x = 8;
    cfg.mesh_y = 8;
    cfg.noc_relay_store_forward = false;
    std::vector<Msg> msgs = make_schedule(64, 600, 42);
    RunTrace a = run_fast(cfg, msgs);
    RunTrace b = run_fast(cfg, msgs);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].sender_free, b.results[i].sender_free);
        EXPECT_EQ(a.results[i].delivered, b.results[i].delivered);
    }
    EXPECT_EQ(a.final_link_busy, b.final_link_busy);
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(a.packets, b.packets);
}

TEST(GoldenEventQueueTest, ExecutionTraceMatchesSeedHeap)
{
    // Random schedule mixing same-tick bursts, near-future events and
    // far-future events that cross the calendar window boundary, plus
    // callbacks that schedule follow-ups.
    auto drive = [](auto& eq) {
        std::vector<std::pair<Tick, int>> trace;
        seed::SeedLcg lcg(7);
        for (int i = 0; i < 500; ++i) {
            Tick when = lcg.next_below(200000); // well beyond one window
            eq.schedule(when, [&trace, &eq, i] {
                trace.emplace_back(eq.now(), i);
                if (i % 3 == 0) {
                    eq.schedule_in(17, [&trace, &eq, i] {
                        trace.emplace_back(eq.now(), 100000 + i);
                    });
                }
                if (i % 7 == 0) {
                    eq.schedule(eq.now(), [&trace, &eq, i] {
                        trace.emplace_back(eq.now(), 200000 + i);
                    });
                }
            });
        }
        eq.run();
        return trace;
    };
    EventQueue fast;
    seed::SeedEventQueue ref;
    EXPECT_EQ(drive(fast), drive(ref));
}

} // namespace
} // namespace vnpu
