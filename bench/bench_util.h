/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 */

#ifndef VNPU_BENCH_BENCH_UTIL_H
#define VNPU_BENCH_BENCH_UTIL_H

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace vnpu::bench {

/**
 * Opt-in tracing for a harness run: `--trace out.json` (or
 * `--trace=out.json`) installs a ChromeTraceWriter as the global sink
 * for the harness's lifetime. Without the flag this is inert and the
 * run stays on the zero-overhead path. Status lines go to stderr so
 * stdout remains byte-identical with an untraced run's golden output.
 */
class TraceSession {
  public:
    TraceSession(int argc, char** argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--trace" && i + 1 < argc)
                path_ = argv[++i];
            else if (a.rfind("--trace=", 0) == 0)
                path_ = a.substr(8);
        }
        if (path_.empty())
            return;
        writer_ = std::make_unique<obs::ChromeTraceWriter>(path_);
        if (!writer_->ok()) {
            std::fprintf(stderr, "[trace: cannot open %s]\n",
                         path_.c_str());
            writer_.reset();
            return;
        }
        obs::set_sink(writer_.get());
    }

    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    ~TraceSession()
    {
        if (!writer_)
            return;
        obs::set_sink(nullptr);
        writer_->close();
        std::fprintf(stderr, "[trace: %llu events -> %s]\n",
                     static_cast<unsigned long long>(writer_->num_events()),
                     path_.c_str());
    }

    bool active() const { return writer_ != nullptr; }

  private:
    std::string path_;
    std::unique_ptr<obs::ChromeTraceWriter> writer_;
};

/**
 * Opt-in sim-time metrics for a harness run: `--metrics STEM` (or
 * `--metrics=STEM`) installs a MetricsSampler for the harness's
 * lifetime; every Machine the harness builds attaches itself. The
 * sampling interval defaults to 1000 ticks and can be overridden with
 * `--metrics-interval N`. On exit the timeline is written as
 * `STEM.csv`, `STEM.json`, a Prometheus snapshot `STEM.prom`, and the
 * per-run link heatmaps `STEM_heatmap.json`. Same contract as
 * TraceSession: inert without the flag, status to stderr only.
 */
class MetricsSession {
  public:
    MetricsSession(int argc, char** argv)
    {
        Tick interval = 1000;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--metrics" && i + 1 < argc)
                stem_ = argv[++i];
            else if (a.rfind("--metrics=", 0) == 0)
                stem_ = a.substr(10);
            else if (a == "--metrics-interval" && i + 1 < argc)
                interval = std::strtoull(argv[++i], nullptr, 10);
            else if (a.rfind("--metrics-interval=", 0) == 0)
                interval = std::strtoull(a.c_str() + 19, nullptr, 10);
        }
        if (stem_.empty())
            return;
        sampler_ = std::make_unique<obs::MetricsSampler>(interval);
        obs::set_metrics(sampler_.get());
    }

    MetricsSession(const MetricsSession&) = delete;
    MetricsSession& operator=(const MetricsSession&) = delete;

    ~MetricsSession()
    {
        if (!sampler_)
            return;
        obs::set_metrics(nullptr);
        write_file(stem_ + ".csv",
                   [&](std::ostream& os) { sampler_->write_csv(os); });
        write_file(stem_ + ".json",
                   [&](std::ostream& os) { sampler_->write_json(os); });
        write_file(stem_ + ".prom",
                   [&](std::ostream& os) { sampler_->write_prom(os); });
        write_file(stem_ + "_heatmap.json", [&](std::ostream& os) {
            sampler_->write_heatmap_json(os);
        });
        std::fprintf(stderr,
                     "[metrics: %llu samples over %d run(s) -> %s.{csv,"
                     "json,prom} + %s_heatmap.json]\n",
                     static_cast<unsigned long long>(
                         sampler_->num_samples()),
                     sampler_->num_runs(), stem_.c_str(), stem_.c_str());
    }

    bool active() const { return sampler_ != nullptr; }

  private:
    template <typename Fn>
    void
    write_file(const std::string& path, Fn fn)
    {
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "[metrics: cannot open %s]\n",
                         path.c_str());
            return;
        }
        fn(os);
    }

    std::string stem_;
    std::unique_ptr<obs::MetricsSampler> sampler_;
};

/**
 * Opt-in host-side self-profiling: `--profile` installs a Profiler for
 * the harness's lifetime and prints its report (per-scope wall-clock
 * table, per-thread occupancy, coverage vs the session's own wall
 * time) to stderr on exit. `--profile=FILE` additionally writes the
 * machine-readable JSON report. Inert without the flag; the stdout
 * golden output is untouched either way.
 */
class ProfileSession {
  public:
    ProfileSession(int argc, char** argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--profile")
                enabled_ = true;
            else if (a.rfind("--profile=", 0) == 0) {
                enabled_ = true;
                json_path_ = a.substr(10);
            }
        }
        if (!enabled_)
            return;
        profiler_ = std::make_unique<obs::Profiler>();
        obs::set_profiler(profiler_.get());
        t0_ = std::chrono::steady_clock::now();
    }

    ProfileSession(const ProfileSession&) = delete;
    ProfileSession& operator=(const ProfileSession&) = delete;

    ~ProfileSession()
    {
        if (!profiler_)
            return;
        const auto dt = std::chrono::steady_clock::now() - t0_;
        const std::uint64_t wall_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count());
        obs::set_profiler(nullptr);
        std::ostringstream text;
        profiler_->write_text(text, wall_ns);
        std::fprintf(stderr, "%s", text.str().c_str());
        if (!json_path_.empty()) {
            std::ofstream os(json_path_);
            if (os)
                profiler_->write_json(os, wall_ns);
            else
                std::fprintf(stderr, "[profile: cannot open %s]\n",
                             json_path_.c_str());
        }
    }

    bool active() const { return profiler_ != nullptr; }

  private:
    bool enabled_ = false;
    std::string json_path_;
    std::unique_ptr<obs::Profiler> profiler_;
    std::chrono::steady_clock::time_point t0_;
};

/** JSON string-literal escaping for names/labels that reach write(). */
inline std::string
json_escape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", u);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/**
 * Machine-readable mirror of a harness's printf tables, in the same
 * shape as BENCH_noc.json: `{"bench": ..., "cases": [{...}, ...]}`.
 * Each case is one flat object of a name plus (optionally) string
 * fields and numeric fields, so CI can diff reproduced numbers against
 * the paper across PRs.
 */
class JsonReport {
  public:
    /**
     * `stem` names the output file (`BENCH_<stem>.json`) and, unless a
     * distinct `label` is given, the top-level "bench" field too.
     */
    explicit JsonReport(std::string stem, std::string label = "")
        : stem_(std::move(stem)),
          label_(label.empty() ? stem_ : std::move(label))
    {
    }

    /** Add one case; fields keep insertion order (strings first). */
    void
    add(const std::string& name,
        std::vector<std::pair<std::string, double>> fields,
        std::vector<std::pair<std::string, std::string>> text = {})
    {
        cases_.push_back({name, std::move(text), std::move(fields)});
    }

    /** Write `BENCH_<stem>.json` into the working directory. */
    void
    write() const
    {
        std::string path = "BENCH_" + stem_ + ".json";
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"cases\": [\n",
                     json_escape(label_).c_str());
        for (std::size_t i = 0; i < cases_.size(); ++i) {
            std::fprintf(f, "    {\"name\": \"%s\"",
                         json_escape(cases_[i].name).c_str());
            for (const auto& [key, value] : cases_[i].text)
                std::fprintf(f, ", \"%s\": \"%s\"",
                             json_escape(key).c_str(),
                             json_escape(value).c_str());
            for (const auto& [key, value] : cases_[i].fields) {
                // inf/nan are not JSON tokens; emit null so a single
                // degenerate ratio cannot break the whole artifact.
                // Integral values print every digit: fleet decision
                // hashes are 48-bit integers CI diffs bit-for-bit, and
                // %.6g would silently round them.
                if (!std::isfinite(value))
                    std::fprintf(f, ", \"%s\": null",
                                 json_escape(key).c_str());
                else if (value == std::floor(value) &&
                         std::fabs(value) < 9.007199254740992e15)
                    std::fprintf(f, ", \"%s\": %.0f",
                                 json_escape(key).c_str(), value);
                else
                    std::fprintf(f, ", \"%s\": %.6g",
                                 json_escape(key).c_str(), value);
            }
            std::fprintf(f, "}%s\n",
                         i + 1 < cases_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\n[%s written]\n", path.c_str());
    }

  private:
    struct Case {
        std::string name;
        std::vector<std::pair<std::string, std::string>> text;
        std::vector<std::pair<std::string, double>> fields;
    };

    std::string stem_;
    std::string label_;
    std::vector<Case> cases_;
};

/** JSON field key from a column header: "vNPU fps" -> "vnpu_fps". */
inline std::string
json_key(const std::string& header)
{
    std::string key;
    for (char c : header) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            key += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!key.empty() && key.back() != '_')
            key += '_';
    }
    while (!key.empty() && key.back() == '_')
        key.pop_back();
    return key.empty() ? "value" : key;
}

/** Print one row of right-aligned columns. */
inline void
row(const std::vector<std::string>& cells, int width = 14)
{
    for (const std::string& c : cells)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

/**
 * A printf table that also records every row into a JsonReport, so the
 * human-readable and machine-readable outputs cannot drift. The first
 * column names the case (prefixed per table); the remaining cells are
 * parsed as leading numbers ("1.92x" -> 1.92), non-numeric cells are
 * skipped.
 */
class Table {
  public:
    Table(JsonReport& report, std::string case_prefix,
          std::vector<std::string> columns, int width = 14)
        : report_(report), prefix_(std::move(case_prefix)),
          columns_(std::move(columns)), width_(width)
    {
        row_raw(columns_);
    }

    void
    row(const std::vector<std::string>& cells)
    {
        row_raw(cells);
        std::vector<std::pair<std::string, double>> fields;
        for (std::size_t i = 1;
             i < cells.size() && i < columns_.size(); ++i) {
            char* end = nullptr;
            double v = std::strtod(cells[i].c_str(), &end);
            if (end != cells[i].c_str())
                fields.emplace_back(json_key(columns_[i]), v);
        }
        std::string name = cells.empty() ? "" : json_key(cells[0]);
        report_.add(prefix_.empty() ? name : prefix_ + "_" + name,
                    std::move(fields));
    }

  private:
    void
    row_raw(const std::vector<std::string>& cells)
    {
        bench::row(cells, width_);
    }

    JsonReport& report_;
    std::string prefix_;
    std::vector<std::string> columns_;
    int width_;
};

/** Print a banner naming the reproduced figure/table. */
inline void
banner(const std::string& id, const std::string& caption)
{
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", id.c_str(), caption.c_str());
    std::printf("================================================================\n");
}

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

inline std::string
fmt_u(unsigned long long v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%llu", v);
    return buf;
}

} // namespace vnpu::bench

#endif // VNPU_BENCH_BENCH_UTIL_H
