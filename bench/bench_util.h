/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 */

#ifndef VNPU_BENCH_BENCH_UTIL_H
#define VNPU_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace vnpu::bench {

/** Print a banner naming the reproduced figure/table. */
inline void
banner(const std::string& id, const std::string& caption)
{
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", id.c_str(), caption.c_str());
    std::printf("================================================================\n");
}

/** Print one row of right-aligned columns. */
inline void
row(const std::vector<std::string>& cells, int width = 14)
{
    for (const std::string& c : cells)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int prec = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

inline std::string
fmt_u(unsigned long long v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%llu", v);
    return buf;
}

} // namespace vnpu::bench

#endif // VNPU_BENCH_BENCH_UTIL_H
