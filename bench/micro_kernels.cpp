/**
 * @file
 * Google-benchmark micro-benchmarks of the performance-critical
 * simulator kernels: graph edit distance, connected-subset
 * enumeration, range-TLB translation, page-TLB translation, buddy
 * allocation, NoC sends and the event queue. These bound the
 * wall-clock cost of the figure harnesses (the hypervisor's mapper
 * evaluates hundreds of candidates per allocation).
 *
 * Besides the google-benchmark cases, main() self-times the fast-path
 * kernels against the seed implementations (tests/reference/
 * seed_models.h) and writes the comparison to BENCH_noc.json so the
 * perf trajectory is tracked across PRs.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "graph/enumerate.h"
#include "graph/ged.h"
#include "graph/graph.h"
#include "hyp/topology_mapper.h"
#include "mem/buddy_allocator.h"
#include "mem/page_tlb.h"
#include "mem/range_table.h"
#include "noc/network.h"
#include "reference/seed_models.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

using namespace vnpu;

static void
BM_ExactGed(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    graph::Graph a = graph::Graph::chain(n);
    graph::Graph b = graph::Graph::ring(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::exact_ged(a, b).cost);
}
BENCHMARK(BM_ExactGed)->Arg(5)->Arg(7)->Arg(9);

static void
BM_ApproxGed(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    graph::Graph a = hyp::TopologyMapper::snake_topology(n);
    graph::Graph b = graph::Graph::mesh(n / 4, 4);
    if (b.num_nodes() != n)
        b = graph::Graph::chain(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::approx_ged(a, b).cost);
}
BENCHMARK(BM_ApproxGed)->Arg(12)->Arg(24)->Arg(36);

static void
BM_EnumerateConnected(benchmark::State& state)
{
    graph::Graph mesh = graph::Graph::mesh(6, 6);
    graph::NodeMask all = graph::NodeMask::first_n(36);
    int k = static_cast<int>(state.range(0));
    for (auto _ : state) {
        std::uint64_t n = graph::count_connected_subsets(mesh, k, all,
                                                         100000);
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_EnumerateConnected)->Arg(4)->Arg(6)->Arg(8);

static void
BM_RangeTlbHit(benchmark::State& state)
{
    SocConfig cfg = SocConfig::Fpga();
    mem::RangeTable rtt;
    for (int i = 0; i < 16; ++i)
        rtt.add(0x10000 + i * 0x100000, i * 0x100000, 0x100000,
                mem::kPermRead);
    rtt.finalize();
    mem::RangeTlbTranslator tlb(cfg, rtt, 4);
    tlb.translate(0x10000, 64, mem::kPermRead);
    Addr a = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.translate(a, 64, mem::kPermRead).pa);
        a = 0x10000 + ((a + 64) & 0xFFFF);
    }
}
BENCHMARK(BM_RangeTlbHit);

static void
BM_PageTlbStream(benchmark::State& state)
{
    SocConfig cfg = SocConfig::Fpga();
    mem::PageTable pt(cfg.page_bytes);
    pt.map_range(0x10000, 0, 64ull << 20, mem::kPermRead);
    mem::PageTlbTranslator tlb(cfg, pt, static_cast<int>(state.range(0)));
    Addr a = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.translate(a, 4096, mem::kPermRead).stall);
        a = 0x10000 + ((a + 4096) % (64ull << 20));
    }
}
BENCHMARK(BM_PageTlbStream)->Arg(4)->Arg(32);

static void
BM_BuddyAllocFree(benchmark::State& state)
{
    mem::BuddyAllocator buddy(0, 1ull << 30, 64 << 10);
    for (auto _ : state) {
        auto a = buddy.alloc(1 << 20);
        benchmark::DoNotOptimize(a);
        buddy.free(*a);
    }
}
BENCHMARK(BM_BuddyAllocFree);

static void
BM_NocSend(benchmark::State& state)
{
    SocConfig cfg = SocConfig::Sim();
    EventQueue eq;
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    noc::Network net(cfg, topo, eq);
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            net.send(t, 0, 35, 64 << 10, 1, 0).delivered);
        t += 10000;
    }
}
BENCHMARK(BM_NocSend);

/** Wormhole send at 1 / 64 / 4096 routing packets per message. */
static void
BM_NocSendPackets(benchmark::State& state)
{
    SocConfig cfg = SocConfig::Sim();
    cfg.noc_relay_store_forward = false;
    EventQueue eq;
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    noc::Network net(cfg, topo, eq);
    const std::uint64_t bytes =
        cfg.packet_bytes * static_cast<std::uint64_t>(state.range(0));
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            net.send(t, 0, 35, bytes, 1, 0).delivered);
        t += 10000;
    }
}
BENCHMARK(BM_NocSendPackets)->Arg(1)->Arg(64)->Arg(4096);

/**
 * Sim-like event churn: thousands of in-flight events (a large mesh's
 * cores and messages), each carrying a NoC-delivery-sized capture and
 * scheduling a successor at a mixed near/far delay. This is the profile
 * of every figure harness's inner loop.
 */
template <typename Queue>
std::uint64_t
event_queue_workload(Queue& eq, std::uint64_t target)
{
    struct Chainer {
        Queue& eq;
        std::uint64_t target;
        std::uint64_t executed = 0;

        void
        fire(int lane, std::uint64_t a, std::uint64_t b, std::uint32_t tag)
        {
            if (++executed >= target)
                return;
            // Mix of same-tick, near and window-crossing delays.
            static constexpr Cycles kDelays[] = {0, 1, 3, 17, 120, 900,
                                                 5000};
            Cycles d = kDelays[(executed + lane) % std::size(kDelays)];
            // The capture mirrors a NoC delivery callback: a component
            // pointer plus message fields (~40 bytes).
            eq.schedule_in(d, [this, lane, a, b, tag] {
                fire(lane, a + 1, b ^ a, tag + 1);
            });
        }
    };
    Chainer c{eq, target};
    for (int i = 0; i < 4096; ++i)
        eq.schedule(static_cast<Tick>(i * 37 % 1024),
                    [&c, i] { c.fire(i, i, 2 * i, 0); });
    eq.run();
    return c.executed;
}

static void
BM_EventQueueChurn(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue eq;
        benchmark::DoNotOptimize(event_queue_workload(eq, 262144));
    }
}
BENCHMARK(BM_EventQueueChurn);

static void
BM_MapperSimilar(benchmark::State& state)
{
    noc::MeshTopology topo(6, 6);
    hyp::TopologyMapper mapper(topo);
    hyp::MappingRequest req;
    req.vtopo = hyp::TopologyMapper::snake_topology(
        static_cast<int>(state.range(0)));
    req.max_candidates = 64;
    CoreSet free = CoreSet::first_n(36).andnot(CoreSet::from_word(0x3));
    for (auto _ : state)
        benchmark::DoNotOptimize(mapper.map(req, free).ted);
}
BENCHMARK(BM_MapperSimilar)->Arg(9)->Arg(16);

/** Similar-topology mapping on a full 32x32 (1024-core) chip. */
static void
BM_MapperSimilar1024(benchmark::State& state)
{
    noc::MeshTopology topo(32, 32);
    hyp::TopologyMapper mapper(topo);
    hyp::MappingRequest req;
    req.vtopo = hyp::TopologyMapper::snake_topology(
        static_cast<int>(state.range(0)));
    req.max_candidates = 64;
    CoreSet free = CoreSet::first_n(1024).andnot(CoreSet::from_word(0x3));
    for (auto _ : state)
        benchmark::DoNotOptimize(mapper.map(req, free).ted);
}
BENCHMARK(BM_MapperSimilar1024)->Arg(16)->Arg(32);

/** Raw CoreSet kernels at full 1024-bit width. */
static void
BM_CoreSetOps(benchmark::State& state)
{
    Rng rng(0xC0DE);
    CoreSet a, b;
    for (int i = 0; i < 256; ++i) {
        a.set(static_cast<int>(rng.next_below(CoreSet::kCapacity)));
        b.set(static_cast<int>(rng.next_below(CoreSet::kCapacity)));
    }
    for (auto _ : state) {
        CoreSet c = (a & b) | a.andnot(b);
        int sum = c.count();
        for (int v : c)
            sum += v;
        benchmark::DoNotOptimize(sum);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CoreSetOps);

// ---- Seed-vs-fast comparison, emitted as BENCH_noc.json --------------
//
// The acceptance bar for the fast-path rewrite: event-queue throughput
// and the 4096-packet send must each be >= 3x over the seed kernels.
// Timed here with plain steady_clock loops (best of kReps) so the JSON
// is self-contained and does not depend on google-benchmark's output
// format.

namespace {

using Clock = std::chrono::steady_clock;

double
best_seconds_of(int reps, const std::function<void()>& body)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = Clock::now();
        body();
        auto t1 = Clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

constexpr std::uint64_t kQueueEvents = 1 << 18;

struct CompareCase {
    std::string name;
    std::string metric;
    double seed;
    double fast;
};

std::vector<CompareCase>
run_comparisons()
{
    std::vector<CompareCase> cases;
    const int reps = 5;

    // Event-queue throughput (events/sec, higher is better).
    {
        double seed_s = best_seconds_of(reps, [] {
            seed::SeedEventQueue eq;
            event_queue_workload(eq, kQueueEvents);
        });
        double fast_s = best_seconds_of(reps, [] {
            EventQueue eq;
            event_queue_workload(eq, kQueueEvents);
        });
        cases.push_back({"event_queue_throughput", "events_per_sec",
                         kQueueEvents / seed_s, kQueueEvents / fast_s});
    }

    // CoreSet algebra + popcount + iteration vs the same logical work
    // on a raw u64 mask (the pre-widening representation): the cost of
    // carrying 1024-bit sets on the 64-core-scale paths. Both sides
    // run the identical loop shape — derive the next operand from the
    // accumulator so nothing folds to a constant.
    {
        constexpr int kOps = 200000;
        constexpr std::uint64_t kLcg = 6364136223846793005ull;
        const std::uint64_t b0 = Rng(0xC0DE).next();
        double seed_s = best_seconds_of(reps, [&] {
            std::uint64_t acc = 0, w = 0x9e3779b97f4a7c15ull;
            for (int i = 0; i < kOps; ++i) {
                std::uint64_t a = w, b = b0;
                std::uint64_t both = a & b;
                std::uint64_t either = a | b;
                acc += static_cast<std::uint64_t>(
                    __builtin_popcountll(both));
                std::uint64_t m = either;
                while (m) {
                    acc += static_cast<std::uint64_t>(
                        __builtin_ctzll(m));
                    m &= m - 1;
                }
                w = w * kLcg + acc;
            }
            benchmark::DoNotOptimize(acc);
        });
        const CoreSet cb2 = CoreSet::from_word(b0);
        double fast_s = best_seconds_of(reps, [&] {
            std::uint64_t acc = 0, w = 0x9e3779b97f4a7c15ull;
            for (int i = 0; i < kOps; ++i) {
                CoreSet a = CoreSet::from_word(w);
                CoreSet both = a & cb2;
                CoreSet either = a | cb2;
                acc += static_cast<std::uint64_t>(both.count());
                for (int v : either)
                    acc += static_cast<std::uint64_t>(v);
                w = w * kLcg + acc;
            }
            benchmark::DoNotOptimize(acc);
        });
        cases.push_back({"coreset_ops_64bit_sets", "ops_per_sec",
                         kOps / seed_s, kOps / fast_s});
    }

    // Mapper throughput: the old 64-core ceiling (8x8) vs the newly
    // reachable 1024-core chip (32x32), similar-topology strategy.
    {
        hyp::MappingRequest req;
        req.vtopo = hyp::TopologyMapper::snake_topology(16);
        req.max_candidates = 64;
        const int maps = 3;
        noc::MeshTopology topo64(8, 8);
        hyp::TopologyMapper mapper64(topo64);
        CoreSet free64 = CoreSet::first_n(64);
        double seed_s = best_seconds_of(reps, [&] {
            for (int i = 0; i < maps; ++i)
                benchmark::DoNotOptimize(mapper64.map(req, free64).ted);
        });
        noc::MeshTopology topo1k(32, 32);
        hyp::TopologyMapper mapper1k(topo1k);
        CoreSet free1k = CoreSet::first_n(1024);
        double fast_s = best_seconds_of(reps, [&] {
            for (int i = 0; i < maps; ++i)
                benchmark::DoNotOptimize(mapper1k.map(req, free1k).ted);
        });
        cases.push_back({"mapper_similar16_64c_vs_1024c", "maps_per_sec",
                         maps / seed_s, maps / fast_s});
    }

    // Wormhole sends at 1 / 64 / 4096 packets (sends/sec).
    SocConfig cfg = SocConfig::Sim();
    cfg.noc_relay_store_forward = false;
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    for (std::uint64_t npkts : {1ull, 64ull, 4096ull}) {
        const std::uint64_t bytes = cfg.packet_bytes * npkts;
        const int iters = npkts >= 4096 ? 2000 : 20000;

        double seed_s = best_seconds_of(reps, [&] {
            seed::SeedEventQueue eq;
            seed::SeedNoc<> net(cfg, topo, eq);
            Tick t = 0;
            for (int i = 0; i < iters; ++i) {
                net.send(t, 0, 35, bytes, 1, 0);
                t += 10000;
            }
        });
        double fast_s = best_seconds_of(reps, [&] {
            EventQueue eq;
            noc::Network net(cfg, topo, eq);
            Tick t = 0;
            for (int i = 0; i < iters; ++i) {
                net.send(t, 0, 35, bytes, 1, 0);
                t += 10000;
            }
        });
        cases.push_back({"noc_send_" + std::to_string(npkts) + "pkt",
                         "sends_per_sec", iters / seed_s, iters / fast_s});
    }
    return cases;
}

void
write_json(const std::vector<CompareCase>& cases)
{
    bench::JsonReport report("noc", "noc_kernels");
    for (const CompareCase& c : cases)
        report.add(c.name,
                   {{"seed", c.seed},
                    {"fast", c.fast},
                    {"speedup", c.fast / c.seed}},
                   {{"metric", c.metric}});
    report.write();
}

} // namespace

int
main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    std::vector<CompareCase> cases = run_comparisons();
    std::printf("\nseed-vs-fast comparison (written to BENCH_noc.json):\n");
    for (const CompareCase& c : cases)
        std::printf("  %-28s %12.0f -> %12.0f %s  (%.1fx)\n",
                    c.name.c_str(), c.seed, c.fast, c.metric.c_str(),
                    c.fast / c.seed);
    write_json(cases);
    return 0;
}
