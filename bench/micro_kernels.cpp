/**
 * @file
 * Google-benchmark micro-benchmarks of the performance-critical
 * simulator kernels: graph edit distance, connected-subset
 * enumeration, range-TLB translation, page-TLB translation, buddy
 * allocation, and NoC sends. These bound the wall-clock cost of the
 * figure harnesses (the hypervisor's mapper evaluates hundreds of
 * candidates per allocation).
 */

#include <benchmark/benchmark.h>

#include "graph/enumerate.h"
#include "graph/ged.h"
#include "graph/graph.h"
#include "hyp/topology_mapper.h"
#include "mem/buddy_allocator.h"
#include "mem/page_tlb.h"
#include "mem/range_table.h"
#include "noc/network.h"
#include "sim/rng.h"

using namespace vnpu;

static void
BM_ExactGed(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    graph::Graph a = graph::Graph::chain(n);
    graph::Graph b = graph::Graph::ring(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::exact_ged(a, b).cost);
}
BENCHMARK(BM_ExactGed)->Arg(5)->Arg(7)->Arg(9);

static void
BM_ApproxGed(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    graph::Graph a = hyp::TopologyMapper::snake_topology(n);
    graph::Graph b = graph::Graph::mesh(n / 4, 4);
    if (b.num_nodes() != n)
        b = graph::Graph::chain(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::approx_ged(a, b).cost);
}
BENCHMARK(BM_ApproxGed)->Arg(12)->Arg(24)->Arg(36);

static void
BM_EnumerateConnected(benchmark::State& state)
{
    graph::Graph mesh = graph::Graph::mesh(6, 6);
    graph::NodeMask all = (graph::NodeMask{1} << 36) - 1;
    int k = static_cast<int>(state.range(0));
    for (auto _ : state) {
        std::uint64_t n = graph::count_connected_subsets(mesh, k, all,
                                                         100000);
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_EnumerateConnected)->Arg(4)->Arg(6)->Arg(8);

static void
BM_RangeTlbHit(benchmark::State& state)
{
    SocConfig cfg = SocConfig::Fpga();
    mem::RangeTable rtt;
    for (int i = 0; i < 16; ++i)
        rtt.add(0x10000 + i * 0x100000, i * 0x100000, 0x100000,
                mem::kPermRead);
    rtt.finalize();
    mem::RangeTlbTranslator tlb(cfg, rtt, 4);
    tlb.translate(0x10000, 64, mem::kPermRead);
    Addr a = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.translate(a, 64, mem::kPermRead).pa);
        a = 0x10000 + ((a + 64) & 0xFFFF);
    }
}
BENCHMARK(BM_RangeTlbHit);

static void
BM_PageTlbStream(benchmark::State& state)
{
    SocConfig cfg = SocConfig::Fpga();
    mem::PageTable pt(cfg.page_bytes);
    pt.map_range(0x10000, 0, 64ull << 20, mem::kPermRead);
    mem::PageTlbTranslator tlb(cfg, pt, static_cast<int>(state.range(0)));
    Addr a = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.translate(a, 4096, mem::kPermRead).stall);
        a = 0x10000 + ((a + 4096) % (64ull << 20));
    }
}
BENCHMARK(BM_PageTlbStream)->Arg(4)->Arg(32);

static void
BM_BuddyAllocFree(benchmark::State& state)
{
    mem::BuddyAllocator buddy(0, 1ull << 30, 64 << 10);
    for (auto _ : state) {
        auto a = buddy.alloc(1 << 20);
        benchmark::DoNotOptimize(a);
        buddy.free(*a);
    }
}
BENCHMARK(BM_BuddyAllocFree);

static void
BM_NocSend(benchmark::State& state)
{
    SocConfig cfg = SocConfig::Sim();
    EventQueue eq;
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    noc::Network net(cfg, topo, eq);
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            net.send(t, 0, 35, 64 << 10, 1, 0).delivered);
        t += 10000;
    }
}
BENCHMARK(BM_NocSend);

static void
BM_MapperSimilar(benchmark::State& state)
{
    noc::MeshTopology topo(6, 6);
    hyp::TopologyMapper mapper(topo);
    hyp::MappingRequest req;
    req.vtopo = hyp::TopologyMapper::snake_topology(
        static_cast<int>(state.range(0)));
    req.max_candidates = 64;
    CoreMask free = ((CoreMask{1} << 36) - 1) & ~CoreMask{0x3};
    for (auto _ : state)
        benchmark::DoNotOptimize(mapper.map(req, free).ted);
}
BENCHMARK(BM_MapperSimilar)->Arg(9)->Arg(16);

BENCHMARK_MAIN();
