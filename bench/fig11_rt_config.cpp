/**
 * @file
 * Figure 11: configuration overhead of the routing table with different
 * numbers of NPU cores. Paper result: a few hundred cycles total
 * (availability query + table writes), linear in the core count.
 */

#include "bench_util.h"
#include "core/controller.h"
#include "noc/topology.h"
#include "sim/config.h"

using namespace vnpu;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 11",
                  "Routing-table configuration overhead vs NPU cores");

    SocConfig cfg = SocConfig::Fpga();
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    core::NpuController ctrl(cfg, topo);
    ctrl.set_hyper_mode(true);

    bench::JsonReport report("fig11_rt_config");
    bench::Table table(report, "cores",
                       {"cores", "query(clk)", "write(clk)", "total(clk)"});
    for (int n = 1; n <= 8; ++n) {
        Cycles total = ctrl.configure_routing_table(1, n);
        Cycles query = n * cfg.rt_config_query_cycles;
        Cycles write = n * cfg.rt_config_write_cycles;
        table.row({bench::fmt_u(n), bench::fmt_u(query),
                   bench::fmt_u(write), bench::fmt_u(total)});
    }
    report.write();
    std::printf("\npaper: total setup is a few hundred cycles; negligible "
                "during vNPU creation.\n");
    return 0;
}
