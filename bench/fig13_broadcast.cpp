/**
 * @file
 * Figure 13: data broadcast for virtual NPUs — vRouter (inter-core
 * connection) vs UVM-style synchronization through global memory, for
 * four kernels at sender:receiver ratios 1:1 .. 1:4. Paper result:
 * vRouter wins by ~4.2x on average and broadcast hides under kernel
 * execution, while UVM-sync can exceed kernel time at 1:4.
 */

#include <algorithm>

#include "bench_util.h"
#include "core/npu_core.h"
#include "runtime/compiler.h"
#include "runtime/machine.h"

using namespace vnpu;
using core::Instr;
using runtime::Machine;

namespace {

struct Kernel {
    const char* name;
    core::ComputeDims dims;
    std::uint64_t out_bytes;
};

/** Broadcast latency beyond kernel completion: vRouter variant. */
Tick
broadcast_vrouter(const Kernel& k, int receivers)
{
    Machine m(SocConfig::Fpga());
    core::Program sender;
    sender.push_back(Instr{});
    sender.back().op = core::Opcode::kCompute;
    sender.back().dims = k.dims;
    for (int r = 0; r < receivers; ++r)
        sender.push_back(Instr::send(1 + r, k.out_bytes, r));
    sender.push_back(Instr::halt());
    m.core(0).add_context(sender, core::ContextConfig{});
    for (int r = 0; r < receivers; ++r) {
        core::Program rx{Instr::recv(0, k.out_bytes, r), Instr::halt()};
        m.core(1 + r).add_context(rx, core::ContextConfig{});
    }
    Tick end = m.run();
    core::KernelCost cost =
        core::ComputeModel(m.config()).cost(k.dims);
    return end - cost.cycles;
}

/** Broadcast latency: UVM-style store + flags + per-receiver loads. */
Tick
broadcast_uvm(const Kernel& k, int receivers)
{
    Machine m(SocConfig::Fpga());
    core::Program sender;
    sender.push_back(Instr{});
    sender.back().op = core::Opcode::kCompute;
    sender.back().dims = k.dims;
    sender.push_back(Instr::store_global(0x10000, k.out_bytes));
    for (int r = 0; r < receivers; ++r)
        sender.push_back(
            Instr::send(1 + r, runtime::kUvmFlagBytes, r));
    sender.push_back(Instr::halt());
    m.core(0).add_context(sender, core::ContextConfig{});
    for (int r = 0; r < receivers; ++r) {
        core::Program rx{Instr::recv(0, runtime::kUvmFlagBytes, r),
                         Instr::load_global(0x10000, k.out_bytes),
                         Instr::halt()};
        m.core(1 + r).add_context(rx, core::ContextConfig{});
    }
    Tick end = m.run();
    core::KernelCost cost =
        core::ComputeModel(m.config()).cost(k.dims);
    return end - cost.cycles;
}

} // namespace

int
main(int argc, char** argv)
{
    vnpu::bench::TraceSession trace_session(argc, argv);
    vnpu::bench::MetricsSession metrics_session(argc, argv);
    vnpu::bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 13",
                  "Broadcast cost: vRouter vs UVM memory synchronization");

    const Kernel kernels[] = {
        {"Conv32hw16c_16oc3k",
         {core::ComputeKind::kConv, 0, 0, 0, 32, 32, 16, 16, 3, 0},
         32ull * 32 * 16 * 2},
        {"Matmul_128m_128k_128n",
         {core::ComputeKind::kMatmul, 128, 128, 128, 0, 0, 0, 0, 0, 0},
         128ull * 128 * 2},
        {"Conv16hw64c_128oc3k",
         {core::ComputeKind::kConv, 0, 0, 0, 16, 16, 64, 128, 3, 0},
         16ull * 16 * 128 * 2},
        {"Matmul_64m_512k_32n",
         {core::ComputeKind::kMatmul, 64, 512, 32, 0, 0, 0, 0, 0, 0},
         64ull * 32 * 2},
    };

    bench::JsonReport report("fig13_broadcast");
    double ratio_sum = 0;
    int ratio_n = 0;
    for (const Kernel& k : kernels) {
        core::KernelCost cost =
            core::ComputeModel(SocConfig::Fpga()).cost(k.dims);
        std::printf("\n%s  (computation time: %llu clk)\n", k.name,
                    static_cast<unsigned long long>(cost.cycles));
        bench::Table table(report, k.name,
                           {"ratio", "vRouter(clk)", "UVM-sync(clk)",
                            "speedup", "hidden?"});
        for (int r = 1; r <= 4; ++r) {
            Tick v = broadcast_vrouter(k, r);
            Tick u = broadcast_uvm(k, r);
            double speedup = static_cast<double>(u) / std::max<Tick>(v, 1);
            ratio_sum += speedup;
            ++ratio_n;
            table.row({"1:" + std::to_string(r), bench::fmt_u(v),
                       bench::fmt_u(u), bench::fmt(speedup, 2) + "x",
                       v < cost.cycles ? "yes" : "NO"});
        }
    }
    std::printf("\naverage vRouter speedup over UVM-sync: %.2fx "
                "(paper: 4.24x)\n", ratio_sum / ratio_n);
    report.add("average", {{"vrouter_speedup", ratio_sum / ratio_n}});
    report.write();
    return 0;
}
