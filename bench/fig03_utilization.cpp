/**
 * @file
 * Figure 3 (background): overall FLOPS utilization of ML workloads on
 * a large NPU at batch sizes 1/8/32. Paper observation: most
 * traditional models use well under 50% of the chip's FLOPS even at
 * larger batch sizes — the motivation for NPU virtualization.
 */

#include "bench_util.h"
#include "hyp/hypervisor.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;
using runtime::LaunchOptions;
using runtime::Machine;
using runtime::WorkloadLauncher;

namespace {

double
utilization(const std::string& name, int batch)
{
    Machine m(SocConfig::Sim());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = 36; // the whole chip, like a dedicated TPU
    spec.memory_bytes = 8ull << 30;
    virt::VirtualNpu& v = hv.create(spec);
    WorkloadLauncher l(m);
    LaunchOptions opt;
    opt.iterations = 80;
    return l.run_single(v, workload::by_name(name, batch), opt)
        .flops_utilization;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 3",
                  "FLOPS utilization on a 36-core chip, by batch size");
    bench::JsonReport report("fig03_utilization");
    bench::Table table(report, "util_pct",
                       {"model", "batch=1", "batch=8", "batch=32"});
    for (const char* name : {"bert", "dlrm", "efficientnet", "alexnet",
                             "resnet18", "retinanet", "resnet50"}) {
        table.row({name, bench::fmt(100 * utilization(name, 1), 1) + "%",
                   bench::fmt(100 * utilization(name, 8), 1) + "%",
                   bench::fmt(100 * utilization(name, 32), 1) + "%"});
    }
    report.write();
    std::printf("\npaper: the majority of traditional ML models stay "
                "below 50%% of the chip's FLOPS.\n");
    return 0;
}
