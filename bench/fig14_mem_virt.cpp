/**
 * @file
 * Figure 14: normalized performance of ML workloads under different
 * memory-virtualization methods — physical memory (ideal), vChunk
 * (ours), and the page-based IOTLB with 32 and 4 entries. Weights
 * stream from HBM every iteration (the models far exceed the FPGA
 * prototype's 4 MB SRAM), so translation sits on the critical path.
 * Paper result: IOTLB4 ~20% loss, IOTLB32 ~9.2%, vChunk < 4.3%.
 */

#include "bench_util.h"
#include "hyp/hypervisor.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;
using runtime::LaunchOptions;
using runtime::Machine;
using runtime::WorkloadLauncher;
using runtime::XlatMode;

namespace {

double
run_fps(const workload::Model& model, XlatMode xlat, int entries)
{
    Machine m(SocConfig::Fpga());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = 8;
    spec.memory_bytes = 512ull << 20;
    virt::VirtualNpu& v = hv.create(spec);
    WorkloadLauncher l(m);
    LaunchOptions opt;
    opt.iterations = 4;
    opt.force_stream_weights = true;
    opt.xlat = xlat;
    opt.tlb_entries = entries;
    opt.apply_bw_cap = false; // isolate the translation effect
    return l.run_single(v, model, opt).fps;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 14",
                  "Normalized fps under memory-virtualization methods");
    bench::JsonReport report("fig14_mem_virt");
    bench::Table table(report, "norm_fps",
                       {"model", "PhysMem", "vChunk", "IOTLB32", "IOTLB4"});

    double loss_vchunk = 0, loss_32 = 0, loss_4 = 0;
    int n = 0;
    for (const char* name : {"alexnet", "resnet18", "googlenet",
                             "mobilenet", "yololite", "transformer"}) {
        workload::Model model = workload::by_name(name);
        double phys = run_fps(model, XlatMode::kPhysical, 4);
        double ours = run_fps(model, XlatMode::kVChunk, 4);
        double p32 = run_fps(model, XlatMode::kPageTlb, 32);
        double p4 = run_fps(model, XlatMode::kPageTlb, 4);
        table.row({name, bench::fmt(1.0, 3), bench::fmt(ours / phys, 3),
                   bench::fmt(p32 / phys, 3), bench::fmt(p4 / phys, 3)});
        loss_vchunk += 1.0 - ours / phys;
        loss_32 += 1.0 - p32 / phys;
        loss_4 += 1.0 - p4 / phys;
        ++n;
    }
    std::printf("\naverage overhead vs physical: vChunk %.1f%%, "
                "IOTLB32 %.1f%%, IOTLB4 %.1f%%\n",
                100 * loss_vchunk / n, 100 * loss_32 / n,
                100 * loss_4 / n);
    std::printf("paper: vChunk <4.3%% (4 range-TLB entries), "
                "IOTLB32 ~9.2%%, IOTLB4 ~20%%.\n");
    report.add("average_overhead_pct",
               {{"vchunk", 100 * loss_vchunk / n},
                {"iotlb32", 100 * loss_32 / n},
                {"iotlb4", 100 * loss_4 / n}});
    report.write();
    return 0;
}
