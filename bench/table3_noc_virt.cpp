/**
 * @file
 * Table 3: NoC virtualization micro-test — send/receive completion
 * clocks for 2/10/20/30 routing packets (2048 B each), bare metal vs
 * through the NoC vRouter. Paper result: vRouter adds only a small
 * constant (routing-table lookup), i.e. 1-2% at larger transfers.
 */

#include "bench_util.h"
#include "core/npu_core.h"
#include "hyp/hypervisor.h"
#include "runtime/machine.h"

using namespace vnpu;
using core::Instr;
using runtime::Machine;

namespace {

struct Timing {
    Tick send_done;
    Tick recv_done;
};

/** One send/recv of `packets` routing packets between adjacent cores. */
Timing
measure(std::uint64_t packets, bool virtualized)
{
    SocConfig cfg = SocConfig::Fpga();
    Machine m(cfg);
    std::uint64_t bytes = packets * cfg.packet_bytes;

    core::Program sender{Instr::send(1, bytes, 0), Instr::halt()};
    core::Program receiver{Instr::recv(0, bytes, 0), Instr::halt()};

    std::unique_ptr<virt::NocVRouter> vr0, vr1;
    std::unique_ptr<hyp::Hypervisor> hv;
    virt::VirtualNpu* vnpu = nullptr;
    core::ContextConfig c0, c1;
    if (virtualized) {
        hv = std::make_unique<hyp::Hypervisor>(m.config(), m.topology(),
                                               m.controller());
        hyp::VnpuSpec spec;
        spec.topo = graph::Graph::chain(2);
        vnpu = &hv->create(spec);
        vr0 = std::make_unique<virt::NocVRouter>(cfg, vnpu->routing_table(),
                                                 vnpu->confined_routes());
        vr1 = std::make_unique<virt::NocVRouter>(cfg, vnpu->routing_table(),
                                                 vnpu->confined_routes());
        c0.vm = c1.vm = vnpu->vm();
        c0.vrouter = vr0.get();
        c1.vrouter = vr1.get();
    }
    CoreId p0 = vnpu ? vnpu->phys_of(0) : 0;
    CoreId p1 = vnpu ? vnpu->phys_of(1) : 1;
    if (!virtualized) {
        // Bare metal: programs address physical cores directly.
        sender[0].peer = p1;
        receiver[0].peer = p0;
    }
    m.core(p0).add_context(sender, c0);
    m.core(p1).add_context(receiver, c1);
    m.run();
    return {m.core(p0).context_stats(0).done_tick,
            m.core(p1).context_stats(0).done_tick};
}

} // namespace

int
main(int argc, char** argv)
{
    vnpu::bench::TraceSession trace_session(argc, argv);
    vnpu::bench::MetricsSession metrics_session(argc, argv);
    vnpu::bench::ProfileSession profile_session(argc, argv);
    bench::banner("Table 3",
                  "NoC virtualization: send/recv clocks, bare vs vRouter");
    bench::JsonReport report("table3_noc_virt");
    bench::Table table(report, "packets",
                       {"packets", "Send", "Receive", "vSend", "vReceive",
                        "overhead"});
    for (std::uint64_t packets : {2, 10, 20, 30}) {
        Timing bare = measure(packets, false);
        Timing virt = measure(packets, true);
        double oh = 100.0 *
                    (static_cast<double>(virt.recv_done) / bare.recv_done -
                     1.0);
        table.row({bench::fmt_u(packets), bench::fmt_u(bare.send_done),
                   bench::fmt_u(bare.recv_done),
                   bench::fmt_u(virt.send_done),
                   bench::fmt_u(virt.recv_done),
                   bench::fmt(oh, 1) + "%"});
    }
    report.write();
    std::printf("\npaper: 309/311 -> 342/372 clk at 2 packets, "
                "4236/4240 -> 4240/4308 at 30 (1-2%% overhead).\n");
    return 0;
}
