/**
 * @file
 * Exact-mapping scale sweep: the complete isomorphism search (sliding
 * rectangles, polyomino slide, anchored VF2) against rectangular and
 * non-rectangular (L/T/cross/snake) requests on 256- and 1024-core
 * meshes, fully free and under two fragmentation patterns. Before this
 * search existed, every non-rectangular row below failed at scale —
 * the topology lock-in baseline looked worse than it is.
 *
 * Reports per (mesh, occupancy, shape): verdict, TED, search steps,
 * anchors/candidates considered, and whether the budget was exhausted,
 * as a printf table plus BENCH_sweep_exact_scale.json. All numbers are
 * deterministic (search effort, not wall clock), so harness output is
 * byte-identical across runs.
 */

#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "hyp/topology_mapper.h"
#include "reference/polyomino_shapes.h"
#include "sim/rng.h"

using namespace vnpu;
using hyp::MappingRequest;
using hyp::MappingResult;
using hyp::MappingStrategy;
using hyp::TopologyMapper;
using testref::cross_shape;
using testref::l_shape;
using testref::shape_graph;
using testref::t_shape;

namespace {

struct Occupancy {
    const char* name;
    CoreSet free;
};

std::vector<Occupancy>
occupancies(int side)
{
    const int n = side * side;
    std::vector<Occupancy> out;
    out.push_back({"free", CoreSet::first_n(n)});

    // Scattered holes across every word of the set.
    CoreSet holes = CoreSet::first_n(n);
    for (int id = 0; id < n; id += 37)
        holes.reset(id);
    out.push_back({"holes37", holes});

    // Heavy deterministic churn damage: random tenants carved out.
    CoreSet frag = CoreSet::first_n(n);
    Rng rng(0xf7a9 + static_cast<std::uint64_t>(side));
    for (int i = 0; i < n / 3; ++i)
        frag.reset(static_cast<int>(rng.next_below(n)));
    out.push_back({"frag33", frag});
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Exact-mapping scale sweep",
                  "Complete isomorphism search: rect + polyomino slide "
                  "+ anchored VF2 on 256/1024-core meshes");
    bench::JsonReport report("sweep_exact_scale");

    struct Shape {
        const char* name;
        graph::Graph g;
    };
    std::vector<Shape> shapes;
    shapes.push_back({"rect8x4", graph::Graph::mesh(8, 4)});
    shapes.push_back({"L20", shape_graph(l_shape(6, 4, 2))});
    shapes.push_back({"T22", shape_graph(t_shape(8, 5, 2))});
    shapes.push_back({"cross20", shape_graph(cross_shape(6, 2))});
    shapes.push_back({"L28", shape_graph(l_shape(8, 8, 2))});
    shapes.push_back({"snake27", TopologyMapper::snake_topology(27)});

    for (int side : {16, 32}) {
        noc::MeshTopology topo(side, side);
        TopologyMapper mapper(topo);
        for (const Occupancy& occ : occupancies(side)) {
            std::printf("\n%dx%d mesh, %s (%d free cores)\n", side, side,
                        occ.name, occ.free.count());
            bench::Table table(report,
                               std::to_string(side) + "x" +
                                   std::to_string(side) + "_" + occ.name,
                               {"shape", "nodes", "ok", "TED", "steps",
                                "anchors", "budget?"},
                               10);
            for (const Shape& s : shapes) {
                MappingRequest req;
                req.vtopo = s.g;
                req.strategy = MappingStrategy::kExact;
                MappingResult r = mapper.map(req, occ.free);
                // Verdict cells stay numeric (1/0) so the JSON mirror
                // records them; strtod skips words.
                table.row({s.name,
                           bench::fmt_u(static_cast<unsigned long long>(
                               s.g.num_nodes())),
                           bench::fmt_u(r.ok ? 1 : 0),
                           bench::fmt(r.ted, 0),
                           bench::fmt_u(r.search_steps),
                           bench::fmt_u(r.candidates_considered),
                           bench::fmt_u(r.budget_exhausted ? 1 : 0)});
            }
        }
    }
    std::printf("\nnon-rectangular exact requests now resolve at DCRA "
                "scale; a miss is either a proof of absence or an "
                "explicit budget exhaustion.\n");
    report.write();
    return 0;
}
