/**
 * @file
 * Figure 12: latency of NPU instruction dispatch via the vRouter —
 * IBUS vs dedicated instruction NoC to cores 1..8 — compared with the
 * execution time of convolution and matmul kernels. Paper result:
 * kernel execution is 2-3 orders of magnitude longer than routing.
 */

#include "bench_util.h"
#include "core/compute.h"
#include "core/controller.h"
#include "noc/topology.h"
#include "sim/config.h"

using namespace vnpu;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 12",
                  "Instruction dispatch latency vs kernel execution time");

    SocConfig cfg = SocConfig::Fpga();
    noc::MeshTopology topo(cfg.mesh_x, cfg.mesh_y);
    core::NpuController ctrl(cfg, topo);
    core::ComputeModel cm(cfg);

    bench::JsonReport report("fig12_dispatch");
    bench::Table table(report, "", {"target", "latency(clk)"});
    table.row({"IBUS", bench::fmt_u(ctrl.dispatch_cost(
                           0, core::DispatchVia::kIbus))});
    for (int c = 0; c < cfg.num_cores(); ++c) {
        table.row({"NoC#" + std::to_string(c + 1),
                   bench::fmt_u(ctrl.dispatch_cost(
                       c, core::DispatchVia::kInoc))});
    }

    // Kernel execution times for scale (the paper's right-hand bars).
    core::KernelCost conv = cm.conv(32, 32, 16, 16, 3);
    core::KernelCost mm = cm.matmul(128, 128, 128);
    table.row({"Conv", bench::fmt_u(conv.cycles)});
    table.row({"Matmul", bench::fmt_u(mm.cycles)});
    report.write();

    double worst_dispatch = static_cast<double>(
        ctrl.dispatch_cost(cfg.num_cores() - 1, core::DispatchVia::kInoc));
    std::printf("\nkernel/dispatch ratio: conv %.0fx, matmul %.0fx "
                "(paper: 2-3 orders of magnitude)\n",
                conv.cycles / worst_dispatch, mm.cycles / worst_dispatch);
    return 0;
}
