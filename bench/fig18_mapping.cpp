/**
 * @file
 * Figures 17/18: topology-mapping strategies — similar-topology (vNPU)
 * vs straightforward zig-zag — on a partially occupied 36-core chip.
 * Reports FPS across core counts for ResNet18/34 and GPT2-s, plus the
 * realized topology edit distances. Paper result: similar mapping wins
 * by ~40% for ResNet at 28 cores, ~6% at 11 cores; GPT is insensitive
 * (zig-zag reaches ~89% of vNPU).
 */

#include "bench_util.h"
#include "hyp/hypervisor.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;
using hyp::MappingStrategy;
using runtime::LaunchOptions;
using runtime::LaunchResult;
using runtime::Machine;
using runtime::WorkloadLauncher;

namespace {

/** Pre-occupy the corners as in Figure 17 (red nodes). */
void
occupy_corners(hyp::Hypervisor& hv)
{
    hyp::VnpuSpec corner;
    corner.topo = graph::Graph::mesh(2, 2);
    corner.strategy = MappingStrategy::kExact;
    hv.create(corner); // upper-left 2x2
    hyp::VnpuSpec corner2;
    corner2.topo = graph::Graph::mesh(2, 2);
    corner2.strategy = MappingStrategy::kSimilarTopology;
    // Consume the bottom-right by requesting with only that corner
    // free is overkill; a second 2x2 lands elsewhere deterministically.
    hv.create(corner2);
}

LaunchResult
run_strategy(const std::string& model, int cores, MappingStrategy strat)
{
    Machine m(SocConfig::Sim());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    occupy_corners(hv);

    hyp::VnpuSpec spec;
    spec.num_cores = cores;
    spec.memory_bytes = 4ull << 30;
    spec.strategy = strat;
    spec.noc_isolation = (strat != MappingStrategy::kStraightforward);
    virt::VirtualNpu& v = hv.create(spec);
    WorkloadLauncher l(m);
    LaunchOptions opt;
    // Latency-critical single-stream inference (Figure 18's core
    // traces show per-iteration COMP/SEND/RECEIVE bubbles): one
    // request at a time flows through the pipeline, so every extra
    // hop of a scattered mapping lands on the critical path.
    opt.iterations = 8;
    opt.single_stream = true;
    return l.run_single(v, workload::by_name(model), opt);
}

/**
 * The topology lock-in baseline: exact mapping of the same request on
 * the same partially occupied chip. With the complete isomorphism
 * search, a snake request is admitted whenever an isomorphic region
 * survives the corner tenants; failures are genuine lock-in, not
 * sampling misses. Returns fps, or 0 when the request is rejected.
 */
double
run_exact_fps(const std::string& model, int cores)
{
    try {
        return run_strategy(model, cores, MappingStrategy::kExact).fps;
    } catch (const SimFatal&) {
        return 0.0; // topology lock-in: request rejected
    }
}

} // namespace

int
main(int argc, char** argv)
{
    vnpu::bench::TraceSession trace_session(argc, argv);
    vnpu::bench::MetricsSession metrics_session(argc, argv);
    vnpu::bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 17/18",
                  "Similar-topology vs straightforward (zig-zag) mapping");

    bench::JsonReport report("fig18_mapping");
    for (const char* model : {"resnet18", "resnet34", "gpt2-s"}) {
        std::printf("\n%s\n", model);
        bench::Table table(report, model,
                           {"cores", "vNPU fps", "zigzag fps", "gain",
                            "TED v", "TED z", "exact fps"},
                           12);
        for (int cores : {9, 11, 13, 16, 24, 28}) {
            LaunchResult sim = run_strategy(
                model, cores, MappingStrategy::kSimilarTopology);
            LaunchResult zig = run_strategy(
                model, cores, MappingStrategy::kStraightforward);
            double exact_fps = run_exact_fps(model, cores);
            table.row({bench::fmt_u(cores), bench::fmt(sim.fps, 1),
                       bench::fmt(zig.fps, 1),
                       bench::fmt(100 * (sim.fps / zig.fps - 1), 1) + "%",
                       bench::fmt(sim.mapping_ted, 0),
                       bench::fmt(zig.mapping_ted, 0),
                       bench::fmt(exact_fps, 1)});
        }
    }
    std::printf("\npaper: ResNet ~40%% gain at 28 cores, ~6%% at 11; "
                "GPT zig-zag reaches ~89%% of the vNPU mapping.\n");
    report.write();
    return 0;
}
