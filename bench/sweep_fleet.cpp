/**
 * @file
 * Fleet-scale serving sweep: N 1024-core devices under an open-loop
 * Poisson arrival stream drawn from the model-zoo tenant mix
 * (docs/fleet.md). For each placement policy and offered load, 10k
 * arrivals run through the online scheduler and the harness reports
 * the utilization-vs-p99 admission-latency frontier, plus a defrag
 * on/off comparison at the highest load showing how migration-based
 * defragmentation cuts the blocked-request rate.
 *
 * Every column in BENCH_fleet.json is simulation-deterministic —
 * decision hashes included, wall clock excluded (stderr only) — so CI
 * can diff the artifact bit-for-bit across TaskPool worker counts.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fleet/scheduler.h"
#include "sim/config.h"

using namespace vnpu;
using fleet::FleetConfig;
using fleet::FleetSimulator;
using fleet::PlacementPolicy;

namespace {

SocConfig
device_cfg()
{
    SocConfig c = SocConfig::Sim();
    c.mesh_x = 32;
    c.mesh_y = 32;
    c.hbm_channels = 32;
    // Confined-route tables grow with region^2: the 256-core gpt2-l
    // rectangle needs ~128 KiB of meta tables, far past the 16 KiB
    // default sized for FPGA-scale chips (docs/fleet.md).
    c.meta_zone_bytes = 256 * 1024;
    return c;
}

FleetConfig
base_cfg(PlacementPolicy policy, Tick mean_gap, bool defrag)
{
    FleetConfig cfg;
    cfg.num_devices = 4;
    cfg.device = device_cfg();
    cfg.seed = 42;
    cfg.policy = policy;
    cfg.arrival.model = fleet::ArrivalModel::kPoisson;
    cfg.arrival.mean_gap = mean_gap;
    cfg.max_arrivals = 10'000;
    cfg.defrag = defrag;
    return cfg;
}

struct RunResult {
    double util_mean = 0.0;
    double util_peak = 0.0;
    double p50_wait = 0.0;
    double p99_wait = 0.0;
    double blocked_pct = 0.0;
    std::uint64_t migrations = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t hash48 = 0;
};

RunResult
run_fleet(const FleetConfig& cfg)
{
    const auto wall0 = std::chrono::steady_clock::now();
    FleetSimulator sim(cfg);
    sim.run();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    std::fprintf(stderr,
                 "[fleet %s gap=%llu defrag=%d: %.0f ms wall]\n",
                 to_string(cfg.policy),
                 static_cast<unsigned long long>(cfg.arrival.mean_gap),
                 cfg.defrag ? 1 : 0, wall_ms);

    const fleet::FleetStats& st = sim.stats();
    RunResult r;
    r.util_mean = sim.utilization_mean();
    r.util_peak = sim.utilization_peak();
    r.p50_wait = st.admission_wait.quantile(0.5);
    r.p99_wait = st.admission_wait.quantile(0.99);
    const double arrivals =
        static_cast<double>(st.arrivals.value());
    r.blocked_pct =
        arrivals > 0
            ? 100.0 * static_cast<double>(st.rejected.value()) / arrivals
            : 0.0;
    r.migrations = st.migrations.value();
    r.preemptions = st.preemptions.value();
    r.hash48 = sim.decision_hash48();
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Fleet sweep",
                  "Open-loop serving on 4x 1024-core devices: placement "
                  "policy frontier + migration/defrag payoff");
    bench::JsonReport report("fleet");

    // Offered load ~= E[cores x lifetime] / (mean_gap x fleet cores):
    // the default mix demands ~6.1M core-ticks per arrival, so on 4096
    // cores gap 3000 is ~0.5, 2000 is ~0.75, 1500 is ~1.0 (saturation).
    const std::vector<Tick> gaps{3000, 2000, 1500};
    const std::vector<PlacementPolicy> policies{
        PlacementPolicy::kFirstFit, PlacementPolicy::kBestFitTed,
        PlacementPolicy::kLoadBalanced};

    std::printf("\nutilization vs p99 admission latency, 10k arrivals, "
                "defrag on\n");
    bench::Table frontier(report, "frontier",
                          {"policy/gap", "util mean", "util peak",
                           "p50 wait", "p99 wait", "blocked %",
                           "migrations", "hash48"},
                          18);
    for (PlacementPolicy policy : policies) {
        for (Tick gap : gaps) {
            const RunResult r = run_fleet(base_cfg(policy, gap, true));
            frontier.row({std::string(to_string(policy)) + "/" +
                              std::to_string(gap),
                          bench::fmt(r.util_mean, 3),
                          bench::fmt(r.util_peak, 3),
                          bench::fmt(r.p50_wait, 0),
                          bench::fmt(r.p99_wait, 0),
                          bench::fmt(r.blocked_pct, 2),
                          bench::fmt_u(r.migrations),
                          bench::fmt_u(r.hash48)});
        }
    }

    // Defrag pays where fragmentation (not raw capacity) blocks the
    // head: at gap 2000 (~0.75 offered load) migrations carve exact
    // regions for large tenants that would otherwise time out. At full
    // saturation every core is spoken for and defrag can only shuffle,
    // so the payoff table runs at the fragmentation-bound point.
    std::printf("\ndefrag payoff under fragmentation (first-fit, "
                "gap 2000)\n");
    bench::Table defrag(report, "defrag",
                        {"defrag", "util mean", "p99 wait", "blocked %",
                         "migrations", "preempt", "hash48"},
                        18);
    double blocked_off = 0.0, blocked_on = 0.0;
    for (bool on : {false, true}) {
        const RunResult r = run_fleet(
            base_cfg(PlacementPolicy::kFirstFit, 2000, on));
        (on ? blocked_on : blocked_off) = r.blocked_pct;
        defrag.row({on ? "on" : "off", bench::fmt(r.util_mean, 3),
                    bench::fmt(r.p99_wait, 0),
                    bench::fmt(r.blocked_pct, 2),
                    bench::fmt_u(r.migrations),
                    bench::fmt_u(r.preemptions),
                    bench::fmt_u(r.hash48)});
    }

    std::printf("\nfirst-fit packs tight (higher util, worse tail); "
                "load-balanced trades utilization for latency; defrag "
                "cuts the blocked rate from %.2f%% to %.2f%% by "
                "migrating small tenants out of the way.\n",
                blocked_off, blocked_on);
    report.write();
    return 0;
}
