/**
 * @file
 * Figure 15: vNPU vs UVM-based virtual NPUs on Transformer and ResNet
 * blocks, single-instance and multi-instance. Paper result: 2.29x for
 * the Transformer block (dataflow wins), only ~5% for the ResNet block
 * (pipeline bubbles), and ~24% multi-instance degradation for UVM from
 * shared-memory contention vs negligible interference for vNPU.
 */

#include "bench_util.h"
#include "hyp/hypervisor.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;
using runtime::CommMode;
using runtime::LaunchOptions;
using runtime::Machine;
using runtime::WorkloadLauncher;

namespace {

workload::Model
block(const std::string& label)
{
    if (label == "128dim_16slen")
        return workload::transformer_block(128, 16);
    if (label == "64dim_16slen")
        return workload::transformer_block(64, 16);
    if (label == "16wh_64c")
        return workload::resnet_block(16, 64);
    return workload::resnet_block(20, 32);
}

/** Steady-state iteration clocks of one workload alone (4 cores). */
double
single_instance(const std::string& label, CommMode mode)
{
    Machine m(SocConfig::Fpga());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 256ull << 20;
    virt::VirtualNpu& v = hv.create(spec);
    WorkloadLauncher l(m);
    LaunchOptions opt;
    opt.iterations = 12;
    opt.comm = mode;
    return l.run_single(v, block(label), opt).iter_period;
}

/** Two instances side by side; returns both steady-state periods. */
std::pair<double, double>
multi_instance(const std::string& a, const std::string& b, CommMode mode)
{
    Machine m(SocConfig::Fpga());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 256ull << 20;
    virt::VirtualNpu& va = hv.create(spec);
    virt::VirtualNpu& vb = hv.create(spec);
    WorkloadLauncher l(m);
    LaunchOptions opt;
    opt.iterations = 12;
    opt.comm = mode;
    runtime::LoadedRun ra = l.load(va, block(a), opt);
    runtime::LoadedRun rb = l.load(vb, block(b), opt);
    m.run();
    return {l.collect(ra).iter_period, l.collect(rb).iter_period};
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 15",
                  "vNPU vs UVM-based virtual NPU, single & multi instance");

    const char* labels[] = {"128dim_16slen", "64dim_16slen", "16wh_64c",
                            "20wh_32c"};
    bench::JsonReport report("fig15_uvm");
    std::printf("\nSingle-instance (clocks per iteration)\n");
    {
        bench::Table table(report, "single",
                           {"block", "vNPU", "UVM", "speedup"});
        for (const char* label : labels) {
            double v = single_instance(label, CommMode::kDataflow);
            double u = single_instance(label, CommMode::kUvmSync);
            table.row({label, bench::fmt(v, 0), bench::fmt(u, 0),
                       bench::fmt(u / v, 2) + "x"});
        }
    }

    std::printf("\nMulti-instance (Transformer + ResNet concurrently)\n");
    bench::Table table(report, "multi",
                       {"block", "vNPU", "vNPU-multi", "UVM", "UVM-multi",
                        "UVM degr."});
    const char* pair_a = "128dim_16slen";
    const char* pair_b = "16wh_64c";
    auto [va_m, vb_m] = multi_instance(pair_a, pair_b, CommMode::kDataflow);
    auto [ua_m, ub_m] = multi_instance(pair_a, pair_b, CommMode::kUvmSync);
    double va_s = single_instance(pair_a, CommMode::kDataflow);
    double vb_s = single_instance(pair_b, CommMode::kDataflow);
    double ua_s = single_instance(pair_a, CommMode::kUvmSync);
    double ub_s = single_instance(pair_b, CommMode::kUvmSync);
    table.row({pair_a, bench::fmt(va_s, 0), bench::fmt(va_m, 0),
               bench::fmt(ua_s, 0), bench::fmt(ua_m, 0),
               bench::fmt(100 * (ua_m / ua_s - 1), 1) + "%"});
    table.row({pair_b, bench::fmt(vb_s, 0), bench::fmt(vb_m, 0),
               bench::fmt(ub_s, 0), bench::fmt(ub_m, 0),
               bench::fmt(100 * (ub_m / ub_s - 1), 1) + "%"});
    std::printf("\nvNPU multi-instance degradation: %.1f%% / %.1f%% "
                "(paper: negligible)\n",
                100 * (va_m / va_s - 1), 100 * (vb_m / vb_s - 1));
    std::printf("paper: Transformer 2.29x over UVM; ResNet ~5.4%%; UVM "
                "multi-instance ~24%% degradation.\n");
    report.write();
    return 0;
}
