/**
 * @file
 * Figure 16: vNPU vs MIG-based virtualization running two tenants on
 * one chip, plus bare-metal overhead (§6.3.3) and warm-up times
 * (§6.3.4).
 *
 *  - 36-core chip: GPT2-s (12 cores) + ResNet34 (24 cores).
 *  - 48-core chip: GPT2-s (12 cores) + GPT2-l (36 cores).
 *
 * MIG halves the chip into fixed partitions ({18,18} / {24,24}); a
 * request larger than a partition time-division-multiplexes physical
 * cores. Paper result: vNPU up to 1.92x for GPT (TDM hurts uniform
 * pipelines), ~1.28x for ResNet (TDM pairs high/low-load cores), <1%
 * overhead vs bare metal, warm-up proportional to memory interfaces.
 */

#include "bench_util.h"
#include "hyp/hypervisor.h"
#include "hyp/mig.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;
using runtime::LaunchOptions;
using runtime::LaunchResult;
using runtime::Machine;
using runtime::WorkloadLauncher;

namespace {

struct Tenant {
    std::string model;
    int cores;
};

struct Outcome {
    LaunchResult a, b;
};

int
iters_for(int cores)
{
    return 2 * cores + 8; // sustain beyond the pipeline depth
}

/**
 * Tenant workloads run int8-quantized weights (standard for NPU
 * inference serving). This is what lets GPT2-l's 36 decoder blocks
 * (~740 MB at int8) reside in the 36-core chip's 1080 MB SRAM, as the
 * paper's configuration requires.
 */
workload::Model
tenant_model(const Tenant& t)
{
    workload::Model m = workload::by_name(t.model);
    m.set_weight_precision(1);
    return m;
}

/** Run both tenants concurrently on a vNPU-managed chip. */
Outcome
run_vnpu(const SocConfig& cfg, const Tenant& ta, const Tenant& tb)
{
    Machine m(cfg);
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec sa, sb;
    sa.num_cores = ta.cores;
    sa.memory_bytes = 4ull << 30;
    sb.num_cores = tb.cores;
    sb.memory_bytes = 4ull << 30;
    virt::VirtualNpu& va = hv.create(sa);
    virt::VirtualNpu& vb = hv.create(sb);
    WorkloadLauncher l(m);
    LaunchOptions oa, ob;
    oa.iterations = iters_for(ta.cores);
    ob.iterations = iters_for(tb.cores);
    runtime::LoadedRun ra = l.load(va, tenant_model(ta), oa);
    runtime::LoadedRun rb = l.load(vb, tenant_model(tb), ob);
    m.run();
    return {l.collect(ra), l.collect(rb)};
}

/** Same two tenants under fixed MIG partitions. */
Outcome
run_mig(const SocConfig& cfg, const Tenant& ta, const Tenant& tb)
{
    Machine m(cfg);
    hyp::MigPartitioner mig(m.config(), m.topology(), m.controller());
    virt::VirtualNpu& va = mig.create(ta.cores, 4ull << 30);
    virt::VirtualNpu& vb = mig.create(tb.cores, 4ull << 30);
    WorkloadLauncher l(m);
    LaunchOptions oa, ob;
    oa.iterations = iters_for(ta.cores);
    ob.iterations = iters_for(tb.cores);
    runtime::LoadedRun ra = l.load(va, tenant_model(ta), oa);
    runtime::LoadedRun rb = l.load(vb, tenant_model(tb), ob);
    m.run();
    return {l.collect(ra), l.collect(rb)};
}

/** Bare-metal run of one tenant on the cores vNPU would allocate. */
double
run_bare(const SocConfig& cfg, const Tenant& t)
{
    Machine probe(cfg);
    hyp::Hypervisor hv(probe.config(), probe.topology(),
                       probe.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = t.cores;
    virt::VirtualNpu& v = hv.create(spec);
    std::vector<CoreId> cores = v.cores();

    Machine m(cfg);
    WorkloadLauncher l(m);
    LaunchOptions opt;
    opt.iterations = iters_for(t.cores);
    opt.xlat = runtime::XlatMode::kPhysical;
    runtime::LoadedRun run =
        l.load_bare(cores, tenant_model(t), opt);
    m.run();
    return l.collect(run).iter_period;
}

void
chip(bench::JsonReport& report, const char* prefix, const char* title,
     const SocConfig& cfg, const Tenant& ta, const Tenant& tb)
{
    std::printf("\n--- %s ---\n", title);
    Outcome vn = run_vnpu(cfg, ta, tb);
    Outcome mg = run_mig(cfg, ta, tb);

    bench::Table table(report, prefix,
                       {"tenant", "cores", "vNPU fps", "MIG fps",
                        "vNPU/MIG", "warmup v", "warmup m"},
                       12);
    auto line = [&](const Tenant& t, const LaunchResult& v,
                    const LaunchResult& g) {
        table.row({t.model, bench::fmt_u(t.cores), bench::fmt(v.fps, 1),
                   bench::fmt(g.fps, 1),
                   bench::fmt(v.fps / g.fps, 2) + "x",
                   bench::fmt_u(v.warmup), bench::fmt_u(g.warmup)});
    };
    line(ta, vn.a, mg.a);
    line(tb, vn.b, mg.b);

    // Bare-metal overhead of the virtualization layer (§6.3.3).
    double bare = run_bare(cfg, ta);
    Machine m0(cfg);
    hyp::Hypervisor hv0(m0.config(), m0.topology(), m0.controller());
    hyp::VnpuSpec s0;
    s0.num_cores = ta.cores;
    s0.memory_bytes = 4ull << 30;
    virt::VirtualNpu& v0 = hv0.create(s0);
    WorkloadLauncher l0(m0);
    LaunchOptions o0;
    o0.iterations = iters_for(ta.cores);
    o0.apply_bw_cap = false;
    LaunchResult alone = l0.run_single(v0, tenant_model(ta), o0);
    std::printf("virtualization overhead vs bare metal (%s): %.2f%% "
                "(paper: <1%%)\n",
                ta.model.c_str(), 100 * (alone.iter_period / bare - 1.0));
    report.add(std::string(prefix) + "_overhead",
               {{"bare_overhead_pct",
                 100 * (alone.iter_period / bare - 1.0)}});
}

} // namespace

int
main(int argc, char** argv)
{
    vnpu::bench::TraceSession trace_session(argc, argv);
    vnpu::bench::MetricsSession metrics_session(argc, argv);
    vnpu::bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 16",
                  "vNPU vs MIG: performance and warm-up, two tenants");
    bench::JsonReport report("fig16_mig");
    chip(report, "chip36", "36-core chip: GPT2-s + ResNet34",
         SocConfig::Sim(), {"gpt2-s", 12}, {"resnet34", 24});
    // GPT2-m's stages are small enough that two contexts co-reside in
    // one scratchpad under MIG TDM: the degradation is pure compute
    // serialization, the paper's ~1.92x mechanism.
    chip(report, "chip48_gpt2m",
         "48-core chip: GPT2-s + GPT2-m (36 cores requested)",
         SocConfig::Sim48(), {"gpt2-s", 12}, {"gpt2-m", 36});
    // GPT2-l's ~20 MB int8 stages cannot co-reside (2x20 MB > 30 MB
    // SPAD), so MIG TDM additionally re-streams weights and loses by
    // more than the paper's compute-only factor.
    chip(report, "chip48_gpt2l", "48-core chip: GPT2-s + GPT2-l",
         SocConfig::Sim48(), {"gpt2-s", 12}, {"gpt2-l", 36});
    std::printf("\npaper: vNPU up to 1.92x (GPT2-l under MIG TDM), "
                "1.28x average for ResNet34.\n");
    report.write();
    return 0;
}
