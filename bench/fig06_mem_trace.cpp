/**
 * @file
 * Figure 6 (design motivation): trace of accessed global-memory
 * addresses for a ResNet workload across NPU cores and iterations.
 * Demonstrates the access patterns vChunk exploits: tensor-granular
 * transfers, monotonically increasing addresses within an iteration,
 * and identical address sequences across iterations.
 */

#include <algorithm>

#include "bench_util.h"
#include "hyp/hypervisor.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;
using runtime::LaunchOptions;
using runtime::Machine;
using runtime::WorkloadLauncher;

int
main(int argc, char** argv)
{
    vnpu::bench::TraceSession trace_session(argc, argv);
    vnpu::bench::MetricsSession metrics_session(argc, argv);
    vnpu::bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 6",
                  "Global-memory address trace, ResNet on 4 cores");

    Machine m(SocConfig::Fpga());
    m.enable_trace();
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    hyp::VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 512ull << 20;
    virt::VirtualNpu& v = hv.create(spec);
    WorkloadLauncher l(m);
    LaunchOptions opt;
    opt.iterations = 3;
    opt.force_stream_weights = true;
    l.run_single(v, workload::resnet18(), opt);

    const mem::MemTraceRecorder& trace = m.trace();
    // Print a decimated series per core: iteration, tick, address.
    for (CoreId core : v.cores()) {
        std::printf("\ncore %d (virtual core %d):\n", core,
                    static_cast<int>(std::find(v.cores().begin(),
                                               v.cores().end(), core) -
                                     v.cores().begin()));
        bench::row({"iter", "tick", "address"});
        for (std::uint32_t it = 0; it < 3; ++it) {
            auto recs = trace.of(core, it);
            std::size_t step = std::max<std::size_t>(1, recs.size() / 6);
            for (std::size_t i = 0; i < recs.size(); i += step) {
                char addr[32];
                std::snprintf(addr, sizeof addr, "0x%llx",
                              static_cast<unsigned long long>(recs[i].va));
                bench::row({bench::fmt_u(it), bench::fmt_u(recs[i].tick),
                            addr});
            }
        }
    }

    std::printf("\nPattern-2 (monotonic within iteration): %s\n",
                trace.monotonic_within_iterations() ? "HOLDS" : "violated");
    std::printf("Pattern-3 (repeats across iterations): %s\n",
                trace.repeating_across_iterations() ? "HOLDS" : "violated");
    std::printf("total DMA records: %zu\n", trace.records().size());

    bench::JsonReport report("fig06_mem_trace");
    report.add("patterns",
               {{"monotonic_within_iterations",
                 trace.monotonic_within_iterations() ? 1.0 : 0.0},
                {"repeating_across_iterations",
                 trace.repeating_across_iterations() ? 1.0 : 0.0},
                {"dma_records",
                 static_cast<double>(trace.records().size())}});
    report.write();
    return 0;
}
