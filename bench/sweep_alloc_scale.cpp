/**
 * @file
 * Allocation / fragmentation sweep on DCRA-scale chips — the territory
 * the 64-bit `CoreMask` could not represent. For 16x16 (256-core) and
 * 32x32 (1024-core) meshes, a churn of create/destroy requests runs
 * under each policy:
 *
 *  - exact:    topology lock-in; requests fail once no isomorphic
 *              region survives fragmentation.
 *  - similar:  the paper's similar-topology mapping (with fragmented
 *              fallback) keeps allocating into the holes.
 *  - MIG:      fixed halves; oversized requests TDM, small ones waste.
 *
 * Reports per policy: admitted requests, failure count, peak core
 * utilization, mean TED of admitted mappings, and mapper/hypervisor
 * setup time, as a printf table plus BENCH_sweep_alloc_scale.json.
 */

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hyp/hypervisor.h"
#include "hyp/mig.h"
#include "runtime/machine.h"
#include "sim/log.h"
#include "sim/rng.h"

using namespace vnpu;
using hyp::MappingStrategy;
using runtime::Machine;

namespace {

struct SweepResult {
    int admitted = 0;
    int failed = 0;
    double peak_util = 0.0;
    double ted_sum = 0.0;
    /** Simulated meta-table setup cost (deterministic, unlike wall
     *  clock, so harness output stays byte-identical across runs). */
    Cycles setup_cycles = 0;
    /** Wall-clock admission latency (create/destroy calls), in
     *  microseconds per admitted request — the one machine-dependent
     *  column, gated in CI by tools/check_alloc_latency.py. */
    double us_per_admit = 0.0;
    // Funnel stage counters (vNPU policies only; zero for MIG).
    std::uint64_t fn_candidates = 0;
    std::uint64_t fn_lb_pruned = 0;
    std::uint64_t fn_memo_hits = 0;
    std::uint64_t fn_full_ged = 0;
};

SocConfig
mesh_cfg(int side)
{
    SocConfig c = SocConfig::Sim();
    c.mesh_x = side;
    c.mesh_y = side;
    c.hbm_channels = std::min(side, 64);
    return c;
}

/** Deterministic request-size schedule: mixes small and large tenants. */
std::vector<int>
request_sizes(int side, int rounds)
{
    Rng rng(0x5ca1e + static_cast<std::uint64_t>(side));
    std::vector<int> sizes;
    for (int i = 0; i < rounds; ++i)
        sizes.push_back(8 + static_cast<int>(rng.next_below(41))); // 8..48
    return sizes;
}

SweepResult
sweep_vnpu(int side, MappingStrategy strat, const std::vector<int>& sizes)
{
    Machine m(mesh_cfg(side));
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
    SweepResult r;
    std::vector<VmId> live;
    Rng rng(7);
    const auto wall_start = std::chrono::steady_clock::now();
    for (int size : sizes) {
        // Churn: every third request, retire the oldest tenant first.
        if (live.size() >= 3 && rng.next_below(3) == 0) {
            hv.destroy(live.front());
            live.erase(live.begin());
        }
        hyp::VnpuSpec spec;
        spec.num_cores = size;
        spec.strategy = strat;
        spec.max_candidates = 64;
        // On failure, retire the oldest tenant and retry once — the
        // admission-control loop a serving frontend would run.
        for (int attempt = 0; attempt < 2; ++attempt) {
            try {
                virt::VirtualNpu& v = hv.create(spec);
                live.push_back(v.vm());
                ++r.admitted;
                r.ted_sum += v.mapping_ted();
                break;
            } catch (const SimFatal&) {
                if (attempt == 1 || live.empty()) {
                    ++r.failed;
                    break;
                }
                hv.destroy(live.front());
                live.erase(live.begin());
            }
        }
        r.peak_util = std::max(r.peak_util, hv.core_utilization());
    }
    const auto wall_end = std::chrono::steady_clock::now();
    if (r.admitted > 0)
        r.us_per_admit =
            std::chrono::duration<double, std::micro>(wall_end -
                                                      wall_start)
                .count() /
            r.admitted;
    // Read the totals through the uniform telemetry sweep rather than
    // hand-copying HypervisorStats fields; the counter values are
    // integers far below 2^53, so the double round-trip is exact.
    StatSet st;
    hv.collect_stats(st);
    r.setup_cycles = static_cast<Cycles>(st.get("hyp.setup_cycles", 0.0));
    r.fn_candidates =
        static_cast<std::uint64_t>(st.get("hyp.funnel.candidates", 0.0));
    r.fn_lb_pruned =
        static_cast<std::uint64_t>(st.get("hyp.funnel.lb_pruned", 0.0));
    r.fn_memo_hits =
        static_cast<std::uint64_t>(st.get("hyp.funnel.memo_hits", 0.0));
    r.fn_full_ged =
        static_cast<std::uint64_t>(st.get("hyp.funnel.full_ged", 0.0));
    return r;
}

SweepResult
sweep_mig(int side, const std::vector<int>& sizes)
{
    Machine m(mesh_cfg(side));
    hyp::MigPartitioner mig(m.config(), m.topology(), m.controller());
    SweepResult r;
    std::vector<VmId> live;
    Rng rng(7);
    int total = side * side;
    for (int size : sizes) {
        if (live.size() >= 3 && rng.next_below(3) == 0) {
            mig.destroy(live.front());
            live.erase(live.begin());
        }
        for (int attempt = 0; attempt < 2; ++attempt) {
            try {
                virt::VirtualNpu& v = mig.create(size, 0);
                live.push_back(v.vm());
                ++r.admitted;
                break;
            } catch (const SimFatal&) {
                if (attempt == 1 || live.empty()) {
                    ++r.failed;
                    break;
                }
                mig.destroy(live.front());
                live.erase(live.begin());
            }
        }
        int used = 0;
        for (const hyp::MigPartition& p : mig.partitions())
            used += p.in_use ? p.num_cores() : 0;
        r.peak_util = std::max(r.peak_util,
                               static_cast<double>(used) / total);
    }
    r.setup_cycles = mig.setup_cycles();
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Scale sweep",
                  "Allocation/fragmentation churn on 256- and 1024-core "
                  "meshes (exact vs similar vs MIG)");
    bench::JsonReport report("sweep_alloc_scale");

    const int rounds = 24;
    for (int side : {16, 32}) {
        std::vector<int> sizes = request_sizes(side, rounds);
        std::printf("\n%dx%d mesh (%d cores), %d requests\n", side, side,
                    side * side, rounds);
        bench::Table table(report,
                           std::to_string(side) + "x" +
                               std::to_string(side),
                           {"policy", "admitted", "failed", "peak util",
                            "mean TED", "setup(clk)", "us/admit",
                            "cands", "lb_pruned", "memo_hit",
                            "full_ged"},
                           12);
        struct Row {
            const char* policy;
            SweepResult res;
        };
        std::vector<Row> rows{
            {"exact", sweep_vnpu(side, MappingStrategy::kExact, sizes)},
            {"similar",
             sweep_vnpu(side, MappingStrategy::kSimilarTopology, sizes)},
            {"fragmented",
             sweep_vnpu(side, MappingStrategy::kFragmented, sizes)},
            {"mig", sweep_mig(side, sizes)},
        };
        for (const Row& row : rows) {
            const SweepResult& r = row.res;
            double mean_ted =
                r.admitted > 0 ? r.ted_sum / r.admitted : 0.0;
            table.row({row.policy, bench::fmt_u(r.admitted),
                       bench::fmt_u(r.failed), bench::fmt(r.peak_util, 2),
                       bench::fmt(mean_ted, 1),
                       bench::fmt_u(r.setup_cycles),
                       bench::fmt(r.us_per_admit, 1),
                       bench::fmt_u(r.fn_candidates),
                       bench::fmt_u(r.fn_lb_pruned),
                       bench::fmt_u(r.fn_memo_hits),
                       bench::fmt_u(r.fn_full_ged)});
        }
    }
    std::printf("\nexact admits fewest (topology lock-in grows with the "
                "mesh); similar keeps utilization high with bounded TED; "
                "MIG wastes whole partitions.\n");
    report.write();
    return 0;
}
