/**
 * @file
 * Figure 2 (background): evolution of NPU hardware resources
 * (FLOPS and on-chip SRAM), 2017-2024. This is survey data from the
 * literature (documented, not simulated); printed for completeness of
 * the figure index.
 */

#include "bench_util.h"

using namespace vnpu;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 2",
                  "NPU resource evolution 2017-2024 (literature data)");
    bench::JsonReport report("fig02_evolution");
    bench::Table table(report, "", {"chip", "year", "TFLOPS", "SRAM(MB)"},
                       16);
    struct Row { const char* year; const char* chip; double tflops; double sram; };
    const Row rows[] = {
        {"2017", "TPU-v2", 46, 32},
        {"2018", "IPU-Mk1", 125, 304},
        {"2020", "A100", 312, 40},
        {"2020", "IPU-Mk2", 250, 900},
        {"2021", "TeslaD1", 362, 440},
        {"2021", "Groq", 188, 220},
        {"2022", "H100", 989, 50},
        {"2023", "TPU-v5p", 459, 95},
        {"2024", "Tenstorrent", 466, 192},
    };
    for (const Row& r : rows) {
        table.row({r.chip, r.year, bench::fmt(r.tflops, 0),
                   bench::fmt(r.sram, 0)});
    }
    report.write();
    std::printf("\ntrend: both compute (>100 TFLOPS) and on-chip SRAM "
                "(>200 MB) scaled for LLMs, leaving small models "
                "under-utilizing the chip.\n");
    return 0;
}
