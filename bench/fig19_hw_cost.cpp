/**
 * @file
 * Figure 19: hardware resource cost of NPU virtualization — vNPU
 * (vRouter + vChunk) vs Kim's UVM-based design (page IOTLB + walker),
 * as percentages over the baseline NPU controller and core.
 *
 * Substitution note (see DESIGN.md): FPGA synthesis is unavailable, so
 * resources are estimated analytically from storage bits and match
 * logic. The figure's claim is relative (~2% additions; a 128-entry
 * routing table is nearly free), which the estimates preserve.
 */

#include "bench_util.h"
#include "virt/hw_cost.h"

using namespace vnpu;
using namespace vnpu::virt;

int
main(int argc, char** argv)
{
    bench::TraceSession trace_session(argc, argv);
    bench::MetricsSession metrics_session(argc, argv);
    bench::ProfileSession profile_session(argc, argv);
    bench::banner("Figure 19", "Hardware resource cost of virtualization");

    HwCost base_ctrl = baseline_controller_cost();
    HwCost base_core = baseline_core_cost(16);

    HwCost vnpu_ctrl = inst_vrouter_cost(128);
    HwCost vnpu_core = noc_vrouter_cost();
    vnpu_core += vchunk_cost(4);

    HwCost kim_ctrl = uvm_mmu_cost(32); // controller-side IOMMU
    HwCost kim_core = uvm_mmu_cost(4);  // per-core IOTLB

    bench::JsonReport report("fig19_hw_cost");
    bench::Table table(report, "overhead_pct",
                       {"component", "LUTs", "LUTRAMs", "FFs", "bits"},
                       18);
    auto print = [&table](const char* what, const HwCost& base,
                          const HwCost& extra) {
        HwOverhead oh = overhead(base, extra);
        table.row({what, bench::fmt(oh.luts_pct, 2) + "%",
                   bench::fmt(oh.lutrams_pct, 2) + "%",
                   bench::fmt(oh.ffs_pct, 2) + "%",
                   bench::fmt_u(extra.bits)});
    };
    print("controller(Kim's)", base_ctrl, kim_ctrl);
    print("controller(vNPU)", base_ctrl, vnpu_ctrl);
    print("core(Kim's)", base_core, kim_core);
    print("core(vNPU)", base_core, vnpu_core);

    HwCost rt = routing_table_cost(128);
    std::printf("\n128-entry routing table alone: %.0f LUTs, %.0f "
                "LUTRAMs, %.0f FFs (%llu bits) — near-zero vs a %.0f-LUT "
                "controller.\n",
                rt.luts, rt.lutrams, rt.ffs,
                static_cast<unsigned long long>(rt.bits), base_ctrl.luts);
    std::printf("paper: both designs add ~2%% LUTs/FFs.\n");
    report.add("routing_table_128", {{"luts", rt.luts},
                                     {"lutrams", rt.lutrams},
                                     {"ffs", rt.ffs},
                                     {"bits", static_cast<double>(rt.bits)}});
    report.write();
    return 0;
}
