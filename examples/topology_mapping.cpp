/**
 * @file
 * Topology-mapping explorer: reproduces the paper's §4.3 scenario
 * (two 3x3 requests on a 5x5 chip) and renders every strategy's
 * placement as an ASCII mesh, with topology edit distances.
 *
 *   $ ./topology_mapping
 */

#include <cstdio>
#include <vector>

#include "hyp/hypervisor.h"
#include "runtime/machine.h"

using namespace vnpu;

namespace {

/** Draw the mesh with each core labelled by owning VM ('.' = free). */
void
draw(const noc::MeshTopology& topo,
     const std::vector<std::pair<char, CoreSet>>& owners)
{
    for (int y = 0; y < topo.height(); ++y) {
        std::printf("    ");
        for (int x = 0; x < topo.width(); ++x) {
            char c = '.';
            for (const auto& [label, mask] : owners)
                if (mask.test(topo.id_of(x, y)))
                    c = label;
            std::printf("%c ", c);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    SocConfig cfg = SocConfig::Sim();
    cfg.mesh_x = 5;
    cfg.mesh_y = 5;
    runtime::Machine m(cfg);
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());

    std::printf("A 5x5 chip; a user asks for two 3x3 virtual NPUs "
                "(paper 4.3).\n\n");

    // First request: exact mapping succeeds.
    hyp::VnpuSpec spec;
    spec.topo = graph::Graph::mesh(3, 3);
    spec.strategy = hyp::MappingStrategy::kExact;
    virt::VirtualNpu& first = hv.create(spec);
    std::printf("1) exact mapping of the first 3x3 (TED %.0f):\n",
                first.mapping_ted());
    draw(m.topology(), {{'A', first.mask()}});

    // Second request: exact mapping hits topology lock-in.
    hyp::MappingRequest probe;
    probe.vtopo = graph::Graph::mesh(3, 3);
    probe.strategy = hyp::MappingStrategy::kExact;
    hyp::MappingResult locked = hv.try_map(probe);
    std::printf("\n2) exact mapping of the second 3x3: %s\n",
                locked.ok ? "succeeded (unexpected)"
                          : "FAILED — topology lock-in");
    std::printf("   %d of %d cores would sit idle (paper: ~64%% waste)\n",
                hv.num_free_cores(), cfg.num_cores());

    // Straightforward vs similar-topology rescue.
    probe.strategy = hyp::MappingStrategy::kStraightforward;
    hyp::MappingResult zig = hv.try_map(probe);
    std::printf("\n3) straightforward (zig-zag) mapping: TED %.0f\n",
                zig.ted);
    CoreSet zig_mask = CoreSet::from_range(zig.assignment);
    draw(m.topology(), {{'A', first.mask()}, {'z', zig_mask}});

    spec.strategy = hyp::MappingStrategy::kSimilarTopology;
    virt::VirtualNpu& second = hv.create(spec);
    std::printf("\n4) similar-topology mapping: TED %.0f (vs %.0f for "
                "zig-zag)\n",
                second.mapping_ted(), zig.ted);
    draw(m.topology(), {{'A', first.mask()}, {'B', second.mask()}});

    std::printf("\nB's virtual topology is not a perfect 3x3, but every "
                "core is connected, confined-routable, and close to its "
                "pipeline neighbors.\n");

    // The leftover cores may be disconnected; the fragmented strategy
    // (paper's "topology fragmentation" trade-off) still packs a 5-core
    // chain into them, with memory-distance node penalties applied.
    hyp::MappingRequest het;
    het.vtopo = graph::Graph::chain(5);
    het.strategy = hyp::MappingStrategy::kFragmented;
    het.ged.node_cost = [](int a, int b) {
        return 0.25 * std::abs(a - b);
    };
    hyp::MappingResult hr = hv.try_map(het);
    std::printf("\n5) fragmented best-effort 5-chain over the leftovers: "
                "%s, TED %.2f\n",
                hr.ok ? "mapped" : "failed", hr.ted);
    if (hr.ok) {
        CoreSet frag = CoreSet::from_range(hr.assignment);
        draw(m.topology(),
             {{'A', first.mask()}, {'B', second.mask()}, {'c', frag}});
    }
    return 0;
}
