/**
 * @file
 * Quickstart: the paper's Listing 1 programming model on a virtual NPU.
 *
 * Creates a 2x2 virtual NPU through the hypervisor, builds a small
 * Poplar-style graph (tensors mapped to tiles, a compute set, copies),
 * runs it, and prints execution statistics.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "hyp/hypervisor.h"
#include "runtime/machine.h"
#include "runtime/poplar.h"

using namespace vnpu;
using namespace vnpu::runtime::poplar;

int
main()
{
    // A small FPGA-scale chip and its hypervisor.
    runtime::Machine machine(SocConfig::Fpga());
    hyp::Hypervisor hv(machine.config(), machine.topology(),
                       machine.controller());

    // The tenant asks for a 2x2 virtual NPU with 64 MiB of memory.
    hyp::VnpuSpec spec;
    spec.topo = graph::Graph::mesh(2, 2);
    spec.memory_bytes = 64ull << 20;
    virt::VirtualNpu& vnpu = hv.create(spec);
    std::printf("created vNPU %d on physical cores:", vnpu.vm());
    for (CoreId c : vnpu.cores())
        std::printf(" %d", c);
    std::printf("  (setup cost %llu cycles)\n",
                static_cast<unsigned long long>(hv.last_setup_cost()));

    // ---- Listing 1, nearly verbatim -----------------------------------
    Graph graph(machine, &vnpu);
    const unsigned numTiles = 4;

    Tensor v1 = graph.addVariable(Type::FLOAT, {4, 1024}, "v1");
    Tensor v2 = graph.addVariable(Type::FLOAT, {4, 1024}, "v2");
    Tensor c1 = graph.addConstant(Type::FLOAT, {4, 1024}, "c1");
    graph.setTileMapping(v1, 0);
    graph.setTileMapping(v2, 3);

    Sequence prog;
    prog.add(Copy(c1, v1)); // host constant -> tile 0

    // Create a compute set and add its execution to the program.
    ComputeSet computeSet = graph.addComputeSet("computeSet");
    for (unsigned i = 0; i < numTiles; ++i) {
        VertexRef vtx = graph.addVertex(computeSet, "SumVertex");
        graph.connect(vtx, "in", v1);
        graph.connect(vtx, "out", v2);
        graph.setTileMapping(vtx, static_cast<int>(i));
        graph.setPerfEstimate(vtx, 20);
    }
    prog.add(Execute(computeSet));
    prog.add(Copy(v2, v1)); // tile 3 -> tile 0 over the (virtual) NoC

    Engine engine(graph, prog);
    RunStats stats = engine.run(/*iterations=*/3);

    std::printf("\nran 3 iterations in %llu cycles\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("  NoC bytes: %llu\n",
                static_cast<unsigned long long>(stats.noc_bytes));
    std::printf("  DMA bytes: %llu\n",
                static_cast<unsigned long long>(stats.dma_bytes));
    std::printf("  vertex work: %llu ops\n",
                static_cast<unsigned long long>(stats.flops));
    std::printf("\nthe tenant addressed virtual tiles 0..3; the vRouter "
                "redirected all traffic to physical cores.\n");
    return 0;
}
