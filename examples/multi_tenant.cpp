/**
 * @file
 * Multi-tenant serving: two tenants (GPT2-s and ResNet-34) share one
 * 36-core chip under vNPU, with per-tenant FPS, utilization and
 * isolation statistics — the paper's headline use case.
 *
 *   $ ./multi_tenant
 */

#include <cstdio>

#include "hyp/hypervisor.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;

int
main()
{
    runtime::Machine m(SocConfig::Sim());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());

    // Tenant A: a 12-core vNPU for GPT2-small.
    hyp::VnpuSpec sa;
    sa.num_cores = 12;
    sa.memory_bytes = 2ull << 30;
    virt::VirtualNpu& va = hv.create(sa);

    // Tenant B: a 24-core vNPU for ResNet-34.
    hyp::VnpuSpec sb;
    sb.num_cores = 24;
    sb.memory_bytes = 2ull << 30;
    virt::VirtualNpu& vb = hv.create(sb);

    std::printf("chip utilization after allocation: %.0f%% (%d cores "
                "free)\n\n",
                100 * hv.core_utilization(), hv.num_free_cores());

    runtime::WorkloadLauncher launcher(m);
    runtime::LaunchOptions opt;
    opt.iterations = 40;

    workload::Model gpt = workload::gpt2(workload::Gpt2Size::kSmall, 128);
    gpt.set_weight_precision(1); // int8 serving
    workload::Model resnet = workload::resnet34();
    resnet.set_weight_precision(1);

    runtime::LoadedRun ra = launcher.load(va, gpt, opt);
    runtime::LoadedRun rb = launcher.load(vb, resnet, opt);
    m.run();
    runtime::LaunchResult a = launcher.collect(ra);
    runtime::LaunchResult b = launcher.collect(rb);

    auto report = [&](const char* name, const virt::VirtualNpu& v,
                      const runtime::LaunchResult& r) {
        std::printf("%s on vNPU %d (%d cores, %d mem interfaces):\n",
                    name, v.vm(), v.num_cores(), v.interfaces());
        std::printf("  throughput      : %.1f inferences/s\n", r.fps);
        std::printf("  warm-up         : %llu cycles\n",
                    static_cast<unsigned long long>(r.warmup));
        std::printf("  FLOPS util      : %.1f%%\n",
                    100 * r.flops_utilization);
        std::printf("  translation stall: %llu cycles (vChunk)\n",
                    static_cast<unsigned long long>(r.translation_stall));
        std::printf("  mapping TED     : %.0f\n\n", r.mapping_ted);
    };
    report("GPT2-s", va, a);
    report("ResNet-34", vb, b);

    std::printf("NoC links carrying traffic from more than one tenant: "
                "%d (confined routing keeps tenants apart)\n",
                m.network().interference_links());
    return 0;
}
