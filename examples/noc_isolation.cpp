/**
 * @file
 * NoC interference demo (paper §4.1.2): two virtual NPUs exchange
 * traffic inside their own regions. With default dimension-order
 * routing, one tenant's packets cut through the other's region; with
 * the routing-table direction overrides, traffic stays confined and
 * interference disappears. Also demonstrates the vChunk bandwidth cap.
 *
 *   $ ./noc_isolation
 */

#include <cstdio>

#include "hyp/hypervisor.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;

namespace {

/** Run two L-shaped tenants with or without confined routing. */
int
interference(bool isolate)
{
    runtime::Machine m(SocConfig::Sim());
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());

    // Two interleaved 6-core tenants whose XY paths cross.
    hyp::VnpuSpec spec;
    spec.num_cores = 6;
    spec.memory_bytes = 1ull << 30;
    spec.noc_isolation = isolate;
    virt::VirtualNpu& va = hv.create(spec);
    virt::VirtualNpu& vb = hv.create(spec);

    runtime::WorkloadLauncher l(m);
    runtime::LaunchOptions opt;
    opt.iterations = 10;
    runtime::LoadedRun ra =
        l.load(va, workload::transformer_block(256, 32), opt);
    runtime::LoadedRun rb =
        l.load(vb, workload::transformer_block(256, 32), opt);
    m.run();
    l.collect(ra);
    l.collect(rb);
    return m.network().interference_links();
}

} // namespace

int
main()
{
    std::printf("--- NoC interference: default DOR vs confined routing "
                "---\n");
    int dor = interference(false);
    int confined = interference(true);
    std::printf("links shared between tenants, default DOR : %d\n", dor);
    std::printf("links shared between tenants, confined    : %d\n",
                confined);

    std::printf("\n--- vChunk memory-bandwidth caps ---\n");
    // One tenant capped at 1/4 of its fair share: warm-up stretches,
    // proving the access counter throttles the VM's aggregate rate.
    for (double cap : {240.0, 60.0}) {
        runtime::Machine m(SocConfig::Sim());
        hyp::Hypervisor hv(m.config(), m.topology(), m.controller());
        hyp::VnpuSpec spec;
        spec.num_cores = 6;
        spec.memory_bytes = 1ull << 30;
        spec.bw_cap = cap;
        virt::VirtualNpu& v = hv.create(spec);
        runtime::WorkloadLauncher l(m);
        runtime::LaunchOptions opt;
        opt.iterations = 4;
        runtime::LaunchResult r =
            l.run_single(v, workload::transformer_block(512, 64), opt);
        std::printf("cap %5.0f B/cycle -> warm-up %8llu cycles\n", cap,
                    static_cast<unsigned long long>(r.warmup));
    }
    std::printf("\nthe hypervisor sets caps proportional to each vNPU's "
                "memory interfaces unless overridden.\n");
    return 0;
}
