/**
 * @file
 * Memory-pattern inspector: runs a CNN with streamed weights and shows
 * the per-core global-memory access patterns that motivate vChunk
 * (paper §4.2, Figure 6), plus the range-TLB statistics that result.
 *
 *   $ ./memory_trace
 */

#include <cstdio>

#include "hyp/hypervisor.h"
#include "runtime/launcher.h"
#include "runtime/machine.h"
#include "workload/model_zoo.h"

using namespace vnpu;

int
main()
{
    runtime::Machine m(SocConfig::Fpga());
    m.enable_trace();
    hyp::Hypervisor hv(m.config(), m.topology(), m.controller());

    hyp::VnpuSpec spec;
    spec.num_cores = 4;
    spec.memory_bytes = 512ull << 20;
    virt::VirtualNpu& v = hv.create(spec);

    runtime::WorkloadLauncher launcher(m);
    runtime::LaunchOptions opt;
    opt.iterations = 3;
    opt.force_stream_weights = true; // weights re-streamed per iteration
    runtime::LoadedRun run =
        launcher.load(v, workload::resnet_block(16, 64), opt);
    m.run();
    launcher.collect(run);

    const mem::MemTraceRecorder& trace = m.trace();
    std::printf("recorded %zu DMA transfers across %d cores / 3 "
                "iterations\n\n",
                trace.records().size(), v.num_cores());

    // Show the first few accesses of each iteration on virtual core 0.
    CoreId core0 = v.phys_of(0);
    for (std::uint32_t it = 0; it < 3; ++it) {
        auto recs = trace.of(core0, it);
        std::printf("core %d, iteration %u (%zu transfers):\n", core0, it,
                    recs.size());
        for (std::size_t i = 0; i < recs.size() && i < 4; ++i) {
            std::printf("   tick %8llu  va 0x%-8llx  %llu bytes\n",
                        static_cast<unsigned long long>(recs[i].tick),
                        static_cast<unsigned long long>(recs[i].va),
                        static_cast<unsigned long long>(recs[i].bytes));
        }
    }

    std::printf("\nPattern-1: transfers are tensor-granular chunks "
                "(64 KiB DMA descriptors)\n");
    std::printf("Pattern-2 (monotonic within iteration): %s\n",
                trace.monotonic_within_iterations() ? "holds" : "violated");
    std::printf("Pattern-3 (identical across iterations): %s\n",
                trace.repeating_across_iterations() ? "holds" : "violated");

    // What vChunk made of it.
    std::uint64_t hits = 0, misses = 0, lastv = 0;
    for (const auto& vc : run.vchunks) {
        hits += vc->tlb().hits();
        misses += vc->tlb().misses();
        lastv += vc->tlb().last_v_hits();
    }
    std::printf("\nrange-TLB: %llu hits, %llu misses (%llu resolved by "
                "last_v in one fetch)\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(lastv));
    return 0;
}
