/**
 * @file
 * A Poplar-flavored front end (paper §3.1, Listing 1).
 *
 * Inter-core connected NPUs are programmed by explicitly mapping
 * tensors and vertices to tiles (cores). This header mirrors the IPU
 * API surface used in the paper's listing — addVariable,
 * setTileMapping, addComputeSet, addVertex, connect, setPerfEstimate,
 * Sequence/Copy/Execute, Engine — lowered onto the vNPU simulator.
 * Tile ids are *virtual* core ids when a VirtualNpu is attached, and
 * physical ids on bare metal.
 */

#ifndef VNPU_RUNTIME_POPLAR_H
#define VNPU_RUNTIME_POPLAR_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "runtime/machine.h"
#include "virt/virtual_npu.h"

namespace vnpu::runtime::poplar {

/** Element types. */
enum class Type { FLOAT, HALF };

/** Bytes per element of a type. */
std::uint64_t type_bytes(Type t);

/** An opaque tensor handle. */
struct Tensor {
    int id = -1;
    bool valid() const { return id >= 0; }
};

/** An opaque compute-set handle. */
struct ComputeSet {
    int id = -1;
};

/** An opaque vertex handle. */
struct VertexRef {
    int id = -1;
};

/** Program step: copy a tensor (host constant or between tiles). */
struct Copy {
    Copy(Tensor from, Tensor to) : src(from), dst(to) {}
    Tensor src, dst;
};

/** Program step: run every vertex of a compute set in parallel. */
struct Execute {
    explicit Execute(ComputeSet set) : cs(set) {}
    ComputeSet cs;
};

/** An ordered program. */
class Sequence {
  public:
    void add(Copy c) { steps_.emplace_back(c); }
    void add(Execute e) { steps_.emplace_back(e); }

    using Step = std::variant<Copy, Execute>;
    const std::vector<Step>& steps() const { return steps_; }

  private:
    std::vector<Step> steps_;
};

/** The computation graph under construction. */
class Graph {
  public:
    /**
     * @param machine the chip to run on
     * @param vnpu    attach to a virtual NPU (tile ids = virtual core
     *                ids) or nullptr for bare metal
     */
    explicit Graph(Machine& machine,
                   const virt::VirtualNpu* vnpu = nullptr);

    /** Declare a device tensor. */
    Tensor addVariable(Type type, const std::vector<std::size_t>& shape,
                       const std::string& name);

    /** Declare a host-resident constant (copied in via DMA). */
    Tensor addConstant(Type type, const std::vector<std::size_t>& shape,
                       const std::string& name);

    /** Place a tensor on a tile. */
    void setTileMapping(Tensor t, int tile);

    ComputeSet addComputeSet(const std::string& name);

    /** Add a vertex (codelet instance) to a compute set. */
    VertexRef addVertex(ComputeSet cs, const std::string& codelet);

    /** Connect a tensor to a vertex field ("in", "out", ...). */
    void connect(VertexRef v, const std::string& field, Tensor t);

    /** Place a vertex on a tile. */
    void setTileMapping(VertexRef v, int tile);

    /** Override the vertex cost in cycles (as in Listing 1). */
    void setPerfEstimate(VertexRef v, Cycles cycles);

    Machine& machine() { return machine_; }
    const virt::VirtualNpu* vnpu() const { return vnpu_; }

  private:
    friend class Engine;

    struct TensorInfo {
        std::string name;
        std::uint64_t bytes = 0;
        std::uint64_t elems = 0;
        int tile = -1;
        bool host = false;
    };
    struct VertexInfo {
        std::string codelet;
        int cs = -1;
        int tile = -1;
        Cycles perf_estimate = 0;
        std::vector<int> in_tensors;
        std::vector<int> out_tensors;
    };

    Machine& machine_;
    const virt::VirtualNpu* vnpu_;
    std::vector<TensorInfo> tensors_;
    std::vector<VertexInfo> vertices_;
    int num_compute_sets_ = 0;
};

/** Outcome of an Engine::run(). */
struct RunStats {
    Tick cycles = 0;              ///< Makespan.
    std::uint64_t noc_bytes = 0;  ///< Inter-tile traffic.
    std::uint64_t dma_bytes = 0;  ///< Host/global-memory traffic.
    std::uint64_t flops = 0;
};

/** Compiles a Graph + Sequence onto the machine and runs it. */
class Engine {
  public:
    Engine(Graph& graph, Sequence prog);

    /** Execute the program `iterations` times and report statistics. */
    RunStats run(int iterations = 1);

  private:
    Graph& graph_;
    Sequence prog_;
    // Owned virtualization hooks, one per used tile.
    std::vector<std::unique_ptr<virt::NocVRouter>> vrouters_;
    std::vector<std::unique_ptr<virt::VChunk>> vchunks_;
};

} // namespace vnpu::runtime::poplar

#endif // VNPU_RUNTIME_POPLAR_H
