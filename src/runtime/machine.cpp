#include "runtime/machine.h"

#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace vnpu::runtime {

Machine::Machine(const SocConfig& cfg)
    : cfg_(cfg), topo_(cfg.mesh_x, cfg.mesh_y)
{
    VNPU_PROF("machine.ctor");
    cfg_.validate();
    // Control-plane instrumentation (hypervisor admission spans, log
    // tags) timestamps against this machine's clock.
    obs::set_sim_clock(&eq_);
    dram_ = std::make_unique<mem::DramModel>(cfg_);
    net_ = std::make_unique<noc::Network>(cfg_, topo_, eq_);
    ctrl_ = std::make_unique<core::NpuController>(cfg_, topo_);

    for (int id = 0; id < num_cores(); ++id) {
        spads_.push_back(std::make_unique<mem::Scratchpad>(
            cfg_.spad_bytes_per_core, cfg_.meta_zone_bytes));
        dmas_.push_back(std::make_unique<mem::DmaEngine>(
            cfg_, *dram_, topo_.channel_of(id, cfg_.hbm_channels), id));
        cores_.push_back(std::make_unique<core::NpuCore>(
            cfg_, id, eq_, *net_, *dmas_.back()));
    }

    net_->set_deliver_callback([this](int dst, int src,
                                      std::uint64_t bytes, int tag,
                                      VmId vm, bool credit) {
        cores_[dst]->deliver(src, bytes, tag, vm, credit);
    });

    // Periodic metrics sampling, when a sampler is installed
    // (bench::MetricsSession --metrics). Mirrors the sim-clock
    // registration above: latest machine wins, detach on destruction.
    if (auto* m = obs::metrics()) {
        m->attach_machine(
            this, [this](StatSet& out) { collect_stats(out); },
            [this](std::vector<obs::LinkRecord>& out) {
                net_->append_link_records(out);
            },
            [this] { return net_->stats().msg_latency; });
    }
}

Machine::~Machine()
{
    if (auto* m = obs::metrics())
        m->detach_machine(this, eq_.now());
    obs::clear_sim_clock(&eq_);
}

void
Machine::enable_trace()
{
    for (auto& dma : dmas_)
        dma->set_trace(&trace_);
}

void
Machine::collect_stats(StatSet& out) const
{
    eq_.collect_stats(out, "sim.");
    net_->collect_stats(out, "noc.");
    out.set("mem.dram.bytes", static_cast<double>(dram_->total_bytes()));
    for (const auto& dma : dmas_)
        dma->collect_stats(out, "mem.dma.");
    for (const auto& core : cores_)
        core->collect_stats(out, "core.");
}

Tick
Machine::run(Tick start, Tick limit)
{
    VNPU_PROF("machine.run");
    int active_cores = 0;
    for (auto& core : cores_) {
        if (core->num_contexts() > 0) {
            ++active_cores;
            core->start(start);
        }
    }
    if (active_cores == 0)
        return eq_.now();

    Tick end = eq_.run(limit);

    // Close the trace with a link-utilization counter snapshot so the
    // heatmap data rides inside the trace file itself.
    if (obs::enabled())
        net_->trace_link_counters(end);

    for (auto& core : cores_) {
        if (core->num_contexts() > 0 && !core->all_done()) {
            panic("machine: core ", core->id(),
                  " has unfinished contexts after the event queue "
                  "drained (deadlocked program?)");
        }
    }
    return end;
}

} // namespace vnpu::runtime
