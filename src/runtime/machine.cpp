#include "runtime/machine.h"

#include "sim/log.h"

namespace vnpu::runtime {

Machine::Machine(const SocConfig& cfg)
    : cfg_(cfg), topo_(cfg.mesh_x, cfg.mesh_y)
{
    cfg_.validate();
    dram_ = std::make_unique<mem::DramModel>(cfg_);
    net_ = std::make_unique<noc::Network>(cfg_, topo_, eq_);
    ctrl_ = std::make_unique<core::NpuController>(cfg_, topo_);

    for (int id = 0; id < num_cores(); ++id) {
        spads_.push_back(std::make_unique<mem::Scratchpad>(
            cfg_.spad_bytes_per_core, cfg_.meta_zone_bytes));
        dmas_.push_back(std::make_unique<mem::DmaEngine>(
            cfg_, *dram_, topo_.channel_of(id, cfg_.hbm_channels), id));
        cores_.push_back(std::make_unique<core::NpuCore>(
            cfg_, id, eq_, *net_, *dmas_.back()));
    }

    net_->set_deliver_callback([this](int dst, int src,
                                      std::uint64_t bytes, int tag,
                                      VmId vm, bool credit) {
        cores_[dst]->deliver(src, bytes, tag, vm, credit);
    });
}

void
Machine::enable_trace()
{
    for (auto& dma : dmas_)
        dma->set_trace(&trace_);
}

Tick
Machine::run(Tick start, Tick limit)
{
    int active_cores = 0;
    for (auto& core : cores_) {
        if (core->num_contexts() > 0) {
            ++active_cores;
            core->start(start);
        }
    }
    if (active_cores == 0)
        return eq_.now();

    Tick end = eq_.run(limit);

    for (auto& core : cores_) {
        if (core->num_contexts() > 0 && !core->all_done()) {
            panic("machine: core ", core->id(),
                  " has unfinished contexts after the event queue "
                  "drained (deadlocked program?)");
        }
    }
    return end;
}

} // namespace vnpu::runtime
