#include "runtime/poplar.h"

#include <map>
#include <set>

#include "core/isa.h"
#include "sim/log.h"

namespace vnpu::runtime::poplar {

std::uint64_t
type_bytes(Type t)
{
    return t == Type::FLOAT ? 4 : 2;
}

Graph::Graph(Machine& machine, const virt::VirtualNpu* vnpu)
    : machine_(machine), vnpu_(vnpu)
{
}

Tensor
Graph::addVariable(Type type, const std::vector<std::size_t>& shape,
                   const std::string& name)
{
    TensorInfo info;
    info.name = name;
    info.elems = 1;
    for (std::size_t d : shape)
        info.elems *= d;
    info.bytes = info.elems * type_bytes(type);
    tensors_.push_back(info);
    return Tensor{static_cast<int>(tensors_.size()) - 1};
}

Tensor
Graph::addConstant(Type type, const std::vector<std::size_t>& shape,
                   const std::string& name)
{
    Tensor t = addVariable(type, shape, name);
    tensors_[t.id].host = true;
    return t;
}

void
Graph::setTileMapping(Tensor t, int tile)
{
    VNPU_ASSERT(t.valid() && t.id < static_cast<int>(tensors_.size()));
    tensors_[t.id].tile = tile;
}

ComputeSet
Graph::addComputeSet(const std::string&)
{
    return ComputeSet{num_compute_sets_++};
}

VertexRef
Graph::addVertex(ComputeSet cs, const std::string& codelet)
{
    VertexInfo v;
    v.codelet = codelet;
    v.cs = cs.id;
    vertices_.push_back(v);
    return VertexRef{static_cast<int>(vertices_.size()) - 1};
}

void
Graph::connect(VertexRef v, const std::string& field, Tensor t)
{
    VNPU_ASSERT(v.id >= 0 && v.id < static_cast<int>(vertices_.size()));
    if (field.rfind("out", 0) == 0)
        vertices_[v.id].out_tensors.push_back(t.id);
    else
        vertices_[v.id].in_tensors.push_back(t.id);
}

void
Graph::setTileMapping(VertexRef v, int tile)
{
    VNPU_ASSERT(v.id >= 0 && v.id < static_cast<int>(vertices_.size()));
    vertices_[v.id].tile = tile;
}

void
Graph::setPerfEstimate(VertexRef v, Cycles cycles)
{
    vertices_[v.id].perf_estimate = cycles;
}

Engine::Engine(Graph& graph, Sequence prog)
    : graph_(graph), prog_(std::move(prog))
{
}

RunStats
Engine::run(int iterations)
{
    Machine& m = graph_.machine();
    const SocConfig& cfg = m.config();
    const virt::VirtualNpu* vnpu = graph_.vnpu();

    // Resolve tiles used by the program.
    std::set<int> tiles;
    for (const auto& t : graph_.tensors_)
        if (!t.host && t.tile >= 0)
            tiles.insert(t.tile);
    for (const auto& v : graph_.vertices_)
        if (v.tile >= 0)
            tiles.insert(v.tile);
    if (tiles.empty())
        fatal("poplar program uses no tiles");

    auto phys_of = [&](int tile) -> CoreId {
        if (!vnpu)
            return tile;
        return vnpu->phys_of(tile);
    };

    // Per-tile instruction streams (virtual peer ids in send/recv).
    std::map<int, core::Program> progs;
    for (int t : tiles)
        progs[t] = {};

    // Tensor VA layout for host constants.
    Addr va = 0x10000;
    if (vnpu && vnpu->has_memory())
        va = vnpu->range_table().entry(0).va;
    std::map<int, Addr> tensor_va;
    for (std::size_t i = 0; i < graph_.tensors_.size(); ++i) {
        if (graph_.tensors_[i].host) {
            tensor_va[static_cast<int>(i)] = va;
            va += (graph_.tensors_[i].bytes + 63) / 64 * 64;
        }
    }

    int tag = 0;
    auto lower_once = [&]() {
        for (const Sequence::Step& step : prog_.steps()) {
            if (std::holds_alternative<Copy>(step)) {
                const Copy& c = std::get<Copy>(step);
                const auto& src = graph_.tensors_[c.src.id];
                const auto& dst = graph_.tensors_[c.dst.id];
                if (dst.tile < 0)
                    fatal("Copy destination '", dst.name, "' has no tile");
                if (src.host) {
                    progs[dst.tile].push_back(core::Instr::load_global(
                        tensor_va.at(c.src.id), src.bytes));
                } else if (src.tile == dst.tile) {
                    progs[dst.tile].push_back(
                        core::Instr::vector_op(
                            static_cast<std::int64_t>(src.elems)));
                } else {
                    progs[src.tile].push_back(
                        core::Instr::send(dst.tile, src.bytes, tag));
                    progs[dst.tile].push_back(
                        core::Instr::recv(src.tile, src.bytes, tag));
                    ++tag;
                }
            } else {
                const Execute& e = std::get<Execute>(step);
                for (const auto& v : graph_.vertices_) {
                    if (v.cs != e.cs.id)
                        continue;
                    if (v.tile < 0)
                        fatal("vertex of codelet ", v.codelet,
                              " has no tile mapping");
                    // Fetch remote inputs first.
                    for (int tid : v.in_tensors) {
                        const auto& t = graph_.tensors_[tid];
                        if (t.host) {
                            progs[v.tile].push_back(
                                core::Instr::load_global(tensor_va.at(tid),
                                                         t.bytes));
                        } else if (t.tile != v.tile) {
                            progs[t.tile].push_back(core::Instr::send(
                                v.tile, t.bytes, tag));
                            progs[v.tile].push_back(core::Instr::recv(
                                t.tile, t.bytes, tag));
                            ++tag;
                        }
                    }
                    // The vertex body.
                    if (v.perf_estimate > 0) {
                        progs[v.tile].push_back(core::Instr::vector_op(
                            static_cast<std::int64_t>(v.perf_estimate) *
                            cfg.vector_lanes));
                    } else {
                        std::int64_t elems = 0;
                        for (int tid : v.in_tensors)
                            elems += static_cast<std::int64_t>(
                                graph_.tensors_[tid].elems);
                        progs[v.tile].push_back(
                            core::Instr::vector_op(std::max<std::int64_t>(
                                1, elems)));
                    }
                }
            }
        }
    };

    for (int it = 0; it < iterations; ++it) {
        for (auto& [tile, prog] : progs)
            prog.push_back(core::Instr::iter_begin());
        lower_once();
    }
    for (auto& [tile, prog] : progs)
        prog.push_back(core::Instr::halt());

    // Install contexts with the appropriate virtualization hooks.
    std::vector<std::pair<CoreId, int>> ctxs;
    for (auto& [tile, prog] : progs) {
        core::ContextConfig ccfg;
        ccfg.vm = vnpu ? vnpu->vm() : kNoVm;
        if (vnpu) {
            vrouters_.push_back(std::make_unique<virt::NocVRouter>(
                cfg, vnpu->routing_table(), vnpu->confined_routes()));
            ccfg.vrouter = vrouters_.back().get();
            if (vnpu->has_memory()) {
                vchunks_.push_back(std::make_unique<virt::VChunk>(
                    cfg, vnpu->range_table(), 4));
                ccfg.translator = vchunks_.back()->translator();
            }
        }
        CoreId pcore = phys_of(tile);
        ctxs.emplace_back(pcore, m.core(pcore).add_context(prog, ccfg));
    }

    Tick end = m.run();

    RunStats stats;
    stats.cycles = end;
    stats.noc_bytes = m.network().stats().bytes.value();
    stats.dma_bytes = m.dram().total_bytes();
    for (auto [pcore, ctx] : ctxs)
        stats.flops += m.core(pcore).context_stats(ctx).flops;
    return stats;
}

} // namespace vnpu::runtime::poplar
