/**
 * @file
 * Pipeline compiler: lowers a partitioned model to per-virtual-core
 * instruction programs.
 *
 * Two communication lowerings exist:
 *  - kDataflow (inter-core connected NPU): stage edges become
 *    kSend/kRecv over the NoC — intermediate results never touch
 *    global memory.
 *  - kUvmSync (monolithic-NPU baseline): the producer stores the
 *    activation to global memory and raises a 64-byte flag; the
 *    consumer waits on the flag and loads the activation back. This
 *    charges HBM bandwidth for every edge and serializes on memory.
 */

#ifndef VNPU_RUNTIME_COMPILER_H
#define VNPU_RUNTIME_COMPILER_H

#include <cstdint>
#include <vector>

#include "core/isa.h"
#include "workload/partitioner.h"

namespace vnpu::runtime {

/** Dataflow edge lowering mode. */
enum class CommMode { kDataflow, kUvmSync };

/** Compilation knobs. */
struct CompileOptions {
    int iterations = 4;
    CommMode comm = CommMode::kDataflow;
    /** Reload weights from HBM every iteration (set when the stage's
     *  weights exceed the scratchpad weight-zone). */
    bool stream_weights = false;
    /** DMA chunk granularity for weight/input streaming. */
    std::uint64_t chunk_bytes = 64 * 1024;
    /**
     * Latency-critical serving: at most one inference in flight. The
     * last stage returns a completion token that gates the next
     * iteration of stage 0, so per-hop latency lands on the critical
     * path instead of being hidden by pipelining.
     */
    bool single_stream = false;
};

/** Compiled result: one program per virtual core. */
struct CompiledWorkload {
    std::vector<core::Program> programs;    ///< indexed by virtual core
    std::vector<std::uint64_t> weight_bytes; ///< resident per core
    std::uint64_t va_used = 0;               ///< VA span consumed
};

/**
 * Lower `plan` over `model` into per-core programs. Virtual addresses
 * are laid out from `va_base`; compilation fails (fatal) when the
 * layout exceeds `va_limit`.
 */
CompiledWorkload compile_pipeline(const workload::Model& model,
                                  const workload::PipelinePlan& plan,
                                  const CompileOptions& opt, Addr va_base,
                                  std::uint64_t va_limit);

/** UVM sync-flag payload (bytes). */
inline constexpr std::uint64_t kUvmFlagBytes = 64;

} // namespace vnpu::runtime

#endif // VNPU_RUNTIME_COMPILER_H
