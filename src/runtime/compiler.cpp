#include "runtime/compiler.h"

#include <algorithm>

#include "sim/log.h"

namespace vnpu::runtime {

namespace {

using workload::Model;
using workload::PipelinePlan;
using workload::StageSlice;

/** Emit chunked DMA loads covering [va, va+bytes). */
void
emit_chunked_load(core::Program& prog, core::Opcode op, Addr va,
                  std::uint64_t bytes, std::uint64_t chunk)
{
    for (std::uint64_t off = 0; off < bytes; off += chunk) {
        std::uint64_t sz = std::min(chunk, bytes - off);
        if (op == core::Opcode::kLoadWeight)
            prog.push_back(core::Instr::load_weight(va + off, sz));
        else
            prog.push_back(core::Instr::load_global(va + off, sz));
    }
}

} // namespace

CompiledWorkload
compile_pipeline(const Model& model, const PipelinePlan& plan,
                 const CompileOptions& opt, Addr va_base,
                 std::uint64_t va_limit)
{
    if (opt.iterations < 1)
        fatal("need at least one iteration");

    const int n = plan.num_stages;
    CompiledWorkload out;
    out.programs.resize(n);
    out.weight_bytes.resize(n, 0);

    // ---- Virtual address layout -------------------------------------
    // [weights stage 0..n-1][inputs][edge buffers][final output]
    Addr cursor = va_base;
    std::vector<Addr> weight_va(n);
    for (int s = 0; s < n; ++s) {
        weight_va[s] = cursor;
        std::uint64_t wb = plan.stage_weight_bytes(model, s);
        out.weight_bytes[s] = wb;
        cursor += (wb + 63) / 64 * 64;
    }
    // Model-input buffers, one per stage that hosts an input layer.
    std::vector<Addr> input_va(n, 0);
    std::vector<std::uint64_t> input_bytes(n, 0);
    for (int s = 0; s < n; ++s) {
        std::uint64_t bytes = 0;
        for (const StageSlice& sl : plan.stages[s].slices) {
            if (model.layers[sl.layer].inputs.empty())
                bytes += model.layers[sl.layer].in_bytes(model.batch);
        }
        if (bytes > 0) {
            input_va[s] = cursor;
            input_bytes[s] = bytes;
            cursor += (bytes + 63) / 64 * 64;
        }
    }
    // Edge staging buffers (used by the UVM lowering only, but laid out
    // unconditionally so both modes see identical address maps).
    std::vector<Addr> edge_va(plan.edges.size());
    for (std::size_t e = 0; e < plan.edges.size(); ++e) {
        edge_va[e] = cursor;
        cursor += (plan.edges[e].bytes + 63) / 64 * 64;
    }
    // Final output buffer.
    const workload::Layer& last = model.layers.back();
    Addr out_va = cursor;
    std::uint64_t out_bytes = last.out_bytes(model.batch);
    cursor += (out_bytes + 63) / 64 * 64;

    out.va_used = cursor - va_base;
    if (out.va_used > va_limit) {
        fatal("compiled VA span (", out.va_used,
              " bytes) exceeds the VM's mapped memory (", va_limit,
              " bytes) for model ", model.name);
    }

    // The stage hosting the final layer emits the result.
    int last_stage = -1;
    for (int s = 0; s < n && last_stage < 0; ++s)
        for (const StageSlice& sl : plan.stages[s].slices)
            if (sl.layer == static_cast<int>(model.layers.size()) - 1)
                last_stage = s;

    // Completion-token edge for single-stream serving.
    const int done_tag = static_cast<int>(plan.edges.size());
    const bool gate = opt.single_stream && n > 1 && last_stage != 0;

    // ---- Per-stage programs -------------------------------------------
    for (int s = 0; s < n; ++s) {
        core::Program& prog = out.programs[s];
        std::uint64_t wb = out.weight_bytes[s];

        // Warm-up: resident weights load once before the first iteration.
        if (!opt.stream_weights && wb > 0) {
            emit_chunked_load(prog, core::Opcode::kLoadWeight, weight_va[s],
                              wb, opt.chunk_bytes);
        }

        for (int it = 0; it < opt.iterations; ++it) {
            prog.push_back(core::Instr::iter_begin());

            // Wait for the previous inference to drain (latency mode).
            if (gate && s == 0 && it > 0) {
                prog.push_back(core::Instr::recv(last_stage, kUvmFlagBytes,
                                                 done_tag));
            }

            if (opt.stream_weights && wb > 0) {
                emit_chunked_load(prog, core::Opcode::kLoadWeight,
                                  weight_va[s], wb, opt.chunk_bytes);
            }
            if (input_bytes[s] > 0) {
                emit_chunked_load(prog, core::Opcode::kLoadGlobal,
                                  input_va[s], input_bytes[s],
                                  opt.chunk_bytes);
            }

            // Incoming edges.
            for (std::size_t e = 0; e < plan.edges.size(); ++e) {
                const workload::CommEdge& edge = plan.edges[e];
                if (edge.dst_stage != s)
                    continue;
                if (opt.comm == CommMode::kDataflow) {
                    prog.push_back(core::Instr::recv(
                        edge.src_stage, edge.bytes, edge.tag));
                } else {
                    prog.push_back(core::Instr::recv(
                        edge.src_stage, kUvmFlagBytes, edge.tag));
                    prog.push_back(core::Instr::load_global(edge_va[e],
                                                            edge.bytes));
                }
            }

            // Compute.
            for (const StageSlice& sl : plan.stages[s].slices) {
                prog.push_back(core::Instr{});
                prog.back().op = core::Opcode::kCompute;
                prog.back().dims = model.layers[sl.layer].lowered(
                    model.batch, sl.fraction);
            }

            // Outgoing edges.
            for (std::size_t e = 0; e < plan.edges.size(); ++e) {
                const workload::CommEdge& edge = plan.edges[e];
                if (edge.src_stage != s)
                    continue;
                if (opt.comm == CommMode::kDataflow) {
                    prog.push_back(core::Instr::send(
                        edge.dst_stage, edge.bytes, edge.tag));
                } else {
                    prog.push_back(core::Instr::store_global(edge_va[e],
                                                             edge.bytes));
                    prog.push_back(core::Instr::send(
                        edge.dst_stage, kUvmFlagBytes, edge.tag));
                }
            }

            // Final result leaves through global memory in both modes.
            if (s == last_stage && out_bytes > 0)
                prog.push_back(core::Instr::store_global(out_va, out_bytes));

            // Completion token back to stage 0 (latency mode).
            if (gate && s == last_stage && it + 1 < opt.iterations)
                prog.push_back(core::Instr::send(0, kUvmFlagBytes,
                                                 done_tag));
        }
        prog.push_back(core::Instr::halt());
    }
    return out;
}

} // namespace vnpu::runtime
