#include "runtime/launcher.h"

#include <algorithm>
#include <set>

#include "sim/log.h"
#include "workload/partitioner.h"

namespace vnpu::runtime {

LoadedRun
WorkloadLauncher::load(const virt::VirtualNpu& vnpu,
                       const workload::Model& model,
                       const LaunchOptions& opt)
{
    return load_impl(&vnpu, vnpu.cores(), model, opt);
}

LoadedRun
WorkloadLauncher::load_bare(const std::vector<CoreId>& cores,
                            const workload::Model& model,
                            const LaunchOptions& opt)
{
    return load_impl(nullptr, cores, model, opt);
}

LoadedRun
WorkloadLauncher::load_impl(const virt::VirtualNpu* vnpu,
                            const std::vector<CoreId>& cores,
                            const workload::Model& model,
                            const LaunchOptions& opt)
{
    VNPU_ASSERT(!cores.empty());
    const SocConfig& cfg = machine_.config();

    LoadedRun run;
    run.vnpu = vnpu;
    run.cores = cores;
    run.options = opt;

    workload::PipelinePlan plan =
        workload::make_pipeline_plan(model, static_cast<int>(cores.size()));

    // Weights stay resident only when every stage fits its share of the
    // scratchpad weight-zone (halved per TDM context).
    int tdm = vnpu ? vnpu->tdm_factor() : 1;
    std::uint64_t zone =
        machine_.scratchpad(cores[0]).weight_zone_capacity() /
        static_cast<std::uint64_t>(tdm);
    bool stream = opt.force_stream_weights;
    for (int s = 0; s < plan.num_stages && !stream; ++s) {
        if (plan.stage_weight_bytes(model, s) > zone * 9 / 10)
            stream = true;
    }

    CompileOptions copt;
    copt.iterations = opt.iterations;
    copt.comm = opt.comm;
    copt.stream_weights = stream;
    copt.single_stream = opt.single_stream;

    Addr va_base = 0x10000;
    std::uint64_t va_limit = UINT64_MAX;
    if (vnpu && vnpu->has_memory()) {
        va_base = vnpu->range_table().entry(0).va;
        va_limit = vnpu->memory_bytes();
    }
    run.compiled = compile_pipeline(model, plan, copt, va_base, va_limit);

    // Bare metal (or vRouter disabled): peers are resolved statically.
    bool runtime_xlat = vnpu != nullptr && opt.use_vrouter;
    if (!runtime_xlat) {
        for (core::Program& prog : run.compiled.programs) {
            for (core::Instr& in : prog) {
                if (in.op == core::Opcode::kSend ||
                    in.op == core::Opcode::kRecv) {
                    in.peer = cores[in.peer];
                }
            }
        }
    }

    // Page-table baseline: one table per VM built from the RTT ranges.
    if (opt.xlat == XlatMode::kPageTlb) {
        if (!vnpu || !vnpu->has_memory())
            fatal("page-TLB translation requires a vNPU with memory");
        run.page_table = std::make_unique<mem::PageTable>(cfg.page_bytes);
        const mem::RangeTable& rtt = vnpu->range_table();
        for (std::size_t i = 0; i < rtt.size(); ++i) {
            const mem::RttEntry& e = rtt.entry(i);
            run.page_table->map_range(e.va, e.pa, e.size, e.perm);
        }
    }
    if (opt.xlat == XlatMode::kVChunk && (!vnpu || !vnpu->has_memory()))
        fatal("vChunk translation requires a vNPU with mapped memory");

    // The access counters enforce the hypervisor-assigned bandwidth as
    // a VM-aggregate rate (one shared token bucket).
    if (vnpu && opt.apply_bw_cap && vnpu->bandwidth_cap() > 0) {
        run.bw_limiter = std::make_unique<mem::SharedBandwidthLimiter>(
            vnpu->bandwidth_cap());
    }

    for (std::size_t v = 0; v < cores.size(); ++v) {
        CoreId pcore = cores[v];
        core::ContextConfig ccfg;
        ccfg.vm = vnpu ? vnpu->vm() : kNoVm;
        ccfg.shared_cap = run.bw_limiter.get();

        if (runtime_xlat) {
            run.vrouters.push_back(std::make_unique<virt::NocVRouter>(
                cfg, vnpu->routing_table(), vnpu->confined_routes()));
            ccfg.vrouter = run.vrouters.back().get();
        }
        switch (opt.xlat) {
          case XlatMode::kPhysical:
            break;
          case XlatMode::kVChunk:
            run.vchunks.push_back(std::make_unique<virt::VChunk>(
                cfg, vnpu->range_table(), opt.tlb_entries));
            ccfg.translator = run.vchunks.back()->translator();
            break;
          case XlatMode::kPageTlb:
            run.page_tlbs.push_back(
                std::make_unique<mem::PageTlbTranslator>(
                    cfg, *run.page_table, opt.tlb_entries));
            ccfg.translator = run.page_tlbs.back().get();
            break;
        }

        // Scratchpad accounting for resident weights.
        if (!stream && run.compiled.weight_bytes[v] > 0) {
            machine_.scratchpad(pcore).alloc_weight(
                model.name + ".stage" + std::to_string(v),
                run.compiled.weight_bytes[v]);
        }

        run.ctx_ids.push_back(machine_.core(pcore).add_context(
            run.compiled.programs[v], ccfg));
    }
    return run;
}

LaunchResult
WorkloadLauncher::collect(const LoadedRun& run) const
{
    const SocConfig& cfg = machine_.config();
    LaunchResult res;
    res.mapping_ted = run.vnpu ? run.vnpu->mapping_ted() : 0.0;

    Tick first_start = kTickMax;
    for (std::size_t v = 0; v < run.cores.size(); ++v) {
        const core::ContextStats& st =
            machine_.core(run.cores[v]).context_stats(run.ctx_ids[v]);
        if (!st.done) {
            panic("collect() before the workload finished (vcore ", v,
                  ")");
        }
        res.makespan = std::max(res.makespan, st.done_tick);
        first_start = std::min(first_start, st.start_tick);
        res.warmup = std::max(res.warmup, st.warmup);
        res.flops += st.flops;
        res.vrouter_cycles += st.vrouter_cycles;
        res.wait_recv += st.wait_recv;
        res.dma_cycles += st.busy_dma;
        res.compute_cycles += st.busy_compute;
        res.iterations = std::max<std::uint64_t>(res.iterations,
                                                 st.iterations);
    }

    // Steady-state period: the final stage's inter-iteration gap. The
    // first gap is dominated by pipeline fill (and staggered weight
    // warm-up), so it is excluded when enough samples exist.
    const core::ContextStats& last = machine_.core(run.cores.back())
                                         .context_stats(run.ctx_ids.back());
    const std::vector<Tick>& starts = last.iter_starts;
    if (starts.size() >= 3) {
        res.iter_period = static_cast<double>(starts.back() - starts[1]) /
                          static_cast<double>(starts.size() - 2);
    } else if (last.iter_latency.count() > 0) {
        res.iter_period = last.iter_latency.mean();
    } else {
        res.iter_period = static_cast<double>(res.makespan - first_start);
    }
    res.fps = res.iter_period > 0
                  ? 1.0 / cfg.seconds(static_cast<Tick>(res.iter_period))
                  : 0.0;

    // Translation stalls.
    for (const auto& vc : run.vchunks)
        res.translation_stall += vc->tlb().stall_cycles();
    for (const auto& pt : run.page_tlbs)
        res.translation_stall += pt->stall_cycles();

    // FLOPS utilization over the post-warm-up window.
    std::set<CoreId> distinct(run.cores.begin(), run.cores.end());
    double window =
        static_cast<double>(res.makespan - first_start) -
        static_cast<double>(res.warmup);
    if (window > 0) {
        double peak = static_cast<double>(distinct.size()) * 2.0 *
                      cfg.peak_macs_per_cycle() * window;
        res.flops_utilization = static_cast<double>(res.flops) / peak;
    }
    return res;
}

LaunchResult
WorkloadLauncher::run_single(const virt::VirtualNpu& vnpu,
                             const workload::Model& model,
                             const LaunchOptions& opt)
{
    LoadedRun run = load(vnpu, model, opt);
    machine_.run();
    return collect(run);
}

} // namespace vnpu::runtime
