/**
 * @file
 * Workload launcher: places a compiled model onto a virtual NPU (or
 * bare-metal core set), installs the per-core virtualization hooks
 * (NoC vRouter, vChunk or page-TLB translation, bandwidth caps), runs
 * the machine, and collects results.
 */

#ifndef VNPU_RUNTIME_LAUNCHER_H
#define VNPU_RUNTIME_LAUNCHER_H

#include <memory>
#include <vector>

#include "mem/page_tlb.h"
#include "runtime/compiler.h"
#include "runtime/machine.h"
#include "virt/virtual_npu.h"
#include "workload/model_zoo.h"

namespace vnpu::runtime {

/** DMA translation scheme for a launch. */
enum class XlatMode {
    kPhysical, ///< no translation (bare metal / ideal)
    kVChunk,   ///< range TLB over the VM's RTT (the paper's design)
    kPageTlb,  ///< page IOTLB baseline
};

/** Launch configuration. */
struct LaunchOptions {
    int iterations = 4;
    CommMode comm = CommMode::kDataflow;
    /** Force weight re-streaming each iteration (else automatic: only
     *  when the stage exceeds the scratchpad weight-zone). */
    bool force_stream_weights = false;
    XlatMode xlat = XlatMode::kVChunk;
    /** TLB entries (range TLB or page TLB, depending on xlat). */
    int tlb_entries = 4;
    /** One inference in flight at a time (latency-critical serving). */
    bool single_stream = false;
    /** Install the NoC vRouter (id rewrite + confinement). */
    bool use_vrouter = true;
    /** Enforce the vNPU's bandwidth cap. */
    bool apply_bw_cap = true;
};

/** Aggregated outcome of one workload run. */
struct LaunchResult {
    Tick makespan = 0;            ///< Last halt tick.
    Cycles warmup = 0;            ///< Max weight warm-up across cores.
    double iter_period = 0;       ///< Steady-state cycles per iteration.
    double fps = 0;               ///< 1 / seconds(iter_period).
    std::uint64_t flops = 0;
    double flops_utilization = 0; ///< vs peak of the allocated cores.
    Cycles translation_stall = 0;
    Cycles vrouter_cycles = 0;
    Cycles wait_recv = 0;
    Cycles dma_cycles = 0;
    Cycles compute_cycles = 0;
    std::uint64_t iterations = 0;
    double mapping_ted = 0;
};

/** Everything a loaded workload owns until results are collected. */
struct LoadedRun {
    const virt::VirtualNpu* vnpu = nullptr; ///< null for bare metal
    std::vector<CoreId> cores;      ///< physical core per virtual core
    std::vector<int> ctx_ids;       ///< context index per virtual core
    CompiledWorkload compiled;
    LaunchOptions options;
    // Owned virtualization hooks (one per virtual core).
    std::vector<std::unique_ptr<virt::NocVRouter>> vrouters;
    std::vector<std::unique_ptr<virt::VChunk>> vchunks;
    std::unique_ptr<mem::PageTable> page_table;
    std::vector<std::unique_ptr<mem::PageTlbTranslator>> page_tlbs;
    std::unique_ptr<mem::SharedBandwidthLimiter> bw_limiter;
};

/** Orchestrates workload placement and measurement. */
class WorkloadLauncher {
  public:
    explicit WorkloadLauncher(Machine& machine) : machine_(machine) {}

    /**
     * Compile `model` for `vnpu` and install one context per virtual
     * core. Call Machine::run() afterwards (possibly after loading
     * more workloads for other VMs), then collect().
     */
    LoadedRun load(const virt::VirtualNpu& vnpu,
                   const workload::Model& model, const LaunchOptions& opt);

    /** Bare-metal variant: physical cores, no virtualization hooks. */
    LoadedRun load_bare(const std::vector<CoreId>& cores,
                        const workload::Model& model,
                        const LaunchOptions& opt);

    /** Gather per-context statistics after Machine::run(). */
    LaunchResult collect(const LoadedRun& run) const;

    /** Convenience: load one workload alone, run, and collect. */
    LaunchResult run_single(const virt::VirtualNpu& vnpu,
                            const workload::Model& model,
                            const LaunchOptions& opt);

  private:
    LoadedRun load_impl(const virt::VirtualNpu* vnpu,
                        const std::vector<CoreId>& cores,
                        const workload::Model& model,
                        const LaunchOptions& opt);

    Machine& machine_;
};

} // namespace vnpu::runtime

#endif // VNPU_RUNTIME_LAUNCHER_H
