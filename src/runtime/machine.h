/**
 * @file
 * Machine: one simulated inter-core connected NPU chip — cores, NoC,
 * HBM, DMA engines, scratchpads and the NPU controller, wired to a
 * shared event queue.
 */

#ifndef VNPU_RUNTIME_MACHINE_H
#define VNPU_RUNTIME_MACHINE_H

#include <memory>
#include <vector>

#include "core/controller.h"
#include "core/npu_core.h"
#include "mem/dma.h"
#include "mem/dram.h"
#include "mem/scratchpad.h"
#include "mem/trace.h"
#include "noc/network.h"
#include "noc/topology.h"
#include "sim/config.h"
#include "sim/event_queue.h"

namespace vnpu::runtime {

/** A fully assembled NPU chip simulator. */
class Machine {
  public:
    explicit Machine(const SocConfig& cfg);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    const SocConfig& config() const { return cfg_; }
    EventQueue& event_queue() { return eq_; }
    const noc::MeshTopology& topology() const { return topo_; }
    noc::Network& network() { return *net_; }
    mem::DramModel& dram() { return *dram_; }
    core::NpuController& controller() { return *ctrl_; }
    mem::MemTraceRecorder& trace() { return trace_; }

    int num_cores() const { return topo_.num_nodes(); }
    core::NpuCore& core(CoreId id) { return *cores_[id]; }
    mem::Scratchpad& scratchpad(CoreId id) { return *spads_[id]; }
    mem::DmaEngine& dma(CoreId id) { return *dmas_[id]; }

    /** Enable DMA tracing on every core (Figure 6 experiments). */
    void enable_trace();

    /**
     * Uniform telemetry sweep over every layer of the chip: event
     * queue (`sim.`), NoC (`noc.`), DRAM/DMA (`mem.`), and cores
     * (`core.`, aggregated across cores via StatSet::add).
     */
    void collect_stats(StatSet& out) const;

    /**
     * Start all cores that have contexts at tick `start` and run the
     * event queue to completion.
     * @return the final simulated tick (the makespan).
     * @throws SimPanic if the queue drains with unfinished contexts
     *         (a deadlocked program — almost always a compiler bug).
     */
    Tick run(Tick start = 0, Tick limit = kTickMax);

  private:
    SocConfig cfg_;
    EventQueue eq_;
    noc::MeshTopology topo_;
    mem::MemTraceRecorder trace_;
    std::unique_ptr<mem::DramModel> dram_;
    std::unique_ptr<noc::Network> net_;
    std::unique_ptr<core::NpuController> ctrl_;
    std::vector<std::unique_ptr<mem::Scratchpad>> spads_;
    std::vector<std::unique_ptr<mem::DmaEngine>> dmas_;
    std::vector<std::unique_ptr<core::NpuCore>> cores_;
};

} // namespace vnpu::runtime

#endif // VNPU_RUNTIME_MACHINE_H
