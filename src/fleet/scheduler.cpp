#include "fleet/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace vnpu::fleet {

namespace {

/** FNV-1a fold of raw bytes (decision fingerprinting). */
std::uint64_t
fnv1a(std::uint64_t h, const void* data, std::size_t n)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnv1a_u64(std::uint64_t h, std::uint64_t v)
{
    return fnv1a(h, &v, sizeof v);
}

/**
 * Size of the largest 4-connected component of `free` on a W x H mesh.
 * kSimilarTopology only admits connected regions, so a device whose
 * largest free component is smaller than the request can never place
 * it — and asking the funnel anyway is the pathological case: its
 * enumerator exhausts an exponential partial-subset tree before
 * concluding that no connected k-subset exists.
 */
int
largest_free_component(const CoreSet& free, int mesh_w, int mesh_h)
{
    CoreSet seen;
    int best = 0;
    std::vector<int> stack;
    for (int id = 0; id < mesh_w * mesh_h; ++id) {
        if (!free.test(id) || seen.test(id))
            continue;
        stack.assign(1, id);
        seen.set(id);
        int size = 0;
        while (!stack.empty()) {
            const int c = stack.back();
            stack.pop_back();
            ++size;
            const int x = c % mesh_w;
            const int y = c / mesh_w;
            const int nb[4][2] = {
                {x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}};
            for (const auto& n : nb) {
                if (n[0] < 0 || n[0] >= mesh_w || n[1] < 0 ||
                    n[1] >= mesh_h)
                    continue;
                const int nid = n[1] * mesh_w + n[0];
                if (free.test(nid) && !seen.test(nid)) {
                    seen.set(nid);
                    stack.push_back(nid);
                }
            }
        }
        best = std::max(best, size);
    }
    return best;
}

} // namespace

const char*
to_string(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::kFirstFit: return "first-fit";
      case PlacementPolicy::kBestFitTed: return "best-fit-ted";
      case PlacementPolicy::kLoadBalanced: return "load-balanced";
    }
    return "?";
}

FleetSimulator::FleetSimulator(const FleetConfig& cfg)
    : cfg_(cfg), arrivals_(cfg.arrival, cfg.seed, cfg.mix)
{
    if (cfg_.num_devices <= 0)
        fatal("fleet needs at least one device");
    if (cfg_.max_defrag_victims < 1)
        fatal("max_defrag_victims must be >= 1");
    if (cfg_.migration_bytes_per_tick <= 0.0)
        fatal("migration_bytes_per_tick must be positive");
    for (const TenantClass& c : arrivals_.mix()) {
        if (c.width > cfg_.device.mesh_x || c.height > cfg_.device.mesh_y)
            fatal("tenant class '", c.model, "' (", c.width, "x", c.height,
                  ") does not fit a ", cfg_.device.mesh_x, "x",
                  cfg_.device.mesh_y, " device");
    }
    devices_.reserve(static_cast<std::size_t>(cfg_.num_devices));
    for (int i = 0; i < cfg_.num_devices; ++i) {
        devices_.push_back(
            std::make_unique<FleetDevice>(i, cfg_.device, cfg_.seed));
        total_cores_ += devices_.back()->num_cores();
    }
    jitter_log_.resize(devices_.size());
    if (cfg_.max_arrivals > 0 && !arrivals_.exhausted())
        next_arrival_ = arrivals_.next();

    // Ride an installed metrics sampler: the fleet is the "machine"
    // (it owns simulated time); the device hypervisors registered
    // themselves as extra collectors under their fleet.devN prefixes.
    if (auto* m = obs::metrics()) {
        m->attach_machine(
            this, [this](StatSet& out) { collect_stats(out); },
            [](std::vector<obs::LinkRecord>&) {},
            [this] { return stats_.admission_wait; });
    }
}

FleetSimulator::~FleetSimulator()
{
    if (auto* m = obs::metrics())
        m->detach_machine(this, now_);
}

// ---- Time integrals ------------------------------------------------------

void
FleetSimulator::advance_integrals(Tick t)
{
    if (t <= last_integral_t_)
        return;
    const double dt = static_cast<double>(t - last_integral_t_);
    used_core_ticks_ += dt * used_cores_;
    queue_depth_ticks_ += dt * static_cast<double>(pending_.size());
    last_integral_t_ = t;
}

void
FleetSimulator::note_used_delta(Tick t, int delta_cores)
{
    advance_integrals(t);
    used_cores_ += delta_cores;
    used_peak_ = std::max(used_peak_, used_cores_);
}

void
FleetSimulator::note_queue_delta(Tick t, int delta)
{
    advance_integrals(t);
    if (delta > 0)
        queue_peak_ = std::max(
            queue_peak_, pending_.size() + static_cast<std::size_t>(delta));
}

// ---- Request plumbing ----------------------------------------------------

hyp::MappingRequest
FleetSimulator::mapping_request(int width, int height,
                                hyp::MappingStrategy s) const
{
    hyp::MappingRequest req;
    req.vtopo = graph::Graph::mesh(width, height);
    req.strategy = s;
    // Mirrors Hypervisor::create: fragmented and straightforward
    // placements cannot be route-confined, so they drop the
    // connectivity requirement.
    req.require_connected = s == hyp::MappingStrategy::kExact ||
                            s == hyp::MappingStrategy::kSimilarTopology;
    req.max_candidates = cfg_.similar_max_candidates;
    req.exact_search_budget = cfg_.exact_search_budget;
    return req;
}

hyp::VnpuSpec
FleetSimulator::vnpu_spec(int width, int height,
                          hyp::MappingStrategy s) const
{
    hyp::VnpuSpec spec;
    spec.topo = graph::Graph::mesh(width, height);
    spec.strategy = s;
    spec.noc_isolation = s == hyp::MappingStrategy::kExact ||
                         s == hyp::MappingStrategy::kSimilarTopology;
    spec.max_candidates = cfg_.similar_max_candidates;
    spec.exact_search_budget = cfg_.exact_search_budget;
    return spec;
}

bool
FleetSimulator::has_free_rect(const CoreSet& free, int w, int h) const
{
    const int mesh_w = cfg_.device.mesh_x;
    const int mesh_h = cfg_.device.mesh_y;
    const auto scan = [&](int rw, int rh) {
        if (rw > mesh_w || rh > mesh_h)
            return false;
        for (int y = 0; y + rh <= mesh_h; ++y)
            for (int x = 0; x + rw <= mesh_w; ++x) {
                bool ok = true;
                for (int r = 0; r < rh && ok; ++r)
                    ok = free.test_range((y + r) * mesh_w + x, rw);
                if (ok)
                    return true;
            }
        return false;
    };
    return scan(w, h) || (w != h && scan(h, w));
}

bool
FleetSimulator::exact_feasible(const CoreSet& free, int w, int h) const
{
    if (w >= 2 && h >= 2)
        return has_free_rect(free, w, h);
    // 1 x N paths can bend around corners, so grid rigidity does not
    // apply: ask the real mapper (it only reads the shared topology,
    // so any device's instance answers for all of them).
    return devices_.front()
        ->hypervisor()
        .mapper()
        .map(mapping_request(w, h, hyp::MappingStrategy::kExact), free)
        .ok;
}

Tick
FleetSimulator::migration_cost(int cores) const
{
    const double bytes =
        static_cast<double>(cfg_.device.spad_bytes_per_core) * cores;
    return static_cast<Tick>(
        std::ceil(bytes / cfg_.migration_bytes_per_tick));
}

// ---- Event loop ----------------------------------------------------------

bool
FleetSimulator::step()
{
    // Next event = min(next arrival, next departure, head timeout).
    Tick t = kTickMax;
    if (next_arrival_)
        t = std::min(t, next_arrival_->arrival);
    while (!departures_.empty() &&
           live_.find(departures_.top().second) == live_.end())
        departures_.pop(); // preempted tenants leave stale entries
    if (!departures_.empty())
        t = std::min(t, departures_.top().first);
    if (!pending_.empty())
        t = std::min(t, pending_.front().req.arrival + cfg_.queue_timeout);

    if (t == kTickMax)
        return false; // every request decided, every tenant departed

    advance_integrals(t);
    now_ = std::max(now_, t);
    process_departures(t);
    absorb_arrivals(t);
    drain_queue(t);
    return true;
}

void
FleetSimulator::run()
{
    while (step()) {
        if (auto* m = obs::metrics())
            m->on_tick(now_);
    }
}

void
FleetSimulator::absorb_arrivals(Tick t)
{
    while (next_arrival_ && next_arrival_->arrival <= t) {
        note_queue_delta(t, 1);
        pending_.push_back(Queued{*next_arrival_, false});
        ++stats_.arrivals;
        next_arrival_.reset();
        if (arrivals_.generated() < cfg_.max_arrivals &&
            !arrivals_.exhausted())
            next_arrival_ = arrivals_.next();
    }
}

void
FleetSimulator::process_departures(Tick t)
{
    while (!departures_.empty() && departures_.top().first <= t) {
        const auto [expiry, id] = departures_.top();
        departures_.pop();
        auto it = live_.find(id);
        if (it == live_.end())
            continue; // preempted: tenant went back to the queue
        const Tenant ten = it->second;
        FleetDevice& dev = *devices_[static_cast<std::size_t>(ten.device)];
        const int cores = ten.width * ten.height;
        dev.hypervisor().destroy(ten.vm);
        note_used_delta(t, -cores);
        VNPU_TRACE(emit_instant(
            "fleet.depart", "fleet", expiry, obs::kTrackFleet,
            {obs::arg("req", id), obs::arg("dev", ten.device),
             obs::arg("vm", static_cast<std::int64_t>(ten.vm)),
             obs::arg("cores", cores)}));
        live_.erase(it);
        capacity_dirty_ = true;
    }
}

void
FleetSimulator::expire_timeouts(Tick t)
{
    // Patience sweep over the whole queue, not just the head: a giant
    // head can block small requests past their own deadlines.
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->req.arrival + cfg_.queue_timeout <= t) {
            reject(it->req.arrival + cfg_.queue_timeout, *it);
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
}

void
FleetSimulator::drain_queue(Tick t)
{
    expire_timeouts(t);
    while (!pending_.empty()) {
        const Queued& head = pending_.front();
        // Damping: a head that failed placement can only succeed after
        // capacity changed (departure, migration) — skip futile scans.
        if (head.req.id == blocked_head_ && !capacity_dirty_)
            return;

        Placement p = place(head.req);
        if (p.ok) {
            blocked_head_ = kNoHead;
            const Queued q = head;
            pending_.pop_front();
            FleetDevice& dev =
                *devices_[static_cast<std::size_t>(p.device)];
            virt::VirtualNpu& vm = dev.hypervisor().create(
                vnpu_spec(q.req.width, q.req.height, p.strategy));
            admit(t, q, p, vm, 0, 0);
            continue;
        }
        if (cfg_.defrag) {
            ++stats_.defrag_attempts;
            DefragPlan plan = plan_defrag(head.req);
            if (plan.ok) {
                ++stats_.defrag_success;
                blocked_head_ = kNoHead;
                const Queued q = head;
                pending_.pop_front();
                DefragExec ex = execute_defrag(t, plan, q.req);
                admit(t, q,
                      Placement{true, plan.device,
                                hyp::MappingStrategy::kExact},
                      *ex.head_vm, ex.wait,
                      static_cast<std::uint32_t>(plan.moves.size()));
                continue;
            }
        }
        blocked_head_ = head.req.id;
        capacity_dirty_ = false;
        return; // head-of-line block until capacity changes
    }
}

// ---- Placement policies --------------------------------------------------

FleetSimulator::Placement
FleetSimulator::place(const FleetRequest& r) const
{
    Placement p = pick_exact(r);
    if (!p.ok && r.cores() <= cfg_.similar_fallback_max_cores)
        p = pick_similar(r);
    return p;
}

FleetSimulator::Placement
FleetSimulator::pick_exact(const FleetRequest& r) const
{
    int best = -1;
    int best_free = 0;
    for (const auto& devp : devices_) {
        const FleetDevice& dev = *devp;
        const int free = dev.free_cores();
        if (free < r.cores())
            continue;
        // The scan is exact for rectangular tenants, so the mapper is
        // only invoked (inside create()) when its rectangle fast path
        // will hit — never the multi-ms polyomino/VF2 miss path.
        if (!exact_feasible(dev.hypervisor().free_cores(), r.width,
                            r.height))
            continue;
        if (cfg_.policy == PlacementPolicy::kFirstFit)
            return Placement{true, dev.id(),
                             hyp::MappingStrategy::kExact};
        // Exact placements all have TED 0, so best-fit-by-TED ties
        // break to the tightest fit; load-balanced wants the loosest.
        const bool better =
            best < 0 ||
            (cfg_.policy == PlacementPolicy::kBestFitTed
                 ? free < best_free
                 : free > best_free);
        if (better) {
            best = dev.id();
            best_free = free;
        }
    }
    if (best < 0)
        return Placement{};
    return Placement{true, best, hyp::MappingStrategy::kExact};
}

FleetSimulator::Placement
FleetSimulator::pick_similar(const FleetRequest& r) const
{
    const hyp::MappingRequest req = mapping_request(
        r.width, r.height, hyp::MappingStrategy::kSimilarTopology);
    int best = -1;
    int best_free = 0;
    double best_ted = 0.0;
    for (const auto& devp : devices_) {
        const FleetDevice& dev = *devp;
        const int free = dev.free_cores();
        if (free < r.cores())
            continue;
        if (largest_free_component(dev.hypervisor().free_cores(),
                                   cfg_.device.mesh_x,
                                   cfg_.device.mesh_y) < r.cores())
            continue; // no connected region is big enough
        const hyp::MappingResult m = dev.hypervisor().try_map(req);
        if (!m.ok)
            continue;
        if (cfg_.policy == PlacementPolicy::kFirstFit)
            return Placement{true, dev.id(),
                             hyp::MappingStrategy::kSimilarTopology};
        bool better = best < 0;
        if (!better) {
            if (cfg_.policy == PlacementPolicy::kBestFitTed)
                better = m.ted < best_ted ||
                         (m.ted == best_ted && free < best_free);
            else
                better = free > best_free;
        }
        if (better) {
            best = dev.id();
            best_free = free;
            best_ted = m.ted;
        }
    }
    if (best < 0)
        return Placement{};
    return Placement{true, best, hyp::MappingStrategy::kSimilarTopology};
}

// ---- Admission / rejection ----------------------------------------------

void
FleetSimulator::admit(Tick t, const Queued& q, const Placement& p,
                      virt::VirtualNpu& vm, Tick migration_wait,
                      std::uint32_t migrations)
{
    FleetDevice& dev = *devices_[static_cast<std::size_t>(p.device)];

    // Admissions serialize through the fleet scheduler; service time
    // is base + the hosting device's private jitter draw. Migration
    // state-copy overlaps service but gates completion.
    const Tick start = std::max(t, sched_free_at_);
    Cycles jitter = 0;
    if (cfg_.admit_jitter_ticks > 0)
        jitter = dev.rng().next_below(cfg_.admit_jitter_ticks);
    if (cfg_.record_device_jitter)
        jitter_log_[static_cast<std::size_t>(p.device)].push_back(jitter);
    const Tick service = cfg_.admit_base_ticks + jitter;
    sched_free_at_ = start + service;
    const Tick done = start + service + migration_wait;

    const int cores = q.req.cores();
    note_used_delta(t, cores);

    Tenant ten;
    ten.request_id = q.req.id;
    ten.tenant_class = q.req.tenant_class;
    ten.width = q.req.width;
    ten.height = q.req.height;
    ten.device = p.device;
    ten.vm = vm.vm();
    ten.expiry = done + q.req.lifetime;
    live_[q.req.id] = ten;
    departures_.emplace(ten.expiry, q.req.id);
    capacity_dirty_ = true; // the create reshaped a free set

    if (q.requeued)
        return; // preempted tenant going around again: already decided

    FleetDecision d;
    d.request_id = q.req.id;
    d.arrival = q.req.arrival;
    d.decided = done;
    d.device = p.device;
    d.vm = vm.vm();
    d.cores = cores;
    d.ted = vm.mapping_ted();
    d.admitted = true;
    d.migrations = migrations;
    record_decision(d);

    ++stats_.admitted;
    if (p.strategy == hyp::MappingStrategy::kExact)
        ++stats_.admitted_exact;
    else
        ++stats_.admitted_similar;
    stats_.admission_wait.record(
        static_cast<double>(done - q.req.arrival));
    stats_.realized_ted.record(d.ted);

    VNPU_TRACE(emit_complete(
        "fleet.admit", "fleet", start, service + migration_wait,
        obs::kTrackFleet,
        {obs::arg("req", q.req.id), obs::arg("dev", p.device),
         obs::arg("vm", static_cast<std::int64_t>(vm.vm())),
         obs::arg("cores", cores), obs::arg("ted", d.ted),
         obs::arg("wait", done - q.req.arrival),
         obs::arg("migrations", migrations)}));
}

void
FleetSimulator::reject(Tick t, const Queued& q)
{
    FleetDecision d;
    d.request_id = q.req.id;
    d.arrival = q.req.arrival;
    d.decided = t;
    d.cores = q.req.cores();
    d.admitted = false;
    record_decision(d);
    ++stats_.rejected;
    VNPU_TRACE(emit_instant(
        "fleet.reject", "fleet", t, obs::kTrackFleet,
        {obs::arg("req", q.req.id), obs::arg("cores", d.cores),
         obs::arg("waited", t - q.req.arrival)}));
}

// ---- Defragmentation / migration ----------------------------------------

FleetSimulator::DefragPlan
FleetSimulator::plan_defrag(const FleetRequest& r) const
{
    const hyp::MappingRequest ereq =
        mapping_request(r.width, r.height, hyp::MappingStrategy::kExact);

    // Try devices in descending free-core order (ties: lowest id) —
    // the emptiest device needs the fewest migrations.
    std::vector<int> order;
    for (const auto& devp : devices_)
        order.push_back(devp->id());
    std::sort(order.begin(), order.end(), [this](int a, int b) {
        const int fa = devices_[static_cast<std::size_t>(a)]->free_cores();
        const int fb = devices_[static_cast<std::size_t>(b)]->free_cores();
        return fa != fb ? fa > fb : a < b;
    });

    for (int d : order) {
        const FleetDevice& dev = *devices_[static_cast<std::size_t>(d)];
        // Candidate victims on this device, smallest (cheapest) first.
        std::vector<const Tenant*> resident;
        for (const auto& [id, ten] : live_)
            if (ten.device == d)
                resident.push_back(&ten);
        std::sort(resident.begin(), resident.end(),
                  [](const Tenant* a, const Tenant* b) {
                      const int ca = a->width * a->height;
                      const int cb = b->width * b->height;
                      return ca != cb ? ca < cb
                                      : a->request_id < b->request_id;
                  });

        CoreSet acc = dev.hypervisor().free_cores();
        std::vector<const Tenant*> victims;
        for (const Tenant* v : resident) {
            if (static_cast<int>(victims.size()) >=
                cfg_.max_defrag_victims)
                break;
            acc |= dev.hypervisor().find(v->vm)->mask();
            victims.push_back(v);
            if (acc.count() < r.cores())
                continue;
            if (!exact_feasible(acc, r.width, r.height))
                continue; // cheap complete scan gates the mapper call
            const hyp::MappingResult m =
                dev.hypervisor().mapper().map(ereq, acc);
            if (!m.ok)
                continue;

            // The head request lands on region_r; only victims it
            // actually overlaps need to move.
            const CoreSet region_r = CoreSet::from_range(m.assignment);
            std::vector<const Tenant*> moving;
            CoreSet avail = dev.hypervisor().free_cores();
            for (const Tenant* w : victims) {
                const CoreSet wm =
                    dev.hypervisor().find(w->vm)->mask();
                if ((wm & region_r).none())
                    continue; // stays put, keeps its cores
                moving.push_back(w);
                avail |= wm;
            }
            avail = avail.andnot(region_r);

            // Verify a landing spot for every mover (largest first, so
            // big blocks grab contiguous space before crumbs do).
            // Hypothetical free sets track multi-mover consumption on
            // every device; execution replays the moves in plan order
            // against exactly these sets.
            std::sort(moving.begin(), moving.end(),
                      [](const Tenant* a, const Tenant* b) {
                          const int ca = a->width * a->height;
                          const int cb = b->width * b->height;
                          return ca != cb
                                     ? ca > cb
                                     : a->request_id < b->request_id;
                      });
            std::map<int, CoreSet> other_avail;
            for (const auto& op : devices_)
                if (op->id() != d)
                    other_avail[op->id()] =
                        op->hypervisor().free_cores();

            DefragPlan plan;
            plan.device = d;
            bool feasible = true;
            for (const Tenant* w : moving) {
                VictimMove mv;
                mv.request_id = w->request_id;
                const hyp::MappingRequest wexact = mapping_request(
                    w->width, w->height, hyp::MappingStrategy::kExact);
                // Same device, in the space left after the head lands.
                bool placed = false;
                if (exact_feasible(avail, w->width, w->height)) {
                    const hyp::MappingResult wm =
                        dev.hypervisor().mapper().map(wexact, avail);
                    mv.to_device = d;
                    mv.strategy = hyp::MappingStrategy::kExact;
                    avail = avail.andnot(
                        CoreSet::from_range(wm.assignment));
                    plan.moves.push_back(mv);
                    continue;
                }
                // Other devices, exact, first-fit.
                for (auto& [oid, ofree] : other_avail) {
                    if (!exact_feasible(ofree, w->width, w->height))
                        continue;
                    const hyp::MappingResult om =
                        dev.hypervisor().mapper().map(wexact, ofree);
                    mv.to_device = oid;
                    mv.strategy = hyp::MappingStrategy::kExact;
                    ofree =
                        ofree.andnot(CoreSet::from_range(om.assignment));
                    placed = true;
                    break;
                }
                // Last resort: straightforward on the home device —
                // the k lowest free cores, no contiguity and no NoC
                // isolation, but also no search cost.
                if (!placed &&
                    avail.count() >= w->width * w->height) {
                    const hyp::MappingRequest wsf = mapping_request(
                        w->width, w->height,
                        hyp::MappingStrategy::kStraightforward);
                    const hyp::MappingResult fm =
                        dev.hypervisor().mapper().map(wsf, avail);
                    if (fm.ok) {
                        mv.to_device = d;
                        mv.strategy =
                            hyp::MappingStrategy::kStraightforward;
                        avail = avail.andnot(
                            CoreSet::from_range(fm.assignment));
                        placed = true;
                    }
                }
                if (!placed) {
                    feasible = false;
                    break;
                }
                plan.moves.push_back(mv);
            }
            if (!feasible)
                continue; // accumulate more victims / next device
            plan.ok = true;
            return plan;
        }
    }
    return DefragPlan{};
}

FleetSimulator::DefragExec
FleetSimulator::execute_defrag(Tick t, const DefragPlan& plan,
                               const FleetRequest& r)
{
    FleetDevice& home = *devices_[static_cast<std::size_t>(plan.device)];
    DefragExec ex;

    // Destroy every mover first so the head request sees the exact
    // free set its mapping was verified against; then land the head;
    // then re-place the movers in plan order (the plan's hypothetical
    // free sets replay exactly).
    std::vector<Tenant> moved;
    moved.reserve(plan.moves.size());
    for (const VictimMove& mv : plan.moves) {
        Tenant& ten = live_.at(mv.request_id);
        home.hypervisor().destroy(ten.vm);
        note_used_delta(t, -(ten.width * ten.height));
        moved.push_back(ten);
        live_.erase(mv.request_id);
    }

    ex.head_vm = &home.hypervisor().create(
        vnpu_spec(r.width, r.height, hyp::MappingStrategy::kExact));

    for (std::size_t i = 0; i < plan.moves.size(); ++i) {
        const VictimMove& mv = plan.moves[i];
        Tenant ten = moved[i];
        FleetDevice& target =
            *devices_[static_cast<std::size_t>(mv.to_device)];
        const int cores = ten.width * ten.height;
        try {
            const virt::VirtualNpu& nv = target.hypervisor().create(
                vnpu_spec(ten.width, ten.height, mv.strategy));
            const Tick cost = migration_cost(cores);
            ex.wait = std::max(ex.wait, cost);
            ++stats_.migrations;
            stats_.migrated_cores += static_cast<std::uint64_t>(cores);
            stats_.migration_ticks.record(static_cast<double>(cost));
            VNPU_TRACE(emit_complete(
                "fleet.migrate", "fleet", t, cost, obs::kTrackFleet,
                {obs::arg("req", ten.request_id),
                 obs::arg("from", plan.device),
                 obs::arg("to", mv.to_device), obs::arg("cores", cores),
                 obs::arg("strategy", to_string(mv.strategy))}));
            ten.device = mv.to_device;
            ten.vm = nv.vm();
            note_used_delta(t, cores);
            live_[ten.request_id] = ten;
            departures_.emplace(ten.expiry, ten.request_id);
        } catch (const SimFatal&) {
            // The verified plan failed anyway (should not happen): the
            // tenant is preempted back into the queue with its
            // remaining lifetime and a fresh patience window.
            FleetRequest back;
            back.id = ten.request_id;
            back.arrival = t;
            back.width = ten.width;
            back.height = ten.height;
            back.lifetime = ten.expiry > t ? ten.expiry - t : 1;
            back.tenant_class = ten.tenant_class;
            note_queue_delta(t, 1);
            pending_.push_back(Queued{back, true});
            ++stats_.preemptions;
        }
    }
    capacity_dirty_ = true;
    return ex;
}

// ---- Reporting -----------------------------------------------------------

void
FleetSimulator::record_decision(const FleetDecision& d)
{
    decisions_.push_back(d);
}

std::uint64_t
FleetSimulator::decision_hash() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const FleetDecision& d : decisions_) {
        h = fnv1a_u64(h, d.request_id);
        h = fnv1a_u64(h, d.arrival);
        h = fnv1a_u64(h, d.decided);
        h = fnv1a_u64(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(d.device)));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(d.vm)));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(d.cores));
        std::uint64_t ted_bits = 0;
        static_assert(sizeof ted_bits == sizeof d.ted);
        std::memcpy(&ted_bits, &d.ted, sizeof ted_bits);
        h = fnv1a_u64(h, ted_bits);
        h = fnv1a_u64(h, d.admitted ? 1 : 0);
        h = fnv1a_u64(h, d.migrations);
    }
    return h;
}

std::uint64_t
FleetSimulator::decision_hash48() const
{
    const std::uint64_t h = decision_hash();
    return (h ^ (h >> 48)) & ((std::uint64_t{1} << 48) - 1);
}

std::vector<std::pair<int, VmId>>
FleetSimulator::live_vms() const
{
    std::vector<std::pair<int, VmId>> out;
    out.reserve(live_.size());
    for (const auto& [id, ten] : live_)
        out.emplace_back(ten.device, ten.vm);
    std::sort(out.begin(), out.end());
    return out;
}

double
FleetSimulator::utilization_mean() const
{
    const double horizon =
        static_cast<double>(std::max<Tick>(last_integral_t_, 1));
    return used_core_ticks_ / (horizon * std::max(total_cores_, 1));
}

double
FleetSimulator::utilization_peak() const
{
    return static_cast<double>(used_peak_) / std::max(total_cores_, 1);
}

double
FleetSimulator::queue_depth_mean() const
{
    const double horizon =
        static_cast<double>(std::max<Tick>(last_integral_t_, 1));
    return queue_depth_ticks_ / horizon;
}

void
FleetSimulator::collect_stats(StatSet& out,
                              const std::string& prefix) const
{
    out.add(prefix + "arrivals",
            static_cast<double>(stats_.arrivals.value()));
    out.add(prefix + "admitted",
            static_cast<double>(stats_.admitted.value()));
    out.add(prefix + "rejected",
            static_cast<double>(stats_.rejected.value()));
    out.add(prefix + "admitted.exact",
            static_cast<double>(stats_.admitted_exact.value()));
    out.add(prefix + "admitted.similar",
            static_cast<double>(stats_.admitted_similar.value()));
    out.add(prefix + "defrag.attempts",
            static_cast<double>(stats_.defrag_attempts.value()));
    out.add(prefix + "defrag.success",
            static_cast<double>(stats_.defrag_success.value()));
    out.add(prefix + "migrations",
            static_cast<double>(stats_.migrations.value()));
    out.add(prefix + "migrated_cores",
            static_cast<double>(stats_.migrated_cores.value()));
    out.add(prefix + "preemptions",
            static_cast<double>(stats_.preemptions.value()));
    out.set(prefix + "devices", static_cast<double>(devices_.size()));
    out.set(prefix + "queue.depth",
            static_cast<double>(pending_.size()));
    out.set(prefix + "queue.depth_peak",
            static_cast<double>(queue_peak_));
    out.set(prefix + "queue.depth_mean", queue_depth_mean());
    out.set(prefix + "live_tenants", static_cast<double>(live_.size()));
    out.set(prefix + "util.mean", utilization_mean());
    out.set(prefix + "util.peak", utilization_peak());
    stats_.admission_wait.collect(out, prefix + "wait.");
    stats_.realized_ted.collect(out, prefix + "ted.");
    stats_.migration_ticks.collect(out, prefix + "migration.");
}

} // namespace vnpu::fleet
