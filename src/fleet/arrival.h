/**
 * @file
 * Open-loop arrival processes for fleet-scale serving simulation.
 *
 * A serving frontend does not wait for the rack to drain before the
 * next tenant shows up: requests arrive on their own clock (open loop)
 * and queue when the fleet is full. This module generates that stream:
 * Poisson arrivals, a two-state bursty variant (Markov-modulated
 * Poisson), or replay of an explicit arrival-tick trace, with the
 * tenant mix drawn from the model zoo (src/workload/model_zoo.h).
 *
 * Determinism: every draw comes from one explicitly seeded Rng
 * substream owned by the process; the sequence of requests is a pure
 * function of (config, seed).
 */

#ifndef VNPU_FLEET_ARRIVAL_H
#define VNPU_FLEET_ARRIVAL_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace vnpu::fleet {

/**
 * One tenant class of the serving mix: a model-zoo workload mapped to
 * the rectangular vNPU shape it is served on, with an arrival weight
 * and a mean service lifetime. Shapes are rectangles (width x height)
 * because production serving carves accelerator meshes into tiles; the
 * topology mapper's sliding-rectangle fast path admits them in
 * microseconds, and fragmentation pressure comes from the size spread.
 */
struct TenantClass {
    const char* model;   ///< Model-zoo short name (validated at build).
    int width = 1;       ///< Requested mesh width.
    int height = 1;      ///< Requested mesh height.
    double weight = 1.0; ///< Relative arrival probability.
    Tick mean_lifetime = 0; ///< Mean service duration (exponential).
};

/**
 * The default serving mix: mostly small CNN tenants, a tail of large
 * transformer tenants whose 128/256-core rectangles are the requests
 * that fragmentation blocks first (docs/fleet.md).
 */
const std::vector<TenantClass>& default_tenant_mix();

/** How arrival instants are generated. */
enum class ArrivalModel : std::uint8_t {
    kPoisson, ///< Exponential inter-arrival gaps.
    kBursty,  ///< Two-state MMPP: calm gaps / burst_factor inside bursts.
    kTrace,   ///< Replay explicit arrival ticks (tests, recorded loads).
};

const char* to_string(ArrivalModel m);

/** Arrival-process parameters. */
struct ArrivalConfig {
    ArrivalModel model = ArrivalModel::kPoisson;
    /** Mean inter-arrival gap in ticks (calm-state mean for kBursty). */
    Tick mean_gap = 100;
    /** kBursty: gaps shrink by this factor inside a burst. */
    double burst_factor = 8.0;
    /** kBursty: per-arrival probability of entering a burst. */
    double burst_enter = 0.05;
    /** kBursty: per-arrival probability of leaving a burst. */
    double burst_exit = 0.2;
    /** kTrace: arrival ticks, non-decreasing; the tenant mix is still
     *  drawn per arrival from the rng substream. */
    std::vector<Tick> trace;
};

/** One serving request emitted by the arrival process. */
struct FleetRequest {
    std::uint64_t id = 0;  ///< Monotonic arrival number.
    Tick arrival = 0;      ///< Arrival instant (open loop).
    int width = 1;         ///< Requested mesh width.
    int height = 1;        ///< Requested mesh height.
    Tick lifetime = 0;     ///< Service duration once admitted.
    int tenant_class = 0;  ///< Index into the mix.

    int cores() const { return width * height; }
};

/**
 * Open-loop request generator. `next()` returns requests with
 * non-decreasing arrival ticks; the process never looks at fleet
 * state, which is what makes the load open-loop.
 */
class ArrivalProcess {
  public:
    /**
     * @param seed Master fleet seed; the process draws from its own
     *        substream so arrival randomness is decoupled from every
     *        device's decision stream (see Rng::substream).
     * @throws SimFatal when the mix is empty, names an unknown
     *         model-zoo entry, or a kTrace config has a decreasing
     *         trace.
     */
    ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed,
                   std::vector<TenantClass> mix = default_tenant_mix());

    /** Generate the next arrival. @pre !exhausted() */
    FleetRequest next();

    /** kTrace only: true once the trace is fully replayed. */
    bool exhausted() const;

    std::uint64_t generated() const { return next_id_; }
    const std::vector<TenantClass>& mix() const { return mix_; }

  private:
    Tick next_gap();

    ArrivalConfig cfg_;
    std::vector<TenantClass> mix_;
    std::vector<double> cum_weight_;
    Rng rng_;
    Tick now_ = 0;
    std::uint64_t next_id_ = 0;
    bool burst_ = false;
    std::size_t trace_pos_ = 0;
};

} // namespace vnpu::fleet

#endif // VNPU_FLEET_ARRIVAL_H
