/**
 * @file
 * Fleet-scale serving simulation: an online scheduler that drives N
 * simulated devices through an open-loop arrival stream, with an
 * admission queue, inter-device placement policies, and vNPU
 * migration / defragmentation (docs/fleet.md).
 *
 * The simulator advances over three event kinds — arrivals,
 * departures, and queue-head patience timeouts — strictly in tick
 * order (departures before arrivals at equal ticks, both before
 * admission decisions). Requests queue FIFO with head-of-line
 * blocking: the head is placed as soon as any device can host it,
 * optionally after a defragmentation pass migrates small tenants to
 * carve out an exact region; requests whose patience runs out are
 * rejected.
 *
 * Determinism contract: the decision sequence is a pure function of
 * (FleetConfig, seed). All randomness flows through named Rng
 * substreams (arrival process, per-device jitter), every container
 * iterated for decisions is ordered, and the mapper layer underneath
 * is worker-count invariant — so BENCH_fleet.json decision columns
 * are bit-identical for any TaskPool worker count.
 */

#ifndef VNPU_FLEET_SCHEDULER_H
#define VNPU_FLEET_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "fleet/arrival.h"
#include "fleet/device.h"
#include "hyp/topology_mapper.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::fleet {

/** How the scheduler picks a device for the queue head. */
enum class PlacementPolicy : std::uint8_t {
    kFirstFit,     ///< Lowest-id device that can host the request.
    kBestFitTed,   ///< Minimize realized TED, then tightest free count.
    kLoadBalanced, ///< Most free cores (spread load), ties to lowest id.
};

const char* to_string(PlacementPolicy p);

/** Fleet-simulation parameters. */
struct FleetConfig {
    int num_devices = 4;
    /** Per-device SoC (every device is identical). */
    SocConfig device;
    std::uint64_t seed = 1;
    PlacementPolicy policy = PlacementPolicy::kFirstFit;
    ArrivalConfig arrival;
    std::vector<TenantClass> mix = default_tenant_mix();
    /** Stop generating after this many arrivals (trace length caps
     *  kTrace runs regardless). */
    std::uint64_t max_arrivals = 10'000;
    /** Patience: a queued request still waiting this many ticks after
     *  arrival is rejected. */
    Tick queue_timeout = 25'000;
    /** Admission service time: base + uniform jitter in [0, jitter)
     *  drawn from the hosting device's private stream. Admissions
     *  serialize through one fleet scheduler (open-loop queueing). */
    Cycles admit_base_ticks = 200;
    Cycles admit_jitter_ticks = 64;
    /** Step budget per exact-map attempt; keeps a blocked 256-core
     *  head from stalling the event loop on hopeless searches. */
    std::uint64_t exact_search_budget = 20'000;
    /** Exact misses fall back to kSimilarTopology only for requests
     *  this small (candidate enumeration costs ~100 ms per scan on a
     *  fragmented 1024-core mesh, so it is reserved for the small
     *  tenants that benefit most). */
    int similar_fallback_max_cores = 16;
    std::uint64_t similar_max_candidates = 16;
    // ---- Defragmentation / migration -----------------------------------
    bool defrag = true;
    /** Most tenants migrated to admit one blocked request. */
    int max_defrag_victims = 3;
    /** Migration cost model: moving a tenant copies its SPAD-resident
     *  state at this rate (ticks = ceil(cores * spad_bytes_per_core /
     *  rate)); the admitting request waits for the slowest victim. */
    double migration_bytes_per_tick = 65536.0;
    /** Record per-device jitter draws (tests; unbounded memory). */
    bool record_device_jitter = false;
};

/** One scheduling decision, in decision order. */
struct FleetDecision {
    std::uint64_t request_id = 0;
    Tick arrival = 0;
    /** Admission-complete tick (admitted) or rejection tick. */
    Tick decided = 0;
    std::int32_t device = -1; ///< -1 when rejected.
    VmId vm = kNoVm;
    std::int32_t cores = 0;
    double ted = 0.0;
    bool admitted = false;
    /** Tenants migrated to make room for this request. */
    std::uint32_t migrations = 0;
};

/** Fleet-level statistics (device hypervisors keep their own). */
struct FleetStats {
    Counter arrivals;
    Counter admitted;
    Counter rejected;          ///< Patience timeouts.
    Counter admitted_exact;    ///< Placed by the exact strategy.
    Counter admitted_similar;  ///< Placed by the similar fallback.
    Counter defrag_attempts;
    Counter defrag_success;
    Counter migrations;
    Counter migrated_cores;
    Counter preemptions;       ///< Victims requeued (re-place failed).
    Histogram admission_wait;  ///< decided - arrival, admitted only.
    Histogram realized_ted;    ///< Realized TED of admitted requests.
    Histogram migration_ticks; ///< Per-migration state-copy cost.
};

/**
 * The fleet: N devices, one open-loop arrival stream, one online
 * scheduler. Construct, then `run()` (or `step()` until false), then
 * read `decisions()` / `stats()` / `collect_stats()`.
 */
class FleetSimulator {
  public:
    explicit FleetSimulator(const FleetConfig& cfg);
    ~FleetSimulator();

    FleetSimulator(const FleetSimulator&) = delete;
    FleetSimulator& operator=(const FleetSimulator&) = delete;

    /** Process the next event; false once every arrival is decided. */
    bool step();

    /** Run to completion (every generated request decided). */
    void run();

    const FleetConfig& config() const { return cfg_; }
    int num_devices() const { return static_cast<int>(devices_.size()); }
    FleetDevice& device(int i) { return *devices_.at(i); }
    const FleetDevice& device(int i) const { return *devices_.at(i); }

    Tick now() const { return now_; }
    std::size_t queue_depth() const { return pending_.size(); }
    std::size_t live_tenants() const { return live_.size(); }

    const FleetStats& stats() const { return stats_; }
    const std::vector<FleetDecision>& decisions() const
    {
        return decisions_;
    }

    /** FNV-1a over every decision field, in decision order: the
     *  fingerprint CI diffs across TaskPool worker counts. */
    std::uint64_t decision_hash() const;
    /** decision_hash() folded to 48 bits (exact in a JSON double). */
    std::uint64_t decision_hash48() const;

    /** Live VM regions per device id, in (device, vm) order — input
     *  for check::verify_vm_partition in the fleet invariant tests. */
    std::vector<std::pair<int, VmId>> live_vms() const;

    /** Time-weighted mean fleet utilization over [0, now]. */
    double utilization_mean() const;
    /** Peak instantaneous fleet utilization. */
    double utilization_peak() const;
    /** Time-weighted mean queue depth over [0, now]. */
    double queue_depth_mean() const;
    std::size_t queue_depth_peak() const { return queue_peak_; }

    /** Fleet-level gauges and counters under `prefix`. */
    void collect_stats(StatSet& out,
                       const std::string& prefix = "fleet.") const;

    /** Jitter draws of device `i`, oldest first (only recorded under
     *  FleetConfig::record_device_jitter). */
    const std::vector<Cycles>& device_jitter_log(int i) const
    {
        return jitter_log_.at(i);
    }

  private:
    /** One queued request; `requeued` marks a preempted tenant going
     *  around again (its original decision is already recorded). */
    struct Queued {
        FleetRequest req;
        bool requeued = false;
    };

    /** A live (admitted) tenant. */
    struct Tenant {
        std::uint64_t request_id = 0;
        int tenant_class = 0;
        int width = 1;
        int height = 1;
        int device = -1;
        VmId vm = kNoVm;
        Tick expiry = 0;
    };

    /** Outcome of a placement scan (no fleet state mutated). */
    struct Placement {
        bool ok = false;
        int device = -1;
        hyp::MappingStrategy strategy = hyp::MappingStrategy::kExact;
    };

    /** One planned victim move of a defrag pass. */
    struct VictimMove {
        std::uint64_t request_id = 0;
        int to_device = -1;
        hyp::MappingStrategy strategy = hyp::MappingStrategy::kExact;
    };

    /** A fully verified defrag plan for the queue head. */
    struct DefragPlan {
        bool ok = false;
        int device = -1; ///< Where the head request will land.
        std::vector<VictimMove> moves;
    };

    /** Result of executing a defrag plan. */
    struct DefragExec {
        virt::VirtualNpu* head_vm = nullptr; ///< Pre-created head VM.
        Tick wait = 0; ///< Slowest migration's state-copy cost.
    };

    hyp::MappingRequest mapping_request(int width, int height,
                                        hyp::MappingStrategy s) const;
    hyp::VnpuSpec vnpu_spec(int width, int height,
                            hyp::MappingStrategy s) const;

    /**
     * Exact-map feasibility of a w x h request against `free`, without
     * running the mapper's miss-path search. Grid graphs with both
     * sides >= 2 are rigid — every 4-cycle must land on a lattice unit
     * square, so an induced embedding is an axis-aligned rectangle in
     * one of two orientations — which makes a complete free-rectangle
     * scan equivalent to (and ~1000x cheaper than) the mapper's
     * polyomino/VF2 miss path. Degenerate 1 x N requests can bend, so
     * they fall through to the real mapper.
     */
    bool exact_feasible(const CoreSet& free, int w, int h) const;
    bool has_free_rect(const CoreSet& free, int w, int h) const;

    /** Advance the utilization / queue-depth integrals to `t`. */
    void advance_integrals(Tick t);
    void note_used_delta(Tick t, int delta_cores);
    void note_queue_delta(Tick t, int delta);

    void absorb_arrivals(Tick t);
    void process_departures(Tick t);
    void expire_timeouts(Tick t);
    void drain_queue(Tick t);

    /** Dry-run scan: can any device host `r` right now, and which one
     *  does the policy pick? */
    Placement place(const FleetRequest& r) const;
    Placement pick_exact(const FleetRequest& r) const;
    Placement pick_similar(const FleetRequest& r) const;

    /** Book an admission: `vm` was just created on `p.device` (by the
     *  plain path or mid-defrag); records the decision and schedules
     *  the departure. */
    void admit(Tick t, const Queued& q, const Placement& p,
               virt::VirtualNpu& vm, Tick migration_wait,
               std::uint32_t migrations);
    void reject(Tick t, const Queued& q);

    DefragPlan plan_defrag(const FleetRequest& r) const;
    /** Execute a verified plan: destroy the movers, create the head
     *  request's VM in the hole, re-place the movers. */
    DefragExec execute_defrag(Tick t, const DefragPlan& plan,
                              const FleetRequest& r);

    Tick migration_cost(int cores) const;
    void record_decision(const FleetDecision& d);

    FleetConfig cfg_;
    ArrivalProcess arrivals_;
    std::vector<std::unique_ptr<FleetDevice>> devices_;

    Tick now_ = 0;
    /** Next undelivered arrival (generated one ahead); empty once
     *  max_arrivals is reached or the trace is exhausted. */
    std::optional<FleetRequest> next_arrival_;
    std::deque<Queued> pending_;
    std::map<std::uint64_t, Tenant> live_; ///< Ordered: victim scans.
    /** Departure min-heap of (expiry, request id); entries whose id is
     *  no longer live (preempted tenants) are skipped lazily. */
    std::priority_queue<std::pair<Tick, std::uint64_t>,
                        std::vector<std::pair<Tick, std::uint64_t>>,
                        std::greater<>>
        departures_;

    /** The serial admission scheduler frees up at this tick. */
    Tick sched_free_at_ = 0;
    static constexpr std::uint64_t kNoHead = ~std::uint64_t{0};
    /** Head-of-line retry damping: skip re-placing a blocked head
     *  until capacity changed (departure / migration) or the head
     *  itself changed. */
    std::uint64_t blocked_head_ = kNoHead;
    bool capacity_dirty_ = true;

    // ---- SLO accounting --------------------------------------------------
    FleetStats stats_;
    std::vector<FleetDecision> decisions_;
    int used_cores_ = 0;
    int total_cores_ = 0;
    double used_core_ticks_ = 0.0;   ///< Integral of used_cores_ dt.
    double queue_depth_ticks_ = 0.0; ///< Integral of queue depth dt.
    Tick last_integral_t_ = 0;
    int used_peak_ = 0;
    std::size_t queue_peak_ = 0;

    std::vector<std::vector<Cycles>> jitter_log_;
};

} // namespace vnpu::fleet

#endif // VNPU_FLEET_SCHEDULER_H
