#include "fleet/arrival.h"

#include <cmath>

#include "sim/log.h"
#include "workload/model_zoo.h"

namespace vnpu::fleet {

namespace {

/** Substream id of the arrival process under the master fleet seed —
 *  far away from the device ids that seed per-device streams. */
constexpr std::uint64_t kArrivalStream = 0xA227B4A1ULL;

/** Exponential gap with the given mean, quantized to >= 1 tick. */
Tick
exponential_gap(Rng& rng, double mean)
{
    // 1 - u in (0, 1]: log() never sees zero.
    double u = rng.next_double();
    double g = -std::log(1.0 - u) * mean;
    if (g < 1.0)
        return 1;
    return static_cast<Tick>(std::llround(g));
}

} // namespace

const std::vector<TenantClass>&
default_tenant_mix()
{
    // Shapes follow the serving footprint of each zoo model: small
    // CNNs tile onto 4-16 cores, encoder/decoder stacks onto 32-64,
    // and the GPT-2 tail wants 128/256-core rectangles. Lifetimes put
    // roughly half the steady-state core demand in the large classes,
    // so fragmentation (not raw capacity) is what blocks them.
    static const std::vector<TenantClass> mix{
        {"mobilenet", 2, 2, 0.14, 40'000},
        {"resnet18", 2, 2, 0.20, 60'000},
        {"resnet34", 4, 2, 0.16, 60'000},
        {"resnet50", 4, 4, 0.14, 80'000},
        {"bert", 8, 4, 0.12, 100'000},
        {"gpt2-s", 8, 8, 0.10, 120'000},
        {"gpt2-m", 16, 8, 0.08, 150'000},
        {"gpt2-l", 16, 16, 0.06, 200'000},
    };
    return mix;
}

const char*
to_string(ArrivalModel m)
{
    switch (m) {
      case ArrivalModel::kPoisson: return "poisson";
      case ArrivalModel::kBursty: return "bursty";
      case ArrivalModel::kTrace: return "trace";
    }
    return "?";
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg,
                               std::uint64_t seed,
                               std::vector<TenantClass> mix)
    : cfg_(cfg), mix_(std::move(mix)),
      rng_(Rng::substream(seed, kArrivalStream))
{
    if (mix_.empty())
        fatal("arrival process needs a non-empty tenant mix");
    if (cfg_.mean_gap == 0)
        fatal("arrival mean_gap must be >= 1 tick");
    double cum = 0.0;
    for (const TenantClass& c : mix_) {
        if (c.width <= 0 || c.height <= 0 || c.weight <= 0.0)
            fatal("tenant class '", c.model,
                  "' needs positive shape and weight");
        // The mix is drawn from the model zoo: every class must name a
        // real workload (by_name throws on typos).
        (void)workload::by_name(c.model);
        cum += c.weight;
        cum_weight_.push_back(cum);
    }
    for (std::size_t i = 1; i < cfg_.trace.size(); ++i) {
        if (cfg_.trace[i] < cfg_.trace[i - 1])
            fatal("arrival trace must be non-decreasing");
    }
    if (cfg_.model == ArrivalModel::kTrace && cfg_.trace.empty())
        fatal("kTrace arrival model needs a non-empty trace");
}

bool
ArrivalProcess::exhausted() const
{
    return cfg_.model == ArrivalModel::kTrace &&
           trace_pos_ >= cfg_.trace.size();
}

Tick
ArrivalProcess::next_gap()
{
    switch (cfg_.model) {
      case ArrivalModel::kPoisson:
        return exponential_gap(rng_,
                               static_cast<double>(cfg_.mean_gap));
      case ArrivalModel::kBursty: {
        double mean = static_cast<double>(cfg_.mean_gap);
        if (burst_)
            mean /= cfg_.burst_factor;
        Tick gap = exponential_gap(rng_, mean);
        // State transition after each arrival (geometric durations).
        double u = rng_.next_double();
        burst_ = burst_ ? u >= cfg_.burst_exit : u < cfg_.burst_enter;
        return gap;
      }
      case ArrivalModel::kTrace:
        break; // handled in next(): absolute ticks, not gaps
    }
    return 0;
}

FleetRequest
ArrivalProcess::next()
{
    FleetRequest r;
    r.id = next_id_++;
    if (cfg_.model == ArrivalModel::kTrace) {
        if (trace_pos_ >= cfg_.trace.size())
            fatal("arrival trace exhausted after ", trace_pos_,
                  " arrivals");
        now_ = cfg_.trace[trace_pos_++];
    } else {
        now_ += next_gap();
    }
    r.arrival = now_;

    double u = rng_.next_double() * cum_weight_.back();
    std::size_t cls = 0;
    while (cls + 1 < cum_weight_.size() && u >= cum_weight_[cls])
        ++cls;
    const TenantClass& c = mix_[cls];
    r.tenant_class = static_cast<int>(cls);
    r.width = c.width;
    r.height = c.height;
    r.lifetime = exponential_gap(
        rng_, static_cast<double>(c.mean_lifetime));
    return r;
}

} // namespace vnpu::fleet
