/**
 * @file
 * One simulated device of a serving fleet: a mesh topology, an NPU
 * controller and a hypervisor, plus a private Rng substream.
 *
 * A fleet device is deliberately lighter than runtime::Machine — the
 * fleet layer schedules admissions, migrations and departures over
 * simulated time, it does not execute programs on the cores — so N
 * 1024-core devices cost N hypervisors, not N event queues full of
 * core/DMA models.
 *
 * Determinism contract: every stochastic choice a device makes (today:
 * the admission service-time jitter) comes from its own substream
 * `Rng::substream(fleet_seed, device_id)`. Seeding N devices from one
 * shared stream would make any one device's decision sequence depend
 * on the fleet size and event interleaving; the substream derivation
 * keeps it invariant (FleetTest.DeviceStreamInvariantToFleetSize).
 */

#ifndef VNPU_FLEET_DEVICE_H
#define VNPU_FLEET_DEVICE_H

#include <string>

#include "core/controller.h"
#include "hyp/hypervisor.h"
#include "noc/topology.h"
#include "sim/config.h"
#include "sim/rng.h"

namespace vnpu::fleet {

/** One NPU chip of the fleet, managed by its own hypervisor. */
class FleetDevice {
  public:
    /**
     * @param id Fleet-wide device index (also the Rng substream id).
     * @param cfg Per-device SoC configuration (copied; the device owns
     *        the storage its hypervisor references).
     * @param fleet_seed Master seed shared by the whole fleet.
     */
    FleetDevice(int id, const SocConfig& cfg, std::uint64_t fleet_seed)
        : id_(id), cfg_(cfg), topo_(cfg_.mesh_x, cfg_.mesh_y),
          ctrl_(cfg_, topo_), hv_(cfg_, topo_, ctrl_),
          rng_(Rng::substream(fleet_seed, static_cast<std::uint64_t>(id)))
    {
        hv_.set_stats_prefix("fleet.dev" + std::to_string(id) + ".hyp.");
    }

    FleetDevice(const FleetDevice&) = delete;
    FleetDevice& operator=(const FleetDevice&) = delete;

    int id() const { return id_; }
    const SocConfig& config() const { return cfg_; }
    const noc::MeshTopology& topology() const { return topo_; }
    hyp::Hypervisor& hypervisor() { return hv_; }
    const hyp::Hypervisor& hypervisor() const { return hv_; }

    int num_cores() const { return topo_.num_nodes(); }
    int free_cores() const { return hv_.num_free_cores(); }
    double utilization() const { return hv_.core_utilization(); }

    /** Device-private decision stream (admission jitter). */
    Rng& rng() { return rng_; }

  private:
    int id_;
    SocConfig cfg_; // owned: hypervisor/controller keep references
    noc::MeshTopology topo_;
    core::NpuController ctrl_;
    hyp::Hypervisor hv_;
    Rng rng_;
};

} // namespace vnpu::fleet

#endif // VNPU_FLEET_DEVICE_H
