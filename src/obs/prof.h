/**
 * @file
 * Host-side self-profiling: RAII wall-clock scope timers attributing
 * the simulator's *own* execution time (not simulated time) to named
 * sites — the data source for the sub-millisecond-admission and
 * parallel-DES performance work.
 *
 * Contract (docs/observability.md):
 *  - With no profiler installed, a `VNPU_PROF(name)` site costs one
 *    predictable branch on a cached pointer load; no clock is read.
 *  - Thread-safe: every thread accumulates into its own block (created
 *    lazily, merged at report time), so TaskPool workers profile their
 *    drain loops without contending with the sim thread. A block's
 *    totals are only mutated under its own mutex, making `report()`
 *    race-free even against live scopes.
 *  - Timestamps are `steady_clock` nanoseconds — this subsystem is the
 *    deliberate exception to the "sim ticks only" rule because it
 *    measures the host, not the model. It must therefore never feed
 *    back into simulation decisions.
 */

#ifndef VNPU_OBS_PROF_H
#define VNPU_OBS_PROF_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace vnpu::obs {

class Profiler;

namespace detail {

/** The installed profiler; nullptr = profiling off. */
extern Profiler* g_prof;

/** Per-thread accumulator. Owner thread writes under `mu`; report()
 *  reads under `mu`. `current` (the innermost open site) is owner-only
 *  and needs no lock. */
struct ProfThreadBlock {
    struct PerSite {
        std::uint64_t calls = 0;
        std::uint64_t incl_ns = 0;
        std::uint64_t child_ns = 0;
    };

    /** Grow-on-demand accessor (call with `mu` held). */
    PerSite&
    site(int id)
    {
        if (static_cast<std::size_t>(id) >= sites.size())
            sites.resize(static_cast<std::size_t>(id) + 1);
        return sites[static_cast<std::size_t>(id)];
    }

    std::mutex mu;
    std::vector<PerSite> sites;
    /** Inclusive ns of parentless scopes: this thread's profiled time. */
    std::uint64_t root_ns = 0;
    std::string name;
    int current = -1; ///< Innermost open site id (owner thread only).
};

/** This thread's block under the installed profiler (nullptr when
 *  profiling is off). Revalidated against the install epoch, so a
 *  cached block never outlives its profiler. */
ProfThreadBlock* prof_block();

} // namespace detail

/** True when a profiler is installed — the single branch paid off. */
inline bool
prof_enabled()
{
    return detail::g_prof != nullptr;
}

/**
 * Collects per-site wall-clock totals from every thread that entered a
 * profiled scope while this profiler was installed.
 */
class Profiler {
  public:
    Profiler() = default;
    ~Profiler() = default;

    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    /**
     * Intern a site name, returning its stable id. Process-wide and
     * independent of any installed profiler, so `static` site ids in
     * instrumented code survive profiler swaps. Names must be string
     * literals (stored by pointer, compared by content).
     */
    static int site_id(const char* name);

    /** Merged per-site totals, heaviest exclusive time first. */
    struct SiteReport {
        std::string name;
        std::uint64_t calls = 0;
        std::uint64_t incl_ns = 0;
        std::uint64_t excl_ns = 0; ///< incl minus profiled children.
    };

    /** One contributing thread. */
    struct ThreadReport {
        std::string name;
        std::uint64_t root_ns = 0; ///< Top-level profiled time.
    };

    struct Report {
        std::vector<SiteReport> sites;
        std::vector<ThreadReport> threads;
        /** Sum of root_ns over sim-side (non-worker) threads: the
         *  profiled share of the harness's wall clock. */
        std::uint64_t attributed_ns = 0;
    };

    /** Snapshot and merge every thread block (safe while scopes run). */
    Report report() const;

    /**
     * Human-readable report: per-site table plus per-thread occupancy.
     * `wall_ns` (when nonzero, e.g. the harness's measured run time)
     * adds a coverage line — attributed / wall — and scales worker
     * occupancy percentages.
     */
    void write_text(std::ostream& os, std::uint64_t wall_ns = 0) const;

    /** Machine-readable mirror of write_text (one JSON object). */
    void write_json(std::ostream& os, std::uint64_t wall_ns = 0) const;

  private:
    friend detail::ProfThreadBlock* detail::prof_block();

    /** Register the calling thread's block (owned by this profiler). */
    detail::ProfThreadBlock* acquire_block();

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<detail::ProfThreadBlock>> blocks_;
};

/**
 * Install (or, with nullptr, remove) the global profiler. Not owned.
 * Swapping invalidates every thread's cached block, so scopes opened
 * under the old profiler must have closed before it is destroyed
 * (bench::ProfileSession brackets whole runs, satisfying this).
 */
void set_profiler(Profiler* p);
Profiler* profiler();

/**
 * Name the calling thread in profile reports ("worker0", ...). Applies
 * to the current and any future block of this thread. Threads that
 * never call this report as "main" (first unnamed) / "thread-N".
 */
void set_prof_thread_name(const char* name);

/** RAII scope timer. Construct via VNPU_PROF, not directly. */
class ProfScope {
  public:
    explicit ProfScope(int site)
    {
        if (detail::g_prof == nullptr) {
            block_ = nullptr;
            return;
        }
        block_ = detail::prof_block();
        if (block_ == nullptr)
            return;
        site_ = site;
        parent_ = block_->current;
        block_->current = site;
        // Host-side wall clock is this subsystem's entire point; it
        // never feeds back into simulation decisions (file header).
        t0_ = std::chrono::steady_clock::now(); // vnpu-lint: allow(nondet)
    }

    ProfScope(const ProfScope&) = delete;
    ProfScope& operator=(const ProfScope&) = delete;

    ~ProfScope()
    {
        if (block_ == nullptr)
            return;
        const auto dt =
            std::chrono::steady_clock::now() - t0_; // vnpu-lint: allow(nondet)
        const std::uint64_t ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count());
        block_->current = parent_;
        std::lock_guard<std::mutex> lk(block_->mu);
        auto& s = block_->site(site_);
        ++s.calls;
        s.incl_ns += ns;
        if (parent_ >= 0)
            block_->site(parent_).child_ns += ns;
        else
            block_->root_ns += ns;
    }

  private:
    detail::ProfThreadBlock* block_;
    int site_ = -1;
    int parent_ = -1;
    std::chrono::steady_clock::time_point t0_; // vnpu-lint: allow(nondet)
};

#define VNPU_PROF_CAT2(a, b) a##b
#define VNPU_PROF_CAT(a, b) VNPU_PROF_CAT2(a, b)

/**
 * Profile the enclosing scope under `name` (a string literal). The
 * site id is interned once per call site; when no profiler is
 * installed the scope is a cached-pointer branch and nothing else.
 *
 *   void Network::send(...) { VNPU_PROF("noc.send"); ... }
 */
#define VNPU_PROF(name)                                                      \
    static const int VNPU_PROF_CAT(vnpu_prof_site_, __LINE__) =              \
        ::vnpu::obs::Profiler::site_id(name);                                \
    ::vnpu::obs::ProfScope VNPU_PROF_CAT(vnpu_prof_scope_, __LINE__)(        \
        VNPU_PROF_CAT(vnpu_prof_site_, __LINE__))

} // namespace vnpu::obs

#endif // VNPU_OBS_PROF_H
