#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace vnpu::obs {

namespace detail {
MetricsSampler* g_metrics = nullptr;
} // namespace detail

void
set_metrics(MetricsSampler* m)
{
    detail::g_metrics = m;
}

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
}

/** Prometheus metric name: vnpu_ prefix, [a-zA-Z0-9_] only. */
std::string
prom_name(const std::string& name)
{
    std::string out = "vnpu_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

MetricsSampler::MetricsSampler(Tick interval)
    : interval_(interval > 0 ? interval : 1)
{
}

int
MetricsSampler::column(const std::string& name, StatSet::Kind kind)
{
    auto [it, inserted] =
        column_index_.emplace(name, static_cast<int>(columns_.size()));
    if (inserted) {
        columns_.push_back(name);
        column_kinds_.push_back(kind);
    }
    return it->second;
}

void
MetricsSampler::set_value(Sample& s, int col, double v)
{
    if (s.values.size() <= static_cast<std::size_t>(col))
        s.values.resize(static_cast<std::size_t>(col) + 1,
                        std::nan(""));
    s.values[static_cast<std::size_t>(col)] = v;
}

void
MetricsSampler::attach_machine(
    const void* owner, std::function<void(StatSet&)> collect,
    std::function<void(std::vector<LinkRecord>&)> links,
    std::function<Histogram()> latency)
{
    owner_ = owner;
    collect_ = std::move(collect);
    links_ = std::move(links);
    latency_ = std::move(latency);
    ++run_;
    prev_ = StatSet{};
    have_prev_ = false;
    prev_latency_ = Histogram{};
    prev_links_.clear();
    next_sample_ = interval_;
    last_sample_tick_ = 0;
    attached_ = true;
}

void
MetricsSampler::detach_machine(const void* owner, Tick final_now)
{
    if (!attached_ || owner != owner_)
        return;
    // Close the run with a final sample (covers runs shorter than one
    // interval, and host-side-only runs where the queue never ran).
    if (!have_prev_ || final_now > last_sample_tick_)
        sample(final_now);
    if (links_) {
        RunHeatmap hm;
        hm.run = run_;
        hm.end_tick = final_now;
        links_(hm.links);
        heatmaps_.push_back(std::move(hm));
    }
    // The providers capture the dying machine; drop them now.
    attached_ = false;
    owner_ = nullptr;
    collect_ = nullptr;
    links_ = nullptr;
    latency_ = nullptr;
}

void
MetricsSampler::add_collector(const void* owner,
                              std::function<void(StatSet&)> fn)
{
    extra_.emplace_back(owner, std::move(fn));
}

void
MetricsSampler::remove_collector(const void* owner)
{
    for (auto it = extra_.begin(); it != extra_.end();) {
        if (it->first == owner)
            it = extra_.erase(it);
        else
            ++it;
    }
}

void
MetricsSampler::sample(Tick now)
{
    if (!attached_)
        return;

    StatSet cur;
    if (collect_)
        collect_(cur);
    for (const auto& [owner, fn] : extra_)
        fn(cur);

    Sample s;
    s.run = run_;
    s.tick = now;
    for (const auto& [name, value] : cur.all()) {
        const StatSet::Kind kind = cur.kind(name);
        const double v = kind == StatSet::Kind::kCounter
                             ? value - prev_.get(name, 0.0)
                             : value;
        set_value(s, column(name, kind), v);
    }

    // Windowed latency view: quantiles of only this window's messages.
    if (latency_) {
        const Histogram cum = latency_();
        const Histogram win = cum.delta_since(prev_latency_);
        static const char* const kCols[] = {
            "noc.msg_latency.win.count", "noc.msg_latency.win.mean",
            "noc.msg_latency.win.p50", "noc.msg_latency.win.p90",
            "noc.msg_latency.win.p99"};
        const double vals[] = {static_cast<double>(win.count()),
                               win.mean(), win.quantile(0.50),
                               win.quantile(0.90), win.quantile(0.99)};
        for (int i = 0; i < 5; ++i)
            set_value(s, column(kCols[i], StatSet::Kind::kGauge),
                      vals[i]);
        prev_latency_ = cum;
    }

    // Windowed link heat: only links whose counters moved this window.
    if (links_) {
        std::vector<LinkRecord> cum;
        links_(cum);
        for (std::size_t i = 0; i < cum.size(); ++i) {
            const std::uint64_t pf =
                i < prev_links_.size() ? prev_links_[i].flits : 0;
            const std::uint64_t pb =
                i < prev_links_.size() ? prev_links_[i].busy_ticks : 0;
            if (cum[i].flits != pf || cum[i].busy_ticks != pb) {
                s.link_deltas.push_back(LinkRecord{
                    cum[i].from, cum[i].to, cum[i].flits - pf,
                    cum[i].busy_ticks - pb});
            }
        }
        prev_links_ = std::move(cum);
    }

    last_cum_ = cur;
    prev_ = std::move(cur);
    have_prev_ = true;
    last_sample_tick_ = now;
    next_sample_ = now + interval_;
    samples_.push_back(std::move(s));
}

void
MetricsSampler::write_csv(std::ostream& os) const
{
    os << "run,tick";
    for (const auto& c : columns_)
        os << ',' << c;
    os << '\n';
    for (const auto& s : samples_) {
        os << s.run << ',' << s.tick;
        for (std::size_t i = 0; i < columns_.size(); ++i) {
            os << ',';
            if (i < s.values.size() && !std::isnan(s.values[i]))
                os << num(s.values[i]);
        }
        os << '\n';
    }
}

void
MetricsSampler::write_json(std::ostream& os) const
{
    os << "{\n  \"interval\": " << interval_
       << ",\n  \"runs\": " << (run_ + 1) << ",\n  \"columns\": [\n";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        os << "    {\"name\": \"" << columns_[i] << "\", \"kind\": \""
           << (column_kinds_[i] == StatSet::Kind::kCounter ? "counter"
                                                           : "gauge")
           << "\"}" << (i + 1 < columns_.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"samples\": [\n";
    for (std::size_t si = 0; si < samples_.size(); ++si) {
        const Sample& s = samples_[si];
        os << "    {\"run\": " << s.run << ", \"tick\": " << s.tick
           << ", \"values\": [";
        for (std::size_t i = 0; i < columns_.size(); ++i) {
            if (i > 0)
                os << ", ";
            if (i < s.values.size() && !std::isnan(s.values[i]))
                os << num(s.values[i]);
            else
                os << "null";
        }
        os << "]";
        if (!s.link_deltas.empty()) {
            os << ", \"links\": [";
            for (std::size_t i = 0; i < s.link_deltas.size(); ++i) {
                const LinkRecord& l = s.link_deltas[i];
                os << (i > 0 ? ", " : "") << "{\"from\": " << l.from
                   << ", \"to\": " << l.to << ", \"flits\": " << l.flits
                   << ", \"busy_ticks\": " << l.busy_ticks << "}";
            }
            os << "]";
        }
        os << "}" << (si + 1 < samples_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
MetricsSampler::write_prom(std::ostream& os) const
{
    for (const auto& [name, value] : last_cum_.all()) {
        const std::string pn = prom_name(name);
        os << "# TYPE " << pn << ' '
           << (last_cum_.kind(name) == StatSet::Kind::kCounter
                   ? "counter"
                   : "gauge")
           << '\n'
           << pn << ' ' << num(value) << '\n';
    }
}

void
MetricsSampler::write_heatmap_json(std::ostream& os) const
{
    os << "[\n";
    for (std::size_t r = 0; r < heatmaps_.size(); ++r) {
        const RunHeatmap& hm = heatmaps_[r];
        os << "  {\"run\": " << hm.run
           << ", \"end_tick\": " << hm.end_tick << ", \"links\": [";
        bool first = true;
        for (const LinkRecord& l : hm.links) {
            if (l.flits == 0 && l.busy_ticks == 0)
                continue; // idle links would bloat large meshes
            os << (first ? "" : ", ") << "{\"from\": " << l.from
               << ", \"to\": " << l.to << ", \"flits\": " << l.flits
               << ", \"busy_ticks\": " << l.busy_ticks << "}";
            first = false;
        }
        os << "]}" << (r + 1 < heatmaps_.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

} // namespace vnpu::obs
