#include "obs/chrome_trace.h"

#include <cstdio>

namespace vnpu::obs {

namespace {

/** Escape a string for inclusion inside a JSON string literal. */
void
write_escaped(std::ostream& os, const char* s)
{
    for (; *s != '\0'; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        if (c == '"' || c == '\\') {
            os << '\\' << *s;
        } else if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os << buf;
        } else {
            os << *s;
        }
    }
}

void
write_arg_value(std::ostream& os, const TraceArg& a)
{
    switch (a.kind) {
      case TraceArg::Kind::kU64:
        os << a.u;
        return;
      case TraceArg::Kind::kI64:
        os << a.i;
        return;
      case TraceArg::Kind::kF64: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", a.f);
        os << buf;
        return;
      }
      case TraceArg::Kind::kStr:
        os << '"';
        write_escaped(os, a.s != nullptr ? a.s : "");
        os << '"';
        return;
    }
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(&os)
{
    write_header();
}

ChromeTraceWriter::ChromeTraceWriter(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get())
{
    write_header();
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    close();
}

void
ChromeTraceWriter::write_header()
{
    *os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    write_thread_name(kTrackQueue, "event-queue");
    write_thread_name(kTrackHyp, "hypervisor");
}

void
ChromeTraceWriter::begin_record()
{
    if (first_)
        first_ = false;
    else
        *os_ << ',';
    *os_ << '\n';
}

void
ChromeTraceWriter::write_thread_name(std::uint32_t tid, const char* name)
{
    begin_record();
    *os_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
         << tid << ",\"args\":{\"name\":\"" << name << "\"}}";
}

void
ChromeTraceWriter::event(const TraceEvent& ev)
{
    if (closed_)
        return;
    begin_record();
    std::ostream& os = *os_;
    os << "{\"name\":\"";
    write_escaped(os, ev.name);
    os << "\",\"cat\":\"";
    write_escaped(os, ev.cat);
    os << "\",\"ph\":\"" << ev.ph << "\",\"pid\":0,\"tid\":" << ev.tid
       << ",\"ts\":" << ev.ts;
    if (ev.ph == 'X')
        os << ",\"dur\":" << ev.dur;
    if (ev.ph == 'i')
        os << ",\"s\":\"t\""; // thread-scoped instant
    if (ev.num_args > 0) {
        os << ",\"args\":{";
        for (int i = 0; i < ev.num_args; ++i) {
            if (i > 0)
                os << ',';
            os << '"';
            write_escaped(os, ev.args[i].key);
            os << "\":";
            write_arg_value(os, ev.args[i]);
        }
        os << '}';
    }
    os << '}';
    ++count_;
}

void
ChromeTraceWriter::flush()
{
    if (!closed_)
        os_->flush();
}

void
ChromeTraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    *os_ << "\n]}\n";
    os_->flush();
}

} // namespace vnpu::obs
