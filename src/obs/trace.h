/**
 * @file
 * Simulation-wide tracing: a minimal sink interface plus global
 * zero-overhead-when-off instrumentation hooks.
 *
 * Contract (docs/observability.md):
 *  - With no sink installed, an instrumentation site costs exactly one
 *    predictable branch on a cached pointer load (`enabled()`); no
 *    event argument is ever materialized. Use the `VNPU_TRACE(...)`
 *    macro or an explicit `if (obs::enabled())` block.
 *  - Events carry *simulated* timestamps (ticks), never wall clock, so
 *    a traced run of a deterministic simulation produces a
 *    byte-identical trace every time.
 *  - Hooks are sim-thread-only: instrumented code runs on the thread
 *    driving the EventQueue (TaskPool workers never emit events).
 */

#ifndef VNPU_OBS_TRACE_H
#define VNPU_OBS_TRACE_H

#include <cstdint>
#include <initializer_list>

#include "sim/types.h"

namespace vnpu {
class EventQueue;
}

namespace vnpu::obs {

/** One typed key/value argument attached to a trace event. */
struct TraceArg {
    enum class Kind : std::uint8_t { kU64, kI64, kF64, kStr };

    const char* key;
    Kind kind;
    std::uint64_t u;
    std::int64_t i;
    double f;
    const char* s;
};

inline TraceArg
arg(const char* key, std::uint64_t v)
{
    return TraceArg{key, TraceArg::Kind::kU64, v, 0, 0.0, nullptr};
}

inline TraceArg
arg(const char* key, std::int64_t v)
{
    return TraceArg{key, TraceArg::Kind::kI64, 0, v, 0.0, nullptr};
}

inline TraceArg
arg(const char* key, std::uint32_t v)
{
    return arg(key, static_cast<std::uint64_t>(v));
}

inline TraceArg
arg(const char* key, std::int32_t v)
{
    return arg(key, static_cast<std::int64_t>(v));
}

inline TraceArg
arg(const char* key, double v)
{
    return TraceArg{key, TraceArg::Kind::kF64, 0, 0, v, nullptr};
}

/** String args are not copied; the pointer must outlive the emit call. */
inline TraceArg
arg(const char* key, const char* v)
{
    return TraceArg{key, TraceArg::Kind::kStr, 0, 0, 0.0, v};
}

/**
 * One trace event in Chrome trace-event terms. `name`/`cat` are static
 * strings (never copied); `args` points at caller-owned storage that
 * only needs to live for the duration of the `TraceSink::event` call.
 */
struct TraceEvent {
    const char* name;
    const char* cat;  ///< Category: "sim", "noc", "mem" or "hyp".
    char ph;          ///< Phase: 'X' complete, 'i' instant, 'C' counter.
    Tick ts;
    Tick dur;         ///< 'X' events only.
    std::uint32_t tid;
    const TraceArg* args;
    int num_args;
};

/** Where emitted events go. Implementations must not re-enter emit(). */
class TraceSink {
  public:
    virtual ~TraceSink() = default;

    virtual void event(const TraceEvent& ev) = 0;

    /** Push buffered output to its destination (best effort). */
    virtual void flush() {}
};

/**
 * Track (tid) allocation: per-core events use the core id; fixed
 * control-plane tracks sit far above any core id.
 */
inline constexpr std::uint32_t kTrackQueue = 1u << 20; ///< Event queue.
inline constexpr std::uint32_t kTrackHyp = kTrackQueue + 1; ///< Admission.
inline constexpr std::uint32_t kTrackFleet = kTrackQueue + 2; ///< Fleet.

namespace detail {
/** The installed sink; sim-thread-only, nullptr = tracing off. */
extern TraceSink* g_sink;
} // namespace detail

/** True when a sink is installed — the single branch paid when off. */
inline bool
enabled()
{
    return detail::g_sink != nullptr;
}

/** Install (or, with nullptr, remove) the global sink. Not owned; the
 *  previous sink is flushed on replacement. */
void set_sink(TraceSink* sink);
TraceSink* sink();

/**
 * Register the event queue whose `now()` timestamps control-plane
 * events (hypervisor admission spans, log-line tags). Machine does
 * this on construction; `sim_now()` reports 0 with no clock.
 */
void set_sim_clock(const EventQueue* eq);
/** Unregister `eq` iff it is the current clock (idempotent). */
void clear_sim_clock(const EventQueue* eq);
Tick sim_now();

/** Forward `ev` to the installed sink (no-op when tracing is off). */
void emit(const TraceEvent& ev);

/** Emit a complete ('X') event spanning [ts, ts + dur]. */
void emit_complete(const char* name, const char* cat, Tick ts, Tick dur,
                   std::uint32_t tid,
                   std::initializer_list<TraceArg> args = {});

/** Emit an instant ('i') event at `ts`. */
void emit_instant(const char* name, const char* cat, Tick ts,
                  std::uint32_t tid,
                  std::initializer_list<TraceArg> args = {});

/** Emit a counter ('C') event; each arg becomes one counter series. */
void emit_counter(const char* name, const char* cat, Tick ts,
                  std::uint32_t tid, std::initializer_list<TraceArg> args);

/**
 * Guarded emission: the wrapped call (argument construction included)
 * compiles to nothing but the cached-flag branch when tracing is off.
 * Braced arg lists are fine — they sit inside the call's parentheses.
 *
 *   VNPU_TRACE(emit_complete("send", "noc", t0, dur, src,
 *                            {arg("dst", dst), arg("bytes", bytes)}));
 */
#define VNPU_TRACE(call)                                                     \
    do {                                                                     \
        if (::vnpu::obs::enabled())                                          \
            ::vnpu::obs::call;                                               \
    } while (0)

} // namespace vnpu::obs

#endif // VNPU_OBS_TRACE_H
