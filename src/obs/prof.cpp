#include "obs/prof.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>

namespace vnpu::obs {

namespace detail {

Profiler* g_prof = nullptr;

namespace {

/** Bumped on every set_profiler() so cached thread blocks revalidate. */
std::atomic<std::uint64_t> g_epoch{0};

/** Site registry: process-wide, append-only. */
std::mutex g_site_mu;
std::vector<const char*> g_site_names;
std::map<std::string, int> g_site_index;

thread_local ProfThreadBlock* t_block = nullptr;
thread_local std::uint64_t t_block_epoch = ~std::uint64_t{0};
thread_local std::string t_thread_name;

} // namespace

ProfThreadBlock*
prof_block()
{
    const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    if (t_block_epoch == epoch)
        return t_block;
    Profiler* p = g_prof;
    t_block = p != nullptr ? p->acquire_block() : nullptr;
    t_block_epoch = epoch;
    return t_block;
}

} // namespace detail

int
Profiler::site_id(const char* name)
{
    std::lock_guard<std::mutex> lk(detail::g_site_mu);
    auto [it, inserted] = detail::g_site_index.emplace(
        name, static_cast<int>(detail::g_site_names.size()));
    if (inserted)
        detail::g_site_names.push_back(name);
    return it->second;
}

detail::ProfThreadBlock*
Profiler::acquire_block()
{
    std::lock_guard<std::mutex> lk(mu_);
    blocks_.push_back(std::make_unique<detail::ProfThreadBlock>());
    detail::ProfThreadBlock* b = blocks_.back().get();
    if (!detail::t_thread_name.empty())
        b->name = detail::t_thread_name;
    else if (blocks_.size() == 1)
        b->name = "main";
    else
        b->name = "thread-" + std::to_string(blocks_.size() - 1);
    return b;
}

Profiler::Report
Profiler::report() const
{
    Report rep;
    std::vector<const char*> names;
    {
        std::lock_guard<std::mutex> lk(detail::g_site_mu);
        names = detail::g_site_names;
    }
    std::vector<SiteReport> sites(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        sites[i].name = names[i];

    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& block : blocks_) {
        std::lock_guard<std::mutex> blk(block->mu);
        for (std::size_t i = 0;
             i < block->sites.size() && i < sites.size(); ++i) {
            const auto& s = block->sites[i];
            sites[i].calls += s.calls;
            sites[i].incl_ns += s.incl_ns;
            // Exclusive = inclusive minus time spent in profiled
            // children; clamped in case a child scope is still open.
            sites[i].excl_ns +=
                s.incl_ns > s.child_ns ? s.incl_ns - s.child_ns : 0;
        }
        rep.threads.push_back(ThreadReport{block->name, block->root_ns});
        if (block->name.rfind("worker", 0) != 0)
            rep.attributed_ns += block->root_ns;
    }
    sites.erase(std::remove_if(sites.begin(), sites.end(),
                               [](const SiteReport& s) {
                                   return s.calls == 0;
                               }),
                sites.end());
    std::sort(sites.begin(), sites.end(),
              [](const SiteReport& a, const SiteReport& b) {
                  if (a.excl_ns != b.excl_ns)
                      return a.excl_ns > b.excl_ns;
                  return a.name < b.name;
              });
    rep.sites = std::move(sites);
    return rep;
}

namespace {

double
ms(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

} // namespace

void
Profiler::write_text(std::ostream& os, std::uint64_t wall_ns) const
{
    const Report rep = report();
    std::uint64_t excl_total = 0;
    for (const auto& s : rep.sites)
        excl_total += s.excl_ns;

    os << "self-profile: " << rep.sites.size() << " scopes, "
       << ms(rep.attributed_ns) << " ms attributed";
    if (wall_ns > 0) {
        const double cov = static_cast<double>(rep.attributed_ns) /
                           static_cast<double>(wall_ns);
        os << " of " << ms(wall_ns) << " ms wall (coverage "
           << static_cast<int>(cov * 100.0 + 0.5) << "%)";
    }
    os << "\n";

    char line[160];
    std::snprintf(line, sizeof line, "  %-26s %10s %12s %12s %7s\n",
                  "scope", "calls", "incl ms", "excl ms", "excl%");
    os << line;
    for (const auto& s : rep.sites) {
        const double share =
            excl_total > 0 ? 100.0 * static_cast<double>(s.excl_ns) /
                                 static_cast<double>(excl_total)
                           : 0.0;
        std::snprintf(line, sizeof line,
                      "  %-26s %10llu %12.3f %12.3f %6.1f%%\n",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.calls),
                      ms(s.incl_ns), ms(s.excl_ns), share);
        os << line;
    }

    os << "per-thread profiled time:\n";
    for (const auto& t : rep.threads) {
        std::snprintf(line, sizeof line, "  %-26s %12.3f ms",
                      t.name.c_str(), ms(t.root_ns));
        os << line;
        if (wall_ns > 0 && t.name.rfind("worker", 0) == 0) {
            const double occ = static_cast<double>(t.root_ns) /
                               static_cast<double>(wall_ns);
            std::snprintf(line, sizeof line, "  (occupancy %.1f%%)",
                          occ * 100.0);
            os << line;
        }
        os << "\n";
    }
}

void
Profiler::write_json(std::ostream& os, std::uint64_t wall_ns) const
{
    const Report rep = report();
    os << "{\n  \"wall_ns\": " << wall_ns
       << ",\n  \"attributed_ns\": " << rep.attributed_ns
       << ",\n  \"scopes\": [\n";
    for (std::size_t i = 0; i < rep.sites.size(); ++i) {
        const auto& s = rep.sites[i];
        os << "    {\"name\": \"" << s.name << "\", \"calls\": " << s.calls
           << ", \"incl_ns\": " << s.incl_ns
           << ", \"excl_ns\": " << s.excl_ns << "}"
           << (i + 1 < rep.sites.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"threads\": [\n";
    for (std::size_t i = 0; i < rep.threads.size(); ++i) {
        const auto& t = rep.threads[i];
        os << "    {\"name\": \"" << t.name
           << "\", \"root_ns\": " << t.root_ns << "}"
           << (i + 1 < rep.threads.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
set_profiler(Profiler* p)
{
    detail::g_prof = p;
    detail::g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

Profiler*
profiler()
{
    return detail::g_prof;
}

void
set_prof_thread_name(const char* name)
{
    detail::t_thread_name = name;
    // Rename an already-acquired block for the current profiler too.
    const std::uint64_t epoch =
        detail::g_epoch.load(std::memory_order_acquire);
    if (detail::t_block_epoch == epoch && detail::t_block != nullptr) {
        std::lock_guard<std::mutex> lk(detail::t_block->mu);
        detail::t_block->name = name;
    }
}

} // namespace vnpu::obs
