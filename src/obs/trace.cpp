#include "obs/trace.h"

#include <atomic>

#include "sim/event_queue.h"

namespace vnpu::obs {

namespace detail {
TraceSink* g_sink = nullptr;
} // namespace detail

namespace {
/** Atomic: log_line may read the clock from TaskPool workers. */
std::atomic<const EventQueue*> g_clock{nullptr};
} // namespace

void
set_sink(TraceSink* sink)
{
    if (detail::g_sink != nullptr && detail::g_sink != sink)
        detail::g_sink->flush();
    detail::g_sink = sink;
}

TraceSink*
sink()
{
    return detail::g_sink;
}

void
set_sim_clock(const EventQueue* eq)
{
    g_clock.store(eq, std::memory_order_release);
}

void
clear_sim_clock(const EventQueue* eq)
{
    const EventQueue* cur = eq;
    g_clock.compare_exchange_strong(cur, nullptr);
}

Tick
sim_now()
{
    const EventQueue* eq = g_clock.load(std::memory_order_acquire);
    return eq != nullptr ? eq->now() : 0;
}

void
emit(const TraceEvent& ev)
{
    if (detail::g_sink != nullptr)
        detail::g_sink->event(ev);
}

void
emit_complete(const char* name, const char* cat, Tick ts, Tick dur,
              std::uint32_t tid, std::initializer_list<TraceArg> args)
{
    emit(TraceEvent{name, cat, 'X', ts, dur, tid, args.begin(),
                    static_cast<int>(args.size())});
}

void
emit_instant(const char* name, const char* cat, Tick ts, std::uint32_t tid,
             std::initializer_list<TraceArg> args)
{
    emit(TraceEvent{name, cat, 'i', ts, 0, tid, args.begin(),
                    static_cast<int>(args.size())});
}

void
emit_counter(const char* name, const char* cat, Tick ts, std::uint32_t tid,
             std::initializer_list<TraceArg> args)
{
    emit(TraceEvent{name, cat, 'C', ts, 0, tid, args.begin(),
                    static_cast<int>(args.size())});
}

} // namespace vnpu::obs
