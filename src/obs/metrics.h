/**
 * @file
 * Sim-time metrics: a sampler that periodically sweeps the
 * `collect_stats(StatSet&)` surface into a columnar time series, so
 * utilization, admission latency and link congestion can be read *over
 * simulated time* instead of as end-of-run totals.
 *
 * Contract (docs/observability.md):
 *  - Zero overhead when off: the per-batch hook in `EventQueue::run`
 *    is one branch on a cached global pointer. Nothing about the
 *    simulation changes when sampling is on — samples are taken
 *    *outside* the event stream (no events are scheduled), so decision
 *    sequences and untraced stdout stay byte-identical.
 *  - Sim-thread-only, like tracing: the sampler is driven from the
 *    thread running the EventQueue.
 *  - Counter-kind stats (StatSet::Kind::kCounter) are recorded as
 *    per-window deltas; gauges as raw values. Windowed latency views
 *    come from `Histogram::delta_since`, windowed link heat from the
 *    always-on per-link NoC counters.
 */

#ifndef VNPU_OBS_METRICS_H
#define VNPU_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::obs {

/** One directed NoC link's counters, decoupled from noc:: types so the
 *  obs layer stays dependency-free. */
struct LinkRecord {
    int from = 0;
    int to = 0;
    std::uint64_t flits = 0;
    std::uint64_t busy_ticks = 0;
};

/**
 * Collects periodic samples from an attached machine (plus any extra
 * collectors, e.g. a hypervisor) into an in-memory columnar series.
 * Harnesses install one globally via `set_metrics()`
 * (bench::MetricsSession does this for `--metrics`); the Machine
 * attaches itself on construction. Machines created back to back
 * (sweep harnesses) each get their own `run` index; sim time restarts
 * per run.
 */
class MetricsSampler {
  public:
    /** Sample every `interval` ticks (>= 1). */
    explicit MetricsSampler(Tick interval = 1000);

    MetricsSampler(const MetricsSampler&) = delete;
    MetricsSampler& operator=(const MetricsSampler&) = delete;

    Tick interval() const { return interval_; }

    /**
     * Attach a machine's providers; `owner` identifies it for detach.
     * `collect` sweeps its StatSet surface; `links` appends cumulative
     * per-link counters; `latency` snapshots the cumulative message
     * latency histogram. Starts a new run (latest attach wins).
     */
    void attach_machine(const void* owner,
                        std::function<void(StatSet&)> collect,
                        std::function<void(std::vector<LinkRecord>&)> links,
                        std::function<Histogram()> latency);

    /**
     * Detach `owner` (no-op for a stale owner): takes a final sample
     * at `final_now` and captures the run's cumulative link heatmap.
     */
    void detach_machine(const void* owner, Tick final_now);

    /** Register an extra stats sweep (e.g. Hypervisor) for the
     *  current samples; removed with `remove_collector`. */
    void add_collector(const void* owner, std::function<void(StatSet&)> fn);
    void remove_collector(const void* owner);

    /** Per-batch hook from EventQueue::run; samples when due. */
    void
    on_tick(Tick now)
    {
        if (attached_ && now >= next_sample_)
            sample(now);
    }

    /** Force a sample at `now` (used by detach and tests). */
    void sample(Tick now);

    /** Runs recorded so far (attach count). */
    int num_runs() const { return run_ + 1; }
    std::size_t num_samples() const { return samples_.size(); }

    /** Timeline as CSV: `run,tick,<column>...`; counters are
     *  per-window deltas, empty cells mean "not present yet". */
    void write_csv(std::ostream& os) const;

    /** Timeline as JSON: columns with kinds, samples with values and
     *  sparse per-window link deltas (docs/observability.md). */
    void write_json(std::ostream& os) const;

    /**
     * Prometheus text exposition of the latest cumulative snapshot:
     * `# TYPE vnpu_<name> counter|gauge` + value lines.
     */
    void write_prom(std::ostream& os) const;

    /** Cumulative per-run link heatmaps captured at detach. */
    void write_heatmap_json(std::ostream& os) const;

  private:
    struct Sample {
        int run;
        Tick tick;
        std::vector<double> values; ///< Indexed by column; NaN = absent.
        std::vector<LinkRecord> link_deltas; ///< Links active in window.
    };

    int column(const std::string& name, StatSet::Kind kind);
    void set_value(Sample& s, int col, double v);

    Tick interval_;
    bool attached_ = false;
    const void* owner_ = nullptr;
    int run_ = -1;
    Tick next_sample_ = 0;
    Tick last_sample_tick_ = 0;

    std::function<void(StatSet&)> collect_;
    std::function<void(std::vector<LinkRecord>&)> links_;
    std::function<Histogram()> latency_;
    std::vector<std::pair<const void*, std::function<void(StatSet&)>>>
        extra_;

    /** Previous cumulative snapshot of the current run. */
    StatSet prev_;
    bool have_prev_ = false;
    Histogram prev_latency_;
    std::vector<LinkRecord> prev_links_;

    /** Latest cumulative snapshot (Prometheus exposition source). */
    StatSet last_cum_;

    std::vector<std::string> columns_;
    std::vector<StatSet::Kind> column_kinds_;
    std::map<std::string, int> column_index_;
    std::vector<Sample> samples_;

    struct RunHeatmap {
        int run;
        Tick end_tick;
        std::vector<LinkRecord> links;
    };
    std::vector<RunHeatmap> heatmaps_;
};

namespace detail {
/** The installed sampler; sim-thread-only, nullptr = metrics off. */
extern MetricsSampler* g_metrics;
} // namespace detail

/** The installed sampler, or nullptr — the single branch paid when
 *  metrics are off. */
inline MetricsSampler*
metrics()
{
    return detail::g_metrics;
}

/** Install (or, with nullptr, remove) the global sampler. Not owned. */
void set_metrics(MetricsSampler* m);

} // namespace vnpu::obs

#endif // VNPU_OBS_METRICS_H
