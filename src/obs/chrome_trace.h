/**
 * @file
 * Chrome trace-event / Perfetto-compatible JSON trace writer.
 *
 * Emits the JSON-object flavor of the trace-event format —
 * `{"traceEvents": [...], ...}` — which both `chrome://tracing` and
 * https://ui.perfetto.dev load directly. One tick is written as one
 * microsecond (`ts`/`dur` fields), so the Perfetto timeline reads in
 * simulated cycles.
 *
 * Events stream to the output as they arrive (nothing is retained in
 * memory), so multi-million-event traces cost O(1) writer state. The
 * writer is sim-thread-only, like every TraceSink.
 */

#ifndef VNPU_OBS_CHROME_TRACE_H
#define VNPU_OBS_CHROME_TRACE_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/trace.h"

namespace vnpu::obs {

/** Streams TraceEvents as Chrome trace-event JSON. */
class ChromeTraceWriter final : public TraceSink {
  public:
    /** Write into `os`; the stream must outlive the writer. */
    explicit ChromeTraceWriter(std::ostream& os);

    /** Open `path` for writing and own the file stream. */
    explicit ChromeTraceWriter(const std::string& path);

    /** Closes the JSON document if close() was not called. */
    ~ChromeTraceWriter() override;

    ChromeTraceWriter(const ChromeTraceWriter&) = delete;
    ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

    void event(const TraceEvent& ev) override;
    void flush() override;

    /** Write the document footer; later events are dropped. */
    void close();

    /** Events written so far (metadata records excluded). */
    std::uint64_t num_events() const { return count_; }

    bool ok() const { return os_ != nullptr && os_->good(); }

  private:
    void write_header();
    void write_thread_name(std::uint32_t tid, const char* name);
    void begin_record();

    std::unique_ptr<std::ofstream> owned_;
    std::ostream* os_;
    std::uint64_t count_ = 0;
    bool first_ = true;
    bool closed_ = false;
};

} // namespace vnpu::obs

#endif // VNPU_OBS_CHROME_TRACE_H
