#include "hyp/mig.h"

#include <algorithm>

#include "hyp/topology_mapper.h"
#include "obs/prof.h"
#include "sim/log.h"

namespace vnpu::hyp {

namespace {

constexpr Addr kVaBase = 0x10000;
constexpr std::uint64_t kMinBlock = 64ull << 10;
constexpr std::uint64_t kMaxBlock = 16ull << 20;

} // namespace

MigPartitioner::MigPartitioner(const SocConfig& cfg,
                               const noc::MeshTopology& topo,
                               core::NpuController& ctrl)
    : cfg_(cfg), topo_(topo), ctrl_(ctrl), hbm_(0, cfg.hbm_bytes, kMinBlock)
{
    ctrl_.set_hyper_mode(true);
    // Default: two vertical halves.
    int lw = topo.width() / 2;
    parts_.push_back({0, 0, lw, topo.height(), false});
    parts_.push_back({lw, 0, topo.width() - lw, topo.height(), false});
}

void
MigPartitioner::set_partitions(std::vector<MigPartition> parts)
{
    for (const MigPartition& p : parts) {
        if (p.x < 0 || p.y < 0 || p.w <= 0 || p.h <= 0 ||
            p.x + p.w > topo_.width() || p.y + p.h > topo_.height()) {
            fatal("MIG partition out of mesh bounds");
        }
    }
    parts_ = std::move(parts);
}

std::vector<CoreId>
MigPartitioner::snake_cores(const MigPartition& p) const
{
    std::vector<CoreId> cores;
    for (int r = 0; r < p.h; ++r) {
        if (r % 2 == 0) {
            for (int c = 0; c < p.w; ++c)
                cores.push_back(topo_.id_of(p.x + c, p.y + r));
        } else {
            for (int c = p.w - 1; c >= 0; --c)
                cores.push_back(topo_.id_of(p.x + c, p.y + r));
        }
    }
    return cores;
}

virt::VirtualNpu&
MigPartitioner::create(int num_cores, std::uint64_t memory_bytes)
{
    VNPU_PROF("mig.create");
    if (num_cores <= 0)
        fatal("MIG request needs at least one core");

    // Smallest free partition that fits; else largest free (TDM).
    int pick = -1;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        const MigPartition& p = parts_[i];
        if (p.in_use)
            continue;
        if (p.num_cores() >= num_cores &&
            (pick < 0 || p.num_cores() < parts_[pick].num_cores())) {
            pick = static_cast<int>(i);
        }
    }
    if (pick < 0) {
        for (std::size_t i = 0; i < parts_.size(); ++i) {
            const MigPartition& p = parts_[i];
            if (p.in_use)
                continue;
            if (pick < 0 || p.num_cores() > parts_[pick].num_cores())
                pick = static_cast<int>(i);
        }
    }
    if (pick < 0)
        fatal("MIG: all partitions are in use");

    MigPartition& part = parts_[pick];
    std::vector<CoreId> pcores = snake_cores(part);

    // Virtual core i -> partition core i (mod partition size): TDM when
    // the request exceeds the partition.
    std::vector<CoreId> assignment(num_cores);
    for (int v = 0; v < num_cores; ++v)
        assignment[v] = pcores[v % pcores.size()];
    int tdm = (num_cores + part.num_cores() - 1) / part.num_cores();

    VmId vm = next_vm_++;
    virt::RoutingTable rt = virt::RoutingTable::standard(vm, assignment);
    auto vnpu = std::make_unique<virt::VirtualNpu>(
        vm, assignment, TopologyMapper::snake_topology(num_cores), rt);
    vnpu->set_tdm_factor(tdm);

    // A rectangle is closed under XY routing, so MIG partitions are
    // NoC-isolated by construction; no direction overrides needed.

    // Memory: buddy blocks -> RTT, same translation hardware as vNPU so
    // the comparison isolates the topology/allocation effect.
    mem::RangeTable rtt;
    if (memory_bytes > 0) {
        std::uint64_t remain =
            (memory_bytes + kMinBlock - 1) / kMinBlock * kMinBlock;
        Addr va = kVaBase;
        std::uint64_t max_block = kMaxBlock;
        while (remain / max_block > 128)
            max_block <<= 1;
        while (remain > 0) {
            std::uint64_t chunk = std::min(remain, max_block);
            std::optional<Addr> pa = hbm_.alloc(chunk);
            if (!pa)
                fatal("MIG: out of HBM");
            blocks_[vm].push_back(*pa);
            std::uint64_t got = hbm_.block_size(*pa);
            rtt.add(va, *pa, got, mem::kPermRead | mem::kPermWrite);
            va += got;
            remain -= std::min(remain, got);
        }
    }
    rtt.finalize();
    vnpu->set_range_table(std::move(rtt));

    CoreSet mask = vnpu->mask();
    int ifaces = topo_.interfaces_of(mask, cfg_.hbm_channels);
    vnpu->set_interfaces(ifaces);
    vnpu->set_bandwidth_cap(cfg_.hbm_bytes_per_cycle * ifaces /
                            cfg_.hbm_channels);

    setup_cycles_ += ctrl_.configure_routing_table(vm, num_cores);
    ctrl_.deploy_meta_bytes(vm, rt.storage_bits() / 8 +
                                    vnpu->range_table().footprint_bytes());

    part.in_use = true;
    vm_partition_[vm] = pick;
    virt::VirtualNpu& ref = *vnpu;
    vnpus_[vm] = std::move(vnpu);
    return ref;
}

void
MigPartitioner::destroy(VmId vm)
{
    VNPU_PROF("mig.destroy");
    auto it = vnpus_.find(vm);
    if (it == vnpus_.end())
        fatal("MIG destroy of unknown vm ", vm);
    parts_[vm_partition_[vm]].in_use = false;
    vm_partition_.erase(vm);
    auto bit = blocks_.find(vm);
    if (bit != blocks_.end()) {
        for (Addr a : bit->second)
            hbm_.free(a);
        blocks_.erase(bit);
    }
    ctrl_.teardown_tables(vm);
    vnpus_.erase(it);
}

virt::VirtualNpu*
MigPartitioner::find(VmId vm)
{
    auto it = vnpus_.find(vm);
    return it == vnpus_.end() ? nullptr : it->second.get();
}

int
MigPartitioner::wasted_cores() const
{
    int waste = 0;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        if (!parts_[i].in_use)
            continue;
        // Cores in the partition not hosting any virtual core.
        CoreSet used;
        for (const auto& [vm, idx] : vm_partition_) {
            if (idx == static_cast<int>(i))
                used |= vnpus_.at(vm)->mask();
        }
        const MigPartition& p = parts_[i];
        waste += p.num_cores() - mask_count(used);
    }
    return waste;
}

} // namespace vnpu::hyp
