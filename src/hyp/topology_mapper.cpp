#include "hyp/topology_mapper.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "obs/prof.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/task_pool.h"

namespace vnpu::hyp {

const char*
to_string(MappingStrategy s)
{
    switch (s) {
      case MappingStrategy::kExact:           return "exact";
      case MappingStrategy::kStraightforward: return "straightforward";
      case MappingStrategy::kSimilarTopology: return "similar-topology";
      case MappingStrategy::kFragmented:      return "fragmented";
    }
    return "?";
}

TopologyMapper::TopologyMapper(const noc::MeshTopology& topo) : topo_(topo)
{
}

graph::Graph
TopologyMapper::snake_topology(int n)
{
    VNPU_ASSERT(n > 0 && n <= kMaxCores);
    int w = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));

    // Grid cell of snake node i (boustrophedon rows).
    auto cell = [&](int i) {
        int r = i / w;
        int c = i % w;
        if (r % 2 == 1)
            c = w - 1 - c;
        return std::make_pair(c, r);
    };

    graph::Graph g(n);
    for (int i = 0; i < n; ++i) {
        auto [ci, ri] = cell(i);
        for (int j = i + 1; j < n; ++j) {
            auto [cj, rj] = cell(j);
            if (std::abs(ci - cj) + std::abs(ri - rj) == 1)
                g.add_edge(i, j);
        }
    }
    return g;
}

MappingResult
TopologyMapper::map(const MappingRequest& req, const CoreSet& free_cores) const
{
    const int k = req.vtopo.num_nodes();
    if (k <= 0) {
        MappingResult r;
        r.error = "empty request";
        return r;
    }
    if (free_cores.count() < k) {
        MappingResult r;
        r.error = "not enough free cores";
        return r;
    }

    switch (req.strategy) {
      case MappingStrategy::kExact:
        return map_exact(req, free_cores);
      case MappingStrategy::kStraightforward:
        return map_straightforward(req, free_cores);
      case MappingStrategy::kSimilarTopology:
        return map_similar(req, free_cores, /*allow_fragmented=*/false);
      case MappingStrategy::kFragmented:
        return map_similar(req, free_cores, /*allow_fragmented=*/true);
    }
    panic("unknown mapping strategy");
}

namespace {

/**
 * Flat open-addressing set of 64-bit topology hashes (linear probing,
 * power-of-two capacity, 0 reserved as the empty slot). Replaces the
 * `std::set<std::uint64_t>` that allocated a red-black node per insert
 * on the per-candidate dedup hot path.
 */
class HashSet64 {
  public:
    explicit HashSet64(std::size_t expect)
    {
        std::size_t cap = 16;
        while (cap < expect * 2)
            cap <<= 1;
        slots_.assign(cap, 0);
    }

    /** True when `h` was newly inserted. */
    bool
    insert(std::uint64_t h)
    {
        if (h == 0) { // hash 0 cannot live in a 0-means-empty table
            bool fresh = !has_zero_;
            has_zero_ = true;
            return fresh;
        }
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = (h * 0x9e3779b97f4a7c15ULL) >> 7 & mask;
        while (slots_[i] != 0) {
            if (slots_[i] == h)
                return false;
            i = (i + 1) & mask;
        }
        slots_[i] = h;
        ++size_;
        return true;
    }

  private:
    void
    grow()
    {
        std::vector<std::uint64_t> old = std::move(slots_);
        slots_.assign(old.size() * 2, 0);
        const std::size_t mask = slots_.size() - 1;
        for (std::uint64_t h : old) {
            if (h == 0)
                continue;
            std::size_t i = (h * 0x9e3779b97f4a7c15ULL) >> 7 & mask;
            while (slots_[i] != 0)
                i = (i + 1) & mask;
            slots_[i] = h;
        }
    }

    std::vector<std::uint64_t> slots_;
    std::size_t size_ = 0;
    bool has_zero_ = false;
};

/**
 * Streaming candidate collector. The legacy collector ran bounded exact
 * enumeration and then the deterministic sampler in one shot; splitting
 * the phases lets the scorer consume the enumerated candidates first
 * and skip the sampler entirely when they already contain a TED-0
 * winner (the sampled tail could never have been reached: the scorer
 * early-exits at the first zero-cost hash-equal candidate).
 */
struct CandidateCollector {
    const MappingRequest& req;
    const CoreSet& free;
    const graph::Graph& mesh;
    HashSet64 dedup; // "one instance per topology"
    std::vector<graph::NodeMask> masks;
    std::vector<std::uint64_t> hashes; ///< wl_hash_subset per mask
    std::uint64_t seen = 0;
    bool sampling_pending = false;

    CandidateCollector(const MappingRequest& r, const CoreSet& f,
                       const graph::Graph& m)
        : req(r), free(f), mesh(m),
          dedup(static_cast<std::size_t>(
              std::min<std::uint64_t>(r.max_candidates * 2, 4096)))
    {
    }

    bool
    consider(const graph::NodeMask& m)
    {
        VNPU_PROF("funnel.wl_dedup");
        ++seen;
        std::uint64_t h = mesh.wl_hash_subset(m);
        if (!dedup.insert(h))
            return true; // duplicate shape, prune
        masks.push_back(m);
        hashes.push_back(h);
        return masks.size() < static_cast<std::size_t>(req.max_candidates);
    }

    void
    enumerate_phase()
    {
        VNPU_PROF("funnel.enumerate");
        const int k = req.vtopo.num_nodes();
        // Whole-free-set request: exactly one candidate exists.
        if (k == free.count()) {
            if (mesh.is_connected_subset(free)) {
                masks.push_back(free);
                hashes.push_back(mesh.wl_hash_subset(free));
            }
            seen = 1;
            return;
        }
        auto cb = [&](const graph::NodeMask& m) { return consider(m); };
        // Exact enumeration while cheap; otherwise deterministic
        // sampling (deferred to sample_phase).
        std::uint64_t space = graph::binomial(free.count(), k);
        if (space <= 200000) {
            graph::enumerate_connected_subsets(mesh, k, free, cb,
                                               req.max_candidates * 512);
        } else {
            graph::enumerate_connected_subsets(mesh, k, free, cb,
                                               req.max_candidates * 4);
            sampling_pending = true;
        }
    }

    void
    sample_phase()
    {
        VNPU_PROF("funnel.sample");
        sampling_pending = false;
        const int k = req.vtopo.num_nodes();
        Rng rng(0x5eed + static_cast<std::uint64_t>(k));
        auto sampled = graph::sample_connected_subsets(
            mesh, k, free, static_cast<int>(req.max_candidates) * 4, rng);
        for (const graph::NodeMask& m : sampled) {
            if (masks.size() >=
                static_cast<std::size_t>(req.max_candidates) * 2)
                break;
            consider(m);
        }
    }
};

/**
 * Order-dependent request fingerprint for the memo key: node order,
 * labels, adjacency, and every GedOptions field that shapes a score.
 * (The iso-invariant wl_hash would be wrong here: GED mappings are
 * index-order dependent, so two differently-numbered isomorphic
 * requests must not share memo entries.)
 */
std::uint64_t
request_struct_hash(const MappingRequest& req)
{
    const graph::Graph& g = req.vtopo;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
        h ^= h >> 29;
    };
    fold(static_cast<std::uint64_t>(g.num_nodes()));
    for (int v = 0; v < g.num_nodes(); ++v) {
        fold(static_cast<std::uint64_t>(g.label(v)));
        const graph::NodeMask& nb = g.neighbors(v);
        for (int w = 0; w < graph::NodeMask::kWords; ++w)
            fold(nb.word(w));
    }
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits;
    std::memcpy(&bits, &req.ged.edge_ins_cost, sizeof(bits));
    fold(bits);
    std::memcpy(&bits, &req.ged.cost_bound, sizeof(bits));
    fold(bits);
    fold(static_cast<std::uint64_t>(req.ged.exact_limit));
    fold(static_cast<std::uint64_t>(req.ged.approx_seeds));
    return h;
}

/** Candidate-side GedProfile straight from the masked mesh adjacency. */
graph::GedProfile
subset_profile(const graph::Graph& mesh, const graph::NodeMask& m)
{
    graph::GedProfile p;
    int degree_sum = 0;
    for (int v : m) {
        int d = (mesh.neighbors(v) & m).count();
        p.degrees_desc.push_back(d);
        p.labels_sorted.push_back(mesh.label(v));
        degree_sum += d;
    }
    std::sort(p.degrees_desc.begin(), p.degrees_desc.end(),
              std::greater<int>());
    std::sort(p.labels_sorted.begin(), p.labels_sorted.end());
    p.num_edges = degree_sum / 2;
    return p;
}

/** Per-candidate scoring outcome (one slot per chunk entry). */
struct CandidateScore {
    enum class Kind : std::uint8_t { kPruned, kScored };
    Kind kind = Kind::kPruned;
    double cost = 0.0;
    std::vector<int> mapping;
    /** Prune bound the score was computed under (memo bookkeeping);
     *  infinity marks a bound-independent result. */
    double bound_used = 0.0;
    bool from_memo = false;
    bool ted0 = false; ///< resolved by the VF2 zero-TED certificate
};

constexpr std::size_t kMemoCapacity = 4096; ///< entries; flushed when full
constexpr std::size_t kScoreChunk = 16;     ///< candidates per pool batch

} // namespace

std::uint64_t
TopologyMapper::wirelength(const graph::Graph& vtopo,
                           const std::vector<CoreId>& assignment) const
{
    std::uint64_t total = 0;
    for (auto [u, v] : vtopo.edges())
        total += static_cast<std::uint64_t>(
            topo_.hop_distance(assignment[u], assignment[v]));
    return total;
}

void
TopologyMapper::refine_wirelength(const graph::Graph& vtopo,
                                  std::vector<CoreId>& assignment) const
{
    VNPU_PROF("funnel.2opt");
    const int n = vtopo.num_nodes();

    // Greedy chain-following seeds: pipeline traffic flows along the
    // virtual id order, so walk the region placing consecutive stages
    // on the nearest unused cores. Keep the best of the GED-derived
    // correspondence and the greedy embeddings as the 2-opt start.
    std::vector<CoreId> region = assignment; // the candidate node set
    std::sort(region.begin(), region.end());
    std::vector<CoreId> starts{region.front(), region.back()};
    std::vector<CoreId> best = assignment;
    std::uint64_t best_wl = wirelength(vtopo, best);
    for (CoreId start : starts) {
        std::vector<CoreId> greedy(n, kInvalidCore);
        CoreSet used;
        CoreId cur = start;
        greedy[0] = cur;
        used.set(cur);
        for (int v = 1; v < n; ++v) {
            CoreId next = kInvalidCore;
            int next_d = INT32_MAX;
            for (CoreId c : region) {
                if (used.test(c))
                    continue;
                int d = topo_.hop_distance(cur, c);
                if (d < next_d || (d == next_d && c < next)) {
                    next_d = d;
                    next = c;
                }
            }
            greedy[v] = next;
            used.set(next);
            cur = next;
        }
        std::uint64_t wl = wirelength(vtopo, greedy);
        if (wl < best_wl) {
            best_wl = wl;
            best = greedy;
        }
    }
    assignment = best;

    auto delta = [&](int a, int b) {
        // Change in wirelength if virtual nodes a and b swap cores.
        std::int64_t d = 0;
        auto edge_terms = [&](int x, int other, CoreId new_core) {
            for (int u : vtopo.neighbors(x)) {
                if (u == other)
                    continue; // the a-b edge is swap-invariant
                d -= topo_.hop_distance(assignment[x], assignment[u]);
                d += topo_.hop_distance(new_core, assignment[u]);
            }
        };
        edge_terms(a, b, assignment[b]);
        edge_terms(b, a, assignment[a]);
        return d;
    };
    for (int pass = 0; pass < 24; ++pass) {
        bool improved = false;
        for (int a = 0; a < n; ++a) {
            for (int b = a + 1; b < n; ++b) {
                if (delta(a, b) < 0) {
                    std::swap(assignment[a], assignment[b]);
                    improved = true;
                }
            }
        }
        if (!improved)
            break;
    }
}

namespace {

/** One axis-aligned rectangle of a polyomino decomposition. */
struct ShapeRect {
    int x, y, w, h;
};

/**
 * One congruence class of the request's grid embedding: per-vertex cell
 * coordinates (normalized to a (0,0)-anchored bounding box) plus the
 * maximal-rectangle decomposition used for the free-set test. Adjacency
 * across rectangle seams needs no extra checks — mesh adjacency is
 * purely coordinate-based, so any translated placement of the cells
 * induces exactly the embedded topology.
 */
struct ShapeVariant {
    int w = 0, h = 0;
    std::vector<std::pair<int, int>> cells; // cells[v] = (x, y) of vertex v
    std::vector<ShapeRect> rects;
};

/** Row runs merged vertically into maximal-height rectangles. */
std::vector<ShapeRect>
decompose_rects(const std::vector<std::pair<int, int>>& cells, int w, int h)
{
    // Occupancy grid of the bounding box.
    std::vector<char> occ(static_cast<std::size_t>(w) * h, 0);
    for (auto [x, y] : cells)
        occ[static_cast<std::size_t>(y) * w + x] = 1;

    std::vector<ShapeRect> rects;
    std::vector<char> taken(occ.size(), 0);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            if (!occ[static_cast<std::size_t>(y) * w + x] ||
                taken[static_cast<std::size_t>(y) * w + x])
                continue;
            int rw = 0;
            while (x + rw < w &&
                   occ[static_cast<std::size_t>(y) * w + x + rw] &&
                   !taken[static_cast<std::size_t>(y) * w + x + rw])
                ++rw;
            int rh = 1;
            auto row_full = [&](int yy) {
                for (int i = 0; i < rw; ++i) {
                    std::size_t at =
                        static_cast<std::size_t>(yy) * w + x + i;
                    if (!occ[at] || taken[at])
                        return false;
                }
                return true;
            };
            while (y + rh < h && row_full(y + rh))
                ++rh;
            for (int yy = y; yy < y + rh; ++yy)
                for (int i = 0; i < rw; ++i)
                    taken[static_cast<std::size_t>(yy) * w + x + i] = 1;
            rects.push_back({x, y, rw, rh});
        }
    }
    return rects;
}

/**
 * The 8 grid symmetries (4 rotations x optional reflection) of one
 * embedding, normalized and deduplicated by cell set: congruent
 * transforms would slide over identical placements.
 */
std::vector<ShapeVariant>
shape_variants(const noc::MeshTopology& topo, const std::vector<int>& emb)
{
    const int k = static_cast<int>(emb.size());
    std::vector<ShapeVariant> out;
    std::vector<std::vector<std::pair<int, int>>> seen_cell_sets;
    for (int t = 0; t < 8; ++t) {
        ShapeVariant v;
        v.cells.resize(k);
        int min_x = INT32_MAX, min_y = INT32_MAX;
        for (int p = 0; p < k; ++p) {
            int x = topo.x_of(emb[p]);
            int y = topo.y_of(emb[p]);
            if (t & 4)
                std::swap(x, y); // transpose
            if (t & 1)
                x = -x; // horizontal flip
            if (t & 2)
                y = -y; // vertical flip
            v.cells[p] = {x, y};
            min_x = std::min(min_x, x);
            min_y = std::min(min_y, y);
        }
        int max_x = 0, max_y = 0;
        for (auto& [x, y] : v.cells) {
            x -= min_x;
            y -= min_y;
            max_x = std::max(max_x, x);
            max_y = std::max(max_y, y);
        }
        v.w = max_x + 1;
        v.h = max_y + 1;
        std::vector<std::pair<int, int>> key = v.cells;
        std::sort(key.begin(), key.end());
        bool dup = false;
        for (const auto& k2 : seen_cell_sets)
            dup = dup || k2 == key;
        if (dup)
            continue;
        seen_cell_sets.push_back(std::move(key));
        v.rects = decompose_rects(v.cells, v.w, v.h);
        out.push_back(std::move(v));
    }
    return out;
}

/**
 * Anchor-slide every shape variant over the free set. Each anchor test
 * is one `CoreSet::test_range` per rectangle row. Returns true and
 * fills the assignment on the first (variant-major, row-major) hit;
 * `anchors` accumulates placements tried.
 */
bool
slide_shape(const noc::MeshTopology& topo,
            const std::vector<ShapeVariant>& variants, const CoreSet& free,
            std::vector<CoreId>& assignment, std::uint64_t* anchors)
{
    for (const ShapeVariant& v : variants) {
        for (int ay = 0; ay + v.h <= topo.height(); ++ay) {
            for (int ax = 0; ax + v.w <= topo.width(); ++ax) {
                ++*anchors;
                bool fits = true;
                for (const ShapeRect& r : v.rects) {
                    for (int row = 0; row < r.h && fits; ++row)
                        fits = free.test_range(
                            topo.id_of(ax + r.x, ay + r.y + row), r.w);
                    if (!fits)
                        break;
                }
                if (!fits)
                    continue;
                assignment.resize(v.cells.size());
                for (std::size_t p = 0; p < v.cells.size(); ++p)
                    assignment[p] = topo.id_of(ax + v.cells[p].first,
                                               ay + v.cells[p].second);
                return true;
            }
        }
    }
    return false;
}

} // namespace

MappingResult
TopologyMapper::map_exact(const MappingRequest& req, const CoreSet& free) const
{
    MappingResult res;
    std::uint64_t seen = 0;

    // An exact image of a disconnected request is itself disconnected;
    // honor R-3 up front instead of tripping isolation checks later.
    if (req.require_connected && !req.vtopo.is_connected()) {
        res.error = "disconnected request topology with "
                    "require_connected set";
        return res;
    }

    std::uint64_t req_hash = req.vtopo.wl_hash();

    // Phase 1 — sliding rectangle. Mesh-shaped requests (the dominant
    // case) are matched by sliding the rectangle over the physical
    // mesh; kept in front of the general machinery so rectangle
    // placements (and the golden traces built on them) are bit-for-bit
    // what they were before the complete search existed.
    const int k = req.vtopo.num_nodes();
    for (int vw = 1; vw <= k; ++vw) {
        VNPU_PROF("mapper.exact.rect");
        if (k % vw != 0)
            continue;
        const int vh = k / vw;
        if (vw > topo_.width() || vh > topo_.height())
            continue;
        graph::Graph rect = graph::Graph::mesh(vw, vh);
        if (rect.wl_hash() != req_hash)
            continue;
        // The anchored rectangle induces exactly mesh(vw, vh), so the
        // identity (row-major) correspondence works for any anchor iff
        // it is zero-cost against the canonical rectangle.
        std::vector<int> identity(k);
        for (int v = 0; v < k; ++v)
            identity[v] = v;
        if (graph::ged_mapping_cost(req.vtopo, rect, identity,
                                    req.ged) != 0.0)
            continue;
        for (int ay = 0; ay + vh <= topo_.height(); ++ay) {
            for (int ax = 0; ax + vw <= topo_.width(); ++ax) {
                ++seen;
                bool fits = true;
                for (int r = 0; r < vh && fits; ++r)
                    for (int c = 0; c < vw && fits; ++c)
                        fits = free.test(topo_.id_of(ax + c, ay + r));
                if (!fits)
                    continue;
                res.ok = true;
                res.ted = 0.0;
                res.assignment.resize(k);
                for (int v = 0; v < k; ++v)
                    res.assignment[v] =
                        topo_.id_of(ax + v % vw, ay + v / vw);
                res.candidates_considered = seen;
                return res;
            }
        }
    }

    // The mesh graph is only needed past the fast path.
    graph::Graph mesh = topo_.to_graph();

    // Cheap rejection before any search: a mesh cannot host a vertex of
    // degree > 4 (degree-sequence prefilters run inside the search).
    if (req.vtopo.max_degree() > mesh.max_degree()) {
        res.candidates_considered = seen;
        res.error = "request degree exceeds mesh degree "
                    "(no exact embedding exists)";
        return res;
    }

    graph::IsoOptions iso;
    iso.max_steps = req.exact_search_budget;
    if (req.ged.node_cost) {
        // Exact admission under custom node costs: a placement is exact
        // iff every node substitution is free.
        const auto& cost = req.ged.node_cost;
        iso.node_compat = [&cost](int a, int b) {
            return cost(a, b) == 0.0;
        };
    }

    // Phase 2 — polyomino slide. Embed the request once into the
    // unconstrained mesh; a hit yields a cell shape whose 8 symmetries
    // slide over the free set in O(rects) bit tests per anchor. Only
    // valid on label-uniform meshes (translation preserves host labels
    // there; `to_graph()` meshes are unlabeled).
    bool uniform = true;
    for (int v = 1; v < mesh.num_nodes() && uniform; ++v)
        uniform = mesh.label(v) == mesh.label(0);
    const CoreSet all = CoreSet::first_n(topo_.num_nodes());
    if (uniform) {
        VNPU_PROF("mapper.exact.slide");
        graph::IsoResult shape =
            graph::find_induced_isomorphism(req.vtopo, mesh, all, iso);
        res.search_steps += shape.steps;
        if (!shape.found) {
            // Not embeddable in the full mesh => not in any free subset.
            res.candidates_considered = seen;
            res.budget_exhausted = shape.budget_exhausted;
            res.error = shape.budget_exhausted
                            ? "exact search budget exhausted "
                              "(result inconclusive)"
                            : "request topology is not embeddable in "
                              "the physical mesh";
            return res;
        }
        if (slide_shape(topo_, shape_variants(topo_, shape.mapping), free,
                        res.assignment, &seen)) {
            res.ok = true;
            res.ted = 0.0;
            res.candidates_considered = seen;
            return res;
        }
    }

    // Phase 3 — anchored VF2 over the free-core induced subgraph. The
    // slide only covers translates of one congruence class; fragmented
    // free sets can still host an incongruent embedding (e.g. a chain
    // bent around an obstacle), which this search finds or refutes
    // within the remaining budget.
    iso.max_steps = req.exact_search_budget > res.search_steps
                        ? req.exact_search_budget - res.search_steps
                        : 1;
    VNPU_PROF("mapper.exact.vf2");
    graph::IsoResult deep =
        graph::find_induced_isomorphism(req.vtopo, mesh, free, iso);
    res.search_steps += deep.steps;
    res.candidates_considered = seen;
    if (deep.found) {
        res.ok = true;
        res.ted = 0.0;
        res.assignment.assign(deep.mapping.begin(), deep.mapping.end());
        return res;
    }
    res.budget_exhausted = deep.budget_exhausted;
    res.error = deep.budget_exhausted
                    ? "exact search budget exhausted (result inconclusive)"
                    : "no exact topology match available (topology "
                      "lock-in)";
    return res;
}

MappingResult
TopologyMapper::map_straightforward(const MappingRequest& req,
                                    const CoreSet& free) const
{
    const int k = req.vtopo.num_nodes();
    std::vector<int> nodes = graph::Graph::mask_to_nodes(free);
    nodes.resize(k); // lowest ids first (zig-zag over the mesh rows)

    graph::Graph sub = topo_.to_graph().induced(nodes);
    // Identity order: virtual core v sits on the v-th lowest free core.
    std::vector<int> identity(k);
    for (int v = 0; v < k; ++v)
        identity[v] = v;
    MappingResult res;
    res.ok = true;
    res.assignment.resize(k);
    for (int v = 0; v < k; ++v)
        res.assignment[v] = nodes[v];
    res.ted = graph::ged_mapping_cost(req.vtopo, sub, identity, req.ged);
    res.candidates_considered = 1;
    return res;
}

MappingResult
TopologyMapper::map_similar(const MappingRequest& req, const CoreSet& free,
                            bool allow_fragmented) const
{
    const int k = req.vtopo.num_nodes();
    graph::Graph mesh = topo_.to_graph();
    std::uint64_t req_hash = req.vtopo.wl_hash();

    // Custom cost callbacks disable the funnel stages: an arbitrary
    // std::function can be neither admissibly lower-bounded, hashed
    // into a memo key, nor assumed non-negative (the exact-search
    // prune bound relies on non-negative increments).
    const bool funnel = req.funnel && !req.ged.node_cost &&
                        !req.ged.edge_del_cost &&
                        req.ged.edge_ins_cost >= 0.0;

    CandidateCollector col(req, free, mesh);
    col.enumerate_phase();

    MappingResult res;
    double best = std::numeric_limits<double>::infinity();
    const graph::GedProfile req_profile = graph::ged_profile(req.vtopo);
    const std::uint64_t memo_req_hash =
        funnel ? request_struct_hash(req) : 0;
    // Request-side search state (dense form, anchor orders) hoisted out
    // of the per-candidate loop; scoring through it is bit-identical to
    // graph::ged against the induced candidate subgraph.
    const graph::GedScorer scorer(req.vtopo, req.ged);

    // Staged scorer over col.masks[lo..): chunked so the prune bound
    // refreshes between pool batches; returns true on the TED-0 early
    // exit. Reduction is sequential in candidate index order, so the
    // decision is bit-identical to the legacy one-candidate-at-a-time
    // loop (and to any worker count).
    auto score_range = [&](std::size_t lo) -> bool {
        // vnpu-lint: hot-path (funnel scoring; per-chunk bookkeeping
        // vectors are the only allowed growth, suppressed per line)
        while (lo < col.masks.size()) {
            const std::size_t hi =
                std::min(col.masks.size(), lo + kScoreChunk);
            const std::size_t n_slots = hi - lo;
            const double bound = best; // frozen for this chunk
            std::vector<CandidateScore> slots(n_slots);
            std::vector<int> runnable; // slots needing a GED run

            // Stages 2+3 (sequential pre-pass): memo probe, then the
            // admissible lower bound against the chunk bound.
            for (std::size_t s = 0; s < n_slots; ++s) {
                const std::size_t i = lo + s;
                ++res.funnel_candidates;
                if (!funnel) {
                    // vnpu-lint: allow-next-line(hot-path-alloc) per-chunk
                    runnable.push_back(static_cast<int>(s));
                    continue;
                }
                {
                    VNPU_PROF("funnel.memo_probe");
                    auto it =
                        memo_.find(MemoKey{memo_req_hash, col.masks[i]});
                    if (it != memo_.end() &&
                        (it->second.cost < it->second.bound_used ||
                         bound <= it->second.bound_used)) {
                        ++res.funnel_memo_hits;
                        slots[s].kind = CandidateScore::Kind::kScored;
                        slots[s].cost = it->second.cost;
                        slots[s].mapping = it->second.mapping;
                        slots[s].from_memo = true;
                        continue;
                    }
                }
                ++res.funnel_memo_misses;
                bool lb_pruned;
                {
                    VNPU_PROF("funnel.lb_prune");
                    lb_pruned = graph::ged_lower_bound(
                                    req_profile,
                                    subset_profile(mesh, col.masks[i]),
                                    req.ged) > bound;
                }
                if (lb_pruned) {
                    ++res.funnel_lb_pruned; // cost >= lb > any later best
                    continue;
                }
                // vnpu-lint: allow-next-line(hot-path-alloc) per-chunk
                runnable.push_back(static_cast<int>(s));
            }

            // Stages 1+4: score surviving candidates. Each slot is a
            // pure function of (request, mesh, mask, bound) writing its
            // own result, so the pool introduces no nondeterminism.
            auto run_one = [&](int ri) {
                const std::size_t s =
                    static_cast<std::size_t>(runnable[ri]);
                const std::size_t i = lo + s;
                CandidateScore& out = slots[s];
                graph::GedResult g;
                if (k > req.ged.exact_limit) {
                    // The hot path: approximate scoring through the
                    // hoisted request-side state (== graph::ged on the
                    // induced subgraph, bit for bit).
                    VNPU_PROF("funnel.full_ged");
                    g = scorer.score_subset(mesh, col.masks[i]);
                    out.bound_used =
                        std::numeric_limits<double>::infinity();
                    out.kind = CandidateScore::Kind::kScored;
                    out.cost = g.cost;
                    out.mapping = std::move(g.mapping);
                    return;
                }
                graph::Graph sub = mesh.induced(
                    graph::Graph::mask_to_nodes(col.masks[i]));
                graph::GedOptions opt = req.ged;
                bool ran_full = true;
                if (funnel && col.hashes[i] == req_hash) {
                    // TED-0 stage: the VF2 engine certifies that a
                    // zero-cost bijection exists, then the zero-bounded
                    // exact search reproduces the canonical (DFS-first)
                    // zero mapping without exploring any paid branch.
                    VNPU_PROF("funnel.ted0_cert");
                    graph::IsoOptions io;
                    io.max_steps = 1u << 20;
                    graph::IsoResult iso =
                        graph::find_induced_isomorphism(
                            req.vtopo, sub, CoreSet::first_n(k), io);
                    if (iso.found) {
                        opt.cost_bound =
                            std::numeric_limits<double>::min();
                        g = graph::exact_ged(req.vtopo, sub, opt);
                        out.ted0 = true;
                        out.bound_used =
                            std::numeric_limits<double>::infinity();
                        ran_full = false;
                    }
                }
                if (ran_full) {
                    VNPU_PROF("funnel.full_ged");
                    if (funnel) {
                        // Thread the running best in as a prune bound:
                        // a result worse than `bound` could never win,
                        // so the search may abandon it early.
                        opt.cost_bound = std::min(opt.cost_bound, bound);
                        g = graph::exact_ged(req.vtopo, sub, opt);
                        out.bound_used =
                            g.mapping.empty()
                                ? opt.cost_bound
                                : std::numeric_limits<double>::infinity();
                    } else {
                        g = graph::ged(req.vtopo, sub, req.ged);
                        out.bound_used =
                            std::numeric_limits<double>::infinity();
                    }
                }
                out.kind = CandidateScore::Kind::kScored;
                out.cost = g.cost;
                out.mapping = std::move(g.mapping);
            };
            if (funnel) {
                TaskPool::instance().parallel_for(
                    0, static_cast<int>(runnable.size()), run_one);
            } else {
                // Custom cost callbacks may not be thread-safe; score
                // on the calling thread like the legacy loop did.
                for (int ri = 0; ri < static_cast<int>(runnable.size());
                     ++ri)
                    run_one(ri);
            }

            // Memo insert + reduction, in candidate index order.
            for (std::size_t s = 0; s < n_slots; ++s) {
                CandidateScore& sc = slots[s];
                if (sc.kind == CandidateScore::Kind::kPruned)
                    continue;
                const std::size_t i = lo + s;
                if (!sc.from_memo) {
                    if (sc.ted0)
                        ++res.funnel_ted0_hits;
                    else
                        ++res.funnel_full_ged;
                    if (funnel) {
                        if (memo_.size() >= kMemoCapacity)
                            memo_.clear();
                        memo_[MemoKey{memo_req_hash, col.masks[i]}] =
                            MemoEntry{sc.cost, sc.mapping,
                                      sc.bound_used};
                    }
                }
                if (sc.cost < best) {
                    best = sc.cost;
                    std::vector<int> nodes =
                        graph::Graph::mask_to_nodes(col.masks[i]);
                    res.assignment.assign(k, kInvalidCore);
                    for (int v = 0; v < k; ++v)
                        res.assignment[v] = nodes[sc.mapping[v]];
                    res.ted = sc.cost;
                    res.ok = true;
                    // Early exit: candidate topology equals the
                    // request (Line 22) — already adjacency-perfect.
                    if (col.hashes[i] == req_hash && sc.cost == 0.0)
                        return true;
                }
            }
            lo = hi;
        }
        return false;
    };

    bool adjacency_perfect = score_range(0);
    if (!adjacency_perfect && col.sampling_pending) {
        const std::size_t lo = col.masks.size();
        col.sample_phase();
        adjacency_perfect = score_range(lo);
    }
    res.candidates_considered = col.seen;
    if (adjacency_perfect)
        return res;

    if (res.ok) {
        // TED ranks candidates; within the winner, keep the endpoints
        // of unmatched virtual edges physically close (an unmatched
        // edge otherwise lands on an arbitrary multi-hop path).
        refine_wirelength(req.vtopo, res.assignment);
        // Re-derive the TED of the refined correspondence for reports.
        std::vector<int> nodes(res.assignment);
        std::sort(nodes.begin(), nodes.end());
        std::vector<int> mapping(k);
        for (int v = 0; v < k; ++v) {
            mapping[v] = static_cast<int>(
                std::lower_bound(nodes.begin(), nodes.end(),
                                 res.assignment[v]) -
                nodes.begin());
        }
        res.ted = graph::ged_mapping_cost(req.vtopo, mesh.induced(nodes),
                                          mapping, req.ged);
        return res;
    }

    if (!allow_fragmented) {
        res.error = "no connected region of the required size";
        return res;
    }

    // Fragmented fallback: greedily pack the closest free cores.
    std::vector<int> free_nodes = graph::Graph::mask_to_nodes(free);
    // Seed: free core with the most free neighbors.
    int seed = free_nodes.front();
    int best_deg = -1;
    for (int v : free_nodes) {
        int deg = (mesh.neighbors(v) & free).count();
        if (deg > best_deg) {
            best_deg = deg;
            seed = v;
        }
    }
    std::vector<int> chosen{seed};
    CoreSet chosen_mask = core_bit(seed);
    while (static_cast<int>(chosen.size()) < k) {
        int next = kInvalidCore;
        int next_dist = INT32_MAX;
        for (int v : free_nodes) {
            if (chosen_mask.test(v))
                continue;
            int d = INT32_MAX;
            for (int c : chosen)
                d = std::min(d, topo_.hop_distance(c, v));
            if (d < next_dist || (d == next_dist && v < next)) {
                next_dist = d;
                next = v;
            }
        }
        VNPU_ASSERT(next != kInvalidCore);
        chosen.push_back(next);
        chosen_mask.set(next);
    }
    std::sort(chosen.begin(), chosen.end());
    graph::Graph sub = mesh.induced(chosen);
    graph::GedResult g = graph::approx_ged(req.vtopo, sub, req.ged);
    res.ok = true;
    res.ted = g.cost;
    res.assignment.assign(k, kInvalidCore);
    for (int v = 0; v < k; ++v)
        res.assignment[v] = chosen[g.mapping[v]];
    refine_wirelength(req.vtopo, res.assignment);
    return res;
}

} // namespace vnpu::hyp
