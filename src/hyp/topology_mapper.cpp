#include "hyp/topology_mapper.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "sim/log.h"
#include "sim/rng.h"

namespace vnpu::hyp {

const char*
to_string(MappingStrategy s)
{
    switch (s) {
      case MappingStrategy::kExact:           return "exact";
      case MappingStrategy::kStraightforward: return "straightforward";
      case MappingStrategy::kSimilarTopology: return "similar-topology";
      case MappingStrategy::kFragmented:      return "fragmented";
    }
    return "?";
}

TopologyMapper::TopologyMapper(const noc::MeshTopology& topo) : topo_(topo)
{
}

graph::Graph
TopologyMapper::snake_topology(int n)
{
    VNPU_ASSERT(n > 0 && n <= kMaxCores);
    int w = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));

    // Grid cell of snake node i (boustrophedon rows).
    auto cell = [&](int i) {
        int r = i / w;
        int c = i % w;
        if (r % 2 == 1)
            c = w - 1 - c;
        return std::make_pair(c, r);
    };

    graph::Graph g(n);
    for (int i = 0; i < n; ++i) {
        auto [ci, ri] = cell(i);
        for (int j = i + 1; j < n; ++j) {
            auto [cj, rj] = cell(j);
            if (std::abs(ci - cj) + std::abs(ri - rj) == 1)
                g.add_edge(i, j);
        }
        (void)ri;
    }
    return g;
}

MappingResult
TopologyMapper::map(const MappingRequest& req, const CoreSet& free_cores) const
{
    const int k = req.vtopo.num_nodes();
    if (k <= 0)
        return {false, {}, 0.0, 0, "empty request"};
    if (free_cores.count() < k)
        return {false, {}, 0.0, 0, "not enough free cores"};

    switch (req.strategy) {
      case MappingStrategy::kExact:
        return map_exact(req, free_cores);
      case MappingStrategy::kStraightforward:
        return map_straightforward(req, free_cores);
      case MappingStrategy::kSimilarTopology:
        return map_similar(req, free_cores, /*allow_fragmented=*/false);
      case MappingStrategy::kFragmented:
        return map_similar(req, free_cores, /*allow_fragmented=*/true);
    }
    panic("unknown mapping strategy");
}

std::vector<graph::NodeMask>
TopologyMapper::collect_candidates(const MappingRequest& req,
                                   const CoreSet& free,
                                   std::uint64_t* seen) const
{
    const int k = req.vtopo.num_nodes();
    graph::Graph mesh = topo_.to_graph();

    std::vector<graph::NodeMask> candidates;
    std::set<std::uint64_t> topo_hashes; // "one instance per topology"
    std::uint64_t considered = 0;

    // Whole-free-set request: exactly one candidate exists.
    if (k == free.count()) {
        if (mesh.is_connected_subset(free))
            candidates.push_back(free);
        *seen = 1;
        return candidates;
    }

    auto consider = [&](const graph::NodeMask& m) {
        ++considered;
        graph::Graph sub = mesh.induced(graph::Graph::mask_to_nodes(m));
        if (!topo_hashes.insert(sub.wl_hash()).second)
            return true; // duplicate shape, prune
        candidates.push_back(m);
        return candidates.size() <
               static_cast<std::size_t>(req.max_candidates);
    };

    // Exact enumeration while cheap; otherwise deterministic sampling.
    std::uint64_t space = graph::binomial(free.count(), k);
    if (space <= 200000) {
        graph::enumerate_connected_subsets(mesh, k, free, consider,
                                           req.max_candidates * 512);
    } else {
        graph::enumerate_connected_subsets(mesh, k, free, consider,
                                           req.max_candidates * 4);
        Rng rng(0x5eed + static_cast<std::uint64_t>(k));
        auto sampled = graph::sample_connected_subsets(
            mesh, k, free, static_cast<int>(req.max_candidates) * 4, rng);
        for (const graph::NodeMask& m : sampled) {
            if (candidates.size() >=
                static_cast<std::size_t>(req.max_candidates) * 2)
                break;
            consider(m);
        }
    }
    *seen = considered;
    return candidates;
}

std::uint64_t
TopologyMapper::wirelength(const graph::Graph& vtopo,
                           const std::vector<CoreId>& assignment) const
{
    std::uint64_t total = 0;
    for (auto [u, v] : vtopo.edges())
        total += static_cast<std::uint64_t>(
            topo_.hop_distance(assignment[u], assignment[v]));
    return total;
}

void
TopologyMapper::refine_wirelength(const graph::Graph& vtopo,
                                  std::vector<CoreId>& assignment) const
{
    const int n = vtopo.num_nodes();

    // Greedy chain-following seeds: pipeline traffic flows along the
    // virtual id order, so walk the region placing consecutive stages
    // on the nearest unused cores. Keep the best of the GED-derived
    // correspondence and the greedy embeddings as the 2-opt start.
    std::vector<CoreId> region = assignment; // the candidate node set
    std::sort(region.begin(), region.end());
    std::vector<CoreId> starts{region.front(), region.back()};
    std::vector<CoreId> best = assignment;
    std::uint64_t best_wl = wirelength(vtopo, best);
    for (CoreId start : starts) {
        std::vector<CoreId> greedy(n, kInvalidCore);
        CoreSet used;
        CoreId cur = start;
        greedy[0] = cur;
        used.set(cur);
        for (int v = 1; v < n; ++v) {
            CoreId next = kInvalidCore;
            int next_d = INT32_MAX;
            for (CoreId c : region) {
                if (used.test(c))
                    continue;
                int d = topo_.hop_distance(cur, c);
                if (d < next_d || (d == next_d && c < next)) {
                    next_d = d;
                    next = c;
                }
            }
            greedy[v] = next;
            used.set(next);
            cur = next;
        }
        std::uint64_t wl = wirelength(vtopo, greedy);
        if (wl < best_wl) {
            best_wl = wl;
            best = greedy;
        }
    }
    assignment = best;

    auto delta = [&](int a, int b) {
        // Change in wirelength if virtual nodes a and b swap cores.
        std::int64_t d = 0;
        auto edge_terms = [&](int x, int other, CoreId new_core) {
            for (int u : vtopo.neighbors(x)) {
                if (u == other)
                    continue; // the a-b edge is swap-invariant
                d -= topo_.hop_distance(assignment[x], assignment[u]);
                d += topo_.hop_distance(new_core, assignment[u]);
            }
        };
        edge_terms(a, b, assignment[b]);
        edge_terms(b, a, assignment[a]);
        return d;
    };
    for (int pass = 0; pass < 24; ++pass) {
        bool improved = false;
        for (int a = 0; a < n; ++a) {
            for (int b = a + 1; b < n; ++b) {
                if (delta(a, b) < 0) {
                    std::swap(assignment[a], assignment[b]);
                    improved = true;
                }
            }
        }
        if (!improved)
            break;
    }
}

MappingResult
TopologyMapper::map_exact(const MappingRequest& req, const CoreSet& free) const
{
    MappingResult res;
    std::uint64_t seen = 0;
    std::uint64_t req_hash = req.vtopo.wl_hash();

    // Mesh-shaped requests (the dominant case) are matched by sliding
    // the rectangle over the physical mesh. At DCRA scale the sampled
    // candidate set below cannot cover the space, so without this the
    // exact strategy would fail on a completely free 256-core chip.
    const int k = req.vtopo.num_nodes();
    for (int vw = 1; vw <= k; ++vw) {
        if (k % vw != 0)
            continue;
        const int vh = k / vw;
        if (vw > topo_.width() || vh > topo_.height())
            continue;
        graph::Graph rect = graph::Graph::mesh(vw, vh);
        if (rect.wl_hash() != req_hash)
            continue;
        // The anchored rectangle induces exactly mesh(vw, vh), so the
        // identity (row-major) correspondence works for any anchor iff
        // it is zero-cost against the canonical rectangle.
        std::vector<int> identity(k);
        for (int v = 0; v < k; ++v)
            identity[v] = v;
        if (graph::ged_mapping_cost(req.vtopo, rect, identity,
                                    req.ged) != 0.0)
            continue;
        for (int ay = 0; ay + vh <= topo_.height(); ++ay) {
            for (int ax = 0; ax + vw <= topo_.width(); ++ax) {
                ++seen;
                bool fits = true;
                for (int r = 0; r < vh && fits; ++r)
                    for (int c = 0; c < vw && fits; ++c)
                        fits = free.test(topo_.id_of(ax + c, ay + r));
                if (!fits)
                    continue;
                res.ok = true;
                res.ted = 0.0;
                res.assignment.resize(k);
                for (int v = 0; v < k; ++v)
                    res.assignment[v] =
                        topo_.id_of(ax + v % vw, ay + v / vw);
                res.candidates_considered = seen;
                return res;
            }
        }
    }

    // The mesh graph is only needed by the candidate fallback; the
    // fast path above returns without paying for it.
    graph::Graph mesh = topo_.to_graph();
    // `seen` so far counts rectangle anchors; collect_candidates
    // overwrites its out-param, so accumulate the two phases.
    std::uint64_t cand_seen = 0;
    for (const graph::NodeMask& m :
         collect_candidates(req, free, &cand_seen)) {
        std::vector<int> nodes = graph::Graph::mask_to_nodes(m);
        graph::Graph sub = mesh.induced(nodes);
        if (sub.wl_hash() != req_hash)
            continue;
        graph::GedResult g = graph::ged(req.vtopo, sub, req.ged);
        if (g.cost == 0.0) {
            res.ok = true;
            res.ted = 0.0;
            res.assignment.resize(nodes.size());
            for (int v = 0; v < req.vtopo.num_nodes(); ++v)
                res.assignment[v] = nodes[g.mapping[v]];
            res.candidates_considered = seen + cand_seen;
            return res;
        }
    }
    res.error = "no exact topology match available (topology lock-in)";
    res.candidates_considered = seen + cand_seen;
    return res;
}

MappingResult
TopologyMapper::map_straightforward(const MappingRequest& req,
                                    const CoreSet& free) const
{
    const int k = req.vtopo.num_nodes();
    std::vector<int> nodes = graph::Graph::mask_to_nodes(free);
    nodes.resize(k); // lowest ids first (zig-zag over the mesh rows)

    graph::Graph sub = topo_.to_graph().induced(nodes);
    // Identity order: virtual core v sits on the v-th lowest free core.
    std::vector<int> identity(k);
    for (int v = 0; v < k; ++v)
        identity[v] = v;
    MappingResult res;
    res.ok = true;
    res.assignment.resize(k);
    for (int v = 0; v < k; ++v)
        res.assignment[v] = nodes[v];
    res.ted = graph::ged_mapping_cost(req.vtopo, sub, identity, req.ged);
    res.candidates_considered = 1;
    return res;
}

MappingResult
TopologyMapper::map_similar(const MappingRequest& req, const CoreSet& free,
                            bool allow_fragmented) const
{
    const int k = req.vtopo.num_nodes();
    graph::Graph mesh = topo_.to_graph();
    std::uint64_t req_hash = req.vtopo.wl_hash();

    std::uint64_t seen = 0;
    std::vector<graph::NodeMask> candidates =
        collect_candidates(req, free, &seen);

    MappingResult res;
    res.candidates_considered = seen;

    double best = std::numeric_limits<double>::infinity();
    for (const graph::NodeMask& m : candidates) {
        std::vector<int> nodes = graph::Graph::mask_to_nodes(m);
        graph::Graph sub = mesh.induced(nodes);

        // Early exit: candidate topology equals the request (Line 22).
        bool maybe_exact = sub.wl_hash() == req_hash;
        graph::GedResult g = graph::ged(req.vtopo, sub, req.ged);
        if (g.cost < best) {
            best = g.cost;
            res.assignment.assign(k, kInvalidCore);
            for (int v = 0; v < k; ++v)
                res.assignment[v] = nodes[g.mapping[v]];
            res.ted = g.cost;
            res.ok = true;
            if (maybe_exact && g.cost == 0.0)
                return res; // already adjacency-perfect
        }
    }
    if (res.ok) {
        // TED ranks candidates; within the winner, keep the endpoints
        // of unmatched virtual edges physically close (an unmatched
        // edge otherwise lands on an arbitrary multi-hop path).
        refine_wirelength(req.vtopo, res.assignment);
        // Re-derive the TED of the refined correspondence for reports.
        std::vector<int> nodes(res.assignment);
        std::sort(nodes.begin(), nodes.end());
        std::vector<int> mapping(k);
        for (int v = 0; v < k; ++v) {
            mapping[v] = static_cast<int>(
                std::lower_bound(nodes.begin(), nodes.end(),
                                 res.assignment[v]) -
                nodes.begin());
        }
        res.ted = graph::ged_mapping_cost(req.vtopo, mesh.induced(nodes),
                                          mapping, req.ged);
        return res;
    }

    if (!allow_fragmented) {
        res.error = "no connected region of the required size";
        return res;
    }

    // Fragmented fallback: greedily pack the closest free cores.
    std::vector<int> free_nodes = graph::Graph::mask_to_nodes(free);
    // Seed: free core with the most free neighbors.
    int seed = free_nodes.front();
    int best_deg = -1;
    for (int v : free_nodes) {
        int deg = (mesh.neighbors(v) & free).count();
        if (deg > best_deg) {
            best_deg = deg;
            seed = v;
        }
    }
    std::vector<int> chosen{seed};
    CoreSet chosen_mask = core_bit(seed);
    while (static_cast<int>(chosen.size()) < k) {
        int next = kInvalidCore;
        int next_dist = INT32_MAX;
        for (int v : free_nodes) {
            if (chosen_mask.test(v))
                continue;
            int d = INT32_MAX;
            for (int c : chosen)
                d = std::min(d, topo_.hop_distance(c, v));
            if (d < next_dist || (d == next_dist && v < next)) {
                next_dist = d;
                next = v;
            }
        }
        VNPU_ASSERT(next != kInvalidCore);
        chosen.push_back(next);
        chosen_mask.set(next);
    }
    std::sort(chosen.begin(), chosen.end());
    graph::Graph sub = mesh.induced(chosen);
    graph::GedResult g = graph::approx_ged(req.vtopo, sub, req.ged);
    res.ok = true;
    res.ted = g.cost;
    res.assignment.assign(k, kInvalidCore);
    for (int v = 0; v < k; ++v)
        res.assignment[v] = chosen[g.mapping[v]];
    refine_wirelength(req.vtopo, res.assignment);
    return res;
}

} // namespace vnpu::hyp
