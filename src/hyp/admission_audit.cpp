#include "hyp/admission_audit.h"

#include <algorithm>
#include <ostream>

namespace vnpu::hyp {

void
AdmissionAuditRing::set_capacity(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    // Unload the newest `min(size, capacity)` entries oldest-first,
    // then restart with head at 0; seq numbering is untouched.
    std::vector<AdmissionAuditEntry> kept;
    const std::size_t n = std::min(ring_.size(), capacity);
    kept.reserve(n);
    for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i)
        kept.push_back(at(i));
    capacity_ = capacity;
    ring_ = std::move(kept);
    head_ = 0;
}

namespace {

void
write_json_string(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
AdmissionAuditRing::dump_jsonl(std::ostream& os) const
{
    for (std::size_t i = 0; i < size(); ++i) {
        const AdmissionAuditEntry& e = at(i);
        os << "{\"seq\": " << e.seq << ", \"sim_time\": " << e.sim_time
           << ", \"requested_cores\": " << e.requested_cores
           << ", \"strategy\": \"" << to_string(e.strategy)
           << "\", \"admitted\": " << (e.admitted ? "true" : "false")
           << ", \"vm\": " << e.vm << ", \"ted\": " << e.ted
           << ", \"setup_cycles\": " << e.setup_cycles
           << ", \"search_steps\": " << e.search_steps
           << ", \"funnel\": {\"candidates\": " << e.funnel_candidates
           << ", \"lb_pruned\": " << e.funnel_lb_pruned
           << ", \"memo_hits\": " << e.funnel_memo_hits
           << ", \"ted0_hits\": " << e.funnel_ted0_hits
           << ", \"full_ged\": " << e.funnel_full_ged << "}";
        if (!e.error.empty()) {
            os << ", \"error\": ";
            write_json_string(os, e.error);
        }
        os << "}\n";
    }
}

} // namespace vnpu::hyp
