/**
 * @file
 * MIG-style virtual NPU baseline (paper §6.3.2).
 *
 * Mirrors commercial MIG/TPU-v6e slicing: the chip is split into a few
 * *fixed* rectangular partitions with predetermined sub-topologies.
 * A request either fits a partition (possibly wasting cores) or, when
 * it needs more cores than the largest free partition offers, multiple
 * virtual cores time-division-multiplex one physical core.
 */

#ifndef VNPU_HYP_MIG_H
#define VNPU_HYP_MIG_H

#include <map>
#include <memory>
#include <vector>

#include "core/controller.h"
#include "mem/buddy_allocator.h"
#include "noc/topology.h"
#include "sim/config.h"
#include "virt/virtual_npu.h"

namespace vnpu::hyp {

/** One fixed MIG partition (a mesh-aligned rectangle). */
struct MigPartition {
    int x = 0, y = 0, w = 0, h = 0;
    bool in_use = false;

    int num_cores() const { return w * h; }
};

/** Fixed-partition virtual NPU manager. */
class MigPartitioner {
  public:
    MigPartitioner(const SocConfig& cfg, const noc::MeshTopology& topo,
                   core::NpuController& ctrl);

    /**
     * Replace the partition layout. Default: the mesh split into two
     * vertical halves (e.g. 6x6 -> two 3x6 = 18-core partitions;
     * 8x6 -> two 4x6 = 24-core partitions).
     */
    void set_partitions(std::vector<MigPartition> parts);

    const std::vector<MigPartition>& partitions() const { return parts_; }

    /**
     * Create a virtual NPU with `num_cores` virtual cores.
     *  - Fits a free partition: uses its first num_cores cores in snake
     *    order (the remainder of the partition is wasted).
     *  - Exceeds every free partition: the largest free partition is
     *    used and virtual cores share physical cores via TDM.
     * @throws SimFatal when no partition is free.
     */
    virt::VirtualNpu& create(int num_cores, std::uint64_t memory_bytes);

    void destroy(VmId vm);
    virt::VirtualNpu* find(VmId vm);

    /** Physical cores wasted by the current allocations. */
    int wasted_cores() const;

    /** Accumulated meta-table configuration cost across create()s. */
    Cycles setup_cycles() const { return setup_cycles_; }

  private:
    /** Boustrophedon core order inside a partition rectangle. */
    std::vector<CoreId> snake_cores(const MigPartition& p) const;

    const SocConfig& cfg_;
    const noc::MeshTopology& topo_;
    core::NpuController& ctrl_;
    std::vector<MigPartition> parts_;
    mem::BuddyAllocator hbm_;
    VmId next_vm_ = 1;
    Cycles setup_cycles_ = 0;
    std::map<VmId, std::unique_ptr<virt::VirtualNpu>> vnpus_;
    std::map<VmId, int> vm_partition_;
    std::map<VmId, std::vector<Addr>> blocks_;
};

} // namespace vnpu::hyp

#endif // VNPU_HYP_MIG_H
