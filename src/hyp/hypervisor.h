/**
 * @file
 * The vNPU hypervisor (paper §5.2): virtual-NPU lifecycle, core
 * allocation through the topology mapper, HBM allocation through the
 * buddy system, and meta-table construction/deployment.
 */

#ifndef VNPU_HYP_HYPERVISOR_H
#define VNPU_HYP_HYPERVISOR_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/controller.h"
#include "hyp/admission_audit.h"
#include "hyp/topology_mapper.h"
#include "mem/buddy_allocator.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "virt/virtual_npu.h"
#include "virt/vrouter.h"

namespace vnpu::hyp {

/** What the user asks for when creating a VM's virtual NPU. */
struct VnpuSpec {
    /** Core count; ignored when `topo` is given. */
    int num_cores = 0;
    /** Requested virtual topology; default: snake mesh of num_cores. */
    std::optional<graph::Graph> topo;
    /** Global (HBM) memory to map for this VM. */
    std::uint64_t memory_bytes = 0;
    MappingStrategy strategy = MappingStrategy::kSimilarTopology;
    /** Confine NoC routes to the region (non-interference guarantee). */
    bool noc_isolation = true;
    /** Memory-bandwidth cap (bytes/cycle); 0 = proportional share by
     *  reachable memory interfaces (paper §6.3.4). */
    double bw_cap = 0.0;
    /** Hardware range-TLB entries per core (4 in the paper). */
    int range_tlb_entries = 4;
    /** Candidate budget forwarded to the topology mapper. */
    std::uint64_t max_candidates = 400;
    /** Step budget for the exact-isomorphism search (kExact only). */
    std::uint64_t exact_search_budget = graph::kDefaultIsoSearchBudget;
    /** Edit-cost customization for heterogeneous topologies. */
    graph::GedOptions ged;
};

/** Hypervisor bookkeeping statistics. */
struct HypervisorStats {
    Counter vnpus_created;
    Counter vnpus_destroyed;
    Counter allocation_failures;
    Counter setup_cycles;       ///< Accumulated meta-table config cost.
    Counter route_cache_hits;   ///< Confined routes reused from cache.
    Counter route_cache_misses; ///< Confined routes built from scratch.
    Counter route_cache_evictions; ///< Unreferenced tables dropped at cap.
    Counter mapper_search_steps;    ///< Exact-search placements attempted.
    Counter mapper_budget_exhausted; ///< Exact searches that gave up.
    // Similar/fragmented scoring-funnel stages (docs/sim_kernel.md):
    Counter mapper_funnel_candidates; ///< Candidates entering scoring.
    Counter mapper_lb_pruned;         ///< Dropped by the GED lower bound.
    Counter mapper_memo_hits;         ///< Scores reused from the memo.
    Counter mapper_memo_misses;
    Counter mapper_ted0_hits;         ///< VF2 zero-TED short-circuits.
    Counter mapper_full_ged;          ///< Full exact/approx GED runs.
};

/** Manages all virtual NPUs of one physical chip. */
class Hypervisor {
  public:
    Hypervisor(const SocConfig& cfg, const noc::MeshTopology& topo,
               core::NpuController& ctrl);
    ~Hypervisor();

    /**
     * Create a virtual NPU per `spec`.
     * @throws SimFatal when allocation fails (caller may retry with a
     *         different strategy or size).
     */
    virt::VirtualNpu& create(const VnpuSpec& spec);

    /** Tear down a VM: release cores, memory, and meta tables. */
    void destroy(VmId vm);

    virt::VirtualNpu* find(VmId vm);
    const virt::VirtualNpu* find(VmId vm) const;

    const CoreSet& free_cores() const { return free_; }
    int num_free_cores() const { return free_.count(); }
    /** Fraction of physical cores currently allocated. */
    double core_utilization() const;

    /** Setup cost (cycles) of the most recent create(). */
    Cycles last_setup_cost() const { return last_setup_cost_; }

    const HypervisorStats& stats() const { return stats_; }

    /** Telemetry sweep: lifecycle, route-cache and funnel counters. */
    void collect_stats(StatSet& out, const std::string& prefix) const;
    /** Sweep under the installed stats prefix (default "hyp."). */
    void collect_stats(StatSet& out) const
    {
        collect_stats(out, stats_prefix_);
    }

    /**
     * Prefix for this hypervisor's metrics-timeline columns. A fleet of
     * devices installs distinct prefixes ("fleet.dev3.hyp.") so N
     * hypervisors can ride one MetricsSampler without gauge collisions.
     */
    void set_stats_prefix(std::string prefix)
    {
        stats_prefix_ = std::move(prefix);
    }
    const std::string& stats_prefix() const { return stats_prefix_; }

    /** Ring of recent admission decisions (admitted and rejected). */
    const AdmissionAuditRing& audit_log() const { return audit_; }
    AdmissionAuditRing& audit_log() { return audit_; }
    /** Confined-route tables currently cached; bounded by a memory
     *  budget that scales the entry cap inversely with mesh size
     *  (kRouteCacheBudgetBytes in hypervisor.cpp). */
    std::size_t route_cache_size() const { return route_cache_.size(); }
    virt::InstVRouter& inst_vrouter() { return ivr_; }
    const TopologyMapper& mapper() const { return mapper_; }

    /** Dry-run the mapper (used by examples and benches). */
    MappingResult try_map(const MappingRequest& req) const
    {
        return mapper_.map(req, free_);
    }

  private:
    /** Detect a compact mesh2d routing-table encoding, if possible. */
    std::optional<virt::RoutingTable>
    try_compact_rt(VmId vm, const std::vector<CoreId>& assignment) const;

    /**
     * Confined routes for `region`, built on first use and cached by
     * region set thereafter: the MIG comparison sweeps allocate the
     * same regions over and over, and a 1024-node next-hop matrix is
     * ~2 MB of BFS work per build.
     */
    std::shared_ptr<const noc::RouteOverride>
    confined_routes_for(const CoreSet& region);

    mem::RangeTable build_range_table(VmId vm, std::uint64_t bytes);

    /** Record one admission decision: audit-ring push + trace span. */
    void record_admission(AdmissionAuditEntry e, Tick t0);

    /** Steps 3-8 of create(): provision the mapped region. Split out so
     *  create() can audit setup failures uniformly. */
    virt::VirtualNpu& create_provision(const VnpuSpec& spec,
                                       const graph::Graph& vtopo,
                                       const MappingResult& m, VmId vm,
                                       AdmissionAuditEntry& audit, Tick t0);

    const SocConfig& cfg_;
    const noc::MeshTopology& topo_;
    core::NpuController& ctrl_;
    TopologyMapper mapper_;
    virt::InstVRouter ivr_;
    mem::BuddyAllocator hbm_;
    CoreSet free_;
    /** Confined-route tables keyed by region (kept across destroys). */
    std::unordered_map<CoreSet, std::shared_ptr<const noc::RouteOverride>>
        route_cache_;
    VmId next_vm_ = 1;
    Cycles last_setup_cost_ = 0;
    std::string stats_prefix_ = "hyp.";
    HypervisorStats stats_;
    AdmissionAuditRing audit_;
    std::map<VmId, std::unique_ptr<virt::VirtualNpu>> vnpus_;
    std::map<VmId, std::vector<Addr>> blocks_; ///< buddy blocks per VM
};

} // namespace vnpu::hyp

#endif // VNPU_HYP_HYPERVISOR_H
