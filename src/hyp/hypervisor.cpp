#include "hyp/hypervisor.h"

#include <algorithm>
#include <iterator>

#include "check/checks.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace vnpu::hyp {

namespace {

/** Virtual address where a VM's mapped memory begins. */
constexpr Addr kVaBase = 0x10000;
/** Largest single buddy block mapped into one RTT entry. */
constexpr std::uint64_t kMaxBlock = 16ull << 20;
/** Smallest buddy block. */
constexpr std::uint64_t kMinBlock = 64ull << 10;

/**
 * Memory budget for cached confined-route tables. Each table is an
 * n*n next-hop matrix sized to the whole mesh (2 MB at 1024 nodes,
 * 2.6 KB at 36), so the entry cap must scale inversely with mesh
 * size; unreferenced entries are evicted past the cap, tables still
 * referenced by live vNPUs are never dropped.
 */
constexpr std::size_t kRouteCacheBudgetBytes = 16u << 20;

std::size_t
route_cache_cap(int num_nodes)
{
    std::size_t table_bytes = static_cast<std::size_t>(num_nodes) *
                              num_nodes * sizeof(std::int16_t);
    std::size_t cap = kRouteCacheBudgetBytes / std::max<std::size_t>(
                                                   table_bytes, 1);
    return std::min<std::size_t>(std::max<std::size_t>(cap, 4), 64);
}

std::uint64_t
round_up(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

#if VNPU_SANITIZE_ENABLED
/** Sweep the live-VM partition invariant after every create/destroy. */
void
audit_partition(
    const CoreSet& free_cores,
    const std::map<VmId, std::unique_ptr<virt::VirtualNpu>>& vms,
    int num_nodes)
{
    std::vector<CoreSet> regions;
    regions.reserve(vms.size());
    for (const auto& [id, v] : vms)
        regions.push_back(v->mask());
    check::verify_vm_partition(free_cores, regions, num_nodes);
}
#endif

} // namespace

Hypervisor::Hypervisor(const SocConfig& cfg, const noc::MeshTopology& topo,
                       core::NpuController& ctrl)
    : cfg_(cfg), topo_(topo), ctrl_(ctrl), mapper_(topo), ivr_(ctrl),
      hbm_(0, cfg.hbm_bytes, kMinBlock),
      free_(CoreSet::first_n(topo.num_nodes()))
{
    ctrl_.set_hyper_mode(true);
    // Contribute hyp.* to the metrics timeline when a sampler is
    // installed (the Machine only sweeps its own layers).
    if (auto* m = obs::metrics())
        m->add_collector(this,
                         [this](StatSet& out) { collect_stats(out); });
}

Hypervisor::~Hypervisor()
{
    if (auto* m = obs::metrics())
        m->remove_collector(this);
}

double
Hypervisor::core_utilization() const
{
    int total = topo_.num_nodes();
    return static_cast<double>(total - num_free_cores()) / total;
}

std::optional<virt::RoutingTable>
Hypervisor::try_compact_rt(VmId vm,
                           const std::vector<CoreId>& assignment) const
{
    const int n = static_cast<int>(assignment.size());
    // Try every factorization n = vw * vh and test whether the
    // assignment is row-major from an anchor with the mesh stride.
    for (int vw = 1; vw <= n; ++vw) {
        if (n % vw != 0)
            continue;
        int vh = n / vw;
        CoreId anchor = assignment[0];
        bool match = true;
        for (int v = 0; v < n && match; ++v) {
            int r = v / vw, c = v % vw;
            if (assignment[v] != anchor + r * topo_.width() + c)
                match = false;
        }
        if (!match)
            continue;
        // The rectangle must not wrap around a mesh row.
        int ax = topo_.x_of(anchor);
        int ay = topo_.y_of(anchor);
        if (ax + vw <= topo_.width() && ay + vh <= topo_.height())
            return virt::RoutingTable::mesh2d(vm, vw, vh, anchor,
                                              topo_.width());
    }
    return std::nullopt;
}

std::shared_ptr<const noc::RouteOverride>
Hypervisor::confined_routes_for(const CoreSet& region)
{
    VNPU_PROF("hyp.routes");
    auto it = route_cache_.find(region);
    if (it != route_cache_.end()) {
        ++stats_.route_cache_hits;
        return it->second;
    }
    ++stats_.route_cache_misses;
    const std::size_t cap = route_cache_cap(topo_.num_nodes());
    // Evict unreferenced tables only until back under the cap, so a
    // churn working set near the cap keeps most of its entries.
    // Victim order is the hash-map's: it picks *which* unreferenced
    // tables are dropped, never affects an admission decision or route
    // content (only the hit/miss counters on a later re-build).
    for (auto victim =
         route_cache_.begin(); // vnpu-lint: allow(unordered-iter)
         victim != route_cache_.end() && route_cache_.size() >= cap;) {
        if (victim->second.use_count() == 1) {
            victim = route_cache_.erase(victim);
            ++stats_.route_cache_evictions;
        } else {
            victim = std::next(victim);
        }
    }
    auto routes = std::make_shared<const noc::RouteOverride>(
        noc::RouteOverride::build_confined(topo_, region));
    // Every freshly built table is containment-verified before any VM
    // can route over it (cache hits re-serve already-verified tables).
    VNPU_SANITIZE_BLOCK(
        check::verify_confined_route(topo_, region, *routes);)
    route_cache_.emplace(region, routes);
    return routes;
}

mem::RangeTable
Hypervisor::build_range_table(VmId vm, std::uint64_t bytes)
{
    mem::RangeTable rtt;
    if (bytes == 0) {
        rtt.finalize();
        return rtt;
    }
    std::uint64_t remain = round_up(bytes, kMinBlock);
    Addr va = kVaBase;
    std::vector<Addr>& owned = blocks_[vm];
    // Scale the block size so large VMs stay within the 256-entry RTT
    // (the 8-bit last_v index bounds the table).
    std::uint64_t max_block = kMaxBlock;
    while (remain / max_block > 128)
        max_block <<= 1;
    while (remain > 0) {
        std::uint64_t chunk = std::min(remain, max_block);
        std::optional<Addr> pa = hbm_.alloc(chunk);
        if (!pa) {
            // Roll back partial allocation before failing.
            for (Addr a : owned)
                hbm_.free(a);
            blocks_.erase(vm);
            fatal("hypervisor: out of HBM while mapping ", bytes,
                  " bytes for vm ", vm);
        }
        owned.push_back(*pa);
        std::uint64_t got = hbm_.block_size(*pa);
        rtt.add(va, *pa, got, mem::kPermRead | mem::kPermWrite);
        va += got;
        remain -= std::min(remain, got);
    }
    rtt.finalize();
    return rtt;
}

virt::VirtualNpu&
Hypervisor::create(const VnpuSpec& spec)
{
    VNPU_PROF("hyp.create");
    const Tick t0 = obs::sim_now();

    // 1. Resolve the requested virtual topology.
    graph::Graph vtopo =
        spec.topo ? *spec.topo : TopologyMapper::snake_topology(
                                     spec.num_cores > 0 ? spec.num_cores : 1);
    if (spec.topo && spec.num_cores > 0 &&
        spec.topo->num_nodes() != spec.num_cores) {
        fatal("spec.num_cores (", spec.num_cores,
              ") contradicts spec.topo size (", spec.topo->num_nodes(), ")");
    }

    AdmissionAuditEntry audit;
    audit.sim_time = t0;
    audit.requested_cores = vtopo.num_nodes();
    audit.strategy = spec.strategy;

    // 2. Allocate physical cores via the chosen strategy.
    MappingRequest mreq;
    mreq.vtopo = vtopo;
    mreq.strategy = spec.strategy;
    mreq.require_connected = spec.noc_isolation;
    mreq.max_candidates = spec.max_candidates;
    mreq.exact_search_budget = spec.exact_search_budget;
    mreq.ged = spec.ged;
    MappingResult m = mapper_.map(mreq, free_);
    stats_.mapper_search_steps += m.search_steps;
    if (m.budget_exhausted)
        ++stats_.mapper_budget_exhausted;
    stats_.mapper_funnel_candidates += m.funnel_candidates;
    stats_.mapper_lb_pruned += m.funnel_lb_pruned;
    stats_.mapper_memo_hits += m.funnel_memo_hits;
    stats_.mapper_memo_misses += m.funnel_memo_misses;
    stats_.mapper_ted0_hits += m.funnel_ted0_hits;
    stats_.mapper_full_ged += m.funnel_full_ged;
    audit.search_steps = m.search_steps;
    audit.funnel_candidates = m.funnel_candidates;
    audit.funnel_lb_pruned = m.funnel_lb_pruned;
    audit.funnel_memo_hits = m.funnel_memo_hits;
    audit.funnel_ted0_hits = m.funnel_ted0_hits;
    audit.funnel_full_ged = m.funnel_full_ged;
    if (!m.ok) {
        ++stats_.allocation_failures;
        audit.error = m.error;
        record_admission(std::move(audit), t0);
        fatal("vNPU allocation failed (", to_string(spec.strategy),
              ", ", vtopo.num_nodes(), " cores): ", m.error);
    }
    audit.ted = m.ted;

    VmId vm = next_vm_++;
    audit.vm = vm;

    // Setup failures past this point (disconnected-region isolation,
    // HBM exhaustion, meta-zone overflow) must land in the audit log
    // too, so the whole provisioning path is wrapped.
    try {
        return create_provision(spec, vtopo, m, vm, audit, t0);
    } catch (const std::exception& e) {
        audit.error = e.what();
        record_admission(std::move(audit), t0);
        throw;
    }
}

virt::VirtualNpu&
Hypervisor::create_provision(const VnpuSpec& spec,
                             const graph::Graph& vtopo,
                             const MappingResult& m, VmId vm,
                             AdmissionAuditEntry& audit, Tick t0)
{
    // 3. Routing table: compact mesh2d encoding when the region is a
    //    row-major rectangle, standard entries otherwise.
    std::optional<virt::RoutingTable> rt = try_compact_rt(vm, m.assignment);
    if (!rt)
        rt = virt::RoutingTable::standard(vm, m.assignment);

    auto vnpu = std::make_unique<virt::VirtualNpu>(vm, m.assignment, vtopo,
                                                   *rt);
    vnpu->set_mapping_ted(m.ted);

    // 4. NoC isolation: predefine confining directions when the region
    //    is connected and isolation was requested.
    CoreSet mask = vnpu->mask();
    if (spec.noc_isolation) {
        if (!topo_.to_graph().is_connected_subset(mask))
            fatal("isolation requested but region is disconnected");
        vnpu->set_confined_routes(confined_routes_for(mask));
    }

    // 5. Memory: buddy blocks -> RTT entries.
    vnpu->set_range_table(build_range_table(vm, spec.memory_bytes));

    // 6. Bandwidth share proportional to reachable memory interfaces.
    int ifaces = topo_.interfaces_of(mask, cfg_.hbm_channels);
    vnpu->set_interfaces(ifaces);
    double cap = spec.bw_cap > 0.0
                     ? spec.bw_cap
                     : cfg_.hbm_bytes_per_cycle * ifaces / cfg_.hbm_channels;
    vnpu->set_bandwidth_cap(cap);

    // 7. Deploy meta tables (hyper-mode controller) and account cost.
    Cycles cost = ctrl_.configure_routing_table(vm, vnpu->num_cores());
    cost += static_cast<Cycles>(vnpu->range_table().size()) *
            cfg_.rt_config_write_cycles;
    if (vnpu->confined_routes()) {
        cost += static_cast<Cycles>(vnpu->confined_routes()->size()) *
                cfg_.rt_config_write_cycles / 4;
    }
    std::uint64_t meta_bytes =
        vnpu->routing_table().storage_bits() / 8 +
        vnpu->range_table().footprint_bytes() +
        (vnpu->confined_routes() ? vnpu->confined_routes()->size() * 2 : 0);
    if (meta_bytes > cfg_.meta_zone_bytes) {
        fatal("meta tables (", meta_bytes, " B) exceed the per-core ",
              cfg_.meta_zone_bytes, "-byte meta-zone");
    }
    ctrl_.deploy_meta_bytes(vm, meta_bytes);
    ivr_.install(&vnpu->routing_table());

    last_setup_cost_ = cost;
    stats_.setup_cycles += cost;
    ++stats_.vnpus_created;

    // 8. Commit the core allocation.
    free_ = free_.andnot(mask);
    virt::VirtualNpu& ref = *vnpu;
    vnpus_[vm] = std::move(vnpu);
    VNPU_SANITIZE_BLOCK(
        audit_partition(free_, vnpus_, topo_.num_nodes());)

    audit.admitted = true;
    audit.setup_cycles = cost;
    record_admission(std::move(audit), t0);
    return ref;
}

void
Hypervisor::record_admission(AdmissionAuditEntry e, Tick t0)
{
    // The span's duration is the modeled meta-table deployment cost
    // (the sim clock itself does not advance inside create()).
    VNPU_TRACE(emit_complete(
        "admission", "hyp", t0, e.setup_cycles, obs::kTrackHyp,
        {obs::arg("vm", e.vm), obs::arg("cores", e.requested_cores),
         obs::arg("strategy", to_string(e.strategy)),
         obs::arg("ok", e.admitted ? 1 : 0), obs::arg("ted", e.ted),
         obs::arg("search_steps", e.search_steps),
         obs::arg("candidates", e.funnel_candidates),
         obs::arg("lb_pruned", e.funnel_lb_pruned),
         obs::arg("memo_hits", e.funnel_memo_hits),
         obs::arg("ted0_hits", e.funnel_ted0_hits),
         obs::arg("full_ged", e.funnel_full_ged)}));
    audit_.push(std::move(e));
}

void
Hypervisor::collect_stats(StatSet& out, const std::string& prefix) const
{
    out.add(prefix + "vnpus_created",
            static_cast<double>(stats_.vnpus_created.value()));
    out.add(prefix + "vnpus_destroyed",
            static_cast<double>(stats_.vnpus_destroyed.value()));
    out.add(prefix + "allocation_failures",
            static_cast<double>(stats_.allocation_failures.value()));
    out.add(prefix + "setup_cycles",
            static_cast<double>(stats_.setup_cycles.value()));
    out.add(prefix + "route_cache.hits",
            static_cast<double>(stats_.route_cache_hits.value()));
    out.add(prefix + "route_cache.misses",
            static_cast<double>(stats_.route_cache_misses.value()));
    out.add(prefix + "route_cache.evictions",
            static_cast<double>(stats_.route_cache_evictions.value()));
    out.add(prefix + "mapper.search_steps",
            static_cast<double>(stats_.mapper_search_steps.value()));
    out.add(prefix + "mapper.budget_exhausted",
            static_cast<double>(stats_.mapper_budget_exhausted.value()));
    out.add(prefix + "funnel.candidates",
            static_cast<double>(stats_.mapper_funnel_candidates.value()));
    out.add(prefix + "funnel.lb_pruned",
            static_cast<double>(stats_.mapper_lb_pruned.value()));
    out.add(prefix + "funnel.memo_hits",
            static_cast<double>(stats_.mapper_memo_hits.value()));
    out.add(prefix + "funnel.memo_misses",
            static_cast<double>(stats_.mapper_memo_misses.value()));
    out.add(prefix + "funnel.ted0_hits",
            static_cast<double>(stats_.mapper_ted0_hits.value()));
    out.add(prefix + "funnel.full_ged",
            static_cast<double>(stats_.mapper_full_ged.value()));
    out.set(prefix + "route_cache.size",
            static_cast<double>(route_cache_.size()));
    out.set(prefix + "free_cores", num_free_cores());
    out.set(prefix + "core_utilization", core_utilization());
    out.set(prefix + "audit.retained", static_cast<double>(audit_.size()));
    out.set(prefix + "audit.total",
            static_cast<double>(audit_.total_pushed()));
}

void
Hypervisor::destroy(VmId vm)
{
    VNPU_PROF("hyp.destroy");
    auto it = vnpus_.find(vm);
    if (it == vnpus_.end())
        fatal("destroy of unknown vm ", vm);
    free_ |= it->second->mask();
    ivr_.remove(vm);
    ctrl_.teardown_tables(vm);
    auto bit = blocks_.find(vm);
    if (bit != blocks_.end()) {
        for (Addr a : bit->second)
            hbm_.free(a);
        blocks_.erase(bit);
    }
    vnpus_.erase(it);
    ++stats_.vnpus_destroyed;
    VNPU_SANITIZE_BLOCK(
        audit_partition(free_, vnpus_, topo_.num_nodes());)
    VNPU_TRACE(emit_instant("destroy", "hyp", obs::sim_now(),
                            obs::kTrackHyp, {obs::arg("vm", vm)}));
}

virt::VirtualNpu*
Hypervisor::find(VmId vm)
{
    auto it = vnpus_.find(vm);
    return it == vnpus_.end() ? nullptr : it->second.get();
}

const virt::VirtualNpu*
Hypervisor::find(VmId vm) const
{
    auto it = vnpus_.find(vm);
    return it == vnpus_.end() ? nullptr : it->second.get();
}

} // namespace vnpu::hyp
