/**
 * @file
 * Bounded in-memory admission audit log.
 *
 * Every `Hypervisor::create()` — admitted or rejected — pushes one
 * entry describing the request, the mapper's funnel effort, and the
 * outcome. The ring keeps the most recent `capacity()` entries so a
 * long-running sweep cannot grow memory without bound, and dumps as
 * JSON Lines for offline analysis (tools/trace_summary.py reads it).
 */

#ifndef VNPU_HYP_ADMISSION_AUDIT_H
#define VNPU_HYP_ADMISSION_AUDIT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hyp/topology_mapper.h"
#include "sim/types.h"

namespace vnpu::hyp {

/** One admission decision, admitted or not. */
struct AdmissionAuditEntry {
    std::uint64_t seq = 0;      ///< Monotonic request number.
    Tick sim_time = 0;          ///< Simulated tick of the decision.
    int requested_cores = 0;
    MappingStrategy strategy = MappingStrategy::kSimilarTopology;
    bool admitted = false;
    VmId vm = kNoVm;            ///< Assigned VM id (admitted only).
    double ted = 0.0;           ///< Realized topology edit distance.
    Cycles setup_cycles = 0;    ///< Meta-table deployment cost.
    std::uint64_t search_steps = 0;
    std::uint64_t funnel_candidates = 0;
    std::uint64_t funnel_lb_pruned = 0;
    std::uint64_t funnel_memo_hits = 0;
    std::uint64_t funnel_ted0_hits = 0;
    std::uint64_t funnel_full_ged = 0;
    std::string error;          ///< Failure reason (rejected only).
};

/**
 * Fixed-capacity ring of the most recent admission decisions.
 * Entries are addressed oldest-first via `at()`; `total_pushed()`
 * tells how many decisions the ring has absorbed over its lifetime.
 */
class AdmissionAuditRing {
  public:
    static constexpr std::size_t kDefaultCapacity = 256;

    explicit AdmissionAuditRing(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /** Append a decision; assigns and returns its sequence number. */
    std::uint64_t
    push(AdmissionAuditEntry e)
    {
        e.seq = total_;
        if (ring_.size() < capacity_) {
            ring_.push_back(std::move(e));
        } else {
            // Full: overwrite the oldest entry and advance the head.
            ring_[head_] = std::move(e);
            head_ = (head_ + 1) % capacity_;
        }
        return total_++;
    }

    /** Retained entry count (<= capacity). */
    std::size_t size() const { return ring_.size(); }
    std::size_t capacity() const { return capacity_; }
    /** Decisions ever pushed, including overwritten ones. */
    std::uint64_t total_pushed() const { return total_; }

    /** i-th retained entry, oldest first (0 <= i < size()). */
    const AdmissionAuditEntry&
    at(std::size_t i) const
    {
        return ring_[(head_ + i) % ring_.size()];
    }

    void
    clear()
    {
        ring_.clear();
        head_ = 0;
        total_ = 0;
    }

    /**
     * Resize the ring; existing entries are re-packed oldest-first.
     * @pre capacity > 0
     */
    void set_capacity(std::size_t capacity);

    /** Write retained entries as JSON Lines, oldest first. */
    void dump_jsonl(std::ostream& os) const;

  private:
    std::size_t capacity_;
    std::vector<AdmissionAuditEntry> ring_;
    /** Index of the oldest retained entry (0 until the ring wraps). */
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace vnpu::hyp

#endif // VNPU_HYP_ADMISSION_AUDIT_H
