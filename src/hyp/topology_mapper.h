/**
 * @file
 * Topology mapping strategies for virtual-NPU core allocation
 * (paper §4.3, Algorithm 1).
 *
 * Strategies:
 *  - kExact: allocate only a region isomorphic to the request (TED 0);
 *    fail otherwise — this is the "topology lock-in" behaviour. The
 *    search is complete at any mesh scale: sliding-rectangle fast path,
 *    then a rectangle-decomposed polyomino slide of one grid embedding
 *    (8 symmetries) over the free CoreSet, then an anchored VF2-style
 *    induced-isomorphism search, budgeted by `exact_search_budget`
 *    (see docs/sim_kernel.md, "Exact mapping").
 *  - kStraightforward: take the lowest-id free cores (zig-zag); cheap
 *    but ignores adjacency.
 *  - kSimilarTopology: enumerate connected candidate regions (pruned,
 *    deduplicated by topology, early-exit on an exact match), score by
 *    minimum topology edit distance, return the best.
 *  - kFragmented: like similar-topology, but when no connected region
 *    of the required size exists, fall back to the closest-packed
 *    disconnected core set (trades isolation for utilization).
 */

#ifndef VNPU_HYP_TOPOLOGY_MAPPER_H
#define VNPU_HYP_TOPOLOGY_MAPPER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/enumerate.h"
#include "graph/ged.h"
#include "graph/graph.h"
#include "noc/topology.h"
#include "sim/types.h"

namespace vnpu::hyp {

/** Core-allocation strategy. */
enum class MappingStrategy : std::uint8_t {
    kExact,
    kStraightforward,
    kSimilarTopology,
    kFragmented,
};

const char* to_string(MappingStrategy s);

/** One allocation request. */
struct MappingRequest {
    /** Requested virtual topology (labels optional). */
    graph::Graph vtopo;
    MappingStrategy strategy = MappingStrategy::kSimilarTopology;
    /** R-3: reject disconnected regions (ignored by kFragmented). */
    bool require_connected = true;
    /** Candidate-set budget before sampling kicks in (similar/frag). */
    std::uint64_t max_candidates = 400;
    /**
     * Backtracking-step budget for the exact-isomorphism search (kExact
     * only). A miss on a 1024-core mesh terminates within this bound;
     * `MappingResult::budget_exhausted` reports an inconclusive miss.
     */
    std::uint64_t exact_search_budget = graph::kDefaultIsoSearchBudget;
    /** Edit-cost customization (heterogeneous nodes/edges). */
    graph::GedOptions ged;
    /**
     * Enable the staged candidate-scoring funnel for the similar /
     * fragmented strategies (TED-0 early exit, admissible lower-bound
     * pruning, score memoization, pooled scoring). Decisions are
     * bit-identical with the funnel on or off (see docs/sim_kernel.md,
     * "Admission funnel"); `false` exists for differential testing.
     * Custom edit-cost callbacks fall back to the unfunneled scorer
     * automatically (they can be neither bounded nor memo-keyed).
     */
    bool funnel = true;
};

/** Allocation outcome. */
struct MappingResult {
    bool ok = false;
    /** assignment[v] = physical core hosting virtual core v. */
    std::vector<CoreId> assignment;
    /** Topology edit distance between request and realized region. */
    double ted = 0.0;
    std::uint64_t candidates_considered = 0;
    /** Exact-search effort: vertex placements attempted (kExact only). */
    std::uint64_t search_steps = 0;
    /** True when the exact search gave up on its step budget, so a
     *  failure does not prove that no isomorphic region exists. */
    bool budget_exhausted = false;
    std::string error;

    // ---- Similar/fragmented funnel stage counters --------------------
    std::uint64_t funnel_candidates = 0; ///< Candidates entering scoring.
    std::uint64_t funnel_lb_pruned = 0;  ///< Discarded by lower bound.
    std::uint64_t funnel_memo_hits = 0;  ///< Scores reused from the memo.
    std::uint64_t funnel_memo_misses = 0;
    std::uint64_t funnel_ted0_hits = 0;  ///< Zero-TED short-circuits.
    std::uint64_t funnel_full_ged = 0;   ///< Full exact/approx GED runs.
};

/** Maps requested virtual topologies onto free physical cores. */
class TopologyMapper {
  public:
    explicit TopologyMapper(const noc::MeshTopology& topo);

    /** Run the requested strategy against the free-core set. */
    MappingResult map(const MappingRequest& req,
                      const CoreSet& free_cores) const;

    /**
     * Build a near-square mesh-ish request topology for `n` cores with
     * a boustrophedon (snake) dataflow order: node i connects to i+1,
     * plus mesh column links. This is the default virtual topology for
     * pipeline workloads.
     */
    static graph::Graph snake_topology(int n);

    /**
     * Total NoC hop distance realized by a virtual-to-physical
     * assignment, summed over the requested topology's edges. The
     * similar-topology strategy minimizes TED first and this second:
     * an unmatched virtual edge costs whatever hop distance its
     * endpoints land at, so the refinement keeps them close.
     */
    std::uint64_t wirelength(const graph::Graph& vtopo,
                             const std::vector<CoreId>& assignment) const;

  private:
    MappingResult map_exact(const MappingRequest& req,
                            const CoreSet& free) const;
    MappingResult map_straightforward(const MappingRequest& req,
                                      const CoreSet& free) const;
    MappingResult map_similar(const MappingRequest& req, const CoreSet& free,
                              bool allow_fragmented) const;

    /** 2-opt swaps of the assignment minimizing wirelength. */
    void refine_wirelength(const graph::Graph& vtopo,
                           std::vector<CoreId>& assignment) const;

    // ---- Candidate-score memo (funnel stage 3) -----------------------
    // Keyed by (order-dependent request structure hash, candidate
    // region); fragmentation churn re-offers the same regions, so prior
    // GED results are reused verbatim. See docs/sim_kernel.md.
    struct MemoKey {
        std::uint64_t req_hash;
        CoreSet region;
        bool
        operator==(const MemoKey& o) const
        {
            return req_hash == o.req_hash && region == o.region;
        }
    };
    struct MemoKeyHash {
        std::size_t
        operator()(const MemoKey& k) const
        {
            return k.region.hash() ^
                   (k.req_hash * 0x9e3779b97f4a7c15ULL);
        }
    };
    struct MemoEntry {
        double cost; ///< infinity when no bijection beat `bound_used`.
        std::vector<int> mapping;
        /** Exact-search prune bound in force when `cost` was computed:
         *  infinity marks a bound-independent (exact) result; a finite
         *  value only proves "true minimum >= bound_used". */
        double bound_used;
    };
    /** Size-bounded (flushed when full); mutable: map() is logically
     *  const and the memo is a pure cache. */
    mutable std::unordered_map<MemoKey, MemoEntry, MemoKeyHash> memo_;

    const noc::MeshTopology& topo_;
};

} // namespace vnpu::hyp

#endif // VNPU_HYP_TOPOLOGY_MAPPER_H
