#include "sim/log.h"

#include <atomic>
#include <iostream>

#include "obs/trace.h"

namespace vnpu {

namespace {

/**
 * Atomic: the level is read under TaskPool workers (mapper scoring may
 * warn) while tests/harnesses set it from the main thread.
 */
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char*
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kError: return "ERROR";
      case LogLevel::kWarn:  return "warn";
      case LogLevel::kInfo:  return "info";
      case LogLevel::kDebug: return "debug";
    }
    return "?";
}

} // namespace

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
log_line(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) > static_cast<int>(log_level()))
        return;
    // Tag with the simulated time of the registered clock (0 when no
    // machine is live) so interleaved component logs line up with the
    // trace timeline.
    std::cerr << "[vnpu:" << level_tag(level) << " @" << obs::sim_now()
              << "] " << msg << '\n';
}

} // namespace vnpu
