#include "sim/log.h"

#include <iostream>

namespace vnpu {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char*
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kError: return "ERROR";
      case LogLevel::kWarn:  return "warn";
      case LogLevel::kInfo:  return "info";
      case LogLevel::kDebug: return "debug";
    }
    return "?";
}

} // namespace

LogLevel
log_level()
{
    return g_level;
}

void
set_log_level(LogLevel level)
{
    g_level = level;
}

void
log_line(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    std::cerr << "[vnpu:" << level_tag(level) << "] " << msg << '\n';
}

} // namespace vnpu
