/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * All components of the NPU model (cores, NoC, DMA, controller) share one
 * EventQueue. Events scheduled at the same tick execute in FIFO order of
 * scheduling, which makes every simulation run bit-reproducible.
 *
 * Implementation: a calendar (timer-wheel) queue instead of a binary
 * heap. The wheel covers a window of `kWheelSize` consecutive ticks with
 * one FIFO bucket per tick, so scheduling a near-future event — the
 * overwhelmingly common case in this cycle-approximate model — is an
 * O(1) append with no comparisons. Events beyond the window land in an
 * overflow min-heap keyed by (tick, sequence) and are drained into the
 * wheel when the window advances, preserving global FIFO-within-tick
 * order (see docs/sim_kernel.md for the invariants and the proof
 * sketch). Callbacks are `EventCallback`s with inline capture storage,
 * so steady-state scheduling performs no heap allocation at all.
 */

#ifndef VNPU_SIM_EVENT_QUEUE_H
#define VNPU_SIM_EVENT_QUEUE_H

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "check/check.h"
#include "sim/callback.h"
#include "sim/log.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu {

/** A deterministic bucketed event queue, FIFO within each tick. */
class EventQueue {
  public:
    using Callback = EventCallback;

    EventQueue();

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return pending_; }

    /** Events executed since construction (survives clear()). */
    std::uint64_t executed() const { return executed_; }

    /** Ticks that executed at least one event (batch granularity). */
    std::uint64_t busy_ticks() const { return busy_ticks_; }

    /** Telemetry sweep: executed/pending/busy-tick gauges. */
    void collect_stats(StatSet& out, const std::string& prefix) const;

    /**
     * Schedule `cb` to run at absolute tick `when`.
     * @pre when >= now()
     */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            panic("scheduling event in the past: ", when, " < ", now_);
        ++pending_;
        // Sanitize builds stamp EVERY event with a scheduling sequence
        // number (not just overflow entries) so execution can audit
        // FIFO-within-tick continuously. Overflow heap order is
        // unchanged: seqs stay monotonic in scheduling order.
        VNPU_SANITIZE_BLOCK(const std::uint64_t san_seq = next_seq_;)
        if (when == now_) {
            // Same-tick events join the batch currently being executed
            // (or the one the next run()/step() will execute first).
            batch_.push_back(std::move(cb));
            VNPU_SANITIZE_BLOCK({
                ++next_seq_;
                san_batch_seq_.push_back(san_seq);
            })
            return;
        }
        if (when - window_start_ < kWheelSize) {
            const std::size_t slot = when & kWheelMask;
            wheel_[slot].push_back(std::move(cb));
            occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            VNPU_SANITIZE_BLOCK({
                ++next_seq_;
                san_wheel_seq_[slot].push_back(san_seq);
            })
            return;
        }
        overflow_.push(OverflowEntry{when, next_seq_++, std::move(cb)});
    }

    /** Schedule `cb` to run `delay` cycles from now. */
    void schedule_in(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue drains or `limit` is exceeded.
     * @return the final simulated time.
     */
    Tick run(Tick limit = kTickMax);

    /** Execute exactly one event (if any); returns false when empty. */
    bool step();

    /** Drop all pending events (used between independent experiments). */
    void clear();

  private:
    /** Wheel window width in ticks (one bucket per tick). */
    static constexpr std::size_t kWheelBits = 12;
    static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
    static constexpr std::size_t kWheelMask = kWheelSize - 1;

    /** Largest capacity (entries) a drained bucket keeps for reuse. */
    static constexpr std::size_t kBucketKeepCapacity = 16;
    /** Executed-prefix length that triggers batch compaction. */
    static constexpr std::size_t kBatchCompactThreshold = 1024;

    struct OverflowEntry {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct OverflowLater {
        bool
        operator()(const OverflowEntry& a, const OverflowEntry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Earliest pending tick (> now_, batch excluded), or kTickMax. */
    Tick next_event_tick() const;

    /** Commit to executing tick `when`: advance the clock/window and
     *  move that tick's bucket into the execution batch. */
    void load_batch(Tick when);

    /** Advance the wheel window so that `when` falls inside it, pulling
     *  newly in-window overflow events into their buckets. */
    void advance_window(Tick when);

    /**
     * Drop the executed batch prefix once it dominates, so same-tick
     * cascades keep the batch proportional to the live tail
     * (amortized O(1) per event).
     */
    void
    maybe_compact_batch()
    {
        if (batch_pos_ >= kBatchCompactThreshold &&
            batch_pos_ * 2 >= batch_.size()) {
            batch_.erase(batch_.begin(),
                         batch_.begin() +
                             static_cast<std::ptrdiff_t>(batch_pos_));
            VNPU_SANITIZE_BLOCK(san_batch_seq_.erase(
                san_batch_seq_.begin(),
                san_batch_seq_.begin() +
                    static_cast<std::ptrdiff_t>(batch_pos_));)
            batch_pos_ = 0;
        }
    }

    /** Current-tick events, executed by index so callbacks may append. */
    std::vector<Callback> batch_;
    std::size_t batch_pos_ = 0;

    /** One FIFO bucket per tick in [window_start_, window_start_+N). */
    std::vector<std::vector<Callback>> wheel_;
    /** Bitmap of non-empty wheel buckets (1 bit per slot). */
    std::array<std::uint64_t, kWheelSize / 64> occupied_{};

    /** First tick covered by the wheel (aligned to kWheelSize). */
    Tick window_start_ = 0;

    std::priority_queue<OverflowEntry, std::vector<OverflowEntry>,
                        OverflowLater>
        overflow_;

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t busy_ticks_ = 0;

#if VNPU_SANITIZE_ENABLED
    /** Per-event scheduling seqs mirroring batch_ / wheel_ / overflow_
     *  through every load/compact/clear, so run() and step() can audit
     *  that execution order is exactly scheduling order within a tick. */
    std::vector<std::uint64_t> san_batch_seq_;
    std::vector<std::vector<std::uint64_t>> san_wheel_seq_;
    std::uint64_t san_last_seq_ = 0;   ///< Seq of the last executed event.
    bool san_tick_started_ = false;    ///< Any event executed at now_?
#endif
};

} // namespace vnpu

#endif // VNPU_SIM_EVENT_QUEUE_H
