/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * All components of the NPU model (cores, NoC, DMA, controller) share one
 * EventQueue. Events scheduled at the same tick execute in FIFO order of
 * scheduling, which makes every simulation run bit-reproducible.
 */

#ifndef VNPU_SIM_EVENT_QUEUE_H
#define VNPU_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/log.h"
#include "sim/types.h"

namespace vnpu {

/** A deterministic min-heap event queue keyed by (tick, insertion seq). */
class EventQueue {
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule `cb` to run at absolute tick `when`.
     * @pre when >= now()
     */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            panic("scheduling event in the past: ", when, " < ", now_);
        heap_.push(Entry{when, next_seq_++, std::move(cb)});
    }

    /** Schedule `cb` to run `delay` cycles from now. */
    void schedule_in(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue drains or `limit` is exceeded.
     * @return the final simulated time.
     */
    Tick run(Tick limit = kTickMax);

    /** Execute exactly one event (if any); returns false when empty. */
    bool step();

    /** Drop all pending events (used between independent experiments). */
    void clear();

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
};

} // namespace vnpu

#endif // VNPU_SIM_EVENT_QUEUE_H
