/**
 * @file
 * Logging and error-reporting utilities.
 *
 * Follows the gem5 convention: `panic` is for internal invariant
 * violations (simulator bugs), `fatal` is for user/configuration errors.
 * Both throw exceptions (this is a library, not a process), so callers
 * and tests can observe them.
 */

#ifndef VNPU_SIM_LOG_H
#define VNPU_SIM_LOG_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace vnpu {

/** Thrown by panic(): an internal simulator invariant was violated. */
class SimPanic : public std::logic_error {
  public:
    explicit SimPanic(const std::string& what) : std::logic_error(what) {}
};

/** Thrown by fatal(): the user supplied an invalid configuration. */
class SimFatal : public std::runtime_error {
  public:
    explicit SimFatal(const std::string& what) : std::runtime_error(what) {}
};

/** Log verbosity levels, most severe first. */
enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/** Global log level; messages above this level are suppressed. */
LogLevel log_level();

/** Set the global log level (e.g. LogLevel::kDebug in tests). */
void set_log_level(LogLevel level);

/** Emit one log line to stderr if `level` passes the filter. */
void log_line(LogLevel level, const std::string& msg);

namespace detail {

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug; never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    throw SimPanic(detail::concat("panic: ", std::forward<Args>(args)...));
}

/** Report an unrecoverable user/configuration error; never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    throw SimFatal(detail::concat("fatal: ", std::forward<Args>(args)...));
}

/** Warn about suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(Args&&... args)
{
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args&&... args)
{
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

/** Assert an internal invariant; compiles to a check in all build types. */
#define VNPU_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::vnpu::panic("assertion failed: ", #cond, " @ ", __FILE__,     \
                          ":", __LINE__);                                   \
        }                                                                   \
    } while (0)

} // namespace vnpu

#endif // VNPU_SIM_LOG_H
