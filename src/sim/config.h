/**
 * @file
 * SoC configuration (paper Table 2) plus every timing constant of the
 * cycle-approximate model, centralized so calibration is auditable.
 */

#ifndef VNPU_SIM_CONFIG_H
#define VNPU_SIM_CONFIG_H

#include <cstdint>

#include "sim/types.h"

namespace vnpu {

/**
 * Full configuration of one simulated inter-core connected NPU chip.
 *
 * The two factory presets mirror Table 2 of the paper: `Fpga()` is the
 * Chipyard/FireSim prototype (8 Gemmini-like tiles) used for the
 * micro-tests, `Sim()` is the DCRA-scale chip (36 tiles, 1080 MB SRAM)
 * used for the end-to-end ML evaluation. `Sim48()` is the 48-core
 * variant used in the right half of Figure 16.
 */
struct SocConfig {
    // ---- Topology ---------------------------------------------------
    int mesh_x = 4;              ///< Mesh width (cores per row).
    int mesh_y = 2;              ///< Mesh height.

    // ---- Per-core compute -------------------------------------------
    int sa_dim = 16;             ///< Systolic array dimension (DxD MACs).
    int vector_lanes = 16;       ///< Vector unit lanes (elements/cycle).

    // ---- Memory hierarchy -------------------------------------------
    std::uint64_t spad_bytes_per_core = 512 * 1024;  ///< Scratchpad size.
    std::uint64_t meta_zone_bytes = 16 * 1024;       ///< Meta-table region.
    std::uint64_t hbm_bytes = 8ull << 30;            ///< Global memory.
    int hbm_channels = 4;                 ///< Independent HBM channels.
    /// Aggregate HBM bandwidth in bytes per NPU cycle (all channels).
    double hbm_bytes_per_cycle = 16.0;
    std::uint64_t dma_burst_bytes = 64;   ///< DMA burst granularity.
    std::uint64_t page_bytes = 4096;      ///< Page size for IOTLB baseline.

    // ---- NoC ----------------------------------------------------------
    double link_bytes_per_cycle = 16.0;   ///< Per-link bandwidth.
    Cycles router_delay = 2;              ///< Per-hop router traversal.
    std::uint64_t packet_bytes = 2048;    ///< Routing packet payload.
    Cycles noc_handshake_cycles = 20;     ///< Send/recv handshake setup.
    /// Credit window per dataflow edge (2 = double-buffered receive
    /// side). Bounds how far a producer may run ahead of its consumer,
    /// modelling the finite activation buffers in scratchpad SRAM.
    int edge_credits = 2;
    /// Relay store-and-forward: multi-hop transfers are re-sent by each
    /// relay node's send/receive engine (paper Figure 5: "send addr,
    /// size, step, direction" chains through relay nodes), so every
    /// extra hop costs a full message serialization. Disable for an
    /// idealized packet-pipelined wormhole NoC.
    bool noc_relay_store_forward = true;
    std::uint64_t credit_bytes = 32;      ///< Credit return message size.

    // ---- Virtualization timing ----------------------------------------
    /// Routing-table lookup from controller SRAM (cold).
    Cycles rt_lookup_cycles = 24;
    /// Cached (same destination as previous instruction) translation.
    Cycles rt_cached_cycles = 1;
    /// Per-core availability query during routing-table configuration.
    Cycles rt_config_query_cycles = 12;
    /// Writing one routing-table entry during configuration.
    Cycles rt_config_write_cycles = 18;
    /// Fetching one RTT entry from the meta-zone on a range-TLB miss.
    Cycles rtt_fetch_cycles = 8;
    /// Page-table walk latency for the IOTLB baseline.
    Cycles page_walk_cycles = 140;
    /// Walk latency hidden per IOTLB entry: larger TLBs allow deeper
    /// translation pipelining, overlapping walks with in-flight bursts.
    double walk_overlap_per_entry = 1.0 / 64.0;
    /// Upper bound on the hidden fraction of a walk.
    double walk_overlap_max = 0.75;
    /// TDM context switch (pipeline drain + issue restart; contexts stay
    /// scratchpad-resident, so no SPAD swap traffic).
    Cycles context_switch_cycles = 128;

    // ---- Instruction dispatch -----------------------------------------
    Cycles ibus_dispatch_cycles = 12;     ///< Fixed instruction-bus latency.
    Cycles inoc_hop_cycles = 3;           ///< Instruction-NoC per-hop cost.
    Cycles inoc_inject_cycles = 6;        ///< Instruction-NoC injection.

    // ---- UVM (monolithic-NPU baseline) --------------------------------
    std::uint64_t l2_bytes = 2 * 1024 * 1024;  ///< Shared L2 (UVM only).
    /// Synchronization flag round-trip through global memory.
    Cycles uvm_sync_cycles = 64;

    // ---- Clock ---------------------------------------------------------
    double freq_ghz = 1.0;       ///< Cycles -> seconds conversion.

    // ---- Derived helpers -------------------------------------------
    int num_cores() const { return mesh_x * mesh_y; }
    std::uint64_t total_spad_bytes() const
    {
        return spad_bytes_per_core * static_cast<std::uint64_t>(num_cores());
    }
    /// Peak per-core throughput in MAC operations per cycle.
    double peak_macs_per_cycle() const
    {
        return static_cast<double>(sa_dim) * sa_dim;
    }
    /// Seconds represented by `t` cycles.
    double seconds(Tick t) const
    {
        return static_cast<double>(t) / (freq_ghz * 1e9);
    }

    /** Table 2 "FPGA" column: 8 tiles, 16x16 SA, 4 MB SRAM, 16 GB/s. */
    static SocConfig Fpga();
    /** Table 2 "SIM" column: 36 tiles, 128x128 SA, 1080 MB, 360 GB/s. */
    static SocConfig Sim();
    /** 48-core variant of the SIM config (Figure 16, right half). */
    static SocConfig Sim48();

    /** Validate invariants; calls fatal() on nonsense configurations. */
    void validate() const;
};

} // namespace vnpu

#endif // VNPU_SIM_CONFIG_H
