/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * All stochastic choices in the simulator (e.g. sampled subgraph seeds)
 * come from explicitly seeded Rng instances so that every run is
 * reproducible.
 */

#ifndef VNPU_SIM_RNG_H
#define VNPU_SIM_RNG_H

#include <cstdint>

namespace vnpu {

/** SplitMix64 generator: tiny, fast, and good enough for simulation. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /**
     * Decorrelated substream `stream` of master seed `seed`.
     *
     * Replicated components (fleet devices) must NOT share one Rng:
     * interleaved draws would make every component's decision sequence
     * depend on how many siblings exist and on event ordering. Deriving
     * each component's generator as `substream(seed, component_id)`
     * keeps a component's private sequence invariant to the population
     * around it (pinned by FleetTest.DeviceStreamInvariantToFleetSize).
     * The (seed, stream) pair is avalanche-mixed so sibling streams are
     * decorrelated even for consecutive ids.
     */
    static Rng
    substream(std::uint64_t seed, std::uint64_t stream)
    {
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return Rng(z ^ (z >> 31));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    next_below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace vnpu

#endif // VNPU_SIM_RNG_H
