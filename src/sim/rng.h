/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * All stochastic choices in the simulator (e.g. sampled subgraph seeds)
 * come from explicitly seeded Rng instances so that every run is
 * reproducible.
 */

#ifndef VNPU_SIM_RNG_H
#define VNPU_SIM_RNG_H

#include <cstdint>

namespace vnpu {

/** SplitMix64 generator: tiny, fast, and good enough for simulation. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    next_below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace vnpu

#endif // VNPU_SIM_RNG_H
