#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace vnpu {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Distribution::merge(const Distribution& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

int
Histogram::bucket_of(double v)
{
    if (!(v > 0.0)) // negatives, zero and NaN share the zero bucket
        return 0;
    int exp = 0;
    const double frac = std::frexp(v, &exp); // v = frac * 2^exp, frac in [0.5, 1)
    const int octave = exp - 1;              // 2^octave <= v < 2^(octave+1)
    if (octave < kMinExp)
        return 0;
    int sub;
    if (octave > kMaxExp) {
        return kNumBuckets - 1;
    }
    sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return 1 + (octave - kMinExp) * kSubBuckets + sub;
}

double
Histogram::bucket_floor(int b)
{
    if (b <= 0)
        return 0.0;
    const int idx = b - 1;
    const int octave = kMinExp + idx / kSubBuckets;
    const int sub = idx % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

void
Histogram::record(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    ++buckets_[bucket_of(v)];
}

double
Histogram::quantile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    // Nearest-rank: the k-th smallest sample, k = max(1, ceil(p * n)).
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(p * count_)));
    std::uint64_t cum = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
        cum += buckets_[b];
        if (cum >= rank) {
            // Mid-bucket representative, clamped to the observed range
            // so degenerate distributions stay exact.
            const double lo = bucket_floor(b);
            const double rep = lo * (1.0 + 0.5 / kSubBuckets);
            return std::min(max_, std::max(min_, b == 0 ? lo : rep));
        }
    }
    return max_;
}

void
Histogram::merge(const Histogram& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (int b = 0; b < kNumBuckets; ++b)
        buckets_[b] += other.buckets_[b];
}

Histogram
Histogram::delta_since(const Histogram& prev) const
{
    Histogram d;
    if (count_ <= prev.count_)
        return d;
    d.count_ = count_ - prev.count_;
    d.sum_ = sum_ - prev.sum_;
    int first = -1;
    int last = -1;
    for (int b = 0; b < kNumBuckets; ++b) {
        const std::uint64_t cur = buckets_[b];
        const std::uint64_t old = prev.buckets_[b];
        const std::uint64_t delta = cur > old ? cur - old : 0;
        d.buckets_[b] = delta;
        if (delta != 0) {
            if (first < 0)
                first = b;
            last = b;
        }
    }
    // Window extremes approximated by the occupied bucket range,
    // clamped to the cumulative observed range so quantile() stays
    // inside real data.
    d.min_ = first <= 0 ? min_ : std::max(min_, bucket_floor(first));
    d.max_ = last < 0 ? max_
                      : std::min(max_, last + 1 < kNumBuckets
                                           ? bucket_floor(last + 1)
                                           : max_);
    return d;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
Histogram::collect(StatSet& out, const std::string& prefix) const
{
    out.set(prefix + "count", static_cast<double>(count_));
    out.set(prefix + "mean", mean());
    out.set(prefix + "min", min());
    out.set(prefix + "max", max());
    out.set(prefix + "p50", quantile(0.50));
    out.set(prefix + "p90", quantile(0.90));
    out.set(prefix + "p99", quantile(0.99));
}

void
StatSet::note_duplicate(const std::string& name, const char* how)
{
    ++duplicate_sets_;
    if (!warned_) {
        warned_ = true;
        warn("stats: duplicate registration of '", name, "' (", how,
             "); one subsystem is shadowing another's stat");
    }
}

void
StatSet::set(const std::string& name, double value)
{
    auto [it, inserted] = kinds_.emplace(name, Kind::kGauge);
    if (!inserted)
        note_duplicate(name, it->second == Kind::kGauge
                                 ? "set() twice"
                                 : "set() after add()");
    stats_[name] = value;
}

void
StatSet::add(const std::string& name, double value)
{
    auto [it, inserted] = kinds_.emplace(name, Kind::kCounter);
    if (!inserted && it->second != Kind::kCounter)
        note_duplicate(name, "add() after set()");
    stats_[name] += value;
}

StatSet::Kind
StatSet::kind(const std::string& name) const
{
    auto it = kinds_.find(name);
    return it == kinds_.end() ? Kind::kGauge : it->second;
}

double
StatSet::get(const std::string& name, double fallback) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? fallback : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return stats_.count(name) != 0;
}

void
StatSet::dump(std::ostream& os, const std::string& prefix) const
{
    for (const auto& [name, value] : stats_)
        os << prefix << name << " = " << value << '\n';
}

} // namespace vnpu
