#include "sim/stats.h"

#include <algorithm>

namespace vnpu {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
StatSet::set(const std::string& name, double value)
{
    stats_[name] = value;
}

void
StatSet::add(const std::string& name, double value)
{
    stats_[name] += value;
}

double
StatSet::get(const std::string& name, double fallback) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? fallback : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return stats_.count(name) != 0;
}

void
StatSet::dump(std::ostream& os, const std::string& prefix) const
{
    for (const auto& [name, value] : stats_)
        os << prefix << name << " = " << value << '\n';
}

} // namespace vnpu
