/**
 * @file
 * Small-buffer-optimized move-only callback for the event queue.
 *
 * The simulator schedules millions of events whose captures are a few
 * pointers and integers (a component pointer plus message fields).
 * `std::function` heap-allocates once the capture exceeds its tiny
 * internal buffer (16 bytes on libstdc++), which made `EventQueue::
 * schedule` the top allocation site of every figure harness.
 * `EventCallback` stores captures up to `kInlineBytes` in place and
 * only falls back to the heap for oversized or throwing-move callables.
 */

#ifndef VNPU_SIM_CALLBACK_H
#define VNPU_SIM_CALLBACK_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vnpu {

/** Move-only `void()` callable with inline storage for small captures. */
class EventCallback {
  public:
    /** Inline capture capacity; covers every scheduler in the repo. */
    static constexpr std::size_t kInlineBytes = 48;

    EventCallback() noexcept = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventCallback> &&
                  std::is_invocable_r_v<void, D&>>>
    EventCallback(F&& f)
    {
        if constexpr (sizeof(D) <= kInlineBytes &&
                      alignof(D) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<D>) {
            ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
            ops_ = &inline_ops<D>;
        } else {
            ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
            ops_ = &heap_ops<D>;
        }
    }

    EventCallback(EventCallback&& other) noexcept { move_from(other); }

    EventCallback&
    operator=(EventCallback&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    EventCallback(const EventCallback&) = delete;
    EventCallback& operator=(const EventCallback&) = delete;

    ~EventCallback() { reset(); }

    /** Invoke the stored callable. @pre *this is non-empty. */
    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

  private:
    struct Ops {
        void (*invoke)(void* self);
        /** Move-construct `dst` from `src`, then destroy `src`. */
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void* self) noexcept;
    };

    template <typename D>
    static constexpr Ops inline_ops = {
        [](void* self) { (*static_cast<D*>(self))(); },
        [](void* dst, void* src) noexcept {
            D* s = static_cast<D*>(src);
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void* self) noexcept { static_cast<D*>(self)->~D(); },
    };

    template <typename D>
    static constexpr Ops heap_ops = {
        [](void* self) { (**static_cast<D**>(self))(); },
        [](void* dst, void* src) noexcept {
            ::new (dst) D*(*static_cast<D**>(src));
        },
        [](void* self) noexcept { delete *static_cast<D**>(self); },
    };

    void
    move_from(EventCallback& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

} // namespace vnpu

#endif // VNPU_SIM_CALLBACK_H
