#include "sim/event_queue.h"

namespace vnpu {

Tick
EventQueue::run(Tick limit)
{
    while (!heap_.empty()) {
        const Entry& top = heap_.top();
        if (top.when > limit) {
            now_ = limit;
            return now_;
        }
        now_ = top.when;
        // Move the callback out before popping so that the callback may
        // itself schedule new events without invalidating `top`.
        Callback cb = std::move(const_cast<Entry&>(top).cb);
        heap_.pop();
        cb();
    }
    return now_;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    const Entry& top = heap_.top();
    now_ = top.when;
    Callback cb = std::move(const_cast<Entry&>(top).cb);
    heap_.pop();
    cb();
    return true;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

} // namespace vnpu
