#include "sim/event_queue.h"

#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace vnpu {

EventQueue::EventQueue() : wheel_(kWheelSize)
{
    VNPU_SANITIZE_BLOCK(san_wheel_seq_.resize(kWheelSize);)
}

Tick
EventQueue::next_event_tick() const
{
    // Wheel buckets hold ticks strictly after now_ within the window;
    // scan the occupancy bitmap from the slot following now_. After a
    // run(limit) jump past the window end the wheel is empty by
    // construction, so the scan is skipped.
    if (now_ - window_start_ < kWheelSize - 1) {
        std::size_t s = static_cast<std::size_t>(now_ - window_start_) + 1;
        std::size_t w = s >> 6;
        std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (s & 63));
        for (;;) {
            if (word != 0) {
                std::size_t slot = (w << 6) + __builtin_ctzll(word);
                return window_start_ + slot;
            }
            if (++w >= occupied_.size())
                break;
            word = occupied_[w];
        }
    }
    if (!overflow_.empty())
        return overflow_.top().when;
    return kTickMax;
}

void
EventQueue::advance_window(Tick when)
{
    window_start_ = when & ~static_cast<Tick>(kWheelMask);
    // Pull every overflow event that now falls inside the window into
    // its bucket. The heap pops in (when, seq) order, so bucket append
    // order stays consistent with scheduling order; any event scheduled
    // after this drain carries a larger seq and appends behind.
    while (!overflow_.empty() &&
           overflow_.top().when - window_start_ < kWheelSize) {
        OverflowEntry& top = const_cast<OverflowEntry&>(overflow_.top());
        const std::size_t slot = top.when & kWheelMask;
        wheel_[slot].push_back(std::move(top.cb));
        occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
        VNPU_SANITIZE_BLOCK(san_wheel_seq_[slot].push_back(top.seq);)
        overflow_.pop();
    }
}

void
EventQueue::load_batch(Tick when)
{
    if (when - window_start_ >= kWheelSize)
        advance_window(when);
    // No-past-scheduling plus FIFO batching means the committed clock
    // only ever moves strictly forward (tick-0 / same-tick events join
    // the batch directly and never pass through here).
    VNPU_INVARIANT(when > now_, "event clock must advance monotonically ",
                   "when=", when, " now=", now_);
    VNPU_INVARIANT(batch_pos_ >= batch_.size(),
                   "loading a tick over an unfinished batch");
    now_ = when;
    const std::size_t slot = when & kWheelMask;
    // Swap rather than move: the drained batch vector's capacity is
    // recycled as the bucket's backing store. Cap what a bucket may
    // retain, though — without the cap, one large burst's array would
    // migrate slot to slot until all kWheelSize buckets pin a copy of
    // the largest batch ever seen (hundreds of MB on dense workloads).
    batch_.swap(wheel_[slot]);
    if (wheel_[slot].capacity() > kBucketKeepCapacity)
        std::vector<Callback>().swap(wheel_[slot]);
    VNPU_SANITIZE_BLOCK({
        san_batch_seq_.swap(san_wheel_seq_[slot]);
        if (san_wheel_seq_[slot].capacity() > kBucketKeepCapacity)
            std::vector<std::uint64_t>().swap(san_wheel_seq_[slot]);
        VNPU_INVARIANT(san_batch_seq_.size() == batch_.size(),
                       "seq mirror diverged from the batch");
        san_tick_started_ = false;
    })
    batch_pos_ = 0;
    occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
}

Tick
EventQueue::run(Tick limit)
{
    // A limit in the past can have nothing runnable (past scheduling
    // panics), and moving now_ backwards would strand wheel events
    // behind the occupancy scan; keep the clock monotonic instead.
    if (limit < now_)
        return now_;
    for (;;) {
        // vnpu-lint: hot-path (event-loop batch execution)
        // Execute the current tick's batch by index: callbacks may
        // append same-tick events, which extend this very batch.
        const std::uint64_t executed_before = executed_;
        if (batch_pos_ < batch_.size()) {
            VNPU_PROF("sim.batch");
            while (batch_pos_ < batch_.size()) {
                Callback cb = std::move(batch_[batch_pos_++]);
                --pending_;
                ++executed_;
                VNPU_SANITIZE_BLOCK({
                    VNPU_INVARIANT(san_batch_seq_.size() == batch_.size(),
                                   "seq mirror diverged from the batch");
                    const std::uint64_t seq = san_batch_seq_[batch_pos_ - 1];
                    VNPU_INVARIANT(!san_tick_started_ || seq > san_last_seq_,
                                   "FIFO-within-tick order violated ",
                                   "tick=", now_, " seq=", seq,
                                   " last=", san_last_seq_);
                    san_last_seq_ = seq;
                    san_tick_started_ = true;
                    ++check::counters().event_queue_events;
                })
                cb();
                maybe_compact_batch();
            }
        }
        batch_.clear();
        VNPU_SANITIZE_BLOCK(san_batch_seq_.clear();)
        batch_pos_ = 0;
        if (executed_ != executed_before) {
            ++busy_ticks_;
            // Dispatch span: one slice per executed tick batch (a
            // per-event span would be zero-duration at the same ts).
            VNPU_TRACE(emit_complete(
                "tick", "sim", now_, 1, obs::kTrackQueue,
                {obs::arg("events", executed_ - executed_before),
                 obs::arg("pending",
                          static_cast<std::uint64_t>(pending_))}));
            // Metrics ride outside the event stream: sampling sweeps
            // read-only stats and can never perturb the simulation.
            if (auto* m = obs::metrics())
                m->on_tick(now_);
        }

        Tick t = next_event_tick();
        if (t == kTickMax) {
            // Drained: every increment of pending_ must have been
            // matched by exactly one executed or cleared event.
            VNPU_INVARIANT(pending_ == 0,
                           "queue drained with unaccounted pending=",
                           pending_);
            return now_;
        }
        if (t > limit) {
            now_ = limit;
            return now_;
        }
        load_batch(t);
    }
}

bool
EventQueue::step()
{
    if (batch_pos_ >= batch_.size()) {
        batch_.clear();
        VNPU_SANITIZE_BLOCK(san_batch_seq_.clear();)
        batch_pos_ = 0;
        Tick t = next_event_tick();
        if (t == kTickMax)
            return false;
        load_batch(t);
    }
    Callback cb = std::move(batch_[batch_pos_++]);
    --pending_;
    ++executed_;
    VNPU_SANITIZE_BLOCK({
        VNPU_INVARIANT(san_batch_seq_.size() == batch_.size(),
                       "seq mirror diverged from the batch");
        const std::uint64_t seq = san_batch_seq_[batch_pos_ - 1];
        VNPU_INVARIANT(!san_tick_started_ || seq > san_last_seq_,
                       "FIFO-within-tick order violated ", "tick=", now_,
                       " seq=", seq, " last=", san_last_seq_);
        san_last_seq_ = seq;
        san_tick_started_ = true;
        ++check::counters().event_queue_events;
    })
    cb();
    maybe_compact_batch();
    return true;
}

void
EventQueue::collect_stats(StatSet& out, const std::string& prefix) const
{
    out.add(prefix + "events_executed", static_cast<double>(executed_));
    out.add(prefix + "busy_ticks", static_cast<double>(busy_ticks_));
    out.set(prefix + "pending", static_cast<double>(pending_));
    out.set(prefix + "now", static_cast<double>(now_));
}

void
EventQueue::clear()
{
    batch_.clear();
    batch_pos_ = 0;
    for (auto& bucket : wheel_)
        bucket.clear();
    occupied_.fill(0);
    while (!overflow_.empty())
        overflow_.pop();
    pending_ = 0;
    VNPU_SANITIZE_BLOCK({
        san_batch_seq_.clear();
        for (auto& bucket : san_wheel_seq_)
            bucket.clear();
        san_tick_started_ = false;
    })
}

} // namespace vnpu
