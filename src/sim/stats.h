/**
 * @file
 * Lightweight statistics: named scalar counters and histograms that
 * components register into a StatSet and that harnesses can dump.
 */

#ifndef VNPU_SIM_STATS_H
#define VNPU_SIM_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace vnpu {

class StatSet;

/** A monotonically increasing scalar statistic. */
class Counter {
  public:
    Counter() = default;

    Counter& operator+=(std::uint64_t v) { value_ += v; return *this; }
    Counter& operator++() { ++value_; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max of a sampled quantity (e.g. latency). */
class Distribution {
  public:
    void sample(double v);

    /** Fold another distribution in (for sharded/merged collection). */
    void merge(const Distribution& other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Log-bucketed histogram with approximate quantiles.
 *
 * Non-negative values are bucketed by binary exponent with
 * `kSubBuckets` linear sub-buckets per octave, so `quantile(p)` is
 * reported with relative error at most 2^(1/kSubBuckets) - 1 (~4.4%).
 * Values <= 0 (and NaN) share the zero bucket; exact count/sum/min/max
 * run alongside the buckets. Mergeable for future sharded collection.
 */
class Histogram {
  public:
    static constexpr int kSubBuckets = 16;
    /** Octave range: 2^-32 (~2e-10) .. 2^64 covers ticks and ratios. */
    static constexpr int kMinExp = -32;
    static constexpr int kMaxExp = 63;
    static constexpr int kNumBuckets =
        1 + (kMaxExp - kMinExp + 1) * kSubBuckets;

    void record(double v);

    /**
     * Approximate p-quantile (p in [0, 1]) under nearest-rank
     * semantics, clamped to the exact observed [min, max]; 0 when
     * empty.
     */
    double quantile(double p) const;

    /** Fold another histogram in (bucket-wise; exact fields combine). */
    void merge(const Histogram& other);

    /**
     * The window of samples recorded since `prev`, an earlier snapshot
     * of this same histogram (bucket-wise subtraction). Exact for
     * buckets/count/sum — merging every window delta reproduces the
     * cumulative histogram — while min/max are approximated from the
     * occupied delta buckets (the exact extremes of a window are not
     * tracked). Returns an empty histogram when nothing was recorded.
     */
    Histogram delta_since(const Histogram& prev) const;

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

    /** Surface count/mean/min/max/p50/p90/p99 under `prefix`. */
    void collect(StatSet& out, const std::string& prefix) const;

  private:
    static int bucket_of(double v);
    /** Lower bound of bucket `b` (0 for the zero bucket). */
    static double bucket_floor(int b);

    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of scalar statistics. Components expose a
 * `collect_stats(StatSet& out, const std::string& prefix)` method;
 * harnesses sweep a whole machine/hypervisor and print or export the
 * result. Convention: accumulating quantities (counters, cycle totals)
 * go through `add()` so several components may share one prefix;
 * point-in-time gauges (cache sizes, utilization) use `set()`.
 *
 * The API used to register a key also records its semantic kind
 * (`add` = accumulating counter, `set` = gauge), which downstream
 * consumers (the metrics sampler, the Prometheus exposition) use to
 * pick delta-vs-raw semantics. Registering the same key with `set()`
 * twice — two subsystems silently shadowing each other's gauge — or
 * mixing `set()` and `add()` on one key is flagged: the first offense
 * per StatSet warns on the log, and every offense counts in
 * `duplicate_sets()` so tests can pin the contract.
 */
class StatSet {
  public:
    /** How a key was registered; drives delta-vs-raw sampling. */
    enum class Kind : std::uint8_t { kGauge, kCounter };

    /** Set (or overwrite) a named scalar. */
    void set(const std::string& name, double value);

    /** Add to a named scalar (creating it at 0 if absent). */
    void add(const std::string& name, double value);

    /** Look up a scalar; returns `fallback` when absent. */
    double get(const std::string& name, double fallback = 0.0) const;

    /** True when `name` has been set. */
    bool has(const std::string& name) const;

    /** Registered kind of `name` (kGauge when absent). */
    Kind kind(const std::string& name) const;

    /** Times a key was re-registered with a conflicting kind or a
     *  second `set()` (see class comment). */
    std::uint64_t duplicate_sets() const { return duplicate_sets_; }

    /** All stats in name order. */
    const std::map<std::string, double>& all() const { return stats_; }

    /** Pretty-print as "name = value" lines. */
    void dump(std::ostream& os, const std::string& prefix = "") const;

  private:
    void note_duplicate(const std::string& name, const char* how);

    std::map<std::string, double> stats_;
    std::map<std::string, Kind> kinds_;
    std::uint64_t duplicate_sets_ = 0;
    bool warned_ = false;
};

} // namespace vnpu

#endif // VNPU_SIM_STATS_H
