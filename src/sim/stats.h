/**
 * @file
 * Lightweight statistics: named scalar counters and histograms that
 * components register into a StatSet and that harnesses can dump.
 */

#ifndef VNPU_SIM_STATS_H
#define VNPU_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace vnpu {

/** A monotonically increasing scalar statistic. */
class Counter {
  public:
    Counter() = default;

    Counter& operator+=(std::uint64_t v) { value_ += v; return *this; }
    Counter& operator++() { ++value_; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max of a sampled quantity (e.g. latency). */
class Distribution {
  public:
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of scalar statistics. Components expose a
 * `collect_stats(StatSet&)` method; harnesses print the result.
 */
class StatSet {
  public:
    /** Set (or overwrite) a named scalar. */
    void set(const std::string& name, double value);

    /** Add to a named scalar (creating it at 0 if absent). */
    void add(const std::string& name, double value);

    /** Look up a scalar; returns `fallback` when absent. */
    double get(const std::string& name, double fallback = 0.0) const;

    /** True when `name` has been set. */
    bool has(const std::string& name) const;

    /** All stats in name order. */
    const std::map<std::string, double>& all() const { return stats_; }

    /** Pretty-print as "name = value" lines. */
    void dump(std::ostream& os, const std::string& prefix = "") const;

  private:
    std::map<std::string, double> stats_;
};

} // namespace vnpu

#endif // VNPU_SIM_STATS_H
