/**
 * @file
 * Fundamental value types shared by every vNPU subsystem.
 */

#ifndef VNPU_SIM_TYPES_H
#define VNPU_SIM_TYPES_H

#include <cstdint>
#include <limits>

#include "sim/core_set.h"

namespace vnpu {

/** Simulated time, measured in NPU clock cycles. */
using Tick = std::uint64_t;

/** A duration in cycles (same unit as Tick, kept distinct for clarity). */
using Cycles = std::uint64_t;

/** Byte address into the NPU global (HBM/DRAM) address space. */
using Addr = std::uint64_t;

/** Physical or virtual NPU core identifier. */
using CoreId = std::int32_t;

/** Virtual machine (tenant) identifier. */
using VmId = std::int32_t;

/** Sentinel for "no core". */
inline constexpr CoreId kInvalidCore = -1;

/** Sentinel for "no VM" / bare-metal (non-virtualized) execution. */
inline constexpr VmId kNoVm = -1;

/** Sentinel tick meaning "never" / unset. */
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/**
 * Maximum number of physical cores supported across the whole stack
 * (graph nodes, core regions, the virtualization layers). Matches the
 * topology model's `noc::kMaxMeshNodes`.
 */
inline constexpr int kMaxCores = CoreSet::kCapacity;

/** Convenience: the singleton set for one core. */
constexpr CoreSet core_bit(CoreId id) { return CoreSet::of(id); }

/** Number of cores in a set. */
constexpr int mask_count(const CoreSet& m) { return m.count(); }

/** Kilo/Mega/Giga byte literals. */
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

} // namespace vnpu

#endif // VNPU_SIM_TYPES_H
