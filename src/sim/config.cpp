#include "sim/config.h"

#include "sim/log.h"

namespace vnpu {

SocConfig
SocConfig::Fpga()
{
    SocConfig c;
    c.mesh_x = 4;
    c.mesh_y = 2;                       // 8 accelerator tiles
    c.sa_dim = 16;
    c.vector_lanes = 16;
    c.spad_bytes_per_core = 512 * 1024; // 512 KB/tile, 4 MB total
    c.hbm_bytes = 4ull << 30;
    c.hbm_channels = 2;
    c.hbm_bytes_per_cycle = 16.0;       // 16 GB/s at 1 GHz
    c.link_bytes_per_cycle = 16.0;
    c.freq_ghz = 1.0;
    return c;
}

SocConfig
SocConfig::Sim()
{
    SocConfig c;
    c.mesh_x = 6;
    c.mesh_y = 6;                        // 36 accelerator tiles
    c.sa_dim = 128;
    c.vector_lanes = 128;
    c.spad_bytes_per_core = 30ull << 20; // 30 MB/tile, 1080 MB total
    c.hbm_bytes = 64ull << 30;
    c.hbm_channels = 6;                  // one interface per mesh row
    c.hbm_bytes_per_cycle = 720.0;       // 360 GB/s at 500 MHz
    c.link_bytes_per_cycle = 64.0;
    c.packet_bytes = 2048;
    c.freq_ghz = 0.5;
    return c;
}

SocConfig
SocConfig::Sim48()
{
    SocConfig c = Sim();
    c.mesh_x = 8;
    c.mesh_y = 6;                        // 48 tiles, 1440 MB total SRAM
    c.hbm_channels = 6;
    return c;
}

void
SocConfig::validate() const
{
    if (mesh_x <= 0 || mesh_y <= 0)
        fatal("mesh dimensions must be positive: ", mesh_x, "x", mesh_y);
    if (num_cores() > kMaxCores)
        fatal("at most ", kMaxCores, " cores supported, got ",
              num_cores());
    if (sa_dim <= 0 || vector_lanes <= 0)
        fatal("compute unit dimensions must be positive");
    if (hbm_channels <= 0)
        fatal("need at least one HBM channel");
    if (hbm_channels > 64)
        fatal("at most 64 HBM channels supported, got ", hbm_channels);
    if (link_bytes_per_cycle <= 0 || hbm_bytes_per_cycle <= 0)
        fatal("bandwidths must be positive");
    if (packet_bytes == 0 || dma_burst_bytes == 0 || page_bytes == 0)
        fatal("transfer granularities must be positive");
    if (meta_zone_bytes >= spad_bytes_per_core)
        fatal("meta-zone must leave room for the weight-zone");
    if (freq_ghz <= 0)
        fatal("frequency must be positive");
}

} // namespace vnpu
