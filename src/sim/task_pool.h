/**
 * @file
 * A small persistent worker pool for data-parallel scoring loops (the
 * topology mapper's candidate-scoring funnel).
 *
 * Design constraints (see docs/sim_kernel.md, "Admission funnel"):
 *  - Deterministic by construction: `parallel_for(begin, end, fn)` runs
 *    `fn(i)` exactly once per index and owns no shared mutable state;
 *    callers write per-index result slots and reduce sequentially
 *    afterwards, so outcomes are bit-identical for any worker count
 *    (including zero, where the loop runs inline on the caller).
 *  - Lazy and persistent: threads start on first use and live for the
 *    process, so a call costs one mutex/cv round trip, not thread
 *    creation.
 *  - The calling thread participates in the work, so a 1-CPU host (or
 *    `VNPU_TASK_POOL_THREADS=0`) degrades to a plain sequential loop.
 *  - Each job is an immutable heap object shared via `shared_ptr`; a
 *    worker only touches a job it snapshotted under the pool mutex, so
 *    late-exiting workers can never observe a half-installed successor
 *    job (TSan-clean by construction).
 *  - Exceptions from `fn` are captured; the first is rethrown on the
 *    caller once every index has run.
 */

#ifndef VNPU_SIM_TASK_POOL_H
#define VNPU_SIM_TASK_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/prof.h"

namespace vnpu {

class TaskPool {
  public:
    /** Process-wide pool (threads = cores - 1, capped; see ctor). */
    static TaskPool&
    instance()
    {
        static TaskPool pool;
        return pool;
    }

    int num_workers() const { return static_cast<int>(workers_.size()); }

    /**
     * Run `fn(i)` for every i in [begin, end), blocking until all
     * complete. `fn` must be safe to call concurrently from multiple
     * threads. Serialized across callers (one job at a time); nested
     * calls from inside `fn` run inline on the calling thread.
     */
    void
    parallel_for(int begin, int end, const std::function<void(int)>& fn)
    {
        if (end - begin <= 1 || workers_.empty() || draining_) {
            for (int i = begin; i < end; ++i)
                fn(i);
            return;
        }

        std::lock_guard<std::mutex> serial(serial_mu_);
        auto job = std::make_shared<Job>(fn, begin, end);
        {
            std::lock_guard<std::mutex> lk(mu_);
            job_ = job;
        }
        cv_.notify_all();

        drain(*job); // the caller is a worker too

        std::unique_lock<std::mutex> lk(mu_);
        done_cv_.wait(lk, [&] {
            return job->pending.load(std::memory_order_acquire) == 0;
        });
        if (job_ == job)
            job_ = nullptr;
        lk.unlock();
        if (job->error)
            std::rethrow_exception(job->error);
    }

    ~TaskPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread& t : workers_)
            t.join();
    }

  private:
    struct Job {
        Job(const std::function<void(int)>& f, int begin, int e)
            : fn(f), next(begin), end(e), pending(e - begin)
        {
        }
        const std::function<void(int)>& fn;
        std::atomic<int> next;
        const int end;
        std::atomic<int> pending;
        std::exception_ptr error; ///< first failure; guarded by pool mu_
    };

    TaskPool()
    {
        int n = default_threads();
        workers_.reserve(n);
        for (int i = 0; i < n; ++i) {
            workers_.emplace_back([this, i] {
                // Profile reports key worker occupancy off this name.
                obs::set_prof_thread_name(
                    ("worker" + std::to_string(i)).c_str());
                worker_loop();
            });
        }
    }

    static int
    default_threads()
    {
        // Worker count provably cannot change any simulation decision
        // (sequential index-order reduction; pinned by the funnel
        // differential tests), so reading it from the environment is
        // deterministic where it matters.
        if (const char* env =
            std::getenv("VNPU_TASK_POOL_THREADS")) // vnpu-lint: allow(nondet)
            return std::max(0, std::min(std::atoi(env), 64));
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        return std::max(0, std::min(hw - 1, 8));
    }

    /** Claim and run indices of `job` until it is exhausted. */
    void
    drain(Job& job)
    {
        VNPU_PROF("task_pool.drain");
        draining_ = true;
        while (true) {
            int i = job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.end)
                break;
            try {
                job.fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu_);
                if (!job.error)
                    job.error = std::current_exception();
            }
            if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lk(mu_);
                done_cv_.notify_all();
            }
        }
        draining_ = false;
    }

    void
    worker_loop()
    {
        while (true) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_.wait(lk, [&] { return stop_ || job_ != nullptr; });
                if (stop_)
                    return;
                job = job_;
            }
            drain(*job);
            // Exhausted: retire the slot so the cv predicate goes false
            // (running workers keep the job alive via their snapshot).
            std::lock_guard<std::mutex> lk(mu_);
            if (job_ == job)
                job_ = nullptr;
        }
    }

    std::vector<std::thread> workers_;
    std::mutex serial_mu_; ///< one parallel_for at a time
    std::mutex mu_;
    std::condition_variable cv_;      ///< worker wake-up
    std::condition_variable done_cv_; ///< caller completion wait
    std::shared_ptr<Job> job_;        ///< claimable job; guarded by mu_
    bool stop_ = false;
    /** True while this thread runs job indices (nested calls inline). */
    inline static thread_local bool draining_ = false;
};

} // namespace vnpu

#endif // VNPU_SIM_TASK_POOL_H
