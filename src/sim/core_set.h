/**
 * @file
 * CoreSet: a fixed-capacity bitset over physical core / graph node ids.
 *
 * This is the value type behind every core-region API in the
 * virtualization stack (free-core masks, vNPU regions, confined-route
 * regions, candidate subgraphs). Capacity matches the largest mesh the
 * topology model supports (`kMaxMeshNodes` = kCapacity = 1024), lifting
 * the historical 64-core `uint64_t` cap.
 *
 * Invariants and conventions (see docs/sim_kernel.md):
 *  - Iteration (`begin()/end()`, `pop_lowest()`) visits set bits in
 *    ascending id order — identical to the ctz loops the u64 code used,
 *    so 64-core golden traces are unaffected by the widening.
 *  - `operator<` is numeric, most-significant word first; for sets that
 *    fit one word it orders exactly like the old integer masks (the
 *    candidate-dedup sort relies on this).
 *  - `operator~` complements all kCapacity bits. Mesh-bounded
 *    complements must intersect with `first_n(num_nodes)`.
 */

#ifndef VNPU_SIM_CORE_SET_H
#define VNPU_SIM_CORE_SET_H

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

#include "sim/log.h"

namespace vnpu {

class CoreSet {
  public:
    /** Largest representable core/node id + 1 (== noc::kMaxMeshNodes). */
    static constexpr int kCapacity = 1024;
    static constexpr int kWords = kCapacity / 64;

    constexpr CoreSet() : w_{} {}

    /** The singleton set {id}. */
    static constexpr CoreSet
    of(int id)
    {
        CoreSet s;
        s.set(id);
        return s;
    }

    /** Bits [0, n): the canonical "cores 0..n-1" mask. */
    static constexpr CoreSet
    first_n(int n)
    {
        VNPU_ASSERT(n >= 0 && n <= kCapacity);
        CoreSet s;
        const int full = n >> 6;
        for (int w = 0; w < full; ++w)
            s.w_[w] = ~std::uint64_t{0};
        if (n & 63)
            s.w_[full] = (std::uint64_t{1} << (n & 63)) - 1;
        return s;
    }

    /** Set whose lowest 64 ids come from `bits` (bit i <=> id i). */
    static constexpr CoreSet
    from_word(std::uint64_t bits)
    {
        CoreSet s;
        s.w_[0] = bits;
        return s;
    }

    /** Set of all ids in [first, last). */
    template <typename It>
    static CoreSet
    from_range(It first, It last)
    {
        CoreSet s;
        for (; first != last; ++first)
            s.set(static_cast<int>(*first));
        return s;
    }

    /** Set of all ids in a container of integers. */
    template <typename C>
    static CoreSet
    from_range(const C& c)
    {
        return from_range(c.begin(), c.end());
    }

    // ---- Single-bit access ----------------------------------------------
    constexpr void
    set(int i)
    {
        VNPU_ASSERT(valid(i));
        w_[i >> 6] |= std::uint64_t{1} << (i & 63);
    }

    constexpr void
    reset(int i)
    {
        VNPU_ASSERT(valid(i));
        w_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    constexpr bool
    test(int i) const
    {
        VNPU_ASSERT(valid(i));
        return (w_[i >> 6] >> (i & 63)) & 1;
    }

    // ---- Aggregates ------------------------------------------------------
    /** Number of set bits (popcount). */
    constexpr int
    count() const
    {
        int c = 0;
        for (int w = 0; w < kWords; ++w)
            c += __builtin_popcountll(w_[w]);
        return c;
    }

    constexpr bool
    any() const
    {
        for (int w = 0; w < kWords; ++w)
            if (w_[w])
                return true;
        return false;
    }

    constexpr bool none() const { return !any(); }
    constexpr explicit operator bool() const { return any(); }

    // ---- Set-bit traversal (ascending id order) --------------------------
    /** Lowest set bit >= `from`, or kCapacity when none (ctz-style). */
    constexpr int
    next(int from) const
    {
        if (from >= kCapacity)
            return kCapacity;
        int wi = from >> 6;
        std::uint64_t w = w_[wi] & (~std::uint64_t{0} << (from & 63));
        while (true) {
            if (w)
                return (wi << 6) + __builtin_ctzll(w);
            if (++wi == kWords)
                return kCapacity;
            w = w_[wi];
        }
    }

    /** Lowest set bit, or kCapacity when empty. */
    constexpr int lowest() const { return next(0); }

    /**
     * The n-th set bit (0-indexed) in ascending id order — an O(kWords)
     * select, so "pick a uniform element of this set" needs no
     * materialized node vector. @pre 0 <= n < count()
     */
    constexpr int
    nth(int n) const
    {
        VNPU_ASSERT(n >= 0);
        for (int wi = 0; wi < kWords; ++wi) {
            const int c = __builtin_popcountll(w_[wi]);
            if (n < c) {
                std::uint64_t w = w_[wi];
                while (n--)
                    w &= w - 1;
                return (wi << 6) + __builtin_ctzll(w);
            }
            n -= c;
        }
        panic("CoreSet::nth beyond population");
    }

    /** True when every bit of [start, start + len) is set (word-wise). */
    constexpr bool
    test_range(int start, int len) const
    {
        VNPU_ASSERT(start >= 0 && len >= 0 && start + len <= kCapacity);
        int wi = start >> 6;
        int off = start & 63;
        while (len > 0) {
            const int take = len < 64 - off ? len : 64 - off;
            const std::uint64_t mask =
                (take == 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << take) - 1)
                << off;
            if ((w_[wi] & mask) != mask)
                return false;
            len -= take;
            off = 0;
            ++wi;
        }
        return true;
    }

    /** Remove and return the lowest set bit. @pre any() */
    constexpr int
    pop_lowest()
    {
        for (int wi = 0; wi < kWords; ++wi) {
            if (w_[wi]) {
                const int b = __builtin_ctzll(w_[wi]);
                w_[wi] &= w_[wi] - 1;
                return (wi << 6) + b;
            }
        }
        panic("pop_lowest on empty CoreSet");
    }

    class const_iterator {
      public:
        constexpr const_iterator(const CoreSet* s, int bit)
            : s_(s), bit_(bit)
        {
        }
        constexpr int operator*() const { return bit_; }
        constexpr const_iterator&
        operator++()
        {
            bit_ = s_->next(bit_ + 1);
            return *this;
        }
        constexpr bool
        operator==(const const_iterator& o) const
        {
            return bit_ == o.bit_;
        }
        constexpr bool
        operator!=(const const_iterator& o) const
        {
            return bit_ != o.bit_;
        }

      private:
        const CoreSet* s_;
        int bit_;
    };

    constexpr const_iterator begin() const { return {this, next(0)}; }
    constexpr const_iterator end() const { return {this, kCapacity}; }

    // ---- Set algebra -----------------------------------------------------
    constexpr CoreSet&
    operator&=(const CoreSet& o)
    {
        for (int w = 0; w < kWords; ++w)
            w_[w] &= o.w_[w];
        return *this;
    }

    constexpr CoreSet&
    operator|=(const CoreSet& o)
    {
        for (int w = 0; w < kWords; ++w)
            w_[w] |= o.w_[w];
        return *this;
    }

    constexpr CoreSet&
    operator^=(const CoreSet& o)
    {
        for (int w = 0; w < kWords; ++w)
            w_[w] ^= o.w_[w];
        return *this;
    }

    friend constexpr CoreSet
    operator&(CoreSet a, const CoreSet& b)
    {
        a &= b;
        return a;
    }

    friend constexpr CoreSet
    operator|(CoreSet a, const CoreSet& b)
    {
        a |= b;
        return a;
    }

    friend constexpr CoreSet
    operator^(CoreSet a, const CoreSet& b)
    {
        a ^= b;
        return a;
    }

    /** Complement over all kCapacity bits (see file header). */
    constexpr CoreSet
    operator~() const
    {
        CoreSet r;
        for (int w = 0; w < kWords; ++w)
            r.w_[w] = ~w_[w];
        return r;
    }

    /** this & ~o without materializing the complement. */
    constexpr CoreSet
    andnot(const CoreSet& o) const
    {
        CoreSet r;
        for (int w = 0; w < kWords; ++w)
            r.w_[w] = w_[w] & ~o.w_[w];
        return r;
    }

    friend constexpr bool
    operator==(const CoreSet& a, const CoreSet& b)
    {
        for (int w = 0; w < kWords; ++w)
            if (a.w_[w] != b.w_[w])
                return false;
        return true;
    }

    friend constexpr bool
    operator!=(const CoreSet& a, const CoreSet& b)
    {
        return !(a == b);
    }

    /** Numeric order, most-significant word first (matches u64 order). */
    friend constexpr bool
    operator<(const CoreSet& a, const CoreSet& b)
    {
        for (int w = kWords - 1; w >= 0; --w)
            if (a.w_[w] != b.w_[w])
                return a.w_[w] < b.w_[w];
        return false;
    }

    /** Raw 64-bit word `i` (ids [64i, 64i+64)); for fast paths. */
    constexpr std::uint64_t
    word(int i) const
    {
        VNPU_ASSERT(i >= 0 && i < kWords);
        return w_[i];
    }

    // ---- Hashing (map keys: e.g. the hypervisor's route cache) ----------
    std::size_t
    hash() const
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (int w = 0; w < kWords; ++w) {
            h ^= w_[w];
            h *= 0x100000001b3ull;
            h ^= h >> 29;
        }
        return static_cast<std::size_t>(h);
    }

    /** "{0-5,9,12-13}" — compact debug / gtest-failure rendering. */
    std::string
    to_string() const
    {
        std::string out = "{";
        int run_start = -1, prev = -2;
        auto flush = [&](int last) {
            if (run_start < 0)
                return;
            if (out.size() > 1)
                out += ',';
            out += std::to_string(run_start);
            if (last > run_start)
                out += '-' + std::to_string(last);
        };
        for (int i : *this) {
            if (i != prev + 1) {
                flush(prev);
                run_start = i;
            }
            prev = i;
        }
        flush(prev);
        return out + "}";
    }

    friend std::ostream&
    operator<<(std::ostream& os, const CoreSet& s)
    {
        return os << s.to_string();
    }

  private:
    static constexpr bool valid(int i) { return i >= 0 && i < kCapacity; }

    std::uint64_t w_[kWords];
};

} // namespace vnpu

namespace std {

template <>
struct hash<vnpu::CoreSet> {
    size_t operator()(const vnpu::CoreSet& s) const { return s.hash(); }
};

} // namespace std

#endif // VNPU_SIM_CORE_SET_H
