#include "graph/enumerate.h"

#include <algorithm>

#include "sim/log.h"

namespace vnpu::graph {

namespace {

/**
 * Recursive exclusive-neighborhood expansion. `sub` is the current
 * connected set; `ext` are nodes that may still be added (all > root in
 * id order or discovered through the subgraph), guaranteeing each vertex
 * set is generated exactly once.
 */
struct Enumerator {
    const Graph& g;
    int k;
    NodeMask allowed;
    const std::function<bool(NodeMask)>& cb;
    std::uint64_t max_results;
    std::uint64_t step_budget;
    std::uint64_t produced = 0;
    std::uint64_t steps = 0;
    bool stopped = false;

    NodeMask
    neighborhood(NodeMask set) const
    {
        NodeMask nb = 0;
        NodeMask m = set;
        while (m) {
            int v = __builtin_ctzll(m);
            m &= m - 1;
            nb |= g.neighbors(v);
        }
        return nb & ~set;
    }

    void
    extend(NodeMask sub, NodeMask ext, NodeMask forbidden)
    {
        if (stopped)
            return;
        // When results are capped, also bound the search-tree walk:
        // for k close to |allowed| the output set is tiny but the DFS
        // tree of smaller connected subsets is exponential.
        if (++steps > step_budget) {
            stopped = true;
            return;
        }
        if (__builtin_popcountll(sub) == k) {
            ++produced;
            if (!cb(sub) || produced >= max_results)
                stopped = true;
            return;
        }
        while (ext && !stopped) {
            int w = __builtin_ctzll(ext);
            ext &= ext - 1;
            NodeMask wbit = NodeMask{1} << w;
            // Nodes considered at this level may not be re-added deeper:
            // they become forbidden, which removes duplicates.
            NodeMask new_forbidden = forbidden | wbit | ext;
            NodeMask new_sub = sub | wbit;
            NodeMask new_ext =
                (ext | (g.neighbors(w) & allowed & ~new_forbidden)) & ~wbit;
            extend(new_sub, new_ext, new_forbidden);
            forbidden |= wbit;
        }
    }
};

} // namespace

std::uint64_t
enumerate_connected_subsets(const Graph& g, int k, NodeMask allowed,
                            const std::function<bool(NodeMask)>& cb,
                            std::uint64_t max_results)
{
    if (k <= 0 || k > g.num_nodes())
        return 0;
    std::uint64_t step_budget =
        max_results == UINT64_MAX
            ? UINT64_MAX
            : std::max<std::uint64_t>(1'000'000, max_results * 256);
    Enumerator e{g, k, allowed, cb, max_results, step_budget};
    NodeMask todo = allowed;
    while (todo && !e.stopped) {
        int root = __builtin_ctzll(todo);
        todo &= todo - 1;
        NodeMask rbit = NodeMask{1} << root;
        // Roots are processed in ascending order; previously processed
        // roots are excluded so each subset is found from its min node.
        NodeMask forbidden = (rbit - 1) | rbit;
        NodeMask ext = g.neighbors(root) & allowed & ~forbidden;
        e.extend(rbit, ext, forbidden);
    }
    return e.produced;
}

std::uint64_t
count_connected_subsets(const Graph& g, int k, NodeMask allowed,
                        std::uint64_t cap)
{
    return enumerate_connected_subsets(
        g, k, allowed, [](NodeMask) { return true; }, cap);
}

std::vector<NodeMask>
sample_connected_subsets(const Graph& g, int k, NodeMask allowed, int samples,
                         Rng& rng)
{
    std::vector<NodeMask> out;
    if (k <= 0 || __builtin_popcountll(allowed) < k)
        return out;

    std::vector<int> seeds = Graph::mask_to_nodes(allowed);
    for (int s = 0; s < samples; ++s) {
        int seed = seeds[s % seeds.size()];
        NodeMask sub = NodeMask{1} << seed;
        // Randomized growth: repeatedly add a random frontier node.
        while (__builtin_popcountll(sub) < k) {
            NodeMask frontier = 0;
            NodeMask m = sub;
            while (m) {
                int v = __builtin_ctzll(m);
                m &= m - 1;
                frontier |= g.neighbors(v);
            }
            frontier &= allowed & ~sub;
            if (!frontier)
                break; // dead end; try next seed
            std::vector<int> choices = Graph::mask_to_nodes(frontier);
            sub |= NodeMask{1} << choices[rng.next_below(choices.size())];
        }
        if (__builtin_popcountll(sub) == k)
            out.push_back(sub);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::uint64_t
binomial(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return 0;
    k = std::min(k, n - k);
    // 128-bit intermediates: C(n, i) * num can exceed 64 bits even when
    // the final value fits.
    unsigned __int128 result = 1;
    for (std::uint64_t i = 1; i <= k; ++i) {
        std::uint64_t num = n - k + i;
        result = result * num / i;
        if (result > static_cast<unsigned __int128>(UINT64_MAX))
            return UINT64_MAX;
    }
    return static_cast<std::uint64_t>(result);
}

} // namespace vnpu::graph
