#include "graph/enumerate.h"

#include <algorithm>

#include "sim/log.h"

namespace vnpu::graph {

namespace {

/**
 * Mask-representation shim for the enumerator. Graphs of at most 64
 * nodes — every pre-CoreSet workload, and the region sizes the golden
 * traces pin — enumerate on plain `uint64_t` words extracted from the
 * CoreSet adjacency; only larger meshes pay for wide masks. Both
 * representations traverse bits in ascending order, so the emitted
 * subset sequence is identical.
 */
template <typename M>
struct Ops;

template <>
struct Ops<std::uint64_t> {
    static bool any(std::uint64_t m) { return m != 0; }
    static int
    pop_lowest(std::uint64_t& m)
    {
        const int b = __builtin_ctzll(m);
        m &= m - 1;
        return b;
    }
    static std::uint64_t of(int b) { return std::uint64_t{1} << b; }
    static std::uint64_t
    first_n(int n)
    {
        return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
    }
    static std::uint64_t
    andnot(std::uint64_t a, std::uint64_t b)
    {
        return a & ~b;
    }
    static NodeMask widen(std::uint64_t m) { return NodeMask::from_word(m); }
};

template <>
struct Ops<NodeMask> {
    static bool any(const NodeMask& m) { return m.any(); }
    static int pop_lowest(NodeMask& m) { return m.pop_lowest(); }
    static NodeMask of(int b) { return NodeMask::of(b); }
    static NodeMask first_n(int n) { return NodeMask::first_n(n); }
    static NodeMask
    andnot(const NodeMask& a, const NodeMask& b)
    {
        return a.andnot(b);
    }
    static const NodeMask& widen(const NodeMask& m) { return m; }
};

/**
 * Recursive exclusive-neighborhood expansion. `sub` is the current
 * connected set; `ext` are nodes that may still be added (all > root in
 * id order or discovered through the subgraph), guaranteeing each vertex
 * set is generated exactly once.
 */
template <typename M>
struct Enumerator {
    const std::vector<M>& adj;
    int k;
    M allowed;
    const std::function<bool(const NodeMask&)>& cb;
    std::uint64_t max_results;
    std::uint64_t step_budget;
    std::uint64_t produced = 0;
    std::uint64_t steps = 0;
    bool stopped = false;

    void
    extend(const M& sub, M ext, M forbidden, int depth)
    {
        if (stopped)
            return;
        // When results are capped, also bound the search-tree walk:
        // for k close to |allowed| the output set is tiny but the DFS
        // tree of smaller connected subsets is exponential.
        if (++steps > step_budget) {
            stopped = true;
            return;
        }
        if (depth == k) {
            ++produced;
            if (!cb(Ops<M>::widen(sub)) || produced >= max_results)
                stopped = true;
            return;
        }
        while (Ops<M>::any(ext) && !stopped) {
            const int w = Ops<M>::pop_lowest(ext);
            const M wbit = Ops<M>::of(w);
            // Nodes considered at this level may not be re-added deeper:
            // they become forbidden, which removes duplicates. `w` is
            // already out of `ext` and lands in the forbidden set, so
            // the extension set needs no explicit `~wbit`.
            M new_forbidden = forbidden | wbit | ext;
            M new_ext =
                ext | Ops<M>::andnot(adj[w] & allowed, new_forbidden);
            extend(sub | wbit, new_ext, new_forbidden, depth + 1);
            forbidden |= wbit;
        }
    }

    std::uint64_t
    run()
    {
        M todo = allowed;
        while (Ops<M>::any(todo) && !stopped) {
            const int root = Ops<M>::pop_lowest(todo);
            // Roots are processed in ascending order; processed roots
            // are excluded so each subset is found from its min node.
            M forbidden = Ops<M>::first_n(root + 1);
            M ext = Ops<M>::andnot(adj[root] & allowed, forbidden);
            extend(Ops<M>::of(root), ext, forbidden, 1);
        }
        return produced;
    }
};

} // namespace

std::uint64_t
enumerate_connected_subsets(const Graph& g, int k, const NodeMask& allowed,
                            const std::function<bool(const NodeMask&)>& cb,
                            std::uint64_t max_results)
{
    if (k <= 0 || k > g.num_nodes())
        return 0;
    std::uint64_t step_budget =
        max_results == UINT64_MAX
            ? UINT64_MAX
            : std::max<std::uint64_t>(1'000'000, max_results * 256);
    const int n = g.num_nodes();
    if (n <= 64) {
        std::vector<std::uint64_t> adj(n);
        for (int v = 0; v < n; ++v)
            adj[v] = g.neighbors(v).word(0);
        Enumerator<std::uint64_t> e{adj, k, allowed.word(0),
                                    cb,  max_results, step_budget};
        return e.run();
    }
    Enumerator<NodeMask> e{g.adjacency(), k,           allowed,
                           cb,            max_results, step_budget};
    return e.run();
}

std::uint64_t
count_connected_subsets(const Graph& g, int k, const NodeMask& allowed,
                        std::uint64_t cap)
{
    return enumerate_connected_subsets(
        g, k, allowed, [](const NodeMask&) { return true; }, cap);
}

std::vector<NodeMask>
sample_connected_subsets(const Graph& g, int k, const NodeMask& allowed,
                         int samples, Rng& rng)
{
    std::vector<NodeMask> out;
    if (k <= 0 || allowed.count() < k)
        return out;

    std::vector<int> seeds = Graph::mask_to_nodes(allowed);
    std::vector<int> choices;
    for (int s = 0; s < samples; ++s) {
        int seed = seeds[s % seeds.size()];
        NodeMask sub = NodeMask::of(seed);
        NodeMask frontier = g.neighbors(seed);
        // Randomized growth: repeatedly add a random frontier node.
        for (int size = 1; size < k; ++size) {
            frontier = (frontier & allowed).andnot(sub);
            if (frontier.none()) {
                sub = NodeMask{};
                break; // dead end; try next seed
            }
            choices.clear();
            for (int v : frontier)
                choices.push_back(v);
            int pick = choices[rng.next_below(choices.size())];
            sub.set(pick);
            frontier |= g.neighbors(pick);
        }
        if (sub.count() == k)
            out.push_back(sub);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::uint64_t
binomial(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return 0;
    k = std::min(k, n - k);
    // 128-bit intermediates: C(n, i) * num can exceed 64 bits even when
    // the final value fits.
    unsigned __int128 result = 1;
    for (std::uint64_t i = 1; i <= k; ++i) {
        std::uint64_t num = n - k + i;
        result = result * num / i;
        if (result > static_cast<unsigned __int128>(UINT64_MAX))
            return UINT64_MAX;
    }
    return static_cast<std::uint64_t>(result);
}

} // namespace vnpu::graph
