#include "graph/enumerate.h"

#include <algorithm>

#include "sim/log.h"

namespace vnpu::graph {

namespace {

/**
 * Mask-representation shim for the enumerator. Graphs of at most 64
 * nodes — every pre-CoreSet workload, and the region sizes the golden
 * traces pin — enumerate on plain `uint64_t` words extracted from the
 * CoreSet adjacency; only larger meshes pay for wide masks. Both
 * representations traverse bits in ascending order, so the emitted
 * subset sequence is identical.
 */
template <typename M>
struct Ops;

template <>
struct Ops<std::uint64_t> {
    static bool any(std::uint64_t m) { return m != 0; }
    static int
    pop_lowest(std::uint64_t& m)
    {
        const int b = __builtin_ctzll(m);
        m &= m - 1;
        return b;
    }
    static std::uint64_t of(int b) { return std::uint64_t{1} << b; }
    static std::uint64_t
    first_n(int n)
    {
        return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
    }
    static std::uint64_t
    andnot(std::uint64_t a, std::uint64_t b)
    {
        return a & ~b;
    }
    static int count(std::uint64_t m) { return __builtin_popcountll(m); }
    static std::uint64_t narrow(const NodeMask& m) { return m.word(0); }
    static NodeMask widen(std::uint64_t m) { return NodeMask::from_word(m); }
};

template <>
struct Ops<NodeMask> {
    static bool any(const NodeMask& m) { return m.any(); }
    static int pop_lowest(NodeMask& m) { return m.pop_lowest(); }
    static NodeMask of(int b) { return NodeMask::of(b); }
    static NodeMask first_n(int n) { return NodeMask::first_n(n); }
    static NodeMask
    andnot(const NodeMask& a, const NodeMask& b)
    {
        return a.andnot(b);
    }
    static int count(const NodeMask& m) { return m.count(); }
    static const NodeMask& narrow(const NodeMask& m) { return m; }
    static const NodeMask& widen(const NodeMask& m) { return m; }
};

/**
 * Recursive exclusive-neighborhood expansion. `sub` is the current
 * connected set; `ext` are nodes that may still be added (all > root in
 * id order or discovered through the subgraph), guaranteeing each vertex
 * set is generated exactly once.
 */
template <typename M>
struct Enumerator {
    const std::vector<M>& adj;
    int k;
    M allowed;
    const std::function<bool(const NodeMask&)>& cb;
    std::uint64_t max_results;
    std::uint64_t step_budget;
    std::uint64_t produced = 0;
    std::uint64_t steps = 0;
    bool stopped = false;

    void
    extend(const M& sub, M ext, M forbidden, int depth)
    {
        if (stopped)
            return;
        // When results are capped, also bound the search-tree walk:
        // for k close to |allowed| the output set is tiny but the DFS
        // tree of smaller connected subsets is exponential.
        if (++steps > step_budget) {
            stopped = true;
            return;
        }
        if (depth == k) {
            ++produced;
            if (!cb(Ops<M>::widen(sub)) || produced >= max_results)
                stopped = true;
            return;
        }
        while (Ops<M>::any(ext) && !stopped) {
            const int w = Ops<M>::pop_lowest(ext);
            const M wbit = Ops<M>::of(w);
            // Nodes considered at this level may not be re-added deeper:
            // they become forbidden, which removes duplicates. `w` is
            // already out of `ext` and lands in the forbidden set, so
            // the extension set needs no explicit `~wbit`.
            M new_forbidden = forbidden | wbit | ext;
            M new_ext =
                ext | Ops<M>::andnot(adj[w] & allowed, new_forbidden);
            extend(sub | wbit, new_ext, new_forbidden, depth + 1);
            forbidden |= wbit;
        }
    }

    std::uint64_t
    run()
    {
        M todo = allowed;
        while (Ops<M>::any(todo) && !stopped) {
            const int root = Ops<M>::pop_lowest(todo);
            // Roots are processed in ascending order; processed roots
            // are excluded so each subset is found from its min node.
            M forbidden = Ops<M>::first_n(root + 1);
            M ext = Ops<M>::andnot(adj[root] & allowed, forbidden);
            extend(Ops<M>::of(root), ext, forbidden, 1);
        }
        return produced;
    }
};

/**
 * VF2-style backtracking state. Pattern vertices are placed in a fixed
 * most-constrained-first `order`; the candidate set for a vertex is the
 * common host neighborhood of its already-placed pattern neighbors
 * intersected with its precomputed degree/label-compatible hosts. The
 * induced property is enforced by one mask equality per attempt:
 * `hadj[h] & used == req` says h touches exactly the images of the
 * vertex's placed pattern neighbors, no other placed node.
 */
template <typename M>
struct IsoSearcher {
    const std::vector<M>& hadj;
    int k;
    const std::vector<int>& order;
    /** earlier[v]: pattern neighbors of v placed before v in `order`. */
    const std::vector<std::vector<int>>& earlier;
    /** compat[v]: allowed hosts passing the degree/label prefilter. */
    const std::vector<M>& compat;
    std::uint64_t max_steps;

    std::vector<int> img;
    M used{};
    std::uint64_t steps = 0;
    bool exhausted = false;

    bool
    dfs(int pos)
    {
        if (pos == k)
            return true;
        const int v = order[pos];
        M req{};
        M cand;
        if (earlier[v].empty()) {
            // Anchor (or a new component): any unused compatible host.
            cand = Ops<M>::andnot(compat[v], used);
        } else {
            cand = hadj[img[earlier[v].front()]];
            req = Ops<M>::of(img[earlier[v].front()]);
            for (std::size_t i = 1; i < earlier[v].size(); ++i) {
                const int h = img[earlier[v][i]];
                cand = cand & hadj[h];
                req = req | Ops<M>::of(h);
            }
            cand = Ops<M>::andnot(cand & compat[v], used);
        }
        while (Ops<M>::any(cand)) {
            if (++steps > max_steps) {
                exhausted = true;
                return false;
            }
            const int h = Ops<M>::pop_lowest(cand);
            if (!(M(hadj[h] & used) == req))
                continue; // would break the induced property
            img[v] = h;
            used = used | Ops<M>::of(h);
            if (dfs(pos + 1))
                return true;
            if (exhausted)
                return false;
            used = Ops<M>::andnot(used, Ops<M>::of(h));
        }
        return false;
    }
};

template <typename M>
IsoResult
iso_search(const Graph& pattern, const Graph& host, const NodeMask& allowed,
           const IsoOptions& opt)
{
    IsoResult res;
    const int k = pattern.num_nodes();
    const int n = host.num_nodes();

    std::vector<M> hadj(n);
    for (int v = 0; v < n; ++v)
        hadj[v] = Ops<M>::narrow(host.neighbors(v));
    const M wide_allowed = Ops<M>::narrow(allowed);

    // Host degrees restricted to the allowed region: every image of a
    // pattern neighbor also lands in `allowed`.
    std::vector<int> hdeg(n, 0);
    std::vector<int> hseq;
    hseq.reserve(allowed.count());
    for (int h : allowed) {
        hdeg[h] = Ops<M>::count(hadj[h] & wide_allowed);
        hseq.push_back(hdeg[h]);
    }

    // Degree-sequence prefilter: the i-th largest pattern degree must
    // fit under the i-th largest allowed host degree.
    std::vector<int> pseq = pattern.degree_sequence();
    std::sort(hseq.begin(), hseq.end(), std::greater<int>());
    if (pseq.size() > hseq.size())
        return res;
    for (std::size_t i = 0; i < pseq.size(); ++i)
        if (pseq[i] > hseq[i])
            return res;

    // Per-vertex candidate hosts under degree and label compatibility.
    std::vector<M> compat(k);
    for (int p = 0; p < k; ++p) {
        const int pd = pattern.degree(p);
        M m{};
        for (int h : allowed) {
            if (hdeg[h] < pd)
                continue;
            if (opt.node_compat
                    ? !opt.node_compat(pattern.label(p), host.label(h))
                    : pattern.label(p) != host.label(h))
                continue;
            m = m | Ops<M>::of(h);
        }
        if (!Ops<M>::any(m))
            return res; // some pattern vertex has no possible host
        compat[p] = m;
    }

    // Most-constrained-first order: maximize placed neighbors (frontier
    // growth), then degree; ties break on the lowest id (deterministic).
    std::vector<int> order;
    order.reserve(k);
    std::vector<std::vector<int>> earlier(k);
    std::vector<char> placed(k, 0);
    std::vector<int> placed_nbrs(k, 0);
    for (int pos = 0; pos < k; ++pos) {
        int best = -1;
        for (int v = 0; v < k; ++v) {
            if (placed[v])
                continue;
            if (best < 0 || placed_nbrs[v] > placed_nbrs[best] ||
                (placed_nbrs[v] == placed_nbrs[best] &&
                 pattern.degree(v) > pattern.degree(best)))
                best = v;
        }
        for (int u : pattern.neighbors(best))
            if (placed[u])
                earlier[best].push_back(u);
        placed[best] = 1;
        order.push_back(best);
        for (int u : pattern.neighbors(best))
            if (!placed[u])
                ++placed_nbrs[u];
    }

    IsoSearcher<M> s{hadj,  k,        order, earlier,
                     compat, opt.max_steps, std::vector<int>(k, -1)};
    const bool found = s.dfs(0);
    res.steps = s.steps;
    res.budget_exhausted = s.exhausted;
    if (found) {
        res.found = true;
        res.mapping = std::move(s.img);
    }
    return res;
}

} // namespace

IsoResult
find_induced_isomorphism(const Graph& pattern, const Graph& host,
                         const NodeMask& allowed, const IsoOptions& opt)
{
    IsoResult res;
    const int k = pattern.num_nodes();
    if (k == 0) {
        res.found = true;
        return res;
    }
    NodeMask in_host = allowed & NodeMask::first_n(host.num_nodes());
    if (in_host.count() < k)
        return res;
    if (host.num_nodes() <= 64)
        return iso_search<std::uint64_t>(pattern, host, in_host, opt);
    return iso_search<NodeMask>(pattern, host, in_host, opt);
}

std::uint64_t
enumerate_connected_subsets(const Graph& g, int k, const NodeMask& allowed,
                            const std::function<bool(const NodeMask&)>& cb,
                            std::uint64_t max_results)
{
    if (k <= 0 || k > g.num_nodes())
        return 0;
    std::uint64_t step_budget =
        max_results == UINT64_MAX
            ? UINT64_MAX
            : std::max<std::uint64_t>(1'000'000, max_results * 256);
    const int n = g.num_nodes();
    if (n <= 64) {
        std::vector<std::uint64_t> adj(n);
        for (int v = 0; v < n; ++v)
            adj[v] = g.neighbors(v).word(0);
        Enumerator<std::uint64_t> e{adj, k, allowed.word(0),
                                    cb,  max_results, step_budget};
        return e.run();
    }
    Enumerator<NodeMask> e{g.adjacency(), k,           allowed,
                           cb,            max_results, step_budget};
    return e.run();
}

std::uint64_t
count_connected_subsets(const Graph& g, int k, const NodeMask& allowed,
                        std::uint64_t cap)
{
    return enumerate_connected_subsets(
        g, k, allowed, [](const NodeMask&) { return true; }, cap);
}

std::vector<NodeMask>
sample_connected_subsets(const Graph& g, int k, const NodeMask& allowed,
                         int samples, Rng& rng)
{
    std::vector<NodeMask> out;
    if (k <= 0 || allowed.count() < k)
        return out;

    std::vector<int> seeds = Graph::mask_to_nodes(allowed);
    // Word-windowed growth state. The legacy loop filtered the frontier
    // each step (`frontier = (frontier & allowed).andnot(sub)`) before
    // carrying it forward; carrying the unfiltered union F and masking
    // per step is equivalent — `allowed` is constant and `sub` only
    // grows, so an element removed by an early filter is removed by the
    // late one too. That makes every step a few words of work inside
    // the region's window instead of five full-width mask operations.
    std::uint64_t fr[NodeMask::kWords], sb[NodeMask::kWords];
    std::uint64_t aw[NodeMask::kWords];
    for (int wi = 0; wi < NodeMask::kWords; ++wi)
        aw[wi] = allowed.word(wi);
    for (int s = 0; s < samples; ++s) {
        int seed = seeds[s % seeds.size()];
        std::fill(fr, fr + NodeMask::kWords, 0);
        std::fill(sb, sb + NodeMask::kWords, 0);
        sb[seed >> 6] = std::uint64_t{1} << (seed & 63);
        int wlo = NodeMask::kWords, whi = -1;
        {
            const NodeMask& nb = g.neighbors(seed);
            for (int wi = 0; wi < NodeMask::kWords; ++wi) {
                if (std::uint64_t w = nb.word(wi)) {
                    fr[wi] = w;
                    wlo = std::min(wlo, wi);
                    whi = std::max(whi, wi);
                }
            }
        }
        // Randomized growth: repeatedly add a random frontier node.
        // One rng draw per step, uniform over the live frontier in
        // ascending id order: the exact draw sequence (and output) of
        // the full-width CoreSet count()/nth() implementation.
        bool dead = false;
        int size = 1;
        for (; size < k; ++size) {
            std::uint64_t live[NodeMask::kWords];
            int count = 0;
            for (int wi = wlo; wi <= whi; ++wi) {
                live[wi] = fr[wi] & aw[wi] & ~sb[wi];
                count += __builtin_popcountll(live[wi]);
            }
            if (count == 0) {
                dead = true;
                break; // dead end; try next seed
            }
            int r = static_cast<int>(rng.next_below(count));
            int pw = wlo;
            while (true) {
                int pc = __builtin_popcountll(live[pw]);
                if (r < pc)
                    break;
                r -= pc;
                ++pw;
            }
            std::uint64_t w = live[pw];
            while (r--)
                w &= w - 1;
            int pick = (pw << 6) + __builtin_ctzll(w);
            sb[pick >> 6] |= std::uint64_t{1} << (pick & 63);
            const NodeMask& nb = g.neighbors(pick);
            for (int wi = 0; wi < NodeMask::kWords; ++wi) {
                if (std::uint64_t nw = nb.word(wi)) {
                    fr[wi] |= nw;
                    wlo = std::min(wlo, wi);
                    whi = std::max(whi, wi);
                }
            }
        }
        if (!dead && size == k) {
            NodeMask sub;
            for (int wi = 0; wi < NodeMask::kWords; ++wi) {
                std::uint64_t w = sb[wi];
                while (w) {
                    sub.set((wi << 6) + __builtin_ctzll(w));
                    w &= w - 1;
                }
            }
            out.push_back(sub);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::uint64_t
binomial(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return 0;
    k = std::min(k, n - k);
    // 128-bit intermediates: C(n, i) * num can exceed 64 bits even when
    // the final value fits.
    unsigned __int128 result = 1;
    for (std::uint64_t i = 1; i <= k; ++i) {
        std::uint64_t num = n - k + i;
        result = result * num / i;
        if (result > static_cast<unsigned __int128>(UINT64_MAX))
            return UINT64_MAX;
    }
    return static_cast<std::uint64_t>(result);
}

} // namespace vnpu::graph
