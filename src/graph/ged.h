/**
 * @file
 * Topology (graph) edit distance between equal-size topologies, as used
 * by the hypervisor's similar-topology mapping (paper §4.3, Algorithm 1).
 *
 * Given a requested virtual topology T_req and a candidate physical
 * subgraph, we search for the node bijection minimizing
 *
 *     sum node-substitution costs (NodeMatch)
 *   + sum edge-deletion costs for T_req edges with no image (EdgeMatch)
 *   + sum edge-insertion costs for candidate edges with no preimage.
 *
 * Exact search (branch and bound) is exponential and used for small
 * graphs; larger instances use a seeded greedy assignment refined by
 * 2-opt swaps, mirroring the paper's observation that minimum TED is
 * NP-hard and must be approximated/pruned.
 */

#ifndef VNPU_GRAPH_GED_H
#define VNPU_GRAPH_GED_H

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "graph/graph.h"

namespace vnpu::graph {

/** Customizable edit costs (Algorithm 1's NodeMatch / EdgeMatch). */
struct GedOptions {
    /**
     * Cost of mapping a T_req node with label `a` onto a candidate node
     * with label `b` (node substitution). Default: 0 if equal, 1 if not.
     */
    std::function<double(int a, int b)> node_cost;

    /**
     * Cost of a T_req edge (u, v) that has no image in the candidate
     * (edge deletion). Critical dataflow edges can return a larger
     * penalty here. Default: 1.
     */
    std::function<double(int u, int v)> edge_del_cost;

    /** Cost of a candidate edge with no preimage (edge insertion). */
    double edge_ins_cost = 1.0;

    /** Largest graph solved exactly; bigger graphs use approximation. */
    int exact_limit = 9;

    /** Number of restart seeds for the approximate search. */
    int approx_seeds = 4;

    /**
     * Prune-only upper bound for the exact search: branches whose
     * accumulated cost reaches `cost_bound` are cut. `exact_ged` then
     * returns a bit-identical (cost, mapping) whenever the true minimum
     * is < cost_bound, and {infinity, {}} otherwise — the caller's
     * "does this beat my running best?" test is unchanged either way
     * (the mapper funnel threads its running best through here).
     * Ignored by `approx_ged`: aborting its 2-opt descent mid-way would
     * change results. Default: unbounded.
     */
    double cost_bound = std::numeric_limits<double>::infinity();
};

/** Result: the minimal cost found and the realizing node bijection. */
struct GedResult {
    double cost = 0.0;
    /** mapping[i] = candidate node that plays T_req node i. */
    std::vector<int> mapping;
};

/** Cost of a specific bijection (utility, also used by tests). */
double ged_mapping_cost(const Graph& req, const Graph& cand,
                        const std::vector<int>& mapping,
                        const GedOptions& opt = {});

/** Exact minimum TED by branch and bound. @pre req.n == cand.n <= ~10 */
GedResult exact_ged(const Graph& req, const Graph& cand,
                    const GedOptions& opt = {});

/** Approximate minimum TED: greedy BFS-seeded assignment + 2-opt. */
GedResult approx_ged(const Graph& req, const Graph& cand,
                     const GedOptions& opt = {});

/** Dispatch: exact for small graphs, approximate otherwise. */
GedResult ged(const Graph& req, const Graph& cand,
              const GedOptions& opt = {});

/**
 * Batch scorer for one request against many candidates. Precomputes
 * everything `ged()` would re-derive per call from the request side
 * (dense adjacency, degree-sorted anchors, per-seed BFS orders) and
 * builds each candidate's dense form straight from a host-graph node
 * mask, skipping the `induced()` materialization.
 *
 * `score_subset(host, mask)` returns a result bit-identical to
 * `ged(req, host.induced(Graph::mask_to_nodes(mask)), opt)`: the
 * subset keeps ascending node order, so the candidate seen by the
 * search is the same graph, and the search itself is shared code.
 * Thread-safe for concurrent calls on one scorer (scratch is
 * thread-local; the shared request side is read-only).
 */
class GedScorer {
  public:
    GedScorer(const Graph& req, const GedOptions& opt);
    ~GedScorer();
    GedScorer(const GedScorer&) = delete;
    GedScorer& operator=(const GedScorer&) = delete;

    GedResult score_subset(const Graph& host,
                           const NodeMask& mask) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

// ---- Admissible lower bounds ------------------------------------------

/**
 * Per-graph summary for repeated lower-bound queries: the mapper
 * precomputes the request side once and derives the candidate side from
 * the masked mesh adjacency without building an induced Graph.
 */
struct GedProfile {
    std::vector<int> degrees_desc; ///< Degrees, sorted descending.
    std::vector<int> labels_sorted; ///< Labels, sorted ascending.
    int num_edges = 0;
};

GedProfile ged_profile(const Graph& g);

/**
 * Admissible lower bound on `ged(req, cand, opt)` for equal-size graphs:
 * any valid bound must never exceed the true minimum, so a candidate
 * with `ged_lower_bound(...) > best` can be discarded without running
 * the search.
 *
 *  - Node term: the minimum number of label mismatches any bijection
 *    incurs is the label-multiset difference; each costs 1 under the
 *    default node cost. Custom `node_cost` => term is 0 (no bound on an
 *    arbitrary cost function).
 *  - Edge term: any bijection needs at least
 *    max(ceil(sum_i |d_req[i] - d_cand[i]| / 2), |E_req - E_cand|)
 *    edge edits (degree sequences compared sorted; rearrangement
 *    inequality), each costing at least min(1, edge_ins_cost) under the
 *    default deletion cost. Custom `edge_del_cost` => only the
 *    guaranteed-insertion count max(0, E_cand - E_req) * edge_ins_cost
 *    remains.
 */
double ged_lower_bound(const GedProfile& req, const GedProfile& cand,
                       const GedOptions& opt = {});
double ged_lower_bound(const Graph& req, const Graph& cand,
                       const GedOptions& opt = {});

} // namespace vnpu::graph

#endif // VNPU_GRAPH_GED_H
