/**
 * @file
 * Topology (graph) edit distance between equal-size topologies, as used
 * by the hypervisor's similar-topology mapping (paper §4.3, Algorithm 1).
 *
 * Given a requested virtual topology T_req and a candidate physical
 * subgraph, we search for the node bijection minimizing
 *
 *     sum node-substitution costs (NodeMatch)
 *   + sum edge-deletion costs for T_req edges with no image (EdgeMatch)
 *   + sum edge-insertion costs for candidate edges with no preimage.
 *
 * Exact search (branch and bound) is exponential and used for small
 * graphs; larger instances use a seeded greedy assignment refined by
 * 2-opt swaps, mirroring the paper's observation that minimum TED is
 * NP-hard and must be approximated/pruned.
 */

#ifndef VNPU_GRAPH_GED_H
#define VNPU_GRAPH_GED_H

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace vnpu::graph {

/** Customizable edit costs (Algorithm 1's NodeMatch / EdgeMatch). */
struct GedOptions {
    /**
     * Cost of mapping a T_req node with label `a` onto a candidate node
     * with label `b` (node substitution). Default: 0 if equal, 1 if not.
     */
    std::function<double(int a, int b)> node_cost;

    /**
     * Cost of a T_req edge (u, v) that has no image in the candidate
     * (edge deletion). Critical dataflow edges can return a larger
     * penalty here. Default: 1.
     */
    std::function<double(int u, int v)> edge_del_cost;

    /** Cost of a candidate edge with no preimage (edge insertion). */
    double edge_ins_cost = 1.0;

    /** Largest graph solved exactly; bigger graphs use approximation. */
    int exact_limit = 9;

    /** Number of restart seeds for the approximate search. */
    int approx_seeds = 4;
};

/** Result: the minimal cost found and the realizing node bijection. */
struct GedResult {
    double cost = 0.0;
    /** mapping[i] = candidate node that plays T_req node i. */
    std::vector<int> mapping;
};

/** Cost of a specific bijection (utility, also used by tests). */
double ged_mapping_cost(const Graph& req, const Graph& cand,
                        const std::vector<int>& mapping,
                        const GedOptions& opt = {});

/** Exact minimum TED by branch and bound. @pre req.n == cand.n <= ~10 */
GedResult exact_ged(const Graph& req, const Graph& cand,
                    const GedOptions& opt = {});

/** Approximate minimum TED: greedy BFS-seeded assignment + 2-opt. */
GedResult approx_ged(const Graph& req, const Graph& cand,
                     const GedOptions& opt = {});

/** Dispatch: exact for small graphs, approximate otherwise. */
GedResult ged(const Graph& req, const Graph& cand,
              const GedOptions& opt = {});

} // namespace vnpu::graph

#endif // VNPU_GRAPH_GED_H
