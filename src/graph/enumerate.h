/**
 * @file
 * Enumeration of connected induced subgraphs (candidate vNPU regions).
 *
 * The hypervisor's topology mapper needs "all candidate NPU topologies
 * with the required number of cores" (Algorithm 1). Exhaustive
 * enumeration is exponential, so we provide both an exact enumerator
 * (each connected vertex set reported exactly once) and a deterministic
 * seeded-growth sampler for large instances.
 */

#ifndef VNPU_GRAPH_ENUMERATE_H
#define VNPU_GRAPH_ENUMERATE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "sim/rng.h"

namespace vnpu::graph {

/**
 * Enumerate every connected vertex subset of size `k` contained in
 * `allowed`, invoking `cb` for each. Each subset is reported exactly
 * once (Wernicke-style exclusive-neighborhood expansion). Enumeration
 * stops early when `cb` returns false or `max_results` subsets have
 * been produced.
 *
 * @return the number of subsets reported.
 */
std::uint64_t enumerate_connected_subsets(
    const Graph& g, int k, const NodeMask& allowed,
    const std::function<bool(const NodeMask&)>& cb,
    std::uint64_t max_results = UINT64_MAX);

/** Count connected subsets of size k (capped at `cap`). */
std::uint64_t count_connected_subsets(const Graph& g, int k,
                                      const NodeMask& allowed,
                                      std::uint64_t cap = UINT64_MAX);

/**
 * Deterministically sample up to `samples` connected size-`k` subsets of
 * `allowed` by randomized BFS growth from every possible seed node.
 * Duplicates are removed; the result is sorted for reproducibility.
 */
std::vector<NodeMask> sample_connected_subsets(const Graph& g, int k,
                                               const NodeMask& allowed,
                                               int samples, Rng& rng);

/** Binomial coefficient with saturation at UINT64_MAX. */
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

// ---- Exact induced-subgraph isomorphism -------------------------------

/**
 * Default backtracking-step budget, shared by every layer that exposes
 * one (`IsoOptions`, `hyp::MappingRequest`, `hyp::VnpuSpec`) so the
 * defaults cannot drift apart.
 */
inline constexpr std::uint64_t kDefaultIsoSearchBudget = 4'000'000;

/** Tuning knobs for `find_induced_isomorphism`. */
struct IsoOptions {
    /**
     * Backtracking-step budget (one step = one attempted vertex
     * placement). A miss on a 1024-node host terminates within this
     * bound; `IsoResult::budget_exhausted` distinguishes "gave up" from
     * "proved absent".
     */
    std::uint64_t max_steps = kDefaultIsoSearchBudget;

    /**
     * Node compatibility: may pattern label `a` be hosted by host label
     * `b`? Default (null): labels must be equal.
     */
    std::function<bool(int a, int b)> node_compat;
};

/** Outcome of an induced-isomorphism search. */
struct IsoResult {
    bool found = false;
    /** True when the search hit `max_steps` before covering the space;
     *  `found == false` is then inconclusive. */
    bool budget_exhausted = false;
    /** Vertex placements attempted (search effort, for stats/benches). */
    std::uint64_t steps = 0;
    /** mapping[p] = host node playing pattern node p (when found). */
    std::vector<int> mapping;
};

/**
 * Find an injective mapping of `pattern` onto an *induced* subgraph of
 * `host` restricted to the `allowed` node set: pattern edges map to
 * host edges and pattern non-edges to host non-edges, so the image
 * region realizes exactly the requested topology (TED 0).
 *
 * VF2-style anchored backtracking with frontier propagation: after the
 * anchor, candidates for each pattern vertex are the common host
 * neighborhood of its already-placed pattern neighbors, filtered by an
 * exact adjacency-mask check (which also enforces non-adjacency) and by
 * degree/label prefilters computed up front. Disconnected patterns are
 * handled by re-anchoring per component. Deterministic: hosts are tried
 * in ascending id order, so the lowest-anchored embedding wins.
 *
 * Graphs of <= 64 host nodes run on plain u64 masks (the same fast path
 * the subset enumerator uses); larger hosts use wide `NodeMask`s.
 */
IsoResult find_induced_isomorphism(const Graph& pattern, const Graph& host,
                                   const NodeMask& allowed,
                                   const IsoOptions& opt = {});

} // namespace vnpu::graph

#endif // VNPU_GRAPH_ENUMERATE_H
