/**
 * @file
 * Enumeration of connected induced subgraphs (candidate vNPU regions).
 *
 * The hypervisor's topology mapper needs "all candidate NPU topologies
 * with the required number of cores" (Algorithm 1). Exhaustive
 * enumeration is exponential, so we provide both an exact enumerator
 * (each connected vertex set reported exactly once) and a deterministic
 * seeded-growth sampler for large instances.
 */

#ifndef VNPU_GRAPH_ENUMERATE_H
#define VNPU_GRAPH_ENUMERATE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "sim/rng.h"

namespace vnpu::graph {

/**
 * Enumerate every connected vertex subset of size `k` contained in
 * `allowed`, invoking `cb` for each. Each subset is reported exactly
 * once (Wernicke-style exclusive-neighborhood expansion). Enumeration
 * stops early when `cb` returns false or `max_results` subsets have
 * been produced.
 *
 * @return the number of subsets reported.
 */
std::uint64_t enumerate_connected_subsets(
    const Graph& g, int k, const NodeMask& allowed,
    const std::function<bool(const NodeMask&)>& cb,
    std::uint64_t max_results = UINT64_MAX);

/** Count connected subsets of size k (capped at `cap`). */
std::uint64_t count_connected_subsets(const Graph& g, int k,
                                      const NodeMask& allowed,
                                      std::uint64_t cap = UINT64_MAX);

/**
 * Deterministically sample up to `samples` connected size-`k` subsets of
 * `allowed` by randomized BFS growth from every possible seed node.
 * Duplicates are removed; the result is sorted for reproducibility.
 */
std::vector<NodeMask> sample_connected_subsets(const Graph& g, int k,
                                               const NodeMask& allowed,
                                               int samples, Rng& rng);

/** Binomial coefficient with saturation at UINT64_MAX. */
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

} // namespace vnpu::graph

#endif // VNPU_GRAPH_ENUMERATE_H
