#include "graph/ged.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "sim/log.h"

namespace vnpu::graph {

namespace {

double
node_cost_of(const GedOptions& opt, int a, int b)
{
    if (opt.node_cost)
        return opt.node_cost(a, b);
    return a == b ? 0.0 : 1.0;
}

double
edge_del_cost_of(const GedOptions& opt, int u, int v)
{
    if (opt.edge_del_cost)
        return opt.edge_del_cost(u, v);
    return 1.0;
}

/**
 * Compact adjacency mirror of a Graph for the GED inner loops: a dense
 * bitmatrix (ceil(n/64) words per row, vs the 16-word `NodeMask` rows)
 * plus flat ascending neighbor lists, so `has()` is one shift and a
 * neighbor walk touches only real neighbors. Iteration order is
 * ascending node id throughout — identical to `NodeMask` traversal — so
 * every floating-point accumulation below happens in the same order as
 * before this mirror existed and results stay bit-identical.
 */
struct DenseGraph {
    int n = 0;
    int wpr = 0; ///< bitmatrix words per row
    std::vector<std::uint64_t> bits;
    std::vector<int> nbr;     ///< concatenated ascending neighbor lists
    std::vector<int> nbr_off; ///< nbr_off[v]..nbr_off[v+1] spans node v
    std::vector<int> label;
    int num_edges = 0;

    explicit DenseGraph(const Graph& g)
        : n(g.num_nodes()), wpr((n + 63) >> 6)
    {
        bits.assign(static_cast<std::size_t>(n) * wpr, 0);
        nbr_off.assign(n + 1, 0);
        label.resize(n);
        int total = 0;
        for (int v = 0; v < n; ++v) {
            label[v] = g.label(v);
            total += g.degree(v);
        }
        nbr.reserve(total);
        for (int v = 0; v < n; ++v) {
            nbr_off[v] = static_cast<int>(nbr.size());
            for (int u : g.neighbors(v)) {
                nbr.push_back(u);
                bits[static_cast<std::size_t>(v) * wpr + (u >> 6)] |=
                    std::uint64_t{1} << (u & 63);
            }
        }
        nbr_off[n] = static_cast<int>(nbr.size());
        num_edges = total / 2;
    }

    /**
     * The subgraph of `host` induced by `mask`, nodes renumbered in
     * ascending id order — the same graph (labels, adjacency, order)
     * `DenseGraph(host.induced(Graph::mask_to_nodes(mask)))` builds,
     * without materializing the intermediate `Graph`.
     */
    DenseGraph(const Graph& host, const NodeMask& mask)
    {
        static thread_local std::vector<int> rank;
        static thread_local std::vector<int> ids;
        rank.resize(host.num_nodes());
        ids.clear();
        for (int v : mask) {
            rank[v] = static_cast<int>(ids.size());
            ids.push_back(v);
        }
        n = static_cast<int>(ids.size());
        wpr = (n + 63) >> 6;
        bits.assign(static_cast<std::size_t>(n) * wpr, 0);
        nbr_off.assign(n + 1, 0);
        label.resize(n);
        int total = 0;
        for (int i = 0; i < n; ++i) {
            label[i] = host.label(ids[i]);
            nbr_off[i] = static_cast<int>(nbr.size());
            NodeMask nb = host.neighbors(ids[i]) & mask;
            for (int u : nb) {
                int r = rank[u]; // ascending ids => ascending ranks
                nbr.push_back(r);
                bits[static_cast<std::size_t>(i) * wpr + (r >> 6)] |=
                    std::uint64_t{1} << (r & 63);
                ++total;
            }
        }
        nbr_off[n] = static_cast<int>(nbr.size());
        num_edges = total / 2;
    }

    bool
    has(int a, int b) const
    {
        return (bits[static_cast<std::size_t>(a) * wpr + (b >> 6)] >>
                (b & 63)) &
               1;
    }

    int degree(int v) const { return nbr_off[v + 1] - nbr_off[v]; }
};

double
mapping_cost(const DenseGraph& req, const DenseGraph& cand,
             const std::vector<int>& mapping, const GedOptions& opt)
{
    double cost = 0.0;
    for (int v = 0; v < req.n; ++v)
        cost += node_cost_of(opt, req.label[v], cand.label[mapping[v]]);

    // req edges in (a ascending, b ascending) order — the order
    // Graph::edges() reports them in.
    int matched_edges = 0;
    for (int a = 0; a < req.n; ++a) {
        for (int i = req.nbr_off[a]; i < req.nbr_off[a + 1]; ++i) {
            int b = req.nbr[i];
            if (b <= a)
                continue;
            if (cand.has(mapping[a], mapping[b]))
                ++matched_edges;
            else
                cost += edge_del_cost_of(opt, a, b);
        }
    }
    int extra = cand.num_edges - matched_edges;
    cost += opt.edge_ins_cost * extra;
    return cost;
}

/** Branch-and-bound exact search over bijections. */
struct ExactSearch {
    const DenseGraph& req;
    const DenseGraph& cand;
    const GedOptions& opt;
    int n;
    std::vector<int> mapping;      // req node -> cand node, -1 unset
    std::vector<bool> used;        // cand node used
    std::vector<int> best_mapping;
    double best = std::numeric_limits<double>::infinity();

    /** Cost contributions of assigning req node v -> cand node c. */
    double
    incremental(int v, int c) const
    {
        double cost = node_cost_of(opt, req.label[v], cand.label[c]);
        // Edges between v and already-mapped req nodes.
        for (int u = 0; u < v; ++u) {
            bool e_req = req.has(u, v);
            bool e_cand = cand.has(mapping[u], c);
            if (e_req && !e_cand)
                cost += edge_del_cost_of(opt, u, v);
            else if (!e_req && e_cand)
                cost += opt.edge_ins_cost;
        }
        return cost;
    }

    void
    dfs(int v, double acc)
    {
        if (acc >= best)
            return;
        if (v == n) {
            // Account for candidate edges that involve at least one of
            // the, by now fully assigned, nodes and were not matched --
            // already handled incrementally, so acc is complete.
            best = acc;
            best_mapping = mapping;
            return;
        }
        for (int c = 0; c < n; ++c) {
            if (used[c])
                continue;
            double inc = incremental(v, c);
            if (acc + inc >= best)
                continue;
            mapping[v] = c;
            used[c] = true;
            dfs(v + 1, acc + inc);
            used[c] = false;
            mapping[v] = -1;
        }
    }
};

/**
 * Cost change of swapping the images of req nodes `a` and `b`.
 * Only node terms of a/b and req edges incident to a or b change; the
 * edge (a, b) itself is invariant under the swap.
 */
double
swap_delta(const DenseGraph& req, const DenseGraph& cand,
           const std::vector<int>& map, const GedOptions& opt, int a, int b)
{
    double d = 0.0;
    d -= node_cost_of(opt, req.label[a], cand.label[map[a]]);
    d -= node_cost_of(opt, req.label[b], cand.label[map[b]]);
    d += node_cost_of(opt, req.label[a], cand.label[map[b]]);
    d += node_cost_of(opt, req.label[b], cand.label[map[a]]);

    auto edge_terms = [&](int x, int other, int new_img) {
        for (int i = req.nbr_off[x]; i < req.nbr_off[x + 1]; ++i) {
            int u = req.nbr[i];
            if (u == other)
                continue; // edge (a, b): unchanged by the swap
            bool old_matched = cand.has(map[x], map[u]);
            // After the swap, u != a and u != b keeps its image.
            bool new_matched = cand.has(new_img, map[u]);
            if (old_matched == new_matched)
                continue;
            // A req edge losing its image costs one deletion and turns
            // the orphaned candidate edge into one insertion.
            double toggle = edge_del_cost_of(opt, std::min(x, u),
                                             std::max(x, u)) +
                            opt.edge_ins_cost;
            d += old_matched ? toggle : -toggle;
        }
    };
    edge_terms(a, b, map[b]);
    edge_terms(b, a, map[a]);
    return d;
}

/**
 * BFS ordering starting from the highest-degree node, written into
 * `order` (scratch reused by hot callers; the queue doubles as the
 * output since BFS pops in push order).
 */
void
bfs_order_into(const DenseGraph& g, int start, std::vector<int>& order)
{
    static thread_local std::vector<char> seen;
    seen.assign(g.n, 0);
    order.clear();
    order.push_back(start);
    seen[start] = 1;
    for (std::size_t head = 0; head < order.size(); ++head) {
        int v = order[head];
        for (int i = g.nbr_off[v]; i < g.nbr_off[v + 1]; ++i) {
            int u = g.nbr[i];
            if (!seen[u]) {
                seen[u] = 1;
                order.push_back(u);
            }
        }
    }
    // Isolated / unreached nodes go last, in id order.
    if (static_cast<int>(order.size()) < g.n)
        for (int v = 0; v < g.n; ++v)
            if (!seen[v])
                order.push_back(v);
}

std::vector<int>
bfs_order(const DenseGraph& g, int start)
{
    std::vector<int> order;
    bfs_order_into(g, start, order);
    return order;
}

constexpr int kMaxTwoOptPasses = 24;

/**
 * 2-opt refinement of `map` toward a local cost minimum; returns the
 * refined mapping's cost. Two interchangeable implementations:
 *
 * Generic: evaluate `swap_delta` for every pair (a, b) in lexicographic
 * order, apply improving swaps immediately, repeat until a clean pass.
 *
 * Fast path (default costs, n <= 64): every quantity the generic path
 * accumulates is then a small integer — node terms are 0/1, an edge
 * toggle is exactly del(1) + ins(1) = 2.0 — so each IEEE addition is
 * exact and an integer recurrence reproduces the identical swap
 * sequence and the bit-identical final cost. Per-pair deltas collapse
 * to two popcounts via maintained state (images are single bits since
 * n <= 64):
 *
 *   nimg[x] = bitset of images of x's request neighbors
 *   mc[x]   = matched request edges at x
 *           = popcount(cand_row[map[x]] & nimg[x])
 *
 *   delta(a, b) = node terms
 *     + 2 * (mc[a] + mc[b] - 2*[a~b][map[a]~map[b]]
 *            - popcount(cand_row[map[b]] & nimg[a])
 *            - popcount(cand_row[map[a]] & nimg[b]))
 *
 * (a's old matches excluding the swap-invariant (a, b) edge are mc[a]
 * minus that edge's match bit; its new matches are counted against
 * map[b]'s row, where the self-bit cannot occur; symmetrically for b.)
 * A swap's support is local, so only {a, b} and their request
 * neighbors need nimg/mc updates afterwards.
 *
 * When labels are uniform on each side, node terms vanish and a pair
 * with both endpoints fully matched (mc == degree) has old >= new
 * termwise, hence delta >= 0: the scan skips such pairs without
 * evaluating them, which cannot change the applied-swap sequence.
 */
double
approx_refine(const DenseGraph& req, const DenseGraph& cand,
              const GedOptions& opt, std::vector<int>& map)
{
    const int n = req.n;
    const bool fast = n <= 64 && !opt.node_cost && !opt.edge_del_cost &&
                      opt.edge_ins_cost == 1.0;
    if (!fast) {
        double cost = mapping_cost(req, cand, map, opt);
        for (int pass = 0; pass < kMaxTwoOptPasses; ++pass) {
            bool improved = false;
            for (int a = 0; a < n; ++a) {
                for (int b = a + 1; b < n; ++b) {
                    double d = swap_delta(req, cand, map, opt, a, b);
                    if (d < -1e-12) {
                        std::swap(map[a], map[b]);
                        cost += d;
                        improved = true;
                    }
                }
            }
            if (!improved)
                break;
        }
        return cost;
    }

    const std::uint64_t* rrow = req.bits.data();  // wpr == 1
    const std::uint64_t* crow = cand.bits.data(); // wpr == 1
    bool req_uni = true, cand_uni = true;
    for (int v = 1; v < n; ++v) {
        req_uni = req_uni && req.label[v] == req.label[0];
        cand_uni = cand_uni && cand.label[v] == cand.label[0];
    }
    // Uniform per side is enough for zero node DELTAS (constant terms
    // cancel); the initial label-mismatch count stays general.
    const bool uniform = req_uni && cand_uni;

    std::uint64_t nimg[64] = {};
    int mc[64], deg[64];
    for (int v = 0; v < n; ++v) {
        deg[v] = req.degree(v);
        for (int i = req.nbr_off[v]; i < req.nbr_off[v + 1]; ++i)
            nimg[v] |= std::uint64_t{1} << map[req.nbr[i]];
    }
    long long matched2 = 0; // 2x matched request edges
    long long label_mis = 0;
    std::uint64_t umask = 0; // nodes with an unmatched request edge
    for (int v = 0; v < n; ++v) {
        mc[v] = __builtin_popcountll(crow[map[v]] & nimg[v]);
        matched2 += mc[v];
        if (mc[v] < deg[v])
            umask |= std::uint64_t{1} << v;
        if (req.label[v] != cand.label[map[v]])
            ++label_mis;
    }
    long long cost = label_mis + req.num_edges + cand.num_edges - matched2;

    auto update_node = [&](int x) {
        mc[x] = __builtin_popcountll(crow[map[x]] & nimg[x]);
        if (mc[x] < deg[x])
            umask |= std::uint64_t{1} << x;
        else
            umask &= ~(std::uint64_t{1} << x);
    };

    for (int pass = 0; pass < kMaxTwoOptPasses; ++pass) {
        bool improved = false;
        for (int a = 0; a < n; ++a) {
            bool a_unm = !uniform || ((umask >> a) & 1);
            int b = a + 1;
            while (b < n) {
                if (!a_unm) {
                    // b <= 63 here (b < n <= 64), so the shift is safe.
                    std::uint64_t rest = (umask >> b) << b;
                    if (!rest)
                        break;
                    b = __builtin_ctzll(rest);
                }
                const int ma = map[a], mb = map[b];
                long long d =
                    2ll *
                    (mc[a] + mc[b] -
                     2 * static_cast<int>((rrow[a] >> b) &
                                          (crow[ma] >> mb) & 1) -
                     __builtin_popcountll(crow[mb] & nimg[a]) -
                     __builtin_popcountll(crow[ma] & nimg[b]));
                if (!uniform) {
                    const int la = req.label[a], lb = req.label[b];
                    const int ca = cand.label[ma], cb = cand.label[mb];
                    d += (la != cb) + (lb != ca) - (la != ca) -
                         (lb != cb);
                }
                if (d < 0) {
                    map[a] = mb;
                    map[b] = ma;
                    const std::uint64_t flip =
                        (std::uint64_t{1} << ma) ^ (std::uint64_t{1}
                                                    << mb);
                    for (int i = req.nbr_off[a]; i < req.nbr_off[a + 1];
                         ++i)
                        nimg[req.nbr[i]] ^= flip;
                    for (int i = req.nbr_off[b]; i < req.nbr_off[b + 1];
                         ++i)
                        nimg[req.nbr[i]] ^= flip;
                    update_node(a);
                    update_node(b);
                    for (int i = req.nbr_off[a]; i < req.nbr_off[a + 1];
                         ++i)
                        update_node(req.nbr[i]);
                    for (int i = req.nbr_off[b]; i < req.nbr_off[b + 1];
                         ++i)
                        update_node(req.nbr[i]);
                    cost += d;
                    improved = true;
                    a_unm = !uniform || ((umask >> a) & 1);
                }
                ++b;
            }
        }
        if (!improved)
            break;
    }
    return static_cast<double>(cost);
}

/**
 * Seeded approximate search over one (request, candidate) pair with
 * the request-side state (degree-sorted anchors, per-seed BFS orders)
 * precomputed by the caller — `approx_ged` derives it per call, a
 * `GedScorer` hoists it across candidates.
 */
GedResult
approx_core(const DenseGraph& dreq, const DenseGraph& dcand,
            const GedOptions& opt,
            const std::vector<std::vector<int>>& req_orders)
{
    const int n = dreq.n;
    GedResult best;
    best.cost = std::numeric_limits<double>::infinity();

    static thread_local std::vector<int> cand_anchors, mapping, co;
    cand_anchors.resize(n);
    std::iota(cand_anchors.begin(), cand_anchors.end(), 0);
    std::stable_sort(cand_anchors.begin(), cand_anchors.end(),
                     [&](int a, int b) {
                         return dcand.degree(a) > dcand.degree(b);
                     });

    const int seeds = std::max(1, opt.approx_seeds);
    mapping.resize(n);
    for (int s = 0; s < seeds; ++s) {
        const std::vector<int>& ro = req_orders[s];
        bfs_order_into(dcand, cand_anchors[s % n], co);
        for (int i = 0; i < n; ++i)
            mapping[ro[i]] = co[i];

        double cost = approx_refine(dreq, dcand, opt, mapping);
        if (cost < best.cost) {
            best.cost = cost;
            best.mapping = mapping;
        }
        if (best.cost == 0.0)
            break; // exact topology match, cannot improve
    }
    return best;
}

/** Branch-and-bound minimum over bijections (shared by entry points). */
GedResult
exact_core(const DenseGraph& dreq, const DenseGraph& dcand,
           const GedOptions& opt)
{
    const int n = dreq.n;
    ExactSearch search{dreq,
                       dcand,
                       opt,
                       n,
                       std::vector<int>(n, -1),
                       std::vector<bool>(n, false),
                       {},
                       opt.cost_bound};
    search.dfs(0, 0.0);
    if (search.best_mapping.empty())
        return {std::numeric_limits<double>::infinity(), {}};
    return {search.best, search.best_mapping};
}

/** Request anchors (degree-sorted) and per-seed BFS orders. */
void
req_side_state(const DenseGraph& dreq, const GedOptions& opt,
               std::vector<int>& anchors,
               std::vector<std::vector<int>>& orders)
{
    const int n = dreq.n;
    anchors.resize(n);
    std::iota(anchors.begin(), anchors.end(), 0);
    std::stable_sort(anchors.begin(), anchors.end(), [&](int a, int b) {
        return dreq.degree(a) > dreq.degree(b);
    });
    const int seeds = std::max(1, opt.approx_seeds);
    orders.resize(seeds);
    for (int s = 0; s < seeds; ++s)
        orders[s] = bfs_order(dreq, anchors[s % n]);
}

} // namespace

double
ged_mapping_cost(const Graph& req, const Graph& cand,
                 const std::vector<int>& mapping, const GedOptions& opt)
{
    VNPU_ASSERT(static_cast<int>(mapping.size()) == req.num_nodes());
    VNPU_ASSERT(req.num_nodes() == cand.num_nodes());
    DenseGraph dreq(req), dcand(cand);
    return mapping_cost(dreq, dcand, mapping, opt);
}

GedResult
exact_ged(const Graph& req, const Graph& cand, const GedOptions& opt)
{
    VNPU_ASSERT(req.num_nodes() == cand.num_nodes());
    if (req.num_nodes() == 0)
        return {0.0, {}};
    DenseGraph dreq(req), dcand(cand);
    return exact_core(dreq, dcand, opt);
}

GedResult
approx_ged(const Graph& req, const Graph& cand, const GedOptions& opt)
{
    VNPU_ASSERT(req.num_nodes() == cand.num_nodes());
    if (req.num_nodes() == 0)
        return {0.0, {}};
    DenseGraph dreq(req), dcand(cand);
    std::vector<int> anchors;
    std::vector<std::vector<int>> orders;
    req_side_state(dreq, opt, anchors, orders);
    return approx_core(dreq, dcand, opt, orders);
}

GedResult
ged(const Graph& req, const Graph& cand, const GedOptions& opt)
{
    if (req.num_nodes() <= opt.exact_limit)
        return exact_ged(req, cand, opt);
    return approx_ged(req, cand, opt);
}

struct GedScorer::Impl {
    GedOptions opt;
    DenseGraph dreq;
    std::vector<int> req_anchors;
    std::vector<std::vector<int>> req_orders;

    Impl(const Graph& req, const GedOptions& o) : opt(o), dreq(req)
    {
        if (dreq.n > 0)
            req_side_state(dreq, opt, req_anchors, req_orders);
    }
};

GedScorer::GedScorer(const Graph& req, const GedOptions& opt)
    : impl_(std::make_unique<Impl>(req, opt))
{
}

GedScorer::~GedScorer() = default;

GedResult
GedScorer::score_subset(const Graph& host, const NodeMask& mask) const
{
    const Impl& im = *impl_;
    if (im.dreq.n == 0)
        return {0.0, {}};
    DenseGraph dcand(host, mask);
    VNPU_ASSERT(dcand.n == im.dreq.n);
    if (im.dreq.n <= im.opt.exact_limit)
        return exact_core(im.dreq, dcand, im.opt);
    return approx_core(im.dreq, dcand, im.opt, im.req_orders);
}

GedProfile
ged_profile(const Graph& g)
{
    GedProfile p;
    p.degrees_desc = g.degree_sequence();
    p.labels_sorted.reserve(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v)
        p.labels_sorted.push_back(g.label(v));
    std::sort(p.labels_sorted.begin(), p.labels_sorted.end());
    p.num_edges = g.num_edges();
    return p;
}

double
ged_lower_bound(const GedProfile& req, const GedProfile& cand,
                const GedOptions& opt)
{
    VNPU_ASSERT(req.degrees_desc.size() == cand.degrees_desc.size());
    const int n = static_cast<int>(req.degrees_desc.size());
    double lb = 0.0;

    // Node term: minimum label mismatches over all bijections = the
    // label-multiset difference (count elements of req's multiset not
    // present in cand's). Each mismatch costs 1 by default; an arbitrary
    // node_cost admits no bound.
    if (!opt.node_cost) {
        int i = 0, j = 0, common = 0;
        while (i < n && j < n) {
            if (req.labels_sorted[i] == cand.labels_sorted[j]) {
                ++common, ++i, ++j;
            } else if (req.labels_sorted[i] < cand.labels_sorted[j]) {
                ++i;
            } else {
                ++j;
            }
        }
        lb += static_cast<double>(n - common);
    }

    // Edge term. A bijection pairing sorted degree sequences minimizes
    // the total degree discrepancy (rearrangement inequality), and each
    // edge edit fixes at most two endpoint-degree units, so edits >=
    // ceil(sum |delta d| / 2). Independently, edits >= |E_req - E_cand|.
    const double ins = std::max(0.0, opt.edge_ins_cost);
    const int e_gap = cand.num_edges - req.num_edges;
    if (!opt.edge_del_cost) {
        int dd = 0;
        for (int v = 0; v < n; ++v)
            dd += std::abs(req.degrees_desc[v] - cand.degrees_desc[v]);
        const int edits = std::max((dd + 1) / 2, std::abs(e_gap));
        const double unit = std::min(1.0, ins);
        // Split bound: guaranteed deletions cost 1, guaranteed
        // insertions cost edge_ins; take the better of the two forms.
        const double split = std::max(0, -e_gap) * 1.0 +
                             std::max(0, e_gap) * ins;
        lb += std::max(edits * unit, split);
    } else {
        // Custom deletion cost: only the guaranteed insertions remain
        // bounded from below.
        lb += std::max(0, e_gap) * ins;
    }
    return lb;
}

double
ged_lower_bound(const Graph& req, const Graph& cand, const GedOptions& opt)
{
    return ged_lower_bound(ged_profile(req), ged_profile(cand), opt);
}

} // namespace vnpu::graph
