#include "graph/ged.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "sim/log.h"

namespace vnpu::graph {

namespace {

double
node_cost_of(const GedOptions& opt, int a, int b)
{
    if (opt.node_cost)
        return opt.node_cost(a, b);
    return a == b ? 0.0 : 1.0;
}

double
edge_del_cost_of(const GedOptions& opt, int u, int v)
{
    if (opt.edge_del_cost)
        return opt.edge_del_cost(u, v);
    return 1.0;
}

} // namespace

double
ged_mapping_cost(const Graph& req, const Graph& cand,
                 const std::vector<int>& mapping, const GedOptions& opt)
{
    VNPU_ASSERT(static_cast<int>(mapping.size()) == req.num_nodes());
    VNPU_ASSERT(req.num_nodes() == cand.num_nodes());

    double cost = 0.0;
    for (int v = 0; v < req.num_nodes(); ++v)
        cost += node_cost_of(opt, req.label(v), cand.label(mapping[v]));

    int matched_edges = 0;
    for (auto [u, v] : req.edges()) {
        if (cand.has_edge(mapping[u], mapping[v]))
            ++matched_edges;
        else
            cost += edge_del_cost_of(opt, u, v);
    }
    // Candidate edges with no preimage are insertions.
    int extra = cand.num_edges() - matched_edges;
    cost += opt.edge_ins_cost * extra;
    return cost;
}

namespace {

/** Branch-and-bound exact search over bijections. */
struct ExactSearch {
    const Graph& req;
    const Graph& cand;
    const GedOptions& opt;
    int n;
    std::vector<int> mapping;      // req node -> cand node, -1 unset
    std::vector<bool> used;        // cand node used
    std::vector<int> best_mapping;
    double best = std::numeric_limits<double>::infinity();

    /** Cost contributions of assigning req node v -> cand node c. */
    double
    incremental(int v, int c) const
    {
        double cost = node_cost_of(opt, req.label(v), cand.label(c));
        // Edges between v and already-mapped req nodes.
        for (int u = 0; u < v; ++u) {
            bool e_req = req.has_edge(u, v);
            bool e_cand = cand.has_edge(mapping[u], c);
            if (e_req && !e_cand)
                cost += edge_del_cost_of(opt, u, v);
            else if (!e_req && e_cand)
                cost += opt.edge_ins_cost;
        }
        return cost;
    }

    void
    dfs(int v, double acc)
    {
        if (acc >= best)
            return;
        if (v == n) {
            // Account for candidate edges that involve at least one of
            // the, by now fully assigned, nodes and were not matched --
            // already handled incrementally, so acc is complete.
            best = acc;
            best_mapping = mapping;
            return;
        }
        for (int c = 0; c < n; ++c) {
            if (used[c])
                continue;
            double inc = incremental(v, c);
            if (acc + inc >= best)
                continue;
            mapping[v] = c;
            used[c] = true;
            dfs(v + 1, acc + inc);
            used[c] = false;
            mapping[v] = -1;
        }
    }
};

/**
 * Cost change of swapping the images of req nodes `a` and `b`.
 * Only node terms of a/b and req edges incident to a or b change; the
 * edge (a, b) itself is invariant under the swap.
 */
double
swap_delta(const Graph& req, const Graph& cand, const std::vector<int>& map,
           const GedOptions& opt, int a, int b)
{
    double d = 0.0;
    d -= node_cost_of(opt, req.label(a), cand.label(map[a]));
    d -= node_cost_of(opt, req.label(b), cand.label(map[b]));
    d += node_cost_of(opt, req.label(a), cand.label(map[b]));
    d += node_cost_of(opt, req.label(b), cand.label(map[a]));

    auto edge_terms = [&](int x, int other, int new_img) {
        for (int u : req.neighbors(x)) {
            if (u == other)
                continue; // edge (a, b): unchanged by the swap
            bool old_matched = cand.has_edge(map[x], map[u]);
            // After the swap, u != a and u != b keeps its image.
            bool new_matched = cand.has_edge(new_img, map[u]);
            if (old_matched == new_matched)
                continue;
            // A req edge losing its image costs one deletion and turns
            // the orphaned candidate edge into one insertion.
            double toggle = edge_del_cost_of(opt, std::min(x, u),
                                             std::max(x, u)) +
                            opt.edge_ins_cost;
            d += old_matched ? toggle : -toggle;
        }
    };
    edge_terms(a, b, map[b]);
    edge_terms(b, a, map[a]);
    return d;
}

/** BFS ordering starting from the highest-degree node. */
std::vector<int>
bfs_order(const Graph& g, int start)
{
    std::vector<int> order;
    std::vector<bool> seen(g.num_nodes(), false);
    std::vector<int> queue{start};
    seen[start] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        int v = queue[head];
        order.push_back(v);
        for (int u : g.neighbors(v)) {
            if (!seen[u]) {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    // Isolated / unreached nodes go last, in id order.
    for (int v = 0; v < g.num_nodes(); ++v)
        if (!seen[v])
            order.push_back(v);
    return order;
}

} // namespace

GedResult
exact_ged(const Graph& req, const Graph& cand, const GedOptions& opt)
{
    VNPU_ASSERT(req.num_nodes() == cand.num_nodes());
    int n = req.num_nodes();
    if (n == 0)
        return {0.0, {}};

    ExactSearch search{req, cand, opt, n,
                       std::vector<int>(n, -1), std::vector<bool>(n, false),
                       {}, std::numeric_limits<double>::infinity()};
    search.dfs(0, 0.0);
    return {search.best, search.best_mapping};
}

GedResult
approx_ged(const Graph& req, const Graph& cand, const GedOptions& opt)
{
    VNPU_ASSERT(req.num_nodes() == cand.num_nodes());
    int n = req.num_nodes();
    if (n == 0)
        return {0.0, {}};

    GedResult best;
    best.cost = std::numeric_limits<double>::infinity();

    // Multiple deterministic seeds: pair BFS orders of both graphs
    // starting from degree-sorted anchor nodes, then refine with 2-opt.
    std::vector<int> req_anchors(n), cand_anchors(n);
    std::iota(req_anchors.begin(), req_anchors.end(), 0);
    std::iota(cand_anchors.begin(), cand_anchors.end(), 0);
    auto by_degree_req = [&](int a, int b) {
        return req.degree(a) > req.degree(b);
    };
    auto by_degree_cand = [&](int a, int b) {
        return cand.degree(a) > cand.degree(b);
    };
    std::stable_sort(req_anchors.begin(), req_anchors.end(), by_degree_req);
    std::stable_sort(cand_anchors.begin(), cand_anchors.end(), by_degree_cand);

    int seeds = std::max(1, opt.approx_seeds);
    for (int s = 0; s < seeds; ++s) {
        int ra = req_anchors[s % n];
        int ca = cand_anchors[s % n];
        std::vector<int> ro = bfs_order(req, ra);
        std::vector<int> co = bfs_order(cand, ca);

        std::vector<int> mapping(n);
        for (int i = 0; i < n; ++i)
            mapping[ro[i]] = co[i];

        double cost = ged_mapping_cost(req, cand, mapping, opt);

        // Greedy 2-opt hill climbing with incremental deltas.
        const int max_passes = 24;
        for (int pass = 0; pass < max_passes; ++pass) {
            bool improved = false;
            for (int a = 0; a < n; ++a) {
                for (int b = a + 1; b < n; ++b) {
                    double d = swap_delta(req, cand, mapping, opt, a, b);
                    if (d < -1e-12) {
                        std::swap(mapping[a], mapping[b]);
                        cost += d;
                        improved = true;
                    }
                }
            }
            if (!improved)
                break;
        }

        if (cost < best.cost) {
            best.cost = cost;
            best.mapping = mapping;
        }
        if (best.cost == 0.0)
            break; // exact topology match, cannot improve
    }
    return best;
}

GedResult
ged(const Graph& req, const Graph& cand, const GedOptions& opt)
{
    if (req.num_nodes() <= opt.exact_limit)
        return exact_ged(req, cand, opt);
    return approx_ged(req, cand, opt);
}

} // namespace vnpu::graph
