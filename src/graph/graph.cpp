#include "graph/graph.h"

#include <algorithm>
#include <functional>

#include "sim/log.h"

namespace vnpu::graph {

namespace {

int
checked_size(int n)
{
    if (n < 0 || n > kMaxCores)
        fatal("graph size out of range: ", n);
    return n;
}

} // namespace

Graph::Graph(int n) : n_(checked_size(n)), adj_(n_), labels_(n_, 0)
{
}

Graph
Graph::mesh(int w, int h)
{
    Graph g(w * h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int id = y * w + x;
            if (x + 1 < w)
                g.add_edge(id, id + 1);
            if (y + 1 < h)
                g.add_edge(id, id + w);
        }
    }
    return g;
}

Graph
Graph::chain(int n)
{
    Graph g(n);
    for (int i = 0; i + 1 < n; ++i)
        g.add_edge(i, i + 1);
    return g;
}

Graph
Graph::ring(int n)
{
    Graph g = chain(n);
    if (n > 2)
        g.add_edge(n - 1, 0);
    return g;
}

Graph
Graph::torus(int w, int h)
{
    Graph g = mesh(w, h);
    for (int y = 0; y < h; ++y)
        if (w > 2)
            g.add_edge(y * w, y * w + w - 1);
    for (int x = 0; x < w; ++x)
        if (h > 2)
            g.add_edge(x, (h - 1) * w + x);
    return g;
}

int
Graph::num_edges() const
{
    int total = 0;
    for (int v = 0; v < n_; ++v)
        total += degree(v);
    return total / 2;
}

void
Graph::add_edge(int a, int b)
{
    VNPU_ASSERT(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b);
    adj_[a].set(b);
    adj_[b].set(a);
}

void
Graph::remove_edge(int a, int b)
{
    VNPU_ASSERT(a >= 0 && a < n_ && b >= 0 && b < n_);
    adj_[a].reset(b);
    adj_[b].reset(a);
}

bool
Graph::has_edge(int a, int b) const
{
    VNPU_ASSERT(a >= 0 && a < n_ && b >= 0 && b < n_);
    return adj_[a].test(b);
}

std::vector<std::pair<int, int>>
Graph::edges() const
{
    std::vector<std::pair<int, int>> out;
    for (int a = 0; a < n_; ++a) {
        for (int b = adj_[a].next(a + 1); b < NodeMask::kCapacity;
             b = adj_[a].next(b + 1))
            out.emplace_back(a, b);
    }
    return out;
}

int
Graph::max_degree() const
{
    int best = 0;
    for (int v = 0; v < n_; ++v)
        best = std::max(best, degree(v));
    return best;
}

std::vector<int>
Graph::degree_sequence() const
{
    std::vector<int> deg(n_);
    for (int v = 0; v < n_; ++v)
        deg[v] = degree(v);
    std::sort(deg.begin(), deg.end(), std::greater<int>());
    return deg;
}

bool
Graph::is_connected() const
{
    if (n_ == 0)
        return true;
    NodeMask all = NodeMask::first_n(n_);
    return component_of(0, all) == all;
}

bool
Graph::is_connected_subset(const NodeMask& subset) const
{
    if (subset.none())
        return true;
    return component_of(subset.lowest(), subset) == subset;
}

NodeMask
Graph::component_of(int start, const NodeMask& allowed) const
{
    VNPU_ASSERT(start >= 0 && start < n_);
    NodeMask seen = NodeMask::of(start);
    NodeMask frontier = seen;
    while (frontier.any()) {
        NodeMask next;
        for (int v : frontier)
            next |= adj_[v];
        next = next.andnot(seen);
        next &= allowed;
        seen |= next;
        frontier = next;
    }
    return seen;
}

Graph
Graph::induced(const std::vector<int>& nodes) const
{
    Graph g(static_cast<int>(nodes.size()));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        VNPU_ASSERT(nodes[i] >= 0 && nodes[i] < n_);
        g.set_label(static_cast<int>(i), labels_[nodes[i]]);
        for (std::size_t j = i + 1; j < nodes.size(); ++j) {
            if (has_edge(nodes[i], nodes[j]))
                g.add_edge(static_cast<int>(i), static_cast<int>(j));
        }
    }
    return g;
}

std::vector<int>
Graph::mask_to_nodes(const NodeMask& mask)
{
    std::vector<int> out;
    out.reserve(mask.count());
    for (int v : mask)
        out.push_back(v);
    return out;
}

namespace {

std::uint64_t
mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
Graph::wl_hash(int rounds) const
{
    std::vector<std::uint64_t> color(n_);
    for (int v = 0; v < n_; ++v)
        color[v] = mix(0x1234u + static_cast<std::uint64_t>(labels_[v]));

    std::vector<std::uint64_t> next(n_);
    for (int r = 0; r < rounds; ++r) {
        for (int v = 0; v < n_; ++v) {
            // Order-independent aggregation of neighbor colors.
            std::uint64_t sum = 0, xored = 0;
            for (int u : adj_[v]) {
                sum += color[u];
                xored ^= mix(color[u]);
            }
            next[v] = mix(color[v] ^ mix(sum + 0x9e37) ^ (xored * 3));
        }
        color.swap(next);
    }

    std::sort(color.begin(), color.end());
    std::uint64_t h = 0xcbf29ce484222325ULL + static_cast<unsigned>(n_);
    for (std::uint64_t c : color)
        h = mix(h ^ c);
    return h;
}

std::uint64_t
Graph::wl_hash_subset(const NodeMask& mask, int rounds) const
{
    // Hot path of the mapper's candidate dedup: scratch is reused
    // across calls (only mask members are ever written then read, so
    // no per-call clearing), and the word loops only visit mask words
    // that are populated — candidate regions are local, so most of a
    // 1024-bit mask is zero.
    static thread_local std::vector<int> nodes;
    static thread_local std::vector<std::uint64_t> color, next;
    static thread_local std::vector<std::uint64_t> folded;
    static thread_local std::vector<int> nbr_flat, nbr_off;
    nodes.clear();
    for (int v : mask) {
        VNPU_ASSERT(v < n_);
        nodes.push_back(v);
    }
    const int k = static_cast<int>(nodes.size());
    if (static_cast<int>(color.size()) < n_) {
        color.resize(n_);
        next.resize(n_);
    }

    int live_words[NodeMask::kWords];
    int n_live = 0;
    for (int wi = 0; wi < NodeMask::kWords; ++wi)
        if (mask.word(wi) != 0)
            live_words[n_live++] = wi;

    // Materialize each member's masked neighbor list once; the rounds
    // below then run over flat int lists with no word scans at all.
    nbr_flat.clear();
    nbr_off.clear();
    nbr_off.reserve(k + 1);
    for (int v : nodes) {
        nbr_off.push_back(static_cast<int>(nbr_flat.size()));
        const NodeMask& nb = adj_[v];
        for (int li = 0; li < n_live; ++li) {
            const int wi = live_words[li];
            std::uint64_t w = nb.word(wi) & mask.word(wi);
            while (w) {
                nbr_flat.push_back((wi << 6) + __builtin_ctzll(w));
                w &= w - 1;
            }
        }
    }
    nbr_off.push_back(static_cast<int>(nbr_flat.size()));

    // Colors keyed by original node id; only mask members are touched.
    // The induced subgraph renumbers nodes, but WL is renumbering-
    // invariant: per-node colors aggregate neighbors order-independently
    // and the final fold sorts, so the values coincide exactly.
    for (int v : nodes)
        color[v] = mix(0x1234u + static_cast<std::uint64_t>(labels_[v]));

    for (int r = 0; r < rounds; ++r) {
        for (int vi = 0; vi < k; ++vi) {
            const int v = nodes[vi];
            std::uint64_t sum = 0, xored = 0;
            for (int i = nbr_off[vi]; i < nbr_off[vi + 1]; ++i) {
                const std::uint64_t c = color[nbr_flat[i]];
                sum += c;
                xored ^= mix(c);
            }
            next[v] = mix(color[v] ^ mix(sum + 0x9e37) ^ (xored * 3));
        }
        color.swap(next);
    }

    folded.clear();
    for (int v : nodes)
        folded.push_back(color[v]);
    std::sort(folded.begin(), folded.end());
    std::uint64_t h = 0xcbf29ce484222325ULL + static_cast<unsigned>(k);
    for (std::uint64_t c : folded)
        h = mix(h ^ c);
    return h;
}

bool
Graph::operator==(const Graph& other) const
{
    return n_ == other.n_ && adj_ == other.adj_ && labels_ == other.labels_;
}

} // namespace vnpu::graph
