/**
 * @file
 * Undirected graphs over at most `kMaxCores` (1024) nodes, used for NPU
 * topologies (physical meshes, requested virtual topologies, allocated
 * subgraphs).
 *
 * Adjacency is stored as one fixed-capacity `CoreSet` neighbor mask per
 * node, which keeps connectivity checks, induced subgraphs and subset
 * enumeration cheap while representing DCRA-scale (256+ core) meshes.
 */

#ifndef VNPU_GRAPH_GRAPH_H
#define VNPU_GRAPH_GRAPH_H

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace vnpu::graph {

/** Bit set over graph node ids (bit i <=> node i). */
using NodeMask = CoreSet;

/**
 * An undirected labelled graph with <= kMaxCores nodes.
 *
 * Node labels model heterogeneity (e.g. "close to a memory interface");
 * the default label is 0 (homogeneous).
 */
class Graph {
  public:
    /** An empty graph with `n` isolated nodes. @pre 0 <= n <= kMaxCores */
    explicit Graph(int n = 0);

    // ---- Builders ---------------------------------------------------
    /** 2D mesh: node (x, y) has id y*w + x. */
    static Graph mesh(int w, int h);
    /** Simple path 0-1-...-(n-1). */
    static Graph chain(int n);
    /** Cycle of n nodes. */
    static Graph ring(int n);
    /** 2D torus (mesh with wraparound links). */
    static Graph torus(int w, int h);

    // ---- Structure --------------------------------------------------
    int num_nodes() const { return n_; }
    int num_edges() const;

    /** Add undirected edge a-b (idempotent). */
    void add_edge(int a, int b);
    /** Remove undirected edge a-b (idempotent). */
    void remove_edge(int a, int b);
    bool has_edge(int a, int b) const;

    /** Neighbor mask of node v. */
    const NodeMask& neighbors(int v) const { return adj_[v]; }
    /** All neighbor masks, indexed by node id (zero-copy access). */
    const std::vector<NodeMask>& adjacency() const { return adj_; }
    int degree(int v) const { return adj_[v].count(); }

    /** All edges as (a, b) pairs with a < b. */
    std::vector<std::pair<int, int>> edges() const;

    /** Largest node degree (0 for the empty graph). */
    int max_degree() const;

    /**
     * Node degrees sorted descending. Prefilter for isomorphism search:
     * if pattern.degree_sequence() is not elementwise <= the host
     * region's sequence, no induced embedding can exist.
     */
    std::vector<int> degree_sequence() const;

    // ---- Labels ------------------------------------------------------
    int label(int v) const { return labels_[v]; }
    void set_label(int v, int label) { labels_[v] = label; }

    // ---- Queries -----------------------------------------------------
    /** True when the whole graph is one connected component. */
    bool is_connected() const;

    /** True when the nodes in `subset` induce a connected subgraph. */
    bool is_connected_subset(const NodeMask& subset) const;

    /** Connected component containing `start`, restricted to `allowed`. */
    NodeMask component_of(int start, const NodeMask& allowed) const;

    /**
     * Induced subgraph on `nodes`; new node i corresponds to nodes[i].
     * Labels are carried over.
     */
    Graph induced(const std::vector<int>& nodes) const;

    /** Node list of a mask in ascending id order. */
    static std::vector<int> mask_to_nodes(const NodeMask& mask);

    /**
     * Label-aware Weisfeiler-Lehman hash: equal for isomorphic graphs,
     * almost always distinct otherwise. Used to deduplicate candidate
     * topologies ("retain only one instance per topology").
     */
    std::uint64_t wl_hash(int rounds = 3) const;

    /**
     * WL hash of the subgraph induced by `mask`, computed directly on
     * the masked adjacency. Bit-identical to
     * `induced(mask_to_nodes(mask)).wl_hash(rounds)` without
     * materializing a Graph — the candidate-dedup hot path of
     * `TopologyMapper::collect_candidates` calls this per subset.
     */
    std::uint64_t wl_hash_subset(const NodeMask& mask, int rounds = 3) const;

    /** Exact structural equality (same ids, same edges, same labels). */
    bool operator==(const Graph& other) const;

  private:
    int n_ = 0;
    std::vector<NodeMask> adj_;
    std::vector<int> labels_;
};

} // namespace vnpu::graph

#endif // VNPU_GRAPH_GRAPH_H
