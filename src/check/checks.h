/**
 * @file
 * Invariant verification routines behind the VNPU_SANITIZE option.
 *
 * Each function either returns silently or panics (via SimPanic) with
 * a "sanitize:" message. They are compiled in every build — only the
 * simulator-internal call sites are gated on VNPU_SANITIZE_ENABLED —
 * so tests can drive them directly with deliberately broken inputs
 * (tests/test_invariants.cpp) regardless of build flavor.
 */

#ifndef VNPU_CHECK_CHECKS_H
#define VNPU_CHECK_CHECKS_H

#include <vector>

#include "check/check.h"
#include "sim/types.h"

namespace vnpu::noc {
class MeshTopology;
class RouteOverride;
} // namespace vnpu::noc

namespace vnpu::check {

/**
 * Confined-route containment (paper §4.1.2, docs/sim_kernel.md): for
 * every ordered pair (cur, dst) inside `region`, following the
 * override's next hops from cur must stay strictly inside `region`,
 * take only mesh-adjacent steps, and terminate at `dst` within
 * |region| hops (shortest-path tables can never need more). Panics on
 * the first violation.
 */
void verify_confined_route(const noc::MeshTopology& topo,
                           const CoreSet& region,
                           const noc::RouteOverride& route);

/**
 * Live-VM partition invariant: every pair of live VM regions is
 * disjoint, every region is disjoint from the free set, and the free
 * set together with the regions covers exactly the first `num_nodes`
 * cores. Panics on overlap, coverage gap, or out-of-mesh bits.
 */
void verify_vm_partition(const CoreSet& free_cores,
                         const std::vector<CoreSet>& vm_regions,
                         int num_nodes);

/**
 * Reference wormhole occupancy: the seed's O(packets x hops) per-packet
 * recurrence (docs/sim_kernel.md, "Closed-form wormhole occupancy"),
 * kept as the independent model the closed-form send path is checked
 * against on every sanitized send.
 */
struct WormholeRef {
    Tick sender_free = 0;                ///< Last packet leaves hop 0.
    Tick delivered = 0;                  ///< Last packet leaves last hop.
    std::vector<Tick> link_busy;         ///< Final per-hop occupancy.
};

/**
 * Evaluate the reference recurrence for a message of `npkts` packets
 * (full-packet serialization `ser_full`, tail `ser_tail`) injected at
 * `inject_ready` over a path whose links currently show
 * `prior_busy[i]` occupancy, with per-hop router delay `router_delay`.
 * @pre npkts >= 1 and !prior_busy.empty()
 */
WormholeRef wormhole_reference(Cycles router_delay, Cycles ser_full,
                               Cycles ser_tail, std::uint64_t npkts,
                               Tick inject_ready,
                               const std::vector<Tick>& prior_busy);

} // namespace vnpu::check

#endif // VNPU_CHECK_CHECKS_H
