#include "check/checks.h"

#include <algorithm>

#include "noc/network.h"
#include "noc/topology.h"

namespace vnpu::check {

CheckCounters&
counters()
{
    static CheckCounters c;
    return c;
}

void
reset_counters()
{
    counters() = CheckCounters{};
}

void
verify_confined_route(const noc::MeshTopology& topo, const CoreSet& region,
                      const noc::RouteOverride& route)
{
    const int region_size = region.count();
    for (int dst : region) {
        for (int cur : region) {
            if (cur == dst)
                continue;
            int at = cur;
            int steps = 0;
            while (at != dst) {
                const int next = route.next_hop(at, dst);
                if (next == kInvalidCore)
                    fail(__FILE__, __LINE__,
                         "confined route has no next hop", "cur=", at,
                         " dst=", dst);
                if (!region.test(next))
                    fail(__FILE__, __LINE__,
                         "confined route leaves its region", "cur=", at,
                         " next=", next, " dst=", dst);
                bool adjacent = false;
                for (int d = 0; d < 4; ++d) {
                    if (topo.neighbor(at, static_cast<noc::Direction>(d)) ==
                        next) {
                        adjacent = true;
                        break;
                    }
                }
                if (!adjacent)
                    fail(__FILE__, __LINE__,
                         "confined route takes a non-mesh step",
                         "cur=", at, " next=", next);
                at = next;
                if (++steps > region_size)
                    fail(__FILE__, __LINE__,
                         "confined route exceeds region diameter",
                         "cur=", cur, " dst=", dst, " steps=", steps);
            }
        }
    }
    ++counters().route_tables;
}

void
verify_vm_partition(const CoreSet& free_cores,
                    const std::vector<CoreSet>& vm_regions, int num_nodes)
{
    const CoreSet mesh = CoreSet::first_n(num_nodes);
    CoreSet seen = free_cores;
    if ((free_cores & ~mesh).any())
        fail(__FILE__, __LINE__, "free set contains out-of-mesh cores");
    for (std::size_t i = 0; i < vm_regions.size(); ++i) {
        const CoreSet& r = vm_regions[i];
        if (!r.any())
            fail(__FILE__, __LINE__, "live VM with an empty region",
                 "index=", i);
        if ((r & ~mesh).any())
            fail(__FILE__, __LINE__, "VM region contains out-of-mesh cores",
                 "index=", i);
        if ((r & free_cores).any())
            fail(__FILE__, __LINE__, "VM region overlaps the free set",
                 "index=", i);
        for (std::size_t j = i + 1; j < vm_regions.size(); ++j)
            if ((r & vm_regions[j]).any())
                fail(__FILE__, __LINE__, "VM regions overlap pairwise",
                     "index_a=", i, " index_b=", j);
        seen |= r;
    }
    if (!(seen == mesh))
        fail(__FILE__, __LINE__,
             "free set plus live regions do not cover the mesh",
             "covered=", seen.count(), " mesh=", num_nodes);
    ++counters().vm_partitions;
}

WormholeRef
wormhole_reference(Cycles router_delay, Cycles ser_full, Cycles ser_tail,
                   std::uint64_t npkts, Tick inject_ready,
                   const std::vector<Tick>& prior_busy)
{
    // The seed recurrence (docs/sim_kernel.md):
    //   T(p, i) = max(T(p, i-1), T(p-1, i)) + R + S_p,  T(p, -1) = I
    //   T(0, i) = max(T(0, i-1), B_i) + R + S
    // where T(p, i) is packet p's departure from hop i.
    const std::size_t hops = prior_busy.size();
    WormholeRef ref;
    ref.link_busy.assign(hops, 0);
    std::vector<Tick> prev(hops, 0); // previous packet's departures
    for (std::uint64_t p = 0; p < npkts; ++p) {
        const Cycles ser = (p + 1 == npkts) ? ser_tail : ser_full;
        Tick t = inject_ready;
        for (std::size_t i = 0; i < hops; ++i) {
            const Tick blocked =
                p == 0 ? std::max(t, prior_busy[i]) : std::max(t, prev[i]);
            t = blocked + router_delay + ser;
            prev[i] = t;
            ref.link_busy[i] = t;
            if (i == 0)
                ref.sender_free = t;
        }
        ref.delivered = t;
    }
    return ref;
}

} // namespace vnpu::check
