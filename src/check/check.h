/**
 * @file
 * The runtime invariant sanitizer's macro layer.
 *
 * `-DVNPU_SANITIZE=ON` (CMake) compiles continuous invariant checks
 * into the simulation kernel, the NoC, and the hypervisor: per-link
 * occupancy cross-checked against the seed's iterative wormhole model,
 * FIFO-within-tick sequence auditing in the event queue, pairwise
 * CoreSet disjointness across live VMs, and confined-route containment
 * (docs/static_analysis.md, "VNPU_SANITIZE").
 *
 * When the option is off — every release and default build — the
 * checks compile to *nothing*: the same always-off pattern as
 * VNPU_TRACE, except resolved at compile time rather than behind a
 * runtime branch. `VNPU_INVARIANT`'s condition expression is not even
 * evaluated, so check-only work (snapshots, reference models) must sit
 * inside `VNPU_SANITIZE_BLOCK`/`#if VNPU_SANITIZE_ENABLED` regions.
 *
 * The verification functions themselves (src/check/checks.h) are
 * compiled unconditionally so tests can exercise them in any build;
 * only the call sites inside the simulator are gated.
 */

#ifndef VNPU_CHECK_CHECK_H
#define VNPU_CHECK_CHECK_H

#include <cstdint>
#include <utility>

#include "sim/log.h"

#if defined(VNPU_SANITIZE) && VNPU_SANITIZE
#define VNPU_SANITIZE_ENABLED 1
#else
#define VNPU_SANITIZE_ENABLED 0
#endif

namespace vnpu::check {

/** True in -DVNPU_SANITIZE=ON builds (compile-time constant). */
constexpr bool
sanitize_enabled()
{
    return VNPU_SANITIZE_ENABLED != 0;
}

/**
 * How many times each sanitizer family has run. Only ever incremented
 * from sanitize-enabled call sites, so a sanitize build can assert the
 * checks are actually live (tests/test_invariants.cpp does).
 */
struct CheckCounters {
    std::uint64_t event_queue_events = 0; ///< FIFO-seq audited events.
    std::uint64_t noc_sends = 0;          ///< Cross-checked send walks.
    std::uint64_t route_tables = 0;       ///< Containment-verified tables.
    std::uint64_t vm_partitions = 0;      ///< Disjointness sweeps.
};

CheckCounters& counters();

/** Reset the counters (between test cases). */
void reset_counters();

/**
 * Invariant-violation report: panics (throws SimPanic) with a
 * "sanitize:" prefix so a failing CI job is unambiguous about which
 * layer caught the bug.
 */
template <typename... Args>
[[noreturn]] void
fail(const char* file, int line, const char* what, Args&&... args)
{
    panic("sanitize: ", what, " @ ", file, ":", line, " ",
          std::forward<Args>(args)...);
}

} // namespace vnpu::check

#if VNPU_SANITIZE_ENABLED
/** Check `cond` in sanitize builds; vanishes (unevaluated) otherwise. */
#define VNPU_INVARIANT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond))                                                         \
            ::vnpu::check::fail(__FILE__, __LINE__, #cond, ##__VA_ARGS__);   \
    } while (0)
/** Compile `...` only in sanitize builds (statements, declarations). */
#define VNPU_SANITIZE_BLOCK(...) __VA_ARGS__
#else
#define VNPU_INVARIANT(cond, ...) ((void)0)
#define VNPU_SANITIZE_BLOCK(...)
#endif

#endif // VNPU_CHECK_CHECK_H
