/**
 * @file
 * Address-translation interface shared by the DMA engine and the
 * translation schemes (identity/physical, page TLB, vChunk range TLB).
 */

#ifndef VNPU_MEM_TRANSLATE_H
#define VNPU_MEM_TRANSLATE_H

#include "sim/types.h"

namespace vnpu::mem {

/** Access permissions attached to a mapping. */
enum Perm : std::uint8_t {
    kPermRead = 1,
    kPermWrite = 2,
    kPermExec = 4,
};

/** Result of translating the start of a DMA segment. */
struct TranslationResult {
    Addr pa = 0;              ///< Physical address of `va`.
    std::uint64_t seg_bytes = 0; ///< Contiguous bytes valid from `va`.
    Cycles stall = 0;         ///< Cycles the DMA pipeline stalls.
    bool fault = false;       ///< No mapping / permission violation.
};

/** Abstract translation scheme. */
class Translator {
  public:
    virtual ~Translator() = default;

    /**
     * Translate `va` for an access of up to `bytes` bytes with
     * permission `perm`. `seg_bytes` in the result may be smaller than
     * `bytes` (segment ends at a page/range boundary); the caller
     * continues with the next segment.
     */
    virtual TranslationResult translate(Addr va, std::uint64_t bytes,
                                        Perm perm) = 0;

    /** Human-readable scheme name for reports. */
    virtual const char* name() const = 0;
};

/** Pass-through translation (bare-metal / physical memory). */
class IdentityTranslator final : public Translator {
  public:
    TranslationResult
    translate(Addr va, std::uint64_t bytes, Perm) override
    {
        return {va, bytes, 0, false};
    }

    const char* name() const override { return "physical"; }
};

} // namespace vnpu::mem

#endif // VNPU_MEM_TRANSLATE_H
