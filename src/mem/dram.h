/**
 * @file
 * Global memory (HBM/DRAM) bandwidth model with independent channels.
 *
 * Each channel serves transfers in arrival order at a fixed byte rate;
 * concurrent virtual NPUs sharing a channel contend through the
 * busy-until reservation, which is exactly the memory-interference
 * effect the paper measures for UVM-based virtual NPUs.
 */

#ifndef VNPU_MEM_DRAM_H
#define VNPU_MEM_DRAM_H

#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::mem {

/** Multi-channel HBM/DRAM model. */
class DramModel {
  public:
    explicit DramModel(const SocConfig& cfg);

    /**
     * Occupy `channel` for a `bytes`-byte transfer not starting before
     * `start`. @return tick when the transfer completes.
     */
    Tick transfer(Tick start, int channel, std::uint64_t bytes, VmId vm);

    int num_channels() const { return static_cast<int>(busy_.size()); }

    /** Per-channel bandwidth in bytes per cycle. */
    double channel_rate() const { return rate_; }

    /** Tick until which `channel` is reserved. */
    Tick busy_until(int channel) const { return busy_[channel]; }

    std::uint64_t total_bytes() const { return bytes_.value(); }
    std::uint64_t bytes_of_vm(VmId vm) const;

    void reset();

  private:
    double rate_;
    std::vector<Tick> busy_;
    Counter bytes_;
    std::vector<std::uint64_t> vm_bytes_; // indexed by vm id (small)
};

} // namespace vnpu::mem

#endif // VNPU_MEM_DRAM_H
