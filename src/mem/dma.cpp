#include "mem/dma.h"

#include <algorithm>
#include <cmath>

#include "obs/prof.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace vnpu::mem {

DmaEngine::DmaEngine(const SocConfig& cfg, DramModel& dram, int channel,
                     CoreId core)
    : cfg_(cfg), dram_(dram), channel_(channel), core_(core)
{
}

Tick
DmaEngine::load(Tick start, Addr va, std::uint64_t bytes, VmId vm)
{
    return transfer(start, va, bytes, vm, kPermRead);
}

Tick
DmaEngine::store(Tick start, Addr va, std::uint64_t bytes, VmId vm)
{
    return transfer(start, va, bytes, vm, kPermWrite);
}

Tick
DmaEngine::transfer(Tick start, Addr va, std::uint64_t bytes, VmId vm,
                    Perm perm)
{
    VNPU_PROF("mem.dma");
    VNPU_ASSERT(bytes > 0);
    ++stats_.transfers;
    stats_.bytes += bytes;
    if (trace_)
        trace_->record(core_, iteration_, va, bytes, start);

    Translator* tr = translator_ ? translator_ : &identity_;

    Tick t = start;
    Addr cur = va;
    std::uint64_t remain = bytes;
    while (remain > 0) {
        TranslationResult res = tr->translate(cur, remain, perm);
        if (res.fault) {
            fatal("DMA translation fault at VA ", cur, " (", tr->name(),
                  ", vm ", vm, ")");
        }
        stats_.translation_stall += res.stall;
        t += res.stall; // a miss stalls the whole DMA pipeline

        std::uint64_t seg = std::min(res.seg_bytes, remain);
        VNPU_ASSERT(seg > 0);
        Tick done = dram_.transfer(t, channel_, seg, vm);

        // Per-engine bandwidth cap: the access counter delays
        // completions so the sustained rate stays at cap_rate_.
        if (cap_rate_ > 0.0) {
            Cycles cap_cycles =
                static_cast<Cycles>(std::ceil(seg / cap_rate_));
            Tick cap_done = std::max(t, cap_busy_) + cap_cycles;
            if (cap_done > done) {
                stats_.throttle_stall += cap_done - done;
                done = cap_done;
            }
            cap_busy_ = done;
        }
        // VM-aggregate cap shared across the virtual NPU's cores.
        if (shared_cap_ != nullptr) {
            Tick cap_done = shared_cap_->acquire(t, seg);
            if (cap_done > done) {
                stats_.throttle_stall += cap_done - done;
                done = cap_done;
            }
        }

        t = done;
        cur += seg;
        remain -= seg;
    }

    VNPU_TRACE(emit_complete(
        perm == kPermRead ? "dma.load" : "dma.store", "mem", start,
        t - start, static_cast<std::uint32_t>(core_),
        {obs::arg("va", static_cast<std::uint64_t>(va)),
         obs::arg("bytes", bytes), obs::arg("vm", vm),
         obs::arg("channel", channel_)}));
    return t;
}

void
DmaEngine::collect_stats(StatSet& out, const std::string& prefix) const
{
    out.add(prefix + "transfers", static_cast<double>(stats_.transfers.value()));
    out.add(prefix + "bytes", static_cast<double>(stats_.bytes.value()));
    out.add(prefix + "translation_stall",
            static_cast<double>(stats_.translation_stall.value()));
    out.add(prefix + "throttle_stall",
            static_cast<double>(stats_.throttle_stall.value()));
}

} // namespace vnpu::mem
