#include "mem/buddy_allocator.h"

#include "sim/log.h"

namespace vnpu::mem {

namespace {

bool
is_pow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

BuddyAllocator::BuddyAllocator(Addr base, std::uint64_t size,
                               std::uint64_t min_block)
    : base_(base), size_(size), min_block_(min_block), free_bytes_(size)
{
    if (!is_pow2(size) || !is_pow2(min_block) || min_block > size)
        fatal("buddy allocator needs power-of-two size/min_block");
    max_order_ = 0;
    while (order_bytes(max_order_) < size_)
        ++max_order_;
    free_lists_.resize(max_order_ + 1);
    free_lists_[max_order_].insert(0);
}

int
BuddyAllocator::order_of(std::uint64_t bytes) const
{
    int order = 0;
    while (order_bytes(order) < bytes)
        ++order;
    return order;
}

std::optional<Addr>
BuddyAllocator::alloc(std::uint64_t bytes)
{
    if (bytes == 0 || bytes > size_)
        return std::nullopt;
    int want = order_of(bytes);

    // Find the smallest free block that fits.
    int have = want;
    while (have <= max_order_ && free_lists_[have].empty())
        ++have;
    if (have > max_order_)
        return std::nullopt;

    std::uint64_t off = *free_lists_[have].begin();
    free_lists_[have].erase(free_lists_[have].begin());

    // Split down to the requested order.
    while (have > want) {
        --have;
        free_lists_[have].insert(off + order_bytes(have));
    }

    allocated_[off] = want;
    free_bytes_ -= order_bytes(want);
    return base_ + off;
}

void
BuddyAllocator::free(Addr addr)
{
    std::uint64_t off = addr - base_;
    auto it = allocated_.find(off);
    if (it == allocated_.end())
        fatal("buddy free of unallocated address ", addr);
    int order = it->second;
    allocated_.erase(it);
    free_bytes_ += order_bytes(order);

    // Coalesce with the buddy while possible.
    while (order < max_order_) {
        std::uint64_t buddy = off ^ order_bytes(order);
        auto bit = free_lists_[order].find(buddy);
        if (bit == free_lists_[order].end())
            break;
        free_lists_[order].erase(bit);
        off = std::min(off, buddy);
        ++order;
    }
    free_lists_[order].insert(off);
}

std::uint64_t
BuddyAllocator::block_size(Addr addr) const
{
    auto it = allocated_.find(addr - base_);
    if (it == allocated_.end())
        fatal("block_size of unallocated address ", addr);
    return order_bytes(it->second);
}

} // namespace vnpu::mem
