#include "mem/dram.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace vnpu::mem {

DramModel::DramModel(const SocConfig& cfg)
    : rate_(cfg.hbm_bytes_per_cycle / cfg.hbm_channels),
      busy_(cfg.hbm_channels, 0)
{
}

Tick
DramModel::transfer(Tick start, int channel, std::uint64_t bytes, VmId vm)
{
    VNPU_ASSERT(channel >= 0 && channel < num_channels());
    Cycles cycles = static_cast<Cycles>(std::ceil(bytes / rate_));
    Tick done = std::max(start, busy_[channel]) + cycles;
    busy_[channel] = done;
    bytes_ += bytes;
    if (vm >= 0) {
        if (static_cast<std::size_t>(vm) >= vm_bytes_.size())
            vm_bytes_.resize(vm + 1, 0);
        vm_bytes_[vm] += bytes;
    }
    return done;
}

std::uint64_t
DramModel::bytes_of_vm(VmId vm) const
{
    if (vm < 0 || static_cast<std::size_t>(vm) >= vm_bytes_.size())
        return 0;
    return vm_bytes_[vm];
}

void
DramModel::reset()
{
    std::fill(busy_.begin(), busy_.end(), 0);
    bytes_.reset();
    vm_bytes_.clear();
}

} // namespace vnpu::mem
