/**
 * @file
 * Buddy allocator for NPU global memory.
 *
 * The hypervisor uses the traditional buddy system (paper §5.2) to carve
 * HBM blocks for virtual NPUs; each allocated block maps directly to one
 * range-translation-table entry, with no further page-granular split.
 */

#ifndef VNPU_MEM_BUDDY_ALLOCATOR_H
#define VNPU_MEM_BUDDY_ALLOCATOR_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "sim/types.h"

namespace vnpu::mem {

/** Power-of-two buddy allocator over [base, base + size). */
class BuddyAllocator {
  public:
    /**
     * @param base      start of the managed region (block-aligned)
     * @param size      managed bytes (power of two)
     * @param min_block smallest block handed out (power of two)
     */
    BuddyAllocator(Addr base, std::uint64_t size, std::uint64_t min_block);

    /**
     * Allocate a block of at least `bytes` (rounded to a power of two).
     * @return the block address, or std::nullopt when out of memory.
     */
    std::optional<Addr> alloc(std::uint64_t bytes);

    /** Return a block obtained from alloc(). */
    void free(Addr addr);

    /** Size actually reserved for the block at `addr`. */
    std::uint64_t block_size(Addr addr) const;

    std::uint64_t free_bytes() const { return free_bytes_; }
    std::uint64_t used_bytes() const { return size_ - free_bytes_; }
    std::uint64_t capacity() const { return size_; }

    /** Number of live allocations. */
    std::size_t live_blocks() const { return allocated_.size(); }

  private:
    int order_of(std::uint64_t bytes) const;
    std::uint64_t order_bytes(int order) const
    {
        return min_block_ << order;
    }

    Addr base_;
    std::uint64_t size_;
    std::uint64_t min_block_;
    int max_order_;
    std::uint64_t free_bytes_;
    /** Free block start offsets per order. */
    std::vector<std::set<std::uint64_t>> free_lists_;
    /** Live allocations: offset -> order. */
    std::map<std::uint64_t, int> allocated_;
};

} // namespace vnpu::mem

#endif // VNPU_MEM_BUDDY_ALLOCATOR_H
