/**
 * @file
 * vChunk's Range Translation Table (RTT) and range TLB (paper §4.2).
 *
 * Each RTT entry maps a whole buddy-allocated block: VA (48 bits),
 * PA (48 bits), size (32 bits), permissions (4 bits) and `last_v`
 * (8 bits) — 144 bits per entry, matching the paper. Entries are sorted
 * by virtual address. The device-side walker exploits the NPU's access
 * patterns:
 *
 *  - Pattern-2 (monotonic within an iteration): `RTT_CUR` points at the
 *    entry in use; on a miss the walker scans forward from it, wrapping
 *    at RTT_END back to RTT_BASE.
 *  - Pattern-3 (iterative reuse): `last_v` on each entry remembers which
 *    entry followed it in the previous iteration, so the wrap back to
 *    the first tensor at an iteration boundary costs one fetch.
 */

#ifndef VNPU_MEM_RANGE_TABLE_H
#define VNPU_MEM_RANGE_TABLE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/translate.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::mem {

/** One range translation table entry (144 bits in hardware). */
struct RttEntry {
    Addr va = 0;              ///< Virtual start (48 bits in hardware).
    Addr pa = 0;              ///< Physical start (48 bits).
    std::uint64_t size = 0;   ///< Range size in bytes (32 bits).
    std::uint8_t perm = 0;    ///< Permission bits (4 bits).
    /** Index of the entry accessed after this one last iteration
     *  (8 bits); -1 when not yet recorded. */
    std::int16_t last_v = -1;

    bool contains(Addr a) const { return a >= va && a < va + size; }
};

/** The memory image of one virtual NPU's RTT (hypervisor-managed). */
class RangeTable {
  public:
    /** Entries must be added in any order; finalize() sorts by VA. */
    void add(Addr va, Addr pa, std::uint64_t size, std::uint8_t perm);

    /** Sort by VA and verify ranges do not overlap. */
    void finalize();

    std::size_t size() const { return entries_.size(); }
    const RttEntry& entry(std::size_t i) const { return entries_[i]; }
    RttEntry& entry(std::size_t i) { return entries_[i]; }

    /** Host-side lookup by binary search (no timing model). */
    std::optional<std::size_t> find(Addr va) const;

    /** Meta-zone bytes consumed: 144 bits per entry, byte-rounded. */
    std::uint64_t footprint_bytes() const { return entries_.size() * 18; }

    bool finalized() const { return finalized_; }

  private:
    std::vector<RttEntry> entries_;
    bool finalized_ = false;
};

/**
 * Device-side range TLB with the RTT_CUR / last_v walk model.
 * This is the translation path of a single NPU core's DMA engine.
 */
class RangeTlbTranslator final : public Translator {
  public:
    /**
     * @param cfg     timing constants (per-entry meta-zone fetch cost)
     * @param table   the VM's range table (hypervisor-owned)
     * @param entries number of hardware range-TLB entries (4 suffices)
     */
    RangeTlbTranslator(const SocConfig& cfg, RangeTable& table, int entries);

    TranslationResult translate(Addr va, std::uint64_t bytes,
                                Perm perm) override;

    const char* name() const override { return "vchunk-rtt"; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    /** Misses resolved by the `last_v` shortcut (one fetch). */
    std::uint64_t last_v_hits() const { return last_v_hits_.value(); }
    std::uint64_t entries_fetched() const { return fetched_.value(); }
    Cycles stall_cycles() const { return stall_.value(); }

    void flush();

  private:
    /** Walk the RTT for `va`; returns entry index and fetch count. */
    std::optional<std::size_t> walk(Addr va, int& fetches);

    const SocConfig& cfg_;
    RangeTable& table_;
    std::size_t capacity_;
    std::vector<std::size_t> tlb_;  ///< Resident entry indices, MRU first.
    std::size_t rtt_cur_ = 0;       ///< Device RTT_CUR register.
    std::int32_t prev_entry_ = -1;  ///< Entry used by the last access.
    Counter hits_;
    Counter misses_;
    Counter last_v_hits_;
    Counter fetched_;
    Counter stall_;
};

} // namespace vnpu::mem

#endif // VNPU_MEM_RANGE_TABLE_H
