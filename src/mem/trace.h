/**
 * @file
 * Global-memory access trace recorder (paper Figure 6).
 *
 * Records the (core, iteration, virtual address) stream of DMA traffic
 * so experiments can demonstrate the NPU access patterns vChunk relies
 * on: tensor-granular transfers (Pattern-1), monotonically increasing
 * addresses within an iteration (Pattern-2) and identical address sets
 * across iterations (Pattern-3).
 */

#ifndef VNPU_MEM_TRACE_H
#define VNPU_MEM_TRACE_H

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace vnpu::mem {

/** One recorded DMA access. */
struct TraceRecord {
    CoreId core;
    std::uint32_t iteration;
    Addr va;
    std::uint64_t bytes;
    Tick tick;
};

/** Append-only DMA trace with pattern-analysis helpers. */
class MemTraceRecorder {
  public:
    void
    record(CoreId core, std::uint32_t iteration, Addr va,
           std::uint64_t bytes, Tick tick)
    {
        records_.push_back({core, iteration, va, bytes, tick});
    }

    const std::vector<TraceRecord>& records() const { return records_; }

    /** Accesses of one core in one iteration, in record order. */
    std::vector<TraceRecord> of(CoreId core, std::uint32_t iteration) const;

    /**
     * Pattern-2: true when every core's addresses are non-decreasing
     * within each iteration.
     */
    bool monotonic_within_iterations() const;

    /**
     * Pattern-3: true when every core touches the same address sequence
     * in every iteration (iteration 0 compared against all others).
     */
    bool repeating_across_iterations() const;

    void clear() { records_.clear(); }

  private:
    std::vector<TraceRecord> records_;
};

} // namespace vnpu::mem

#endif // VNPU_MEM_TRACE_H
