/**
 * @file
 * Page-based translation baseline (the "IOTLB" of Figure 14).
 *
 * Monolithic-NPU virtualization proposals translate DMA traffic through
 * a conventional page table and a small IOTLB. Under the NPU's bursty
 * DMA streams this thrashes: every page crossing risks a walk that
 * stalls the DMA pipeline. vNPU's vChunk (mem/range_table.h) replaces
 * this with range translation.
 */

#ifndef VNPU_MEM_PAGE_TLB_H
#define VNPU_MEM_PAGE_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/translate.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::mem {

/** A guest-physical page table populated from mapped ranges. */
class PageTable {
  public:
    explicit PageTable(std::uint64_t page_bytes);

    /** Map the range [va, va+size) to [pa, pa+size), page-aligned. */
    void map_range(Addr va, Addr pa, std::uint64_t size, std::uint8_t perm);

    /** Translate one page; fault when unmapped or perm missing. */
    TranslationResult lookup(Addr va, Perm perm) const;

    std::uint64_t page_bytes() const { return page_bytes_; }
    std::size_t num_pages() const { return pages_.size(); }

  private:
    struct Pte {
        Addr pa_page;
        std::uint8_t perm;
    };

    std::uint64_t page_bytes_;
    std::unordered_map<Addr, Pte> pages_; // key: va >> page_shift
    int shift_;
};

/** LRU page TLB with a fixed entry count, modelling walk stalls. */
class PageTlbTranslator final : public Translator {
  public:
    /**
     * @param cfg      timing constants (walk latency, overlap factor)
     * @param table    backing page table (owned by the hypervisor)
     * @param entries  number of TLB entries (4 or 32 in Figure 14)
     */
    PageTlbTranslator(const SocConfig& cfg, const PageTable& table,
                      int entries);

    TranslationResult translate(Addr va, std::uint64_t bytes,
                                Perm perm) override;

    const char* name() const override { return "page-tlb"; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    Cycles stall_cycles() const { return stall_.value(); }

    void flush();

  private:
    const SocConfig& cfg_;
    const PageTable& table_;
    std::size_t entries_;
    /** LRU order: front = most recent. Values are VA page numbers. */
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> present_;
    Counter hits_;
    Counter misses_;
    Counter stall_;
};

} // namespace vnpu::mem

#endif // VNPU_MEM_PAGE_TLB_H
