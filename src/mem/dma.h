/**
 * @file
 * Per-core DMA engine moving data between HBM and the scratchpad.
 *
 * The engine streams a chunk as back-to-back bursts on the core's HBM
 * channel. Every translation-segment boundary (page or range) consults
 * the configured Translator; translation stalls block the DMA pipeline,
 * reproducing the paper's "a TLB miss can obstruct substantial data
 * transfers" effect. An optional token-style bandwidth cap implements
 * vChunk's per-vNPU memory-rate restriction.
 */

#ifndef VNPU_MEM_DMA_H
#define VNPU_MEM_DMA_H

#include <algorithm>
#include <cstdint>

#include "mem/dram.h"
#include "mem/trace.h"
#include "mem/translate.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::mem {

/**
 * Token bucket shared by every core of one virtual NPU: the access
 * counters report to it so the VM's *aggregate* DMA rate honors the
 * hypervisor-assigned bandwidth share (paper §4.2).
 */
class SharedBandwidthLimiter {
  public:
    explicit SharedBandwidthLimiter(double bytes_per_cycle)
        : rate_(bytes_per_cycle)
    {
    }

    /** Reserve bandwidth for `bytes`; returns the capped completion. */
    Tick
    acquire(Tick start, std::uint64_t bytes)
    {
        if (rate_ <= 0)
            return start;
        Cycles cycles = static_cast<Cycles>(bytes / rate_) + 1;
        busy_ = std::max(start, busy_) + cycles;
        return busy_;
    }

    double rate() const { return rate_; }

  private:
    double rate_;
    Tick busy_ = 0;
};

/** DMA statistics exported to harnesses. */
struct DmaStats {
    Counter transfers;
    Counter bytes;
    Counter translation_stall;  ///< Cycles lost to translation.
    Counter throttle_stall;     ///< Cycles lost to the bandwidth cap.
};

/** One NPU core's DMA engine. */
class DmaEngine {
  public:
    /**
     * @param cfg     SoC configuration (burst size, rates)
     * @param dram    shared HBM model
     * @param channel HBM channel this core's interface attaches to
     * @param core    owning core id (trace annotation)
     */
    DmaEngine(const SocConfig& cfg, DramModel& dram, int channel,
              CoreId core);

    /** Select the translation scheme (not owned; nullptr = identity). */
    void set_translator(Translator* t) { translator_ = t; }
    Translator* translator() const { return translator_; }

    /**
     * Cap this engine's sustained rate at `bytes_per_cycle`
     * (<= 0 disables the cap). Implements the vChunk access counter's
     * bandwidth restriction.
     */
    void set_bandwidth_cap(double bytes_per_cycle)
    {
        cap_rate_ = bytes_per_cycle;
    }

    /** VM-aggregate limiter (not owned; nullptr = uncapped). */
    void set_shared_cap(SharedBandwidthLimiter* cap) { shared_cap_ = cap; }

    /** Attach a trace recorder (Figure 6 experiments); may be null. */
    void set_trace(MemTraceRecorder* trace) { trace_ = trace; }

    /** Current iteration index used for trace annotation. */
    void set_iteration(std::uint32_t iter) { iteration_ = iter; }

    /**
     * Load `bytes` from global VA `va` into the scratchpad.
     * @return completion tick.
     */
    Tick load(Tick start, Addr va, std::uint64_t bytes, VmId vm);

    /** Store `bytes` from the scratchpad to global VA `va`. */
    Tick store(Tick start, Addr va, std::uint64_t bytes, VmId vm);

    const DmaStats& stats() const { return stats_; }
    int channel() const { return channel_; }

    /** Telemetry sweep: transfer/byte/stall totals (aggregatable). */
    void collect_stats(StatSet& out, const std::string& prefix) const;

  private:
    Tick transfer(Tick start, Addr va, std::uint64_t bytes, VmId vm,
                  Perm perm);

    const SocConfig& cfg_;
    DramModel& dram_;
    int channel_;
    CoreId core_;
    Translator* translator_ = nullptr;
    MemTraceRecorder* trace_ = nullptr;
    IdentityTranslator identity_;
    double cap_rate_ = 0.0;
    Tick cap_busy_ = 0;
    SharedBandwidthLimiter* shared_cap_ = nullptr;
    std::uint32_t iteration_ = 0;
    DmaStats stats_;
};

} // namespace vnpu::mem

#endif // VNPU_MEM_DMA_H
