#include "mem/trace.h"

#include <map>

namespace vnpu::mem {

std::vector<TraceRecord>
MemTraceRecorder::of(CoreId core, std::uint32_t iteration) const
{
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : records_)
        if (r.core == core && r.iteration == iteration)
            out.push_back(r);
    return out;
}

bool
MemTraceRecorder::monotonic_within_iterations() const
{
    // (core, iteration) -> last VA seen.
    std::map<std::pair<CoreId, std::uint32_t>, Addr> last;
    for (const TraceRecord& r : records_) {
        auto key = std::make_pair(r.core, r.iteration);
        auto it = last.find(key);
        if (it != last.end() && r.va < it->second)
            return false;
        last[key] = r.va;
    }
    return true;
}

bool
MemTraceRecorder::repeating_across_iterations() const
{
    // core -> iteration -> address sequence.
    std::map<CoreId, std::map<std::uint32_t, std::vector<Addr>>> seqs;
    for (const TraceRecord& r : records_)
        seqs[r.core][r.iteration].push_back(r.va);
    for (const auto& [core, by_iter] : seqs) {
        if (by_iter.empty())
            continue;
        const std::vector<Addr>& ref = by_iter.begin()->second;
        for (const auto& [iter, seq] : by_iter)
            if (seq != ref)
                return false;
    }
    return true;
}

} // namespace vnpu::mem
