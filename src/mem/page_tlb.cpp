#include "mem/page_tlb.h"

#include <algorithm>

#include "sim/log.h"

namespace vnpu::mem {

namespace {

int
log2_of(std::uint64_t v)
{
    VNPU_ASSERT(v != 0 && (v & (v - 1)) == 0);
    return __builtin_ctzll(v);
}

} // namespace

PageTable::PageTable(std::uint64_t page_bytes)
    : page_bytes_(page_bytes), shift_(log2_of(page_bytes))
{
}

void
PageTable::map_range(Addr va, Addr pa, std::uint64_t size, std::uint8_t perm)
{
    if ((va | pa | size) & (page_bytes_ - 1))
        fatal("map_range arguments must be page-aligned");
    for (std::uint64_t off = 0; off < size; off += page_bytes_)
        pages_[(va + off) >> shift_] = Pte{(pa + off), perm};
}

TranslationResult
PageTable::lookup(Addr va, Perm perm) const
{
    auto it = pages_.find(va >> shift_);
    if (it == pages_.end() || !(it->second.perm & perm))
        return {0, 0, 0, true};
    Addr page_off = va & (page_bytes_ - 1);
    return {it->second.pa_page + page_off, page_bytes_ - page_off, 0, false};
}

PageTlbTranslator::PageTlbTranslator(const SocConfig& cfg,
                                     const PageTable& table, int entries)
    : cfg_(cfg), table_(table), entries_(static_cast<std::size_t>(entries))
{
    if (entries <= 0)
        fatal("page TLB needs at least one entry");
}

TranslationResult
PageTlbTranslator::translate(Addr va, std::uint64_t bytes, Perm perm)
{
    TranslationResult res = table_.lookup(va, perm);
    if (res.fault)
        return res;
    res.seg_bytes = std::min(res.seg_bytes, bytes);

    Addr vpn = va / table_.page_bytes();
    auto it = present_.find(vpn);
    if (it != present_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return res;
    }

    // Miss: page walk. Larger TLBs sustain more translations in flight,
    // hiding part of the walk under the preceding bursts.
    ++misses_;
    double overlap = std::min(cfg_.walk_overlap_max,
                              cfg_.walk_overlap_per_entry *
                                  static_cast<double>(entries_));
    Cycles stall = static_cast<Cycles>(
        static_cast<double>(cfg_.page_walk_cycles) * (1.0 - overlap));
    res.stall = stall;
    stall_ += stall;

    lru_.push_front(vpn);
    present_[vpn] = lru_.begin();
    if (lru_.size() > entries_) {
        present_.erase(lru_.back());
        lru_.pop_back();
    }
    return res;
}

void
PageTlbTranslator::flush()
{
    lru_.clear();
    present_.clear();
}

} // namespace vnpu::mem
