#include "mem/range_table.h"

#include <algorithm>

#include "sim/log.h"

namespace vnpu::mem {

void
RangeTable::add(Addr va, Addr pa, std::uint64_t size, std::uint8_t perm)
{
    if (size == 0)
        fatal("RTT entry must have nonzero size");
    entries_.push_back(RttEntry{va, pa, size, perm, -1});
    finalized_ = false;
}

void
RangeTable::finalize()
{
    std::sort(entries_.begin(), entries_.end(),
              [](const RttEntry& a, const RttEntry& b) {
                  return a.va < b.va;
              });
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i - 1].va + entries_[i - 1].size > entries_[i].va) {
            fatal("overlapping RTT ranges at VA ", entries_[i].va);
        }
    }
    if (entries_.size() > 256)
        fatal("RTT limited to 256 entries (8-bit last_v index)");
    finalized_ = true;
}

std::optional<std::size_t>
RangeTable::find(Addr va) const
{
    VNPU_ASSERT(finalized_);
    // Last entry with entry.va <= va.
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), va,
        [](Addr a, const RttEntry& e) { return a < e.va; });
    if (it == entries_.begin())
        return std::nullopt;
    --it;
    if (!it->contains(va))
        return std::nullopt;
    return static_cast<std::size_t>(it - entries_.begin());
}

RangeTlbTranslator::RangeTlbTranslator(const SocConfig& cfg,
                                       RangeTable& table, int entries)
    : cfg_(cfg), table_(table), capacity_(static_cast<std::size_t>(entries))
{
    if (entries <= 0)
        fatal("range TLB needs at least one entry");
}

std::optional<std::size_t>
RangeTlbTranslator::walk(Addr va, int& fetches)
{
    const std::size_t n = table_.size();
    if (n == 0)
        return std::nullopt;

    // 1. last_v shortcut: the entry that followed prev_entry_ in the
    //    previous iteration is the most likely next range.
    if (prev_entry_ >= 0) {
        std::int16_t lv = table_.entry(prev_entry_).last_v;
        if (lv >= 0 && static_cast<std::size_t>(lv) < n) {
            ++fetches;
            if (table_.entry(lv).contains(va)) {
                ++last_v_hits_;
                return static_cast<std::size_t>(lv);
            }
        }
    }

    // 2. Monotonic scan from RTT_CUR, wrapping at RTT_END to RTT_BASE.
    for (std::size_t step = 0; step < n; ++step) {
        std::size_t idx = (rtt_cur_ + step) % n;
        ++fetches;
        if (table_.entry(idx).contains(va))
            return idx;
    }
    return std::nullopt;
}

TranslationResult
RangeTlbTranslator::translate(Addr va, std::uint64_t bytes, Perm perm)
{
    VNPU_ASSERT(table_.finalized());

    // Range TLB lookup (content-associative over resident entries).
    std::size_t entry_idx = SIZE_MAX;
    for (std::size_t i = 0; i < tlb_.size(); ++i) {
        if (table_.entry(tlb_[i]).contains(va)) {
            entry_idx = tlb_[i];
            // Move to MRU position.
            tlb_.erase(tlb_.begin() + static_cast<std::ptrdiff_t>(i));
            tlb_.insert(tlb_.begin(), entry_idx);
            ++hits_;
            break;
        }
    }

    Cycles stall = 0;
    if (entry_idx == SIZE_MAX) {
        ++misses_;
        int fetches = 0;
        std::optional<std::size_t> found = walk(va, fetches);
        fetched_ += static_cast<std::uint64_t>(fetches);
        stall = static_cast<Cycles>(fetches) * cfg_.rtt_fetch_cycles;
        stall_ += stall;
        if (!found)
            return {0, 0, stall, true};
        entry_idx = *found;

        // Refill TLB (LRU).
        tlb_.insert(tlb_.begin(), entry_idx);
        if (tlb_.size() > capacity_)
            tlb_.pop_back();

        // Teach the previous entry where we went (Pattern-3).
        if (prev_entry_ >= 0 && prev_entry_ != static_cast<int>(entry_idx)) {
            table_.entry(prev_entry_).last_v =
                static_cast<std::int16_t>(entry_idx);
        }
    }

    const RttEntry& e = table_.entry(entry_idx);
    if (!(e.perm & perm))
        return {0, 0, stall, true};

    rtt_cur_ = entry_idx;
    prev_entry_ = static_cast<std::int32_t>(entry_idx);

    std::uint64_t off = va - e.va;
    std::uint64_t remain = e.size - off;
    return {e.pa + off, std::min(remain, bytes), stall, false};
}

void
RangeTlbTranslator::flush()
{
    tlb_.clear();
    rtt_cur_ = 0;
    prev_entry_ = -1;
}

} // namespace vnpu::mem
