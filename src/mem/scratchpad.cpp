#include "mem/scratchpad.h"

#include "sim/log.h"

namespace vnpu::mem {

Scratchpad::Scratchpad(std::uint64_t capacity, std::uint64_t meta_zone)
    : capacity_(capacity), meta_zone_(meta_zone)
{
    if (meta_zone >= capacity)
        fatal("meta-zone (", meta_zone, ") must leave weight-zone space in ",
              capacity, "-byte scratchpad");
}

std::uint64_t
Scratchpad::alloc_weight(const std::string& name, std::uint64_t bytes)
{
    if (!weight_fits(bytes)) {
        fatal("weight-zone overflow: ", name, " needs ", bytes,
              " bytes but only ", weight_zone_capacity() - weight_used_,
              " of ", weight_zone_capacity(), " remain");
    }
    std::uint64_t off = weight_used_;
    weight_used_ += bytes;
    buffers_.emplace_back(name, bytes);
    return off;
}

bool
Scratchpad::weight_fits(std::uint64_t bytes) const
{
    return weight_used_ + bytes <= weight_zone_capacity();
}

void
Scratchpad::release_weights()
{
    weight_used_ = 0;
    buffers_.clear();
}

void
Scratchpad::set_meta_usage(std::uint64_t bytes)
{
    if (bytes > meta_zone_) {
        fatal("meta tables (", bytes, " bytes) exceed the ", meta_zone_,
              "-byte meta-zone");
    }
    meta_used_ = bytes;
}

} // namespace vnpu::mem
