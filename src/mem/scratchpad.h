/**
 * @file
 * Per-core scratchpad SRAM capacity model.
 *
 * vNPU partitions each core's SRAM into a hypervisor-owned *meta-zone*
 * (routing table, range translation table) and a *weight-zone* holding
 * model weights and intermediate results (paper §5.1). This class does
 * the capacity accounting and enforces the meta-zone write restriction.
 */

#ifndef VNPU_MEM_SCRATCHPAD_H
#define VNPU_MEM_SCRATCHPAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace vnpu::mem {

/** Capacity accounting for one core's scratchpad. */
class Scratchpad {
  public:
    /**
     * @param capacity  total SRAM bytes
     * @param meta_zone bytes reserved for hypervisor meta tables
     */
    Scratchpad(std::uint64_t capacity, std::uint64_t meta_zone);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t meta_zone_capacity() const { return meta_zone_; }
    std::uint64_t weight_zone_capacity() const
    {
        return capacity_ - meta_zone_;
    }

    /**
     * Reserve `bytes` of the weight-zone for a named buffer.
     * @return offset of the buffer inside the weight-zone.
     * Calls fatal() when the weight-zone overflows (the compiler must
     * have planned streaming instead).
     */
    std::uint64_t alloc_weight(const std::string& name, std::uint64_t bytes);

    /** True when `bytes` more weight-zone bytes would still fit. */
    bool weight_fits(std::uint64_t bytes) const;

    std::uint64_t weight_used() const { return weight_used_; }

    /** Release all weight-zone buffers (program unload / TDM swap). */
    void release_weights();

    /**
     * Record meta-table residency (hyper-mode controller only).
     * Calls fatal() when the tables exceed the meta-zone.
     */
    void set_meta_usage(std::uint64_t bytes);

    std::uint64_t meta_used() const { return meta_used_; }

    /** Named buffers currently resident (for debugging/tests). */
    const std::vector<std::pair<std::string, std::uint64_t>>&
    buffers() const
    {
        return buffers_;
    }

  private:
    std::uint64_t capacity_;
    std::uint64_t meta_zone_;
    std::uint64_t weight_used_ = 0;
    std::uint64_t meta_used_ = 0;
    std::vector<std::pair<std::string, std::uint64_t>> buffers_;
};

} // namespace vnpu::mem

#endif // VNPU_MEM_SCRATCHPAD_H
