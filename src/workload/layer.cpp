#include "workload/layer.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace vnpu::workload {

const char*
to_string(LayerKind k)
{
    switch (k) {
      case LayerKind::kConv:     return "conv";
      case LayerKind::kLinear:   return "linear";
      case LayerKind::kMatmul:   return "matmul";
      case LayerKind::kPool:     return "pool";
      case LayerKind::kElemwise: return "elemwise";
    }
    return "?";
}

std::uint64_t
Layer::flops(int batch) const
{
    std::uint64_t b = static_cast<std::uint64_t>(batch);
    switch (kind) {
      case LayerKind::kConv: {
        std::uint64_t macs_per_out = depthwise
                                         ? static_cast<std::uint64_t>(
                                               ksize * ksize)
                                         : static_cast<std::uint64_t>(
                                               cin * ksize * ksize);
        return 2 * b * out_h() * out_w() * cout * macs_per_out;
      }
      case LayerKind::kLinear:
      case LayerKind::kMatmul:
        return 2 * b * m * k * n;
      case LayerKind::kPool:
      case LayerKind::kElemwise:
        return b * static_cast<std::uint64_t>(elems);
    }
    return 0;
}

std::uint64_t
Layer::weight_bytes() const
{
    switch (kind) {
      case LayerKind::kConv:
        if (depthwise)
            return static_cast<std::uint64_t>(cout * ksize * ksize) *
                   weight_elem_bytes;
        return static_cast<std::uint64_t>(cin * cout * ksize * ksize) *
               weight_elem_bytes;
      case LayerKind::kLinear:
        return static_cast<std::uint64_t>(k * n) * weight_elem_bytes;
      default:
        return 0;
    }
}

std::uint64_t
Layer::out_bytes(int batch) const
{
    std::uint64_t b = static_cast<std::uint64_t>(batch);
    switch (kind) {
      case LayerKind::kConv:
        return b * out_h() * out_w() * cout * kElemBytes;
      case LayerKind::kLinear:
      case LayerKind::kMatmul:
        return b * m * n * kElemBytes;
      case LayerKind::kPool:
      case LayerKind::kElemwise:
        return b * elems * kElemBytes;
    }
    return 0;
}

std::uint64_t
Layer::in_bytes(int batch) const
{
    std::uint64_t b = static_cast<std::uint64_t>(batch);
    switch (kind) {
      case LayerKind::kConv:
        return b * h * w * cin * kElemBytes;
      case LayerKind::kLinear:
      case LayerKind::kMatmul:
        return b * m * k * kElemBytes;
      case LayerKind::kPool:
      case LayerKind::kElemwise:
        return b * elems * kElemBytes;
    }
    return 0;
}

core::ComputeDims
Layer::lowered(int batch, double fraction) const
{
    VNPU_ASSERT(fraction > 0.0 && fraction <= 1.0);
    core::ComputeDims d;
    switch (kind) {
      case LayerKind::kConv: {
        d.kind = core::ComputeKind::kConv;
        d.oh = out_h() * batch; // batch folded into the spatial dim
        d.ow = out_w();
        d.cin = depthwise ? ksize : cin; // depthwise: K = k*k per channel
        d.cout = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(std::llround(cout * fraction)));
        d.ksize = ksize;
        break;
      }
      case LayerKind::kLinear:
      case LayerKind::kMatmul: {
        d.kind = core::ComputeKind::kMatmul;
        d.m = m * batch;
        d.k = k;
        d.n = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(std::llround(n * fraction)));
        break;
      }
      case LayerKind::kPool:
      case LayerKind::kElemwise: {
        d.kind = core::ComputeKind::kVector;
        d.elems = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   std::llround(elems * batch * fraction)));
        break;
      }
    }
    return d;
}

Layer
Layer::conv(std::string name, std::int64_t h, std::int64_t w,
            std::int64_t cin, std::int64_t cout, std::int64_t ksize,
            std::int64_t stride, bool depthwise)
{
    Layer l;
    l.kind = LayerKind::kConv;
    l.name = std::move(name);
    l.h = h;
    l.w = w;
    l.cin = cin;
    l.cout = cout;
    l.ksize = ksize;
    l.stride = stride;
    l.depthwise = depthwise;
    return l;
}

Layer
Layer::linear(std::string name, std::int64_t m, std::int64_t k,
              std::int64_t n)
{
    Layer l;
    l.kind = LayerKind::kLinear;
    l.name = std::move(name);
    l.m = m;
    l.k = k;
    l.n = n;
    return l;
}

Layer
Layer::matmul(std::string name, std::int64_t m, std::int64_t k,
              std::int64_t n)
{
    Layer l = linear(std::move(name), m, k, n);
    l.kind = LayerKind::kMatmul;
    return l;
}

Layer
Layer::pool(std::string name, std::int64_t elems)
{
    Layer l;
    l.kind = LayerKind::kPool;
    l.name = std::move(name);
    l.elems = elems;
    return l;
}

Layer
Layer::elemwise(std::string name, std::int64_t elems)
{
    Layer l = pool(std::move(name), elems);
    l.kind = LayerKind::kElemwise;
    return l;
}

std::uint64_t
Model::total_flops() const
{
    std::uint64_t total = 0;
    for (const Layer& l : layers)
        total += l.flops(batch);
    return total;
}

std::uint64_t
Model::total_weight_bytes() const
{
    std::uint64_t total = 0;
    for (const Layer& l : layers)
        total += l.weight_bytes();
    return total;
}

void
Model::set_weight_precision(int bytes)
{
    if (bytes < 1 || bytes > 8)
        fatal("weight precision must be 1..8 bytes, got ", bytes);
    for (Layer& l : layers)
        l.weight_elem_bytes = static_cast<std::uint8_t>(bytes);
}

void
Model::validate() const
{
    if (layers.empty())
        fatal("model ", name, " has no layers");
    for (std::size_t i = 0; i < layers.size(); ++i) {
        for (int in : layers[i].inputs) {
            if (in < 0 || static_cast<std::size_t>(in) >= i) {
                fatal("model ", name, ": layer ", i,
                      " consumes non-preceding layer ", in);
            }
        }
    }
}

} // namespace vnpu::workload
