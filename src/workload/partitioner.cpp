#include "workload/partitioner.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/log.h"

namespace vnpu::workload {

std::uint64_t
PipelinePlan::stage_flops(const Model& m, int stage) const
{
    double total = 0;
    for (const StageSlice& s : stages[stage].slices)
        total += s.fraction * static_cast<double>(
                                  m.layers[s.layer].flops(m.batch));
    return static_cast<std::uint64_t>(total);
}

std::uint64_t
PipelinePlan::stage_weight_bytes(const Model& m, int stage) const
{
    double total = 0;
    for (const StageSlice& s : stages[stage].slices)
        total += s.fraction *
                 static_cast<double>(m.layers[s.layer].weight_bytes());
    return static_cast<std::uint64_t>(total);
}

double
PipelinePlan::imbalance(const Model& m) const
{
    std::uint64_t max_f = 0, sum = 0;
    for (int s = 0; s < num_stages; ++s) {
        std::uint64_t f = stage_flops(m, s);
        max_f = std::max(max_f, f);
        sum += f;
    }
    double mean = static_cast<double>(sum) / num_stages;
    return mean > 0 ? static_cast<double>(max_f) / mean : 1.0;
}

PipelinePlan
make_pipeline_plan(const Model& m, int num_stages)
{
    if (num_stages < 1)
        fatal("pipeline needs at least one stage");
    m.validate();

    PipelinePlan plan;

    // 1. Contiguous cut of the (topological) layer order into
    //    min(num_stages, L) parts minimizing the maximum stage FLOPs
    //    (classic linear-partition dynamic program).
    const int L = static_cast<int>(m.layers.size());
    const int parts = std::min(num_stages, L);
    std::vector<double> pre(L + 1, 0.0);
    for (int l = 0; l < L; ++l)
        pre[l + 1] = pre[l] + static_cast<double>(m.layers[l].flops(m.batch));

    constexpr double kInf = 1e300;
    // dp[s][i]: minimal max-load splitting the first i layers into s
    // parts; cut[s][i]: position of the last boundary.
    std::vector<std::vector<double>> dp(parts + 1,
                                        std::vector<double>(L + 1, kInf));
    std::vector<std::vector<int>> cut(parts + 1,
                                      std::vector<int>(L + 1, 0));
    for (int i = 1; i <= L; ++i)
        dp[1][i] = pre[i];
    for (int s = 2; s <= parts; ++s) {
        for (int i = s; i <= L; ++i) {
            for (int j = s - 1; j < i; ++j) {
                double load = std::max(dp[s - 1][j], pre[i] - pre[j]);
                if (load < dp[s][i]) {
                    dp[s][i] = load;
                    cut[s][i] = j;
                }
            }
        }
    }
    std::vector<int> bounds(parts + 1);
    bounds[parts] = L;
    for (int s = parts; s >= 1; --s)
        bounds[s - 1] = cut[s][bounds[s]];
    for (int s = 0; s < parts; ++s) {
        Stage stage;
        for (int l = bounds[s]; l < bounds[s + 1]; ++l)
            stage.slices.push_back({l, 1.0});
        plan.stages.push_back(std::move(stage));
    }

    // 2. Grow to exactly num_stages by splitting the heaviest stage:
    //    multi-slice stages split their layer list; single-slice stages
    //    split by output channels (data parallel within the layer).
    auto stage_cost = [&](const Stage& s) {
        double f = 0;
        for (const StageSlice& sl : s.slices)
            f += sl.fraction *
                 static_cast<double>(m.layers[sl.layer].flops(m.batch));
        return f;
    };
    while (static_cast<int>(plan.stages.size()) < num_stages) {
        int heavy = 0;
        double heavy_cost = -1;
        for (int s = 0; s < static_cast<int>(plan.stages.size()); ++s) {
            double c = stage_cost(plan.stages[s]);
            if (c > heavy_cost) {
                heavy_cost = c;
                heavy = s;
            }
        }
        Stage& hs = plan.stages[heavy];
        Stage second;
        if (hs.slices.size() > 1) {
            // Move the tail slices (about half the FLOPs) to a new stage.
            double half = heavy_cost / 2, run = 0;
            std::size_t split = hs.slices.size() - 1;
            for (std::size_t i = 0; i < hs.slices.size(); ++i) {
                run += hs.slices[i].fraction *
                       static_cast<double>(
                           m.layers[hs.slices[i].layer].flops(m.batch));
                if (run >= half) {
                    split = std::max<std::size_t>(1, i + 1);
                    break;
                }
            }
            split = std::min(split, hs.slices.size() - 1);
            second.slices.assign(hs.slices.begin() + split,
                                 hs.slices.end());
            hs.slices.resize(split);
        } else {
            // Channel split of a single slice.
            StageSlice& sl = hs.slices.front();
            second.slices.push_back({sl.layer, sl.fraction / 2});
            sl.fraction /= 2;
        }
        plan.stages.insert(plan.stages.begin() + heavy + 1,
                           std::move(second));
    }
    plan.num_stages = static_cast<int>(plan.stages.size());
    VNPU_ASSERT(plan.num_stages == num_stages);

    // 3. Dataflow edges: producer slices feed every stage holding a
    //    consumer slice (channel-split consumers need the whole input).
    //    producer_stages[l] = list of (stage, fraction).
    std::vector<std::vector<std::pair<int, double>>> producers(
        m.layers.size());
    for (int s = 0; s < plan.num_stages; ++s)
        for (const StageSlice& sl : plan.stages[s].slices)
            producers[sl.layer].emplace_back(s, sl.fraction);

    int tag = 0;
    for (int s = 0; s < plan.num_stages; ++s) {
        std::set<int> handled_inputs;
        for (const StageSlice& sl : plan.stages[s].slices) {
            for (int u : m.layers[sl.layer].inputs) {
                if (!handled_inputs.insert(u).second)
                    continue; // this stage already receives layer u
                for (auto [ps, frac] : producers[u]) {
                    if (ps == s)
                        continue;
                    std::uint64_t bytes = static_cast<std::uint64_t>(
                        std::llround(frac * static_cast<double>(
                                                m.layers[u].out_bytes(
                                                    m.batch))));
                    bytes = std::max<std::uint64_t>(bytes, kElemBytes);
                    plan.edges.push_back({ps, s, bytes, tag++});
                }
            }
        }
    }
    return plan;
}

} // namespace vnpu::workload
