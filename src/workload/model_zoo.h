/**
 * @file
 * Model zoo: the workloads used across the paper's evaluation, built
 * from public architecture descriptions.
 *
 * CNNs take 224x224x3 inputs unless noted. Transformer models cover
 * the decoder blocks only (embedding tables live in HBM and are
 * gathered, not resident). The Figure 15 micro-blocks
 * (transformer_block / resnet_block) match the paper's labels, e.g.
 * "128dim_16slen" and "16wh_64c".
 */

#ifndef VNPU_WORKLOAD_MODEL_ZOO_H
#define VNPU_WORKLOAD_MODEL_ZOO_H

#include "workload/layer.h"

namespace vnpu::workload {

/** GPT-2 family sizes. */
enum class Gpt2Size { kSmall, kMedium, kLarge };

// ---- CNNs ---------------------------------------------------------------
Model alexnet(int batch = 1);
Model resnet18(int batch = 1);
Model resnet34(int batch = 1);
Model resnet50(int batch = 1);
Model googlenet(int batch = 1);
Model mobilenet(int batch = 1);
Model yololite(int batch = 1);
Model retinanet(int batch = 1);   ///< ResNet backbone + detection head.
Model efficientnet(int batch = 1);

// ---- Transformers ----------------------------------------------------------
Model gpt2(Gpt2Size size, int seq = 128, int batch = 1);
Model bert_base(int seq = 128, int batch = 1);
Model transformer(int seq = 64, int dim = 512, int layers = 6,
                  int batch = 1); ///< generic encoder stack (Fig 14)

// ---- Recommendation ----------------------------------------------------------
Model dlrm(int batch = 1);

// ---- Figure 15 micro-blocks -------------------------------------------------
/** One transformer decoder block, e.g. dim=128, seq=16. */
Model transformer_block(int dim, int seq, int batch = 1);
/** One residual CNN block, e.g. wh=16, c=64. */
Model resnet_block(int wh, int channels, int batch = 1);

/** Look up a model by short name ("resnet34", "gpt2-l", ...). */
Model by_name(const std::string& name, int batch = 1);

} // namespace vnpu::workload

#endif // VNPU_WORKLOAD_MODEL_ZOO_H
