#include "workload/model_zoo.h"

#include "sim/log.h"

namespace vnpu::workload {

namespace {

/** Append a layer consuming the previous one; returns its index. */
int
chain(Model& m, Layer l)
{
    if (!m.layers.empty())
        l.inputs = {static_cast<int>(m.layers.size()) - 1};
    m.layers.push_back(std::move(l));
    return static_cast<int>(m.layers.size()) - 1;
}

/** Append a layer with explicit inputs; returns its index. */
int
add(Model& m, Layer l, std::vector<int> inputs)
{
    l.inputs = std::move(inputs);
    m.layers.push_back(std::move(l));
    return static_cast<int>(m.layers.size()) - 1;
}

/**
 * A ResNet basic block: two 3x3 convs + skip add. `prev` is the input
 * layer index; returns the output layer index.
 */
int
basic_block(Model& m, int prev, std::int64_t hw, std::int64_t cin,
            std::int64_t cout, std::int64_t stride, const std::string& tag)
{
    int c1 = add(m,
                 Layer::conv(tag + ".conv1", hw, hw, cin, cout, 3, stride),
                 {prev});
    std::int64_t ohw = hw / stride;
    int c2 = add(m, Layer::conv(tag + ".conv2", ohw, ohw, cout, cout, 3, 1),
                 {c1});
    int skip = prev;
    if (stride != 1 || cin != cout) {
        skip = add(m,
                   Layer::conv(tag + ".down", hw, hw, cin, cout, 1, stride),
                   {prev});
    }
    return add(m, Layer::elemwise(tag + ".add", ohw * ohw * cout),
               {c2, skip});
}

/** Bottleneck block (ResNet-50 style). */
int
bottleneck(Model& m, int prev, std::int64_t hw, std::int64_t cin,
           std::int64_t mid, std::int64_t stride, const std::string& tag)
{
    std::int64_t cout = mid * 4;
    int c1 = add(m, Layer::conv(tag + ".c1", hw, hw, cin, mid, 1, 1),
                 {prev});
    int c2 = add(m, Layer::conv(tag + ".c2", hw, hw, mid, mid, 3, stride),
                 {c1});
    std::int64_t ohw = hw / stride;
    int c3 = add(m, Layer::conv(tag + ".c3", ohw, ohw, mid, cout, 1, 1),
                 {c2});
    int skip = prev;
    if (stride != 1 || cin != cout) {
        skip = add(m,
                   Layer::conv(tag + ".down", hw, hw, cin, cout, 1, stride),
                   {prev});
    }
    return add(m, Layer::elemwise(tag + ".add", ohw * ohw * cout),
               {c3, skip});
}

Model
resnet(const std::string& name, const std::vector<int>& stage_blocks,
       int batch)
{
    Model m;
    m.name = name;
    m.batch = batch;
    chain(m, Layer::conv("stem", 224, 224, 3, 64, 7, 2));   // 112x112x64
    chain(m, Layer::pool("maxpool", 56ll * 56 * 64));        // 56x56x64
    int prev = static_cast<int>(m.layers.size()) - 1;

    const std::int64_t chans[4] = {64, 128, 256, 512};
    std::int64_t hw = 56;
    std::int64_t cin = 64;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < stage_blocks[s]; ++b) {
            std::int64_t stride = (s > 0 && b == 0) ? 2 : 1;
            std::string tag =
                "s" + std::to_string(s + 1) + "b" + std::to_string(b + 1);
            prev = basic_block(m, prev, hw, cin, chans[s], stride, tag);
            hw /= stride;
            cin = chans[s];
        }
    }
    add(m, Layer::pool("avgpool", cin), {prev});
    chain(m, Layer::linear("fc", 1, cin, 1000));
    m.validate();
    return m;
}

/** One transformer decoder block appended after `prev`. */
int
decoder_block(Model& m, int prev, std::int64_t seq, std::int64_t dim,
              const std::string& tag)
{
    int ln1 = add(m, Layer::elemwise(tag + ".ln1", seq * dim), {prev});
    int qkv = add(m, Layer::linear(tag + ".qkv", seq, dim, 3 * dim), {ln1});
    // Scores and weighted sum across all heads.
    int att = add(m, Layer::matmul(tag + ".scores", seq, dim, seq), {qkv});
    int ctx = add(m, Layer::matmul(tag + ".ctx", seq, seq, dim), {att});
    int proj = add(m, Layer::linear(tag + ".proj", seq, dim, dim), {ctx});
    int res1 = add(m, Layer::elemwise(tag + ".add1", seq * dim),
                   {proj, prev});
    int ln2 = add(m, Layer::elemwise(tag + ".ln2", seq * dim), {res1});
    int ff1 = add(m, Layer::linear(tag + ".ff1", seq, dim, 4 * dim), {ln2});
    int ff2 = add(m, Layer::linear(tag + ".ff2", seq, 4 * dim, dim), {ff1});
    return add(m, Layer::elemwise(tag + ".add2", seq * dim), {ff2, res1});
}

Model
decoder_stack(const std::string& name, int layers, std::int64_t seq,
              std::int64_t dim, int batch)
{
    Model m;
    m.name = name;
    m.batch = batch;
    chain(m, Layer::elemwise("embed", seq * dim));
    int prev = 0;
    for (int i = 0; i < layers; ++i)
        prev = decoder_block(m, prev, seq, dim, "blk" + std::to_string(i));
    add(m, Layer::elemwise("ln_f", seq * dim), {prev});
    m.validate();
    return m;
}

} // namespace

Model
alexnet(int batch)
{
    Model m;
    m.name = "alexnet";
    m.batch = batch;
    chain(m, Layer::conv("c1", 224, 224, 3, 64, 11, 4));
    chain(m, Layer::pool("p1", 55ll * 55 * 64));
    chain(m, Layer::conv("c2", 27, 27, 64, 192, 5, 1));
    chain(m, Layer::pool("p2", 27ll * 27 * 192));
    chain(m, Layer::conv("c3", 13, 13, 192, 384, 3, 1));
    chain(m, Layer::conv("c4", 13, 13, 384, 256, 3, 1));
    chain(m, Layer::conv("c5", 13, 13, 256, 256, 3, 1));
    chain(m, Layer::pool("p3", 13ll * 13 * 256));
    chain(m, Layer::linear("fc6", 1, 9216, 4096));
    chain(m, Layer::linear("fc7", 1, 4096, 4096));
    chain(m, Layer::linear("fc8", 1, 4096, 1000));
    m.validate();
    return m;
}

Model
resnet18(int batch)
{
    return resnet("resnet18", {2, 2, 2, 2}, batch);
}

Model
resnet34(int batch)
{
    return resnet("resnet34", {3, 4, 6, 3}, batch);
}

Model
resnet50(int batch)
{
    Model m;
    m.name = "resnet50";
    m.batch = batch;
    chain(m, Layer::conv("stem", 224, 224, 3, 64, 7, 2));
    chain(m, Layer::pool("maxpool", 56ll * 56 * 64));
    int prev = static_cast<int>(m.layers.size()) - 1;
    const int blocks[4] = {3, 4, 6, 3};
    const std::int64_t mids[4] = {64, 128, 256, 512};
    std::int64_t hw = 56, cin = 64;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < blocks[s]; ++b) {
            std::int64_t stride = (s > 0 && b == 0) ? 2 : 1;
            std::string tag =
                "s" + std::to_string(s + 1) + "b" + std::to_string(b + 1);
            prev = bottleneck(m, prev, hw, cin, mids[s], stride, tag);
            hw /= stride;
            cin = mids[s] * 4;
        }
    }
    add(m, Layer::pool("avgpool", cin), {prev});
    chain(m, Layer::linear("fc", 1, cin, 1000));
    m.validate();
    return m;
}

Model
googlenet(int batch)
{
    // Inception modules approximated by their four branches.
    Model m;
    m.name = "googlenet";
    m.batch = batch;
    chain(m, Layer::conv("stem1", 224, 224, 3, 64, 7, 2));
    chain(m, Layer::pool("p1", 56ll * 56 * 64));
    chain(m, Layer::conv("stem2", 56, 56, 64, 192, 3, 1));
    chain(m, Layer::pool("p2", 28ll * 28 * 192));
    int prev = static_cast<int>(m.layers.size()) - 1;

    struct Inc { std::int64_t hw, cin, b1, b3r, b3, b5r, b5, pp; };
    const Inc incs[] = {
        {28, 192, 64, 96, 128, 16, 32, 32},   {28, 256, 128, 128, 192, 32, 96, 64},
        {14, 480, 192, 96, 208, 16, 48, 64},  {14, 512, 160, 112, 224, 24, 64, 64},
        {14, 512, 128, 128, 256, 24, 64, 64}, {14, 512, 112, 144, 288, 32, 64, 64},
        {14, 528, 256, 160, 320, 32, 128, 128},
        {7, 832, 256, 160, 320, 32, 128, 128},
        {7, 832, 384, 192, 384, 48, 128, 128},
    };
    int idx = 0;
    for (const Inc& ic : incs) {
        std::string tag = "inc" + std::to_string(++idx);
        int b1 = add(m, Layer::conv(tag + ".1x1", ic.hw, ic.hw, ic.cin,
                                    ic.b1, 1, 1), {prev});
        int b3r = add(m, Layer::conv(tag + ".3r", ic.hw, ic.hw, ic.cin,
                                     ic.b3r, 1, 1), {prev});
        int b3 = add(m, Layer::conv(tag + ".3x3", ic.hw, ic.hw, ic.b3r,
                                    ic.b3, 3, 1), {b3r});
        int b5r = add(m, Layer::conv(tag + ".5r", ic.hw, ic.hw, ic.cin,
                                     ic.b5r, 1, 1), {prev});
        int b5 = add(m, Layer::conv(tag + ".5x5", ic.hw, ic.hw, ic.b5r,
                                    ic.b5, 5, 1), {b5r});
        int pp = add(m, Layer::conv(tag + ".pp", ic.hw, ic.hw, ic.cin,
                                    ic.pp, 1, 1), {prev});
        std::int64_t cat =
            ic.hw * ic.hw * (ic.b1 + ic.b3 + ic.b5 + ic.pp);
        prev = add(m, Layer::elemwise(tag + ".cat", cat), {b1, b3, b5, pp});
    }
    add(m, Layer::pool("avgpool", 1024), {prev});
    chain(m, Layer::linear("fc", 1, 1024, 1000));
    m.validate();
    return m;
}

Model
mobilenet(int batch)
{
    Model m;
    m.name = "mobilenet";
    m.batch = batch;
    chain(m, Layer::conv("stem", 224, 224, 3, 32, 3, 2));
    struct Dw { std::int64_t hw, cin, cout, stride; };
    const Dw dws[] = {
        {112, 32, 64, 1},  {112, 64, 128, 2}, {56, 128, 128, 1},
        {56, 128, 256, 2}, {28, 256, 256, 1}, {28, 256, 512, 2},
        {14, 512, 512, 1}, {14, 512, 512, 1}, {14, 512, 512, 1},
        {14, 512, 512, 1}, {14, 512, 512, 1}, {14, 512, 1024, 2},
        {7, 1024, 1024, 1},
    };
    int idx = 0;
    for (const Dw& d : dws) {
        std::string tag = "dw" + std::to_string(++idx);
        chain(m, Layer::conv(tag + ".dw", d.hw, d.hw, d.cin, d.cin, 3,
                             d.stride, /*depthwise=*/true));
        std::int64_t ohw = d.hw / d.stride;
        chain(m, Layer::conv(tag + ".pw", ohw, ohw, d.cin, d.cout, 1, 1));
    }
    chain(m, Layer::pool("avgpool", 1024));
    chain(m, Layer::linear("fc", 1, 1024, 1000));
    m.validate();
    return m;
}

Model
yololite(int batch)
{
    Model m;
    m.name = "yololite";
    m.batch = batch;
    chain(m, Layer::conv("c1", 224, 224, 3, 16, 3, 1));
    chain(m, Layer::pool("p1", 112ll * 112 * 16));
    chain(m, Layer::conv("c2", 112, 112, 16, 32, 3, 1));
    chain(m, Layer::pool("p2", 56ll * 56 * 32));
    chain(m, Layer::conv("c3", 56, 56, 32, 64, 3, 1));
    chain(m, Layer::pool("p3", 28ll * 28 * 64));
    chain(m, Layer::conv("c4", 28, 28, 64, 128, 3, 1));
    chain(m, Layer::pool("p4", 14ll * 14 * 128));
    chain(m, Layer::conv("c5", 14, 14, 128, 128, 3, 1));
    chain(m, Layer::conv("c6", 14, 14, 128, 125, 1, 1));
    m.validate();
    return m;
}

Model
retinanet(int batch)
{
    Model m = resnet50(batch);
    m.name = "retinanet";
    // Detection head: class + box towers on the last feature map.
    int prev = static_cast<int>(m.layers.size()) - 1;
    for (int i = 0; i < 4; ++i) {
        prev = add(m, Layer::conv("head.c" + std::to_string(i), 7, 7, 256,
                                  256, 3, 1), {prev});
    }
    add(m, Layer::conv("head.cls", 7, 7, 256, 720, 3, 1), {prev});
    add(m, Layer::conv("head.box", 7, 7, 256, 36, 3, 1), {prev});
    m.validate();
    return m;
}

Model
efficientnet(int batch)
{
    // EfficientNet-B0 approximated by its MBConv stages.
    Model m;
    m.name = "efficientnet";
    m.batch = batch;
    chain(m, Layer::conv("stem", 224, 224, 3, 32, 3, 2));
    struct Mb { std::int64_t hw, cin, cout, k, stride, expand; };
    const Mb mbs[] = {
        {112, 32, 16, 3, 1, 1},  {112, 16, 24, 3, 2, 6},
        {56, 24, 40, 5, 2, 6},   {28, 40, 80, 3, 2, 6},
        {14, 80, 112, 5, 1, 6},  {14, 112, 192, 5, 2, 6},
        {7, 192, 320, 3, 1, 6},
    };
    int idx = 0;
    for (const Mb& b : mbs) {
        std::string tag = "mb" + std::to_string(++idx);
        std::int64_t mid = b.cin * b.expand;
        if (b.expand > 1)
            chain(m, Layer::conv(tag + ".exp", b.hw, b.hw, b.cin, mid, 1, 1));
        chain(m, Layer::conv(tag + ".dw", b.hw, b.hw, mid, mid, b.k,
                             b.stride, /*depthwise=*/true));
        std::int64_t ohw = b.hw / b.stride;
        chain(m, Layer::conv(tag + ".pw", ohw, ohw, mid, b.cout, 1, 1));
    }
    chain(m, Layer::conv("head", 7, 7, 320, 1280, 1, 1));
    chain(m, Layer::pool("avgpool", 1280));
    chain(m, Layer::linear("fc", 1, 1280, 1000));
    m.validate();
    return m;
}

Model
gpt2(Gpt2Size size, int seq, int batch)
{
    switch (size) {
      case Gpt2Size::kSmall:
        return decoder_stack("gpt2-s", 12, seq, 768, batch);
      case Gpt2Size::kMedium:
        return decoder_stack("gpt2-m", 24, seq, 1024, batch);
      case Gpt2Size::kLarge:
        return decoder_stack("gpt2-l", 36, seq, 1280, batch);
    }
    panic("unknown gpt2 size");
}

Model
bert_base(int seq, int batch)
{
    return decoder_stack("bert", 12, seq, 768, batch);
}

Model
transformer(int seq, int dim, int layers, int batch)
{
    return decoder_stack("transformer", layers, seq, dim, batch);
}

Model
dlrm(int batch)
{
    Model m;
    m.name = "dlrm";
    m.batch = batch;
    // Bottom MLP + feature interaction + top MLP (embedding gathers are
    // HBM traffic, not resident weights).
    chain(m, Layer::linear("bot1", 1, 13, 512));
    chain(m, Layer::linear("bot2", 1, 512, 256));
    chain(m, Layer::linear("bot3", 1, 256, 128));
    chain(m, Layer::matmul("interact", 27, 128, 27));
    chain(m, Layer::linear("top1", 1, 479, 1024));
    chain(m, Layer::linear("top2", 1, 1024, 1024));
    chain(m, Layer::linear("top3", 1, 1024, 256));
    chain(m, Layer::linear("top4", 1, 256, 1));
    m.validate();
    return m;
}

Model
transformer_block(int dim, int seq, int batch)
{
    Model m;
    m.name = std::to_string(dim) + "dim_" + std::to_string(seq) + "slen";
    m.batch = batch;
    chain(m, Layer::elemwise("in", static_cast<std::int64_t>(seq) * dim));
    decoder_block(m, 0, seq, dim, "blk");
    m.validate();
    return m;
}

Model
resnet_block(int wh, int channels, int batch)
{
    Model m;
    m.name = std::to_string(wh) + "wh_" + std::to_string(channels) + "c";
    m.batch = batch;
    chain(m, Layer::elemwise(
                 "in", static_cast<std::int64_t>(wh) * wh * channels));
    basic_block(m, 0, wh, channels, channels, 1, "blk");
    m.validate();
    return m;
}

Model
by_name(const std::string& name, int batch)
{
    if (name == "alexnet") return alexnet(batch);
    if (name == "resnet18") return resnet18(batch);
    if (name == "resnet34") return resnet34(batch);
    if (name == "resnet50") return resnet50(batch);
    if (name == "googlenet") return googlenet(batch);
    if (name == "mobilenet") return mobilenet(batch);
    if (name == "yololite") return yololite(batch);
    if (name == "retinanet") return retinanet(batch);
    if (name == "efficientnet") return efficientnet(batch);
    if (name == "gpt2-s") return gpt2(Gpt2Size::kSmall, 128, batch);
    if (name == "gpt2-m") return gpt2(Gpt2Size::kMedium, 128, batch);
    if (name == "gpt2-l") return gpt2(Gpt2Size::kLarge, 128, batch);
    if (name == "bert") return bert_base(128, batch);
    if (name == "dlrm") return dlrm(batch);
    if (name == "transformer") return transformer(64, 512, 6, batch);
    fatal("unknown model '", name, "'");
}

} // namespace vnpu::workload
