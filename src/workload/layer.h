/**
 * @file
 * ML workload intermediate representation: a DAG of layers with enough
 * shape information to derive FLOPs, weight bytes, activation bytes,
 * and the lowered compute kernels for the NPU.
 *
 * All tensors are fp16 (2 bytes/element), matching inference practice
 * on the NPUs the paper targets.
 */

#ifndef VNPU_WORKLOAD_LAYER_H
#define VNPU_WORKLOAD_LAYER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/isa.h"
#include "sim/types.h"

namespace vnpu::workload {

/** Bytes per tensor element (fp16). */
inline constexpr std::uint64_t kElemBytes = 2;

/** Layer families. */
enum class LayerKind : std::uint8_t {
    kConv,     ///< 2D convolution (optionally depthwise).
    kLinear,   ///< Fully connected / projection (weights k x n).
    kMatmul,   ///< Activation-activation matmul (no weights).
    kPool,     ///< Pooling (vector unit).
    kElemwise, ///< Residual add / activation / layernorm.
};

const char* to_string(LayerKind k);

/** One layer of a model DAG. */
struct Layer {
    LayerKind kind = LayerKind::kElemwise;
    std::string name;

    // Conv parameters (input spatial h x w).
    std::int64_t h = 0, w = 0, cin = 0, cout = 0;
    std::int64_t ksize = 1, stride = 1;
    bool depthwise = false;

    // Linear / matmul parameters (m rows per batch item).
    std::int64_t m = 0, k = 0, n = 0;

    // Pool / elemwise element count per batch item.
    std::int64_t elems = 0;

    /** Bytes per weight element (2 = fp16, 1 = int8-quantized). */
    std::uint8_t weight_elem_bytes = kElemBytes;

    /** Producer layer indices (empty = model input). */
    std::vector<int> inputs;

    // ---- Derived quantities -------------------------------------------
    std::int64_t out_h() const { return kind == LayerKind::kConv ? h / stride : 0; }
    std::int64_t out_w() const { return kind == LayerKind::kConv ? w / stride : 0; }

    /** FLOPs for a batch of `batch` inputs (MAC = 2 FLOPs). */
    std::uint64_t flops(int batch) const;

    /** Resident weight bytes (0 for weight-less layers). */
    std::uint64_t weight_bytes() const;

    /** Output activation bytes for a batch. */
    std::uint64_t out_bytes(int batch) const;

    /** Input activation bytes for a batch (model-input DMA sizing). */
    std::uint64_t in_bytes(int batch) const;

    /**
     * Lower (a channel/output fraction of) this layer to a compute
     * kernel. `fraction` in (0, 1] selects a slice of the output
     * channels (conv) or output features (linear) for split layers.
     */
    core::ComputeDims lowered(int batch, double fraction) const;

    // ---- Factories ------------------------------------------------------
    static Layer conv(std::string name, std::int64_t h, std::int64_t w,
                      std::int64_t cin, std::int64_t cout,
                      std::int64_t ksize, std::int64_t stride = 1,
                      bool depthwise = false);
    static Layer linear(std::string name, std::int64_t m, std::int64_t k,
                        std::int64_t n);
    static Layer matmul(std::string name, std::int64_t m, std::int64_t k,
                        std::int64_t n);
    static Layer pool(std::string name, std::int64_t elems);
    static Layer elemwise(std::string name, std::int64_t elems);
};

/** A whole model: a topologically ordered layer DAG. */
struct Model {
    std::string name;
    int batch = 1;
    std::vector<Layer> layers;

    std::uint64_t total_flops() const;
    std::uint64_t total_weight_bytes() const;

    /**
     * Quantize all weights to `bytes` per element (e.g. 1 for int8
     * inference, common on NPUs; activations stay fp16).
     */
    void set_weight_precision(int bytes);

    /** Validate DAG invariants (inputs precede consumers). */
    void validate() const;
};

} // namespace vnpu::workload

#endif // VNPU_WORKLOAD_LAYER_H
