/**
 * @file
 * Pipeline partitioner: maps a model DAG onto N virtual cores.
 *
 * This mirrors how IPU-style toolchains place a computation graph: the
 * layer sequence is cut into N FLOP-balanced pipeline stages (stage i
 * runs on virtual core i, which is why the requested virtual topology
 * is a snake through a mesh). When there are more cores than layers,
 * the heaviest layers are split by output channels across several
 * cores.
 */

#ifndef VNPU_WORKLOAD_PARTITIONER_H
#define VNPU_WORKLOAD_PARTITIONER_H

#include <cstdint>
#include <vector>

#include "workload/layer.h"

namespace vnpu::workload {

/** A fraction of one layer assigned to a stage. */
struct StageSlice {
    int layer = -1;        ///< Index into Model::layers.
    double fraction = 1.0; ///< Output-channel fraction (0, 1].
};

/** One pipeline stage (one virtual core). */
struct Stage {
    std::vector<StageSlice> slices;
};

/** A dataflow edge between stages. */
struct CommEdge {
    int src_stage = -1;
    int dst_stage = -1;
    std::uint64_t bytes = 0;
    int tag = 0;           ///< Unique per edge within the plan.
};

/** The full placement of a model onto N cores. */
struct PipelinePlan {
    int num_stages = 0;
    std::vector<Stage> stages;
    std::vector<CommEdge> edges;

    /** FLOPs executed by one stage per iteration. */
    std::uint64_t stage_flops(const Model& m, int stage) const;

    /** Resident weight bytes of one stage. */
    std::uint64_t stage_weight_bytes(const Model& m, int stage) const;

    /** Ratio of the heaviest stage to the mean (balance quality). */
    double imbalance(const Model& m) const;
};

/**
 * Build a FLOP-balanced pipeline plan over `num_stages` stages.
 * @pre num_stages >= 1
 */
PipelinePlan make_pipeline_plan(const Model& m, int num_stages);

} // namespace vnpu::workload

#endif // VNPU_WORKLOAD_PARTITIONER_H
