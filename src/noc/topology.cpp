#include "noc/topology.h"

#include <cstdlib>

#include "sim/log.h"

namespace vnpu::noc {

const char*
to_string(Direction d)
{
    switch (d) {
      case Direction::kEast:  return "E";
      case Direction::kWest:  return "W";
      case Direction::kNorth: return "N";
      case Direction::kSouth: return "S";
      case Direction::kLocal: return "L";
    }
    return "?";
}

MeshTopology::MeshTopology(int w, int h) : w_(w), h_(h)
{
    if (w <= 0 || h <= 0 || w * h > kMaxMeshNodes)
        fatal("invalid mesh dimensions ", w, "x", h);
}

int
MeshTopology::hop_distance(int a, int b) const
{
    VNPU_ASSERT(valid(a) && valid(b));
    return std::abs(x_of(a) - x_of(b)) + std::abs(y_of(a) - y_of(b));
}

bool
MeshTopology::adjacent(int a, int b) const
{
    return hop_distance(a, b) == 1;
}

Direction
MeshTopology::dir_to(int from, int to) const
{
    VNPU_ASSERT(adjacent(from, to));
    if (to == from + 1)
        return Direction::kEast;
    if (to == from - 1)
        return Direction::kWest;
    if (to == from - w_)
        return Direction::kNorth;
    return Direction::kSouth;
}

int
MeshTopology::neighbor(int id, Direction d) const
{
    VNPU_ASSERT(valid(id));
    int x = x_of(id), y = y_of(id);
    switch (d) {
      case Direction::kEast:  return x + 1 < w_ ? id + 1 : kInvalidCore;
      case Direction::kWest:  return x > 0 ? id - 1 : kInvalidCore;
      case Direction::kNorth: return y > 0 ? id - w_ : kInvalidCore;
      case Direction::kSouth: return y + 1 < h_ ? id + w_ : kInvalidCore;
      case Direction::kLocal: return id;
    }
    return kInvalidCore;
}

int
MeshTopology::xy_next_hop(int cur, int dst) const
{
    VNPU_ASSERT(valid(cur) && valid(dst) && cur != dst);
    if (x_of(cur) < x_of(dst))
        return cur + 1;
    if (x_of(cur) > x_of(dst))
        return cur - 1;
    return y_of(cur) < y_of(dst) ? cur + w_ : cur - w_;
}

graph::Graph
MeshTopology::to_graph() const
{
    return graph::Graph::mesh(w_, h_);
}

int
MeshTopology::channel_of(int id, int channels) const
{
    VNPU_ASSERT(valid(id) && channels > 0);
    return y_of(id) % channels;
}

int
MeshTopology::interfaces_of(const CoreSet& cores, int channels) const
{
    // One bit per channel in the u64 accumulator; channel counts
    // beyond 64 would alias silently, so reject them outright.
    if (channels <= 0 || channels > 64)
        fatal("interfaces_of supports 1..64 channels, got ", channels);
    std::uint64_t seen = 0;
    for (int id : cores)
        seen |= std::uint64_t{1} << channel_of(id, channels);
    return __builtin_popcountll(seen);
}

std::vector<int>
MeshTopology::memory_distance_labels() const
{
    // Interfaces are on the west edge: distance is simply the x coord.
    std::vector<int> labels(num_nodes());
    for (int id = 0; id < num_nodes(); ++id)
        labels[id] = x_of(id);
    return labels;
}

} // namespace vnpu::noc
