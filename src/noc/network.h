/**
 * @file
 * Packet-level NoC model with per-link contention.
 *
 * Messages are segmented into fixed-size routing packets (2048 B in the
 * paper's micro-tests). Each packet traverses its path store-and-forward
 * with a busy-until reservation per directed link, so consecutive
 * packets pipeline across hops and concurrent flows contend naturally.
 *
 * Routing is XY dimension-order by default; a `RouteOverride` (built by
 * the hypervisor from the per-core routing-table directions) confines a
 * virtual NPU's packets to its own region, eliminating NoC interference
 * between virtual NPUs (paper §4.1.2).
 *
 * The send path is allocation-free: hops are walked directly via the
 * next-hop functions (no materialized path vector), the wormhole
 * per-packet inner loop is collapsed into a closed-form per-link
 * occupancy update (docs/sim_kernel.md derives it), and `RouteOverride`
 * is a dense next-hop matrix indexed by (current, destination).
 */

#ifndef VNPU_NOC_NETWORK_H
#define VNPU_NOC_NETWORK_H

#include <cstdint>
#include <functional>
#include <vector>

#include "noc/topology.h"
#include "obs/metrics.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::noc {

/**
 * Predefined next hops confining traffic to a core region. Built from
 * the routing-table "direction" fields: for every (current node,
 * destination) pair inside the region it names the next node on a
 * shortest path that never leaves the region.
 *
 * Stored as a flat `int16_t` next-hop matrix indexed `cur * N + dst`
 * (N = mesh nodes): one confined-route lookup is a single indexed load
 * on the hottest path of every isolation experiment.
 */
class RouteOverride {
  public:
    /** Next hop from `cur` toward `dst`, or kInvalidCore if unknown. */
    int
    next_hop(int cur, int dst) const
    {
        if (static_cast<unsigned>(cur) >= static_cast<unsigned>(nodes_) ||
            static_cast<unsigned>(dst) >= static_cast<unsigned>(nodes_))
            return kInvalidCore;
        return next_[static_cast<std::size_t>(cur) * nodes_ + dst];
    }

    /** Number of stored direction entries (for meta-table sizing). */
    std::size_t size() const { return entries_; }

    /**
     * Build confined shortest-path routing inside `region` via BFS from
     * every destination. Deterministic: prefers the smallest-id
     * neighbor among equal-length choices.
     * @pre `region` induces a connected subgraph of the mesh.
     */
    static RouteOverride build_confined(const MeshTopology& topo,
                                        const CoreSet& region);

  private:
    std::vector<std::int16_t> next_;
    int nodes_ = 0;
    std::size_t entries_ = 0;
};

/** Outcome of a message send. */
struct SendResult {
    Tick sender_free;  ///< Source core may continue past this tick.
    Tick delivered;    ///< Last byte arrives at the destination.
    int hops;          ///< Path length in links.
};

/** NoC statistics of interest to the harnesses. */
struct NetworkStats {
    Counter messages;
    Counter packets;
    Counter bytes;
    Counter local_deliveries;   ///< src == dst messages
    Counter confined_messages;  ///< routed with an override
    /** Per-message end-to-end latency (start to last byte), in ticks. */
    Histogram msg_latency;
};

/**
 * Always-on per-directed-link telemetry — the substrate of the
 * link-utilization heatmap. Indexed like the busy-until table
 * (`node * 4 + direction`).
 */
struct LinkCounters {
    std::uint64_t flits = 0;      ///< Routing packets traversed.
    std::uint64_t busy_ticks = 0; ///< Ticks the link was reserved.
};

/** The on-chip network shared by all NPU cores. */
class Network {
  public:
    /**
     * Callback invoked (via the event queue) when a message fully
     * arrives: (dst, src, bytes, tag, vm, credit). `credit` marks a
     * flow-control credit return rather than a data message.
     */
    using DeliverFn =
        std::function<void(int dst, int src, std::uint64_t bytes, int tag,
                           VmId vm, bool credit)>;

    Network(const SocConfig& cfg, const MeshTopology& topo, EventQueue& eq);

    void set_deliver_callback(DeliverFn fn) { deliver_ = std::move(fn); }

    /**
     * Send `bytes` from physical core `src` to `dst` starting no earlier
     * than `start`. Packets reserve links in order; the delivery
     * callback fires at the computed arrival tick.
     *
     * @param route  confined routing for this VM, or nullptr for XY DOR.
     * @param credit mark the message as a flow-control credit return.
     */
    SendResult send(Tick start, int src, int dst, std::uint64_t bytes,
                    VmId vm, int tag, const RouteOverride* route = nullptr,
                    bool credit = false);

    /** Node sequence a packet follows (exposed for tests/benches). */
    std::vector<int> route_path(int src, int dst,
                                const RouteOverride* route = nullptr) const;

    /** Per-directed-link list of VMs that sent traffic over it. */
    const std::vector<std::uint64_t>& link_vm_masks() const
    {
        return link_vms_;
    }

    /** Per-directed-link flit/busy counters, indexed node*4 + dir. */
    const std::vector<LinkCounters>& link_counters() const
    {
        return link_ctr_;
    }

    /** Telemetry sweep: message/packet totals, latency, link gauges. */
    void collect_stats(StatSet& out,
                       const std::string& prefix = "noc.") const;

    /**
     * Link-utilization heatmap as JSON: one record per directed link
     * with traffic, keyed by (from, to) node ids, with flit/busy
     * counts and utilization relative to `elapsed` ticks (pass the
     * final simulated time; 0 omits the utilization field).
     */
    void write_link_heatmap(std::ostream& os, Tick elapsed = 0) const;

    /**
     * Append one record per directed link (traffic or not), in
     * (node, direction) order. The list's length and order depend only
     * on the topology, so the metrics sampler can diff consecutive
     * snapshots index by index.
     */
    void append_link_records(std::vector<obs::LinkRecord>& out) const;

    /**
     * Emit one counter-track trace event per node with traffic,
     * summing its outgoing links, stamped at `ts`. No-op when the
     * trace sink is disabled.
     */
    void trace_link_counters(Tick ts) const;

    /**
     * Number of directed links whose traffic came from more than one
     * VM — the NoC-interference indicator from §4.1.2.
     */
    int interference_links() const;

    /** Busy-until tick of the directed link from `a` to adjacent `b`. */
    Tick link_busy_until(int a, int b) const;

    const NetworkStats& stats() const { return stats_; }

    /** Clear link reservations and statistics between experiments. */
    void reset();

    const MeshTopology& topology() const { return topo_; }

  private:
    int link_index(int from, int to) const;

    /** Next hop toward `dst`: override direction if present, else XY. */
    int
    next_hop(int cur, int dst, const RouteOverride* route) const
    {
        if (route != nullptr) {
            int next = route->next_hop(cur, dst);
            if (next != kInvalidCore)
                return next;
        }
        return topo_.xy_next_hop(cur, dst);
    }

    /**
     * Walk the route from `src` to `dst`, invoking
     * `per_link(from, to, hop_index)` for every traversed link.
     * @return the hop count. Panics on a routing loop.
     */
    template <typename Fn>
    int
    walk_route(int src, int dst, const RouteOverride* route,
               Fn&& per_link) const
    {
        int cur = src;
        int hops = 0;
        while (cur != dst) {
            const int next = next_hop(cur, dst, route);
            per_link(cur, next, hops);
            cur = next;
            if (++hops > topo_.num_nodes() * 2)
                panic("routing loop from ", src, " to ", dst);
        }
        return hops;
    }

    /** Record that `vm` used directed link `li`. */
    void
    mark_link(int li, VmId vm)
    {
        if (vm >= 0 && vm < 64)
            link_vms_[li] |= std::uint64_t{1} << vm;
    }

    /** Cycles to serialize `bytes` at link bandwidth. */
    Cycles ser_cycles(std::uint64_t bytes) const;

    const SocConfig& cfg_;
    const MeshTopology& topo_;
    EventQueue& eq_;
    DeliverFn deliver_;

    /** busy-until per directed link, indexed node*4 + direction. */
    std::vector<Tick> link_busy_;
    std::vector<std::uint64_t> link_vms_;
    std::vector<LinkCounters> link_ctr_;
    NetworkStats stats_;
};

} // namespace vnpu::noc

#endif // VNPU_NOC_NETWORK_H
