#include "noc/network.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "check/checks.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace vnpu::noc {

RouteOverride
RouteOverride::build_confined(const MeshTopology& topo, const CoreSet& region)
{
    const int n = topo.num_nodes();
    RouteOverride ov;
    ov.nodes_ = n;
    ov.next_.assign(static_cast<std::size_t>(n) * n,
                    static_cast<std::int16_t>(kInvalidCore));

    std::vector<int> nodes;
    nodes.reserve(region.count());
    for (int id : region) {
        VNPU_ASSERT(id < n);
        nodes.push_back(id);
    }

    // BFS from each destination over region-internal links; parent
    // pointers give the next hop toward that destination. The scratch
    // arrays are reused across destinations so the build allocates a
    // constant number of times regardless of region size.
    std::vector<int> dist(n);
    std::vector<int> queue;
    queue.reserve(nodes.size());
    for (int dst : nodes) {
        std::fill(dist.begin(), dist.end(), -1);
        queue.assign(1, dst);
        dist[dst] = 0;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            int v = queue[head];
            for (Direction d : {Direction::kEast, Direction::kWest,
                                Direction::kNorth, Direction::kSouth}) {
                int u = topo.neighbor(v, d);
                if (u == kInvalidCore || !region.test(u))
                    continue;
                if (dist[u] == -1) {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        for (int cur : nodes) {
            if (cur == dst)
                continue;
            if (dist[cur] == -1)
                fatal("route override: region is disconnected between ",
                      cur, " and ", dst);
            // Smallest-id neighbor one step closer to dst.
            int best = kInvalidCore;
            for (Direction d : {Direction::kEast, Direction::kWest,
                                Direction::kNorth, Direction::kSouth}) {
                int u = topo.neighbor(cur, d);
                if (u == kInvalidCore || !region.test(u))
                    continue;
                if (dist[u] == dist[cur] - 1 &&
                    (best == kInvalidCore || u < best)) {
                    best = u;
                }
            }
            VNPU_ASSERT(best != kInvalidCore);
            ov.next_[static_cast<std::size_t>(cur) * n + dst] =
                static_cast<std::int16_t>(best);
            ++ov.entries_;
        }
    }
    return ov;
}

Network::Network(const SocConfig& cfg, const MeshTopology& topo,
                 EventQueue& eq)
    : cfg_(cfg), topo_(topo), eq_(eq),
      link_busy_(static_cast<std::size_t>(topo.num_nodes()) * 4, 0),
      link_vms_(static_cast<std::size_t>(topo.num_nodes()) * 4, 0),
      link_ctr_(static_cast<std::size_t>(topo.num_nodes()) * 4)
{
}

int
Network::link_index(int from, int to) const
{
    return from * 4 + static_cast<int>(topo_.dir_to(from, to));
}

Cycles
Network::ser_cycles(std::uint64_t bytes) const
{
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(bytes) / cfg_.link_bytes_per_cycle));
}

std::vector<int>
Network::route_path(int src, int dst, const RouteOverride* route) const
{
    std::vector<int> path{src};
    walk_route(src, dst, route,
               [&path](int, int to, int) { path.push_back(to); });
    return path;
}

SendResult
Network::send(Tick start, int src, int dst, std::uint64_t bytes, VmId vm,
              int tag, const RouteOverride* route, bool credit)
{
    // vnpu-lint: hot-path (allocation-free send contract, sim_kernel.md)
    VNPU_PROF("noc.send");
    VNPU_ASSERT(topo_.valid(src) && topo_.valid(dst));
    ++stats_.messages;
    stats_.bytes += bytes;
    if (route != nullptr)
        ++stats_.confined_messages;

    const std::uint64_t pkt_bytes = cfg_.packet_bytes;
    const std::uint64_t npkts = (bytes + pkt_bytes - 1) / pkt_bytes;
    stats_.packets += npkts;

    if (src == dst) {
        // Local loopback through the core's own send/receive engine: no
        // links are reserved, but the payload still serializes through
        // the engine at link bandwidth (it is the same datapath).
        ++stats_.local_deliveries;
        Tick done = start + cfg_.noc_handshake_cycles + ser_cycles(bytes);
        stats_.msg_latency.record(static_cast<double>(done - start));
        VNPU_TRACE(emit_complete(
            credit ? "credit" : "msg", "noc", start, done - start,
            static_cast<std::uint32_t>(src),
            {obs::arg("src", src), obs::arg("dst", dst), obs::arg("vm", vm),
             obs::arg("bytes", bytes), obs::arg("tag", tag),
             obs::arg("hops", 0)}));
        if (deliver_) {
            eq_.schedule(done, [this, dst, src, bytes, tag, vm, credit] {
                deliver_(dst, src, bytes, tag, vm, credit);
            });
        }
        return {done, done, 0};
    }

    const Tick inject_ready = start + cfg_.noc_handshake_cycles;
    Tick sender_free = start;
    Tick delivered = start;
    int hops = 0;

    // Sanitize builds record the path and its prior occupancy before
    // the real walk mutates it, then replay the send through the seed's
    // iterative per-packet recurrence and demand exact agreement. These
    // buffers exist only under VNPU_SANITIZE (off the perf gates), so
    // their growth is exempt from the hot-path allocation contract.
    VNPU_SANITIZE_BLOCK(std::vector<int> san_links;
                        std::vector<Tick> san_prior;
                        if (npkts > 0) {
                            walk_route(src, dst, route,
                                       [&](int from, int to, int) {
                                           const int li =
                                               link_index(from, to);
                                           san_links.push_back(li);   // vnpu-lint: allow(hot-path-alloc)
                                           san_prior.push_back(       // vnpu-lint: allow(hot-path-alloc)
                                               link_busy_[li]);
                                       });
                        })

    if (cfg_.noc_relay_store_forward) {
        // Each relay node fully receives the message before re-sending
        // it (Figure 5's chained send semantics): every hop costs the
        // whole message serialization and occupies the link for it.
        const Cycles ser = ser_cycles(bytes);
        // Each link is reserved from max(arrival, prior busy) to depart,
        // a constant R + S per hop — hoisted out of the walk.
        const std::uint64_t busy_add = cfg_.router_delay + ser;
        Tick t = inject_ready;
        hops = walk_route(src, dst, route, [&](int from, int to, int hop) {
            const int li = link_index(from, to);
            const Tick depart =
                std::max(t, link_busy_[li]) + cfg_.router_delay + ser;
            link_busy_[li] = depart;
            mark_link(li, vm);
            link_ctr_[li].flits += npkts;
            link_ctr_[li].busy_ticks += busy_add;
            t = depart;
            if (hop == 0)
                sender_free = depart;
        });
        delivered = t;
    } else if (npkts > 0) {
        // Idealized wormhole: routing packets pipeline across hops. All
        // packets are `packet_bytes` except the tail, so the per-packet
        // recurrence has a closed form (docs/sim_kernel.md): walk the
        // path once computing the *first* packet's per-link departure
        // t0, then shift every link's final occupancy by the constant
        //   delta = (n-2)*(R+S) + R + S_tail        (n >= 2 packets)
        // where R is the router delay, S the full-packet serialization
        // and S_tail the tail packet's. This replaces the seed's
        // O(npkts * hops) inner loop with O(hops) work.
        const std::uint64_t tail_bytes = bytes - (npkts - 1) * pkt_bytes;
        const Cycles ser_tail = ser_cycles(tail_bytes);
        const Cycles ser_full =
            npkts == 1 ? ser_tail : ser_cycles(pkt_bytes);
        const Cycles delta =
            npkts == 1 ? 0
                       : (npkts - 2) * (cfg_.router_delay + ser_full) +
                             cfg_.router_delay + ser_tail;

        // Final occupancy per link is (depart + delta) - max(arrival,
        // prior busy) = R + S_full + delta: constant per hop, hoisted.
        const std::uint64_t busy_add =
            cfg_.router_delay + ser_full + delta;
        Tick t = inject_ready;
        hops = walk_route(src, dst, route, [&](int from, int to, int hop) {
            const int li = link_index(from, to);
            const Tick depart =
                std::max(t, link_busy_[li]) + cfg_.router_delay + ser_full;
            link_busy_[li] = depart + delta;
            mark_link(li, vm);
            link_ctr_[li].flits += npkts;
            link_ctr_[li].busy_ticks += busy_add;
            t = depart;
            if (hop == 0)
                sender_free = depart + delta;
        });
        delivered = t + delta;
    } else {
        // Zero-byte wormhole message: no packets, no link occupancy,
        // instant delivery — but the hop count still follows the
        // (possibly confined) route.
        hops = walk_route(src, dst, route, [](int, int, int) {});
    }

    // Replay against the independent reference model: store-and-forward
    // is the recurrence with a single whole-message packet, wormhole the
    // full per-packet recurrence the closed form was derived from.
    VNPU_SANITIZE_BLOCK(if (npkts > 0 && !san_links.empty()) {
        const bool relay = cfg_.noc_relay_store_forward;
        const std::uint64_t ref_npkts = relay ? 1 : npkts;
        const Cycles ref_tail =
            relay ? ser_cycles(bytes)
                  : ser_cycles(bytes - (npkts - 1) * pkt_bytes);
        const Cycles ref_full = (relay || npkts == 1)
                                    ? ref_tail
                                    : ser_cycles(pkt_bytes);
        const check::WormholeRef ref = check::wormhole_reference(
            cfg_.router_delay, ref_full, ref_tail, ref_npkts,
            inject_ready, san_prior);
        VNPU_INVARIANT(ref.sender_free == sender_free,
                       "sender_free diverges from reference model ",
                       "got=", sender_free, " want=", ref.sender_free);
        VNPU_INVARIANT(ref.delivered == delivered,
                       "delivery time diverges from reference model ",
                       "got=", delivered, " want=", ref.delivered);
        for (std::size_t i = 0; i < san_links.size(); ++i)
            VNPU_INVARIANT(
                link_busy_[san_links[i]] == ref.link_busy[i],
                "per-link occupancy diverges from reference model ",
                "hop=", i, " got=", link_busy_[san_links[i]],
                " want=", ref.link_busy[i]);
        ++check::counters().noc_sends;
    })

    stats_.msg_latency.record(static_cast<double>(delivered - start));
    VNPU_TRACE(emit_complete(
        credit ? "credit" : "msg", "noc", start, delivered - start,
        static_cast<std::uint32_t>(src),
        {obs::arg("src", src), obs::arg("dst", dst), obs::arg("vm", vm),
         obs::arg("bytes", bytes), obs::arg("tag", tag),
         obs::arg("hops", hops)}));

    if (deliver_) {
        eq_.schedule(delivered, [this, dst, src, bytes, tag, vm, credit] {
            deliver_(dst, src, bytes, tag, vm, credit);
        });
    }
    return {sender_free, delivered, hops};
}

int
Network::interference_links() const
{
    int shared = 0;
    for (std::uint64_t vms : link_vms_)
        if (__builtin_popcountll(vms) >= 2)
            ++shared;
    return shared;
}

Tick
Network::link_busy_until(int a, int b) const
{
    return link_busy_[link_index(a, b)];
}

void
Network::reset()
{
    std::fill(link_busy_.begin(), link_busy_.end(), 0);
    std::fill(link_vms_.begin(), link_vms_.end(), 0);
    std::fill(link_ctr_.begin(), link_ctr_.end(), LinkCounters{});
    stats_ = NetworkStats{};
}

void
Network::collect_stats(StatSet& out, const std::string& prefix) const
{
    out.add(prefix + "messages", static_cast<double>(stats_.messages.value()));
    out.add(prefix + "packets", static_cast<double>(stats_.packets.value()));
    out.add(prefix + "bytes", static_cast<double>(stats_.bytes.value()));
    out.add(prefix + "local_deliveries",
            static_cast<double>(stats_.local_deliveries.value()));
    out.add(prefix + "confined_messages",
            static_cast<double>(stats_.confined_messages.value()));
    int used = 0;
    for (const LinkCounters& c : link_ctr_)
        if (c.flits != 0)
            ++used;
    out.set(prefix + "links_used", used);
    out.set(prefix + "interference_links", interference_links());
    stats_.msg_latency.collect(out, prefix + "msg_latency.");
}

void
Network::write_link_heatmap(std::ostream& os, Tick elapsed) const
{
    os << "[";
    bool first = true;
    for (int node = 0; node < topo_.num_nodes(); ++node) {
        for (int d = 0; d < 4; ++d) {
            const int to =
                topo_.neighbor(node, static_cast<Direction>(d));
            if (to == kInvalidCore)
                continue;
            const LinkCounters& c =
                link_ctr_[static_cast<std::size_t>(node) * 4 + d];
            if (c.flits == 0)
                continue;
            os << (first ? "\n" : ",\n") << "  {\"from\": " << node
               << ", \"to\": " << to << ", \"flits\": " << c.flits
               << ", \"busy_ticks\": " << c.busy_ticks;
            if (elapsed > 0) {
                os << ", \"utilization\": "
                   << static_cast<double>(c.busy_ticks) /
                          static_cast<double>(elapsed);
            }
            os << "}";
            first = false;
        }
    }
    os << "\n]\n";
}

void
Network::append_link_records(std::vector<obs::LinkRecord>& out) const
{
    for (int node = 0; node < topo_.num_nodes(); ++node) {
        for (int d = 0; d < 4; ++d) {
            const int to =
                topo_.neighbor(node, static_cast<Direction>(d));
            if (to == kInvalidCore)
                continue;
            const LinkCounters& c =
                link_ctr_[static_cast<std::size_t>(node) * 4 + d];
            out.push_back(
                obs::LinkRecord{node, to, c.flits, c.busy_ticks});
        }
    }
}

void
Network::trace_link_counters(Tick ts) const
{
    if (!obs::enabled())
        return;
    for (int node = 0; node < topo_.num_nodes(); ++node) {
        std::uint64_t flits = 0;
        std::uint64_t busy = 0;
        for (int d = 0; d < 4; ++d) {
            const LinkCounters& c =
                link_ctr_[static_cast<std::size_t>(node) * 4 + d];
            flits += c.flits;
            busy += c.busy_ticks;
        }
        if (flits == 0)
            continue;
        obs::emit_counter("link", "noc", ts,
                          static_cast<std::uint32_t>(node),
                          {obs::arg("flits", flits),
                           obs::arg("busy_ticks", busy)});
    }
}

} // namespace vnpu::noc
