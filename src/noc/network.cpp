#include "noc/network.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace vnpu::noc {

int
RouteOverride::next_hop(int cur, int dst) const
{
    auto it = next_.find(key(cur, dst));
    return it == next_.end() ? kInvalidCore : it->second;
}

RouteOverride
RouteOverride::build_confined(const MeshTopology& topo, CoreMask region)
{
    RouteOverride ov;
    std::vector<int> nodes;
    for (int id = 0; id < topo.num_nodes(); ++id)
        if (region & core_bit(id))
            nodes.push_back(id);

    // BFS from each destination over region-internal links; parent
    // pointers give the next hop toward that destination.
    for (int dst : nodes) {
        std::vector<int> dist(topo.num_nodes(), -1);
        std::vector<int> queue{dst};
        dist[dst] = 0;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            int v = queue[head];
            for (Direction d : {Direction::kEast, Direction::kWest,
                                Direction::kNorth, Direction::kSouth}) {
                int u = topo.neighbor(v, d);
                if (u == kInvalidCore || !(region & core_bit(u)))
                    continue;
                if (dist[u] == -1) {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        for (int cur : nodes) {
            if (cur == dst)
                continue;
            if (dist[cur] == -1)
                fatal("route override: region is disconnected between ",
                      cur, " and ", dst);
            // Smallest-id neighbor one step closer to dst.
            int best = kInvalidCore;
            for (Direction d : {Direction::kEast, Direction::kWest,
                                Direction::kNorth, Direction::kSouth}) {
                int u = topo.neighbor(cur, d);
                if (u == kInvalidCore || !(region & core_bit(u)))
                    continue;
                if (dist[u] == dist[cur] - 1 &&
                    (best == kInvalidCore || u < best)) {
                    best = u;
                }
            }
            VNPU_ASSERT(best != kInvalidCore);
            ov.next_[key(cur, dst)] = static_cast<std::int16_t>(best);
        }
    }
    return ov;
}

Network::Network(const SocConfig& cfg, const MeshTopology& topo,
                 EventQueue& eq)
    : cfg_(cfg), topo_(topo), eq_(eq),
      link_busy_(static_cast<std::size_t>(topo.num_nodes()) * 4, 0),
      link_vms_(static_cast<std::size_t>(topo.num_nodes()) * 4, 0)
{
}

int
Network::link_index(int from, int to) const
{
    return from * 4 + static_cast<int>(topo_.dir_to(from, to));
}

std::vector<int>
Network::route_path(int src, int dst, const RouteOverride* route) const
{
    std::vector<int> path{src};
    int cur = src;
    int guard = 0;
    while (cur != dst) {
        int next = kInvalidCore;
        if (route != nullptr)
            next = route->next_hop(cur, dst);
        if (next == kInvalidCore)
            next = topo_.xy_next_hop(cur, dst);
        path.push_back(next);
        cur = next;
        if (++guard > topo_.num_nodes() * 2)
            panic("routing loop from ", src, " to ", dst);
    }
    return path;
}

SendResult
Network::send(Tick start, int src, int dst, std::uint64_t bytes, VmId vm,
              int tag, const RouteOverride* route, bool credit)
{
    VNPU_ASSERT(topo_.valid(src) && topo_.valid(dst));
    ++stats_.messages;
    stats_.bytes += bytes;
    if (route != nullptr)
        ++stats_.confined_messages;

    if (src == dst) {
        // Local loopback through the core's own send/receive engine.
        ++stats_.local_deliveries;
        Tick done = start + cfg_.noc_handshake_cycles;
        if (deliver_) {
            eq_.schedule(done, [this, dst, src, bytes, tag, vm, credit] {
                deliver_(dst, src, bytes, tag, vm, credit);
            });
        }
        return {done, done, 0};
    }

    std::vector<int> path = route_path(src, dst, route);
    const int hops = static_cast<int>(path.size()) - 1;

    const std::uint64_t pkt_bytes = cfg_.packet_bytes;
    const std::uint64_t npkts = (bytes + pkt_bytes - 1) / pkt_bytes;
    stats_.packets += npkts;

    Tick sender_free = start;
    Tick delivered = start;
    Tick inject_ready = start + cfg_.noc_handshake_cycles;

    if (cfg_.noc_relay_store_forward) {
        // Each relay node fully receives the message before re-sending
        // it (Figure 5's chained send semantics): every hop costs the
        // whole message serialization and occupies the link for it.
        Cycles ser = static_cast<Cycles>(
            std::ceil(bytes / cfg_.link_bytes_per_cycle));
        Tick t = inject_ready;
        for (int i = 0; i < hops; ++i) {
            int li = link_index(path[i], path[i + 1]);
            Tick depart = std::max(t, link_busy_[li]) +
                          cfg_.router_delay + ser;
            link_busy_[li] = depart;
            if (vm >= 0 && vm < 64)
                link_vms_[li] |= std::uint64_t{1} << vm;
            t = depart;
            if (i == 0)
                sender_free = depart;
        }
        delivered = t;
    } else {
        // Idealized wormhole: routing packets pipeline across hops.
        for (std::uint64_t p = 0; p < npkts; ++p) {
            std::uint64_t payload =
                std::min(pkt_bytes, bytes - p * pkt_bytes);
            Cycles ser = static_cast<Cycles>(
                std::ceil(payload / cfg_.link_bytes_per_cycle));
            Tick t = inject_ready;
            for (int i = 0; i < hops; ++i) {
                int li = link_index(path[i], path[i + 1]);
                Tick depart = std::max(t, link_busy_[li]) +
                              cfg_.router_delay + ser;
                link_busy_[li] = depart;
                if (vm >= 0 && vm < 64)
                    link_vms_[li] |= std::uint64_t{1} << vm;
                t = depart;
                if (i == 0)
                    sender_free = depart;
            }
            delivered = std::max(delivered, t);
        }
    }

    if (deliver_) {
        eq_.schedule(delivered, [this, dst, src, bytes, tag, vm, credit] {
            deliver_(dst, src, bytes, tag, vm, credit);
        });
    }
    return {sender_free, delivered, hops};
}

int
Network::interference_links() const
{
    int shared = 0;
    for (std::uint64_t vms : link_vms_)
        if (__builtin_popcountll(vms) >= 2)
            ++shared;
    return shared;
}

Tick
Network::link_busy_until(int a, int b) const
{
    return link_busy_[link_index(a, b)];
}

void
Network::reset()
{
    std::fill(link_busy_.begin(), link_busy_.end(), 0);
    std::fill(link_vms_.begin(), link_vms_.end(), 0);
    stats_ = NetworkStats{};
}

} // namespace vnpu::noc
