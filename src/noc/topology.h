/**
 * @file
 * 2D mesh topology: coordinates, dimension-order (XY) routing, memory
 * interface placement, and conversion to the generic graph type.
 */

#ifndef VNPU_NOC_TOPOLOGY_H
#define VNPU_NOC_TOPOLOGY_H

#include <vector>

#include "graph/graph.h"
#include "sim/types.h"

namespace vnpu::noc {

/** Mesh link directions (kLocal = ejection to the attached core). */
enum class Direction : std::uint8_t {
    kEast = 0,
    kWest = 1,
    kNorth = 2,
    kSouth = 3,
    kLocal = 4,
};

/** Printable name for a direction. */
const char* to_string(Direction d);

/**
 * Largest mesh the model supports, end to end: routing, link timing,
 * and every `CoreSet` region API (confined routes, interface counting,
 * the virtualization stack) all handle meshes up to this size.
 */
inline constexpr int kMaxMeshNodes = CoreSet::kCapacity;

/**
 * A W x H 2D mesh of NPU cores. Node (x, y) has id y*W + x; row 0 is the
 * "north" edge. HBM memory interfaces sit on the west edge, one per row,
 * striped across the configured number of HBM channels.
 */
class MeshTopology {
  public:
    MeshTopology(int w, int h);

    int width() const { return w_; }
    int height() const { return h_; }
    int num_nodes() const { return w_ * h_; }

    int x_of(int id) const { return id % w_; }
    int y_of(int id) const { return id / w_; }
    int id_of(int x, int y) const { return y * w_ + x; }
    bool valid(int id) const { return id >= 0 && id < num_nodes(); }

    /** Manhattan hop distance. */
    int hop_distance(int a, int b) const;

    /** True when a and b share a mesh link. */
    bool adjacent(int a, int b) const;

    /** Direction of the link from `from` to adjacent node `to`. */
    Direction dir_to(int from, int to) const;

    /** Neighbor of `id` in direction `d`, or kInvalidCore off-mesh. */
    int neighbor(int id, Direction d) const;

    /**
     * Next hop under deterministic dimension-order routing: route along
     * X first, then Y (deadlock-free on meshes). @pre cur != dst
     */
    int xy_next_hop(int cur, int dst) const;

    /** The whole mesh as a generic graph. */
    graph::Graph to_graph() const;

    /**
     * HBM channel serving node `id` when the chip has `channels`
     * channels: interfaces are on the west edge, one per row.
     */
    int channel_of(int id, int channels) const;

    /**
     * Number of distinct HBM channels reachable by the given core set —
     * the paper allocates bandwidth proportional to the number of
     * memory interfaces associated with a virtual NPU.
     */
    int interfaces_of(const CoreSet& cores, int channels) const;

    /**
     * Per-node "distance to nearest memory interface" labels, used as
     * heterogeneity labels for the topology mapper's node-match penalty.
     */
    std::vector<int> memory_distance_labels() const;

  private:
    int w_;
    int h_;
};

} // namespace vnpu::noc

#endif // VNPU_NOC_TOPOLOGY_H
