/**
 * @file
 * Timing model of the NPU core's compute units: an output-stationary
 * systolic array (Gemmini-like) and a vector unit.
 */

#ifndef VNPU_CORE_COMPUTE_H
#define VNPU_CORE_COMPUTE_H

#include <cstdint>

#include "core/isa.h"
#include "sim/config.h"
#include "sim/types.h"

namespace vnpu::core {

/** Cycles and useful work of a kernel execution. */
struct KernelCost {
    Cycles cycles = 0;
    std::uint64_t flops = 0; ///< multiply-accumulate counted as 2 FLOPs
};

/** Per-core compute timing model. */
class ComputeModel {
  public:
    explicit ComputeModel(const SocConfig& cfg)
        : sa_dim_(cfg.sa_dim), lanes_(cfg.vector_lanes)
    {
    }

    /**
     * m x k @ k x n matmul on a D x D output-stationary systolic array:
     * each output tile streams k partial sums; tiles pipeline with a
     * D-cycle drain between them plus one final drain.
     */
    KernelCost matmul(std::int64_t m, std::int64_t k, std::int64_t n) const;

    /**
     * Convolution lowered to im2col matmul (M = oh*ow, K = cin*k^2,
     * N = cout) plus a 10% scratchpad-manager rearrangement overhead.
     */
    KernelCost conv(std::int64_t oh, std::int64_t ow, std::int64_t cin,
                    std::int64_t cout, std::int64_t ksize) const;

    /** Elementwise / reduction op on the vector unit. */
    KernelCost vector_op(std::int64_t elems) const;

    /** Dispatch on a ComputeDims payload. */
    KernelCost cost(const ComputeDims& dims) const;

    int sa_dim() const { return sa_dim_; }

  private:
    std::int64_t
    ceil_div(std::int64_t a, std::int64_t b) const
    {
        return (a + b - 1) / b;
    }

    int sa_dim_;
    int lanes_;
};

} // namespace vnpu::core

#endif // VNPU_CORE_COMPUTE_H
