/**
 * @file
 * The NPU controller: hyper mode, meta-table configuration timing, and
 * instruction-dispatch latency (IBUS vs instruction NoC).
 *
 * Only the hyper-mode controller may touch virtualization meta tables
 * (routing tables, range translation tables) — guest contexts cannot
 * (paper §5.1). The controller also models the cost of configuring a
 * routing table at vNPU creation (Figure 11) and of dispatching an NPU
 * instruction to a core (Figure 12).
 */

#ifndef VNPU_CORE_CONTROLLER_H
#define VNPU_CORE_CONTROLLER_H

#include <cstdint>
#include <map>

#include "noc/topology.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::core {

/** Instruction dispatch transport. */
enum class DispatchVia {
    kIbus,  ///< Shared instruction bus: fixed latency, poor scalability.
    kInoc,  ///< Dedicated instruction NoC: per-hop latency from node 0.
};

/** The centralized NPU controller. */
class NpuController {
  public:
    NpuController(const SocConfig& cfg, const noc::MeshTopology& topo);

    // ---- Hyper mode ---------------------------------------------------
    /** Enter/leave hyper mode (CPU-side hypervisor only). */
    void set_hyper_mode(bool enabled) { hyper_mode_ = enabled; }
    bool hyper_mode() const { return hyper_mode_; }

    // ---- Meta-table configuration (hyper mode required) ---------------
    /**
     * Cost of creating a routing table covering `num_cores` cores:
     * per-core availability query plus per-entry table write
     * (Figure 11: a few hundred cycles).
     * @throws SimPanic when not in hyper mode.
     */
    Cycles configure_routing_table(VmId vm, int num_cores);

    /** Cost of tearing down a VM's tables. */
    Cycles teardown_tables(VmId vm);

    /** Record meta-table residency for accounting (hyper mode). */
    void deploy_meta_bytes(VmId vm, std::uint64_t bytes);
    std::uint64_t meta_bytes(VmId vm) const;

    // ---- Instruction dispatch ------------------------------------------
    /**
     * Latency of dispatching one instruction from the controller to
     * `core`. The controller sits at the north-west mesh corner; the
     * instruction NoC pays per-hop latency, the IBUS a fixed latency.
     */
    Cycles dispatch_cost(CoreId core, DispatchVia via) const;

    /**
     * Dispatch cost including the routing-table redirection: the first
     * instruction to a (vm, virtual core) pays a lookup; consecutive
     * instructions to the same target hit the cached translation.
     */
    Cycles dispatch_cost_virtual(VmId vm, CoreId vcore, CoreId pcore,
                                 DispatchVia via);

    const Counter& rt_lookups() const { return rt_lookups_; }
    const Counter& rt_lookup_hits() const { return rt_hits_; }

  private:
    const SocConfig& cfg_;
    const noc::MeshTopology& topo_;
    bool hyper_mode_ = false;
    std::map<VmId, std::uint64_t> meta_bytes_;
    VmId last_vm_ = kNoVm;
    CoreId last_vcore_ = kInvalidCore;
    Counter rt_lookups_;
    Counter rt_hits_;
};

} // namespace vnpu::core

#endif // VNPU_CORE_CONTROLLER_H
