#include "core/compute.h"

#include "sim/log.h"

namespace vnpu::core {

KernelCost
ComputeModel::matmul(std::int64_t m, std::int64_t k, std::int64_t n) const
{
    VNPU_ASSERT(m > 0 && k > 0 && n > 0);
    const std::int64_t d = sa_dim_;
    std::int64_t tiles = ceil_div(m, d) * ceil_div(n, d);
    Cycles cycles = static_cast<Cycles>(tiles * (k + d) + d);
    std::uint64_t flops = 2ull * m * k * n;
    return {cycles, flops};
}

KernelCost
ComputeModel::conv(std::int64_t oh, std::int64_t ow, std::int64_t cin,
                   std::int64_t cout, std::int64_t ksize) const
{
    VNPU_ASSERT(oh > 0 && ow > 0 && cin > 0 && cout > 0 && ksize > 0);
    KernelCost mm = matmul(oh * ow, cin * ksize * ksize, cout);
    mm.cycles += mm.cycles / 10; // im2col rearrangement overhead
    return mm;
}

KernelCost
ComputeModel::vector_op(std::int64_t elems) const
{
    VNPU_ASSERT(elems > 0);
    Cycles cycles = static_cast<Cycles>(ceil_div(elems, lanes_));
    return {cycles, static_cast<std::uint64_t>(elems)};
}

KernelCost
ComputeModel::cost(const ComputeDims& dims) const
{
    switch (dims.kind) {
      case ComputeKind::kMatmul:
        return matmul(dims.m, dims.k, dims.n);
      case ComputeKind::kConv:
        return conv(dims.oh, dims.ow, dims.cin, dims.cout, dims.ksize);
      case ComputeKind::kVector:
        return vector_op(dims.elems);
    }
    panic("unknown compute kind");
}

} // namespace vnpu::core
