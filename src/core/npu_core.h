/**
 * @file
 * The NPU core execution engine.
 *
 * A core runs one or more *contexts* (virtual cores). Normal operation
 * uses one context; MIG-style time-division multiplexing assigns
 * several, which the core serializes round-robin with a context-switch
 * penalty (contexts stay scratchpad-resident, paper §6.3.2).
 *
 * Each context executes its program in order. Compute and DMA occupy
 * the core until completion; sends occupy it for injection only; a recv
 * blocks the context (the core switches to another runnable context if
 * one exists) until the matching message is delivered by the NoC.
 */

#ifndef VNPU_CORE_NPU_CORE_H
#define VNPU_CORE_NPU_CORE_H

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/compute.h"
#include "core/isa.h"
#include "mem/dma.h"
#include "noc/network.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace vnpu::core {

/**
 * Core-side virtualization hooks. The bare-metal core runs with a null
 * hook (peer ids are physical); virtualized contexts install the NoC
 * vRouter, which translates virtual core ids and confines routes.
 */
class CoreVirtHooks {
  public:
    struct Xlat {
        CoreId phys;   ///< Physical core id.
        Cycles cost;   ///< Lookup cost (cached or meta-zone fetch).
    };

    virtual ~CoreVirtHooks() = default;

    /** Translate a virtual peer core id for a send/recv. */
    virtual Xlat translate_peer(CoreId vpeer) = 0;

    /** Confined routing for this VM, or nullptr for default DOR. */
    virtual const noc::RouteOverride* route_override() const = 0;
};

/** Per-context runtime statistics. */
struct ContextStats {
    Cycles busy_compute = 0;
    Cycles busy_dma = 0;
    Cycles busy_send = 0;
    Cycles busy_switch = 0;
    Cycles wait_recv = 0;
    Cycles vrouter_cycles = 0;   ///< Cycles spent in id translation.
    std::uint64_t instructions = 0;
    std::uint64_t flops = 0;
    std::uint32_t iterations = 0; ///< Completed kIterBegin markers.
    Cycles warmup = 0;           ///< Start to first kIterBegin.
    Distribution iter_latency;   ///< Cycles per iteration.
    /** Tick of each kIterBegin (capped; enables steady-state-period
     *  measurement that excludes the pipeline-fill gap). */
    std::vector<Tick> iter_starts;
    Tick start_tick = 0;
    Tick done_tick = 0;
    bool done = false;
};

/** Configuration of one context (virtual core) on a physical core. */
struct ContextConfig {
    VmId vm = kNoVm;
    /** Translation scheme for this VM's DMA (nullptr = physical). */
    mem::Translator* translator = nullptr;
    /** NoC vRouter hook (nullptr = bare metal). */
    CoreVirtHooks* vrouter = nullptr;
    /** Per-core DMA bandwidth cap in bytes/cycle (<= 0: uncapped). */
    double bw_cap = 0.0;
    /** VM-aggregate bandwidth limiter (nullptr = uncapped). */
    mem::SharedBandwidthLimiter* shared_cap = nullptr;
};

/** One physical NPU core. */
class NpuCore {
  public:
    NpuCore(const SocConfig& cfg, CoreId id, EventQueue& eq,
            noc::Network& net, mem::DmaEngine& dma);

    NpuCore(const NpuCore&) = delete;
    NpuCore& operator=(const NpuCore&) = delete;

    /** Install a program as a new context; returns the context index. */
    int add_context(Program prog, const ContextConfig& cfg);

    /** Arm all contexts to begin execution at `when`. */
    void start(Tick when);

    /** NoC delivery entry point (wired to Network's callback). */
    void deliver(CoreId src_phys, std::uint64_t bytes, int tag, VmId vm,
                 bool credit);

    /** Invoked once when every context has halted. */
    void set_done_callback(std::function<void(CoreId)> cb)
    {
        done_cb_ = std::move(cb);
    }

    bool all_done() const;
    int num_contexts() const { return static_cast<int>(ctxs_.size()); }
    const ContextStats& context_stats(int ctx) const
    {
        return ctxs_[ctx]->stats;
    }
    CoreId id() const { return id_; }
    mem::DmaEngine& dma() { return dma_; }

    /** Telemetry sweep: context totals summed across this core's
     *  contexts; `add()` keys aggregate across cores sharing a prefix. */
    void collect_stats(StatSet& out, const std::string& prefix) const;

    /** Drop all contexts and state (between experiments). */
    void reset();

  private:
    enum class CtxState { kReady, kWaiting, kDone };
    /** What a waiting context is blocked on. */
    enum class WaitKind { kNone, kData, kCredit };

    struct InboxEntry {
        std::uint64_t bytes;
        CoreId src_phys;
    };

    struct Context {
        Program prog;
        std::size_t pc = 0;
        ContextConfig cfg;
        CtxState state = CtxState::kReady;
        Tick resume_at = 0;
        WaitKind wait_kind = WaitKind::kNone;
        int wait_tag = 0;
        Tick wait_start = 0;
        std::uint32_t iteration = 0;
        Tick iter_start = 0;
        /** Arrived-but-unconsumed messages, keyed by tag. */
        std::map<int, std::deque<InboxEntry>> inbox;
        /** Flow-control credits per outgoing edge tag. */
        std::map<int, int> credits;
        /**
         * Program index of the last kRecv per tag (built at load
         * time). A tag is still consumable iff that index is >= pc,
         * so delivery lookup is O(log tags) instead of a linear
         * rescan of the program text per message.
         */
        std::map<int, std::size_t> last_recv_pc;
        ContextStats stats;

        /** True when a kRecv for `tag` is at or after the current pc. */
        bool
        expects_tag(int tag) const
        {
            auto it = last_recv_pc.find(tag);
            return it != last_recv_pc.end() && it->second >= pc;
        }
    };

    /** Return one credit to the producer after consuming a message. */
    void return_credit(Context& ctx, int tag, CoreId src_phys, Tick now);

    void schedule_step(Tick when);
    void step();
    /** Execute one timed instruction of ctx at `now`. */
    void execute(Context& ctx, Tick now);
    int pick_runnable(Tick now) const;
    Tick next_resume() const;

    const SocConfig& cfg_;
    CoreId id_;
    EventQueue& eq_;
    noc::Network& net_;
    mem::DmaEngine& dma_;
    ComputeModel compute_;
    std::vector<std::unique_ptr<Context>> ctxs_;
    int active_ = -1;
    Tick busy_until_ = 0;
    std::function<void(CoreId)> done_cb_;
    int done_count_ = 0;
};

} // namespace vnpu::core

#endif // VNPU_CORE_NPU_CORE_H
