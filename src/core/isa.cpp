#include "core/isa.h"

#include <sstream>

namespace vnpu::core {

const char*
to_string(Opcode op)
{
    switch (op) {
      case Opcode::kLoadWeight:  return "load_weight";
      case Opcode::kLoadGlobal:  return "load_global";
      case Opcode::kStoreGlobal: return "store_global";
      case Opcode::kCompute:     return "compute";
      case Opcode::kSend:        return "send";
      case Opcode::kRecv:        return "recv";
      case Opcode::kIterBegin:   return "iter_begin";
      case Opcode::kHalt:        return "halt";
    }
    return "?";
}

Instr
Instr::load_weight(Addr va, std::uint64_t bytes)
{
    Instr i;
    i.op = Opcode::kLoadWeight;
    i.va = va;
    i.bytes = bytes;
    return i;
}

Instr
Instr::load_global(Addr va, std::uint64_t bytes)
{
    Instr i;
    i.op = Opcode::kLoadGlobal;
    i.va = va;
    i.bytes = bytes;
    return i;
}

Instr
Instr::store_global(Addr va, std::uint64_t bytes)
{
    Instr i;
    i.op = Opcode::kStoreGlobal;
    i.va = va;
    i.bytes = bytes;
    return i;
}

Instr
Instr::matmul(std::int64_t m, std::int64_t k, std::int64_t n)
{
    Instr i;
    i.op = Opcode::kCompute;
    i.dims.kind = ComputeKind::kMatmul;
    i.dims.m = m;
    i.dims.k = k;
    i.dims.n = n;
    return i;
}

Instr
Instr::conv(std::int64_t oh, std::int64_t ow, std::int64_t cin,
            std::int64_t cout, std::int64_t ksize)
{
    Instr i;
    i.op = Opcode::kCompute;
    i.dims.kind = ComputeKind::kConv;
    i.dims.oh = oh;
    i.dims.ow = ow;
    i.dims.cin = cin;
    i.dims.cout = cout;
    i.dims.ksize = ksize;
    return i;
}

Instr
Instr::vector_op(std::int64_t elems)
{
    Instr i;
    i.op = Opcode::kCompute;
    i.dims.kind = ComputeKind::kVector;
    i.dims.elems = elems;
    return i;
}

Instr
Instr::send(CoreId dst, std::uint64_t bytes, int tag)
{
    Instr i;
    i.op = Opcode::kSend;
    i.peer = dst;
    i.bytes = bytes;
    i.tag = tag;
    return i;
}

Instr
Instr::recv(CoreId src, std::uint64_t bytes, int tag)
{
    Instr i;
    i.op = Opcode::kRecv;
    i.peer = src;
    i.bytes = bytes;
    i.tag = tag;
    return i;
}

Instr
Instr::iter_begin()
{
    Instr i;
    i.op = Opcode::kIterBegin;
    return i;
}

Instr
Instr::halt()
{
    Instr i;
    i.op = Opcode::kHalt;
    return i;
}

std::string
Instr::to_string() const
{
    std::ostringstream os;
    os << vnpu::core::to_string(op);
    switch (op) {
      case Opcode::kLoadWeight:
      case Opcode::kLoadGlobal:
      case Opcode::kStoreGlobal:
        os << " va=0x" << std::hex << va << std::dec << " bytes=" << bytes;
        break;
      case Opcode::kSend:
        os << " dst=" << peer << " bytes=" << bytes << " tag=" << tag;
        break;
      case Opcode::kRecv:
        os << " src=" << peer << " bytes=" << bytes << " tag=" << tag;
        break;
      case Opcode::kCompute:
        if (dims.kind == ComputeKind::kMatmul) {
            os << " matmul " << dims.m << "x" << dims.k << "x" << dims.n;
        } else if (dims.kind == ComputeKind::kConv) {
            os << " conv " << dims.oh << "x" << dims.ow << " cin="
               << dims.cin << " cout=" << dims.cout << " k=" << dims.ksize;
        } else {
            os << " vector " << dims.elems;
        }
        break;
      default:
        break;
    }
    return os.str();
}

std::uint64_t
program_load_bytes(const Program& prog)
{
    std::uint64_t total = 0;
    for (const Instr& i : prog)
        if (i.op == Opcode::kLoadWeight || i.op == Opcode::kLoadGlobal)
            total += i.bytes;
    return total;
}

std::uint64_t
program_send_bytes(const Program& prog)
{
    std::uint64_t total = 0;
    for (const Instr& i : prog)
        if (i.op == Opcode::kSend)
            total += i.bytes;
    return total;
}

} // namespace vnpu::core
