#include "core/npu_core.h"

#include <algorithm>

#include "sim/log.h"

namespace vnpu::core {

NpuCore::NpuCore(const SocConfig& cfg, CoreId id, EventQueue& eq,
                 noc::Network& net, mem::DmaEngine& dma)
    : cfg_(cfg), id_(id), eq_(eq), net_(net), dma_(dma), compute_(cfg)
{
}

int
NpuCore::add_context(Program prog, const ContextConfig& ccfg)
{
    auto ctx = std::make_unique<Context>();
    ctx->prog = std::move(prog);
    ctx->cfg = ccfg;
    for (std::size_t i = 0; i < ctx->prog.size(); ++i)
        if (ctx->prog[i].op == Opcode::kRecv)
            ctx->last_recv_pc[ctx->prog[i].tag] = i;
    ctxs_.push_back(std::move(ctx));
    return static_cast<int>(ctxs_.size()) - 1;
}

void
NpuCore::start(Tick when)
{
    for (auto& ctx : ctxs_) {
        ctx->state = CtxState::kReady;
        ctx->resume_at = when;
        ctx->stats.start_tick = when;
    }
    if (!ctxs_.empty())
        schedule_step(when);
}

bool
NpuCore::all_done() const
{
    return done_count_ == static_cast<int>(ctxs_.size());
}

void
NpuCore::reset()
{
    ctxs_.clear();
    active_ = -1;
    busy_until_ = 0;
    done_count_ = 0;
}

void
NpuCore::collect_stats(StatSet& out, const std::string& prefix) const
{
    for (const auto& ctx : ctxs_) {
        const ContextStats& s = ctx->stats;
        out.add(prefix + "busy_compute", static_cast<double>(s.busy_compute));
        out.add(prefix + "busy_dma", static_cast<double>(s.busy_dma));
        out.add(prefix + "busy_send", static_cast<double>(s.busy_send));
        out.add(prefix + "busy_switch", static_cast<double>(s.busy_switch));
        out.add(prefix + "wait_recv", static_cast<double>(s.wait_recv));
        out.add(prefix + "vrouter_cycles",
                static_cast<double>(s.vrouter_cycles));
        out.add(prefix + "instructions",
                static_cast<double>(s.instructions));
        out.add(prefix + "flops", static_cast<double>(s.flops));
        out.add(prefix + "iterations", static_cast<double>(s.iterations));
    }
    out.add(prefix + "contexts", static_cast<double>(ctxs_.size()));
}

void
NpuCore::schedule_step(Tick when)
{
    eq_.schedule(std::max(when, eq_.now()), [this] { step(); });
}

int
NpuCore::pick_runnable(Tick now) const
{
    const int n = static_cast<int>(ctxs_.size());
    // Prefer continuing the active context (no switch penalty); else
    // round-robin starting after it.
    if (active_ >= 0 && ctxs_[active_]->state == CtxState::kReady &&
        ctxs_[active_]->resume_at <= now) {
        return active_;
    }
    for (int off = 1; off <= n; ++off) {
        int i = (active_ + off + n) % n;
        if (ctxs_[i]->state == CtxState::kReady &&
            ctxs_[i]->resume_at <= now) {
            return i;
        }
    }
    return -1;
}

Tick
NpuCore::next_resume() const
{
    Tick next = kTickMax;
    for (const auto& ctx : ctxs_)
        if (ctx->state == CtxState::kReady)
            next = std::min(next, ctx->resume_at);
    return next;
}

void
NpuCore::step()
{
    Tick now = eq_.now();
    if (now < busy_until_) {
        schedule_step(busy_until_);
        return;
    }
    int pick = pick_runnable(now);
    if (pick < 0) {
        Tick next = next_resume();
        if (next != kTickMax && next > now)
            schedule_step(next);
        // Otherwise the core idles until a delivery wakes it.
        return;
    }

    if (pick != active_ && active_ >= 0 && ctxs_.size() > 1) {
        // TDM context switch: pipeline drain + issue restart.
        Context& incoming = *ctxs_[pick];
        incoming.stats.busy_switch += cfg_.context_switch_cycles;
        busy_until_ = now + cfg_.context_switch_cycles;
        active_ = pick;
        schedule_step(busy_until_);
        return;
    }
    active_ = pick;
    execute(*ctxs_[pick], now);
}

void
NpuCore::execute(Context& ctx, Tick now)
{
    // Fold zero-cost markers into the same step.
    while (ctx.pc < ctx.prog.size() &&
           ctx.prog[ctx.pc].op == Opcode::kIterBegin) {
        if (ctx.iteration == 0) {
            ctx.stats.warmup = now - ctx.stats.start_tick;
        } else {
            ctx.stats.iter_latency.sample(
                static_cast<double>(now - ctx.iter_start));
        }
        ctx.iter_start = now;
        if (ctx.stats.iter_starts.size() < 4096)
            ctx.stats.iter_starts.push_back(now);
        ++ctx.iteration;
        ctx.stats.iterations = ctx.iteration;
        ++ctx.stats.instructions;
        ++ctx.pc;
    }
    if (ctx.pc >= ctx.prog.size())
        panic("program ran off the end on core ", id_);

    const Instr& instr = ctx.prog[ctx.pc];
    ++ctx.stats.instructions;

    switch (instr.op) {
      case Opcode::kCompute: {
        KernelCost cost = compute_.cost(instr.dims);
        ctx.stats.busy_compute += cost.cycles;
        ctx.stats.flops += cost.flops;
        busy_until_ = now + cost.cycles;
        ++ctx.pc;
        ctx.resume_at = busy_until_;
        schedule_step(busy_until_);
        return;
      }

      case Opcode::kLoadWeight:
      case Opcode::kLoadGlobal:
      case Opcode::kStoreGlobal: {
        dma_.set_translator(ctx.cfg.translator);
        dma_.set_bandwidth_cap(ctx.cfg.bw_cap);
        dma_.set_shared_cap(ctx.cfg.shared_cap);
        dma_.set_iteration(ctx.iteration);
        Tick done = instr.op == Opcode::kStoreGlobal
                        ? dma_.store(now, instr.va, instr.bytes, ctx.cfg.vm)
                        : dma_.load(now, instr.va, instr.bytes, ctx.cfg.vm);
        ctx.stats.busy_dma += done - now;
        busy_until_ = done;
        ++ctx.pc;
        ctx.resume_at = done;
        schedule_step(done);
        return;
      }

      case Opcode::kSend: {
        // Flow control: each edge may have at most `edge_credits`
        // unconsumed messages in flight (finite receive buffers).
        int& credits =
            ctx.credits.try_emplace(instr.tag, cfg_.edge_credits)
                .first->second;
        if (credits == 0) {
            ctx.state = CtxState::kWaiting;
            ctx.wait_kind = WaitKind::kCredit;
            ctx.wait_tag = instr.tag;
            ctx.wait_start = now;
            schedule_step(now); // let another context in
            return;
        }
        --credits;

        CoreId dst = instr.peer;
        Cycles xlat = 0;
        const noc::RouteOverride* route = nullptr;
        if (ctx.cfg.vrouter) {
            CoreVirtHooks::Xlat x = ctx.cfg.vrouter->translate_peer(dst);
            dst = x.phys;
            xlat = x.cost;
            route = ctx.cfg.vrouter->route_override();
        }
        ctx.stats.vrouter_cycles += xlat;
        noc::SendResult r = net_.send(now + xlat, id_, dst, instr.bytes,
                                      ctx.cfg.vm, instr.tag, route);
        ctx.stats.busy_send += r.sender_free - now;
        busy_until_ = r.sender_free;
        ++ctx.pc;
        ctx.resume_at = busy_until_;
        schedule_step(busy_until_);
        return;
      }

      case Opcode::kRecv: {
        Cycles xlat = 0;
        if (ctx.cfg.vrouter) {
            // The receive engine resolves the expected source id.
            xlat = ctx.cfg.vrouter->translate_peer(instr.peer).cost;
        }
        ctx.stats.vrouter_cycles += xlat;
        auto it = ctx.inbox.find(instr.tag);
        if (it != ctx.inbox.end() && !it->second.empty()) {
            InboxEntry entry = it->second.front();
            it->second.pop_front();
            return_credit(ctx, instr.tag, entry.src_phys, now);
            busy_until_ = now + xlat + 1;
            ++ctx.pc;
            ctx.resume_at = busy_until_;
            schedule_step(busy_until_);
        } else {
            ctx.state = CtxState::kWaiting;
            ctx.wait_kind = WaitKind::kData;
            ctx.wait_tag = instr.tag;
            ctx.wait_start = now;
            busy_until_ = now + xlat;
            schedule_step(busy_until_); // let another context in
        }
        return;
      }

      case Opcode::kHalt: {
        ctx.state = CtxState::kDone;
        ctx.stats.done = true;
        ctx.stats.done_tick = now;
        ++done_count_;
        if (all_done() && done_cb_)
            done_cb_(id_);
        schedule_step(now); // other contexts may continue
        return;
      }

      case Opcode::kIterBegin:
        panic("unreachable: markers folded above");
    }
}

void
NpuCore::return_credit(Context& ctx, int tag, CoreId src_phys, Tick now)
{
    if (src_phys == kInvalidCore)
        return;
    // The receive engine returns the credit autonomously; the context
    // is not occupied. Credits follow the same (confined) routes.
    const noc::RouteOverride* route =
        ctx.cfg.vrouter ? ctx.cfg.vrouter->route_override() : nullptr;
    net_.send(now, id_, src_phys, cfg_.credit_bytes, ctx.cfg.vm, tag,
              route, /*credit=*/true);
}

void
NpuCore::deliver(CoreId src_phys, std::uint64_t bytes, int tag, VmId vm,
                 bool credit)
{
    Tick now = eq_.now();

    if (credit) {
        // Find the producer context of this edge: it either waits on
        // the credit or simply owns the tag in its credit map.
        for (auto& ctx : ctxs_) {
            if (ctx->cfg.vm != vm)
                continue;
            auto it = ctx->credits.find(tag);
            if (it == ctx->credits.end())
                continue;
            ++it->second;
            if (ctx->state == CtxState::kWaiting &&
                ctx->wait_kind == WaitKind::kCredit &&
                ctx->wait_tag == tag) {
                ctx->stats.wait_recv += now - ctx->wait_start;
                ctx->state = CtxState::kReady;
                ctx->wait_kind = WaitKind::kNone;
                // pc unchanged: the blocked kSend re-executes.
                ctx->resume_at = now;
                schedule_step(now);
            }
            return;
        }
        return; // credit for an already-finished program
    }

    // Route to the context of this VM that is waiting for (or will
    // consume) this tag. Tags are unique per logical edge within a VM,
    // so at most one context on this core expects a given tag.
    Context* target = nullptr;
    for (auto& ctx : ctxs_) {
        if (ctx->cfg.vm != vm)
            continue;
        if (ctx->state == CtxState::kWaiting &&
            ctx->wait_kind == WaitKind::kData && ctx->wait_tag == tag) {
            target = ctx.get();
            break;
        }
        // Not waiting yet: does any future recv in this context use
        // the tag? The per-tag index built at load time answers in
        // O(log tags); the old per-delivery scan of the program text
        // was quadratic for long programs.
        if (ctx->expects_tag(tag)) {
            target = ctx.get();
            break;
        }
    }
    if (!target) {
        warn("core ", id_, ": dropping message tag ", tag, " vm ", vm,
             " with no matching context");
        return;
    }

    target->inbox[tag].push_back({bytes, src_phys});
    if (target->state == CtxState::kWaiting &&
        target->wait_kind == WaitKind::kData && target->wait_tag == tag) {
        target->inbox[tag].pop_front();
        return_credit(*target, tag, src_phys, now);
        target->stats.wait_recv += now - target->wait_start;
        target->state = CtxState::kReady;
        target->wait_kind = WaitKind::kNone;
        ++target->pc; // the blocked kRecv completes on delivery
        target->resume_at = now;
        schedule_step(now);
    }
}

} // namespace vnpu::core
