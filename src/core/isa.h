/**
 * @file
 * The NPU core instruction set.
 *
 * Programs are straight-line instruction sequences produced by the
 * runtime compiler (IPU-style: the computation graph is lowered to one
 * program per core). Inter-core dataflow uses kSend/kRecv over the NoC;
 * the UVM baseline lowers the same edges to kStoreGlobal/kLoadGlobal
 * pairs through shared memory instead.
 */

#ifndef VNPU_CORE_ISA_H
#define VNPU_CORE_ISA_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace vnpu::core {

/** Instruction opcodes. */
enum class Opcode : std::uint8_t {
    kLoadWeight,   ///< DMA: global memory -> scratchpad (weights).
    kLoadGlobal,   ///< DMA: global memory -> scratchpad (activations).
    kStoreGlobal,  ///< DMA: scratchpad -> global memory.
    kCompute,      ///< Systolic-array / vector-unit kernel.
    kSend,         ///< NoC transfer to another core (dataflow edge).
    kRecv,         ///< Blocking receive of a matching kSend.
    kIterBegin,    ///< Marks the start of a model iteration.
    kHalt,         ///< End of program.
};

const char* to_string(Opcode op);

/** Compute kernel families. */
enum class ComputeKind : std::uint8_t {
    kMatmul,  ///< m x k @ k x n
    kConv,    ///< 2D convolution (lowered to im2col matmul)
    kVector,  ///< elementwise / reduction on the vector unit
};

/** Dimensions of a compute kernel. */
struct ComputeDims {
    ComputeKind kind = ComputeKind::kMatmul;
    // Matmul
    std::int64_t m = 0, k = 0, n = 0;
    // Conv (output spatial size oh x ow already resolved by the lowerer)
    std::int64_t oh = 0, ow = 0, cin = 0, cout = 0, ksize = 0;
    // Vector
    std::int64_t elems = 0;
};

/** One NPU instruction. */
struct Instr {
    Opcode op = Opcode::kHalt;
    Addr va = 0;              ///< DMA virtual address.
    std::uint64_t bytes = 0;  ///< DMA / NoC payload size.
    CoreId peer = kInvalidCore; ///< kSend dst / kRecv src (core id).
    int tag = 0;              ///< Matches kSend to kRecv.
    ComputeDims dims;         ///< kCompute only.

    // ---- Factories ---------------------------------------------------
    static Instr load_weight(Addr va, std::uint64_t bytes);
    static Instr load_global(Addr va, std::uint64_t bytes);
    static Instr store_global(Addr va, std::uint64_t bytes);
    static Instr matmul(std::int64_t m, std::int64_t k, std::int64_t n);
    static Instr conv(std::int64_t oh, std::int64_t ow, std::int64_t cin,
                      std::int64_t cout, std::int64_t ksize);
    static Instr vector_op(std::int64_t elems);
    static Instr send(CoreId dst, std::uint64_t bytes, int tag);
    static Instr recv(CoreId src, std::uint64_t bytes, int tag);
    static Instr iter_begin();
    static Instr halt();

    /** Debug rendering, e.g. "send dst=3 bytes=2048 tag=7". */
    std::string to_string() const;
};

/** A per-core program. */
using Program = std::vector<Instr>;

/** Total DMA bytes a program reads from global memory. */
std::uint64_t program_load_bytes(const Program& prog);

/** Total NoC bytes a program sends. */
std::uint64_t program_send_bytes(const Program& prog);

} // namespace vnpu::core

#endif // VNPU_CORE_ISA_H
