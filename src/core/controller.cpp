#include "core/controller.h"

#include "sim/log.h"

namespace vnpu::core {

NpuController::NpuController(const SocConfig& cfg,
                             const noc::MeshTopology& topo)
    : cfg_(cfg), topo_(topo)
{
}

Cycles
NpuController::configure_routing_table(VmId vm, int num_cores)
{
    if (!hyper_mode_)
        panic("routing-table configuration requires hyper mode (vm ", vm,
              ")");
    if (num_cores <= 0)
        fatal("routing table needs at least one core");
    // Query availability of each core, then write one entry per core.
    return static_cast<Cycles>(num_cores) *
           (cfg_.rt_config_query_cycles + cfg_.rt_config_write_cycles);
}

Cycles
NpuController::teardown_tables(VmId vm)
{
    if (!hyper_mode_)
        panic("table teardown requires hyper mode");
    auto it = meta_bytes_.find(vm);
    std::uint64_t entries = it == meta_bytes_.end() ? 0 : it->second / 18;
    meta_bytes_.erase(vm);
    return static_cast<Cycles>(entries) * cfg_.rt_config_write_cycles;
}

void
NpuController::deploy_meta_bytes(VmId vm, std::uint64_t bytes)
{
    if (!hyper_mode_)
        panic("meta-table deployment requires hyper mode");
    meta_bytes_[vm] = bytes;
}

std::uint64_t
NpuController::meta_bytes(VmId vm) const
{
    auto it = meta_bytes_.find(vm);
    return it == meta_bytes_.end() ? 0 : it->second;
}

Cycles
NpuController::dispatch_cost(CoreId core, DispatchVia via) const
{
    VNPU_ASSERT(topo_.valid(core));
    if (via == DispatchVia::kIbus)
        return cfg_.ibus_dispatch_cycles;
    // Controller attaches next to node 0 (north-west corner): one
    // injection plus per-hop traversal.
    int hops = 1 + topo_.hop_distance(0, core);
    return cfg_.inoc_inject_cycles +
           static_cast<Cycles>(hops) * cfg_.inoc_hop_cycles;
}

Cycles
NpuController::dispatch_cost_virtual(VmId vm, CoreId vcore, CoreId pcore,
                                     DispatchVia via)
{
    ++rt_lookups_;
    Cycles xlat;
    if (vm == last_vm_ && vcore == last_vcore_) {
        ++rt_hits_;
        xlat = cfg_.rt_cached_cycles;
    } else {
        xlat = cfg_.rt_lookup_cycles;
        last_vm_ = vm;
        last_vcore_ = vcore;
    }
    return xlat + dispatch_cost(pcore, via);
}

} // namespace vnpu::core
