/**
 * @file
 * The virtual NPU abstraction: virtual cores + virtual topology +
 * virtual memory, assembled by the hypervisor (paper §5.2).
 */

#ifndef VNPU_VIRT_VIRTUAL_NPU_H
#define VNPU_VIRT_VIRTUAL_NPU_H

#include <memory>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "mem/range_table.h"
#include "noc/network.h"
#include "sim/types.h"
#include "virt/routing_table.h"
#include "virt/vchunk.h"
#include "virt/vrouter.h"

namespace vnpu::virt {

/** A fully provisioned virtual NPU. */
class VirtualNpu {
  public:
    VirtualNpu(VmId vm, std::vector<CoreId> cores, graph::Graph vtopo,
               RoutingTable rt);

    VmId vm() const { return vm_; }

    /** Number of virtual cores. */
    int num_cores() const { return static_cast<int>(cores_.size()); }

    /** Physical core hosting virtual core `vcore`. */
    CoreId phys_of(CoreId vcore) const;

    /** All physical cores in virtual-id order. */
    const std::vector<CoreId>& cores() const { return cores_; }

    /** Set of occupied physical cores. */
    CoreSet mask() const;

    /** The virtual topology the tenant sees. */
    const graph::Graph& vtopo() const { return vtopo_; }

    const RoutingTable& routing_table() const { return rt_; }

    // ---- NoC isolation -------------------------------------------------
    /**
     * Install confined routing directions (hypervisor). Shared: the
     * hypervisor caches overrides per region, so several vNPU
     * generations may reference one table.
     */
    void set_confined_routes(std::shared_ptr<const noc::RouteOverride> r);
    /** Confined routes or nullptr (default DOR). */
    const noc::RouteOverride* confined_routes() const;
    bool isolated() const { return confined_ != nullptr; }

    // ---- Memory ----------------------------------------------------------
    /** Attach the VM-level RTT image (must be finalized). */
    void set_range_table(mem::RangeTable rtt);
    const mem::RangeTable& range_table() const { return rtt_; }
    bool has_memory() const { return rtt_.size() > 0; }

    /** Total mapped global-memory bytes. */
    std::uint64_t memory_bytes() const;

    // ---- Bandwidth / interfaces ------------------------------------------
    void set_bandwidth_cap(double bytes_per_cycle) { bw_cap_ = bytes_per_cycle; }
    double bandwidth_cap() const { return bw_cap_; }
    void set_interfaces(int n) { interfaces_ = n; }
    /** Memory interfaces reachable from this vNPU's region. */
    int interfaces() const { return interfaces_; }

    // ---- TDM (MIG baseline) ----------------------------------------------
    /**
     * Number of virtual cores multiplexed onto one physical core
     * (1 = pure spatial sharing; >1 only under the MIG baseline when a
     * partition is smaller than the request).
     */
    void set_tdm_factor(int f) { tdm_factor_ = f; }
    int tdm_factor() const { return tdm_factor_; }

    // ---- Mapping quality (reporting) ---------------------------------------
    void set_mapping_ted(double ted) { mapping_ted_ = ted; }
    /** Topology edit distance of the realized mapping vs the request. */
    double mapping_ted() const { return mapping_ted_; }

    // ---- Telemetry ---------------------------------------------------------
    /** Sweep this vNPU's provisioning gauges into `out`. */
    void
    collect_stats(StatSet& out, const std::string& prefix) const
    {
        out.set(prefix + "cores", num_cores());
        out.set(prefix + "mapping_ted", mapping_ted_);
        out.set(prefix + "interfaces", interfaces_);
        out.set(prefix + "bw_cap", bw_cap_);
        out.set(prefix + "tdm_factor", tdm_factor_);
        out.set(prefix + "isolated", isolated() ? 1.0 : 0.0);
        out.set(prefix + "memory_bytes",
                static_cast<double>(memory_bytes()));
        out.set(prefix + "rtt_entries", static_cast<double>(rtt_.size()));
    }

  private:
    VmId vm_;
    std::vector<CoreId> cores_;
    graph::Graph vtopo_;
    RoutingTable rt_;
    std::shared_ptr<const noc::RouteOverride> confined_;
    mem::RangeTable rtt_;
    double bw_cap_ = 0.0;
    int interfaces_ = 0;
    int tdm_factor_ = 1;
    double mapping_ted_ = 0.0;
};

} // namespace vnpu::virt

#endif // VNPU_VIRT_VIRTUAL_NPU_H
