/**
 * @file
 * vRouter: virtualization of the NPU instruction router and NoC router
 * (paper §4.1).
 *
 * - InstVRouter lives in the NPU controller: it redirects offloaded NPU
 *   instructions from virtual to physical cores through the routing
 *   table, caching the last translation (consecutive instructions to
 *   the same core skip the table query).
 * - NocVRouter lives in each NPU core's send/receive engine: it
 *   rewrites destination core ids in NoC transfers and, when isolation
 *   is requested, supplies the predefined directions that confine
 *   packets to the virtual topology.
 */

#ifndef VNPU_VIRT_VROUTER_H
#define VNPU_VIRT_VROUTER_H

#include <vector>

#include "core/controller.h"
#include "core/npu_core.h"
#include "noc/network.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "virt/routing_table.h"

namespace vnpu::virt {

/** Controller-side instruction redirection. */
class InstVRouter {
  public:
    explicit InstVRouter(core::NpuController& ctrl) : ctrl_(ctrl) {}

    /** Install a VM's routing table (hypervisor, hyper mode). */
    void install(const RoutingTable* rt);

    /** Remove a VM's routing table. */
    void remove(VmId vm);

    /** Result of one instruction dispatch. */
    struct Dispatch {
        CoreId pcore = kInvalidCore;
        Cycles cost = 0;
    };

    /**
     * Dispatch an instruction addressed to (vm, vcore): translate
     * through the VM's routing table and pay the transport latency.
     * Panics if the VM has no installed table (isolation violation).
     */
    Dispatch dispatch(VmId vm, CoreId vcore, core::DispatchVia via);

    /** True when the vm has a table installed. */
    bool
    has_vm(VmId vm) const
    {
        return table_of(vm) != nullptr;
    }

  private:
    /** Installed table for `vm`, or nullptr. */
    const RoutingTable*
    table_of(VmId vm) const
    {
        if (vm < 0 || static_cast<std::size_t>(vm) >= tables_.size())
            return nullptr;
        return tables_[static_cast<std::size_t>(vm)];
    }

    core::NpuController& ctrl_;
    /**
     * Per-VM routing-table cache, densely indexed by VmId (the
     * hypervisor hands out small consecutive ids): dispatch is a single
     * indexed load instead of a tree walk.
     */
    std::vector<const RoutingTable*> tables_;
};

/**
 * Core-side NoC virtualization: implements the core's virtualization
 * hook. One instance exists per (core, VM) context.
 */
class NocVRouter final : public core::CoreVirtHooks {
  public:
    /**
     * @param cfg      timing constants
     * @param rt       the VM's routing table (meta-zone resident)
     * @param confined predefined directions confining packets to the
     *                 virtual topology, or nullptr to use default DOR
     *                 (which risks NoC interference, §4.1.2)
     */
    NocVRouter(const SocConfig& cfg, const RoutingTable& rt,
               const noc::RouteOverride* confined);

    Xlat translate_peer(CoreId vpeer) override;

    const noc::RouteOverride* route_override() const override
    {
        return confined_;
    }

    std::uint64_t lookups() const { return lookups_.value(); }
    std::uint64_t cached_hits() const { return hits_.value(); }

  private:
    const SocConfig& cfg_;
    const RoutingTable& rt_;
    const noc::RouteOverride* confined_;
    CoreId last_vpeer_ = kInvalidCore;
    CoreId last_phys_ = kInvalidCore;
    Counter lookups_;
    Counter hits_;
};

} // namespace vnpu::virt

#endif // VNPU_VIRT_VROUTER_H
