/**
 * @file
 * Analytic hardware-cost model (substitute for the paper's FPGA
 * synthesis, Figure 19).
 *
 * The paper synthesizes vNPU and Kim's UVM-based design on an FPGA and
 * reports the added LUT/FF/LUTRAM percentages. Synthesis is unavailable
 * here, so we estimate from first principles:
 *  - flip-flops ~ storage bits held in registers,
 *  - LUTs ~ comparators + muxes + adders (6-input LUTs, ~1 LUT per
 *    2 compared bits, plus control overhead),
 *  - LUTRAM ~ table bits placed in distributed RAM (64 bits/LUTRAM).
 *
 * The figure's message — both designs add ~2% resources, and a
 * 128-entry routing table is almost free — survives this substitution
 * because it is a *relative storage/logic* argument, not a timing one.
 */

#ifndef VNPU_VIRT_HW_COST_H
#define VNPU_VIRT_HW_COST_H

#include <cstdint>
#include <string>

namespace vnpu::virt {

/** Estimated FPGA resources for one hardware block. */
struct HwCost {
    double luts = 0;     ///< logic LUTs
    double lutrams = 0;  ///< distributed-RAM LUTs
    double ffs = 0;      ///< flip-flops
    std::uint64_t bits = 0; ///< raw storage bits

    HwCost& operator+=(const HwCost& o);
};

/** Baseline (non-virtualized) NPU controller and core, for ratios. */
HwCost baseline_controller_cost();
HwCost baseline_core_cost(int sa_dim);

/** Routing table of `entries` entries (controller SRAM resident). */
HwCost routing_table_cost(int entries);

/** Controller-side instruction vRouter (lookup + cached translation). */
HwCost inst_vrouter_cost(int rt_entries);

/** Core-side NoC vRouter (dst rewrite + direction override port). */
HwCost noc_vrouter_cost();

/** vChunk: range TLB (144-bit entries) + walker + access counter. */
HwCost vchunk_cost(int range_tlb_entries);

/** Kim's UVM baseline: page IOTLB + page-walker + MMU registers. */
HwCost uvm_mmu_cost(int iotlb_entries);

/** Percentage overhead of `extra` relative to `base`, per resource. */
struct HwOverhead {
    double luts_pct;
    double lutrams_pct;
    double ffs_pct;
};
HwOverhead overhead(const HwCost& base, const HwCost& extra);

} // namespace vnpu::virt

#endif // VNPU_VIRT_HW_COST_H
