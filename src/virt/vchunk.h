/**
 * @file
 * vChunk: per-core NPU memory virtualization (paper §4.2).
 *
 * Bundles a core-local copy of the VM's range translation table (each
 * core's meta-zone holds its own RTT image with private RTT_CUR /
 * last_v state), the hardware range TLB, the access counter and the
 * per-vNPU memory bandwidth cap.
 */

#ifndef VNPU_VIRT_VCHUNK_H
#define VNPU_VIRT_VCHUNK_H

#include <cstdint>

#include "mem/range_table.h"
#include "sim/config.h"
#include "sim/types.h"

namespace vnpu::virt {

/** One core's vChunk instance for one VM. */
class VChunk {
  public:
    /**
     * @param cfg         timing constants
     * @param table       VM-level RTT image (copied into this core's
     *                    meta-zone)
     * @param tlb_entries hardware range-TLB entries (4 in the paper)
     */
    VChunk(const SocConfig& cfg, const mem::RangeTable& table,
           int tlb_entries);

    /** The DMA translation hook for this core/VM. */
    mem::Translator* translator() { return &tlb_; }

    /**
     * Restrict this VM's sustained memory bandwidth (bytes per cycle);
     * <= 0 removes the cap. Backed by the access counter.
     */
    void set_bandwidth_cap(double bytes_per_cycle)
    {
        bw_cap_ = bytes_per_cycle;
    }
    double bandwidth_cap() const { return bw_cap_; }

    /** Meta-zone bytes consumed by the RTT image. */
    std::uint64_t meta_footprint() const { return table_.footprint_bytes(); }

    const mem::RangeTlbTranslator& tlb() const { return tlb_; }
    const mem::RangeTable& table() const { return table_; }

  private:
    mem::RangeTable table_; ///< Core-local copy (private last_v state).
    mem::RangeTlbTranslator tlb_;
    double bw_cap_ = 0.0;
};

} // namespace vnpu::virt

#endif // VNPU_VIRT_VCHUNK_H
