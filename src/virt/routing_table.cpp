#include "virt/routing_table.h"

#include "sim/log.h"

namespace vnpu::virt {

RoutingTable
RoutingTable::standard(VmId vm, std::vector<CoreId> virt_to_phys)
{
    if (virt_to_phys.empty())
        fatal("routing table needs at least one core");
    RoutingTable rt;
    rt.vm_ = vm;
    rt.type_ = RtType::kStandard;
    rt.v2p_ = std::move(virt_to_phys);
    return rt;
}

RoutingTable
RoutingTable::mesh2d(VmId vm, int vw, int vh, CoreId anchor,
                     int phys_mesh_w)
{
    if (vw <= 0 || vh <= 0 || anchor < 0 || phys_mesh_w < vw)
        fatal("invalid mesh2d routing table: ", vw, "x", vh, " anchor ",
              anchor, " stride ", phys_mesh_w);
    RoutingTable rt;
    rt.vm_ = vm;
    rt.type_ = RtType::kMesh2D;
    rt.vw_ = vw;
    rt.vh_ = vh;
    rt.anchor_ = anchor;
    rt.stride_ = phys_mesh_w;
    return rt;
}

int
RoutingTable::num_cores() const
{
    return type_ == RtType::kStandard ? static_cast<int>(v2p_.size())
                                      : vw_ * vh_;
}

CoreId
RoutingTable::lookup(CoreId vcore) const
{
    if (vcore < 0 || vcore >= num_cores())
        return kInvalidCore;
    if (type_ == RtType::kStandard)
        return v2p_[vcore];
    int r = vcore / vw_;
    int c = vcore % vw_;
    return anchor_ + r * stride_ + c;
}

std::vector<CoreId>
RoutingTable::phys_cores() const
{
    std::vector<CoreId> out(num_cores());
    for (int v = 0; v < num_cores(); ++v)
        out[v] = lookup(v);
    return out;
}

std::uint64_t
RoutingTable::storage_bits() const
{
    // Per Figure 4: an entry holds v_CoreID and p_CoreID (8 bits each
    // for <= 256 cores) plus a valid bit. The compact form stores one
    // entry plus a [w, h] shape (8 bits each).
    constexpr std::uint64_t entry_bits = 8 + 8 + 1;
    if (type_ == RtType::kStandard)
        return entry_bits * v2p_.size();
    return entry_bits + 16;
}

int
RoutingTable::num_entries() const
{
    return type_ == RtType::kStandard ? static_cast<int>(v2p_.size()) : 1;
}

} // namespace vnpu::virt
