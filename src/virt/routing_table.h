/**
 * @file
 * The vRouter Routing Table (RT): virtual -> physical NPU core ids
 * (paper §4.1.1, Figure 4).
 *
 * Two organizations exist, exactly as in the paper:
 *  - Standard: one entry per virtual core (arbitrary topologies).
 *  - Mesh2D: a compact single-descriptor form for regular 2D-mesh
 *    virtual topologies — it stores only the first virtual/physical id
 *    and the shape, saving on-chip SRAM.
 */

#ifndef VNPU_VIRT_ROUTING_TABLE_H
#define VNPU_VIRT_ROUTING_TABLE_H

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace vnpu::virt {

/** Routing-table organization. */
enum class RtType : std::uint8_t {
    kStandard, ///< Explicit per-core entries.
    kMesh2D,   ///< Compact (anchor, shape) descriptor.
};

/** One VM's virtual-to-physical core mapping. */
class RoutingTable {
  public:
    /** Standard table from explicit (virtual, physical) pairs. */
    static RoutingTable standard(VmId vm,
                                 std::vector<CoreId> virt_to_phys);

    /**
     * Compact 2D-mesh table: virtual core (r, c) of a vw x vh grid maps
     * to physical core `anchor + r*phys_mesh_w + c`.
     */
    static RoutingTable mesh2d(VmId vm, int vw, int vh, CoreId anchor,
                               int phys_mesh_w);

    VmId vm() const { return vm_; }
    RtType type() const { return type_; }

    /** Number of virtual cores covered. */
    int num_cores() const;

    /** Physical core for `vcore`, or kInvalidCore when out of range. */
    CoreId lookup(CoreId vcore) const;

    /** All physical cores in virtual-id order. */
    std::vector<CoreId> phys_cores() const;

    /** SRAM bits this table occupies (hardware-cost model input). */
    std::uint64_t storage_bits() const;

    /** Hardware table entries (1 for the compact mesh form). */
    int num_entries() const;

  private:
    RoutingTable() = default;

    VmId vm_ = kNoVm;
    RtType type_ = RtType::kStandard;
    // Standard form.
    std::vector<CoreId> v2p_;
    // Mesh2D form.
    int vw_ = 0, vh_ = 0;
    CoreId anchor_ = kInvalidCore;
    int stride_ = 0;
};

} // namespace vnpu::virt

#endif // VNPU_VIRT_ROUTING_TABLE_H
