#include "virt/vchunk.h"

#include "sim/log.h"

namespace vnpu::virt {

VChunk::VChunk(const SocConfig& cfg, const mem::RangeTable& table,
               int tlb_entries)
    : table_(table), tlb_(cfg, table_, tlb_entries)
{
    if (!table_.finalized())
        fatal("vChunk requires a finalized range table");
}

} // namespace vnpu::virt
