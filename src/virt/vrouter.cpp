#include "virt/vrouter.h"

#include "sim/log.h"

namespace vnpu::virt {

void
InstVRouter::install(const RoutingTable* rt)
{
    VNPU_ASSERT(rt != nullptr);
    if (!ctrl_.hyper_mode())
        panic("installing a routing table requires hyper mode");
    VmId vm = rt->vm();
    if (vm < 0)
        panic("cannot install a routing table for vm ", vm);
    if (static_cast<std::size_t>(vm) >= tables_.size())
        tables_.resize(static_cast<std::size_t>(vm) + 1, nullptr);
    tables_[static_cast<std::size_t>(vm)] = rt;
}

void
InstVRouter::remove(VmId vm)
{
    if (!ctrl_.hyper_mode())
        panic("removing a routing table requires hyper mode");
    if (vm >= 0 && static_cast<std::size_t>(vm) < tables_.size())
        tables_[static_cast<std::size_t>(vm)] = nullptr;
}

InstVRouter::Dispatch
InstVRouter::dispatch(VmId vm, CoreId vcore, core::DispatchVia via)
{
    const RoutingTable* rt = table_of(vm);
    if (rt == nullptr)
        panic("vm ", vm, " has no routing table installed");
    CoreId pcore = rt->lookup(vcore);
    if (pcore == kInvalidCore) {
        // The routing table is the isolation boundary: a virtual core
        // id outside the table must never reach a physical core.
        panic("vm ", vm, " attempted to access out-of-range virtual core ",
              vcore);
    }
    Cycles cost = ctrl_.dispatch_cost_virtual(vm, vcore, pcore, via);
    return {pcore, cost};
}

NocVRouter::NocVRouter(const SocConfig& cfg, const RoutingTable& rt,
                       const noc::RouteOverride* confined)
    : cfg_(cfg), rt_(rt), confined_(confined)
{
}

core::CoreVirtHooks::Xlat
NocVRouter::translate_peer(CoreId vpeer)
{
    ++lookups_;
    if (vpeer == last_vpeer_) {
        ++hits_;
        return {last_phys_, cfg_.rt_cached_cycles};
    }
    CoreId phys = rt_.lookup(vpeer);
    if (phys == kInvalidCore)
        panic("NoC vRouter: virtual core ", vpeer, " not in vm ", rt_.vm(),
              "'s topology");
    last_vpeer_ = vpeer;
    last_phys_ = phys;
    return {phys, cfg_.rt_lookup_cycles};
}

} // namespace vnpu::virt
