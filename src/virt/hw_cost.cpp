#include "virt/hw_cost.h"

namespace vnpu::virt {

namespace {

// Estimation constants (6-input LUT fabric).
constexpr double kLutsPerComparatorBit = 0.5; // 2 bits per LUT
constexpr double kBitsPerLutram = 64.0;
constexpr double kControlOverhead = 1.15;     // FSM/decode slack

HwCost
table_cost(std::uint64_t entries, std::uint64_t bits_per_entry,
           double comparators_per_lookup)
{
    HwCost c;
    c.bits = entries * bits_per_entry;
    c.lutrams = static_cast<double>(c.bits) / kBitsPerLutram;
    // Match logic: comparators over the tag bits of a lookup.
    c.luts = comparators_per_lookup * bits_per_entry *
             kLutsPerComparatorBit * kControlOverhead;
    // Index/current registers only; the table body lives in LUTRAM.
    c.ffs = 64;
    return c;
}

} // namespace

HwCost&
HwCost::operator+=(const HwCost& o)
{
    luts += o.luts;
    lutrams += o.lutrams;
    ffs += o.ffs;
    bits += o.bits;
    return *this;
}

HwCost
baseline_controller_cost()
{
    // A small RISC control engine + DMA descriptors + dispatch queues,
    // calibrated to a few thousand LUTs as in Chipyard's NPU controller.
    HwCost c;
    c.luts = 6200;
    c.lutrams = 900;
    c.ffs = 5400;
    c.bits = 48 * 1024;
    return c;
}

HwCost
baseline_core_cost(int sa_dim)
{
    // Systolic array dominates: one MAC ~ 80 LUTs / 64 FFs (16-bit),
    // plus scratchpad control and the send/receive engine.
    HwCost c;
    double macs = static_cast<double>(sa_dim) * sa_dim;
    c.luts = macs * 80 + 4000;
    c.ffs = macs * 64 + 3500;
    c.lutrams = 1200;
    c.bits = 96 * 1024;
    return c;
}

HwCost
routing_table_cost(int entries)
{
    // 17-bit entries (8+8+valid); single-ported, one comparator.
    return table_cost(static_cast<std::uint64_t>(entries), 17, 1);
}

HwCost
inst_vrouter_cost(int rt_entries)
{
    HwCost c = routing_table_cost(rt_entries);
    // Cached last translation (vm, vcore, pcore) + redirect mux.
    c.ffs += 32;
    c.luts += 140;
    return c;
}

HwCost
noc_vrouter_cost()
{
    // Destination rewrite on the send/receive engine + direction
    // override port into the local meta-zone.
    HwCost c;
    c.luts = 220;
    c.ffs = 90;
    c.bits = 0;
    return c;
}

HwCost
vchunk_cost(int range_tlb_entries)
{
    // 144-bit range-TLB entries, fully associative (one comparator per
    // entry on the 48-bit VA), plus the walker FSM and access counter.
    HwCost c = table_cost(static_cast<std::uint64_t>(range_tlb_entries),
                          144, range_tlb_entries);
    c.luts += 260; // walker FSM + RTT_CUR/last_v update
    c.ffs += 96;   // access counter + rate registers
    return c;
}

HwCost
uvm_mmu_cost(int iotlb_entries)
{
    // Page IOTLB (VPN 36 + PPN 36 + perm 4 = 76 bits), fully
    // associative, plus a hardware page-table walker.
    HwCost c = table_cost(static_cast<std::uint64_t>(iotlb_entries), 76,
                          iotlb_entries);
    c.luts += 420; // multi-level walker FSM
    c.ffs += 128;
    return c;
}

HwOverhead
overhead(const HwCost& base, const HwCost& extra)
{
    auto pct = [](double b, double e) { return b > 0 ? 100.0 * e / b : 0.0; };
    return {pct(base.luts, extra.luts), pct(base.lutrams, extra.lutrams),
            pct(base.ffs, extra.ffs)};
}

} // namespace vnpu::virt
