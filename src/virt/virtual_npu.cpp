#include "virt/virtual_npu.h"

#include "sim/log.h"

namespace vnpu::virt {

VirtualNpu::VirtualNpu(VmId vm, std::vector<CoreId> cores,
                       graph::Graph vtopo, RoutingTable rt)
    : vm_(vm), cores_(std::move(cores)), vtopo_(std::move(vtopo)),
      rt_(std::move(rt))
{
    if (cores_.empty())
        fatal("virtual NPU needs at least one core");
    if (vtopo_.num_nodes() != static_cast<int>(cores_.size()))
        fatal("virtual topology size (", vtopo_.num_nodes(),
              ") != core count (", cores_.size(), ")");
    // The routing table must agree with the core list.
    for (int v = 0; v < num_cores(); ++v) {
        if (rt_.lookup(v) != cores_[v])
            fatal("routing table disagrees with core list at vcore ", v);
    }
}

CoreId
VirtualNpu::phys_of(CoreId vcore) const
{
    if (vcore < 0 || vcore >= num_cores())
        fatal("virtual core ", vcore, " out of range for vm ", vm_);
    return cores_[vcore];
}

CoreSet
VirtualNpu::mask() const
{
    return CoreSet::from_range(cores_);
}

void
VirtualNpu::set_confined_routes(std::shared_ptr<const noc::RouteOverride> r)
{
    confined_ = std::move(r);
}

const noc::RouteOverride*
VirtualNpu::confined_routes() const
{
    return confined_.get();
}

void
VirtualNpu::set_range_table(mem::RangeTable rtt)
{
    if (!rtt.finalized())
        fatal("range table must be finalized before attachment");
    rtt_ = std::move(rtt);
}

std::uint64_t
VirtualNpu::memory_bytes() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < rtt_.size(); ++i)
        total += rtt_.entry(i).size;
    return total;
}

} // namespace vnpu::virt
